// Rule relevance (paper Section 7): a rule being *exercised* does not mean
// it influenced the final plan. This example generates, per rule, a query
// where the rule fires, then probes relevance — does disabling the rule
// change Plan(q)? — and finally uses the stronger GenerateRelevant variant
// to find a query where the rule is guaranteed plan-relevant.

#include <cstdio>

#include "qtf.h"

using namespace qtf;

int main() {
  auto fw = RuleTestFramework::Create({}).value();

  std::printf("%-28s %-12s %-12s %s\n", "rule", "exercised?",
              "relevant?", "relevant-query trials");
  int exercised_only = 0, relevant_first_try = 0;
  for (RuleId id : fw->LogicalRules()) {
    // 1. A query that merely exercises the rule.
    GenerationConfig config;
    config.method = GenerationMethod::kPattern;
    config.max_trials = 300;
    config.seed = 7100 + static_cast<uint64_t>(id);
    GenerationOutcome exercised =
        fw->generator()->Generate({id}, config).value();
    if (!exercised.success) {
      std::printf("%-28s %-12s\n", fw->rules().rule(id).name().c_str(),
                  "FAIL");
      continue;
    }
    bool relevant =
        IsRuleRelevant(fw->optimizer(), exercised.query, id).value();
    if (relevant) {
      ++relevant_first_try;
    } else {
      ++exercised_only;
    }

    // 2. The Section-7 variant: demand plan relevance during generation.
    config.seed += 100000;
    GenerationOutcome strong =
        fw->generator()->GenerateRelevant(id, config).value();
    std::printf("%-28s %-12s %-12s %s\n",
                fw->rules().rule(id).name().c_str(), "yes",
                relevant ? "yes" : "no",
                strong.success ? std::to_string(strong.trials).c_str()
                               : "not found");
  }
  std::printf("\n%d/%d rules were already plan-relevant on their first "
              "exercising query;\n%d needed the relevance-aware generation "
              "variant to find a plan-changing query.\n",
              relevant_first_try, relevant_first_try + exercised_only,
              exercised_only);
  return 0;
}
