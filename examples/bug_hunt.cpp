// Bug hunt: inject three deliberately broken transformation rules into the
// optimizer and let the framework find them — generate targeted test
// suites, execute Plan(q) vs Plan(q, ¬rule), and report every result
// mismatch with a SQL repro. This is the end-to-end correctness workflow of
// the paper's Section 2.3.

#include <cstdio>

#include "qtf.h"

using namespace qtf;

namespace {

struct Injection {
  const char* description;
  std::unique_ptr<Rule> (*make)();
  int extra_ops;
};

void Hunt(const Injection& injection) {
  auto registry = MakeDefaultRuleRegistry();
  RuleId bug_id = registry->Register(injection.make());
  RuleTestFramework::Options options;
  options.rules = std::move(registry);
  auto fw = RuleTestFramework::Create(std::move(options)).value();
  std::printf("--- injected: %s ---\n", injection.description);

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    GenerationConfig config;
    config.method = GenerationMethod::kPattern;
    config.extra_ops = injection.extra_ops;
    config.seed = seed * 131;
    auto suite = fw->suite_generator()->Generate({RuleTarget{{bug_id}}},
                                                 /*k=*/5, config);
    if (!suite.ok()) continue;
    auto report = fw->runner()->Run(*suite, suite->per_target).value();
    if (report.violations.empty()) continue;

    const CorrectnessViolation& v = report.violations[0];
    std::printf("CAUGHT after %d plan executions (%d skipped as identical)\n",
                report.plans_executed, report.skipped_identical_plans);
    std::printf("  rule:    %s\n", v.target_name.c_str());
    std::printf("  rows:    %ld with the rule vs %ld without\n",
                static_cast<long>(v.base_rows),
                static_cast<long>(v.restricted_rows));
    std::printf("  repro:   %s\n\n", v.sql.substr(0, 110).c_str());
    return;
  }
  std::printf("NOT caught (the bug never won the cost race on this data)\n\n");
}

}  // namespace

int main() {
  std::printf("Hunting three injected optimizer bugs with the correctness "
              "harness...\n\n");
  Hunt({"outer join silently converted to inner join "
        "(missing NULL-rejection check)",
        &MakeBuggyLojToJoin, 2});
  Hunt({"filter pushed below GROUP BY drops the non-pushable conjuncts",
        &MakeBuggySelectPushBelowGroupBy, 0});
  Hunt({"LEFT OUTER JOIN commuted as if it were an inner join",
        &MakeBuggyLojCommutativity, 1});
  return 0;
}
