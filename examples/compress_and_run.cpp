// Test-suite compression in action: generate a k-per-rule correctness
// suite, compress it with BASELINE / SetMultiCover / TopKIndependent (and
// the Section-7 no-sharing matching variant), then actually execute the
// TOPK-compressed suite and report the validation outcome.

#include <cstdio>

#include "qtf.h"

using namespace qtf;

int main() {
  auto fw = RuleTestFramework::Create({}).value();
  const int n_rules = 12;
  const int k = 5;

  std::printf("generating a test suite: %d rules x %d queries each...\n",
              n_rules, k);
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 4;
  config.seed = 2026;
  auto suite = fw->suite_generator()
                   ->Generate(fw->LogicalRuleSingletons(n_rules), k, config)
                   .value();
  std::printf("suite TS: %zu queries\n\n", suite.queries.size());

  EdgeCostProvider provider(fw->optimizer(), &suite);
  auto baseline = CompressBaseline(&provider).value();
  auto smc = CompressSetMultiCover(&provider, k).value();
  auto topk = CompressTopKIndependent(&provider, k,
                                      /*exploit_monotonicity=*/true)
                  .value();
  auto matching = CompressNoSharingMatching(&provider, k);

  std::printf("estimated execution cost of the suite:\n");
  std::printf("  BASELINE            %12.0f\n", baseline.total_cost);
  std::printf("  SetMultiCover       %12.0f  (%.1fx cheaper)\n",
              smc.total_cost, baseline.total_cost / smc.total_cost);
  std::printf("  TopKIndependent     %12.0f  (%.1fx cheaper)\n",
              topk.total_cost, baseline.total_cost / topk.total_cost);
  if (matching.ok()) {
    std::printf("  no-sharing matching %12.0f  (Section 7 variant)\n",
                matching->total_cost);
  } else {
    std::printf("  no-sharing matching infeasible: %s\n",
                matching.status().ToString().c_str());
  }

  std::printf("\nexecuting the TOPK-compressed suite for correctness...\n");
  auto report = fw->runner()->Run(suite, topk.assignment).value();
  std::printf("  plans executed: %d\n", report.plans_executed);
  std::printf("  skipped (identical plans): %d\n",
              report.skipped_identical_plans);
  std::printf("  violations: %zu  -> rule set is %s\n",
              report.violations.size(),
              report.ok() ? "CORRECT on this suite" : "BROKEN");
  return 0;
}
