// Quickstart: build the test database, write a query against the public
// API, optimize it, inspect RuleSet(q) and the plan, execute it, and then
// re-optimize with a rule turned off to compare plans and results — the
// core loop of the rule-testing framework.

#include <cstdio>

#include "qtf.h"

using namespace qtf;

int main() {
  // 1. The fixed test database (TPC-H-style, deterministic).
  auto fw = RuleTestFramework::Create({}).value();
  std::printf("test database: %zu tables\n", fw->catalog().table_count());

  // 2. A query, built as a logical tree:
  //      SELECT * FROM lineitem JOIN orders ON l_orderkey = o_orderkey
  //      WHERE o_totalprice > 400000
  auto registry = std::make_shared<ColumnRegistry>();
  auto lineitem = GetOp::Create(fw->catalog().GetTable("lineitem").value(),
                                registry.get());
  auto orders = GetOp::Create(fw->catalog().GetTable("orders").value(),
                              registry.get());
  LogicalOpPtr join = std::make_shared<JoinOp>(
      JoinKind::kInner, lineitem, orders,
      Eq(Col(lineitem->columns()[0], ValueType::kInt64),
         Col(orders->columns()[0], ValueType::kInt64)));
  LogicalOpPtr root = std::make_shared<SelectOp>(
      join, Cmp(CompareOp::kGt, Col(orders->columns()[3], ValueType::kDouble),
                LitDouble(400000.0)));
  Query query{root, registry};

  auto resolver = registry->MakeResolver();
  std::printf("\nlogical tree:\n%s",
              LogicalTreeToString(*query.root, &resolver).c_str());
  std::printf("\nSQL rendering:\n%s\n", GenerateSql(query).c_str());

  // 3. Optimize; the testing extensions report RuleSet(q).
  auto result = fw->optimizer()->Optimize(query).value();
  std::printf("\nbest plan (cost %.1f):\n%s", result.cost,
              PhysicalTreeToString(*result.plan, &resolver).c_str());
  std::printf("\nRuleSet(q) — rules exercised during optimization:\n");
  for (RuleId id : result.exercised_rules) {
    std::printf("  [%2d] %s\n", id, fw->rules().rule(id).name().c_str());
  }

  // 4. Execute.
  Executor executor(&fw->db(), registry.get());
  ResultSet rows = executor.Execute(*result.plan).value();
  std::printf("\nexecuted: %ld rows\n", static_cast<long>(rows.row_count()));

  // 5. Turn off the selection-pushdown rule and compare — the correctness
  // methodology of the paper in one step.
  RuleId pushdown = fw->rules().FindByName("SelectPushBelowJoinRight");
  OptimizerOptions options;
  options.disabled_rules.insert(pushdown);
  auto restricted = fw->optimizer()->Optimize(query, options).value();
  std::printf("\nwith %s disabled (cost %.1f):\n%s",
              fw->rules().rule(pushdown).name().c_str(), restricted.cost,
              PhysicalTreeToString(*restricted.plan, &resolver).c_str());

  ResultSet restricted_rows = executor.Execute(*restricted.plan).value();
  std::printf("\nresults identical: %s\n",
              ResultBagEquals(rows, restricted_rows) ? "yes" : "NO (BUG!)");

  // 6. Everything above was metered: dump the framework's metrics registry
  // as JSON (see docs/observability.md for the catalog).
  std::printf("\nmetrics snapshot:\n%s\n",
              fw->metrics()->Snapshot().ToJson().c_str());
  return 0;
}
