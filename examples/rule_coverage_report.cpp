// Rule coverage report: for every logical transformation rule, export its
// pattern (the XML API of Section 3.1), generate a covering query with the
// PATTERN method, and print a coverage table — the "code coverage" workflow
// of the paper's Section 2.3.

#include <cstdio>

#include "qtf.h"

using namespace qtf;

int main(int argc, char** argv) {
  bool show_xml = argc > 1 && std::string(argv[1]) == "--xml";
  auto fw = RuleTestFramework::Create({}).value();

  std::printf("%-28s %-7s %-6s %s\n", "rule", "trials", "ops",
              "covering query (SQL, truncated)");
  int covered = 0;
  for (RuleId id : fw->LogicalRules()) {
    const Rule& rule = fw->rules().rule(id);
    if (show_xml) {
      std::printf("%s\n", PatternToXml(*rule.pattern(), rule.name()).c_str());
      continue;
    }
    GenerationConfig config;
    config.method = GenerationMethod::kPattern;
    config.max_trials = 200;
    config.seed = 4242 + static_cast<uint64_t>(id);
    GenerationOutcome outcome =
        fw->generator()->Generate({id}, config).value();
    if (!outcome.success) {
      std::printf("%-28s %-7s\n", rule.name().c_str(), "FAIL");
      continue;
    }
    ++covered;
    std::string sql = outcome.sql.substr(0, 60);
    std::printf("%-28s %-7d %-6d %s...\n", rule.name().c_str(),
                outcome.trials, outcome.operator_count, sql.c_str());
  }
  if (!show_xml) {
    std::printf("\ncoverage: %d / %zu logical rules "
                "(run with --xml to dump the exported rule patterns)\n",
                covered, fw->LogicalRules().size());
  }
  return 0;
}
