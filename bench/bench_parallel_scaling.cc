// Parallel edge-cost construction (thread-pool fan-out) and plan-cache
// reuse. Not a paper figure: this measures the concurrency + caching layer
// of docs/parallelism.md on the hottest loop the paper's experiments time
// — the Cost(q, ¬target) bipartite-graph construction behind Figures
// 11-14.
//
// Phase 1 detaches the plan cache and runs the monotonicity-pruned TOPK
// pair-graph build at 1/2/4/8 threads, checking every run against the
// serial baseline bit-for-bit (same assignment, same total cost, same
// optimizer_calls()). Phase 2 re-runs the same construction against a cold
// then warm plan cache, reporting hit rates — the cross-experiment reuse
// lever that works even on one core.

#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/compression_experiment.h"
#include "common/thread_pool.h"
#include "optimizer/plan_cache.h"

namespace qtf {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Run {
  CompressionSolution solution;
  double seconds = 0.0;
};

/// One full pair-graph edge-cost construction (TOPK with monotonicity
/// pruning) over a fresh provider, optionally fanned across `pool`.
Run BuildPairGraph(RuleTestFramework* fw, const TestSuite& suite, int k,
                   ThreadPool* pool) {
  EdgeCostProvider provider(fw->optimizer(), &suite);
  provider.set_thread_pool(pool);
  double start = Now();
  auto solution = CompressTopKIndependent(&provider, k, true);
  QTF_CHECK(solution.ok()) << solution.status().ToString();
  return Run{std::move(solution).value(), Now() - start};
}

bool SameSolution(const CompressionSolution& a, const CompressionSolution& b) {
  return a.assignment == b.assignment && a.total_cost == b.total_cost &&
         a.optimizer_calls == b.optimizer_calls;
}

int RunBench() {
  auto fw = bench::MakeFramework();
  bench::Banner("Parallel scaling: edge-cost construction + plan cache",
                "TOPK pair-graph build; identical outputs at every thread "
                "count; plan-cache reuse across repeated experiments.");

  const int n = bench::FullScale() ? 10 : 6;
  const int k = bench::FullScale() ? 10 : 5;
  auto suite = bench::MakeCompressionSuite(
      fw.get(), fw->LogicalRulePairs(n), k, 52000 + static_cast<uint64_t>(n));
  if (!suite) return 1;

  std::printf("hardware_concurrency: %u (speedup saturates at the core "
              "count)\n\n",
              std::thread::hardware_concurrency());

  // Both phases run inside a PlanCacheDetachGuard: the framework's shared
  // cache is detached for the cold measurements and restored when the
  // guard leaves scope, even on early returns.
  double speedup_at_4 = 0.0;
  bool all_identical = true;
  Run serial, cold, warm;
  PlanCache cache;
  {
    PlanCacheDetachGuard detach(fw->optimizer());

    // ---- Phase 1: thread scaling, plan cache detached -----------------
    serial = BuildPairGraph(fw.get(), *suite, k, nullptr);
    std::printf("%8s %10s %9s %12s %10s\n", "threads", "seconds", "speedup",
                "opt-calls", "identical");
    std::printf("%8s %10.3f %9s %12ld %10s\n", "serial", serial.seconds,
                "1.0x", static_cast<long>(serial.solution.optimizer_calls),
                "-");

    for (int threads : {1, 2, 4, 8}) {
      ThreadPool pool(threads);
      Run run = BuildPairGraph(fw.get(), *suite, k, &pool);
      bool identical = SameSolution(run.solution, serial.solution);
      all_identical = all_identical && identical;
      double speedup = serial.seconds / run.seconds;
      if (threads == 4) speedup_at_4 = speedup;
      std::printf("%8d %10.3f %8.2fx %12ld %10s\n", threads, run.seconds,
                  speedup, static_cast<long>(run.solution.optimizer_calls),
                  identical ? "yes" : "NO");
    }

    // ---- Phase 2: plan-cache reuse across experiments -----------------
    fw->optimizer()->set_plan_cache(&cache);
    cold = BuildPairGraph(fw.get(), *suite, k, nullptr);
    double cold_hit_rate = cache.hit_rate();
    warm = BuildPairGraph(fw.get(), *suite, k, nullptr);
    std::printf("\nplan cache (fresh providers, serial):\n");
    std::printf("  cold run: %.3fs, hit rate %.0f%%\n", cold.seconds,
                100.0 * cold_hit_rate);
    std::printf("  warm run: %.3fs, hit rate %.0f%% overall, speedup %.1fx, "
                "identical %s\n",
                warm.seconds, 100.0 * cache.hit_rate(),
                cold.seconds / warm.seconds,
                SameSolution(warm.solution, cold.solution) ? "yes" : "NO");
    std::printf("  entries %zu, hits %ld, misses %ld, evictions %ld\n",
                cache.size(), static_cast<long>(cache.hits()),
                static_cast<long>(cache.misses()),
                static_cast<long>(cache.evictions()));

    // The framework-wide cache also saw suite generation: report the reuse
    // suite generation left behind, straight from the metrics registry.
    obs::MetricsSnapshot snapshot = fw->metrics()->Snapshot();
    const int64_t fw_hits = snapshot.CounterValue("qtf.plan_cache.hits");
    const int64_t fw_misses = snapshot.CounterValue("qtf.plan_cache.misses");
    std::printf("  framework cache after generation: hits %ld, misses %ld "
                "(hit rate %.0f%%)\n",
                static_cast<long>(fw_hits), static_cast<long>(fw_misses),
                100.0 * static_cast<double>(fw_hits) /
                    static_cast<double>(std::max<int64_t>(
                        fw_hits + fw_misses, 1)));
  }  // guard restores the framework's shared cache here

  // Machine-readable summary, one JSON object per line like a bench log.
  std::printf("\n{\"bench\":\"parallel_scaling\",\"n\":%d,\"k\":%d,"
              "\"hardware_concurrency\":%u,\"serial_seconds\":%.4f,"
              "\"speedup_4t\":%.2f,\"identical\":%s,"
              "\"warm_cache_speedup\":%.2f,\"warm_hit_rate\":%.3f}\n",
              n, k, std::thread::hardware_concurrency(), serial.seconds,
              speedup_at_4, all_identical ? "true" : "false",
              cold.seconds / warm.seconds, cache.hit_rate());
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace qtf

int main() { return qtf::RunBench(); }
