// Executor throughput: the batched columnar Executor vs the row-at-a-time
// ReferenceExecutor on two pipelines over a TPC-H-style database —
// scan->filter and scan->filter->hash-join->hash-agg — at batch capacities
// 1, 64 and 1024.
//
// Rows/s is operator output rows (the qtf.exec.rows_produced counter, read
// via bench::CounterDelta) over wall time; both executors produce identical
// operator outputs for a plan, so the work measure is implementation-
// independent and the ratio is a clean speedup.
//
// Writes BENCH_exec.json (override the path with QTF_BENCH_EXEC_JSON) with
// absolute rows/s and batched/reference speedup ratios. CI compares the
// ratios — not the machine-dependent absolutes — against the committed
// baseline and fails on a >20% speedup regression. QTF_BENCH_FULL=1 scales
// the database up ~8x.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/executor.h"
#include "exec/physical.h"
#include "exec/reference_executor.h"
#include "expr/expr.h"
#include "obs/metrics.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

struct Env {
  std::unique_ptr<Database> db;
  ColumnRegistryPtr registry;
  PhysicalOpPtr scan_filter;
  PhysicalOpPtr join_agg;
};

Env MakeEnv() {
  TpchConfig config;
  config.scale = bench::FullScale() ? 320 : 40;
  Env env;
  env.db = MakeTpchDatabase(config).value();
  env.registry = std::make_shared<ColumnRegistry>();

  auto lineitem = env.db->catalog().GetTable("lineitem").value();
  auto orders = env.db->catalog().GetTable("orders").value();

  ColumnId l_orderkey = env.registry->Allocate("l_orderkey", ValueType::kInt64);
  ColumnId l_quantity = env.registry->Allocate("l_quantity", ValueType::kDouble);
  ColumnId l_price =
      env.registry->Allocate("l_extendedprice", ValueType::kDouble);
  ColumnId l_flag = env.registry->Allocate("l_returnflag", ValueType::kString);
  ColumnId o_orderkey = env.registry->Allocate("o_orderkey", ValueType::kInt64);
  ColumnId o_totalprice =
      env.registry->Allocate("o_totalprice", ValueType::kDouble);

  // lineitem columns: orderkey(0) linenumber(1) partkey(2) suppkey(3)
  // quantity(4) extendedprice(5) ...; scans carry (table column index ->
  // query column id) positionally, so project the scan to the columns the
  // pipeline touches via a TableDef view with matching positions.
  auto lineitem_scan = std::make_shared<TableScanOp>(
      lineitem, std::vector<ColumnId>{
                    l_orderkey,
                    env.registry->Allocate("l_linenumber", ValueType::kInt64),
                    env.registry->Allocate("l_partkey", ValueType::kInt64),
                    env.registry->Allocate("l_suppkey", ValueType::kInt64),
                    l_quantity, l_price,
                    env.registry->Allocate("l_discount", ValueType::kDouble),
                    l_flag,
                    env.registry->Allocate("l_shipdate", ValueType::kInt64)});
  auto orders_scan = std::make_shared<TableScanOp>(
      orders,
      std::vector<ColumnId>{
          o_orderkey, env.registry->Allocate("o_custkey", ValueType::kInt64),
          env.registry->Allocate("o_orderstatus", ValueType::kString),
          o_totalprice,
          env.registry->Allocate("o_orderdate", ValueType::kInt64),
          env.registry->Allocate("o_orderpriority", ValueType::kString)});

  ExprPtr qty_pred = Cmp(CompareOp::kGt, Col(l_quantity, ValueType::kDouble),
                         LitDouble(10.0));
  env.scan_filter = std::make_shared<FilterOp>(lineitem_scan, qty_pred);

  auto join = std::make_shared<HashJoinOp>(
      JoinKind::kInner, env.scan_filter, orders_scan,
      std::vector<std::pair<ColumnId, ColumnId>>{{l_orderkey, o_orderkey}},
      nullptr);
  std::vector<AggregateItem> aggs;
  aggs.push_back(
      {AggregateCall{AggKind::kSum, Col(l_price, ValueType::kDouble)},
       env.registry->Allocate("sum_price", ValueType::kDouble)});
  aggs.push_back({AggregateCall{AggKind::kCountStar, nullptr},
                  env.registry->Allocate("cnt", ValueType::kInt64)});
  aggs.push_back(
      {AggregateCall{AggKind::kAvg, Col(o_totalprice, ValueType::kDouble)},
       env.registry->Allocate("avg_total", ValueType::kDouble)});
  env.join_agg = std::make_shared<HashAggregateOp>(
      join, std::vector<ColumnId>{l_flag}, std::move(aggs));
  return env;
}

/// One ~0.2s timing window of repeated executions; returns rows/s, and the
/// per-execution row count through *rows_per_exec.
template <typename Fn>
double TimeWindow(Fn&& execute, int64_t* rows_per_exec) {
  using Clock = std::chrono::steady_clock;
  int64_t rows = 0;
  const double min_elapsed = 0.2;
  Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  do {
    int64_t got = execute();
    if (rows_per_exec != nullptr) *rows_per_exec = got;
    rows += got;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_elapsed);
  return static_cast<double>(rows) / elapsed;
}

struct Comparison {
  double reference_rows_per_s = 0.0;  // best window
  double batched_rows_per_s = 0.0;    // best window
  double speedup = 0.0;               // median of per-pair ratios
  int64_t rows_per_exec = 0;
};

/// Seven alternating (reference window, batched window) pairs; the speedup
/// is the MEDIAN of the per-pair ratios. On this single-core container an
/// unrelated process can steal the CPU for whole seconds, so timing the
/// two engines in separate passes makes their ratio flap by tens of
/// percent between runs; adjacent windows see (nearly) the same
/// contention, and the median drops the pairs a burst split. The CI gate
/// compares these ratios, so they — not the absolute rows/s — are what
/// must be reproducible.
Comparison Compare(const Env& env, const PhysicalOp& plan, int capacity) {
  ReferenceExecutor reference(env.db.get(), env.registry.get());
  obs::MetricsRegistry metrics;
  Executor batched(env.db.get(), env.registry.get());
  batched.set_metrics(&metrics);
  batched.set_batch_capacity(capacity);

  int64_t last_ref = 0;
  auto run_reference = [&] {
    int64_t before = last_ref;
    QTF_CHECK(reference.Execute(plan).ok());
    last_ref = reference.rows_produced();
    return last_ref - before;
  };
  auto run_batched = [&] {
    obs::MetricsSnapshot before = metrics.Snapshot();
    QTF_CHECK(batched.Execute(plan).ok());
    return bench::CounterDelta(before, metrics.Snapshot(),
                               "qtf.exec.rows_produced");
  };

  Comparison c;
  int64_t batched_rows = 0;
  c.rows_per_exec = run_reference();  // warm-up (and table caches)
  batched_rows = run_batched();
  QTF_CHECK(batched_rows == c.rows_per_exec)
      << "batched and reference disagree on operator output rows";

  std::vector<double> ratios;
  for (int rep = 0; rep < 7; ++rep) {
    double ref = TimeWindow(run_reference, nullptr);
    double bat = TimeWindow(run_batched, nullptr);
    if (ref > c.reference_rows_per_s) c.reference_rows_per_s = ref;
    if (bat > c.batched_rows_per_s) c.batched_rows_per_s = bat;
    ratios.push_back(bat / ref);
  }
  std::sort(ratios.begin(), ratios.end());
  c.speedup = ratios[ratios.size() / 2];
  return c;
}

}  // namespace
}  // namespace qtf

int main() {
  using namespace qtf;
  bench::Banner("executor throughput",
                "Batched columnar executor vs the reference row executor; "
                "rows/s = operator output rows over wall time.");

  Env env = MakeEnv();
  const int capacities[] = {1, 64, 1024};
  struct PipelineRow {
    const char* name;
    const PhysicalOp* plan;
  };
  const PipelineRow pipelines[] = {
      {"scan_filter", env.scan_filter.get()},
      {"join_agg", env.join_agg.get()},
  };

  std::string json = "{\n";
  for (size_t p = 0; p < 2; ++p) {
    Comparison results[3];
    double ref_best = 0.0;
    for (size_t c = 0; c < 3; ++c) {
      results[c] = Compare(env, *pipelines[p].plan, capacities[c]);
      if (results[c].reference_rows_per_s > ref_best) {
        ref_best = results[c].reference_rows_per_s;
      }
    }
    std::printf("%-12s reference      %12.0f rows/s\n", pipelines[p].name,
                ref_best);
    json += "  \"" + std::string(pipelines[p].name) + "\": {\n";
    json += "    \"reference_rows_per_s\": " + std::to_string(ref_best) +
            ",\n";
    json += "    \"rows_per_exec\": " +
            std::to_string(results[0].rows_per_exec) +
            ",\n    \"batched_rows_per_s\": {";
    std::string speedups = "    \"speedup\": {";
    for (size_t c = 0; c < 3; ++c) {
      std::printf("%-12s batched@%-5d  %12.0f rows/s   %5.2fx\n",
                  pipelines[p].name, capacities[c],
                  results[c].batched_rows_per_s, results[c].speedup);
      std::string key = "\"" + std::to_string(capacities[c]) + "\": ";
      json +=
          (c ? ", " : "") + key + std::to_string(results[c].batched_rows_per_s);
      speedups += (c ? ", " : "") + key + std::to_string(results[c].speedup);
    }
    json += "},\n" + speedups + "}\n  }";
    json += (p + 1 < 2) ? ",\n" : "\n";
  }
  json += "}\n";

  const char* path = std::getenv("QTF_BENCH_EXEC_JSON");
  if (path == nullptr) path = "BENCH_exec.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  return 0;
}
