// Figure 10: wall-clock time to generate the rule-pair test cases, RANDOM
// vs PATTERN. Expected shape: the trial-count advantage of PATTERN
// (Figure 9) translates directly into generation-time savings.

#include "bench/pair_experiment.h"

namespace qtf {
namespace {

int Run() {
  auto fw = bench::MakeFramework();
  bench::Banner("Figure 10: rule-pair query generation (time)",
                "Total generation seconds over all nC2 pairs.");

  std::vector<int> sizes = bench::FullScale() ? std::vector<int>{15, 30}
                                              : std::vector<int>{8, 12};
  const int random_cap = bench::FullScale() ? 2000 : 300;

  std::printf("%6s %7s %12s %12s %9s\n", "n", "pairs", "RANDOM(s)",
              "PATTERN(s)", "ratio");
  for (int n : sizes) {
    bench::PairExperimentResult r =
        bench::RunPairExperiment(fw.get(), n, random_cap, 300,
                                 fw->thread_pool());
    std::printf("%6d %7d %11.2f%s %11.2f%s %8.1fx\n", r.n_rules, r.n_pairs,
                r.random_seconds, r.random_failures > 0 ? "!" : " ",
                r.pattern_seconds, r.pattern_failures > 0 ? "!" : " ",
                r.random_seconds / std::max(r.pattern_seconds, 1e-9));
  }
  std::printf("\npaper: the trial reduction carries over to time "
              "(log-scale gap, Figure 10)\n");
  return 0;
}

}  // namespace
}  // namespace qtf

int main() { return qtf::Run(); }
