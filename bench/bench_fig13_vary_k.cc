// Figure 13: impact of the test-suite size k on solution quality (rule
// pairs, fixed n). Expected shape: TOPK best across all k; SMC competitive
// at k=1 but degrading as k grows (more chances to pick queries whose
// disabled-pair cost spikes).

#include "bench/compression_experiment.h"

namespace qtf {
namespace {

int Run() {
  auto fw = bench::MakeFramework();
  bench::Banner("Figure 13: varying the test suite size k (rule pairs)",
                "Total estimated cost as k grows; n fixed.");

  const int n = bench::FullScale() ? 15 : 6;
  std::vector<int> ks = {1, 2, 5, 10};

  std::printf("(n = %d, %d pair targets)\n", n, n * (n - 1) / 2);
  std::printf("%6s %14s %14s %14s %10s\n", "k", "BASELINE", "SMC", "TOPK",
              "SMC/TOPK");
  for (int k : ks) {
    auto suite = bench::MakeCompressionSuite(
        fw.get(), fw->LogicalRulePairs(n), k,
        23000 + static_cast<uint64_t>(k));
    if (!suite) continue;
    auto row = bench::RunCompression(fw.get(), *suite, k, fw->thread_pool());
    if (!row) continue;
    std::printf("%6d %14.0f %14.0f %14.0f %9.2fx\n", k, row->baseline,
                row->smc, row->topk, row->smc / row->topk);
  }
  std::printf("\npaper: SMC good at k=1, quality drops at larger k; TOPK "
              "best for all k\n");
  return 0;
}

}  // namespace
}  // namespace qtf

int main() { return qtf::Run(); }
