// Ablation (not a paper figure): how much of PATTERN's efficiency comes
// from biasing the instantiated arguments towards rule-precondition shapes
// (PK-shaped joins, join columns in the grouping, left-only projections)?
//
// The paper notes that patterns are necessary but not sufficient conditions
// and that trials absorb the gap; this ablation quantifies the gap for the
// precondition-heavy rules when instantiation is shape-blind.

#include "bench/bench_util.h"
#include "qgen/generation.h"

namespace qtf {
namespace {

int Run() {
  auto fw = bench::MakeFramework();
  bench::Banner("Ablation: precondition-aware instantiation biases",
                "PATTERN trials per rule with biases on vs off.");

  // The rules whose preconditions depend on keys/functional dependencies.
  const char* kTargets[] = {
      "GroupByPushBelowJoinLeft", "GroupByPullAboveJoinLeft",
      "SemiJoinToJoinDistinct",   "JoinToSemiJoin",
      "GroupByOnKeyElimination",  "DistinctElimination",
  };

  TreeBuilderOptions unbiased;
  unbiased.bias_key_joins = false;
  unbiased.bias_groupby_join_cols = false;
  unbiased.bias_groupby_keys = false;
  unbiased.bias_project_left_only = false;

  std::printf("%-28s %10s %10s\n", "rule", "biased", "unbiased");
  int biased_total = 0, unbiased_total = 0;
  const int repeats = 5;
  for (const char* name : kTargets) {
    RuleId id = fw->rules().FindByName(name);
    QTF_CHECK(id >= 0) << name;
    int biased_trials = 0, unbiased_trials = 0;
    for (int r = 0; r < repeats; ++r) {
      GenerationConfig biased_config;
      biased_config.method = GenerationMethod::kPattern;
      biased_config.max_trials = 2000;
      biased_config.seed = 6000 + static_cast<uint64_t>(id) * 13 +
                           static_cast<uint64_t>(r);
      biased_trials += fw->generator()->Generate({id}, biased_config).value().trials;

      GenerationConfig unbiased_config = biased_config;
      unbiased_config.builder_options = unbiased;
      unbiased_trials +=
          fw->generator()->Generate({id}, unbiased_config).value().trials;
    }
    std::printf("%-28s %10d %10d\n", name, biased_trials, unbiased_trials);
    biased_total += biased_trials;
    unbiased_total += unbiased_trials;
  }
  std::printf("%-28s %10d %10d  (%.1fx)\n", "TOTAL", biased_total,
              unbiased_total,
              static_cast<double>(unbiased_total) /
                  static_cast<double>(std::max(biased_total, 1)));
  std::printf("\n(5 repetitions per rule; trials capped at 2000 per run)\n");
  return 0;
}

}  // namespace
}  // namespace qtf

int main() { return qtf::Run(); }
