#ifndef QTF_BENCH_COMPRESSION_EXPERIMENT_H_
#define QTF_BENCH_COMPRESSION_EXPERIMENT_H_

#include <optional>

#include "bench/bench_util.h"
#include "compress/compression.h"

namespace qtf {
namespace bench {

/// Generates the test suite for a compression experiment: k queries per
/// target via PATTERN generation with a few extra random operators (which
/// is what gives queries the cost spread compression exploits).
inline std::optional<TestSuite> MakeCompressionSuite(
    RuleTestFramework* fw, const std::vector<RuleTarget>& targets, int k,
    uint64_t seed) {
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 4;
  config.max_trials = 600;
  config.seed = seed;
  auto suite = fw->suite_generator()->Generate(targets, k, config);
  if (!suite.ok()) {
    std::printf("suite generation failed: %s\n",
                suite.status().ToString().c_str());
    return std::nullopt;
  }
  return std::move(suite).value();
}

struct CompressionRow {
  double baseline = 0.0;
  double smc = 0.0;
  double topk = 0.0;
};

/// Runs BASELINE / SMC / TOPK over one suite. Costs are optimizer-estimated
/// totals for executing the compressed suite (paper Section 6.2.2). With a
/// pool, edge-cost construction fans out across its workers; the computed
/// row is identical either way.
inline std::optional<CompressionRow> RunCompression(RuleTestFramework* fw,
                                                    const TestSuite& suite,
                                                    int k,
                                                    ThreadPool* pool = nullptr) {
  EdgeCostProvider provider(fw->optimizer(), &suite);
  provider.set_thread_pool(pool);
  auto baseline = CompressBaseline(&provider);
  auto smc = CompressSetMultiCover(&provider, k);
  auto topk = CompressTopKIndependent(&provider, k, true);
  if (!baseline.ok() || !smc.ok() || !topk.ok()) {
    std::printf("compression failed: %s %s %s\n",
                baseline.status().ToString().c_str(),
                smc.status().ToString().c_str(),
                topk.status().ToString().c_str());
    return std::nullopt;
  }
  return CompressionRow{baseline->total_cost, smc->total_cost,
                        topk->total_cost};
}

}  // namespace bench
}  // namespace qtf

#endif  // QTF_BENCH_COMPRESSION_EXPERIMENT_H_
