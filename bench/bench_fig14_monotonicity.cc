// Figure 14: exploiting cost monotonicity (Section 5.3.1) when building the
// rule-pair bipartite graph for TOPK. Expected shape: a multi-x reduction
// in optimizer invocations (paper: 6x-9x) with a bit-identical solution.

#include <cmath>

#include "bench/compression_experiment.h"

namespace qtf {
namespace {

int Run() {
  auto fw = bench::MakeFramework();
  bench::Banner("Figure 14: monotonicity pruning of optimizer calls",
                "TOPK edge-cost optimizer invocations, full scan vs pruned.");

  std::vector<int> sizes = bench::FullScale() ? std::vector<int>{5, 10, 15}
                                              : std::vector<int>{4, 6, 8};
  const int k = bench::FullScale() ? 10 : 5;

  std::printf("%6s %7s %12s %12s %9s %12s\n", "n", "pairs", "full-scan",
              "pruned", "savings", "same cost?");
  for (int n : sizes) {
    auto suite = bench::MakeCompressionSuite(
        fw.get(), fw->LogicalRulePairs(n), k,
        31000 + static_cast<uint64_t>(n));
    if (!suite) continue;

    // Fresh providers so invocation counts are not cross-contaminated by
    // the shared edge-cost cache. The registry snapshots around each run
    // report the same deltas through the metrics pipeline.
    obs::MetricsSnapshot before_full = fw->metrics()->Snapshot();
    EdgeCostProvider full_provider(fw->optimizer(), &*suite);
    auto full = CompressTopKIndependent(&full_provider, k, false);
    obs::MetricsSnapshot before_pruned = fw->metrics()->Snapshot();
    EdgeCostProvider pruned_provider(fw->optimizer(), &*suite);
    auto pruned = CompressTopKIndependent(&pruned_provider, k, true);
    obs::MetricsSnapshot after = fw->metrics()->Snapshot();
    if (!full.ok() || !pruned.ok()) {
      std::printf("compression failed\n");
      continue;
    }
    const int64_t full_calls = bench::CounterDelta(
        before_full, before_pruned, "qtf.edge_cost.optimizer_calls");
    const int64_t pruned_calls = bench::CounterDelta(
        before_pruned, after, "qtf.edge_cost.optimizer_calls");
    QTF_CHECK(full_calls == full->optimizer_calls &&
              pruned_calls == pruned->optimizer_calls)
        << "registry deltas disagree with per-provider accounting";
    std::printf("%6d %7d %12ld %12ld %8.1fx %12s\n", n, n * (n - 1) / 2,
                static_cast<long>(full_calls),
                static_cast<long>(pruned_calls),
                static_cast<double>(full_calls) /
                    static_cast<double>(std::max<int64_t>(pruned_calls, 1)),
                std::abs(full->total_cost - pruned->total_cost) < 1e-6
                    ? "yes"
                    : "NO");
    std::printf("       edges pruned by monotonicity (registry): %ld\n",
                static_cast<long>(bench::CounterDelta(
                    before_pruned, after,
                    "qtf.compress.monotonicity_pruned")));
  }
  std::printf("\npaper: 6x-9x fewer optimizer calls, identical solutions\n");
  return 0;
}

}  // namespace
}  // namespace qtf

int main() { return qtf::Run(); }
