#ifndef QTF_BENCH_BENCH_UTIL_H_
#define QTF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "testing/framework.h"

namespace qtf {
namespace bench {

/// Benchmarks honour QTF_BENCH_FULL=1 to run at paper scale (n=30 rules,
/// all pairs); the default is a reduced configuration that keeps the whole
/// bench suite in the minutes range on one core.
inline bool FullScale() {
  const char* env = std::getenv("QTF_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// QTF_BENCH_THREADS=N fans edge-cost construction (and pair generation)
/// across an N-worker pool; default 1 = serial. Results are identical at
/// any thread count (see docs/parallelism.md). Only the bench drivers read
/// this env var; the framework itself is configured through
/// RuleTestFramework::Options::threads.
inline int BenchThreads() {
  const char* env = std::getenv("QTF_BENCH_THREADS");
  if (env == nullptr) return 1;
  int n = std::atoi(env);
  return n > 1 ? n : 1;
}

/// Framework at bench configuration: BenchThreads() workers (its
/// thread_pool() replaces the old MakeBenchPool()).
inline std::unique_ptr<RuleTestFramework> MakeFramework() {
  RuleTestFramework::Options options;
  options.threads = BenchThreads();
  auto fw = RuleTestFramework::Create(std::move(options));
  QTF_CHECK(fw.ok()) << fw.status().ToString();
  return std::move(fw).value();
}

/// Growth of a registry counter between two snapshots — how benches report
/// per-phase accounting (e.g. optimizer calls spent on one figure's rows).
inline int64_t CounterDelta(const obs::MetricsSnapshot& before,
                            const obs::MetricsSnapshot& after,
                            const std::string& name) {
  return after.CounterValue(name) - before.CounterValue(name);
}

/// Prints the standard experiment banner.
inline void Banner(const char* figure, const char* claim) {
  std::printf("==== %s ====\n%s\n\n", figure, claim);
}

}  // namespace bench
}  // namespace qtf

#endif  // QTF_BENCH_BENCH_UTIL_H_
