#ifndef QTF_BENCH_BENCH_UTIL_H_
#define QTF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "testing/framework.h"

namespace qtf {
namespace bench {

/// Benchmarks honour QTF_BENCH_FULL=1 to run at paper scale (n=30 rules,
/// all pairs); the default is a reduced configuration that keeps the whole
/// bench suite in the minutes range on one core.
inline bool FullScale() {
  const char* env = std::getenv("QTF_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

inline std::unique_ptr<RuleTestFramework> MakeFramework() {
  auto fw = RuleTestFramework::Create();
  QTF_CHECK(fw.ok()) << fw.status().ToString();
  return std::move(fw).value();
}

/// Prints the standard experiment banner.
inline void Banner(const char* figure, const char* claim) {
  std::printf("==== %s ====\n%s\n\n", figure, claim);
}

}  // namespace bench
}  // namespace qtf

#endif  // QTF_BENCH_BENCH_UTIL_H_
