// Figure 12: test-suite compression for rule pairs (k = 10). Expected
// shape: TOPK remains the best; SMC is erratic — sometimes good, sometimes
// worse than BASELINE — because it ignores edge costs, and with pairs there
// are many more opportunities to pick a query whose cost explodes when the
// pair is disabled.

#include "bench/compression_experiment.h"

namespace qtf {
namespace {

int Run() {
  auto fw = bench::MakeFramework();
  bench::Banner("Figure 12: test-suite compression, rule pairs (k=10)",
                "Total estimated cost over all nC2 pair targets.");

  std::vector<int> sizes = bench::FullScale() ? std::vector<int>{5, 10, 15}
                                              : std::vector<int>{4, 6, 8};
  const int k = 10;

  std::printf("%6s %7s %14s %14s %14s %10s\n", "n", "pairs", "BASELINE",
              "SMC", "TOPK", "SMC/TOPK");
  for (int n : sizes) {
    auto suite = bench::MakeCompressionSuite(
        fw.get(), fw->LogicalRulePairs(n), k,
        17000 + static_cast<uint64_t>(n));
    if (!suite) continue;
    auto row = bench::RunCompression(fw.get(), *suite, k, fw->thread_pool());
    if (!row) continue;
    std::printf("%6d %7d %14.0f %14.0f %14.0f %9.2fx\n", n,
                n * (n - 1) / 2, row->baseline, row->smc, row->topk,
                row->smc / row->topk);
  }
  std::printf("\npaper: TOPK lowest everywhere; SMC varies from good to "
              "worse than BASELINE on pairs\n");
  return 0;
}

}  // namespace
}  // namespace qtf

int main() { return qtf::Run(); }
