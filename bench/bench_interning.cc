// Micro-benchmarks of the hash-consing substrate (google-benchmark):
// cached vs uncached TreeFingerprint, warm plan-cache keying over
// canonical vs freshly-built roots, interner hit resolution, and memo
// duplicate insertion. The acceptance story for the NodeInterner refactor:
// plan-cache keying on an interned tree no longer recomputes full-tree
// hashes, so cached-fingerprint lookups are measurably faster than the
// clone path that rehashes from scratch (docs/architecture.md).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "logical/interner.h"
#include "optimizer/memo.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_cache.h"
#include "rules/default_rules.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

struct Env {
  Env() { db = MakeTpchDatabase(TpchConfig{}).value(); }
  std::unique_ptr<Database> db;
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

/// A ~16-node logical tree (selects and joins over three base tables) —
/// deep enough that a full recursive rehash is visible next to an O(1)
/// cached-fingerprint load.
Query MakeDeepQuery(Env& env) {
  auto reg = std::make_shared<ColumnRegistry>();
  auto lineitem = GetOp::Create(
      env.db->catalog().GetTable("lineitem").value(), reg.get());
  auto orders = GetOp::Create(env.db->catalog().GetTable("orders").value(),
                              reg.get());
  auto customer = GetOp::Create(
      env.db->catalog().GetTable("customer").value(), reg.get());
  LogicalOpPtr left = std::make_shared<JoinOp>(
      JoinKind::kInner, lineitem, orders,
      Eq(Col(lineitem->columns()[0], ValueType::kInt64),
         Col(orders->columns()[0], ValueType::kInt64)));
  for (int i = 0; i < 5; ++i) {
    left = std::make_shared<SelectOp>(
        left, Cmp(CompareOp::kGt,
                  Col(lineitem->columns()[4], ValueType::kDouble),
                  LitDouble(10.0 + i)));
  }
  LogicalOpPtr root = std::make_shared<JoinOp>(
      JoinKind::kInner, left, customer,
      Eq(Col(orders->columns()[1], ValueType::kInt64),
         Col(customer->columns()[0], ValueType::kInt64)));
  for (int i = 0; i < 5; ++i) {
    root = std::make_shared<SelectOp>(
        root, Cmp(CompareOp::kLt,
                  Col(customer->columns()[5], ValueType::kDouble),
                  LitDouble(9000.0 - i)));
  }
  return Query{root, reg};
}

LogicalOpPtr DeepClone(const LogicalOpPtr& node) {
  std::vector<LogicalOpPtr> children;
  children.reserve(node->children().size());
  for (const LogicalOpPtr& child : node->children()) {
    children.push_back(DeepClone(child));
  }
  return node->WithNewChildren(std::move(children));
}

// Baseline for the *Uncached benchmarks below: the cost of materializing
// the fresh tree alone. Subtract this from BM_TreeFingerprintUncached /
// BM_PlanCacheLookupClonedRoot to isolate the rehash.
void BM_DeepCloneOnly(benchmark::State& state) {
  Query q = MakeDeepQuery(GetEnv());
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeepClone(q.root));
  }
}
BENCHMARK(BM_DeepCloneOnly);

// Pre-interner behavior: every fingerprint walks the whole tree (a fresh
// clone per iteration keeps the per-node caches cold).
void BM_TreeFingerprintUncached(benchmark::State& state) {
  Query q = MakeDeepQuery(GetEnv());
  for (auto _ : state) {
    LogicalOpPtr clone = DeepClone(q.root);
    benchmark::DoNotOptimize(TreeFingerprint(*clone));
  }
}
BENCHMARK(BM_TreeFingerprintUncached);

// Post-interner behavior: the canonical root answers from its cached
// fingerprint — one relaxed atomic load.
void BM_TreeFingerprintCached(benchmark::State& state) {
  NodeInterner interner;
  Query q = MakeDeepQuery(GetEnv());
  LogicalOpPtr canonical = interner.Intern(q.root);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TreeFingerprint(*canonical));
  }
}
BENCHMARK(BM_TreeFingerprintCached);

// Warm plan-cache lookup keyed off a canonical root: fingerprint is a
// cache read, so keying is O(disabled-rule-set) instead of O(tree).
void BM_PlanCacheLookupCanonicalRoot(benchmark::State& state) {
  NodeInterner interner;
  PlanCache cache;
  Query q = MakeDeepQuery(GetEnv());
  q.root = interner.Intern(q.root);
  cache.Insert(q, {}, OptimizeResult{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(q, {}));
  }
}
BENCHMARK(BM_PlanCacheLookupCanonicalRoot);

// The same warm lookup when every request arrives with a freshly-built
// (never interned) root — the pre-refactor steady state: full-tree rehash
// per lookup, on top of the clone cost BM_DeepCloneOnly isolates.
void BM_PlanCacheLookupClonedRoot(benchmark::State& state) {
  PlanCache cache;
  Query q = MakeDeepQuery(GetEnv());
  cache.Insert(q, {}, OptimizeResult{});
  for (auto _ : state) {
    Query fresh = q;
    fresh.root = DeepClone(q.root);
    benchmark::DoNotOptimize(cache.Lookup(fresh, {}));
  }
}
BENCHMARK(BM_PlanCacheLookupClonedRoot);

// Interning a structure that is already canonical elsewhere: per-node
// table hits (the steady state for generators emitting near-duplicate
// trees). Includes the clone cost; subtract BM_DeepCloneOnly.
void BM_InternHitResolution(benchmark::State& state) {
  NodeInterner interner;
  Query q = MakeDeepQuery(GetEnv());
  LogicalOpPtr canonical = interner.Intern(q.root);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interner.Intern(DeepClone(canonical)));
  }
}
BENCHMARK(BM_InternHitResolution);

// Fast path: re-interning the canonical instance itself (tag check only).
void BM_InternCanonicalFastPath(benchmark::State& state) {
  NodeInterner interner;
  Query q = MakeDeepQuery(GetEnv());
  LogicalOpPtr canonical = interner.Intern(q.root);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interner.Intern(canonical));
  }
}
BENCHMARK(BM_InternCanonicalFastPath);

// Memo duplicate insertion: the post-refactor dedup path resolves against
// the signature index before cloning anything.
void BM_MemoDuplicateInsert(benchmark::State& state) {
  Query q = MakeDeepQuery(GetEnv());
  Memo memo(/*rule_count=*/1);
  memo.InsertTree(*q.root);
  for (auto _ : state) {
    benchmark::DoNotOptimize(memo.InsertTree(*q.root));
  }
}
BENCHMARK(BM_MemoDuplicateInsert);

}  // namespace
}  // namespace qtf

BENCHMARK_MAIN();
