// Figure 8: number of trials to generate a query exercising each singleton
// rule — RANDOM (stochastic, [1][17]-style) vs PATTERN (rule-pattern-based,
// Section 3). Expected shape: PATTERN needs 1-2 trials almost everywhere;
// RANDOM needs up to tens per rule; the totals differ by ~an order of
// magnitude (paper: 234 vs 38 over 30 rules).

#include "bench/bench_util.h"
#include "qgen/generation.h"

namespace qtf {
namespace {

int Run() {
  auto fw = bench::MakeFramework();
  bench::Banner("Figure 8: singleton-rule query generation",
                "Trials per rule, RANDOM vs PATTERN (lower is better).");

  std::printf("%-28s %10s %10s\n", "rule", "RANDOM", "PATTERN");
  int random_failures = 0;
  const int random_cap = bench::FullScale() ? 5000 : 1500;
  // Totals come from the metrics registry (qtf.qgen.trials.*), not a
  // hand-kept sum — the snapshot delta over the loop is the same number.
  obs::MetricsSnapshot before = fw->metrics()->Snapshot();

  for (RuleId id : fw->LogicalRules()) {
    GenerationConfig random_config;
    random_config.method = GenerationMethod::kRandom;
    random_config.max_trials = random_cap;
    random_config.seed = 1000 + static_cast<uint64_t>(id);
    GenerationOutcome random =
        fw->generator()->Generate({id}, random_config).value();

    GenerationConfig pattern_config;
    pattern_config.method = GenerationMethod::kPattern;
    pattern_config.max_trials = 200;
    pattern_config.seed = 2000 + static_cast<uint64_t>(id);
    GenerationOutcome pattern =
        fw->generator()->Generate({id}, pattern_config).value();

    std::printf("%-28s %9d%s %9d%s\n", fw->rules().rule(id).name().c_str(),
                random.trials, random.success ? " " : "!",
                pattern.trials, pattern.success ? " " : "!");
    if (!random.success) ++random_failures;
  }
  obs::MetricsSnapshot after = fw->metrics()->Snapshot();
  std::printf("%-28s %10ld %10ld\n", "TOTAL",
              static_cast<long>(bench::CounterDelta(
                  before, after, "qtf.qgen.trials.random")),
              static_cast<long>(bench::CounterDelta(
                  before, after, "qtf.qgen.trials.pattern")));
  if (random_failures > 0) {
    std::printf("(%d rule(s) not found by RANDOM within %d trials;"
                " their caps are included in the total)\n",
                random_failures, random_cap);
  }
  std::printf("\npaper (SQL Server, 30 rules): RANDOM 234, PATTERN 38; "
              "PATTERN <= 4 trials per rule\n");
  return 0;
}

}  // namespace
}  // namespace qtf

int main() { return qtf::Run(); }
