// Micro-benchmarks of the substrate (google-benchmark): optimizer latency,
// executor throughput, query generation rate, memo insertion, the
// min-cost-flow solver, and the observability primitives. Not a paper
// figure — these quantify the framework itself.
//
// With QTF_METRICS_JSON=<path> set, the run additionally dumps the bench
// optimizer's metrics snapshot as JSON after the benchmarks finish (the CI
// metrics smoke step consumes this).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "compress/mcmf.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "optimizer/memo.h"
#include "optimizer/optimizer.h"
#include "qgen/generators.h"
#include "sql/render.h"
#include "rules/default_rules.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

struct Env {
  Env() {
    db = MakeTpchDatabase(TpchConfig{}).value();
    registry = MakeDefaultRuleRegistry();
    optimizer = std::make_unique<Optimizer>(registry.get());
  }
  std::unique_ptr<Database> db;
  std::unique_ptr<RuleRegistry> registry;
  std::unique_ptr<Optimizer> optimizer;
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

Query MakeJoinQuery(Env& env) {
  auto reg = std::make_shared<ColumnRegistry>();
  auto lineitem = GetOp::Create(
      env.db->catalog().GetTable("lineitem").value(), reg.get());
  auto orders = GetOp::Create(env.db->catalog().GetTable("orders").value(),
                              reg.get());
  auto join = std::make_shared<JoinOp>(
      JoinKind::kInner, lineitem, orders,
      Eq(Col(lineitem->columns()[0], ValueType::kInt64),
         Col(orders->columns()[0], ValueType::kInt64)));
  auto select = std::make_shared<SelectOp>(
      join, Cmp(CompareOp::kGt, Col(orders->columns()[3], ValueType::kDouble),
                LitDouble(250000.0)));
  return Query{select, reg};
}

void BM_OptimizeJoinQuery(benchmark::State& state) {
  Env& env = GetEnv();
  Query query = MakeJoinQuery(env);
  for (auto _ : state) {
    auto result = env.optimizer->Optimize(query);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OptimizeJoinQuery);

void BM_OptimizeWithRuleDisabled(benchmark::State& state) {
  Env& env = GetEnv();
  Query query = MakeJoinQuery(env);
  OptimizerOptions options;
  options.disabled_rules.insert(0);  // JoinCommutativity
  for (auto _ : state) {
    auto result = env.optimizer->Optimize(query, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OptimizeWithRuleDisabled);

void BM_ExecuteJoinQuery(benchmark::State& state) {
  Env& env = GetEnv();
  Query query = MakeJoinQuery(env);
  auto plan = env.optimizer->Optimize(query).value().plan;
  Executor executor(env.db.get(), query.registry.get());
  // qtf.exec.* counters land in the QTF_METRICS_JSON snapshot the CI
  // metrics smoke step asserts on.
  executor.set_metrics(env.optimizer->metrics());
  int64_t rows = 0;
  for (auto _ : state) {
    auto result = executor.Execute(*plan);
    rows += result.value().row_count();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows/iter"] =
      static_cast<double>(rows) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ExecuteJoinQuery);

void BM_RandomQueryGeneration(benchmark::State& state) {
  Env& env = GetEnv();
  RandomQueryGenerator generator(&env.db->catalog(), 11);
  for (auto _ : state) {
    Query query = generator.Generate();
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_RandomQueryGeneration);

void BM_PatternInstantiation(benchmark::State& state) {
  Env& env = GetEnv();
  PatternInstantiator instantiator(&env.db->catalog(), 12);
  const PatternNodePtr& pattern = env.registry->rule(12).pattern();
  for (auto _ : state) {
    Query query = instantiator.Instantiate(*pattern, 2);
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_PatternInstantiation);

void BM_SqlGeneration(benchmark::State& state) {
  Env& env = GetEnv();
  RandomQueryGenerator generator(&env.db->catalog(), 13);
  Query query = generator.Generate();
  for (auto _ : state) {
    std::string sql = GenerateSql(query);
    benchmark::DoNotOptimize(sql);
  }
}
BENCHMARK(BM_SqlGeneration);

void BM_MemoInsertTree(benchmark::State& state) {
  Env& env = GetEnv();
  Query query = MakeJoinQuery(env);
  for (auto _ : state) {
    Memo memo(env.registry->size());
    int root = memo.InsertTree(*query.root);
    benchmark::DoNotOptimize(root);
  }
}
BENCHMARK(BM_MemoInsertTree);

void BM_MinCostMaxFlowAssignment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    // n workers, n jobs, dense cost matrix.
    MinCostMaxFlow flow(2 * n + 2);
    int source = 0, sink = 2 * n + 1;
    for (int w = 0; w < n; ++w) flow.AddEdge(source, 1 + w, 1.0, 0.0);
    for (int w = 0; w < n; ++w) {
      for (int j = 0; j < n; ++j) {
        flow.AddEdge(1 + w, 1 + n + j, 1.0,
                     static_cast<double>((w * 31 + j * 17) % 100));
      }
    }
    for (int j = 0; j < n; ++j) flow.AddEdge(1 + n + j, sink, 1.0, 0.0);
    auto result = flow.Solve(source, sink);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MinCostMaxFlowAssignment)->Arg(8)->Arg(32);

void BM_TpchGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto db = MakeTpchDatabase(TpchConfig{});
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_TpchGeneration);

// ---- Observability primitives (the "<=5% overhead" budget) -------------

void BM_ObsCounterIncrement(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.Increment();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_ObsCounterIncrement);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Histogram histogram;
  double value = 1e-6;
  for (auto _ : state) {
    histogram.Observe(value);
    value *= 1.0000001;  // walk the buckets a little
    benchmark::DoNotOptimize(histogram);
  }
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsRegistryLookup(benchmark::State& state) {
  obs::MetricsRegistry registry;
  registry.counter("qtf.bench.lookup");
  for (auto _ : state) {
    obs::Counter* counter = registry.counter("qtf.bench.lookup");
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_ObsRegistryLookup);

void BM_ObsSnapshot(benchmark::State& state) {
  Env& env = GetEnv();  // a registry populated by the optimizer benches
  for (auto _ : state) {
    obs::MetricsSnapshot snapshot = env.optimizer->metrics()->Snapshot();
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_ObsSnapshot);

}  // namespace

/// BENCHMARK_MAIN() plus the QTF_METRICS_JSON snapshot export. Lives in
/// namespace qtf so it can reach the anonymous-namespace Env.
int MicroBenchMain(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("QTF_METRICS_JSON")) {
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write QTF_METRICS_JSON=%s\n", path);
      return 1;
    }
    std::string json = GetEnv().optimizer->metrics()->Snapshot().ToJson();
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
    std::fprintf(stderr, "metrics snapshot written to %s\n", path);
  }
  return 0;
}

}  // namespace qtf

int main(int argc, char** argv) { return qtf::MicroBenchMain(argc, argv); }
