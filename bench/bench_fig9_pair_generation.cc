// Figure 9: trials to generate queries for all nC2 rule pairs, RANDOM vs
// PATTERN (pattern composition, Section 3.2). Expected shape: the gap
// between RANDOM and PATTERN widens sharply from singletons to pairs
// (paper: n=15 -> 1187 vs 383; n=30 -> >13000 vs <1000, ~13x).

#include "bench/pair_experiment.h"

namespace qtf {
namespace {

int Run() {
  auto fw = bench::MakeFramework();
  bench::Banner("Figure 9: rule-pair query generation (trials)",
                "Total trials over all nC2 pairs, RANDOM vs PATTERN.");

  std::vector<int> sizes = bench::FullScale() ? std::vector<int>{15, 30}
                                              : std::vector<int>{8, 15};
  const int random_cap = bench::FullScale() ? 2000 : 300;

  std::printf("%6s %7s %12s %12s %9s\n", "n", "pairs", "RANDOM", "PATTERN",
              "ratio");
  for (int n : sizes) {
    bench::PairExperimentResult r =
        bench::RunPairExperiment(fw.get(), n, random_cap, 300,
                                 fw->thread_pool());
    std::printf("%6d %7d %11ld%s %11ld%s %8.1fx\n", r.n_rules, r.n_pairs,
                static_cast<long>(r.random_trials),
                r.random_failures > 0 ? "!" : " ",
                static_cast<long>(r.pattern_trials),
                r.pattern_failures > 0 ? "!" : " ",
                static_cast<double>(r.random_trials) /
                    static_cast<double>(std::max<int64_t>(r.pattern_trials, 1)));
    if (r.random_failures > 0 || r.pattern_failures > 0) {
      std::printf("       (RANDOM failed %d pairs at cap %d; PATTERN failed "
                  "%d; caps included in totals)\n",
                  r.random_failures, random_cap, r.pattern_failures);
    }
    std::printf("       PATTERN max trials for any pair: %d\n",
                r.pattern_max_trials);
  }
  std::printf("\npaper: n=15 -> 1187 vs 383; n=30 -> >13000 vs <1000; "
              "PATTERN max 5 trials per pair\n");
  return 0;
}

}  // namespace
}  // namespace qtf

int main() { return qtf::Run(); }
