#ifndef QTF_BENCH_PAIR_EXPERIMENT_H_
#define QTF_BENCH_PAIR_EXPERIMENT_H_

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "qgen/generation.h"

namespace qtf {
namespace bench {

/// Shared driver for Figures 9 and 10: generate a query for every pair over
/// the first n logical rules, by both methods.
struct PairExperimentResult {
  int n_rules = 0;
  int n_pairs = 0;
  int64_t random_trials = 0;
  int64_t pattern_trials = 0;
  double random_seconds = 0.0;
  double pattern_seconds = 0.0;
  int random_failures = 0;
  int pattern_failures = 0;
  int pattern_max_trials = 0;
};

inline PairExperimentResult RunPairExperiment(RuleTestFramework* fw,
                                              int n_rules, int random_cap,
                                              int pattern_cap,
                                              ThreadPool* pool = nullptr) {
  PairExperimentResult result;
  result.n_rules = n_rules;
  std::vector<RuleTarget> pairs = fw->LogicalRulePairs(n_rules);
  result.n_pairs = static_cast<int>(pairs.size());

  // Every pair is generated independently with its own seed, so pairs fan
  // out across the pool; per-pair trial counts are identical at any thread
  // count (only wall-clock changes), and the index-ordered reduction below
  // keeps the aggregates deterministic too.
  struct PairOutcome {
    GenerationOutcome random;
    GenerationOutcome pattern;
  };
  std::vector<PairOutcome> outcomes = ParallelFor(
      pool, result.n_pairs, [&](int i) {
        const RuleTarget& pair = pairs[static_cast<size_t>(i)];
        const uint64_t seed = static_cast<uint64_t>(i);
        PairOutcome out;
        GenerationConfig random_config;
        random_config.method = GenerationMethod::kRandom;
        random_config.max_trials = random_cap;
        random_config.seed = 40000 + seed;
        out.random =
            fw->generator()->Generate(pair.rules, random_config).value();

        GenerationConfig pattern_config;
        pattern_config.method = GenerationMethod::kPattern;
        pattern_config.max_trials = pattern_cap;
        pattern_config.seed = 80000 + seed;
        out.pattern =
            fw->generator()->Generate(pair.rules, pattern_config).value();
        return out;
      });

  for (const PairOutcome& out : outcomes) {
    result.random_trials += out.random.trials;
    result.random_seconds += out.random.seconds;
    if (!out.random.success) ++result.random_failures;

    result.pattern_trials += out.pattern.trials;
    result.pattern_seconds += out.pattern.seconds;
    if (!out.pattern.success) ++result.pattern_failures;
    if (out.pattern.success &&
        out.pattern.trials > result.pattern_max_trials) {
      result.pattern_max_trials = out.pattern.trials;
    }
  }
  return result;
}

}  // namespace bench
}  // namespace qtf

#endif  // QTF_BENCH_PAIR_EXPERIMENT_H_
