#ifndef QTF_BENCH_PAIR_EXPERIMENT_H_
#define QTF_BENCH_PAIR_EXPERIMENT_H_

#include "bench/bench_util.h"
#include "qgen/generation.h"

namespace qtf {
namespace bench {

/// Shared driver for Figures 9 and 10: generate a query for every pair over
/// the first n logical rules, by both methods.
struct PairExperimentResult {
  int n_rules = 0;
  int n_pairs = 0;
  int64_t random_trials = 0;
  int64_t pattern_trials = 0;
  double random_seconds = 0.0;
  double pattern_seconds = 0.0;
  int random_failures = 0;
  int pattern_failures = 0;
  int pattern_max_trials = 0;
};

inline PairExperimentResult RunPairExperiment(RuleTestFramework* fw,
                                              int n_rules, int random_cap,
                                              int pattern_cap) {
  PairExperimentResult result;
  result.n_rules = n_rules;
  std::vector<RuleTarget> pairs = fw->LogicalRulePairs(n_rules);
  result.n_pairs = static_cast<int>(pairs.size());
  uint64_t seed = 0;
  for (const RuleTarget& pair : pairs) {
    GenerationConfig random_config;
    random_config.method = GenerationMethod::kRandom;
    random_config.max_trials = random_cap;
    random_config.seed = 40000 + seed;
    GenerationOutcome random =
        fw->generator()->Generate(pair.rules, random_config);
    result.random_trials += random.trials;
    result.random_seconds += random.seconds;
    if (!random.success) ++result.random_failures;

    GenerationConfig pattern_config;
    pattern_config.method = GenerationMethod::kPattern;
    pattern_config.max_trials = pattern_cap;
    pattern_config.seed = 80000 + seed;
    GenerationOutcome pattern =
        fw->generator()->Generate(pair.rules, pattern_config);
    result.pattern_trials += pattern.trials;
    result.pattern_seconds += pattern.seconds;
    if (!pattern.success) ++result.pattern_failures;
    if (pattern.success && pattern.trials > result.pattern_max_trials) {
      result.pattern_max_trials = pattern.trials;
    }
    ++seed;
  }
  return result;
}

}  // namespace bench
}  // namespace qtf

#endif  // QTF_BENCH_PAIR_EXPERIMENT_H_
