// Figure 11: test-suite compression for singleton rules — total estimated
// execution cost of the suite under BASELINE / SetMultiCover / TOPK as the
// number of rules n grows (k = 10). Expected shape: both SMC and TOPK are
// far below BASELINE (paper: one to three orders of magnitude), because a
// single query often validates many rules and Plan(q) is shared.

#include "bench/compression_experiment.h"

namespace qtf {
namespace {

int Run() {
  auto fw = bench::MakeFramework();
  bench::Banner(
      "Figure 11: test-suite compression, singleton rules (k=10)",
      "Total optimizer-estimated cost of executing the suite (lower wins).");

  std::vector<int> sizes = bench::FullScale()
                               ? std::vector<int>{5, 10, 15, 20, 25, 30}
                               : std::vector<int>{5, 10, 15, 20};
  const int k = 10;

  std::printf("%6s %14s %14s %14s %11s %11s\n", "n", "BASELINE", "SMC",
              "TOPK", "BASE/SMC", "BASE/TOPK");
  for (int n : sizes) {
    auto suite = bench::MakeCompressionSuite(
        fw.get(), fw->LogicalRuleSingletons(n), k,
        9000 + static_cast<uint64_t>(n));
    if (!suite) continue;
    auto row = bench::RunCompression(fw.get(), *suite, k, fw->thread_pool());
    if (!row) continue;
    std::printf("%6d %14.0f %14.0f %14.0f %10.1fx %10.1fx\n", n,
                row->baseline, row->smc, row->topk,
                row->baseline / row->smc, row->baseline / row->topk);
  }
  std::printf("\npaper: SMC and TOPK both beat BASELINE by 1-3 orders of "
              "magnitude on singletons\n");
  return 0;
}

}  // namespace
}  // namespace qtf

int main() { return qtf::Run(); }
