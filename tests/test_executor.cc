// Physical operator semantics on a hand-built mini database, including the
// NULL edge cases correctness validation depends on (hash vs NL join
// parity, outer-join null extension, semi/anti with NULL keys, aggregate
// NULL skipping, DISTINCT/GROUP BY null grouping).

#include <algorithm>

#include <gtest/gtest.h>

#include "exec/executor.h"

namespace qtf {
namespace {

/// Two tables:
///   t(a INT, b INT nullable, s STRING):
///     (1, 10, x), (2, NULL, y), (3, 30, x), (3, 30, x)
///   u(k INT, v INT nullable):
///     (1, 100), (3, NULL), (4, 400)
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_shared<ColumnRegistry>();
    Catalog* catalog = db_.mutable_catalog();

    auto t_def = std::make_shared<TableDef>(
        "t",
        std::vector<ColumnDef>{{"a", ValueType::kInt64, 3, 1, 3, 0.0},
                               {"b", ValueType::kInt64, 3, 10, 30, 0.25},
                               {"s", ValueType::kString, 2, 0, 0, 0.0}},
        4);
    ASSERT_TRUE(catalog->AddTable(t_def).ok());
    std::vector<Row> t_rows = {
        {Value::Int64(1), Value::Int64(10), Value::String("x")},
        {Value::Int64(2), Value::Null(ValueType::kInt64), Value::String("y")},
        {Value::Int64(3), Value::Int64(30), Value::String("x")},
        {Value::Int64(3), Value::Int64(30), Value::String("x")}};
    ASSERT_TRUE(
        db_.AddTableData("t", std::make_shared<TableData>(t_rows)).ok());

    auto u_def = std::make_shared<TableDef>(
        "u",
        std::vector<ColumnDef>{{"k", ValueType::kInt64, 3, 1, 4, 0.0},
                               {"v", ValueType::kInt64, 3, 100, 400, 0.3}},
        3);
    u_def->AddKey(KeyDef{{0}});
    ASSERT_TRUE(catalog->AddTable(u_def).ok());
    std::vector<Row> u_rows = {
        {Value::Int64(1), Value::Int64(100)},
        {Value::Int64(3), Value::Null(ValueType::kInt64)},
        {Value::Int64(4), Value::Int64(400)}};
    ASSERT_TRUE(
        db_.AddTableData("u", std::make_shared<TableData>(u_rows)).ok());

    // Allocate query-level column ids for both tables.
    t_a_ = registry_->Allocate("t.a", ValueType::kInt64);
    t_b_ = registry_->Allocate("t.b", ValueType::kInt64);
    t_s_ = registry_->Allocate("t.s", ValueType::kString);
    u_k_ = registry_->Allocate("u.k", ValueType::kInt64);
    u_v_ = registry_->Allocate("u.v", ValueType::kInt64);
    t_scan_ = std::make_shared<TableScanOp>(
        t_def, std::vector<ColumnId>{t_a_, t_b_, t_s_});
    u_scan_ = std::make_shared<TableScanOp>(
        u_def, std::vector<ColumnId>{u_k_, u_v_});
    executor_ = std::make_unique<Executor>(&db_, registry_.get());
  }

  ResultSet Run(const PhysicalOpPtr& plan) {
    auto result = executor_->Execute(*plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value();
  }

  Database db_;
  ColumnRegistryPtr registry_;
  ColumnId t_a_, t_b_, t_s_, u_k_, u_v_;
  PhysicalOpPtr t_scan_, u_scan_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, TableScanReturnsAllRows) {
  ResultSet r = Run(t_scan_);
  EXPECT_EQ(r.row_count(), 4);
  EXPECT_EQ(r.columns, (std::vector<ColumnId>{t_a_, t_b_, t_s_}));
}

TEST_F(ExecutorTest, FilterKeepsOnlyTrueRows) {
  // b > 5: NULL b row is dropped (predicate NULL, not TRUE).
  auto plan = std::make_shared<FilterOp>(
      t_scan_, Cmp(CompareOp::kGt, Col(t_b_, ValueType::kInt64), LitInt(5)));
  EXPECT_EQ(Run(plan).row_count(), 3);
}

TEST_F(ExecutorTest, ComputeEvaluatesExpressions) {
  ColumnId doubled = registry_->Allocate("doubled", ValueType::kInt64);
  auto plan = std::make_shared<ComputeOp>(
      t_scan_,
      std::vector<ProjectItem>{
          {Col(t_a_, ValueType::kInt64), t_a_},
          {Arith(ArithOp::kMul, Col(t_a_, ValueType::kInt64), LitInt(2)),
           doubled}});
  ResultSet r = Run(plan);
  EXPECT_EQ(r.rows[0][1].int64(), 2 * r.rows[0][0].int64());
}

TEST_F(ExecutorTest, InnerJoinNlAndHashAgree) {
  ExprPtr pred =
      Eq(Col(t_a_, ValueType::kInt64), Col(u_k_, ValueType::kInt64));
  auto nl =
      std::make_shared<NlJoinOp>(JoinKind::kInner, t_scan_, u_scan_, pred);
  auto hash = std::make_shared<HashJoinOp>(
      JoinKind::kInner, t_scan_, u_scan_,
      std::vector<std::pair<ColumnId, ColumnId>>{{t_a_, u_k_}}, nullptr);
  ResultSet nl_result = Run(nl);
  ResultSet hash_result = Run(hash);
  // a=1 matches k=1; two a=3 rows match k=3 -> 3 rows.
  EXPECT_EQ(nl_result.row_count(), 3);
  EXPECT_TRUE(ResultBagEquals(nl_result, hash_result));
}

TEST_F(ExecutorTest, LeftOuterJoinNullExtends) {
  ExprPtr pred =
      Eq(Col(t_a_, ValueType::kInt64), Col(u_k_, ValueType::kInt64));
  auto loj =
      std::make_shared<NlJoinOp>(JoinKind::kLeftOuter, t_scan_, u_scan_, pred);
  ResultSet r = Run(loj);
  // 4 left rows: a=1 matched, a=2 unmatched (null-extended), a=3 twice.
  EXPECT_EQ(r.row_count(), 4);
  int null_extended = 0;
  for (const Row& row : r.rows) {
    if (row[3].is_null() && row[4].is_null()) ++null_extended;
  }
  EXPECT_EQ(null_extended, 1);

  auto hash_loj = std::make_shared<HashJoinOp>(
      JoinKind::kLeftOuter, t_scan_, u_scan_,
      std::vector<std::pair<ColumnId, ColumnId>>{{t_a_, u_k_}}, nullptr);
  EXPECT_TRUE(ResultBagEquals(r, Run(hash_loj)));
}

TEST_F(ExecutorTest, SemiJoinKeepsDuplicates) {
  ExprPtr pred =
      Eq(Col(t_a_, ValueType::kInt64), Col(u_k_, ValueType::kInt64));
  auto semi =
      std::make_shared<NlJoinOp>(JoinKind::kLeftSemi, t_scan_, u_scan_, pred);
  ResultSet r = Run(semi);
  // a=1 and the two a=3 duplicates pass; output columns = left only.
  EXPECT_EQ(r.row_count(), 3);
  EXPECT_EQ(r.columns, (std::vector<ColumnId>{t_a_, t_b_, t_s_}));
  auto hash_semi = std::make_shared<HashJoinOp>(
      JoinKind::kLeftSemi, t_scan_, u_scan_,
      std::vector<std::pair<ColumnId, ColumnId>>{{t_a_, u_k_}}, nullptr);
  EXPECT_TRUE(ResultBagEquals(r, Run(hash_semi)));
}

TEST_F(ExecutorTest, AntiJoinComplementsSemiOnNonNullKeys) {
  ExprPtr pred =
      Eq(Col(t_a_, ValueType::kInt64), Col(u_k_, ValueType::kInt64));
  auto anti =
      std::make_shared<NlJoinOp>(JoinKind::kLeftAnti, t_scan_, u_scan_, pred);
  ResultSet r = Run(anti);
  EXPECT_EQ(r.row_count(), 1);  // only a=2
  EXPECT_EQ(r.rows[0][0].int64(), 2);
  auto hash_anti = std::make_shared<HashJoinOp>(
      JoinKind::kLeftAnti, t_scan_, u_scan_,
      std::vector<std::pair<ColumnId, ColumnId>>{{t_a_, u_k_}}, nullptr);
  EXPECT_TRUE(ResultBagEquals(r, Run(hash_anti)));
}

TEST_F(ExecutorTest, NullJoinKeysNeverMatch) {
  // Join t.b = u.v: NULLs on either side must not match each other.
  ExprPtr pred =
      Eq(Col(t_b_, ValueType::kInt64), Col(u_v_, ValueType::kInt64));
  auto nl =
      std::make_shared<NlJoinOp>(JoinKind::kInner, t_scan_, u_scan_, pred);
  auto hash = std::make_shared<HashJoinOp>(
      JoinKind::kInner, t_scan_, u_scan_,
      std::vector<std::pair<ColumnId, ColumnId>>{{t_b_, u_v_}}, nullptr);
  ResultSet nl_result = Run(nl);
  EXPECT_EQ(nl_result.row_count(), 0);
  EXPECT_TRUE(ResultBagEquals(nl_result, Run(hash)));
  // Anti join: rows with NULL keys qualify (no TRUE match exists).
  auto anti = std::make_shared<HashJoinOp>(
      JoinKind::kLeftAnti, t_scan_, u_scan_,
      std::vector<std::pair<ColumnId, ColumnId>>{{t_b_, u_v_}}, nullptr);
  EXPECT_EQ(Run(anti).row_count(), 4);
}

TEST_F(ExecutorTest, HashJoinResidualPredicate) {
  // t.a = u.k AND u.v > 150 -> only pairs with v > 150 survive; k=3 has
  // NULL v (residual NULL -> dropped), k=1 has v=100.
  auto hash = std::make_shared<HashJoinOp>(
      JoinKind::kInner, t_scan_, u_scan_,
      std::vector<std::pair<ColumnId, ColumnId>>{{t_a_, u_k_}},
      Cmp(CompareOp::kGt, Col(u_v_, ValueType::kInt64), LitInt(150)));
  EXPECT_EQ(Run(hash).row_count(), 0);
}

TEST_F(ExecutorTest, HashAggregateSkipsNullsAndGroupsNullsTogether) {
  ColumnId count_star = registry_->Allocate("cs", ValueType::kInt64);
  ColumnId count_b = registry_->Allocate("cb", ValueType::kInt64);
  ColumnId sum_b = registry_->Allocate("sb", ValueType::kInt64);
  std::vector<AggregateItem> aggs = {
      {AggregateCall{AggKind::kCountStar, nullptr}, count_star},
      {AggregateCall{AggKind::kCount, Col(t_b_, ValueType::kInt64)}, count_b},
      {AggregateCall{AggKind::kSum, Col(t_b_, ValueType::kInt64)}, sum_b}};
  auto agg = std::make_shared<HashAggregateOp>(
      t_scan_, std::vector<ColumnId>{t_s_}, aggs);
  ResultSet r = Run(agg);
  // Groups: s=x (3 rows: b=10,30,30), s=y (1 row: b=NULL).
  ASSERT_EQ(r.row_count(), 2);
  for (const Row& row : r.rows) {
    if (row[0].str() == "x") {
      EXPECT_EQ(row[1].int64(), 3);
      EXPECT_EQ(row[2].int64(), 3);
      EXPECT_EQ(row[3].int64(), 70);
    } else {
      EXPECT_EQ(row[1].int64(), 1);
      EXPECT_EQ(row[2].int64(), 0);       // COUNT(b) skips NULL
      EXPECT_TRUE(row[3].is_null());      // SUM of no non-NULLs is NULL
    }
  }
}

TEST_F(ExecutorTest, ScalarAggregateOnEmptyInputYieldsOneRow) {
  auto empty = std::make_shared<FilterOp>(
      t_scan_, Eq(Col(t_a_, ValueType::kInt64), LitInt(999)));
  ColumnId cs = registry_->Allocate("cs", ValueType::kInt64);
  ColumnId mx = registry_->Allocate("mx", ValueType::kInt64);
  auto agg = std::make_shared<HashAggregateOp>(
      empty, std::vector<ColumnId>{},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cs},
          {AggregateCall{AggKind::kMax, Col(t_a_, ValueType::kInt64)}, mx}});
  ResultSet r = Run(agg);
  ASSERT_EQ(r.row_count(), 1);
  EXPECT_EQ(r.rows[0][0].int64(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(ExecutorTest, GroupedAggregateOnEmptyInputYieldsNoRows) {
  auto empty = std::make_shared<FilterOp>(
      t_scan_, Eq(Col(t_a_, ValueType::kInt64), LitInt(999)));
  ColumnId cs = registry_->Allocate("cs", ValueType::kInt64);
  auto agg = std::make_shared<HashAggregateOp>(
      empty, std::vector<ColumnId>{t_s_},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cs}});
  EXPECT_EQ(Run(agg).row_count(), 0);
}

TEST_F(ExecutorTest, StreamAggregateMatchesHashAggregate) {
  ColumnId cs = registry_->Allocate("cs", ValueType::kInt64);
  ColumnId avg_b = registry_->Allocate("ab", ValueType::kDouble);
  std::vector<AggregateItem> aggs = {
      {AggregateCall{AggKind::kCountStar, nullptr}, cs},
      {AggregateCall{AggKind::kAvg, Col(t_b_, ValueType::kInt64)}, avg_b}};
  auto hash = std::make_shared<HashAggregateOp>(
      t_scan_, std::vector<ColumnId>{t_a_}, aggs);
  auto sorted =
      std::make_shared<SortOp>(t_scan_, std::vector<ColumnId>{t_a_});
  auto stream = std::make_shared<StreamAggregateOp>(
      sorted, std::vector<ColumnId>{t_a_}, aggs);
  EXPECT_TRUE(ResultBagEquals(Run(hash), Run(stream)));
}

TEST_F(ExecutorTest, MinMaxAggregates) {
  ColumnId mn = registry_->Allocate("mn", ValueType::kInt64);
  ColumnId mx = registry_->Allocate("mx", ValueType::kInt64);
  auto agg = std::make_shared<HashAggregateOp>(
      t_scan_, std::vector<ColumnId>{},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kMin, Col(t_b_, ValueType::kInt64)}, mn},
          {AggregateCall{AggKind::kMax, Col(t_b_, ValueType::kInt64)}, mx}});
  ResultSet r = Run(agg);
  ASSERT_EQ(r.row_count(), 1);
  EXPECT_EQ(r.rows[0][0].int64(), 10);
  EXPECT_EQ(r.rows[0][1].int64(), 30);
}

TEST_F(ExecutorTest, SortOrdersRowsNullFirst) {
  auto sorted =
      std::make_shared<SortOp>(t_scan_, std::vector<ColumnId>{t_b_});
  ResultSet r = Run(sorted);
  ASSERT_EQ(r.row_count(), 4);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_EQ(r.rows[1][1].int64(), 10);
}

TEST_F(ExecutorTest, HashDistinctTreatsNullAsEqual) {
  // DISTINCT over (b) collapses the two (30) duplicates; NULL forms one row.
  auto project = std::make_shared<ComputeOp>(
      t_scan_,
      std::vector<ProjectItem>{{Col(t_b_, ValueType::kInt64), t_b_}});
  auto distinct = std::make_shared<HashDistinctOp>(project);
  EXPECT_EQ(Run(distinct).row_count(), 3);  // 10, NULL, 30
}

TEST_F(ExecutorTest, ConcatAppendsBothSides) {
  auto left = std::make_shared<ComputeOp>(
      t_scan_,
      std::vector<ProjectItem>{{Col(t_a_, ValueType::kInt64), t_a_}});
  auto right = std::make_shared<ComputeOp>(
      u_scan_,
      std::vector<ProjectItem>{{Col(u_k_, ValueType::kInt64), u_k_}});
  ColumnId out = registry_->Allocate("out", ValueType::kInt64);
  auto concat = std::make_shared<ConcatOp>(left, right,
                                           std::vector<ColumnId>{out});
  ResultSet r = Run(concat);
  EXPECT_EQ(r.row_count(), 7);
  EXPECT_EQ(r.columns, (std::vector<ColumnId>{out}));
}

TEST_F(ExecutorTest, RowsProducedCounterIncreases) {
  int64_t before = executor_->rows_produced();
  Run(t_scan_);
  EXPECT_GT(executor_->rows_produced(), before);
}

TEST_F(ExecutorTest, ResultBagEqualsIgnoresOrder) {
  ResultSet a = Run(t_scan_);
  ResultSet b = a;
  std::reverse(b.rows.begin(), b.rows.end());
  EXPECT_TRUE(ResultBagEquals(a, b));
  b.rows.pop_back();
  EXPECT_FALSE(ResultBagEquals(a, b));
}

TEST_F(ExecutorTest, ResultBagEqualsToleratesTinyDoubleDrift) {
  ResultSet a;
  a.columns = {0};
  a.rows = {{Value::Double(100.0)}};
  ResultSet b = a;
  b.rows[0][0] = Value::Double(100.0 + 1e-12);
  EXPECT_TRUE(ResultBagEquals(a, b));
  b.rows[0][0] = Value::Double(100.1);
  EXPECT_FALSE(ResultBagEquals(a, b));
}

}  // namespace
}  // namespace qtf
