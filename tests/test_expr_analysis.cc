// Expression analysis: conjunct handling, column collection, substitution,
// null-rejection (the outer-join simplification precondition), structural
// equality/hash.

#include <gtest/gtest.h>

#include "expr/analysis.h"

namespace qtf {
namespace {

ExprPtr IntCol(ColumnId id) { return Col(id, ValueType::kInt64); }

TEST(ColumnsOfTest, CollectsAllReferences) {
  ExprPtr e = And(Eq(IntCol(1), IntCol(2)),
                  Cmp(CompareOp::kLt, Arith(ArithOp::kAdd, IntCol(3), LitInt(1)),
                      IntCol(1)));
  ColumnSet cols = ColumnsOf(*e);
  EXPECT_EQ(cols, (ColumnSet{1, 2, 3}));
}

TEST(ReferencesTest, OnlyAndAny) {
  ExprPtr e = Eq(IntCol(1), IntCol(2));
  EXPECT_TRUE(ReferencesOnly(*e, {1, 2, 3}));
  EXPECT_FALSE(ReferencesOnly(*e, {1}));
  EXPECT_TRUE(ReferencesAny(*e, {2, 9}));
  EXPECT_FALSE(ReferencesAny(*e, {9}));
}

TEST(ConjunctTest, SplitFlattensNestedAnds) {
  ExprPtr a = Eq(IntCol(1), LitInt(1));
  ExprPtr b = Eq(IntCol(2), LitInt(2));
  ExprPtr c = Eq(IntCol(3), LitInt(3));
  ExprPtr nested = And(And(a, b), c);
  std::vector<ExprPtr> conjuncts = SplitConjuncts(nested);
  EXPECT_EQ(conjuncts.size(), 3u);
}

TEST(ConjunctTest, OrIsNotSplit) {
  ExprPtr e = Or(Eq(IntCol(1), LitInt(1)), Eq(IntCol(2), LitInt(2)));
  EXPECT_EQ(SplitConjuncts(e).size(), 1u);
}

TEST(ConjunctTest, NullPredicateSplitsToEmpty) {
  EXPECT_TRUE(SplitConjuncts(nullptr).empty());
  EXPECT_EQ(MakeConjunction({}), nullptr);
}

TEST(ConjunctTest, MakeConjunctionIsCanonical) {
  // Same conjunct set in any order must produce a structurally identical
  // expression (memo dedup depends on this).
  ExprPtr a = Eq(IntCol(1), LitInt(1));
  ExprPtr b = Cmp(CompareOp::kLt, IntCol(2), LitInt(5));
  ExprPtr c = IsNull(IntCol(3));
  ExprPtr e1 = MakeConjunction({a, b, c});
  ExprPtr e2 = MakeConjunction({c, a, b});
  ExprPtr e3 = MakeConjunction({b, c, a});
  EXPECT_TRUE(ExprEquals(*e1, *e2));
  EXPECT_TRUE(ExprEquals(*e1, *e3));
}

TEST(ConjunctTest, RoundTripSplitMake) {
  ExprPtr a = Eq(IntCol(1), LitInt(1));
  ExprPtr b = Eq(IntCol(2), LitInt(2));
  ExprPtr e = MakeConjunction({a, b});
  std::vector<ExprPtr> again = SplitConjuncts(e);
  EXPECT_EQ(again.size(), 2u);
  EXPECT_TRUE(ExprEquals(*MakeConjunction(again), *e));
}

TEST(SubstituteTest, ReplacesMappedColumns) {
  std::map<ColumnId, ExprPtr> repl;
  repl[1] = Arith(ArithOp::kAdd, IntCol(5), LitInt(1));
  ExprPtr e = Eq(IntCol(1), IntCol(2));
  ExprPtr out = SubstituteColumns(e, repl);
  ColumnSet cols = ColumnsOf(*out);
  EXPECT_EQ(cols, (ColumnSet{5, 2}));
}

TEST(SubstituteTest, IdentityWhenNothingMapped) {
  ExprPtr e = And(Eq(IntCol(1), LitInt(3)), IsNull(IntCol(2)));
  ExprPtr out = SubstituteColumns(e, {});
  EXPECT_TRUE(ExprEquals(*e, *out));
}

TEST(SubstituteTest, RecursesThroughAllOperators) {
  std::map<ColumnId, ExprPtr> repl;
  repl[1] = IntCol(9);
  ExprPtr e = Or(Not(IsNull(IntCol(1))),
                 Cmp(CompareOp::kGt, Arith(ArithOp::kMul, IntCol(1), LitInt(2)),
                     LitInt(10)));
  ExprPtr out = SubstituteColumns(e, repl);
  EXPECT_EQ(ColumnsOf(*out), (ColumnSet{9}));
}

// ---- RejectsAllNull: the LojToJoin precondition ----

TEST(RejectsAllNullTest, ComparisonOnTargetColumnRejects) {
  ExprPtr e = Eq(IntCol(1), LitInt(5));
  EXPECT_TRUE(RejectsAllNull(*e, {1}));
  EXPECT_FALSE(RejectsAllNull(*e, {2}));
}

TEST(RejectsAllNullTest, ArithmeticIsStrict) {
  ExprPtr e = Cmp(CompareOp::kLt, Arith(ArithOp::kAdd, IntCol(1), LitInt(1)),
                  LitInt(10));
  EXPECT_TRUE(RejectsAllNull(*e, {1}));
}

TEST(RejectsAllNullTest, AndNeedsOneRejectingConjunct) {
  ExprPtr rejecting = Eq(IntCol(1), LitInt(5));
  ExprPtr other = Eq(IntCol(2), LitInt(5));
  EXPECT_TRUE(RejectsAllNull(*And(rejecting, other), {1}));
  EXPECT_TRUE(RejectsAllNull(*And(other, rejecting), {1}));
  EXPECT_FALSE(RejectsAllNull(*And(other, other), {1}));
}

TEST(RejectsAllNullTest, OrNeedsBothBranchesRejecting) {
  ExprPtr on1 = Eq(IntCol(1), LitInt(5));
  ExprPtr on2 = Eq(IntCol(2), LitInt(5));
  EXPECT_FALSE(RejectsAllNull(*Or(on1, on2), {1}));
  EXPECT_TRUE(RejectsAllNull(*Or(on1, on2), {1, 2}));
  EXPECT_TRUE(RejectsAllNull(
      *Or(on1, Cmp(CompareOp::kGt, IntCol(1), LitInt(0))), {1}));
}

TEST(RejectsAllNullTest, IsNullDoesNotReject) {
  // IS NULL is satisfied by the null-extended row — it must NOT count as
  // null-rejecting.
  EXPECT_FALSE(RejectsAllNull(*IsNull(IntCol(1)), {1}));
  EXPECT_FALSE(RejectsAllNull(*Not(IsNull(IntCol(1))), {1}));
}

TEST(RejectsAllNullTest, NotOverStrictComparisonRejects) {
  // NOT(c1 = 5) on NULL c1 evaluates NOT(NULL) = NULL -> rejected.
  EXPECT_TRUE(RejectsAllNull(*Not(Eq(IntCol(1), LitInt(5))), {1}));
}

TEST(RejectsAllNullTest, ConstantsNeverReject) {
  EXPECT_FALSE(RejectsAllNull(*Lit(Value::Bool(true)), {1}));
}

// ---- structural equality / hash ----

TEST(ExprEqualsTest, DistinguishesOpsAndConstants) {
  EXPECT_TRUE(ExprEquals(*Eq(IntCol(1), LitInt(5)), *Eq(IntCol(1), LitInt(5))));
  EXPECT_FALSE(
      ExprEquals(*Eq(IntCol(1), LitInt(5)), *Eq(IntCol(1), LitInt(6))));
  EXPECT_FALSE(ExprEquals(*Eq(IntCol(1), LitInt(5)),
                          *Cmp(CompareOp::kNe, IntCol(1), LitInt(5))));
  EXPECT_FALSE(ExprEquals(*Eq(IntCol(1), LitInt(5)), *IsNull(IntCol(1))));
  EXPECT_FALSE(ExprEquals(*Arith(ArithOp::kAdd, IntCol(1), LitInt(1)),
                          *Arith(ArithOp::kSub, IntCol(1), LitInt(1))));
}

TEST(ExprEqualsTest, NullConstantsCompareEqual) {
  EXPECT_TRUE(ExprEquals(*Lit(Value::Null(ValueType::kInt64)),
                         *Lit(Value::Null(ValueType::kInt64))));
  EXPECT_FALSE(ExprEquals(*Lit(Value::Null(ValueType::kInt64)),
                          *Lit(Value::Null(ValueType::kString))));
}

TEST(ExprHashTest, EqualExpressionsHashEqual) {
  ExprPtr a = And(Eq(IntCol(1), LitInt(5)), IsNull(IntCol(2)));
  ExprPtr b = And(Eq(IntCol(1), LitInt(5)), IsNull(IntCol(2)));
  EXPECT_EQ(ExprHash(*a), ExprHash(*b));
}

TEST(ExprHashTest, DifferentExpressionsUsuallyDiffer) {
  EXPECT_NE(ExprHash(*Eq(IntCol(1), LitInt(5))),
            ExprHash(*Eq(IntCol(2), LitInt(5))));
  EXPECT_NE(ExprHash(*Eq(IntCol(1), LitInt(5))),
            ExprHash(*Eq(IntCol(1), LitInt(7))));
}

}  // namespace
}  // namespace qtf
