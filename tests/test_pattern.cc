// Rule patterns: matching, XML export/import (the paper's DBMS API), and
// composition for rule pairs (Section 3.2).

#include <gtest/gtest.h>

#include "pattern/pattern.h"
#include "rules/default_rules.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

using P = PatternNode;

class PatternTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTpchDatabase(TpchConfig{}).value();
    registry_ = std::make_shared<ColumnRegistry>();
    region_ = GetOp::Create(db_->catalog().GetTable("region").value(),
                            registry_.get());
    nation_ = GetOp::Create(db_->catalog().GetTable("nation").value(),
                            registry_.get());
  }

  std::unique_ptr<Database> db_;
  ColumnRegistryPtr registry_;
  std::shared_ptr<const GetOp> region_, nation_;
};

TEST_F(PatternTest, AnyMatchesEverything) {
  EXPECT_TRUE(MatchesPattern(*region_, *P::Any()));
  auto select = std::make_shared<SelectOp>(
      region_, Eq(Col(region_->columns()[0], ValueType::kInt64), LitInt(1)));
  EXPECT_TRUE(MatchesPattern(*select, *P::Any()));
}

TEST_F(PatternTest, JoinPatternMatchesKindAndShape) {
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       nullptr);
  EXPECT_TRUE(
      MatchesPattern(*join, *P::Join(JoinKind::kInner, P::Any(), P::Any())));
  EXPECT_FALSE(MatchesPattern(
      *join, *P::Join(JoinKind::kLeftOuter, P::Any(), P::Any())));
  EXPECT_FALSE(
      MatchesPattern(*join, *P::Op(LogicalOpKind::kSelect, {P::Any()})));
  // Unconstrained join kind matches any join.
  EXPECT_TRUE(MatchesPattern(
      *join, *P::Op(LogicalOpKind::kJoin, {P::Any(), P::Any()})));
}

TEST_F(PatternTest, TwoLevelPattern) {
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       nullptr);
  auto select = std::make_shared<SelectOp>(
      join, Eq(Col(region_->columns()[0], ValueType::kInt64), LitInt(1)));
  PatternNodePtr select_over_join =
      P::Op(LogicalOpKind::kSelect,
            {P::Join(JoinKind::kInner, P::Any(), P::Any())});
  EXPECT_TRUE(MatchesPattern(*select, *select_over_join));
  EXPECT_FALSE(MatchesPattern(*join, *select_over_join));
}

TEST_F(PatternTest, ContainsPatternSearchesSubtrees) {
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       nullptr);
  auto distinct = std::make_shared<DistinctOp>(join);
  PatternNodePtr join_pattern =
      P::Join(JoinKind::kInner, P::Any(), P::Any());
  EXPECT_FALSE(MatchesPattern(*distinct, *join_pattern));
  EXPECT_TRUE(ContainsPattern(*distinct, *join_pattern));
}

TEST(PatternNodeTest, SizeAndPlaceholders) {
  PatternNodePtr p =
      P::Op(LogicalOpKind::kGroupByAgg,
            {P::Join(JoinKind::kInner, P::Any(), P::Any())});
  EXPECT_EQ(p->Size(), 4);
  EXPECT_EQ(p->PlaceholderCount(), 2);
  EXPECT_EQ(p->ToString(), "GroupByAgg(Join[Inner](Any, Any))");
}

TEST(PatternXmlTest, RoundTripSimple) {
  PatternNodePtr p = P::Join(JoinKind::kLeftOuter, P::Any(),
                             P::Op(LogicalOpKind::kGroupByAgg, {P::Any()}));
  std::string xml = PatternToXml(*p, "TestRule");
  EXPECT_NE(xml.find("<rulepattern name=\"TestRule\">"), std::string::npos);
  EXPECT_NE(xml.find("join=\"LeftOuter\""), std::string::npos);

  std::string name;
  auto parsed = PatternFromXml(xml, &name);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(name, "TestRule");
  EXPECT_EQ((*parsed)->ToString(), p->ToString());
}

TEST(PatternXmlTest, RoundTripAllOperatorKinds) {
  PatternNodePtr p = P::Op(
      LogicalOpKind::kSelect,
      {P::Op(LogicalOpKind::kProject,
             {P::Op(LogicalOpKind::kUnionAll,
                    {P::Op(LogicalOpKind::kDistinct, {P::Any()}),
                     P::Op(LogicalOpKind::kGet, {})})})});
  std::string xml = PatternToXml(*p, "Deep");
  auto parsed = PatternFromXml(xml, nullptr);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->ToString(), p->ToString());
}

TEST(PatternXmlTest, MalformedXmlRejected) {
  EXPECT_FALSE(PatternFromXml("<bogus/>", nullptr).ok());
  EXPECT_FALSE(PatternFromXml("<rulepattern name=\"x\"><op kind=\"Nope\"/>"
                              "</rulepattern>",
                              nullptr)
                   .ok());
  EXPECT_FALSE(
      PatternFromXml("<rulepattern name=\"x\"><any/>", nullptr).ok());
}

TEST(PatternComposeTest, ProducesRootAndSubstitutionComposites) {
  PatternNodePtr a = P::Join(JoinKind::kInner, P::Any(), P::Any());
  PatternNodePtr b = P::Op(LogicalOpKind::kGroupByAgg, {P::Any()});
  std::vector<PatternNodePtr> composites = ComposePatterns(a, b);
  // 2 new-root composites + 2 substitutions into a's placeholders + 1 into
  // b's placeholder.
  EXPECT_EQ(composites.size(), 5u);

  int with_join_root = 0, with_union_root = 0;
  for (const PatternNodePtr& c : composites) {
    if (c->type() == PatternNode::Type::kOperator &&
        c->op_kind() == LogicalOpKind::kJoin && c->children().size() == 2) {
      ++with_join_root;
    }
    if (c->type() == PatternNode::Type::kOperator &&
        c->op_kind() == LogicalOpKind::kUnionAll) {
      ++with_union_root;
    }
  }
  EXPECT_GE(with_join_root, 1);
  EXPECT_EQ(with_union_root, 1);
}

TEST(PatternComposeTest, SubstitutedCompositeContainsBothPatterns) {
  PatternNodePtr a = P::Op(LogicalOpKind::kSelect, {P::Any()});
  PatternNodePtr b = P::Op(LogicalOpKind::kDistinct, {P::Any()});
  std::vector<PatternNodePtr> composites = ComposePatterns(a, b);
  bool found_nested = false;
  for (const PatternNodePtr& c : composites) {
    if (c->ToString() == "Select(Distinct(Any))") found_nested = true;
  }
  EXPECT_TRUE(found_nested);
}

TEST(PatternRegistryTest, EveryRegisteredRulePatternRoundTripsThroughXml) {
  // The paper's API: the DBMS exports each rule's pattern in XML and the
  // generator consumes it. Round-trip every pattern in the default
  // registry.
  auto registry = MakeDefaultRuleRegistry();
  for (const auto& rule : registry->rules()) {
    std::string xml = PatternToXml(*rule->pattern(), rule->name());
    std::string name;
    auto parsed = PatternFromXml(xml, &name);
    ASSERT_TRUE(parsed.ok()) << rule->name() << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(name, rule->name());
    EXPECT_EQ((*parsed)->ToString(), rule->pattern()->ToString());
  }
}

TEST(PatternRegistryTest, CompositeCountMatchesPlaceholderArithmetic) {
  // ComposePatterns produces 2 new-root composites plus one substitution
  // per placeholder of either pattern (Section 3.2).
  auto registry = MakeDefaultRuleRegistry();
  const auto& a = registry->rule(0).pattern();   // join commutativity
  const auto& b = registry->rule(12).pattern();  // group-by push below join
  std::vector<PatternNodePtr> composites = ComposePatterns(a, b);
  EXPECT_EQ(static_cast<int>(composites.size()),
            2 + a->PlaceholderCount() + b->PlaceholderCount());
  // Every composite must still contain at least one placeholder to
  // instantiate, and be strictly larger than either input.
  for (const PatternNodePtr& c : composites) {
    EXPECT_GE(c->PlaceholderCount(), 1);
    EXPECT_GT(c->Size(), std::max(a->Size(), b->Size()) - 1);
  }
}

}  // namespace
}  // namespace qtf
