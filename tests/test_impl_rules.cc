// Implementation-rule unit tests: each rule proposes physical alternatives
// with the right child groups, costs, and constructed operators. Bound
// expressions are built by inserting trees into a real memo (children
// become GroupRefs, exactly as the engine sees them).

#include <gtest/gtest.h>

#include "optimizer/memo.h"
#include "rules/implementation_rules.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

class ImplRuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTpchDatabase(TpchConfig{}).value();
    registry_ = std::make_shared<ColumnRegistry>();
    memo_ = std::make_unique<Memo>(/*rule_count=*/64);
    nation_ = GetOp::Create(db_->catalog().GetTable("nation").value(),
                            registry_.get());
    region_ = GetOp::Create(db_->catalog().GetTable("region").value(),
                            registry_.get());
  }

  /// Inserts `tree` into the memo and returns the root group's (only)
  /// bound expression.
  const GroupExpr& Insert(const LogicalOp& tree) {
    int g = memo_->InsertTree(tree);
    return *memo_->group(g).exprs[0];
  }

  std::vector<PhysicalAlternative> Apply(const Rule& rule,
                                         const GroupExpr& expr) {
    std::vector<PhysicalAlternative> out;
    if (!MatchesPattern(*expr.op, *rule.pattern())) return out;
    static_cast<const ImplementationRule&>(rule).Apply(*expr.op, cost_model_,
                                                       &out);
    return out;
  }

  /// Builds dummy child plans (table scans) matching the bound expression's
  /// child groups, good enough to exercise the alternative's build().
  std::vector<PhysicalOpPtr> DummyChildren(const PhysicalAlternative& alt) {
    std::vector<PhysicalOpPtr> children;
    for (int g : alt.child_groups) {
      // Use the group's first logical expression if it is a Get; otherwise
      // synthesize a scan over nation (layout does not matter for these
      // structural tests).
      const GroupExpr& expr = *memo_->group(g).exprs[0];
      if (expr.op->kind() == LogicalOpKind::kGet) {
        const auto& get = static_cast<const GetOp&>(*expr.op);
        children.push_back(
            std::make_shared<TableScanOp>(get.table_ptr(), get.columns()));
      } else {
        children.push_back(
            std::make_shared<TableScanOp>(nation_->table_ptr(),
                                          nation_->columns()));
      }
    }
    return children;
  }

  std::unique_ptr<Database> db_;
  ColumnRegistryPtr registry_;
  std::unique_ptr<Memo> memo_;
  CostModel cost_model_;
  std::shared_ptr<const GetOp> nation_, region_;
};

TEST_F(ImplRuleTest, GetToScanBuildsTableScan) {
  auto rule = MakeGetToScan();
  const GroupExpr& expr = Insert(*nation_);
  auto alts = Apply(*rule, expr);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_TRUE(alts[0].child_groups.empty());
  EXPECT_GT(alts[0].local_cost, 0.0);
  PhysicalOpPtr plan = alts[0].build({});
  ASSERT_EQ(plan->kind(), PhysicalOpKind::kTableScan);
  EXPECT_EQ(plan->OutputColumns(), nation_->columns());
}

TEST_F(ImplRuleTest, SelectToFilterKeepsPredicate) {
  auto rule = MakeSelectToFilter();
  auto select = std::make_shared<SelectOp>(
      nation_, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(1)));
  const GroupExpr& expr = Insert(*select);
  auto alts = Apply(*rule, expr);
  ASSERT_EQ(alts.size(), 1u);
  ASSERT_EQ(alts[0].child_groups.size(), 1u);
  PhysicalOpPtr plan = alts[0].build(DummyChildren(alts[0]));
  ASSERT_EQ(plan->kind(), PhysicalOpKind::kFilter);
  EXPECT_TRUE(ExprEquals(*static_cast<const FilterOp&>(*plan).predicate(),
                         *select->predicate()));
}

TEST_F(ImplRuleTest, JoinToHashJoinRequiresEquiColumns) {
  auto rule = MakeJoinToHashJoin();
  // Equi join: one alternative.
  auto equi = std::make_shared<JoinOp>(
      JoinKind::kInner, nation_, region_,
      Eq(Col(nation_->columns()[2], ValueType::kInt64),
         Col(region_->columns()[0], ValueType::kInt64)));
  EXPECT_EQ(Apply(*rule, Insert(*equi)).size(), 1u);

  // Cross join: no hash alternative.
  auto cross =
      std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_, nullptr);
  EXPECT_TRUE(Apply(*rule, Insert(*cross)).empty());

  // Range-only predicate: no hash alternative either.
  auto range = std::make_shared<JoinOp>(
      JoinKind::kInner, nation_, region_,
      Cmp(CompareOp::kLt, Col(nation_->columns()[0], ValueType::kInt64),
          Col(region_->columns()[0], ValueType::kInt64)));
  EXPECT_TRUE(Apply(*rule, Insert(*range)).empty());
}

TEST_F(ImplRuleTest, HashJoinSplitsResidual) {
  auto rule = MakeJoinToHashJoin();
  auto join = std::make_shared<JoinOp>(
      JoinKind::kInner, nation_, region_,
      And(Eq(Col(nation_->columns()[2], ValueType::kInt64),
             Col(region_->columns()[0], ValueType::kInt64)),
          Cmp(CompareOp::kGt, Col(nation_->columns()[0], ValueType::kInt64),
              LitInt(5))));
  auto alts = Apply(*rule, Insert(*join));
  ASSERT_EQ(alts.size(), 1u);
  PhysicalOpPtr plan = alts[0].build(DummyChildren(alts[0]));
  const auto& hash = static_cast<const HashJoinOp&>(*plan);
  EXPECT_EQ(hash.equi_pairs().size(), 1u);
  ASSERT_NE(hash.residual(), nullptr);
  EXPECT_TRUE(ReferencesAny(*hash.residual(), {nation_->columns()[0]}));
}

TEST_F(ImplRuleTest, NlJoinAlwaysAvailable) {
  auto rule = MakeJoinToNlJoin();
  for (JoinKind kind : {JoinKind::kInner, JoinKind::kLeftOuter,
                        JoinKind::kLeftSemi, JoinKind::kLeftAnti}) {
    auto join = std::make_shared<JoinOp>(kind, nation_, region_, nullptr);
    auto alts = Apply(*rule, Insert(*join));
    ASSERT_EQ(alts.size(), 1u) << JoinKindToString(kind);
    PhysicalOpPtr plan = alts[0].build(DummyChildren(alts[0]));
    EXPECT_EQ(static_cast<const NlJoinOp&>(*plan).join_kind(), kind);
  }
}

TEST_F(ImplRuleTest, GroupByImplementationsIncludeSortEnforcer) {
  ColumnId cnt = registry_->Allocate("cnt", ValueType::kInt64);
  auto agg = std::make_shared<GroupByAggOp>(
      nation_, std::vector<ColumnId>{nation_->columns()[2]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt}});
  const GroupExpr& expr = Insert(*agg);

  auto hash_alts = Apply(*MakeGroupByToHashAggregate(), expr);
  ASSERT_EQ(hash_alts.size(), 1u);
  EXPECT_EQ(hash_alts[0].build(DummyChildren(hash_alts[0]))->kind(),
            PhysicalOpKind::kHashAggregate);

  auto stream_alts = Apply(*MakeGroupByToStreamAggregate(), expr);
  ASSERT_EQ(stream_alts.size(), 1u);
  PhysicalOpPtr stream = stream_alts[0].build(DummyChildren(stream_alts[0]));
  ASSERT_EQ(stream->kind(), PhysicalOpKind::kStreamAggregate);
  // The Sort enforcer is built below the stream aggregate...
  EXPECT_EQ(stream->child(0)->kind(), PhysicalOpKind::kSort);
  // ...and is charged in the alternative's local cost.
  EXPECT_GT(stream_alts[0].local_cost,
            cost_model_.StreamAggregate(25.0) - 1e-9);
}

TEST_F(ImplRuleTest, UnionAndDistinctImplementations) {
  auto r2 = GetOp::Create(db_->catalog().GetTable("region").value(),
                          registry_.get());
  std::vector<ColumnId> out_ids;
  for (ColumnId id : region_->columns()) {
    out_ids.push_back(registry_->Allocate("u", registry_->TypeOf(id)));
  }
  auto u = std::make_shared<UnionAllOp>(region_, r2, out_ids);
  auto union_alts = Apply(*MakeUnionAllToConcat(), Insert(*u));
  ASSERT_EQ(union_alts.size(), 1u);
  PhysicalOpPtr concat = union_alts[0].build(DummyChildren(union_alts[0]));
  EXPECT_EQ(concat->kind(), PhysicalOpKind::kConcat);
  EXPECT_EQ(concat->OutputColumns(), out_ids);

  auto distinct = std::make_shared<DistinctOp>(nation_);
  auto distinct_alts =
      Apply(*MakeDistinctToHashDistinct(), Insert(*distinct));
  ASSERT_EQ(distinct_alts.size(), 1u);
  EXPECT_EQ(distinct_alts[0].build(DummyChildren(distinct_alts[0]))->kind(),
            PhysicalOpKind::kHashDistinct);
}

TEST_F(ImplRuleTest, CostsUseChildCardinalities) {
  // The same rule applied over a big table must quote a higher cost.
  auto rule = MakeSelectToFilter();
  auto lineitem = GetOp::Create(db_->catalog().GetTable("lineitem").value(),
                                registry_.get());
  auto small = std::make_shared<SelectOp>(
      region_, Eq(Col(region_->columns()[0], ValueType::kInt64), LitInt(1)));
  auto big = std::make_shared<SelectOp>(
      lineitem,
      Eq(Col(lineitem->columns()[0], ValueType::kInt64), LitInt(1)));
  auto small_alts = Apply(*rule, Insert(*small));
  auto big_alts = Apply(*rule, Insert(*big));
  ASSERT_EQ(small_alts.size(), 1u);
  ASSERT_EQ(big_alts.size(), 1u);
  EXPECT_LT(small_alts[0].local_cost, big_alts[0].local_cost);
}

}  // namespace
}  // namespace qtf
