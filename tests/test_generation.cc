// Query generation: RANDOM vs PATTERN coverage, trial efficiency, the
// extra-operator knob, pair composition, and rule relevance (Section 7).

#include <gtest/gtest.h>

#include "logical/validate.h"
#include "qgen/generation.h"
#include "qgen/generators.h"
#include "testing/framework.h"

namespace qtf {
namespace {

class GenerationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fw = RuleTestFramework::Create({});
    ASSERT_TRUE(fw.ok());
    fw_ = std::move(fw).value();
  }

  std::unique_ptr<RuleTestFramework> fw_;
};

class PerRulePatternGeneration
    : public GenerationTest,
      public ::testing::WithParamInterface<int> {};

TEST_P(PerRulePatternGeneration, PatternFindsQueryQuickly) {
  std::vector<RuleId> logical = fw_->LogicalRules();
  RuleId id = logical[static_cast<size_t>(GetParam())];
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.max_trials = 100;
  config.seed = 31 + static_cast<uint64_t>(id);
  GenerationOutcome outcome = fw_->generator()->Generate({id}, config).value();
  ASSERT_TRUE(outcome.success) << fw_->rules().rule(id).name();
  EXPECT_LE(outcome.trials, 30) << fw_->rules().rule(id).name();
  EXPECT_TRUE(outcome.rule_set.count(id) > 0);
  EXPECT_TRUE(ValidateTree(*outcome.query.root, *outcome.query.registry).ok());
  EXPECT_FALSE(outcome.sql.empty());
  EXPECT_GT(outcome.cost, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllThirtyRules, PerRulePatternGeneration,
                         ::testing::Range(0, 30));

TEST_F(GenerationTest, RandomEventuallyCoversEasyRules) {
  // RANDOM should find queries for broadly-applicable rules too (with more
  // trials) — the framework's baseline behaviour.
  RuleId select_merge = fw_->rules().FindByName("SelectMerge");
  GenerationConfig config;
  config.method = GenerationMethod::kRandom;
  config.max_trials = 500;
  config.seed = 7;
  GenerationOutcome outcome =
      fw_->generator()->Generate({select_merge}, config).value();
  EXPECT_TRUE(outcome.success);
}

TEST_F(GenerationTest, PatternBeatsRandomOnTrialsInAggregate) {
  // The headline claim of Section 3 at miniature scale: total trials over a
  // subset of rules.
  std::vector<RuleId> logical = fw_->LogicalRules();
  int pattern_total = 0, random_total = 0;
  for (int i = 0; i < 12; ++i) {
    GenerationConfig pattern_config;
    pattern_config.method = GenerationMethod::kPattern;
    pattern_config.seed = 100 + static_cast<uint64_t>(i);
    pattern_total +=
        fw_->generator()
            ->Generate({logical[static_cast<size_t>(i)]}, pattern_config)
            .value()
            .trials;
    GenerationConfig random_config;
    random_config.method = GenerationMethod::kRandom;
    random_config.max_trials = 3000;
    random_config.seed = 200 + static_cast<uint64_t>(i);
    random_total +=
        fw_->generator()
            ->Generate({logical[static_cast<size_t>(i)]}, random_config)
            .value()
            .trials;
  }
  EXPECT_LT(pattern_total, random_total);
}

TEST_F(GenerationTest, ExtraOpsGrowTheQuery) {
  RuleId id = fw_->rules().FindByName("JoinCommutativity");
  GenerationConfig small;
  small.method = GenerationMethod::kPattern;
  small.seed = 3;
  GenerationOutcome minimal = fw_->generator()->Generate({id}, small).value();
  ASSERT_TRUE(minimal.success);

  GenerationConfig big = small;
  big.extra_ops = 6;
  big.seed = 4;
  // extra_ops draws uniformly; try a few seeds to get a strictly larger
  // query.
  bool grew = false;
  for (uint64_t seed = 4; seed < 12 && !grew; ++seed) {
    big.seed = seed;
    GenerationOutcome grown = fw_->generator()->Generate({id}, big).value();
    if (grown.success && grown.operator_count > minimal.operator_count) {
      grew = true;
    }
  }
  EXPECT_TRUE(grew);
}

TEST_F(GenerationTest, PairGenerationViaComposition) {
  std::vector<RuleId> logical = fw_->LogicalRules();
  // JoinCommutativity + SelectPushBelowJoinLeft: a natural pair.
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.max_trials = 300;
  config.seed = 17;
  GenerationOutcome outcome =
      fw_->generator()->Generate({logical[0], logical[3]}, config).value();
  ASSERT_TRUE(outcome.success);
  EXPECT_TRUE(outcome.rule_set.count(logical[0]) > 0);
  EXPECT_TRUE(outcome.rule_set.count(logical[3]) > 0);
}

TEST_F(GenerationTest, RelevantQueryGeneration) {
  // Section 7 variant: the returned query's plan must change when the rule
  // is turned off.
  RuleId id = fw_->rules().FindByName("SelectPushBelowJoinRight");
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.max_trials = 500;
  config.seed = 23;
  GenerationOutcome outcome =
      fw_->generator()->GenerateRelevant(id, config).value();
  ASSERT_TRUE(outcome.success);
  auto relevant =
      IsRuleRelevant(fw_->optimizer(), outcome.query, id);
  ASSERT_TRUE(relevant.ok());
  EXPECT_TRUE(*relevant);
}

TEST_F(GenerationTest, RandomGeneratorProducesValidDiverseQueries) {
  RandomQueryGenerator generator(&fw_->catalog(), 555);
  std::set<int> op_counts;
  for (int i = 0; i < 40; ++i) {
    Query query = generator.Generate();
    ASSERT_TRUE(ValidateTree(*query.root, *query.registry).ok())
        << LogicalTreeToString(*query.root, nullptr);
    op_counts.insert(CountOps(*query.root));
  }
  EXPECT_GT(op_counts.size(), 3u);  // varied sizes
}

TEST_F(GenerationTest, RandomGeneratorDeterministicPerSeed) {
  RandomQueryGenerator g1(&fw_->catalog(), 42);
  RandomQueryGenerator g2(&fw_->catalog(), 42);
  for (int i = 0; i < 5; ++i) {
    Query a = g1.Generate();
    Query b = g2.Generate();
    EXPECT_TRUE(LogicalTreeEquals(*a.root, *b.root));
  }
}

TEST_F(GenerationTest, GenerationFailureReportsTrials) {
  // An impossible target: a rule id that exists but an absurd trial budget
  // of 1 for a hard pair.
  std::vector<RuleId> logical = fw_->LogicalRules();
  GenerationConfig config;
  config.method = GenerationMethod::kRandom;
  config.max_trials = 1;
  config.seed = 1;
  GenerationOutcome outcome =
      fw_->generator()->Generate({logical[16]}, config).value();  // LojLojAssocRight
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.trials, 1);
}

TEST_F(GenerationTest, SuiteGeneratorProducesKPerTarget) {
  auto targets = fw_->LogicalRuleSingletons(5);
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 2;
  config.seed = 60;
  auto suite = fw_->suite_generator()->Generate(targets, 4, config);
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();
  EXPECT_EQ(suite->per_target.size(), 5u);
  EXPECT_EQ(suite->queries.size(), 20u);
  for (size_t t = 0; t < suite->targets.size(); ++t) {
    EXPECT_EQ(suite->per_target[t].size(), 4u);
    for (int q : suite->per_target[t]) {
      for (RuleId id : suite->targets[t].rules) {
        EXPECT_TRUE(
            suite->queries[static_cast<size_t>(q)].rule_set.count(id) > 0);
      }
    }
    // CandidatesFor must at least contain the target's own queries.
    std::vector<int> candidates =
        suite->CandidatesFor(static_cast<int>(t));
    EXPECT_GE(candidates.size(), 4u);
  }
}

}  // namespace
}  // namespace qtf
