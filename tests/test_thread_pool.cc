// The concurrency substrate of docs/parallelism.md: submit/shutdown
// semantics, exception propagation through futures, and ParallelFor's
// deterministic result ordering.

#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace qtf {
namespace {

TEST(ThreadPool, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  std::future<int> future = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i, &executed] {
      executed.fetch_add(1);
      return i;
    }));
  }
  int sum = 0;
  for (auto& future : futures) sum += future.get();
  EXPECT_EQ(executed.load(), 100);
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> future =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&executed] { executed.fetch_add(1); });
    }
    pool.Shutdown();  // must run everything already queued
    EXPECT_EQ(executed.load(), 50);
    pool.Shutdown();  // idempotent
  }
  EXPECT_EQ(executed.load(), 50);
}

TEST(ThreadPool, TinyQueueCapacityStillCompletesEverything) {
  // Backpressure path: Submit blocks until a worker frees a slot.
  ThreadPool pool(2, /*queue_capacity=*/2);
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&executed] { executed.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(executed.load(), 64);
}

TEST(ParallelFor, DeterministicResultOrdering) {
  ThreadPool pool(4);
  std::vector<int> results =
      ParallelFor(&pool, 200, [](int i) { return i * i; });
  ASSERT_EQ(results.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
}

TEST(ParallelFor, RunsInlineWithoutPool) {
  std::vector<int> results = ParallelFor(nullptr, 5, [](int i) { return i + 1; });
  EXPECT_EQ(results, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(ParallelFor(nullptr, 0, [](int i) { return i; }).empty());
}

TEST(ParallelFor, LowestIndexExceptionWinsAndAllTasksFinish) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    ParallelFor(&pool, 20, [&executed](int i) -> int {
      executed.fetch_add(1);
      if (i == 3) throw std::runtime_error("index 3");
      if (i == 11) throw std::logic_error("index 11");
      return i;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 3");
  }
  // Every task ran (nothing abandoned mid-queue while unwinding).
  EXPECT_EQ(executed.load(), 20);
}

}  // namespace
}  // namespace qtf
