// Unit tests for the typed value system (types/value.h).

#include <gtest/gtest.h>

#include "types/value.h"

namespace qtf {
namespace {

TEST(ValueTest, ConstructionAndAccessors) {
  EXPECT_EQ(Value::Int64(42).int64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).dbl(), 2.5);
  EXPECT_EQ(Value::String("abc").str(), "abc");
  EXPECT_TRUE(Value::Bool(true).boolean());
  EXPECT_FALSE(Value::Int64(1).is_null());
  EXPECT_TRUE(Value::Null(ValueType::kString).is_null());
  EXPECT_EQ(Value::Null(ValueType::kString).type(), ValueType::kString);
}

TEST(ValueTest, DefaultIsNullInt) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kInt64);
}

TEST(ValueTest, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value::Int64(7).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value::Double(1.25).AsDouble(), 1.25);
}

TEST(ValueTest, CompareIntegers) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::Int64(5).Compare(Value::Int64(2)), 0);
  EXPECT_EQ(Value::Int64(3).Compare(Value::Int64(3)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
  EXPECT_GT(Value::String("z").Compare(Value::String("a")), 0);
}

TEST(ValueTest, CompareBooleans) {
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
  EXPECT_EQ(Value::Bool(true).Compare(Value::Bool(true)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null(ValueType::kInt64).Compare(Value::Int64(-100)), 0);
  EXPECT_GT(Value::Int64(0).Compare(Value::Null(ValueType::kInt64)), 0);
  EXPECT_EQ(Value::Null(ValueType::kInt64).Compare(
                Value::Null(ValueType::kInt64)),
            0);
}

TEST(ValueTest, SqlLiterals) {
  EXPECT_EQ(Value::Int64(42).ToSqlLiteral(), "42");
  EXPECT_EQ(Value::String("O'Brien").ToSqlLiteral(), "'O''Brien'");
  EXPECT_EQ(Value::Null(ValueType::kDouble).ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToSqlLiteral(), "TRUE");
  EXPECT_EQ(Value::Double(2.5).ToSqlLiteral(), "2.5");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(10).Hash(), Value::Int64(10).Hash());
  EXPECT_EQ(Value::String("q").Hash(), Value::String("q").Hash());
  EXPECT_EQ(Value::Null(ValueType::kInt64).Hash(),
            Value::Null(ValueType::kString).Hash());
}

TEST(RowTest, HashRowOrderSensitive) {
  Row a = {Value::Int64(1), Value::Int64(2)};
  Row b = {Value::Int64(2), Value::Int64(1)};
  Row c = {Value::Int64(1), Value::Int64(2)};
  EXPECT_EQ(HashRow(a), HashRow(c));
  EXPECT_NE(HashRow(a), HashRow(b));
}

TEST(RowTest, CompareRowsLexicographic) {
  Row a = {Value::Int64(1), Value::String("x")};
  Row b = {Value::Int64(1), Value::String("y")};
  Row c = {Value::Int64(2), Value::String("a")};
  EXPECT_LT(CompareRows(a, b), 0);
  EXPECT_LT(CompareRows(b, c), 0);
  EXPECT_EQ(CompareRows(a, a), 0);
}

TEST(RowTest, CompareRowsPrefixShorterFirst) {
  Row a = {Value::Int64(1)};
  Row b = {Value::Int64(1), Value::Int64(0)};
  EXPECT_LT(CompareRows(a, b), 0);
  EXPECT_GT(CompareRows(b, a), 0);
}

TEST(RowTest, NullGroupsTogetherInRows) {
  // SQL GROUP BY / DISTINCT treat NULLs as equal; row equality must agree.
  Row a = {Value::Null(ValueType::kInt64)};
  Row b = {Value::Null(ValueType::kInt64)};
  EXPECT_EQ(CompareRows(a, b), 0);
  EXPECT_EQ(HashRow(a), HashRow(b));
}

class ValueTypeNames : public ::testing::TestWithParam<ValueType> {};

TEST_P(ValueTypeNames, HasName) {
  EXPECT_STRNE(ValueTypeToString(GetParam()), "UNKNOWN");
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ValueTypeNames,
                         ::testing::Values(ValueType::kInt64,
                                           ValueType::kDouble,
                                           ValueType::kString,
                                           ValueType::kBool));

}  // namespace
}  // namespace qtf
