// Test-suite compression (paper Sections 4-5): the paper's Example 1 as a
// literal unit test, algorithm properties (TOPK factor-2 bound vs the exact
// solver, monotonicity soundness and savings), and the Section-7 matching
// variant.

#include <functional>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "compress/matching.h"
#include "testing/framework.h"

namespace qtf {
namespace {

/// Builds a real (small) suite over the framework so edge costs come from
/// the actual optimizer.
class CompressionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fw = RuleTestFramework::Create({});
    ASSERT_TRUE(fw.ok());
    fw_ = std::move(fw).value();
  }

  TestSuite MakeSuite(int n_rules, int k, uint64_t seed, int extra_ops = 3) {
    auto targets = fw_->LogicalRuleSingletons(n_rules);
    GenerationConfig config;
    config.method = GenerationMethod::kPattern;
    config.extra_ops = extra_ops;
    config.seed = seed;
    auto suite = fw_->suite_generator()->Generate(targets, k, config);
    EXPECT_TRUE(suite.ok()) << suite.status().ToString();
    return std::move(suite).value();
  }

  std::unique_ptr<RuleTestFramework> fw_;
};

/// Structurally-identical fresh clone of a logical tree: every node
/// reallocated, nothing interned, no cached fingerprints.
LogicalOpPtr DeepClone(const LogicalOpPtr& node) {
  std::vector<LogicalOpPtr> children;
  children.reserve(node->children().size());
  for (const LogicalOpPtr& child : node->children()) {
    children.push_back(DeepClone(child));
  }
  return node->WithNewChildren(std::move(children));
}

TEST_F(CompressionTest, BaselineMatchesPaperFormula) {
  TestSuite suite = MakeSuite(4, 2, 1);
  EdgeCostProvider provider(fw_->optimizer(), &suite);
  auto baseline = CompressBaseline(&provider);
  ASSERT_TRUE(baseline.ok());
  // Recompute by hand: sum over targets, sum over own queries of
  // (Cost(q) + Cost(q, not target)).
  double expected = 0.0;
  for (size_t t = 0; t < suite.per_target.size(); ++t) {
    for (int q : suite.per_target[t]) {
      expected += provider.NodeCost(q) +
                  provider.EdgeCost(static_cast<int>(t), q).value();
    }
  }
  EXPECT_NEAR(baseline->total_cost, expected, 1e-9);
}

TEST_F(CompressionTest, AllAlgorithmsSatisfyTheInvariant) {
  // Every valid solution maps exactly k distinct queries to each target,
  // each of which exercises the target (condition 1+2 of Section 4.1).
  const int k = 3;
  TestSuite suite = MakeSuite(6, k, 2);
  EdgeCostProvider provider(fw_->optimizer(), &suite);
  using Solver = Result<CompressionSolution> (*)(EdgeCostProvider*, int);
  std::vector<Solver> solvers = {
      [](EdgeCostProvider* p, int kk) { return CompressSetMultiCover(p, kk); },
      [](EdgeCostProvider* p, int kk) {
        return CompressTopKIndependent(p, kk, true);
      }};
  for (Solver solve : solvers) {
    auto solution = solve(&provider, k);
    ASSERT_TRUE(solution.ok());
    ASSERT_EQ(solution->assignment.size(), suite.targets.size());
    for (size_t t = 0; t < solution->assignment.size(); ++t) {
      const auto& queries = solution->assignment[t];
      EXPECT_EQ(queries.size(), static_cast<size_t>(k));
      std::set<int> distinct(queries.begin(), queries.end());
      EXPECT_EQ(distinct.size(), queries.size());
      for (int q : queries) {
        for (RuleId id : suite.targets[t].rules) {
          EXPECT_TRUE(
              suite.queries[static_cast<size_t>(q)].rule_set.count(id) > 0);
        }
      }
    }
  }
}

TEST_F(CompressionTest, CompressedSuitesNeverCostMoreThanBaseline) {
  const int k = 3;
  TestSuite suite = MakeSuite(8, k, 3);
  EdgeCostProvider provider(fw_->optimizer(), &suite);
  auto baseline = CompressBaseline(&provider);
  auto topk = CompressTopKIndependent(&provider, k, false);
  ASSERT_TRUE(baseline.ok() && topk.ok());
  EXPECT_LE(topk->total_cost, baseline->total_cost + 1e-9);
}

TEST_F(CompressionTest, MonotonicityIsSoundAndSavesCalls) {
  const int k = 3;
  TestSuite suite = MakeSuite(8, k, 4);
  EdgeCostProvider full_provider(fw_->optimizer(), &suite);
  auto full = CompressTopKIndependent(&full_provider, k, false);
  ASSERT_TRUE(full.ok());

  EdgeCostProvider lazy_provider(fw_->optimizer(), &suite);
  auto lazy = CompressTopKIndependent(&lazy_provider, k, true);
  ASSERT_TRUE(lazy.ok());

  // Sound: identical total cost (paper: "without affecting the actual
  // quality of the result").
  EXPECT_NEAR(full->total_cost, lazy->total_cost, 1e-9);
  // Saves optimizer invocations.
  EXPECT_LE(lazy->optimizer_calls, full->optimizer_calls);
}

TEST_F(CompressionTest, TopKWithinFactorTwoOfExact) {
  const int k = 2;
  TestSuite suite = MakeSuite(4, k, 5);
  EdgeCostProvider provider(fw_->optimizer(), &suite);
  auto exact = CompressExact(&provider, k);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  auto topk = CompressTopKIndependent(&provider, k, false);
  ASSERT_TRUE(topk.ok());
  EXPECT_GE(topk->total_cost, exact->total_cost - 1e-9);
  EXPECT_LE(topk->total_cost, 2.0 * exact->total_cost + 1e-9);
}

TEST_F(CompressionTest, ExactIsNeverWorseThanGreedy) {
  const int k = 1;
  TestSuite suite = MakeSuite(5, k, 6);
  EdgeCostProvider provider(fw_->optimizer(), &suite);
  auto exact = CompressExact(&provider, k);
  ASSERT_TRUE(exact.ok());
  auto smc = CompressSetMultiCover(&provider, k);
  ASSERT_TRUE(smc.ok());
  EXPECT_LE(exact->total_cost, smc->total_cost + 1e-9);
}

TEST_F(CompressionTest, SolutionCostSharesNodeCosts) {
  TestSuite suite = MakeSuite(3, 1, 7);
  EdgeCostProvider provider(fw_->optimizer(), &suite);
  // Assign the SAME query to all three targets (it must cover them; pick a
  // query covering all three if one exists, else skip).
  int shared = -1;
  for (size_t q = 0; q < suite.queries.size(); ++q) {
    bool covers_all = true;
    for (size_t t = 0; t < suite.targets.size(); ++t) {
      for (RuleId id : suite.targets[t].rules) {
        if (suite.queries[q].rule_set.count(id) == 0) covers_all = false;
      }
    }
    if (covers_all) {
      shared = static_cast<int>(q);
      break;
    }
  }
  if (shared < 0) GTEST_SKIP() << "no universally covering query";
  std::vector<std::vector<int>> assignment(suite.targets.size(),
                                           std::vector<int>{shared});
  double cost = SolutionCost(&provider, assignment).value();
  double edges = 0.0;
  for (size_t t = 0; t < suite.targets.size(); ++t) {
    edges += provider.EdgeCost(static_cast<int>(t), shared).value();
  }
  // Node cost counted once, not three times.
  EXPECT_NEAR(cost, provider.NodeCost(shared) + edges, 1e-9);
}

TEST_F(CompressionTest, PairTargetsCompress) {
  // Rule-pair version of the problem (Section 5.3): same machinery, targets
  // are pairs; disabling both rules gives the edge cost.
  std::vector<RuleId> logical = fw_->LogicalRules();
  std::vector<RuleTarget> pairs = {RuleTarget{{logical[0], logical[3]}},
                                   RuleTarget{{logical[3], logical[6]}},
                                   RuleTarget{{logical[0], logical[6]}}};
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 2;
  config.max_trials = 500;
  config.seed = 8;
  auto suite = fw_->suite_generator()->Generate(pairs, 2, config);
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();

  EdgeCostProvider provider(fw_->optimizer(), &*suite);
  auto baseline = CompressBaseline(&provider);
  auto topk = CompressTopKIndependent(&provider, 2, true);
  ASSERT_TRUE(baseline.ok() && topk.ok());
  EXPECT_LE(topk->total_cost, baseline->total_cost + 1e-9);
}

TEST_F(CompressionTest, ParallelMatchesSerialBitForBit) {
  // The thread-pool edge-cost path (docs/parallelism.md) must be a pure
  // wall-clock optimization: at every thread count, every algorithm
  // returns the same assignment, the same total cost to the last bit, and
  // the same optimizer_calls() — including under monotonicity pruning,
  // where prefetching an edge the serial scan would skip would show up
  // here as an optimizer_calls mismatch. The same contract holds across
  // tree representations: the suite as generated (roots canonical in the
  // framework's interner), explicitly re-interned roots (idempotent), and
  // fresh uninterned deep clones must all agree — interning is a pure
  // representation change (docs/architecture.md).
  const int k = 3;
  TestSuite canonical = MakeSuite(6, k, 11);

  TestSuite reinterned = canonical;
  for (TestCase& tc : reinterned.queries) {
    LogicalOpPtr root = fw_->interner()->Intern(tc.query.root);
    EXPECT_EQ(root.get(), tc.query.root.get());  // already canonical
    tc.query.root = std::move(root);
  }
  TestSuite cloned = canonical;
  for (TestCase& tc : cloned.queries) {
    tc.query.root = DeepClone(tc.query.root);
  }

  using Solver =
      std::function<Result<CompressionSolution>(EdgeCostProvider*)>;
  std::vector<std::pair<const char*, Solver>> solvers = {
      {"baseline", [](EdgeCostProvider* p) { return CompressBaseline(p); }},
      {"smc",
       [&](EdgeCostProvider* p) { return CompressSetMultiCover(p, k); }},
      {"topk-full",
       [&](EdgeCostProvider* p) {
         return CompressTopKIndependent(p, k, false);
       }},
      {"topk-pruned", [&](EdgeCostProvider* p) {
         return CompressTopKIndependent(p, k, true);
       }}};

  std::vector<std::pair<const char*, const TestSuite*>> suites = {
      {"canonical", &canonical},
      {"reinterned", &reinterned},
      {"cloned", &cloned}};

  for (const auto& [name, solve] : solvers) {
    EdgeCostProvider serial(fw_->optimizer(), &canonical);
    auto want = solve(&serial);
    ASSERT_TRUE(want.ok()) << name;

    for (const auto& [variant, suite] : suites) {
      for (int threads : {1, 2, 4}) {
        ThreadPool pool(threads);
        EdgeCostProvider provider(fw_->optimizer(), suite);
        if (threads > 1) provider.set_thread_pool(&pool);
        auto got = solve(&provider);
        ASSERT_TRUE(got.ok()) << name << "/" << variant << " @ " << threads;
        EXPECT_EQ(got->assignment, want->assignment)
            << name << "/" << variant << " @ " << threads;
        EXPECT_EQ(got->total_cost, want->total_cost)  // exact, not NEAR
            << name << "/" << variant << " @ " << threads;
        EXPECT_EQ(got->optimizer_calls, want->optimizer_calls)
            << name << "/" << variant << " @ " << threads;
      }
    }
  }
}

TEST_F(CompressionTest, ParallelPairTargetsMatchSerial) {
  // Same determinism contract on pair targets, where pruning interacts
  // with larger disabled sets.
  std::vector<RuleId> logical = fw_->LogicalRules();
  std::vector<RuleTarget> pairs = {RuleTarget{{logical[0], logical[3]}},
                                   RuleTarget{{logical[3], logical[6]}},
                                   RuleTarget{{logical[0], logical[6]}}};
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 2;
  config.max_trials = 500;
  config.seed = 12;
  auto suite = fw_->suite_generator()->Generate(pairs, 2, config);
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();

  EdgeCostProvider serial(fw_->optimizer(), &*suite);
  auto want = CompressTopKIndependent(&serial, 2, true);
  ASSERT_TRUE(want.ok());

  ThreadPool pool(4);
  EdgeCostProvider parallel(fw_->optimizer(), &*suite);
  parallel.set_thread_pool(&pool);
  auto got = CompressTopKIndependent(&parallel, 2, true);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->assignment, want->assignment);
  EXPECT_EQ(got->total_cost, want->total_cost);
  EXPECT_EQ(got->optimizer_calls, want->optimizer_calls);

  // And over uninterned clones of the same pair-target suite.
  TestSuite cloned = *suite;
  for (TestCase& tc : cloned.queries) {
    tc.query.root = DeepClone(tc.query.root);
  }
  EdgeCostProvider clone_provider(fw_->optimizer(), &cloned);
  clone_provider.set_thread_pool(&pool);
  auto clone_got = CompressTopKIndependent(&clone_provider, 2, true);
  ASSERT_TRUE(clone_got.ok());
  EXPECT_EQ(clone_got->assignment, want->assignment);
  EXPECT_EQ(clone_got->total_cost, want->total_cost);
  EXPECT_EQ(clone_got->optimizer_calls, want->optimizer_calls);
}

TEST_F(CompressionTest, OptimizerCallsMatchesMetrics) {
  // The registry's qtf.edge_cost.optimizer_calls counter and the
  // per-provider optimizer_calls() view are two faces of the same
  // accounting: their deltas must agree for every algorithm, serial and
  // parallel, so experiments can report from snapshots alone.
  const int k = 3;
  TestSuite suite = MakeSuite(6, k, 13);

  using Solver =
      std::function<Result<CompressionSolution>(EdgeCostProvider*)>;
  std::vector<std::pair<const char*, Solver>> solvers = {
      {"baseline", [](EdgeCostProvider* p) { return CompressBaseline(p); }},
      {"smc",
       [&](EdgeCostProvider* p) { return CompressSetMultiCover(p, k); }},
      {"topk-pruned", [&](EdgeCostProvider* p) {
         return CompressTopKIndependent(p, k, true);
       }}};

  for (const auto& [name, solve] : solvers) {
    for (int threads : {1, 2, 4}) {
      ThreadPool pool(threads);
      obs::MetricsSnapshot before = fw_->metrics()->Snapshot();
      EdgeCostProvider provider(fw_->optimizer(), &suite);
      if (threads > 1) provider.set_thread_pool(&pool);
      auto solution = solve(&provider);
      ASSERT_TRUE(solution.ok()) << name << " @ " << threads;
      obs::MetricsSnapshot after = fw_->metrics()->Snapshot();
      const int64_t delta =
          after.CounterValue("qtf.edge_cost.optimizer_calls") -
          before.CounterValue("qtf.edge_cost.optimizer_calls");
      EXPECT_EQ(delta, solution->optimizer_calls) << name << " @ " << threads;
      EXPECT_EQ(delta, provider.optimizer_calls()) << name << " @ " << threads;
    }
  }
}

TEST_F(CompressionTest, MonotonicityPruningIsCounted) {
  const int k = 3;
  TestSuite suite = MakeSuite(8, k, 14);
  obs::MetricsSnapshot before = fw_->metrics()->Snapshot();
  EdgeCostProvider full_provider(fw_->optimizer(), &suite);
  auto full = CompressTopKIndependent(&full_provider, k, false);
  ASSERT_TRUE(full.ok());
  obs::MetricsSnapshot mid = fw_->metrics()->Snapshot();
  // The full scan never prunes.
  EXPECT_EQ(mid.CounterValue("qtf.compress.monotonicity_pruned"),
            before.CounterValue("qtf.compress.monotonicity_pruned"));

  EdgeCostProvider lazy_provider(fw_->optimizer(), &suite);
  auto lazy = CompressTopKIndependent(&lazy_provider, k, true);
  ASSERT_TRUE(lazy.ok());
  obs::MetricsSnapshot after = fw_->metrics()->Snapshot();
  const int64_t pruned =
      after.CounterValue("qtf.compress.monotonicity_pruned") -
      mid.CounterValue("qtf.compress.monotonicity_pruned");
  // Edges skipped == the invocation savings the pruned run achieved over
  // the full scan (both scans otherwise visit identical candidate lists;
  // the final SolutionCost() edges are already cached in both runs).
  EXPECT_EQ(pruned, full->optimizer_calls - lazy->optimizer_calls);
}

TEST_F(CompressionTest, NoSharingMatchingVariant) {
  const int k = 2;
  TestSuite suite = MakeSuite(4, k, 9);
  EdgeCostProvider provider(fw_->optimizer(), &suite);
  auto matching = CompressNoSharingMatching(&provider, k);
  ASSERT_TRUE(matching.ok()) << matching.status().ToString();

  // Each target gets k queries; no query is used twice anywhere.
  std::set<int> used;
  for (const auto& queries : matching->assignment) {
    EXPECT_EQ(queries.size(), static_cast<size_t>(k));
    for (int q : queries) {
      EXPECT_TRUE(used.insert(q).second) << "query " << q << " shared";
    }
  }

  // The shared (TOPK) solution can only be cheaper or equal, since sharing
  // relaxes the constraint.
  auto topk = CompressTopKIndependent(&provider, k, false);
  ASSERT_TRUE(topk.ok());
  EXPECT_LE(topk->total_cost, matching->total_cost + 1e-9);
}

TEST_F(CompressionTest, MatchingInfeasibleWhenQueriesTooFew) {
  TestSuite suite = MakeSuite(2, 1, 10);
  // Demand more disjoint queries than exist.
  EdgeCostProvider provider(fw_->optimizer(), &suite);
  auto matching = CompressNoSharingMatching(&provider, 5);
  EXPECT_FALSE(matching.ok());
}

}  // namespace
}  // namespace qtf
