// Expression evaluation semantics: SQL three-valued logic, NULL-strict
// comparisons/arithmetic, IS NULL, division by zero.

#include <optional>

#include <gtest/gtest.h>

#include "expr/eval.h"

namespace qtf {
namespace {

// Row layout: c0 int, c1 int, c2 double, c3 string, c4 bool.
class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : bindings_({0, 1, 2, 3, 4}) {}

  Value EvalExpr(const ExprPtr& expr, const Row& row) {
    auto result = Eval(*expr, bindings_, row);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value();
  }

  Row MakeRow(std::optional<int64_t> a, std::optional<int64_t> b) {
    Row row;
    row.push_back(a ? Value::Int64(*a) : Value::Null(ValueType::kInt64));
    row.push_back(b ? Value::Int64(*b) : Value::Null(ValueType::kInt64));
    row.push_back(Value::Double(1.5));
    row.push_back(Value::String("abc"));
    row.push_back(Value::Bool(true));
    return row;
  }

  ColumnBindings bindings_;
  ExprPtr a_ = Col(0, ValueType::kInt64);
  ExprPtr b_ = Col(1, ValueType::kInt64);
};

TEST_F(EvalTest, ColumnRefAndConstant) {
  Row row = MakeRow(7, 8);
  EXPECT_EQ(EvalExpr(a_, row).int64(), 7);
  EXPECT_EQ(EvalExpr(LitInt(3), row).int64(), 3);
  EXPECT_EQ(EvalExpr(LitString("x"), row).str(), "x");
}

TEST_F(EvalTest, ComparisonOperators) {
  Row row = MakeRow(2, 3);
  EXPECT_FALSE(EvalExpr(Eq(a_, b_), row).boolean());
  EXPECT_TRUE(EvalExpr(Cmp(CompareOp::kNe, a_, b_), row).boolean());
  EXPECT_TRUE(EvalExpr(Cmp(CompareOp::kLt, a_, b_), row).boolean());
  EXPECT_TRUE(EvalExpr(Cmp(CompareOp::kLe, a_, b_), row).boolean());
  EXPECT_FALSE(EvalExpr(Cmp(CompareOp::kGt, a_, b_), row).boolean());
  EXPECT_FALSE(EvalExpr(Cmp(CompareOp::kGe, a_, b_), row).boolean());
}

TEST_F(EvalTest, ComparisonWithNullIsNull) {
  Row row = MakeRow(std::nullopt, 3);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    Value v = EvalExpr(Cmp(op, a_, b_), row);
    EXPECT_TRUE(v.is_null()) << CompareOpToSql(op);
    EXPECT_EQ(v.type(), ValueType::kBool);
  }
}

TEST_F(EvalTest, MixedIntDoubleComparison) {
  Row row = MakeRow(1, 0);
  // c0 (int 1) < c2 (double 1.5)
  EXPECT_TRUE(
      EvalExpr(Cmp(CompareOp::kLt, a_, Col(2, ValueType::kDouble)), row)
          .boolean());
}

struct KleeneCase {
  std::optional<bool> left;
  std::optional<bool> right;
  std::optional<bool> and_result;
  std::optional<bool> or_result;
};

class KleeneLogicTest : public ::testing::TestWithParam<KleeneCase> {};

TEST_P(KleeneLogicTest, AndOrFollowKleene) {
  const KleeneCase& c = GetParam();
  // Encode TRUE/FALSE/NULL booleans through comparisons over int columns.
  Row row;
  auto encode = [&row](std::optional<bool> b) -> ExprPtr {
    // value 1 means TRUE (1=1), 0 means FALSE (0=1), null -> NULL.
    if (!b.has_value()) {
      row.push_back(Value::Null(ValueType::kInt64));
    } else {
      row.push_back(Value::Int64(*b ? 1 : 0));
    }
    ColumnId id = static_cast<ColumnId>(row.size() - 1);
    return Eq(Col(id, ValueType::kInt64), LitInt(1));
  };
  ExprPtr left = encode(c.left);
  ExprPtr right = encode(c.right);
  ColumnBindings bindings({0, 1});

  Value and_v = Eval(*And(left, right), bindings, row).value();
  Value or_v = Eval(*Or(left, right), bindings, row).value();
  if (c.and_result.has_value()) {
    ASSERT_FALSE(and_v.is_null());
    EXPECT_EQ(and_v.boolean(), *c.and_result);
  } else {
    EXPECT_TRUE(and_v.is_null());
  }
  if (c.or_result.has_value()) {
    ASSERT_FALSE(or_v.is_null());
    EXPECT_EQ(or_v.boolean(), *c.or_result);
  } else {
    EXPECT_TRUE(or_v.is_null());
  }
}

constexpr std::optional<bool> T = true, F = false, N = std::nullopt;

INSTANTIATE_TEST_SUITE_P(
    FullTruthTable, KleeneLogicTest,
    ::testing::Values(KleeneCase{T, T, T, T}, KleeneCase{T, F, F, T},
                      KleeneCase{F, T, F, T}, KleeneCase{F, F, F, F},
                      KleeneCase{T, N, N, T}, KleeneCase{N, T, N, T},
                      KleeneCase{F, N, F, N}, KleeneCase{N, F, F, N},
                      KleeneCase{N, N, N, N}));

TEST_F(EvalTest, NotSemantics) {
  Row row = MakeRow(1, std::nullopt);
  EXPECT_FALSE(EvalExpr(Not(Eq(a_, LitInt(1))), row).boolean());
  EXPECT_TRUE(EvalExpr(Not(Eq(a_, LitInt(2))), row).boolean());
  EXPECT_TRUE(EvalExpr(Not(Eq(b_, LitInt(1))), row).is_null());
}

TEST_F(EvalTest, IsNullNeverReturnsNull) {
  Row row = MakeRow(1, std::nullopt);
  EXPECT_FALSE(EvalExpr(IsNull(a_), row).boolean());
  EXPECT_TRUE(EvalExpr(IsNull(b_), row).boolean());
  EXPECT_FALSE(EvalExpr(Not(IsNull(a_)), row).is_null());
}

TEST_F(EvalTest, IntegerArithmetic) {
  Row row = MakeRow(10, 3);
  EXPECT_EQ(EvalExpr(Arith(ArithOp::kAdd, a_, b_), row).int64(), 13);
  EXPECT_EQ(EvalExpr(Arith(ArithOp::kSub, a_, b_), row).int64(), 7);
  EXPECT_EQ(EvalExpr(Arith(ArithOp::kMul, a_, b_), row).int64(), 30);
  EXPECT_EQ(EvalExpr(Arith(ArithOp::kDiv, a_, b_), row).int64(), 3);
}

TEST_F(EvalTest, DoubleArithmeticWidens) {
  Row row = MakeRow(10, 0);
  ExprPtr d = Col(2, ValueType::kDouble);  // 1.5
  Value v = EvalExpr(Arith(ArithOp::kAdd, a_, d), row);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.dbl(), 11.5);
}

TEST_F(EvalTest, ArithmeticNullPropagates) {
  Row row = MakeRow(std::nullopt, 3);
  EXPECT_TRUE(EvalExpr(Arith(ArithOp::kAdd, a_, b_), row).is_null());
  EXPECT_TRUE(EvalExpr(Arith(ArithOp::kMul, a_, LitInt(2)), row).is_null());
}

TEST_F(EvalTest, DivisionByZeroYieldsNull) {
  Row row = MakeRow(10, 0);
  EXPECT_TRUE(EvalExpr(Arith(ArithOp::kDiv, a_, b_), row).is_null());
  EXPECT_TRUE(
      EvalExpr(Arith(ArithOp::kDiv, LitDouble(1.0), LitDouble(0.0)), row)
          .is_null());
}

TEST_F(EvalTest, ShortCircuitAndWithFalseIgnoresNull) {
  // FALSE AND NULL must be FALSE (not NULL).
  Row row = MakeRow(std::nullopt, 3);
  ExprPtr false_expr = Eq(LitInt(0), LitInt(1));
  ExprPtr null_expr = Eq(a_, LitInt(1));
  Value v = EvalExpr(And(false_expr, null_expr), row);
  ASSERT_FALSE(v.is_null());
  EXPECT_FALSE(v.boolean());
}

TEST_F(EvalTest, IsTrueHelper) {
  EXPECT_TRUE(IsTrue(Value::Bool(true)));
  EXPECT_FALSE(IsTrue(Value::Bool(false)));
  EXPECT_FALSE(IsTrue(Value::Null(ValueType::kBool)));
}

TEST(ColumnBindingsTest, PositionsFollowLayout) {
  ColumnBindings bindings({7, 3, 9});
  EXPECT_EQ(bindings.PositionOf(7), 0);
  EXPECT_EQ(bindings.PositionOf(3), 1);
  EXPECT_EQ(bindings.PositionOf(9), 2);
  EXPECT_TRUE(bindings.Contains(3));
  EXPECT_FALSE(bindings.Contains(4));
}

TEST(ExprToStringTest, RendersSqlish) {
  ExprPtr e = And(Eq(Col(0, ValueType::kInt64), LitInt(5)),
                  Not(IsNull(Col(1, ValueType::kString))));
  EXPECT_EQ(e->ToString(nullptr), "((c0 = 5) AND (NOT (c1 IS NULL)))");
}

}  // namespace
}  // namespace qtf
