// Derived logical properties: keys, cardinality, distinct counts,
// nullability, column types, and equi-join extraction.

#include <gtest/gtest.h>

#include "logical/props.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

class PropsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTpchDatabase(TpchConfig{}).value();
    registry_ = std::make_shared<ColumnRegistry>();
  }

  std::shared_ptr<const GetOp> Get(const std::string& name) {
    return GetOp::Create(db_->catalog().GetTable(name).value(),
                         registry_.get());
  }

  std::unique_ptr<Database> db_;
  ColumnRegistryPtr registry_;
};

TEST_F(PropsTest, GetPropsFromCatalog) {
  auto nation = Get("nation");
  LogicalProps props = DeriveTreeProps(*nation);
  EXPECT_DOUBLE_EQ(props.cardinality, 25.0);
  EXPECT_EQ(props.output_cols.size(), 3u);
  // n_nationkey is the primary key.
  EXPECT_TRUE(props.HasKeyWithin({nation->columns()[0]}));
  EXPECT_FALSE(props.HasKeyWithin({nation->columns()[2]}));
  EXPECT_EQ(props.TypeOf(nation->columns()[1]), ValueType::kString);
  EXPECT_TRUE(props.nullable.empty());  // no nullable nation columns
}

TEST_F(PropsTest, NullableColumnsTracked) {
  auto supplier = Get("supplier");
  LogicalProps props = DeriveTreeProps(*supplier);
  // s_acctbal (ordinal 3) has null_fraction > 0.
  EXPECT_TRUE(props.nullable.count(supplier->columns()[3]) > 0);
  EXPECT_EQ(props.nullable.count(supplier->columns()[0]), 0u);
}

TEST_F(PropsTest, SelectScalesCardinalityPreservesKeys) {
  auto nation = Get("nation");
  ColumnId key = nation->columns()[0];
  auto select = std::make_shared<SelectOp>(
      nation, Eq(Col(key, ValueType::kInt64), LitInt(3)));
  LogicalProps props = DeriveTreeProps(*select);
  EXPECT_LT(props.cardinality, 25.0);
  EXPECT_TRUE(props.HasKeyWithin({key}));
}

TEST_F(PropsTest, PkFkJoinPreservesLeftKeys) {
  auto nation = Get("nation");
  auto region = Get("region");
  ColumnId n_key = nation->columns()[0];
  ColumnId n_regionkey = nation->columns()[2];
  ColumnId r_key = region->columns()[0];
  auto join = std::make_shared<JoinOp>(
      JoinKind::kInner, nation, region,
      Eq(Col(n_regionkey, ValueType::kInt64), Col(r_key, ValueType::kInt64)));
  LogicalProps props = DeriveTreeProps(*join);
  // Right side unique on its join column -> nation's key survives.
  EXPECT_TRUE(props.HasKeyWithin({n_key}));
  // ~25 rows expected (each nation matches exactly one region).
  EXPECT_NEAR(props.cardinality, 25.0, 10.0);
}

TEST_F(PropsTest, LeftOuterJoinMarksRightNullable) {
  auto nation = Get("nation");
  auto region = Get("region");
  auto loj = std::make_shared<JoinOp>(
      JoinKind::kLeftOuter, nation, region,
      Eq(Col(nation->columns()[2], ValueType::kInt64),
         Col(region->columns()[0], ValueType::kInt64)));
  LogicalProps props = DeriveTreeProps(*loj);
  for (ColumnId id : region->columns()) {
    EXPECT_TRUE(props.nullable.count(id) > 0);
  }
  EXPECT_GE(props.cardinality, 25.0);
}

TEST_F(PropsTest, SemiJoinKeepsLeftShape) {
  auto nation = Get("nation");
  auto region = Get("region");
  auto semi = std::make_shared<JoinOp>(
      JoinKind::kLeftSemi, nation, region,
      Eq(Col(nation->columns()[2], ValueType::kInt64),
         Col(region->columns()[0], ValueType::kInt64)));
  LogicalProps props = DeriveTreeProps(*semi);
  EXPECT_EQ(props.output_cols.size(), 3u);
  EXPECT_LE(props.cardinality, 25.0 + 1e-9);
  EXPECT_TRUE(props.HasKeyWithin({nation->columns()[0]}));
}

TEST_F(PropsTest, GroupByMakesGroupColsAKey) {
  auto customer = Get("customer");
  ColumnId c_nationkey = customer->columns()[2];
  ColumnId agg_out = registry_->Allocate("cnt", ValueType::kInt64);
  auto agg = std::make_shared<GroupByAggOp>(
      customer, std::vector<ColumnId>{c_nationkey},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, agg_out}});
  LogicalProps props = DeriveTreeProps(*agg);
  EXPECT_TRUE(props.HasKeyWithin({c_nationkey}));
  EXPECT_LE(props.cardinality, 25.0 + 1e-9);  // at most 25 nations
  EXPECT_EQ(props.TypeOf(agg_out), ValueType::kInt64);
  // COUNT(*) is never NULL; group col not nullable.
  EXPECT_EQ(props.nullable.count(agg_out), 0u);
}

TEST_F(PropsTest, ScalarAggregateHasCardinalityOne) {
  auto customer = Get("customer");
  ColumnId agg_out = registry_->Allocate("cnt", ValueType::kInt64);
  auto agg = std::make_shared<GroupByAggOp>(
      customer, std::vector<ColumnId>{},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, agg_out}});
  LogicalProps props = DeriveTreeProps(*agg);
  EXPECT_DOUBLE_EQ(props.cardinality, 1.0);
  // The empty set is a key (at most one row), so any set contains it.
  EXPECT_TRUE(props.HasKeyWithin({}));
}

TEST_F(PropsTest, SumAggregateIsNullable) {
  auto customer = Get("customer");
  ColumnId agg_out = registry_->Allocate("s", ValueType::kDouble);
  auto agg = std::make_shared<GroupByAggOp>(
      customer, std::vector<ColumnId>{customer->columns()[2]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kSum,
                         Col(customer->columns()[3], ValueType::kDouble)},
           agg_out}});
  LogicalProps props = DeriveTreeProps(*agg);
  EXPECT_TRUE(props.nullable.count(agg_out) > 0);
}

TEST_F(PropsTest, DistinctBoundsCardinalityAndAddsKey) {
  auto customer = Get("customer");
  auto project = std::make_shared<ProjectOp>(
      customer,
      std::vector<ProjectItem>{
          {Col(customer->columns()[4], ValueType::kString),
           customer->columns()[4]}});  // c_mktsegment: 5 distinct
  auto distinct = std::make_shared<DistinctOp>(project);
  LogicalProps props = DeriveTreeProps(*distinct);
  EXPECT_LE(props.cardinality, 5.0 + 1e-9);
  EXPECT_TRUE(props.HasKeyWithin(props.OutputSet()));
}

TEST_F(PropsTest, UnionAllSumsCardinalityDropsKeys) {
  auto r1 = Get("region");
  auto r2 = Get("region");
  std::vector<ColumnId> out_ids;
  for (ColumnId id : r1->columns()) {
    out_ids.push_back(registry_->Allocate("u", registry_->TypeOf(id)));
  }
  auto u = std::make_shared<UnionAllOp>(r1, r2, out_ids);
  LogicalProps props = DeriveTreeProps(*u);
  EXPECT_DOUBLE_EQ(props.cardinality, 10.0);
  EXPECT_TRUE(props.keys.empty());
}

TEST_F(PropsTest, ProjectDropsKeysWhoseColumnsVanish) {
  auto nation = Get("nation");
  auto project = std::make_shared<ProjectOp>(
      nation, std::vector<ProjectItem>{
                  {Col(nation->columns()[1], ValueType::kString),
                   nation->columns()[1]}});
  LogicalProps props = DeriveTreeProps(*project);
  EXPECT_FALSE(props.HasKeyWithin(props.OutputSet()));
}

TEST_F(PropsTest, EquiJoinExtraction) {
  auto nation = Get("nation");
  auto region = Get("region");
  ColumnId n_regionkey = nation->columns()[2];
  ColumnId r_key = region->columns()[0];
  ExprPtr pred = And(
      Eq(Col(n_regionkey, ValueType::kInt64), Col(r_key, ValueType::kInt64)),
      Cmp(CompareOp::kGt, Col(nation->columns()[0], ValueType::kInt64),
          LitInt(5)));
  ColumnSet left(nation->columns().begin(), nation->columns().end());
  ColumnSet right(region->columns().begin(), region->columns().end());
  EquiJoinInfo info = ExtractEquiJoin(pred, left, right);
  ASSERT_EQ(info.pairs.size(), 1u);
  EXPECT_EQ(info.pairs[0].first, n_regionkey);
  EXPECT_EQ(info.pairs[0].second, r_key);
  EXPECT_EQ(info.residual.size(), 1u);
}

TEST_F(PropsTest, EquiJoinExtractionNormalizesSideOrder) {
  auto nation = Get("nation");
  auto region = Get("region");
  // Written as r_key = n_regionkey (right col first).
  ExprPtr pred = Eq(Col(region->columns()[0], ValueType::kInt64),
                    Col(nation->columns()[2], ValueType::kInt64));
  ColumnSet left(nation->columns().begin(), nation->columns().end());
  ColumnSet right(region->columns().begin(), region->columns().end());
  EquiJoinInfo info = ExtractEquiJoin(pred, left, right);
  ASSERT_EQ(info.pairs.size(), 1u);
  EXPECT_EQ(info.pairs[0].first, nation->columns()[2]);
  EXPECT_EQ(info.pairs[0].second, region->columns()[0]);
}

TEST_F(PropsTest, SelectivityEqualityUsesDistinctCount) {
  auto customer = Get("customer");
  LogicalProps props = DeriveTreeProps(*customer);
  ExprPtr eq = Eq(Col(customer->columns()[2], ValueType::kInt64), LitInt(5));
  double sel = EstimateSelectivity(*eq, props);
  EXPECT_NEAR(sel, 1.0 / 25.0, 1e-9);  // 25 distinct nation keys
}

TEST_F(PropsTest, SelectivityCombinators) {
  auto customer = Get("customer");
  LogicalProps props = DeriveTreeProps(*customer);
  ExprPtr eq = Eq(Col(customer->columns()[2], ValueType::kInt64), LitInt(5));
  double s = EstimateSelectivity(*eq, props);
  EXPECT_NEAR(EstimateSelectivity(*And(eq, eq), props), s * s, 1e-12);
  EXPECT_NEAR(EstimateSelectivity(*Or(eq, eq), props), s + s - s * s, 1e-12);
  EXPECT_NEAR(EstimateSelectivity(*Not(eq), props), 1.0 - s, 1e-12);
}

}  // namespace
}  // namespace qtf
