// The rule DSL front to back: lexer/parser diagnostics (1-based line:col,
// kInvalidArgument, recursion caps), compiler binding errors, per-rule
// differential equivalence of every compiled twin against its hand-written
// C++ oracle at the Apply() level, registry id stability under mixed
// builtin+DSL registration, and a seeded spec fuzzer proving malformed or
// machine-generated rules are rejected with diagnostics — never a crash.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "logical/validate.h"
#include "obs/metrics.h"
#include "optimizer/rule.h"
#include "pattern/pattern.h"
#include "ruledsl/compiler.h"
#include "ruledsl/fuzz.h"
#include "ruledsl/lexer.h"
#include "ruledsl/parser.h"
#include "rules/default_rules.h"
#include "rules/exploration_rules.h"
#include "storage/tpch.h"
#include "testing/framework.h"

namespace qtf {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

std::string DslDir() { return std::string(QTF_SOURCE_DIR) + "/rules/dsl/"; }

// ---- lexer ----

TEST(RuleDslLexerTest, TokenizesKeywordsPlaceholdersAndPunctuation) {
  auto tokens =
      ruledsl::LexRuleDsl("rule R {\n  match t: join(inner, $A, $B)\n}");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  ASSERT_GE(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[0].kind, ruledsl::TokenKind::kRule);
  EXPECT_EQ((*tokens)[1].kind, ruledsl::TokenKind::kIdent);
  EXPECT_EQ((*tokens)[1].text, "R");
  EXPECT_EQ((*tokens)[3].kind, ruledsl::TokenKind::kMatch);
  // Positions are 1-based line:col; `match` opens line 2 column 3.
  EXPECT_EQ((*tokens)[3].line, 2);
  EXPECT_EQ((*tokens)[3].col, 3);
  const auto placeholder =
      std::find_if(tokens->begin(), tokens->end(), [](const auto& t) {
        return t.kind == ruledsl::TokenKind::kPlaceholder;
      });
  ASSERT_NE(placeholder, tokens->end());
  EXPECT_EQ(placeholder->text, "A");
  EXPECT_EQ(tokens->back().kind, ruledsl::TokenKind::kEnd);
}

TEST(RuleDslLexerTest, CommentsAreSkippedAndTrackLines) {
  auto tokens = ruledsl::LexRuleDsl(
      "-- line comment\n/* block\ncomment */ rule");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  ASSERT_EQ(tokens->size(), 2u);  // `rule` + end
  EXPECT_EQ((*tokens)[0].kind, ruledsl::TokenKind::kRule);
  EXPECT_EQ((*tokens)[0].line, 3);
}

TEST(RuleDslLexerTest, ErrorsCarryLineAndColumn) {
  {
    auto tokens = ruledsl::LexRuleDsl("rule R {\n  $1bad\n}");
    ASSERT_FALSE(tokens.ok());
    EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(tokens.status().message().find("2:3"), std::string::npos)
        << tokens.status().ToString();
  }
  {
    auto tokens = ruledsl::LexRuleDsl("rule R { /* never closed");
    ASSERT_FALSE(tokens.ok());
    EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(tokens.status().message().find("1:10"), std::string::npos)
        << tokens.status().ToString();
  }
  {
    auto tokens = ruledsl::LexRuleDsl("rule R ? {}");
    ASSERT_FALSE(tokens.ok());
    EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---- parser ----

TEST(RuleDslParserTest, ParsesAFullRule) {
  auto specs = ruledsl::ParseRuleSpecs(
      "rule LojToJoin {\n"
      "  match s: select(l: join(louter, $A, $B))\n"
      "  when rejects_null(pred(s), cols($B))\n"
      "  rewrite select(join(inner, $A, $B, pred(l)), pred(s))\n"
      "}\n");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 1u);
  const ruledsl::RuleSpec& spec = (*specs)[0];
  EXPECT_EQ(spec.name, "LojToJoin");
  EXPECT_EQ(spec.pattern.kind, ruledsl::PatternSpec::Kind::kOp);
  EXPECT_EQ(spec.pattern.op_kind, LogicalOpKind::kSelect);
  EXPECT_EQ(spec.pattern.label, "s");
  ASSERT_EQ(spec.guards.size(), 1u);
  ASSERT_EQ(spec.guards[0].size(), 1u);
  EXPECT_EQ(spec.guards[0][0].kind,
            ruledsl::GuardTermSpec::Kind::kRejectsNull);
  ASSERT_EQ(spec.rewrites.size(), 1u);
}

TEST(RuleDslParserTest, MissingRewriteIsRejectedWithPosition) {
  auto specs = ruledsl::ParseRuleSpecs(
      "rule NoBody {\n  match t: join(inner, $A, $B)\n}\n");
  ASSERT_FALSE(specs.ok());
  EXPECT_EQ(specs.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(specs.status().message().find("rewrite"), std::string::npos)
      << specs.status().ToString();
}

TEST(RuleDslParserTest, LabelOnAnyIsRejected) {
  auto specs = ruledsl::ParseRuleSpecs(
      "rule R {\n  match t: join(inner, x: any, $B)\n  rewrite $B\n}\n");
  ASSERT_FALSE(specs.ok());
  EXPECT_EQ(specs.status().code(), StatusCode::kInvalidArgument);
}

TEST(RuleDslParserTest, DeepNestingHitsTheRecursionCapNotTheStack) {
  std::string text = "rule Deep {\n  match s: ";
  for (int i = 0; i < 64; ++i) text += "select(";
  text += "$X";
  for (int i = 0; i < 64; ++i) text += ")";
  text += "\n  rewrite $X\n}\n";
  auto specs = ruledsl::ParseRuleSpecs(text);
  ASSERT_FALSE(specs.ok());
  EXPECT_EQ(specs.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(specs.status().message().find("depth"), std::string::npos)
      << specs.status().ToString();
}

// ---- compiler ----

TEST(RuleDslCompilerTest, CompilesToADslTaggedExplorationRule) {
  auto rules = ruledsl::CompileRuleDsl(
      "rule Twin {\n  match t: join(inner, $A, $B)\n"
      "  rewrite join(inner, $B, $A, pred(t))\n}\n");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 1u);
  const Rule& rule = *(*rules)[0];
  EXPECT_EQ(rule.name(), "Twin");
  EXPECT_EQ(rule.type(), RuleType::kExploration);
  EXPECT_EQ(rule.origin(), RuleOrigin::kDsl);
  EXPECT_EQ(rule.pattern()->ToString(), "Join[Inner](Any, Any)");
}

TEST(RuleDslCompilerTest, UnboundPlaceholderIsACompileError) {
  auto rules = ruledsl::CompileRuleDsl(
      "rule R {\n  match t: join(inner, $A, $B)\n"
      "  rewrite join(inner, $A, $C, pred(t))\n}\n");
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rules.status().message().find("3:"), std::string::npos)
      << rules.status().ToString();
}

TEST(RuleDslCompilerTest, PredOnPredicatelessOperatorIsACompileError) {
  auto rules = ruledsl::CompileRuleDsl(
      "rule R {\n  match d: distinct($X)\n"
      "  rewrite select($X, pred(d))\n}\n");
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kInvalidArgument);
}

TEST(RuleDslCompilerTest, IdsOnNonUnionLabelIsACompileError) {
  auto rules = ruledsl::CompileRuleDsl(
      "rule R {\n  match s: select($X)\n"
      "  rewrite unionall($X, $X, ids(s))\n}\n");
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kInvalidArgument);
}

TEST(RuleDslCompilerTest, DuplicateNamesInOneBatchAreRejected) {
  auto rules = ruledsl::CompileRuleDsl(
      "rule Same { match t: join(inner, $A, $B) rewrite $A }\n"
      "rule Same { match t: join(inner, $A, $B) rewrite $B }\n");
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rules.status().message().find("Same"), std::string::npos);
}

TEST(RuleDslCompilerTest, PlaceholderMatchRootIsRejected) {
  auto rules =
      ruledsl::CompileRuleDsl("rule R { match $X rewrite $X }");
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kInvalidArgument);
}

TEST(RuleDslCompilerTest, CompileErrorsCountOnTheMetric) {
  obs::MetricsRegistry metrics;
  ruledsl::CompileOptions options;
  options.metrics = &metrics;
  auto rules = ruledsl::CompileRuleDsl("rule Broken {", options);
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(metrics.counter("qtf.dsl.compile_errors")->Value(), 1);
}

// ---- differential: every shipped twin vs its C++ oracle at Apply level --

class RuleDslDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTpchDatabase(TpchConfig{}).value();
    registry_ = std::make_shared<ColumnRegistry>();
    nation_ = GetOp::Create(db_->catalog().GetTable("nation").value(),
                            registry_.get());
    region_ = GetOp::Create(db_->catalog().GetTable("region").value(),
                            registry_.get());
    customer_ = GetOp::Create(db_->catalog().GetTable("customer").value(),
                              registry_.get());
    orders_ = GetOp::Create(db_->catalog().GetTable("orders").value(),
                            registry_.get());
    for (const char* file :
         {"join_rules.qtr", "select_rules.qtr", "union_rules.qtr"}) {
      auto rules = ruledsl::CompileRuleDsl(ReadFileOrDie(DslDir() + file));
      ASSERT_TRUE(rules.ok()) << file << ": " << rules.status().ToString();
      for (std::unique_ptr<Rule>& rule : *rules) {
        twins_[rule->name()] = std::move(rule);
      }
    }
  }

  /// Applies the named twin and its hand-written oracle to the same bound
  /// tree and demands the identical multiset of output fingerprints.
  void ExpectSameOutputs(std::unique_ptr<Rule> oracle,
                         const LogicalOpPtr& bound, size_t expected_outputs) {
    auto it = twins_.find(oracle->name());
    ASSERT_NE(it, twins_.end()) << "no DSL twin for " << oracle->name();
    const Rule& twin = *it->second;
    EXPECT_EQ(twin.pattern()->ToString(), oracle->pattern()->ToString())
        << oracle->name() << ": twin lowers to a different pattern";

    std::vector<LogicalOpPtr> oracle_out, twin_out;
    static_cast<const ExplorationRule&>(*oracle).Apply(*bound, &oracle_out);
    static_cast<const ExplorationRule&>(twin).Apply(*bound, &twin_out);
    EXPECT_EQ(oracle_out.size(), expected_outputs) << oracle->name();

    std::vector<uint64_t> oracle_prints, twin_prints;
    for (const LogicalOpPtr& op : oracle_out) {
      Status valid = ValidateTree(*op, *registry_);
      EXPECT_TRUE(valid.ok()) << oracle->name() << ": " << valid.ToString();
      oracle_prints.push_back(TreeFingerprint(*op));
    }
    for (const LogicalOpPtr& op : twin_out) {
      Status valid = ValidateTree(*op, *registry_);
      EXPECT_TRUE(valid.ok())
          << oracle->name() << " twin: " << valid.ToString();
      twin_prints.push_back(TreeFingerprint(*op));
    }
    std::sort(oracle_prints.begin(), oracle_prints.end());
    std::sort(twin_prints.begin(), twin_prints.end());
    EXPECT_EQ(oracle_prints, twin_prints)
        << oracle->name() << ": twin output diverges from the C++ oracle";
  }

  ExprPtr NationRegionPred() {
    return Eq(Col(nation_->columns()[2], ValueType::kInt64),
              Col(region_->columns()[0], ValueType::kInt64));
  }
  ExprPtr CustomerNationPred() {
    return Eq(Col(customer_->columns()[2], ValueType::kInt64),
              Col(nation_->columns()[0], ValueType::kInt64));
  }
  ExprPtr OrdersCustomerPred() {
    return Eq(Col(orders_->columns()[1], ValueType::kInt64),
              Col(customer_->columns()[0], ValueType::kInt64));
  }
  ExprPtr NationOnlyPred() {
    return Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(3));
  }
  ExprPtr RegionOnlyPred() {
    return Eq(Col(region_->columns()[0], ValueType::kInt64), LitInt(1));
  }

  std::unique_ptr<Database> db_;
  ColumnRegistryPtr registry_;
  std::shared_ptr<const GetOp> nation_, region_, customer_, orders_;
  std::map<std::string, std::unique_ptr<Rule>> twins_;
};

TEST_F(RuleDslDifferentialTest, AllFifteenPortedRulesHaveTwins) {
  EXPECT_EQ(twins_.size(), 15u);
}

TEST_F(RuleDslDifferentialTest, JoinCommutativity) {
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       NationRegionPred());
  ExpectSameOutputs(MakeJoinCommutativity(), join, 1);
  // Cross join: predicate stays null through the rewrite.
  auto cross =
      std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_, nullptr);
  ExpectSameOutputs(MakeJoinCommutativity(), cross, 1);
}

TEST_F(RuleDslDifferentialTest, JoinAssociativityLeft) {
  auto lower = std::make_shared<JoinOp>(JoinKind::kInner, customer_, nation_,
                                        CustomerNationPred());
  auto top = std::make_shared<JoinOp>(JoinKind::kInner, lower, region_,
                                      NationRegionPred());
  ExpectSameOutputs(MakeJoinAssociativityLeft(), top, 1);
  // All-null predicates (pure cross joins) reassociate too.
  auto cross_lower =
      std::make_shared<JoinOp>(JoinKind::kInner, customer_, nation_, nullptr);
  auto cross_top = std::make_shared<JoinOp>(JoinKind::kInner, cross_lower,
                                            region_, nullptr);
  ExpectSameOutputs(MakeJoinAssociativityLeft(), cross_top, 1);
}

TEST_F(RuleDslDifferentialTest, JoinAssociativityRight) {
  auto lower = std::make_shared<JoinOp>(JoinKind::kInner, customer_, nation_,
                                        CustomerNationPred());
  auto top = std::make_shared<JoinOp>(JoinKind::kInner, orders_, lower,
                                      OrdersCustomerPred());
  ExpectSameOutputs(MakeJoinAssociativityRight(), top, 1);
}

TEST_F(RuleDslDifferentialTest, LojToJoin) {
  auto loj = std::make_shared<JoinOp>(JoinKind::kLeftOuter, nation_, region_,
                                      NationRegionPred());
  // Comparisons are null-rejecting, so this select kills padded rows.
  auto fires = std::make_shared<SelectOp>(loj, RegionOnlyPred());
  ExpectSameOutputs(MakeLojToJoin(), fires, 1);
  // A predicate over the preserved side keeps the outer join: no outputs.
  auto guarded = std::make_shared<SelectOp>(loj, NationOnlyPred());
  ExpectSameOutputs(MakeLojToJoin(), guarded, 0);
}

TEST_F(RuleDslDifferentialTest, JoinLojAssocLeft) {
  auto loj = std::make_shared<JoinOp>(JoinKind::kLeftOuter, nation_, region_,
                                      NationRegionPred());
  auto fires = std::make_shared<JoinOp>(JoinKind::kInner, customer_, loj,
                                        CustomerNationPred());
  ExpectSameOutputs(MakeJoinLojAssocLeft(), fires, 1);
  // Null top predicate qualifies vacuously (cross join).
  auto cross =
      std::make_shared<JoinOp>(JoinKind::kInner, customer_, loj, nullptr);
  ExpectSameOutputs(MakeJoinLojAssocLeft(), cross, 1);
  // Top predicate reaching into C blocks the reassociation.
  auto blocked = std::make_shared<JoinOp>(
      JoinKind::kInner, customer_, loj,
      And(CustomerNationPred(), RegionOnlyPred()));
  ExpectSameOutputs(MakeJoinLojAssocLeft(), blocked, 0);
}

TEST_F(RuleDslDifferentialTest, LojLojAssocRight) {
  auto lower = std::make_shared<JoinOp>(JoinKind::kLeftOuter, customer_,
                                        nation_, CustomerNationPred());
  auto fires = std::make_shared<JoinOp>(JoinKind::kLeftOuter, lower, region_,
                                        NationRegionPred());
  ExpectSameOutputs(MakeLojLojAssocRight(), fires, 1);
  // Null top predicate fails the nonnull guard.
  auto null_top =
      std::make_shared<JoinOp>(JoinKind::kLeftOuter, lower, region_, nullptr);
  ExpectSameOutputs(MakeLojLojAssocRight(), null_top, 0);
  // Top predicate reaching into A fails refs_only(B, C).
  auto into_a = std::make_shared<JoinOp>(
      JoinKind::kLeftOuter, lower, region_,
      And(CustomerNationPred(), NationRegionPred()));
  ExpectSameOutputs(MakeLojLojAssocRight(), into_a, 0);
}

TEST_F(RuleDslDifferentialTest, SelectMerge) {
  auto inner = std::make_shared<SelectOp>(nation_, NationOnlyPred());
  auto outer = std::make_shared<SelectOp>(
      inner, Eq(Col(nation_->columns()[2], ValueType::kInt64), LitInt(1)));
  ExpectSameOutputs(MakeSelectMerge(), outer, 1);
}

TEST_F(RuleDslDifferentialTest, SelectSplit) {
  auto multi = std::make_shared<SelectOp>(
      nation_, And(NationOnlyPred(),
                   Eq(Col(nation_->columns()[2], ValueType::kInt64),
                      LitInt(1))));
  ExpectSameOutputs(MakeSelectSplit(), multi, 1);
  // A single conjunct has nothing to split.
  auto single = std::make_shared<SelectOp>(nation_, NationOnlyPred());
  ExpectSameOutputs(MakeSelectSplit(), single, 0);
}

TEST_F(RuleDslDifferentialTest, SelectIntoJoin) {
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       NationRegionPred());
  auto select = std::make_shared<SelectOp>(join, RegionOnlyPred());
  ExpectSameOutputs(MakeSelectIntoJoin(), select, 1);
  // Select over cross join becomes a real join.
  auto cross =
      std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_, nullptr);
  auto select_cross = std::make_shared<SelectOp>(cross, NationRegionPred());
  ExpectSameOutputs(MakeSelectIntoJoin(), select_cross, 1);
}

TEST_F(RuleDslDifferentialTest, SelectPushBelowJoinLeft) {
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       NationRegionPred());
  // Mixed conjuncts: the left-only one pushes, the join-wide one stays.
  auto mixed = std::make_shared<SelectOp>(
      join, And(NationOnlyPred(), NationRegionPred()));
  ExpectSameOutputs(MakeSelectPushBelowJoinLeft(), mixed, 1);
  // Fully pushable: the residual select is elided on both sides.
  auto all_left = std::make_shared<SelectOp>(join, NationOnlyPred());
  ExpectSameOutputs(MakeSelectPushBelowJoinLeft(), all_left, 1);
  // Nothing pushable: both decline.
  auto all_right = std::make_shared<SelectOp>(join, RegionOnlyPred());
  ExpectSameOutputs(MakeSelectPushBelowJoinLeft(), all_right, 0);
}

TEST_F(RuleDslDifferentialTest, SelectPushBelowJoinRight) {
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       NationRegionPred());
  auto mixed = std::make_shared<SelectOp>(
      join, And(RegionOnlyPred(), NationRegionPred()));
  ExpectSameOutputs(MakeSelectPushBelowJoinRight(), mixed, 1);
  auto all_left = std::make_shared<SelectOp>(join, NationOnlyPred());
  ExpectSameOutputs(MakeSelectPushBelowJoinRight(), all_left, 0);
}

TEST_F(RuleDslDifferentialTest, SelectPushBelowLojLeft) {
  auto loj = std::make_shared<JoinOp>(JoinKind::kLeftOuter, nation_, region_,
                                      NationRegionPred());
  auto pushable = std::make_shared<SelectOp>(loj, NationOnlyPred());
  ExpectSameOutputs(MakeSelectPushBelowLojLeft(), pushable, 1);
  // Right-side conjuncts must NOT push through the outer join.
  auto right_side = std::make_shared<SelectOp>(loj, RegionOnlyPred());
  ExpectSameOutputs(MakeSelectPushBelowLojLeft(), right_side, 0);
}

TEST_F(RuleDslDifferentialTest, SelectPushBelowDistinct) {
  auto distinct = std::make_shared<DistinctOp>(nation_);
  auto select = std::make_shared<SelectOp>(distinct, NationOnlyPred());
  ExpectSameOutputs(MakeSelectPushBelowDistinct(), select, 1);
}

TEST_F(RuleDslDifferentialTest, UnionAllCommutativity) {
  auto r2 = GetOp::Create(db_->catalog().GetTable("region").value(),
                          registry_.get());
  std::vector<ColumnId> out_ids;
  for (ColumnId id : region_->columns()) {
    out_ids.push_back(registry_->Allocate("u", registry_->TypeOf(id)));
  }
  auto u = std::make_shared<UnionAllOp>(region_, r2, out_ids);
  ExpectSameOutputs(MakeUnionAllCommutativity(), u, 1);
}

TEST_F(RuleDslDifferentialTest, UnionAllAssociativity) {
  auto r2 = GetOp::Create(db_->catalog().GetTable("region").value(),
                          registry_.get());
  auto r3 = GetOp::Create(db_->catalog().GetTable("region").value(),
                          registry_.get());
  std::vector<ColumnId> inner_ids, outer_ids;
  for (ColumnId id : region_->columns()) {
    inner_ids.push_back(registry_->Allocate("i", registry_->TypeOf(id)));
  }
  for (ColumnId id : region_->columns()) {
    outer_ids.push_back(registry_->Allocate("o", registry_->TypeOf(id)));
  }
  auto inner = std::make_shared<UnionAllOp>(region_, r2, inner_ids);
  auto outer = std::make_shared<UnionAllOp>(inner, r3, outer_ids);
  ExpectSameOutputs(MakeUnionAllAssociativity(), outer, 1);
}

// ---- registry id stability + pattern export under mixed order ----

TEST(RuleDslRegistryTest, IdsStayStableUnderMixedBuiltinAndDslRegistration) {
  RuleRegistry registry;
  const RuleId commute = registry.Register(MakeJoinCommutativity());
  auto dsl = ruledsl::CompileRuleDsl(
      "rule DslProbe { match s: select(select($X)) "
      "rewrite select($X, pred(s)) }");
  ASSERT_TRUE(dsl.ok()) << dsl.status().ToString();
  ASSERT_EQ(dsl->size(), 1u);
  const RuleId probe = registry.Register(std::move((*dsl)[0]));
  const RuleId assoc = registry.Register(MakeJoinAssociativityLeft());

  // Ids are registration order, regardless of origin.
  EXPECT_EQ(commute, 0);
  EXPECT_EQ(probe, 1);
  EXPECT_EQ(assoc, 2);
  EXPECT_EQ(registry.FindByName("DslProbe"), probe);
  EXPECT_EQ(registry.rule(probe).origin(), RuleOrigin::kDsl);
  EXPECT_EQ(registry.rule(commute).origin(), RuleOrigin::kBuiltin);

  // DSL rules participate in exploration-rule enumeration like builtins.
  std::vector<RuleId> exploration = registry.ExplorationRuleIds();
  EXPECT_NE(std::find(exploration.begin(), exploration.end(), probe),
            exploration.end());

  // Pattern export works identically for both origins: every pattern
  // renders and round-trips through the XML form with its name intact.
  for (const std::unique_ptr<Rule>& rule : registry.rules()) {
    EXPECT_FALSE(rule->pattern()->ToString().empty());
    std::string name;
    auto back =
        PatternFromXml(PatternToXml(*rule->pattern(), rule->name()), &name);
    ASSERT_TRUE(back.ok()) << rule->name();
    EXPECT_EQ(name, rule->name());
    EXPECT_EQ((*back)->ToString(), rule->pattern()->ToString())
        << rule->name();
  }
}

// ---- fuzzer: malformed and machine-generated specs never crash ----

TEST(RuleDslFuzzTest, GeneratedSpecsCompileOrFailWithInvalidArgument) {
  int compiled = 0, rejected = 0;
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    const std::string spec = ruledsl::GenerateRuleSpec(seed);
    auto rules = ruledsl::CompileRuleDsl(spec);
    if (rules.ok()) {
      ++compiled;
    } else {
      ++rejected;
      EXPECT_EQ(rules.status().code(), StatusCode::kInvalidArgument)
          << "seed " << seed << ": " << rules.status().ToString()
          << "\nspec:\n" << spec;
    }
  }
  // The generator is tuned so both paths stay exercised.
  EXPECT_GT(compiled, 10) << "generator produces too few valid specs";
  EXPECT_GT(rejected, 10) << "generator produces too few invalid specs";
}

TEST(RuleDslFuzzTest, MutatedPortedSpecsNeverCrashTheFrontend) {
  const std::string base = ReadFileOrDie(DslDir() + "select_rules.qtr");
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    const std::string mutated = ruledsl::MutateRuleSpec(base, seed);
    auto rules = ruledsl::CompileRuleDsl(mutated);
    if (!rules.ok()) {
      EXPECT_EQ(rules.status().code(), StatusCode::kInvalidArgument)
          << "seed " << seed << ": " << rules.status().ToString();
    }
  }
}

TEST(RuleDslFuzzTest, SurvivingGeneratedRulesRunInTheOptimizerWithoutCrash) {
  // Register every generated rule that compiles into a live framework and
  // drive full optimizations over it: semantically invalid rewrite
  // instantiations must be dropped (qtf.dsl.rejected), never emitted as
  // broken trees and never a crash.
  RuleTestFramework::Options options;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    const std::string spec = ruledsl::GenerateRuleSpec(seed);
    if (ruledsl::CompileRuleDsl(spec).ok()) options.dsl_rules.push_back(spec);
  }
  ASSERT_FALSE(options.dsl_rules.empty());
  auto framework = RuleTestFramework::Create(std::move(options));
  ASSERT_TRUE(framework.ok()) << framework.status().ToString();
  EXPECT_GT(
      (*framework)->metrics()->counter("qtf.dsl.loaded")->Value(), 0);

  // Targeted generation runs full optimizer searches, exercising every
  // registered rule — machine-made ones included.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    GenerationConfig config;
    config.seed = seed;
    auto outcome = (*framework)->generator()->Generate({0}, config);
    EXPECT_TRUE(outcome.ok()) << "seed " << seed << ": "
                              << outcome.status().ToString();
  }
}

}  // namespace
}  // namespace qtf
