// End-to-end smoke test: TPC-H database -> logical query -> optimizer ->
// physical plan -> executor, with rule tracking and rule disabling.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "logical/query.h"
#include "logical/validate.h"
#include "optimizer/optimizer.h"
#include "rules/default_rules.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

class SmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = MakeTpchDatabase(TpchConfig{});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    registry_ = MakeDefaultRuleRegistry();
    optimizer_ = std::make_unique<Optimizer>(registry_.get());
  }

  /// select n_name, r_name from nation join region
  /// on n_regionkey = r_regionkey where r_name = 'ASIA'
  /// Exercised rules that can be individually disabled while keeping the
  /// query plannable: the logical (exploration) rules. Disabling a
  /// sole-implementation rule (e.g. GetToScan) correctly yields "no plan".
  std::vector<RuleId> ExercisedLogicalRules(const OptimizeResult& result) {
    std::vector<RuleId> out;
    for (RuleId id : result.exercised_rules) {
      if (registry_->rule(id).type() == RuleType::kExploration) {
        out.push_back(id);
      }
    }
    return out;
  }

  Query MakeNationRegionQuery() {
    auto registry = std::make_shared<ColumnRegistry>();
    auto nation = GetOp::Create(db_->catalog().GetTable("nation").value(),
                                registry.get());
    auto region = GetOp::Create(db_->catalog().GetTable("region").value(),
                                registry.get());
    ColumnId n_regionkey = nation->columns()[2];
    ColumnId r_regionkey = region->columns()[0];
    ColumnId r_name = region->columns()[1];
    LogicalOpPtr join = std::make_shared<JoinOp>(
        JoinKind::kInner, nation, region,
        Eq(Col(n_regionkey, ValueType::kInt64),
           Col(r_regionkey, ValueType::kInt64)));
    LogicalOpPtr select = std::make_shared<SelectOp>(
        join, Eq(Col(r_name, ValueType::kString), LitString("ASIA")));
    return Query{select, registry};
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<RuleRegistry> registry_;
  std::unique_ptr<Optimizer> optimizer_;
};

TEST_F(SmokeTest, OptimizeAndExecute) {
  Query query = MakeNationRegionQuery();
  ASSERT_TRUE(ValidateTree(*query.root, *query.registry).ok());

  auto result = optimizer_->Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->cost, 0.0);
  EXPECT_FALSE(result->exercised_rules.empty());
  ASSERT_NE(result->plan, nullptr);

  Executor executor(db_.get(), query.registry.get());
  auto rows = executor.Execute(*result->plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // 5 nations per region in the generated data (25 nations round-robin
  // over 5 regions).
  EXPECT_EQ(rows->row_count(), 5);
}

TEST_F(SmokeTest, DisablingRulesNeverLowersCost) {
  Query query = MakeNationRegionQuery();
  auto base = optimizer_->Optimize(query);
  ASSERT_TRUE(base.ok());

  for (RuleId id : ExercisedLogicalRules(*base)) {
    OptimizerOptions options;
    options.disabled_rules.insert(id);
    auto restricted = optimizer_->Optimize(query, options);
    ASSERT_TRUE(restricted.ok())
        << "disabling " << registry_->rule(id).name() << ": "
        << restricted.status().ToString();
    EXPECT_GE(restricted->cost, base->cost - 1e-9)
        << "disabling " << registry_->rule(id).name() << " lowered the cost";
  }
}

TEST_F(SmokeTest, DisabledRulesAreNotExercised) {
  Query query = MakeNationRegionQuery();
  auto base = optimizer_->Optimize(query);
  ASSERT_TRUE(base.ok());
  for (RuleId id : ExercisedLogicalRules(*base)) {
    OptimizerOptions options;
    options.disabled_rules.insert(id);
    auto restricted = optimizer_->Optimize(query, options);
    ASSERT_TRUE(restricted.ok());
    EXPECT_EQ(restricted->exercised_rules.count(id), 0u);
  }
}

TEST_F(SmokeTest, ResultsIdenticalWithEachRuleDisabled) {
  Query query = MakeNationRegionQuery();
  auto base = optimizer_->Optimize(query);
  ASSERT_TRUE(base.ok());
  Executor executor(db_.get(), query.registry.get());
  auto base_rows = executor.Execute(*base->plan);
  ASSERT_TRUE(base_rows.ok());

  for (RuleId id : ExercisedLogicalRules(*base)) {
    OptimizerOptions options;
    options.disabled_rules.insert(id);
    auto restricted = optimizer_->Optimize(query, options);
    ASSERT_TRUE(restricted.ok());
    auto rows = executor.Execute(*restricted->plan);
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(ResultBagEquals(*base_rows, *rows))
        << "results differ with rule " << registry_->rule(id).name()
        << " disabled";
  }
}

TEST_F(SmokeTest, InvocationCounterIncrements) {
  Query query = MakeNationRegionQuery();
  int64_t before = optimizer_->invocation_count();
  ASSERT_TRUE(optimizer_->Optimize(query).ok());
  EXPECT_EQ(optimizer_->invocation_count(), before + 1);
}

}  // namespace
}  // namespace qtf
