// The paper's Section 3 walkthrough as tests: the rule-dependency example
// "R Join (S LOJ T)" — join/outer-join associativity unlocks join
// commutativity on the freshly created (R Join S) — and the Group-By
// pull-up example with its "join predicate must not reference the aggregate
// results" precondition.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "testing/framework.h"

namespace qtf {
namespace {

class PaperSection3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fw = RuleTestFramework::Create({});
    ASSERT_TRUE(fw.ok());
    fw_ = std::move(fw).value();
    registry_ = std::make_shared<ColumnRegistry>();
  }

  std::shared_ptr<const GetOp> Get(const std::string& name) {
    return GetOp::Create(fw_->catalog().GetTable(name).value(),
                         registry_.get());
  }

  std::unique_ptr<RuleTestFramework> fw_;
  ColumnRegistryPtr registry_;
};

TEST_F(PaperSection3Test, JoinLojDependencyExample) {
  // R Join (S LOJ T) with the join predicate between R and S:
  //   R = customer, S = nation, T = region.
  auto customer = Get("customer");
  auto nation = Get("nation");
  auto region = Get("region");
  auto loj = std::make_shared<JoinOp>(
      JoinKind::kLeftOuter, nation, region,
      Eq(Col(nation->columns()[2], ValueType::kInt64),
         Col(region->columns()[0], ValueType::kInt64)));
  auto join = std::make_shared<JoinOp>(
      JoinKind::kInner, customer, loj,
      Eq(Col(customer->columns()[2], ValueType::kInt64),
         Col(nation->columns()[0], ValueType::kInt64)));
  Query query{join, registry_};

  auto result = fw_->optimizer()->Optimize(query);
  ASSERT_TRUE(result.ok());
  RuleId assoc = fw_->rules().FindByName("JoinLojAssocLeft");
  RuleId commute = fw_->rules().FindByName("JoinCommutativity");
  // The associativity rule fires (pred is between R and S)...
  EXPECT_TRUE(result->exercised_rules.count(assoc) > 0);
  // ...and commutativity then applies to the (R Join S) it created.
  EXPECT_TRUE(result->exercised_rules.count(commute) > 0);

  // The dependency: with the associativity rule disabled, the query still
  // plans, but the inner join (R Join S) never materializes.
  OptimizerOptions options;
  options.disabled_rules.insert(assoc);
  auto restricted = fw_->optimizer()->Optimize(query, options);
  ASSERT_TRUE(restricted.ok());
  EXPECT_GE(restricted->cost, result->cost - 1e-9);

  // And the rewrite is semantically sound end to end.
  Executor executor(&fw_->db(), registry_.get());
  auto base_rows = executor.Execute(*result->plan);
  auto restricted_rows = executor.Execute(*restricted->plan);
  ASSERT_TRUE(base_rows.ok() && restricted_rows.ok());
  EXPECT_TRUE(ResultBagEquals(*base_rows, *restricted_rows));
}

TEST_F(PaperSection3Test, GroupByPullUpBlockedByAggregateReference) {
  // Section 3.1's example precondition: the Group-By pull-up must not fire
  // when the join predicate references the aggregate results.
  auto customer = Get("customer");
  auto nation = Get("nation");
  ColumnId cnt = registry_->Allocate("cnt", ValueType::kInt64);
  auto agg = std::make_shared<GroupByAggOp>(
      customer, std::vector<ColumnId>{customer->columns()[2]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt}});

  RuleId pull = fw_->rules().FindByName("GroupByPullAboveJoinLeft");

  // Join on the grouping column: the rule fires.
  auto on_group = std::make_shared<JoinOp>(
      JoinKind::kInner, agg, nation,
      Eq(Col(customer->columns()[2], ValueType::kInt64),
         Col(nation->columns()[0], ValueType::kInt64)));
  auto good = fw_->optimizer()->Optimize(Query{on_group, registry_});
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->exercised_rules.count(pull) > 0);

  // Join on the COUNT(*) output: the rule must not fire.
  auto on_agg = std::make_shared<JoinOp>(
      JoinKind::kInner, agg, nation,
      Eq(Col(cnt, ValueType::kInt64),
         Col(nation->columns()[0], ValueType::kInt64)));
  auto blocked = fw_->optimizer()->Optimize(Query{on_agg, registry_});
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->exercised_rules.count(pull), 0u);
}

TEST_F(PaperSection3Test, PatternIsNecessaryButNotSufficient) {
  // A query whose tree *contains* the GroupByPushBelowJoinLeft pattern but
  // violates its precondition: the pattern matches, the rule is bound, but
  // the substitution produces nothing — exactly the necessary-vs-sufficient
  // distinction of Section 3.1.
  auto customer = Get("customer");
  auto orders = Get("orders");
  ColumnId cnt = registry_->Allocate("cnt2", ValueType::kInt64);
  // orders is NOT unique on o_custkey, so the eager-aggregation rule's
  // FD precondition fails.
  auto join = std::make_shared<JoinOp>(
      JoinKind::kInner, customer, orders,
      Eq(Col(customer->columns()[0], ValueType::kInt64),
         Col(orders->columns()[1], ValueType::kInt64)));
  auto agg = std::make_shared<GroupByAggOp>(
      join, std::vector<ColumnId>{customer->columns()[0]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt}});
  Query query{agg, registry_};

  RuleId push = fw_->rules().FindByName("GroupByPushBelowJoinLeft");
  const Rule& rule = fw_->rules().rule(push);
  // Necessary condition holds: the tree contains the rule's pattern.
  EXPECT_TRUE(ContainsPattern(*query.root, *rule.pattern()));
  // But it is not sufficient: the rule is never exercised.
  auto result = fw_->optimizer()->Optimize(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->exercised_rules.count(push), 0u);
}

}  // namespace
}  // namespace qtf
