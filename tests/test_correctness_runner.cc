// The correctness harness end-to-end: clean rule sets produce no
// violations; each injected buggy rule variant is caught; identical plans
// are skipped (paper Section 2.3 footnote 1).

#include <gtest/gtest.h>

#include "rules/buggy_rules.h"
#include "testing/framework.h"

namespace qtf {
namespace {

TEST(CorrectnessRunnerTest, CleanRulesProduceNoViolations) {
  auto fw = RuleTestFramework::Create({}).value();
  auto targets = fw->LogicalRuleSingletons(8);
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 2;
  config.seed = 42;
  auto suite = fw->suite_generator()->Generate(targets, 2, config);
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();
  auto report = fw->runner()->Run(*suite, suite->per_target);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok());
  EXPECT_GT(report->plans_executed, 0);
}

TEST(CorrectnessRunnerTest, SkipsIdenticalPlans) {
  auto fw = RuleTestFramework::Create({}).value();
  // JoinCommutativity on a symmetric-cost query often leaves the plan
  // unchanged when disabled; at minimum the counter must be consistent:
  // every edge is either executed or skipped.
  auto targets = fw->LogicalRuleSingletons(6);
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.seed = 9;
  auto suite = fw->suite_generator()->Generate(targets, 2, config);
  ASSERT_TRUE(suite.ok());
  auto report = fw->runner()->Run(*suite, suite->per_target);
  ASSERT_TRUE(report.ok());
  int edges = 0;
  for (const auto& per_target : suite->per_target) {
    edges += static_cast<int>(per_target.size());
  }
  int distinct_queries = static_cast<int>(suite->queries.size());
  EXPECT_EQ(report->plans_executed + report->skipped_identical_plans,
            distinct_queries + edges);
}

struct BuggyRuleCase {
  const char* name;
  std::unique_ptr<Rule> (*make)();
  // Extra operators for generated queries (bug exposure sometimes needs
  // specific shapes around the pattern).
  int extra_ops;
  int k;
};

class BugInjectionTest : public ::testing::TestWithParam<BuggyRuleCase> {};

TEST_P(BugInjectionTest, HarnessCatchesInjectedBug) {
  const BuggyRuleCase& bug_case = GetParam();
  auto registry = MakeDefaultRuleRegistry();
  RuleId bug_id = registry->Register(bug_case.make());
  RuleTestFramework::Options options;
  options.rules = std::move(registry);
  auto fw = RuleTestFramework::Create(std::move(options)).value();

  bool caught = false;
  // Several seeds: a buggy rewrite only changes results on data that
  // distinguishes the plans.
  for (uint64_t seed = 1; seed <= 6 && !caught; ++seed) {
    GenerationConfig config;
    config.method = GenerationMethod::kPattern;
    config.extra_ops = bug_case.extra_ops;
    config.seed = seed * 31;
    auto suite = fw->suite_generator()->Generate({RuleTarget{{bug_id}}},
                                                 bug_case.k, config);
    if (!suite.ok()) continue;
    auto report = fw->runner()->Run(*suite, suite->per_target);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (!report->violations.empty()) {
      caught = true;
      EXPECT_EQ(report->violations[0].target_name, bug_case.name);
      EXPECT_FALSE(report->violations[0].sql.empty());
    }
  }
  EXPECT_TRUE(caught) << bug_case.name << " was never caught";
}

INSTANTIATE_TEST_SUITE_P(
    AllInjectedBugs, BugInjectionTest,
    ::testing::Values(
        BuggyRuleCase{"BuggyLojToJoin", &MakeBuggyLojToJoin, 2, 4},
        BuggyRuleCase{"BuggySelectPushBelowGroupBy",
                      &MakeBuggySelectPushBelowGroupBy, 0, 6},
        BuggyRuleCase{"BuggyLojCommutativity", &MakeBuggyLojCommutativity,
                      1, 4}),
    [](const ::testing::TestParamInfo<BuggyRuleCase>& info) {
      return info.param.name;
    });

TEST(RelevanceTest, CrossJoinCommutedPlanIsRelevant) {
  auto fw = RuleTestFramework::Create({}).value();
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.max_trials = 300;
  config.seed = 77;
  RuleId commute = fw->rules().FindByName("JoinCommutativity");
  GenerationOutcome outcome =
      fw->generator()->GenerateRelevant(commute, config).value();
  ASSERT_TRUE(outcome.success);
  auto relevant = IsRuleRelevant(fw->optimizer(), outcome.query, commute);
  ASSERT_TRUE(relevant.ok());
  EXPECT_TRUE(*relevant);
}

}  // namespace
}  // namespace qtf
