// TreeBuilder: every random building block yields valid trees with the
// documented shapes/biases.

#include <gtest/gtest.h>

#include "logical/validate.h"
#include "qgen/tree_builder.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

class TreeBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTpchDatabase(TpchConfig{}).value();
    rng_ = std::make_unique<Rng>(321);
    builder_ = std::make_unique<TreeBuilder>(&db_->catalog(), rng_.get());
  }

  void ExpectValid(const LogicalOpPtr& tree) {
    Status status = ValidateTree(*tree, *builder_->registry());
    EXPECT_TRUE(status.ok()) << status.ToString() << "\n"
                             << LogicalTreeToString(*tree, nullptr);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<TreeBuilder> builder_;
};

TEST_F(TreeBuilderTest, RandomGetIsValidLeaf) {
  for (int i = 0; i < 10; ++i) {
    LogicalOpPtr get = builder_->RandomGet();
    EXPECT_EQ(get->kind(), LogicalOpKind::kGet);
    ExpectValid(get);
  }
}

TEST_F(TreeBuilderTest, RandomSelectProducesBooleanPredicates) {
  for (int i = 0; i < 20; ++i) {
    LogicalOpPtr select = builder_->RandomSelect(builder_->RandomGet());
    ASSERT_EQ(select->kind(), LogicalOpKind::kSelect);
    EXPECT_EQ(static_cast<const SelectOp&>(*select).predicate()->type(),
              ValueType::kBool);
    ExpectValid(select);
  }
}

TEST_F(TreeBuilderTest, RandomProjectKeepsAtLeastOneColumn) {
  for (int i = 0; i < 20; ++i) {
    LogicalOpPtr project = builder_->RandomProject(builder_->RandomGet());
    EXPECT_GE(project->OutputColumns().size(), 1u);
    ExpectValid(project);
  }
}

TEST_F(TreeBuilderTest, RandomJoinsOfAllKindsValidate) {
  for (JoinKind kind : {JoinKind::kInner, JoinKind::kLeftOuter,
                        JoinKind::kLeftSemi, JoinKind::kLeftAnti}) {
    for (int i = 0; i < 8; ++i) {
      LogicalOpPtr join = builder_->RandomJoin(kind, builder_->RandomGet(),
                                               builder_->RandomGet());
      ASSERT_EQ(join->kind(), LogicalOpKind::kJoin);
      EXPECT_EQ(static_cast<const JoinOp&>(*join).join_kind(), kind);
      ExpectValid(join);
    }
  }
}

TEST_F(TreeBuilderTest, RandomGroupByValidatesAndHasGroupsOrAggs) {
  for (int i = 0; i < 20; ++i) {
    LogicalOpPtr agg = builder_->RandomGroupBy(builder_->RandomGet());
    const auto& groupby = static_cast<const GroupByAggOp&>(*agg);
    EXPECT_TRUE(!groupby.group_cols().empty() ||
                !groupby.aggregates().empty());
    ExpectValid(agg);
  }
}

TEST_F(TreeBuilderTest, GroupByOverJoinIncludesJoinColumnsSometimes) {
  int biased = 0;
  for (int i = 0; i < 30; ++i) {
    LogicalOpPtr join = builder_->RandomJoin(
        JoinKind::kInner, builder_->RandomGet(), builder_->RandomGet());
    const auto& join_op = static_cast<const JoinOp&>(*join);
    if (join_op.predicate() == nullptr) continue;
    ColumnSet left_cols, right_cols;
    for (ColumnId id : join_op.child(0)->OutputColumns())
      left_cols.insert(id);
    for (ColumnId id : join_op.child(1)->OutputColumns())
      right_cols.insert(id);
    EquiJoinInfo equi =
        ExtractEquiJoin(join_op.predicate(), left_cols, right_cols);
    if (equi.pairs.empty()) continue;

    LogicalOpPtr agg = builder_->RandomGroupBy(join);
    const auto& groupby = static_cast<const GroupByAggOp&>(*agg);
    ColumnSet groups(groupby.group_cols().begin(),
                     groupby.group_cols().end());
    bool includes_all = true;
    for (const auto& [l, r] : equi.pairs) {
      if (groups.count(l) == 0) includes_all = false;
    }
    if (includes_all) ++biased;
    ExpectValid(agg);
  }
  EXPECT_GT(biased, 5);  // the documented 0.7 bias must be visible
}

TEST_F(TreeBuilderTest, RandomUnionAllCoercesMismatchedSides) {
  for (int i = 0; i < 20; ++i) {
    LogicalOpPtr u = builder_->RandomUnionAll(builder_->RandomGet(),
                                              builder_->RandomGet());
    ASSERT_EQ(u->kind(), LogicalOpKind::kUnionAll);
    ExpectValid(u);
  }
}

TEST_F(TreeBuilderTest, ApplyRandomOperatorGrowsValidTrees) {
  LogicalOpPtr tree = builder_->RandomGet();
  for (int i = 0; i < 30; ++i) {
    tree = builder_->ApplyRandomOperator(std::move(tree));
    ExpectValid(tree);
  }
  EXPECT_GE(CountOps(*tree), 30);
}

TEST_F(TreeBuilderTest, PredicateConstantsComeFromColumnDomains) {
  // Integer equality predicates against base columns should frequently use
  // in-domain constants (the generator reads catalog min/max).
  int in_domain = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    LogicalOpPtr get = builder_->RandomGet();
    const auto& get_op = static_cast<const GetOp&>(*get);
    ExprPtr pred = builder_->RandomPredicate(*get);
    for (const ExprPtr& conjunct : SplitConjuncts(pred)) {
      if (conjunct->kind() != ExprKind::kComparison) continue;
      const auto& cmp = static_cast<const ComparisonExpr&>(*conjunct);
      if (cmp.left()->kind() != ExprKind::kColumnRef ||
          cmp.right()->kind() != ExprKind::kConstant) {
        continue;
      }
      const Value& v = static_cast<const ConstantExpr&>(*cmp.right()).value();
      if (v.is_null() || v.type() != ValueType::kInt64) continue;
      ColumnId id = static_cast<const ColumnRefExpr&>(*cmp.left()).id();
      for (size_t c = 0; c < get_op.columns().size(); ++c) {
        if (get_op.columns()[c] != id) continue;
        const ColumnDef& def = get_op.table().columns()[c];
        if (def.max_value > def.min_value) {
          ++total;
          if (v.int64() >= def.min_value && v.int64() <= def.max_value) {
            ++in_domain;
          }
        }
      }
    }
  }
  if (total > 0) {
    EXPECT_GT(static_cast<double>(in_domain) / total, 0.9);
  }
}

}  // namespace
}  // namespace qtf
