// The paper's Example 1 (Section 4.1) as a literal unit test, driven
// through a fake cost provider:
//
//   R = {r1, r2}, k = 1, TS1 = {q1}, TS2 = {q2};
//   RuleSet(q1) = {r1}, RuleSet(q2) = {r1, r2};
//   Cost(q1) = Cost(q2) = 100,
//   Cost(q1, ¬r1) = 180, Cost(q2, ¬r2) = 120, Cost(q2, ¬r1) = 120.
//
// BASELINE = (100+180) + (100+120) = 500; the optimal strategy uses q2 for
// both rules at cost (100+120) + 120 = 340. Both SMC and TOPK find it.

#include <set>

#include <gtest/gtest.h>

#include "compress/compression.h"

namespace qtf {
namespace {

/// Cost provider with a hand-specified cost surface (no optimizer).
class FakeProvider : public EdgeCostProvider {
 public:
  FakeProvider(const TestSuite* suite, std::vector<double> node_costs,
               std::map<std::pair<int, int>, double> edge_costs)
      : EdgeCostProvider(suite),
        node_costs_(std::move(node_costs)),
        edge_costs_(std::move(edge_costs)) {}

  double NodeCost(int q) const override {
    return node_costs_[static_cast<size_t>(q)];
  }

  Result<double> EdgeCost(int target, int q) override {
    auto it = edge_costs_.find({target, q});
    if (it == edge_costs_.end()) {
      return Status::Internal("no edge cost for (" + std::to_string(target) +
                              "," + std::to_string(q) + ")");
    }
    return it->second;
  }

 private:
  std::vector<double> node_costs_;
  std::map<std::pair<int, int>, double> edge_costs_;
};

/// Builds the Example 1 suite skeleton: rule ids 0 (r1) and 1 (r2);
/// queries q1 (index 0) and q2 (index 1).
TestSuite MakeExample1Suite() {
  TestSuite suite;
  suite.targets = {RuleTarget{{0}}, RuleTarget{{1}}};
  TestCase q1;
  q1.rule_set = {0};
  q1.cost = 100.0;
  TestCase q2;
  q2.rule_set = {0, 1};
  q2.cost = 100.0;
  suite.queries = {q1, q2};
  suite.per_target = {{0}, {1}};  // TS1 = {q1}, TS2 = {q2}
  return suite;
}

std::map<std::pair<int, int>, double> Example1Edges() {
  return {{{0, 0}, 180.0},   // Cost(q1, ¬r1)
          {{0, 1}, 120.0},   // Cost(q2, ¬r1)
          {{1, 1}, 120.0}};  // Cost(q2, ¬r2)
}

TEST(PaperExample1, BaselineCostIs500) {
  TestSuite suite = MakeExample1Suite();
  FakeProvider provider(&suite, {100.0, 100.0}, Example1Edges());
  auto baseline = CompressBaseline(&provider);
  ASSERT_TRUE(baseline.ok());
  EXPECT_DOUBLE_EQ(baseline->total_cost, 500.0);
}

TEST(PaperExample1, TopKFindsTheOptimal340) {
  TestSuite suite = MakeExample1Suite();
  FakeProvider provider(&suite, {100.0, 100.0}, Example1Edges());
  auto topk = CompressTopKIndependent(&provider, 1, false);
  ASSERT_TRUE(topk.ok());
  EXPECT_DOUBLE_EQ(topk->total_cost, 340.0);
  // q2 (index 1) validates both rules.
  EXPECT_EQ(topk->assignment[0], (std::vector<int>{1}));
  EXPECT_EQ(topk->assignment[1], (std::vector<int>{1}));
}

TEST(PaperExample1, SetMultiCoverAlsoFindsTheOptimal) {
  // The paper notes the greedy picks q2 (higher benefit at equal cost).
  TestSuite suite = MakeExample1Suite();
  FakeProvider provider(&suite, {100.0, 100.0}, Example1Edges());
  auto smc = CompressSetMultiCover(&provider, 1);
  ASSERT_TRUE(smc.ok());
  EXPECT_DOUBLE_EQ(smc->total_cost, 340.0);
}

TEST(PaperExample1, ExactSolverAgrees) {
  TestSuite suite = MakeExample1Suite();
  FakeProvider provider(&suite, {100.0, 100.0}, Example1Edges());
  auto exact = CompressExact(&provider, 1);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(exact->total_cost, 340.0);
}

TEST(PaperExample1, MonotonicityPruningReproducesSection531Walkthrough) {
  // Section 5.3.1's illustration: candidates ordered by node cost; once the
  // k-th best edge cost is below the next node cost, stop. Construct three
  // queries with node costs 100/200/300 and edge cost 150 for the cheapest:
  // the scan must stop after one edge computation.
  TestSuite suite;
  suite.targets = {RuleTarget{{0}}};
  for (double cost : {100.0, 200.0, 300.0}) {
    TestCase q;
    q.rule_set = {0};
    q.cost = cost;
    suite.queries.push_back(q);
  }
  suite.per_target = {{0, 1, 2}};

  // Counts *distinct* edges computed (the real provider caches, so a
  // repeat lookup costs no optimizer invocation).
  class CountingProvider : public FakeProvider {
   public:
    using FakeProvider::FakeProvider;
    Result<double> EdgeCost(int target, int q) override {
      computed.insert({target, q});
      return FakeProvider::EdgeCost(target, q);
    }
    std::set<std::pair<int, int>> computed;
  };
  CountingProvider provider(&suite, {100.0, 200.0, 300.0},
                            {{{0, 0}, 150.0},
                             {{0, 1}, 260.0},
                             {{0, 2}, 390.0}});
  auto solution = CompressTopKIndependent(&provider, 1, true);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->assignment[0], (std::vector<int>{0}));
  // Only the first edge cost was ever computed.
  EXPECT_EQ(provider.computed.size(), 1u);
}

TEST(PaperExample1, GreedyCanMissEdgeCostTraps) {
  // A cost surface where SMC's node-cost-only greedy is strictly worse than
  // TOPK: the "cheap" query explodes when the rule is disabled (the paper's
  // explanation for Figure 12). k=1, one rule, two queries.
  TestSuite suite;
  suite.targets = {RuleTarget{{0}}};
  TestCase cheap;   // node 10, edge 1000
  cheap.rule_set = {0};
  cheap.cost = 10.0;
  TestCase steady;  // node 50, edge 60
  steady.rule_set = {0};
  steady.cost = 50.0;
  suite.queries = {cheap, steady};
  suite.per_target = {{0}};

  FakeProvider provider(&suite, {10.0, 50.0},
                        {{{0, 0}, 1000.0}, {{0, 1}, 60.0}});
  auto smc = CompressSetMultiCover(&provider, 1);
  auto topk = CompressTopKIndependent(&provider, 1, false);
  ASSERT_TRUE(smc.ok() && topk.ok());
  EXPECT_DOUBLE_EQ(smc->total_cost, 1010.0);   // picked the trap
  EXPECT_DOUBLE_EQ(topk->total_cost, 110.0);   // edge-cost aware
}

}  // namespace
}  // namespace qtf
