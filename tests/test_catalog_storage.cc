// Tests for the catalog and the TPC-H-style database generator.

#include <set>

#include <gtest/gtest.h>

#include "storage/tpch.h"

namespace qtf {
namespace {

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  auto def = std::make_shared<TableDef>(
      "t", std::vector<ColumnDef>{{"a", ValueType::kInt64, 10, 0, 9, 0.0}}, 10);
  ASSERT_TRUE(catalog.AddTable(def).ok());
  auto found = catalog.GetTable("t");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->name(), "t");
  EXPECT_EQ((*found)->row_count(), 10);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog catalog;
  auto def = std::make_shared<TableDef>("t", std::vector<ColumnDef>{}, 0);
  ASSERT_TRUE(catalog.AddTable(def).ok());
  Status dup = catalog.AddTable(def);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, MissingTableIsNotFound) {
  Catalog catalog;
  auto missing = catalog.GetTable("nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, FindColumn) {
  TableDef def("t",
               {{"a", ValueType::kInt64, 1, 0, 0, 0.0},
                {"b", ValueType::kString, 1, 0, 0, 0.0}},
               0);
  EXPECT_EQ(def.FindColumn("a"), 0);
  EXPECT_EQ(def.FindColumn("b"), 1);
  EXPECT_EQ(def.FindColumn("z"), -1);
}

class TpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = MakeTpchDatabase(TpchConfig{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }
  std::unique_ptr<Database> db_;
};

TEST_F(TpchTest, AllEightTablesPresent) {
  const char* expected[] = {"region",   "nation", "supplier", "customer",
                            "part",     "partsupp", "orders", "lineitem"};
  for (const char* name : expected) {
    EXPECT_TRUE(db_->catalog().GetTable(name).ok()) << name;
    EXPECT_TRUE(db_->GetTableData(name).ok()) << name;
  }
  EXPECT_EQ(db_->catalog().table_count(), 8u);
}

TEST_F(TpchTest, RowCountsMatchCatalog) {
  for (const std::string& name : db_->catalog().TableNames()) {
    auto def = db_->catalog().GetTable(name).value();
    auto data = db_->GetTableData(name).value();
    EXPECT_EQ(def->row_count(), data->row_count()) << name;
  }
}

TEST_F(TpchTest, PrimaryKeysAreUnique) {
  for (const std::string& name : db_->catalog().TableNames()) {
    auto def = db_->catalog().GetTable(name).value();
    auto data = db_->GetTableData(name).value();
    for (const KeyDef& key : def->keys()) {
      std::set<Row> seen;
      for (const Row& row : data->rows()) {
        Row key_values;
        for (int ordinal : key.column_ordinals) {
          key_values.push_back(row[static_cast<size_t>(ordinal)]);
        }
        EXPECT_TRUE(seen.insert(key_values).second)
            << "duplicate key in " << name;
      }
    }
  }
}

TEST_F(TpchTest, KeyColumnsAreNeverNull) {
  for (const std::string& name : db_->catalog().TableNames()) {
    auto def = db_->catalog().GetTable(name).value();
    auto data = db_->GetTableData(name).value();
    for (const KeyDef& key : def->keys()) {
      for (const Row& row : data->rows()) {
        for (int ordinal : key.column_ordinals) {
          EXPECT_FALSE(row[static_cast<size_t>(ordinal)].is_null());
        }
      }
    }
  }
}

TEST_F(TpchTest, ForeignKeysResolve) {
  for (const std::string& name : db_->catalog().TableNames()) {
    auto def = db_->catalog().GetTable(name).value();
    auto data = db_->GetTableData(name).value();
    for (const ForeignKeyDef& fk : def->foreign_keys()) {
      auto parent = db_->GetTableData(fk.referenced_table).value();
      std::set<Value> parent_values;
      for (const Row& row : parent->rows()) {
        parent_values.insert(row[static_cast<size_t>(fk.referenced_ordinal)]);
      }
      for (const Row& row : data->rows()) {
        const Value& v = row[static_cast<size_t>(fk.column_ordinal)];
        if (v.is_null()) continue;
        EXPECT_TRUE(parent_values.count(v) > 0)
            << name << " has dangling FK to " << fk.referenced_table;
      }
    }
  }
}

TEST_F(TpchTest, NullableColumnsActuallyContainNulls) {
  // s_acctbal has null_fraction 0.05; with 10 suppliers at scale 1 nulls are
  // not guaranteed — use customer (60 rows) where expectation is ~3.
  auto data = db_->GetTableData("customer").value();
  int nulls = 0;
  for (const Row& row : data->rows()) {
    if (row[3].is_null()) ++nulls;  // c_acctbal
  }
  EXPECT_GT(nulls, 0);
  EXPECT_LT(nulls, data->row_count() / 2);
}

TEST_F(TpchTest, DeterministicForSameSeed) {
  auto db2 = MakeTpchDatabase(TpchConfig{}).value();
  for (const std::string& name : db_->catalog().TableNames()) {
    auto a = db_->GetTableData(name).value();
    auto b = db2->GetTableData(name).value();
    ASSERT_EQ(a->row_count(), b->row_count()) << name;
    for (size_t i = 0; i < a->rows().size(); ++i) {
      EXPECT_EQ(CompareRows(a->rows()[i], b->rows()[i]), 0) << name;
    }
  }
}

TEST_F(TpchTest, DifferentSeedChangesData) {
  TpchConfig config;
  config.seed = 999;
  auto db2 = MakeTpchDatabase(config).value();
  auto a = db_->GetTableData("orders").value();
  auto b = db2->GetTableData("orders").value();
  bool any_diff = false;
  for (size_t i = 0; i < a->rows().size() && !any_diff; ++i) {
    if (CompareRows(a->rows()[i], b->rows()[i]) != 0) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TpchScaleTest, ScaleMultipliesRowCounts) {
  TpchConfig small, large;
  large.scale = 3;
  auto db1 = MakeTpchDatabase(small).value();
  auto db3 = MakeTpchDatabase(large).value();
  auto orders1 = db1->catalog().GetTable("orders").value();
  auto orders3 = db3->catalog().GetTable("orders").value();
  EXPECT_EQ(orders3->row_count(), 3 * orders1->row_count());
  // Fixed-size tables stay fixed.
  EXPECT_EQ(db3->catalog().GetTable("region").value()->row_count(), 5);
  EXPECT_EQ(db3->catalog().GetTable("nation").value()->row_count(), 25);
}

TEST(DatabaseTest, RowWidthValidated) {
  Database db;
  auto def = std::make_shared<TableDef>(
      "t", std::vector<ColumnDef>{{"a", ValueType::kInt64, 1, 0, 0, 0.0}}, 1);
  ASSERT_TRUE(db.mutable_catalog()->AddTable(def).ok());
  std::vector<Row> bad_rows = {{Value::Int64(1), Value::Int64(2)}};
  EXPECT_FALSE(
      db.AddTableData("t", std::make_shared<TableData>(bad_rows)).ok());
}

}  // namespace
}  // namespace qtf
