// The differential acceptance suite for the rule DSL ports: a "twin"
// registry — the default registry with the 15 ported rules replaced at
// their canonical ids by DSL twins compiled from rules/dsl/*.qtr — must be
// observationally indistinguishable from the builtin registry across the
// full service surface: optimization (cost, memo shape, exercised rules),
// suite generation + compression (assignment, total cost, optimizer_calls),
// and the correctness pipeline. Serial and parallel frameworks must agree.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ruledsl/compiler.h"
#include "rules/default_rules.h"
#include "rules/exploration_rules.h"
#include "rules/implementation_rules.h"
#include "service/service.h"

namespace qtf {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

/// Compiles the shipped .qtr ports and returns them keyed by rule name.
std::map<std::string, std::unique_ptr<Rule>> CompileTwins() {
  std::map<std::string, std::unique_ptr<Rule>> twins;
  for (const char* file :
       {"join_rules.qtr", "select_rules.qtr", "union_rules.qtr"}) {
    const std::string path =
        std::string(QTF_SOURCE_DIR) + "/rules/dsl/" + file;
    auto rules = ruledsl::CompileRuleDsl(ReadFileOrDie(path));
    EXPECT_TRUE(rules.ok()) << file << ": " << rules.status().ToString();
    if (!rules.ok()) continue;
    for (std::unique_ptr<Rule>& rule : *rules) {
      twins[rule->name()] = std::move(rule);
    }
  }
  return twins;
}

/// The default registry, except every rule with a DSL twin is replaced by
/// that twin — at the same id, since ids are registration order.
std::unique_ptr<RuleRegistry> MakeTwinRegistry() {
  std::map<std::string, std::unique_ptr<Rule>> twins = CompileTwins();
  using Factory = std::unique_ptr<Rule> (*)();
  // Canonical registration order (src/rules/default_rules.cc).
  static constexpr Factory kFactories[] = {
      MakeJoinCommutativity, MakeJoinAssociativityLeft,
      MakeJoinAssociativityRight, MakeSelectPushBelowJoinLeft,
      MakeSelectPushBelowJoinRight, MakeSelectPushBelowLojLeft,
      MakeSelectMerge, MakeSelectSplit, MakeSelectPushBelowProject,
      MakeSelectPushBelowGroupBy, MakeSelectPushBelowUnionAll,
      MakeProjectMerge, MakeGroupByPushBelowJoinLeft,
      MakeGroupByPullAboveJoinLeft, MakeLojToJoin, MakeJoinLojAssocLeft,
      MakeLojLojAssocRight, MakeSemiJoinToJoinDistinct, MakeJoinToSemiJoin,
      MakeAntiToLojNullFilter, MakeUnionAllCommutativity,
      MakeUnionAllAssociativity, MakeDistinctElimination,
      MakeGroupByToDistinct, MakeDistinctToGroupBy,
      MakeGroupByOnKeyElimination, MakeSelectPushBelowDistinct,
      MakeProjectPushBelowUnionAll, MakeSemiJoinCommuteSelect,
      MakeSelectIntoJoin,
      // Implementation rules.
      MakeGetToScan, MakeSelectToFilter, MakeProjectToCompute,
      MakeJoinToNlJoin, MakeJoinToHashJoin, MakeGroupByToHashAggregate,
      MakeGroupByToStreamAggregate, MakeUnionAllToConcat,
      MakeDistinctToHashDistinct,
  };
  auto registry = std::make_unique<RuleRegistry>();
  int replaced = 0;
  for (Factory factory : kFactories) {
    std::unique_ptr<Rule> builtin = factory();
    auto twin = twins.find(builtin->name());
    if (twin != twins.end()) {
      registry->Register(std::move(twin->second));
      ++replaced;
    } else {
      registry->Register(std::move(builtin));
    }
  }
  EXPECT_EQ(replaced, 15) << "not every shipped .qtr port found its slot";
  return registry;
}

std::unique_ptr<service::RuleTestService> MakeServiceWithRegistry(
    std::unique_ptr<RuleRegistry> registry, int threads) {
  service::RuleTestService::Config config;
  config.framework.rules = std::move(registry);
  config.framework.threads = threads;
  return service::RuleTestService::Create(std::move(config)).value();
}

TEST(TwinRegistryTest, MirrorsTheDefaultRegistryIdForId) {
  std::unique_ptr<RuleRegistry> builtin = MakeDefaultRuleRegistry();
  std::unique_ptr<RuleRegistry> twin = MakeTwinRegistry();
  ASSERT_EQ(twin->size(), builtin->size());
  int dsl_rules = 0;
  for (RuleId id = 0; id < builtin->size(); ++id) {
    const Rule& b = builtin->rule(id);
    const Rule& t = twin->rule(id);
    EXPECT_EQ(t.name(), b.name()) << "id " << id;
    EXPECT_EQ(t.type(), b.type()) << b.name();
    EXPECT_EQ(t.pattern()->ToString(), b.pattern()->ToString()) << b.name();
    if (t.origin() == RuleOrigin::kDsl) ++dsl_rules;
  }
  EXPECT_EQ(dsl_rules, 15);
}

class RuleDslEndToEndDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    builtin_ = MakeServiceWithRegistry(MakeDefaultRuleRegistry(),
                                       /*threads=*/1);
    twin_ = MakeServiceWithRegistry(MakeTwinRegistry(), /*threads=*/1);
    twin_parallel_ = MakeServiceWithRegistry(MakeTwinRegistry(),
                                             /*threads=*/4);
  }

  /// Runs one request against all three services and demands identical
  /// responses — builtin vs twin (the differential oracle), and twin
  /// serial vs twin parallel (the share-don't-mutate witness).
  template <typename Request, typename Check>
  void ExpectAllAgree(const Request& request, Check check) {
    auto baseline = builtin_->Execute(service::ServiceRequest(request));
    auto serial = twin_->Execute(service::ServiceRequest(request));
    auto parallel = twin_parallel_->Execute(service::ServiceRequest(request));
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    check(*baseline, *serial, "builtin vs twin");
    check(*baseline, *parallel, "builtin vs twin(parallel)");
  }

  std::unique_ptr<service::RuleTestService> builtin_, twin_, twin_parallel_;
};

TEST_F(RuleDslEndToEndDiffTest, OptimizeAgreesOverSeededQueries) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    service::OptimizeRequest request;
    request.seed = seed;
    ExpectAllAgree(request, [&](const service::ServiceResponse& a,
                                const service::ServiceResponse& b,
                                const char* what) {
      const auto& ra = std::get<service::OptimizeResponse>(a);
      const auto& rb = std::get<service::OptimizeResponse>(b);
      EXPECT_EQ(ra.sql, rb.sql) << what << ", seed " << seed;
      EXPECT_EQ(ra.cost, rb.cost) << what << ", seed " << seed;
      EXPECT_EQ(ra.exercised_rules, rb.exercised_rules)
          << what << ", seed " << seed;
      EXPECT_EQ(ra.group_count, rb.group_count) << what << ", seed " << seed;
      EXPECT_EQ(ra.expr_count, rb.expr_count) << what << ", seed " << seed;
    });
  }
}

TEST_F(RuleDslEndToEndDiffTest, OptimizeAgreesWithPortedRulesDisabled) {
  // Disabling a ported rule by id must suppress the twin exactly as it
  // suppresses the builtin (JoinCommutativity=0, SelectMerge=6,
  // LojToJoin=14).
  for (RuleId disabled : {0, 6, 14}) {
    service::OptimizeRequest request;
    request.seed = 9;
    request.disabled_rules = {disabled};
    ExpectAllAgree(request, [&](const service::ServiceResponse& a,
                                const service::ServiceResponse& b,
                                const char* what) {
      const auto& ra = std::get<service::OptimizeResponse>(a);
      const auto& rb = std::get<service::OptimizeResponse>(b);
      EXPECT_EQ(ra.cost, rb.cost) << what << ", disabled " << disabled;
      EXPECT_EQ(ra.exercised_rules, rb.exercised_rules)
          << what << ", disabled " << disabled;
      EXPECT_EQ(ra.group_count, rb.group_count)
          << what << ", disabled " << disabled;
    });
  }
}

TEST_F(RuleDslEndToEndDiffTest, CompressionAgreesOverSingletonsAndPairs) {
  service::CompressSuiteRequest singletons;
  singletons.suite.n_rules = 8;
  singletons.suite.k = 2;
  singletons.suite.seed = 5;
  service::CompressSuiteRequest pairs;
  pairs.suite.n_rules = 5;
  pairs.suite.pairs = true;
  pairs.suite.k = 1;
  pairs.suite.seed = 5;
  for (const auto& request : {singletons, pairs}) {
    ExpectAllAgree(request, [&](const service::ServiceResponse& a,
                                const service::ServiceResponse& b,
                                const char* what) {
      const auto& ra = std::get<service::CompressSuiteResponse>(a);
      const auto& rb = std::get<service::CompressSuiteResponse>(b);
      EXPECT_EQ(ra.suite_queries, rb.suite_queries) << what;
      EXPECT_EQ(ra.assignment, rb.assignment) << what;
      EXPECT_EQ(ra.total_cost, rb.total_cost) << what;
      EXPECT_EQ(ra.optimizer_calls, rb.optimizer_calls) << what;
      EXPECT_EQ(ra.degraded_targets, rb.degraded_targets) << what;
    });
  }
}

TEST_F(RuleDslEndToEndDiffTest, CorrectnessPipelineAgreesAndFindsNoBugs) {
  service::CorrectnessRequest request;
  request.suite.n_rules = 6;
  request.suite.k = 1;
  request.suite.seed = 3;
  ExpectAllAgree(request, [&](const service::ServiceResponse& a,
                              const service::ServiceResponse& b,
                              const char* what) {
    const auto& ra = std::get<service::CorrectnessResponse>(a);
    const auto& rb = std::get<service::CorrectnessResponse>(b);
    EXPECT_EQ(ra.plans_executed, rb.plans_executed) << what;
    EXPECT_EQ(ra.skipped_identical_plans, rb.skipped_identical_plans) << what;
    EXPECT_EQ(ra.skipped_unavailable, rb.skipped_unavailable) << what;
    EXPECT_EQ(ra.violations.size(), 0u) << what;
    EXPECT_EQ(rb.violations.size(), 0u) << what;
  });
}

TEST_F(RuleDslEndToEndDiffTest, SqlPipelineAgreesOnHandWrittenStatements) {
  const char* statements[] = {
      "SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity < 25",
      "SELECT n_name, r_name FROM nation, region "
      "WHERE n_regionkey = r_regionkey AND n_nationkey < 10",
      "SELECT DISTINCT c_nationkey FROM customer WHERE c_custkey < 100",
  };
  for (const char* sql : statements) {
    service::SqlRequest request;
    request.sql = sql;
    request.mode = service::SqlMode::kOptimize;
    ExpectAllAgree(request, [&](const service::ServiceResponse& a,
                                const service::ServiceResponse& b,
                                const char* what) {
      const auto& ra = std::get<service::SqlResponse>(a);
      const auto& rb = std::get<service::SqlResponse>(b);
      EXPECT_EQ(ra.fingerprint, rb.fingerprint) << what << ": " << sql;
      EXPECT_EQ(ra.canonical_sql, rb.canonical_sql) << what << ": " << sql;
      EXPECT_EQ(ra.cost, rb.cost) << what << ": " << sql;
      EXPECT_EQ(ra.exercised_rules, rb.exercised_rules)
          << what << ": " << sql;
      EXPECT_EQ(ra.group_count, rb.group_count) << what << ": " << sql;
      EXPECT_EQ(ra.expr_count, rb.expr_count) << what << ": " << sql;
    });
  }
}

TEST_F(RuleDslEndToEndDiffTest, OptimizerCallCountsMatchExactly) {
  // optimizer_calls is the paper's cost unit: the twins must not change
  // how many optimizations the compression pipeline issues, and the
  // invocation counters of the two serial services must track 1:1.
  service::CompressSuiteRequest request;
  request.suite.n_rules = 6;
  request.suite.k = 2;
  request.suite.seed = 11;
  auto baseline = builtin_->CompressSuite(request);
  auto twin = twin_->CompressSuite(request);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  EXPECT_EQ(baseline->optimizer_calls, twin->optimizer_calls);
  EXPECT_EQ(builtin_->framework()->optimizer()->invocation_count(),
            twin_->framework()->optimizer()->invocation_count());
}

}  // namespace
}  // namespace qtf
