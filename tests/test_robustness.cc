// Chaos suite for the robustness subsystem (docs/robustness.md): budgeted,
// cancellable optimization under deterministic fault injection.
//
// The properties asserted here are the acceptance criteria of the
// subsystem:
//   * a fault-seed sweep never crashes and never leaks an injected error
//     as anything but a propagated Status;
//   * at a fixed nonzero seed, serial and parallel runs produce identical
//     outputs and identical optimizer_calls();
//   * budget-exhausted runs still yield a valid (full) compression;
//   * cancellation from another thread ends an Optimize promptly with
//     consistent metrics.
//
// CI runs this binary across a QTF_FAULT_SEED matrix (and under TSan);
// set QTF_METRICS_JSON to dump the final chaos run's metrics snapshot.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <thread>

#include "compress/compression.h"
#include "qgen/generation.h"
#include "testing/framework.h"

namespace qtf {
namespace {

// Seeds for the chaos sweep: the QTF_FAULT_SEED environment variable (one
// seed, CI matrix style) or a small built-in sweep. Seed 0 would disable
// injection entirely, so it falls back to the default sweep.
std::vector<uint64_t> ChaosSeeds() {
  if (const char* env = std::getenv("QTF_FAULT_SEED")) {
    uint64_t seed = std::strtoull(env, nullptr, 10);
    if (seed != 0) return {seed};
  }
  return {1, 2, 3};
}

std::unique_ptr<RuleTestFramework> MakeChaosFramework(uint64_t seed,
                                                      int threads,
                                                      double fault_p) {
  RuleTestFramework::Options options;
  options.threads = threads;
  options.fault_injector.seed = seed;
  options.fault_injector.fault_probability = fault_p;
  options.fault_injector.latency_probability = 0.05;
  options.fault_injector.latency_micros = 20.0;
  return RuleTestFramework::Create(std::move(options)).value();
}

// Generates an n-target suite with injection gated off, so every chaos
// phase starts from the same clean, deterministic suite.
Result<TestSuite> MakeCleanSuite(RuleTestFramework* fw, int n_targets,
                                 int k) {
  if (fw->fault_injector() != nullptr) {
    fw->fault_injector()->set_enabled(false);
  }
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 1;
  config.seed = 2026;
  auto suite = fw->suite_generator()->Generate(
      fw->LogicalRuleSingletons(n_targets), k, config);
  if (fw->fault_injector() != nullptr) {
    fw->fault_injector()->set_enabled(true);
  }
  return suite;
}

// A full assignment: one entry per target, exactly k distinct in-range
// queries each.
void ExpectValidAssignment(const CompressionSolution& solution,
                           const TestSuite& suite, int k) {
  ASSERT_EQ(solution.assignment.size(), suite.targets.size());
  for (const std::vector<int>& queries : solution.assignment) {
    EXPECT_EQ(queries.size(), static_cast<size_t>(k));
    std::set<int> distinct(queries.begin(), queries.end());
    EXPECT_EQ(distinct.size(), queries.size());
    for (int q : queries) {
      EXPECT_GE(q, 0);
      EXPECT_LT(q, static_cast<int>(suite.queries.size()));
    }
  }
  EXPECT_TRUE(std::isfinite(solution.total_cost));
  EXPECT_GT(solution.total_cost, 0.0);
}

// The acceptance sweep: >= 10 targets, tight memo budget, nonzero fault
// seed — compression must complete without crash, produce a valid full
// assignment, and leave its robustness accounting in the metrics registry.
TEST(ChaosSweepTest, TightBudgetCompressionSurvivesEveryFaultSeed) {
  const int k = 2;
  int64_t total_retries = 0;
  std::string last_json;
  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    auto fw = MakeChaosFramework(seed, /*threads=*/2, /*fault_p=*/0.25);
    auto suite = MakeCleanSuite(fw.get(), /*n_targets=*/10, k);
    ASSERT_TRUE(suite.ok()) << suite.status().ToString();

    SearchBudget tight;
    tight.max_memo_exprs = 24;
    fw->optimizer()->set_default_budget(tight);

    EdgeCostProvider provider(fw->optimizer(), &*suite);
    provider.set_thread_pool(fw->thread_pool());
    auto topk = CompressTopKIndependent(&provider, k, true);
    ASSERT_TRUE(topk.ok()) << topk.status().ToString();
    ExpectValidAssignment(*topk, *suite, k);

    obs::MetricsSnapshot snapshot = fw->metrics()->Snapshot();
    EXPECT_GT(snapshot.CounterValue("qtf.robustness.faults_injected"), 0);
    EXPECT_GT(snapshot.CounterValue("qtf.robustness.budget_exhausted"), 0);
    total_retries += snapshot.CounterValue("qtf.robustness.retries");
    last_json = snapshot.ToJson();
  }
  // Retry exhaustion at p = 0.25 is rare per seed, but retries themselves
  // are near-certain across the sweep.
  EXPECT_GT(total_retries, 0);

  if (const char* path = std::getenv("QTF_METRICS_JSON")) {
    std::ofstream out(path);
    out << last_json << "\n";
    EXPECT_TRUE(out.good());
  }
}

// Under near-certain faults (p = 0.9 per probe, so ~73% of edges stay
// unavailable after 3 attempts), TOPK must degrade — node-cost-order
// fallback assignments, NodeCost estimates in the total — and say so in
// both the solution and the registry, while still producing a valid full
// assignment.
TEST(ChaosSweepTest, HeavyFaultsDegradeGracefullyAndAreAccounted) {
  const int k = 2;
  auto fw = MakeChaosFramework(/*seed=*/11, /*threads=*/2, /*fault_p=*/0.9);
  auto suite = MakeCleanSuite(fw.get(), /*n_targets=*/10, k);
  ASSERT_TRUE(suite.ok()) << suite.status().ToString();

  EdgeCostProvider provider(fw->optimizer(), &*suite);
  provider.set_thread_pool(fw->thread_pool());
  auto topk = CompressTopKIndependent(&provider, k, true);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  ExpectValidAssignment(*topk, *suite, k);

  EXPECT_GT(topk->degraded_targets, 0);
  EXPECT_GT(topk->estimated_edges, 0);

  obs::MetricsSnapshot snapshot = fw->metrics()->Snapshot();
  EXPECT_GT(snapshot.CounterValue("qtf.robustness.retries"), 0);
  EXPECT_GT(snapshot.CounterValue("qtf.robustness.retry_exhausted"), 0);
  EXPECT_EQ(snapshot.CounterValue("qtf.robustness.degraded_targets"),
            topk->degraded_targets);
  EXPECT_GE(snapshot.CounterValue("qtf.robustness.estimated_edges"),
            topk->estimated_edges);
  EXPECT_GT(snapshot.CounterValue(
                std::string("qtf.robustness.fault.") +
                fault_sites::kOptimizerApplyRule),
            0);
}

struct ChaosRunOutput {
  CompressionSolution topk;
  int64_t optimizer_calls = 0;
};

ChaosRunOutput RunChaosCompression(int threads) {
  auto fw = MakeChaosFramework(/*seed=*/7, threads, /*fault_p=*/0.3);
  auto suite = MakeCleanSuite(fw.get(), /*n_targets=*/8, /*k=*/2).value();
  // Memo budgets (not wall budgets) so truncation is deterministic.
  SearchBudget tight;
  tight.max_memo_exprs = 32;
  fw->optimizer()->set_default_budget(tight);

  EdgeCostProvider provider(fw->optimizer(), &suite);
  provider.set_thread_pool(fw->thread_pool());
  ChaosRunOutput out;
  out.topk = CompressTopKIndependent(&provider, 2, true).value();
  out.optimizer_calls = provider.optimizer_calls();
  return out;
}

// The determinism pillar: fault decisions are pure functions of
// (seed, site, key), budgets truncate on exact integer compares, and
// failures are memoized — so a chaos run is bit-for-bit reproducible at
// any thread count, including how many optimizer calls it spent.
TEST(ChaosDeterminismTest, SerialAndParallelRunsAreIdentical) {
  ChaosRunOutput serial = RunChaosCompression(/*threads=*/1);
  ChaosRunOutput parallel = RunChaosCompression(/*threads=*/4);
  ChaosRunOutput parallel2 = RunChaosCompression(/*threads=*/4);

  EXPECT_EQ(serial.topk.assignment, parallel.topk.assignment);
  EXPECT_EQ(serial.topk.total_cost, parallel.topk.total_cost);
  EXPECT_EQ(serial.topk.degraded_targets, parallel.topk.degraded_targets);
  EXPECT_EQ(serial.topk.estimated_edges, parallel.topk.estimated_edges);
  EXPECT_EQ(serial.optimizer_calls, parallel.optimizer_calls);

  // And across two parallel runs (schedule independence).
  EXPECT_EQ(parallel.topk.assignment, parallel2.topk.assignment);
  EXPECT_EQ(parallel.topk.total_cost, parallel2.topk.total_cost);
  EXPECT_EQ(parallel.optimizer_calls, parallel2.optimizer_calls);
}

// A disabled nonzero-seed injector must be indistinguishable from no
// injector at all: same outputs, same optimizer call count, no faults.
TEST(ChaosDeterminismTest, DisabledInjectorMatchesNoInjector) {
  auto run = [](uint64_t seed) {
    RuleTestFramework::Options options;
    options.fault_injector.seed = seed;
    options.fault_injector.fault_probability = 0.5;
    auto fw = RuleTestFramework::Create(std::move(options)).value();
    if (fw->fault_injector() != nullptr) {
      fw->fault_injector()->set_enabled(false);
    }
    GenerationConfig config;
    config.method = GenerationMethod::kPattern;
    config.seed = 99;
    auto suite = fw->suite_generator()
                     ->Generate(fw->LogicalRuleSingletons(6), 2, config)
                     .value();
    EdgeCostProvider provider(fw->optimizer(), &suite);
    ChaosRunOutput out;
    out.topk = CompressTopKIndependent(&provider, 2, true).value();
    out.optimizer_calls = provider.optimizer_calls();
    EXPECT_EQ(fw->metrics()->Snapshot().CounterValue(
                  "qtf.robustness.faults_injected"),
              0);
    return out;
  };
  ChaosRunOutput without = run(0);  // seed 0: no injector built at all
  ChaosRunOutput disabled = run(13);
  EXPECT_EQ(without.topk.assignment, disabled.topk.assignment);
  EXPECT_EQ(without.topk.total_cost, disabled.topk.total_cost);
  EXPECT_EQ(without.optimizer_calls, disabled.optimizer_calls);
  EXPECT_EQ(without.topk.degraded_targets, 0);
  EXPECT_EQ(disabled.topk.estimated_edges, 0);
}

// No faults, only a tight memo budget: every algorithm still returns a
// valid full compression (best-so-far plans, upper-bound costs) and the
// truncations are visible in qtf.robustness.budget_exhausted.
TEST(BudgetTest, ExhaustedSearchesStillYieldValidCompression) {
  auto fw = RuleTestFramework::Create({}).value();
  const int k = 2;
  auto suite = MakeCleanSuite(fw.get(), /*n_targets=*/10, k).value();

  SearchBudget tight;
  tight.max_memo_exprs = 24;
  fw->optimizer()->set_default_budget(tight);

  EdgeCostProvider provider(fw->optimizer(), &suite);
  auto baseline = CompressBaseline(&provider);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ExpectValidAssignment(*baseline, suite, k);
  auto topk = CompressTopKIndependent(&provider, k, true);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  ExpectValidAssignment(*topk, suite, k);

  // Without faults nothing is estimated or degraded, and recomputing the
  // solution's cost from its assignment reproduces it exactly.
  EXPECT_EQ(topk->degraded_targets, 0);
  EXPECT_EQ(topk->estimated_edges, 0);
  auto recomputed = SolutionCost(&provider, topk->assignment);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_NEAR(*recomputed, topk->total_cost, 1e-9);

  obs::MetricsSnapshot snapshot = fw->metrics()->Snapshot();
  EXPECT_GT(snapshot.CounterValue("qtf.robustness.budget_exhausted"), 0);
  EXPECT_EQ(snapshot.CounterValue("qtf.robustness.faults_injected"), 0);
}

// Budget truncation is deterministic: the same tight budget twice, on
// fresh frameworks, lands on the same plans, costs, and call counts.
TEST(BudgetTest, TruncationIsDeterministic) {
  auto run = [] {
    auto fw = RuleTestFramework::Create({}).value();
    auto suite = MakeCleanSuite(fw.get(), /*n_targets=*/6, 2).value();
    SearchBudget tight;
    tight.max_memo_exprs = 24;
    fw->optimizer()->set_default_budget(tight);
    EdgeCostProvider provider(fw->optimizer(), &suite);
    ChaosRunOutput out;
    out.topk = CompressTopKIndependent(&provider, 2, true).value();
    out.optimizer_calls = provider.optimizer_calls();
    return out;
  };
  ChaosRunOutput a = run();
  ChaosRunOutput b = run();
  EXPECT_EQ(a.topk.assignment, b.topk.assignment);
  EXPECT_EQ(a.topk.total_cost, b.topk.total_cost);
  EXPECT_EQ(a.optimizer_calls, b.optimizer_calls);
}

// Cancellation from another thread: a loop of Optimize calls carrying the
// token must stop promptly once Cancel() fires, surface kCancelled (never
// a partial result), keep the metrics ledger consistent, and leave the
// optimizer usable.
TEST(CancellationTest, MidOptimizeCancelFromAnotherThreadEndsPromptly) {
  auto fw = RuleTestFramework::Create({}).value();
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 4;
  config.seed = 404;
  GenerationOutcome outcome =
      fw->generator()->Generate({0}, config).value();
  ASSERT_TRUE(outcome.success);

  CancellationSource source;
  OptimizerOptions options;
  options.cancel = source.token();
  std::thread canceller([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    source.Cancel();
  });

  Status seen = Status::OK();
  // Far more iterations than can run in 2ms: the loop can only exit via
  // cancellation.
  for (int64_t i = 0; i < (int64_t{1} << 40); ++i) {
    auto result = fw->optimizer()->Optimize(outcome.query, options);
    if (!result.ok()) {
      seen = result.status();
      break;
    }
    ASSERT_NE(result->plan, nullptr);
  }
  canceller.join();
  EXPECT_EQ(seen.code(), StatusCode::kCancelled) << seen.ToString();

  obs::MetricsSnapshot snapshot = fw->metrics()->Snapshot();
  EXPECT_GE(snapshot.CounterValue("qtf.robustness.cancelled"), 1);
  EXPECT_EQ(snapshot.CounterValue("qtf.optimizer.invocations"),
            fw->optimizer()->invocation_count());

  // The optimizer survives: a fresh, un-cancelled call still plans.
  auto after = fw->optimizer()->Optimize(outcome.query);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(after->plan, nullptr);
}

// One CancellationSource stops every layer: generation, prefetch,
// compression, and correctness execution all see the shared token.
TEST(CancellationTest, OneTokenStopsEveryLayer) {
  auto fw = RuleTestFramework::Create({}).value();
  auto suite = MakeCleanSuite(fw.get(), /*n_targets=*/4, 2).value();

  CancellationSource source;
  source.Cancel();

  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.cancel = source.token();
  auto generation = fw->generator()->Generate({0}, config);
  ASSERT_FALSE(generation.ok());
  EXPECT_EQ(generation.status().code(), StatusCode::kCancelled);

  EdgeCostProvider provider(fw->optimizer(), &suite);
  provider.set_cancellation(source.token());
  auto compressed = CompressTopKIndependent(&provider, 2, true);
  ASSERT_FALSE(compressed.ok());
  EXPECT_EQ(compressed.status().code(), StatusCode::kCancelled);

  fw->runner()->set_cancellation(source.token());
  auto report = fw->runner()->Run(suite, suite.per_target);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCancelled);
}

// Correctness execution under injected optimizer *and* executor faults:
// transient failures are retried or skipped (and counted), but are never
// reported as correctness violations — chaos must not create false bug
// reports.
TEST(ChaosCorrectnessTest, InjectedFaultsNeverBecomeViolations) {
  // The batched executor probes once per (node, batch); the tiny chaos
  // tables fit in one batch per node, so the probe count stays close to
  // the plan's node count and most executions succeed within their retry
  // budget. Validations that stay unavailable are skipped and counted, so
  // a higher probe count degrades coverage, never correctness.
  auto fw = MakeChaosFramework(/*seed=*/5, /*threads=*/1, /*fault_p=*/0.05);
  auto suite = MakeCleanSuite(fw.get(), /*n_targets=*/6, 2).value();

  auto report = fw->runner()->Run(suite, suite.per_target);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->violations.empty());
  EXPECT_GT(report->plans_executed, 0);
  EXPECT_GE(report->skipped_unavailable, 0);

  obs::MetricsSnapshot snapshot = fw->metrics()->Snapshot();
  EXPECT_GT(snapshot.CounterValue("qtf.robustness.faults_injected"), 0);
  EXPECT_EQ(snapshot.CounterValue("qtf.robustness.skipped_validations"),
            report->skipped_unavailable);
}

}  // namespace
}  // namespace qtf
