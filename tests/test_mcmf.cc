// Min-cost max-flow substrate tests.

#include <gtest/gtest.h>

#include "compress/mcmf.h"

namespace qtf {
namespace {

TEST(McmfTest, SingleEdge) {
  MinCostMaxFlow flow(2);
  int e = flow.AddEdge(0, 1, 5.0, 2.0);
  auto result = flow.Solve(0, 1);
  EXPECT_DOUBLE_EQ(result.max_flow, 5.0);
  EXPECT_DOUBLE_EQ(result.total_cost, 10.0);
  EXPECT_DOUBLE_EQ(flow.flow_on(e), 5.0);
}

TEST(McmfTest, PrefersCheaperParallelPath) {
  MinCostMaxFlow flow(4);
  // source 0 -> sink 3 via 1 (cost 1) or 2 (cost 10), capacities 1 each.
  flow.AddEdge(0, 1, 1.0, 0.0);
  flow.AddEdge(0, 2, 1.0, 0.0);
  int cheap = flow.AddEdge(1, 3, 1.0, 1.0);
  int pricey = flow.AddEdge(2, 3, 1.0, 10.0);
  auto result = flow.Solve(0, 3);
  EXPECT_DOUBLE_EQ(result.max_flow, 2.0);
  EXPECT_DOUBLE_EQ(result.total_cost, 11.0);
  EXPECT_DOUBLE_EQ(flow.flow_on(cheap), 1.0);
  EXPECT_DOUBLE_EQ(flow.flow_on(pricey), 1.0);
}

TEST(McmfTest, RespectsBottleneckCapacity) {
  MinCostMaxFlow flow(3);
  flow.AddEdge(0, 1, 10.0, 1.0);
  flow.AddEdge(1, 2, 3.0, 1.0);
  auto result = flow.Solve(0, 2);
  EXPECT_DOUBLE_EQ(result.max_flow, 3.0);
  EXPECT_DOUBLE_EQ(result.total_cost, 6.0);
}

TEST(McmfTest, DisconnectedGraphHasZeroFlow) {
  MinCostMaxFlow flow(4);
  flow.AddEdge(0, 1, 1.0, 1.0);
  flow.AddEdge(2, 3, 1.0, 1.0);
  auto result = flow.Solve(0, 3);
  EXPECT_DOUBLE_EQ(result.max_flow, 0.0);
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
}

TEST(McmfTest, AssignmentProblem) {
  // 2 workers, 2 jobs; cost matrix [[1, 5], [5, 1]]; optimum = 2.
  // Nodes: 0 source, 1-2 workers, 3-4 jobs, 5 sink.
  MinCostMaxFlow flow(6);
  flow.AddEdge(0, 1, 1.0, 0.0);
  flow.AddEdge(0, 2, 1.0, 0.0);
  int w1j1 = flow.AddEdge(1, 3, 1.0, 1.0);
  flow.AddEdge(1, 4, 1.0, 5.0);
  flow.AddEdge(2, 3, 1.0, 5.0);
  int w2j2 = flow.AddEdge(2, 4, 1.0, 1.0);
  flow.AddEdge(3, 5, 1.0, 0.0);
  flow.AddEdge(4, 5, 1.0, 0.0);
  auto result = flow.Solve(0, 5);
  EXPECT_DOUBLE_EQ(result.max_flow, 2.0);
  EXPECT_DOUBLE_EQ(result.total_cost, 2.0);
  EXPECT_DOUBLE_EQ(flow.flow_on(w1j1), 1.0);
  EXPECT_DOUBLE_EQ(flow.flow_on(w2j2), 1.0);
}

TEST(McmfTest, ChoosesExpensiveEdgeOnlyWhenForced) {
  // Max flow requires using both edges even though one is pricey.
  MinCostMaxFlow flow(3);
  flow.AddEdge(0, 1, 2.0, 0.0);
  flow.AddEdge(1, 2, 1.0, 1.0);
  flow.AddEdge(1, 2, 1.0, 100.0);
  auto result = flow.Solve(0, 2);
  EXPECT_DOUBLE_EQ(result.max_flow, 2.0);
  EXPECT_DOUBLE_EQ(result.total_cost, 101.0);
}

}  // namespace
}  // namespace qtf
