// RuleTestService + ServiceServer: option validation, admission shedding,
// budget/deadline/cancellation plumbing, and the serving acceptance
// criteria — a resident server answering concurrent connections with
// responses byte-identical to in-process calls, and surviving garbage
// frames from hostile peers.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/service.h"

namespace qtf {
namespace {

std::unique_ptr<service::RuleTestService> MakeService(
    size_t max_queue_depth = 128, int threads = 1) {
  service::RuleTestService::Config config;
  config.framework.max_queue_depth = max_queue_depth;
  config.framework.threads = threads;
  return service::RuleTestService::Create(std::move(config)).value();
}

TEST(ServiceOptionsTest, CreateRejectsInvalidOptionsNamingTheField) {
  {
    service::RuleTestService::Config config;
    config.framework.threads = 0;
    auto result = service::RuleTestService::Create(std::move(config));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("threads"), std::string::npos)
        << result.status().ToString();
  }
  {
    service::RuleTestService::Config config;
    config.framework.plan_cache_capacity = 0;
    auto result = service::RuleTestService::Create(std::move(config));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("plan_cache_capacity"),
              std::string::npos);
  }
  {
    service::RuleTestService::Config config;
    config.framework.max_queue_depth = 0;
    auto result = service::RuleTestService::Create(std::move(config));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("max_queue_depth"),
              std::string::npos);
  }
  {
    service::RuleTestService::Config config;
    config.framework.default_deadline_seconds = -1.0;
    auto result = service::RuleTestService::Create(std::move(config));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("default_deadline_seconds"),
              std::string::npos);
  }
}

TEST(ServiceTest, GenerateAndOptimizeWork) {
  auto service = MakeService();
  service::GenerateRequest generate;
  generate.targets = {0};
  generate.seed = 3;
  auto generated = service->Generate(generate);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  EXPECT_TRUE(generated->success);
  EXPECT_FALSE(generated->sql.empty());
  EXPECT_GT(generated->operator_count, 0);

  service::OptimizeRequest optimize;
  optimize.seed = 5;
  auto optimized = service->Optimize(optimize);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_FALSE(optimized->sql.empty());
  EXPECT_GT(optimized->group_count, 0);
  EXPECT_GT(service->metrics()->counter("qtf.service.requests")->Value(), 0);
}

TEST(ServiceTest, RequestValidationNamesTheField) {
  auto service = MakeService();
  service::GenerateRequest bad_target;
  bad_target.targets = {9999};
  auto result = service->Generate(bad_target);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("targets"), std::string::npos);

  service::OptimizeRequest bad_ops;
  bad_ops.min_ops = 5;
  bad_ops.max_ops = 2;
  auto ops_result = service->Optimize(bad_ops);
  ASSERT_FALSE(ops_result.ok());
  EXPECT_EQ(ops_result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceTest, BudgetExhaustionDegradesGracefully) {
  auto service = MakeService();
  service::OptimizeRequest request;
  request.seed = 9;
  request.min_ops = 6;
  request.max_ops = 9;
  // A one-group memo budget cannot fit any real search: the optimizer
  // must truncate exploration and still return its best plan.
  request.options.budget.max_memo_groups = 1;
  auto response = service->Optimize(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->budget_exhausted);
  EXPECT_FALSE(response->sql.empty());
}

TEST(ServiceTest, PreCancelledRequestReturnsCancelled) {
  auto service = MakeService();
  CancellationSource source;
  source.Cancel();
  service::CorrectnessRequest request;
  request.suite.n_rules = 2;
  request.suite.k = 1;
  request.options.cancel = source.token();
  auto response = service->RunCorrectness(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCancelled);
}

TEST(ServiceTest, MidRequestCancellationStopsTheRequest) {
  auto service = MakeService();
  CancellationSource source;
  service::CorrectnessRequest request;
  // Large enough that cancellation lands mid-flight on any machine.
  request.suite.n_rules = 8;
  request.suite.pairs = true;
  request.suite.k = 3;
  request.options.cancel = source.token();

  std::atomic<bool> done{false};
  Result<service::CorrectnessResponse> response =
      Status::Internal("not run");
  std::thread worker([&] {
    response = service->RunCorrectness(request);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  source.Cancel();
  worker.join();
  ASSERT_TRUE(done.load());
  // Either the request finished before the cancel landed (small machines
  // are fast) or it observed the token; it must never hang or crash.
  if (!response.ok()) {
    EXPECT_EQ(response.status().code(), StatusCode::kCancelled)
        << response.status().ToString();
  }
}

TEST(ServiceTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  auto service = MakeService();
  service::CorrectnessRequest request;
  request.suite.n_rules = 2;
  request.suite.k = 1;
  request.options.deadline_seconds = 1e-9;
  // The deadline is minutes shorter than suite generation + compression +
  // execution; some phase boundary must observe it.
  auto response = service->RunCorrectness(request);
  if (!response.ok()) {
    EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
        << response.status().ToString();
  }
}

TEST(ServiceTest, ShedsWithResourceExhaustedWhenQueueIsFull) {
  auto service = MakeService(/*max_queue_depth=*/2);
  // Occupy every admission slot, as if two long requests were in flight.
  auto slot1 = service->admission()->TryEnter();
  auto slot2 = service->admission()->TryEnter();
  ASSERT_TRUE(slot1);
  ASSERT_TRUE(slot2);

  service::OptimizeRequest request;
  auto shed = service->Optimize(request);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(service->metrics()->counter("qtf.service.sheds")->Value(), 0);

  // Metrics bypass admission: observability survives saturation.
  auto metrics = service->Metrics(service::MetricsRequest{});
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->body.find("qtf.service.sheds"), std::string::npos);

  // Slots released -> requests flow again.
  slot1.Release();
  slot2.Release();
  auto ok_again = service->Optimize(request);
  EXPECT_TRUE(ok_again.ok()) << ok_again.status().ToString();
}

// --- Runtime rule loading -------------------------------------------------

// A SelectSplit-shaped probe, distinct in name from every builtin so its
// registration and exercise are attributable to the LoadRules path.
constexpr char kProbeRule[] =
    "rule ProbeSelectSplit {\n"
    "  match s: select($X)\n"
    "  when min_conjuncts(pred(s), 2)\n"
    "  rewrite select(select($X, tail(pred(s))), head(pred(s)))\n"
    "}\n";

TEST(ServiceLoadRulesTest, LoadsRegistersAndExercisesARuntimeRule) {
  auto service = MakeService();
  const int before = service->framework()->rules().size();

  service::LoadRulesRequest load;
  load.text = kProbeRule;
  auto loaded = service->LoadRules(load);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->compiled, 1);
  ASSERT_EQ(loaded->ids.size(), 1u);
  ASSERT_EQ(loaded->names.size(), 1u);
  EXPECT_EQ(loaded->names[0], "ProbeSelectSplit");
  // Ids are registration order: the runtime rule lands after the builtins.
  EXPECT_EQ(loaded->ids[0], before);
  EXPECT_GT(service->metrics()->counter("qtf.dsl.loaded")->Value(), 0);

  // ListRules reports it with origin=dsl next to the builtins.
  auto listed = service->ListRules(service::ListRulesRequest{});
  ASSERT_TRUE(listed.ok()) << listed.status().ToString();
  ASSERT_EQ(listed->rules.size(), static_cast<size_t>(before) + 1);
  const service::RuleInfo& info = listed->rules.back();
  EXPECT_EQ(info.id, loaded->ids[0]);
  EXPECT_EQ(info.name, "ProbeSelectSplit");
  EXPECT_EQ(info.type, 0);  // exploration
  EXPECT_EQ(info.origin, 1);  // dsl
  EXPECT_EQ(info.pattern, "Select(Any)");
  EXPECT_EQ(listed->rules.front().origin, 0);  // builtins unchanged

  // The loaded rule is live: a multi-conjunct select exercises it, and the
  // full correctness pipeline over that query finds no violations.
  service::SqlRequest sql;
  sql.sql = "SELECT n_name FROM nation WHERE n_nationkey < 10 AND "
            "n_regionkey < 3";
  sql.mode = service::SqlMode::kOptimize;
  auto optimized = service->Sql(sql);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_NE(std::find(optimized->exercised_rules.begin(),
                      optimized->exercised_rules.end(), loaded->ids[0]),
            optimized->exercised_rules.end())
      << "runtime-loaded rule was not exercised";

  sql.mode = service::SqlMode::kCorrectness;
  auto correctness = service->Sql(sql);
  ASSERT_TRUE(correctness.ok()) << correctness.status().ToString();
  EXPECT_GT(correctness->plans_executed, 0);
  EXPECT_TRUE(correctness->violations.empty());
}

TEST(ServiceLoadRulesTest, RejectsCollisionsMalformedAndEmptySpecs) {
  auto service = MakeService();
  const int before = service->framework()->rules().size();

  {
    // Name collision with a resident builtin: all-or-nothing kAlreadyExists.
    service::LoadRulesRequest load;
    load.text = "rule JoinCommutativity { match t: join(inner, $A, $B) "
                "rewrite join(inner, $B, $A, pred(t)) }";
    auto result = service->LoadRules(load);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
    EXPECT_NE(result.status().message().find("JoinCommutativity"),
              std::string::npos);
  }
  {
    // Malformed spec: kInvalidArgument carrying its line:col position.
    service::LoadRulesRequest load;
    load.text = "rule Broken {\n  match s: select($X)\n  rewrite $Y\n}";
    auto result = service->LoadRules(load);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("3:"), std::string::npos)
        << result.status().ToString();
  }
  {
    service::LoadRulesRequest empty;
    auto result = service->LoadRules(empty);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // dry_run compiles and reports without registering.
    service::LoadRulesRequest load;
    load.text = kProbeRule;
    load.dry_run = true;
    auto result = service->LoadRules(load);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->compiled, 1);
    EXPECT_TRUE(result->ids.empty());
    ASSERT_EQ(result->names.size(), 1u);
    EXPECT_EQ(result->names[0], "ProbeSelectSplit");
  }
  // None of the above grew the registry.
  EXPECT_EQ(service->framework()->rules().size(), before);
}

TEST(ServiceLoadRulesTest, LoadRulesIsSafeUnderConcurrentTraffic) {
  // LoadRules takes the registry lock exclusively while Sql/Optimize
  // requests hold it shared; interleaving them must neither crash nor
  // corrupt responses.
  auto service = MakeService();
  std::atomic<int> failures{0};
  std::thread loader([&] {
    for (int i = 0; i < 8; ++i) {
      service::LoadRulesRequest load;
      load.text = "rule Probe" + std::to_string(i) +
                  " { match s: select($X) when min_conjuncts(pred(s), 2) "
                  "rewrite select(select($X, tail(pred(s))), "
                  "head(pred(s))) }";
      if (!service->LoadRules(load).ok()) failures.fetch_add(1);
    }
  });
  std::vector<std::thread> traffic;
  for (int t = 0; t < 3; ++t) {
    traffic.emplace_back([&, t] {
      for (int i = 0; i < 6; ++i) {
        service::OptimizeRequest request;
        request.seed = static_cast<uint64_t>(t * 100 + i + 1);
        if (!service->Optimize(request).ok()) failures.fetch_add(1);
      }
    });
  }
  loader.join();
  for (std::thread& t : traffic) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service->framework()->rules().FindByName("Probe7") >= 0, true);
}

// --- Serving over loopback ------------------------------------------------

TEST(ServiceServerTest, ConcurrentConnectionsGetByteIdenticalResponses) {
  auto service = MakeService();
  net::ServerConfig config;
  config.port = 0;  // ephemeral
  config.workers = 4;
  auto server = net::ServiceServer::Start(service.get(), config).value();

  // In-process ground truth for the same seeds. The framework is
  // deterministic at any thread count and cache temperature, so a fresh
  // local service must produce the exact bytes the resident server sends.
  auto local = MakeService();

  constexpr int kConnections = 8;
  std::vector<std::string> remote_payload(kConnections);
  std::vector<std::string> local_payload(kConnections);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int i = 0; i < kConnections; ++i) {
    clients.emplace_back([&, i] {
      auto client_or = client::ServiceClient::Connect("127.0.0.1",
                                                      server->port());
      if (!client_or.ok()) {
        ++failures;
        return;
      }
      service::OptimizeRequest request;
      request.seed = 100 + static_cast<uint64_t>(i);
      auto frame = client_or.value()->CallRaw(
          net::MessageType::kOptimizeRequest,
          net::EncodeOptimizeRequest(request));
      if (!frame.ok() ||
          frame->type != net::MessageType::kOptimizeResponse) {
        ++failures;
        return;
      }
      remote_payload[i] = frame->payload;
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  for (int i = 0; i < kConnections; ++i) {
    service::OptimizeRequest request;
    request.seed = 100 + static_cast<uint64_t>(i);
    auto response = local->Optimize(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    local_payload[i] = net::EncodeOptimizeResponse(*response);
    EXPECT_EQ(remote_payload[i], local_payload[i])
        << "response for seed " << request.seed
        << " differs between transports";
  }

  EXPECT_GE(service->metrics()
                ->counter("qtf.service.sessions_total")
                ->Value(),
            kConnections);
  server->Shutdown();
}

TEST(ServiceServerTest, SurvivesGarbageFramesAndKeepsServing) {
  auto service = MakeService();
  net::ServerConfig config;
  config.port = 0;
  config.workers = 2;
  auto server = net::ServiceServer::Start(service.get(), config).value();

  std::mt19937_64 rng(777);
  for (int round = 0; round < 20; ++round) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

    std::string junk(64 + rng() % 512, '\0');
    for (char& c : junk) c = static_cast<char>(rng() & 0xff);
    if (round % 3 == 0) {
      // Sometimes lead with a valid frame whose payload is garbage: the
      // server must answer kError and only then hit the garbage.
      junk = net::EncodeFrame(net::MessageType::kGenerateRequest, 1,
                              junk.substr(0, 32)) +
             junk;
    }
    (void)::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL);
    ::close(fd);
  }

  // The server counted bad frames instead of dying...
  // (bad_frames may lag the last close slightly; poll briefly.)
  for (int i = 0; i < 100; ++i) {
    if (service->metrics()->counter("qtf.service.bad_frames")->Value() > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(service->metrics()->counter("qtf.service.bad_frames")->Value(),
            0);

  // ...and still serves well-formed clients.
  auto client =
      client::ServiceClient::Connect("127.0.0.1", server->port()).value();
  service::OptimizeRequest request;
  request.seed = 21;
  auto response = client->Optimize(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->sql.empty());
  server->Shutdown();
}

TEST(ServiceServerTest, MalformedPayloadGetsErrorFrameAndConnectionSurvives) {
  auto service = MakeService();
  net::ServerConfig config;
  config.port = 0;
  auto server = net::ServiceServer::Start(service.get(), config).value();
  auto client =
      client::ServiceClient::Connect("127.0.0.1", server->port()).value();

  // Truncated generate payload in a valid frame: kInvalidArgument back.
  auto error_frame =
      client->CallRaw(net::MessageType::kGenerateRequest, "abc");
  ASSERT_TRUE(error_frame.ok()) << error_frame.status().ToString();
  ASSERT_EQ(error_frame->type, net::MessageType::kError);
  Status carried;
  ASSERT_TRUE(net::DecodeError(error_frame->payload, &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kInvalidArgument);

  // Same connection keeps working afterwards.
  service::OptimizeRequest request;
  request.seed = 2;
  auto response = client->Optimize(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  server->Shutdown();
}

TEST(ServiceServerTest, ServerShedsOverWireWhenGateIsFull) {
  auto service = MakeService(/*max_queue_depth=*/1);
  net::ServerConfig config;
  config.port = 0;
  auto server = net::ServiceServer::Start(service.get(), config).value();
  auto client =
      client::ServiceClient::Connect("127.0.0.1", server->port()).value();

  // Hold the only admission slot so the next wire request must shed.
  auto slot = service->admission()->TryEnter();
  ASSERT_TRUE(slot);
  service::OptimizeRequest request;
  auto shed = client->Optimize(request);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);

  // Metrics bypass the gate even over the wire.
  auto metrics = client->Metrics(service::MetricsRequest{});
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  slot.Release();
  auto ok_again = client->Optimize(request);
  ASSERT_TRUE(ok_again.ok()) << ok_again.status().ToString();
  server->Shutdown();
}

}  // namespace
}  // namespace qtf
