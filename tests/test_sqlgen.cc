// SQL generation ([9]-style Generate SQL module): structural checks on the
// rendered text for every operator kind.

#include <gtest/gtest.h>

#include "qgen/generators.h"
#include "sql/render.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

class SqlGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTpchDatabase(TpchConfig{}).value();
    registry_ = std::make_shared<ColumnRegistry>();
    region_ = GetOp::Create(db_->catalog().GetTable("region").value(),
                            registry_.get());
    nation_ = GetOp::Create(db_->catalog().GetTable("nation").value(),
                            registry_.get());
  }

  std::string Sql(LogicalOpPtr root) {
    return GenerateSql(Query{std::move(root), registry_});
  }

  std::unique_ptr<Database> db_;
  ColumnRegistryPtr registry_;
  std::shared_ptr<const GetOp> region_, nation_;
};

TEST_F(SqlGenTest, GetRendersSelectFrom) {
  std::string sql = Sql(region_);
  EXPECT_NE(sql.find("FROM region"), std::string::npos);
  EXPECT_NE(sql.find("r_regionkey AS c"), std::string::npos);
}

TEST_F(SqlGenTest, SelectRendersWhere) {
  auto select = std::make_shared<SelectOp>(
      region_, Eq(Col(region_->columns()[1], ValueType::kString),
                  LitString("ASIA")));
  std::string sql = Sql(select);
  EXPECT_NE(sql.find("WHERE"), std::string::npos);
  EXPECT_NE(sql.find("'ASIA'"), std::string::npos);
}

TEST_F(SqlGenTest, InnerJoinRendersOnClause) {
  auto join = std::make_shared<JoinOp>(
      JoinKind::kInner, nation_, region_,
      Eq(Col(nation_->columns()[2], ValueType::kInt64),
         Col(region_->columns()[0], ValueType::kInt64)));
  std::string sql = Sql(join);
  EXPECT_NE(sql.find("INNER JOIN"), std::string::npos);
  EXPECT_NE(sql.find(" ON "), std::string::npos);
}

TEST_F(SqlGenTest, CrossJoinRendersTrivialPredicate) {
  auto join =
      std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_, nullptr);
  EXPECT_NE(Sql(join).find("(1 = 1)"), std::string::npos);
}

TEST_F(SqlGenTest, OuterSemiAntiJoins) {
  ExprPtr pred = Eq(Col(nation_->columns()[2], ValueType::kInt64),
                    Col(region_->columns()[0], ValueType::kInt64));
  auto loj =
      std::make_shared<JoinOp>(JoinKind::kLeftOuter, nation_, region_, pred);
  EXPECT_NE(Sql(loj).find("LEFT OUTER JOIN"), std::string::npos);
  auto semi =
      std::make_shared<JoinOp>(JoinKind::kLeftSemi, nation_, region_, pred);
  EXPECT_NE(Sql(semi).find("WHERE EXISTS"), std::string::npos);
  auto anti =
      std::make_shared<JoinOp>(JoinKind::kLeftAnti, nation_, region_, pred);
  EXPECT_NE(Sql(anti).find("NOT EXISTS"), std::string::npos);
}

TEST_F(SqlGenTest, GroupByRendersAggregates) {
  ColumnId cnt = registry_->Allocate("cnt", ValueType::kInt64);
  auto agg = std::make_shared<GroupByAggOp>(
      nation_, std::vector<ColumnId>{nation_->columns()[2]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt}});
  std::string sql = Sql(agg);
  EXPECT_NE(sql.find("GROUP BY"), std::string::npos);
  EXPECT_NE(sql.find("COUNT(*)"), std::string::npos);
}

TEST_F(SqlGenTest, ScalarAggregateHasNoGroupBy) {
  ColumnId cnt = registry_->Allocate("cnt", ValueType::kInt64);
  auto agg = std::make_shared<GroupByAggOp>(
      nation_, std::vector<ColumnId>{},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt}});
  EXPECT_EQ(Sql(agg).find("GROUP BY"), std::string::npos);
}

TEST_F(SqlGenTest, UnionAllAndDistinct) {
  auto r2 = GetOp::Create(db_->catalog().GetTable("region").value(),
                          registry_.get());
  std::vector<ColumnId> out_ids;
  for (ColumnId id : region_->columns()) {
    out_ids.push_back(registry_->Allocate("u", registry_->TypeOf(id)));
  }
  auto u = std::make_shared<UnionAllOp>(region_, r2, out_ids);
  EXPECT_NE(Sql(u).find("UNION ALL"), std::string::npos);
  auto d = std::make_shared<DistinctOp>(region_);
  EXPECT_NE(Sql(d).find("SELECT DISTINCT"), std::string::npos);
}

TEST_F(SqlGenTest, ProjectRendersExpressions) {
  ColumnId expr_id = registry_->Allocate("e", ValueType::kInt64);
  auto project = std::make_shared<ProjectOp>(
      region_,
      std::vector<ProjectItem>{
          {Col(region_->columns()[0], ValueType::kInt64),
           region_->columns()[0]},
          {Arith(ArithOp::kMul, Col(region_->columns()[0], ValueType::kInt64),
                 LitInt(3)),
           expr_id}});
  std::string sql = Sql(project);
  EXPECT_NE(sql.find("* 3"), std::string::npos);
}

TEST_F(SqlGenTest, EveryGeneratedQueryRendersNonEmpty) {
  RandomQueryGenerator generator(&db_->catalog(), 13);
  for (int i = 0; i < 25; ++i) {
    Query query = generator.Generate();
    std::string sql = GenerateSql(query);
    EXPECT_GT(sql.size(), 20u);
    EXPECT_EQ(sql.find("GroupRef"), std::string::npos);
  }
}

}  // namespace
}  // namespace qtf
