// The central semantic property of the rule set: for any query, disabling
// any exercised logical rule must not change the executed results. This is
// exactly the validation methodology the framework automates (paper Section
// 2.3); here it doubles as a property test over our own 30 rules.
//
// Two sweeps:
//   * a randomized sweep over stochastic queries (broad interactions), and
//   * a targeted sweep that uses pattern-based generation to guarantee
//     every logical rule is covered by at least one executed comparison.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "qgen/generation.h"
#include "qgen/generators.h"
#include "testing/framework.h"

namespace qtf {
namespace {

// EXPECT-and-bail adapter for non-void helpers.
#define ASSERT_OR_RETURN(result)                              \
  EXPECT_TRUE((result).ok()) << (result).status().ToString(); \
  if (!(result).ok()) return comparisons

class RuleCorrectnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fw = RuleTestFramework::Create({});
    ASSERT_TRUE(fw.ok());
    fw_ = std::move(fw).value();
  }

  /// Optimizes and executes `query` with and without each exercised
  /// logical rule, comparing result bags. Returns the number of executed
  /// comparisons; records covered rules in `covered`.
  int ValidateQuery(const Query& query, RuleIdSet* covered) {
    auto base = fw_->optimizer()->Optimize(query);
    if (!base.ok()) return 0;
    Executor executor(&fw_->db(), query.registry.get());
    auto base_rows = executor.Execute(*base->plan);
    EXPECT_TRUE(base_rows.ok()) << base_rows.status().ToString();
    if (!base_rows.ok()) return 0;

    int comparisons = 0;
    for (RuleId id : base->exercised_rules) {
      if (fw_->rules().rule(id).type() != RuleType::kExploration) continue;
      OptimizerOptions options;
      options.disabled_rules.insert(id);
      auto restricted = fw_->optimizer()->Optimize(query, options);
      ASSERT_OR_RETURN(restricted);
      auto rows = executor.Execute(*restricted->plan);
      ASSERT_OR_RETURN(rows);
      EXPECT_TRUE(ResultBagEquals(*base_rows, *rows))
          << "rule " << fw_->rules().rule(id).name()
          << " changes results for query:\n"
          << LogicalTreeToString(*query.root, nullptr);
      if (covered != nullptr) covered->insert(id);
      ++comparisons;
    }
    return comparisons;
  }

  std::unique_ptr<RuleTestFramework> fw_;
};

TEST_F(RuleCorrectnessTest, RandomQuerySweep) {
  RandomQueryGenerator generator(&fw_->catalog(), /*seed=*/2024);
  int total_comparisons = 0;
  for (int i = 0; i < 60; ++i) {
    Query query = generator.Generate();
    total_comparisons += ValidateQuery(query, nullptr);
  }
  // The sweep must have actually tested something substantial.
  EXPECT_GT(total_comparisons, 100);
}

TEST_F(RuleCorrectnessTest, EveryLogicalRuleCoveredByTargetedQueries) {
  RuleIdSet covered;
  for (RuleId id : fw_->LogicalRules()) {
    // Three queries per rule: minimal, +2 ops, +4 ops.
    for (int extra : {0, 2, 4}) {
      GenerationConfig config;
      config.method = GenerationMethod::kPattern;
      config.extra_ops = extra;
      config.seed = 5000 + static_cast<uint64_t>(id) * 17 +
                    static_cast<uint64_t>(extra);
      GenerationOutcome outcome =
          fw_->generator()->Generate({id}, config).value();
      ASSERT_TRUE(outcome.success)
          << "cannot generate for " << fw_->rules().rule(id).name();
      ValidateQuery(outcome.query, &covered);
    }
    EXPECT_TRUE(covered.count(id) > 0)
        << "rule " << fw_->rules().rule(id).name()
        << " was generated for but never exercised in validation";
  }
  EXPECT_EQ(covered.size(), fw_->LogicalRules().size());
}

TEST_F(RuleCorrectnessTest, PairQueriesValidateBothRules) {
  // A handful of rule pairs via pattern composition; validates rule
  // interactions (Section 3.2).
  std::vector<RuleId> logical = fw_->LogicalRules();
  std::vector<std::pair<int, int>> pair_indices = {
      {0, 3}, {1, 6}, {2, 14}, {6, 7}, {3, 9}, {0, 17}};
  for (auto [i, j] : pair_indices) {
    GenerationConfig config;
    config.method = GenerationMethod::kPattern;
    config.max_trials = 500;
    config.seed = 999 + static_cast<uint64_t>(i * 31 + j);
    GenerationOutcome outcome =
        fw_->generator()
            ->Generate({logical[static_cast<size_t>(i)],
                        logical[static_cast<size_t>(j)]},
                       config)
            .value();
    if (!outcome.success) continue;  // some pairs are genuinely hard
    RuleIdSet covered;
    ValidateQuery(outcome.query, &covered);
    EXPECT_TRUE(covered.count(logical[static_cast<size_t>(i)]) > 0);
    EXPECT_TRUE(covered.count(logical[static_cast<size_t>(j)]) > 0);
  }
}

#undef ASSERT_OR_RETURN

}  // namespace
}  // namespace qtf
