// Tests for the common substrate: Status/Result, RNG determinism, string
// utilities.

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/str_util.h"

namespace qtf {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  EXPECT_TRUE(Status::OK().ok());
  Status err = Status::NotFound("missing thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.message(), "missing thing");
  EXPECT_EQ(err.ToString(), "NotFound: missing thing");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kExecutionError}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  QTF_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(*good, 5);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, PickOneCoversAllElements) {
  Rng rng(7);
  std::vector<int> items = {1, 2, 3};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.PickOne(items));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(8);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(RngTest, ForkedStreamsAreIndependentButDeterministic) {
  Rng a(9), b(9);
  Rng fa = a.Fork(), fb = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa.UniformInt(0, 1 << 30), fb.UniformInt(0, 1 << 30));
  }
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StrUtilTest, SqlQuoteEscapesQuotes) {
  EXPECT_EQ(SqlQuote("plain"), "'plain'");
  EXPECT_EQ(SqlQuote("O'Brien"), "'O''Brien'");
  EXPECT_EQ(SqlQuote(""), "''");
}

TEST(StrUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
}

TEST(StrUtilTest, RepeatAndIndent) {
  EXPECT_EQ(Repeat("ab", 3), "ababab");
  EXPECT_EQ(Repeat("x", 0), "");
  EXPECT_EQ(Indent(2), "    ");
}

}  // namespace
}  // namespace qtf
