// Tests for the common substrate: Status/Result, RNG determinism, string
// utilities, budgets/cancellation, and the deterministic fault injector.

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <set>

#include "common/budget.h"
#include "common/fault_injection.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/str_util.h"

namespace qtf {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  EXPECT_TRUE(Status::OK().ok());
  Status err = Status::NotFound("missing thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.message(), "missing thing");
  EXPECT_EQ(err.ToString(), "NotFound: missing thing");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kExecutionError, StatusCode::kDeadlineExceeded,
        StatusCode::kCancelled, StatusCode::kResourceExhausted,
        StatusCode::kUnavailable}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  QTF_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(*good, 5);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, PickOneCoversAllElements) {
  Rng rng(7);
  std::vector<int> items = {1, 2, 3};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.PickOne(items));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(8);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(RngTest, ForkedStreamsAreIndependentButDeterministic) {
  Rng a(9), b(9);
  Rng fa = a.Fork(), fb = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa.UniformInt(0, 1 << 30), fb.UniformInt(0, 1 << 30));
  }
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StrUtilTest, SqlQuoteEscapesQuotes) {
  EXPECT_EQ(SqlQuote("plain"), "'plain'");
  EXPECT_EQ(SqlQuote("O'Brien"), "'O''Brien'");
  EXPECT_EQ(SqlQuote(""), "''");
}

TEST(StrUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
}

TEST(StrUtilTest, RepeatAndIndent) {
  EXPECT_EQ(Repeat("ab", 3), "ababab");
  EXPECT_EQ(Repeat("x", 0), "");
  EXPECT_EQ(Indent(2), "    ");
}

TEST(DeadlineTest, NeverAndExpiry) {
  Deadline never;
  EXPECT_TRUE(never.never());
  EXPECT_FALSE(never.expired());
  EXPECT_EQ(never.remaining_seconds(),
            std::numeric_limits<double>::infinity());

  Deadline past = Deadline::After(-1.0);
  EXPECT_FALSE(past.never());
  EXPECT_TRUE(past.expired());
  EXPECT_LE(past.remaining_seconds(), 0.0);

  Deadline future = Deadline::After(3600.0);
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remaining_seconds(), 0.0);
}

TEST(CancellationTest, TokensShareTheirSourceFlag) {
  CancellationSource source;
  CancellationToken a = source.token();
  CancellationToken b = a;  // copies observe the same flag
  EXPECT_TRUE(a.cancellable());
  EXPECT_FALSE(a.cancelled());
  EXPECT_FALSE(b.cancelled());
  source.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  source.Cancel();  // idempotent
  EXPECT_TRUE(source.cancelled());

  CancellationToken detached;
  EXPECT_FALSE(detached.cancellable());
  EXPECT_FALSE(detached.cancelled());
}

TEST(SearchBudgetTest, UnlimitedByDefault) {
  SearchBudget budget;
  EXPECT_TRUE(budget.unlimited());
  budget.max_memo_exprs = 10;
  EXPECT_FALSE(budget.unlimited());
}

TEST(FaultInjectorTest, SeedZeroNeverFaultsAndCannotBeEnabled) {
  FaultInjector injector({/*seed=*/0, /*fault_probability=*/1.0});
  EXPECT_FALSE(injector.enabled());
  injector.set_enabled(true);  // coerced back off: seed 0 means disabled
  EXPECT_FALSE(injector.enabled());
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_TRUE(injector.Probe(fault_sites::kPrefetchTask, key).ok());
  }
}

TEST(FaultInjectorTest, DecisionsArePureFunctionsOfSeedSiteKey) {
  FaultInjector::Config config;
  config.seed = 42;
  config.fault_probability = 0.5;
  FaultInjector a(config), b(config);
  int faults = 0;
  for (uint64_t key = 0; key < 2000; ++key) {
    bool fault = a.ShouldFault(fault_sites::kOptimizerApplyRule, key);
    EXPECT_EQ(fault, b.ShouldFault(fault_sites::kOptimizerApplyRule, key));
    faults += fault ? 1 : 0;
  }
  // Roughly half the keys fault at p = 0.5 (loose bounds, deterministic).
  EXPECT_GT(faults, 600);
  EXPECT_LT(faults, 1400);
  // Sites decorrelate: the same keys at another site fault differently.
  int agreements = 0;
  for (uint64_t key = 0; key < 2000; ++key) {
    agreements += a.ShouldFault(fault_sites::kOptimizerApplyRule, key) ==
                          a.ShouldFault(fault_sites::kExecutorNextBatch, key)
                      ? 1
                      : 0;
  }
  EXPECT_LT(agreements, 2000);
}

TEST(FaultInjectorTest, ProbeReturnsUnavailableExactlyWhenHashFires) {
  FaultInjector::Config config;
  config.seed = 7;
  config.fault_probability = 0.3;
  FaultInjector injector(config);
  for (uint64_t key = 0; key < 500; ++key) {
    Status status = injector.Probe(fault_sites::kPlanCacheGet, key);
    if (injector.ShouldFault(fault_sites::kPlanCacheGet, key)) {
      EXPECT_EQ(status.code(), StatusCode::kUnavailable);
      EXPECT_TRUE(IsTransient(status));
    } else {
      EXPECT_TRUE(status.ok());
    }
  }
  injector.set_enabled(false);
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_TRUE(injector.Probe(fault_sites::kPlanCacheGet, key).ok());
  }
}

TEST(FaultInjectorTest, JitterIsDeterministicAndBounded) {
  FaultInjector::Config config;
  config.seed = 9;
  FaultInjector a(config), b(config);
  for (int attempt = 0; attempt < 4; ++attempt) {
    for (uint64_t key = 0; key < 100; ++key) {
      double fa = a.JitterFactor(key, attempt, 0.5);
      EXPECT_EQ(fa, b.JitterFactor(key, attempt, 0.5));
      EXPECT_GE(fa, 0.5);
      EXPECT_LE(fa, 1.5);
    }
  }
}

TEST(FaultInjectorTest, EdgeKeyDecorrelatesAttempts) {
  std::set<uint64_t> keys;
  for (int target = -1; target < 3; ++target) {
    for (int q = 0; q < 3; ++q) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        keys.insert(FaultInjector::EdgeKey(target, q, attempt));
      }
    }
  }
  EXPECT_EQ(keys.size(), 4u * 3u * 3u);  // all distinct
}

TEST(RetryPolicyTest, BackoffRespectsTheCap) {
  RetryPolicy policy;
  policy.initial_backoff_micros = 10.0;
  policy.backoff_multiplier = 100.0;
  policy.max_backoff_micros = 50.0;
  // Attempt 3 would be 10 * 100^3 uncapped; the cap keeps the sleep tiny.
  auto start = std::chrono::steady_clock::now();
  SleepForBackoff(policy, /*attempt=*/3, /*jitter_factor=*/1.0);
  std::chrono::duration<double, std::micro> elapsed =
      std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed.count(), 50000.0);
  SleepForBackoff(policy, 0, 0.0);  // zero sleep is a no-op
}

}  // namespace
}  // namespace qtf
