// Unit tests for the observability substrate: counter/gauge/histogram
// semantics, registry get-or-create stability, snapshot determinism under
// ParallelFor contention, JSON export shape, and phase tracing.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qtf {
namespace obs {
namespace {

TEST(Counter, IncrementsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Set(0);
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(Histogram, CountsSumAndBuckets) {
  Histogram histogram;
  histogram.Observe(0.5);
  histogram.Observe(0.5);
  histogram.Observe(3.0);
  EXPECT_EQ(histogram.Count(), 3);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 4.0);

  // 0.5 = 2^-1 lands exactly on a bucket's inclusive upper bound; 3.0 is
  // rounded up into the bucket ending at 4.
  int64_t at_half = 0, at_four = 0;
  for (int i = 0; i < Histogram::kBucketCount; ++i) {
    if (Histogram::BucketUpperBound(i) == 0.5) at_half = histogram.BucketCount(i);
    if (Histogram::BucketUpperBound(i) == 4.0) at_four = histogram.BucketCount(i);
  }
  EXPECT_EQ(at_half, 2);
  EXPECT_EQ(at_four, 1);
}

TEST(Histogram, EdgeValuesAreClamped) {
  Histogram histogram;
  histogram.Observe(0.0);
  histogram.Observe(-1.0);
  histogram.Observe(std::numeric_limits<double>::quiet_NaN());
  histogram.Observe(std::numeric_limits<double>::infinity());
  histogram.Observe(1e300);  // beyond the finite buckets
  EXPECT_EQ(histogram.Count(), 5);
  EXPECT_EQ(histogram.BucketCount(0), 3);
  EXPECT_EQ(histogram.BucketCount(Histogram::kBucketCount - 1), 2);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kBucketCount - 1)));
}

TEST(Histogram, BucketBoundsArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(Histogram::kBucketShift), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(Histogram::kBucketShift + 1),
                   2.0);
  for (int i = 0; i + 1 < Histogram::kBucketCount - 1; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(i + 1),
                     2.0 * Histogram::BucketUpperBound(i));
  }
}

TEST(MetricsRegistry, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x");
  Counter* b = registry.counter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.counter("y"), a);
  // Counters, gauges and histograms live in separate namespaces: the same
  // name can safely exist in each.
  registry.gauge("x");
  registry.histogram("x");
  EXPECT_EQ(registry.counter("x"), a);
}

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  MetricsRegistry registry;
  registry.counter("z")->Increment(3);
  registry.counter("a")->Increment(1);
  registry.gauge("m")->Set(5);
  registry.histogram("h")->Observe(2.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a");
  EXPECT_EQ(snapshot.counters[1].first, "z");
  EXPECT_EQ(snapshot.CounterValue("z"), 3);
  EXPECT_EQ(snapshot.CounterValue("missing", -7), -7);
  EXPECT_EQ(snapshot.GaugeValue("m"), 5);
  ASSERT_NE(snapshot.FindHistogram("h"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("h")->count, 1);

  // Same state -> identical snapshot (including JSON rendering).
  MetricsSnapshot again = registry.Snapshot();
  EXPECT_EQ(snapshot.ToJson(), again.ToJson());
  EXPECT_EQ(snapshot.ToText(), again.ToText());
}

TEST(MetricsRegistry, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  const int kTasks = 64;
  const int kPerTask = 1000;
  ThreadPool pool(4);
  // Every task resolves the same metrics by name and hammers them; totals
  // must come out exact and the registry must not duplicate entries.
  ParallelFor(&pool, kTasks, [&registry](int i) {
    Counter* counter = registry.counter("qtf.test.contended");
    Histogram* histogram = registry.histogram("qtf.test.latency");
    for (int j = 0; j < kPerTask; ++j) {
      counter->Increment();
      histogram->Observe(static_cast<double>(i + 1));
    }
    return 0;
  });
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("qtf.test.contended"), kTasks * kPerTask);
  const MetricsSnapshot::HistogramValue* h =
      snapshot.FindHistogram("qtf.test.latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kTasks * kPerTask);
  int64_t bucket_total = 0;
  for (const auto& [le, count] : h->buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, kTasks * kPerTask);
  double expected_sum = 0.0;
  for (int i = 0; i < kTasks; ++i) expected_sum += (i + 1) * kPerTask;
  EXPECT_DOUBLE_EQ(h->sum, expected_sum);
}

TEST(MetricsSnapshot, JsonShape) {
  MetricsRegistry registry;
  registry.counter("c\"quoted")->Increment(2);
  registry.gauge("g")->Set(-1);
  registry.histogram("h")->Observe(1.0);
  registry.histogram("h")->Observe(
      std::numeric_limits<double>::infinity());
  std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\":{\"c\\\"quoted\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"g\":-1}"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  // The +inf bucket serializes with a null bound.
  EXPECT_NE(json.find("{\"le\":null,\"count\":1}"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(PhaseSpan, EmitsBalancedBeginEnd) {
  CollectingTraceSink sink;
  MetricsRegistry registry;
  registry.set_trace_sink(&sink);
  {
    PhaseSpan outer(&registry, "outer");
    PhaseSpan inner(&registry, "inner");
  }
  std::vector<TraceEvent> events = sink.TakeEvents();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kBegin);
  EXPECT_EQ(events[0].phase, "outer");
  EXPECT_EQ(events[1].phase, "inner");
  // Inner closes before outer (RAII order), end events carry durations.
  EXPECT_EQ(events[2].kind, TraceEvent::Kind::kEnd);
  EXPECT_EQ(events[2].phase, "inner");
  EXPECT_EQ(events[3].phase, "outer");
  EXPECT_GE(events[3].seconds, events[2].seconds);
  EXPECT_TRUE(sink.TakeEvents().empty());  // drained
}

TEST(PhaseSpan, InertWithoutSink) {
  MetricsRegistry registry;  // no sink attached
  PhaseSpan with_registry(&registry, "quiet");
  PhaseSpan without_registry(static_cast<MetricsRegistry*>(nullptr), "quiet");
  PhaseSpan without_sink(static_cast<TraceSink*>(nullptr), "quiet");
  // Nothing to assert beyond "does not crash"; the spans destruct here.
}

TEST(PhaseSpan, SpansFromWorkersCarryThreadHashes) {
  CollectingTraceSink sink;
  ThreadPool pool(3);
  ParallelFor(&pool, 6, [&sink](int i) {
    PhaseSpan span(&sink, "worker");
    return i;
  });
  std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 12u);
  std::set<uint64_t> hashes;
  for (const TraceEvent& event : events) hashes.insert(event.thread_hash);
  EXPECT_GE(hashes.size(), 1u);  // at least one thread; hashes recorded
}

TEST(ScopedTimer, RecordsIntoHistogramAndOut) {
  Histogram histogram;
  double seconds = -1.0;
  { ScopedTimer timer(&histogram, &seconds); }
  EXPECT_EQ(histogram.Count(), 1);
  EXPECT_GE(seconds, 0.0);
  { ScopedTimer inert(nullptr); }  // null-safe
}

}  // namespace
}  // namespace obs
}  // namespace qtf
