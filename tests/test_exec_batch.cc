// Differential suite for the batched columnar executor (docs/execution.md):
// the pull-based Executor must produce the same result bag as the
// row-at-a-time ReferenceExecutor on every plan of a generated corpus —
// base plans and all Plan(q, ¬target) rule edges — at batch capacities 1,
// 64 and 1024, serially and from concurrent threads sharing one
// EvalProgramCache, and under fault injection at seeds 1–3.
//
// CI runs this binary in the regular matrix and under TSan and ASan+UBSan
// (the shared-cache test is the interesting TSan subject; the arena and
// borrowed-string lanes are the ASan subjects).

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "exec/executor.h"
#include "exec/reference_executor.h"
#include "qgen/generation.h"
#include "testing/framework.h"

namespace qtf {
namespace {

constexpr int kBatchSizes[] = {1, 64, 1024};

struct CorpusPlan {
  const Query* query;
  PhysicalOpPtr plan;
  std::string label;
};

/// One framework + corpus for the whole binary: every base plan of a
/// 6-target pattern-generated suite plus the restricted plan of every
/// (target, query) edge.
class ExecBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RuleTestFramework::Options options;
    options.threads = 2;
    fw_ = RuleTestFramework::Create(std::move(options)).value().release();

    GenerationConfig config;
    config.method = GenerationMethod::kPattern;
    config.extra_ops = 1;
    config.seed = 2026;
    suite_ = new TestSuite(
        fw_->suite_generator()
            ->Generate(fw_->LogicalRuleSingletons(6), /*k=*/2, config)
            .value());

    corpus_ = new std::vector<CorpusPlan>();
    for (size_t q = 0; q < suite_->queries.size(); ++q) {
      const Query& query = suite_->queries[q].query;
      corpus_->push_back({&query,
                          fw_->optimizer()->Optimize(query).value().plan,
                          "base plan of query " + std::to_string(q)});
    }
    for (size_t t = 0; t < suite_->targets.size(); ++t) {
      OptimizerOptions restricted;
      for (RuleId id : suite_->targets[t].rules) {
        restricted.disabled_rules.insert(id);
      }
      for (int q : suite_->per_target[t]) {
        const Query& query = suite_->queries[static_cast<size_t>(q)].query;
        corpus_->push_back(
            {&query,
             fw_->optimizer()->Optimize(query, restricted).value().plan,
             "edge plan (target " + std::to_string(t) + ", query " +
                 std::to_string(q) + ")"});
      }
    }
  }

  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
    delete suite_;
    suite_ = nullptr;
    delete fw_;
    fw_ = nullptr;
  }

  static ResultSet ReferenceRun(const CorpusPlan& p) {
    ReferenceExecutor reference(&fw_->db(), p.query->registry.get());
    return reference.Execute(*p.plan).value();
  }

  /// Distinct queries of the corpus, in first-appearance order.
  static std::vector<const Query*> CorpusQueries() {
    std::vector<const Query*> queries;
    for (const CorpusPlan& p : *corpus_) {
      if (queries.empty() || queries.back() != p.query) {
        bool seen = false;
        for (const Query* q : queries) seen = seen || q == p.query;
        if (!seen) queries.push_back(p.query);
      }
    }
    return queries;
  }

  static RuleTestFramework* fw_;
  static TestSuite* suite_;
  static std::vector<CorpusPlan>* corpus_;
};

RuleTestFramework* ExecBatchTest::fw_ = nullptr;
TestSuite* ExecBatchTest::suite_ = nullptr;
std::vector<CorpusPlan>* ExecBatchTest::corpus_ = nullptr;

TEST_F(ExecBatchTest, CorpusCoversEveryRuleEdge) {
  // 6 singleton targets x k=2 edges + 12 base plans.
  ASSERT_EQ(suite_->targets.size(), 6u);
  EXPECT_EQ(corpus_->size(), suite_->queries.size() + 12u);
}

// The tentpole acceptance bar: identical result bags (up to row order) at
// every batch capacity, including capacity 1 (degenerate row-at-a-time) and
// capacities that split and exactly fit the row counts.
TEST_F(ExecBatchTest, BatchedMatchesReferenceAtAllBatchSizes) {
  for (const CorpusPlan& p : *corpus_) {
    SCOPED_TRACE(p.label);
    ResultSet expected = ReferenceRun(p);
    for (int capacity : kBatchSizes) {
      SCOPED_TRACE("batch capacity " + std::to_string(capacity));
      Executor executor(&fw_->db(), p.query->registry.get());
      executor.set_batch_capacity(capacity);
      auto got = executor.Execute(*p.plan);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->columns, expected.columns);
      EXPECT_TRUE(ResultBagEquals(*got, expected))
          << "batched result diverged from reference";
    }
  }
}

// One executor instance reused across the whole corpus (arena reset per
// Execute, cached columnar tables, one program cache) must behave exactly
// like a fresh executor per plan.
TEST_F(ExecBatchTest, ReusedExecutorMatchesFreshExecutors) {
  // Each query carries its own column registry, so an executor may be
  // reused across every plan of one query (its base plan and edge plans) —
  // run each group twice to also cover re-running the same plan after the
  // arena reset.
  for (const Query* query : CorpusQueries()) {
    Executor reused(&fw_->db(), query->registry.get());
    for (int round = 0; round < 2; ++round) {
      for (const CorpusPlan& p : *corpus_) {
        if (p.query != query) continue;
        SCOPED_TRACE(p.label + " round " + std::to_string(round));
        ResultSet expected = ReferenceRun(p);
        auto got = reused.Execute(*p.plan);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_TRUE(ResultBagEquals(*got, expected));
        EXPECT_GT(reused.last_arena_bytes(), 0);
      }
    }
    EXPECT_GT(reused.rows_produced(), 0);
  }
}

// Concurrent executors sharing one EvalProgramCache (the CorrectnessRunner
// configuration) must agree with the serial reference on every plan. This
// is the TSan subject for the compile-outside-lock cache path.
TEST_F(ExecBatchTest, ParallelSharedCacheMatchesReference) {
  ASSERT_NE(fw_->thread_pool(), nullptr);
  EvalProgramCache shared_cache;
  std::vector<std::future<bool>> oks;
  std::vector<ResultSet> expected(corpus_->size());
  for (size_t i = 0; i < corpus_->size(); ++i) {
    expected[i] = ReferenceRun((*corpus_)[i]);
  }
  for (size_t i = 0; i < corpus_->size(); ++i) {
    oks.push_back(fw_->thread_pool()->Submit([i, &shared_cache, &expected] {
      const CorpusPlan& p = (*corpus_)[i];
      Executor executor(&fw_->db(), p.query->registry.get());
      executor.set_program_cache(&shared_cache);
      auto got = executor.Execute(*p.plan);
      return got.ok() && ResultBagEquals(*got, expected[i]);
    }));
  }
  for (size_t i = 0; i < oks.size(); ++i) {
    SCOPED_TRACE((*corpus_)[i].label);
    EXPECT_TRUE(oks[i].get());
  }
  EXPECT_GT(shared_cache.size(), 0u);
}

// Fault seeds 1-3: per-batch probes must be deterministic — the same
// (seed, salt, plan) always reproduces the same outcome, on fresh AND
// reused executors — and any execution that succeeds under injection must
// still match the no-fault reference bag exactly.
TEST_F(ExecBatchTest, FaultSeedsAreDeterministicAndPreserveResults) {
  for (uint64_t seed : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    FaultInjector::Config config;
    config.seed = seed;
    config.fault_probability = 0.05;
    FaultInjector injector(config);

    int succeeded = 0;
    for (const Query* query : CorpusQueries()) {
      // One executor reused across every plan and attempt of this query:
      // the per-Execute node numbering reset must make its fault stream
      // identical to a fresh executor's.
      Executor reused(&fw_->db(), query->registry.get());
      for (size_t i = 0; i < corpus_->size(); ++i) {
        const CorpusPlan& p = (*corpus_)[i];
        if (p.query != query) continue;
        SCOPED_TRACE(p.label);
        ResultSet expected = ReferenceRun(p);
        for (uint64_t attempt = 0; attempt < 4; ++attempt) {
          uint64_t salt = HashCombine(HashCombine(seed, i), attempt);

          Executor fresh(&fw_->db(), p.query->registry.get());
          fresh.set_fault_injection(&injector, salt);
          auto first = fresh.Execute(*p.plan);

          reused.set_fault_injection(&injector, salt);
          auto again = reused.Execute(*p.plan);
          ASSERT_EQ(first.ok(), again.ok());
          if (first.ok()) {
            EXPECT_TRUE(ResultBagEquals(*first, *again));
            EXPECT_TRUE(ResultBagEquals(*first, expected))
                << "fault-free portion of an injected run diverged";
            ++succeeded;
            break;
          }
          EXPECT_EQ(first.status().code(), again.status().code());
          EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
        }
      }
    }
    // 5% per-batch probes on small plans: most executions pass within the
    // salted retry budget. Persistent failures are acceptable (callers
    // skip and count them) but must not dominate.
    EXPECT_GT(succeeded, static_cast<int>(corpus_->size()) / 2);
  }
}

// qtf.exec.* metrics surface the executor's work; the CI metrics-smoke
// step asserts qtf.exec.batches > 0 from the bench binary the same way.
TEST_F(ExecBatchTest, MetricsReportRowsBatchesAndArenaBytes) {
  obs::MetricsRegistry metrics;
  const Query* query = (*corpus_)[0].query;
  Executor executor(&fw_->db(), query->registry.get());
  executor.set_metrics(&metrics);
  for (const CorpusPlan& p : *corpus_) {
    if (p.query != query) continue;
    ASSERT_TRUE(executor.Execute(*p.plan).ok());
  }
  obs::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_GT(snapshot.CounterValue("qtf.exec.batches"), 0);
  EXPECT_GT(snapshot.CounterValue("qtf.exec.rows_produced"), 0);
  EXPECT_GT(snapshot.CounterValue("qtf.exec.arena_bytes"), 0);
  EXPECT_GT(snapshot.CounterValue("qtf.exec.eval_cache_hits") +
                snapshot.CounterValue("qtf.exec.eval_cache_misses"),
            0);
  EXPECT_EQ(snapshot.CounterValue("qtf.exec.rows_produced"),
            executor.rows_produced());
}

}  // namespace
}  // namespace qtf
