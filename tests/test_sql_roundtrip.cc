// The render→parse→bind round trip (ROADMAP item 2): for every tree the
// generator produces, Parse(GenerateSql(t)) binds to a tree whose
// TreeFingerprint equals t's — over the full rule-edge corpus, serially
// and from concurrent threads sharing one frontend. Plus the service-level
// acceptance path: an externally-written TPC-H-style query parses, binds,
// optimizes and passes a correctness run through the Sql request.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "service/service.h"
#include "sql/frontend.h"
#include "sql/render.h"
#include "testing/framework.h"

namespace qtf {
namespace {

/// The corpus every round-trip test runs over: k queries per singleton
/// logical-rule target, the same shape the paper's experiments use.
TestSuite GenerateCorpus(RuleTestFramework* fw, int n_rules, int k,
                         uint64_t seed) {
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 2;
  config.seed = seed;
  auto suite =
      fw->suite_generator()->Generate(fw->LogicalRuleSingletons(n_rules), k,
                                      config);
  QTF_CHECK(suite.ok()) << suite.status().ToString();
  return *std::move(suite);
}

TEST(SqlRoundTripTest, EveryCorpusQueryRoundTripsToTheSameFingerprint) {
  auto fw = RuleTestFramework::Create({}).value();
  const int n_rules = static_cast<int>(fw->LogicalRules().size());
  TestSuite suite = GenerateCorpus(fw.get(), n_rules, 2, 42);
  ASSERT_GT(suite.queries.size(), 0u);

  sql::SqlFrontendOptions options;
  options.interner = fw->interner();
  sql::SqlFrontend frontend(&fw->catalog(), options);

  for (size_t i = 0; i < suite.queries.size(); ++i) {
    const TestCase& tc = suite.queries[i];
    const std::string sql = GenerateSql(tc.query);
    EXPECT_EQ(sql, tc.sql);
    Result<Query> bound = frontend.Parse(sql);
    ASSERT_TRUE(bound.ok())
        << "query " << i << " failed to re-bind: " << bound.status().ToString()
        << "\nsql: " << sql;
    EXPECT_EQ(TreeFingerprint(*bound->root), TreeFingerprint(*tc.query.root))
        << "query " << i << " round-tripped to a different tree\nsql: " << sql;
  }
}

TEST(SqlRoundTripTest, CanonicalSqlIsAFixpoint) {
  // Rendering the re-bound tree must reproduce the original text exactly —
  // parse∘render is not just fingerprint-preserving but literally
  // idempotent on the canonical forms.
  auto fw = RuleTestFramework::Create({}).value();
  TestSuite suite = GenerateCorpus(fw.get(), 12, 2, 7);

  sql::SqlFrontendOptions options;
  options.interner = fw->interner();
  sql::SqlFrontend frontend(&fw->catalog(), options);
  for (const TestCase& tc : suite.queries) {
    Result<Query> bound = frontend.Parse(tc.sql);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    EXPECT_EQ(GenerateSql(*bound), tc.sql);
  }
}

TEST(SqlRoundTripTest, ParallelParsesMatchSerialOnes) {
  auto fw = RuleTestFramework::Create({}).value();
  TestSuite suite = GenerateCorpus(fw.get(), 16, 2, 99);

  sql::SqlFrontendOptions options;
  options.interner = fw->interner();
  sql::SqlFrontend frontend(&fw->catalog(), options);

  // Serial pass.
  std::vector<uint64_t> serial;
  for (const TestCase& tc : suite.queries) {
    Result<Query> bound = frontend.Parse(tc.sql);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    serial.push_back(TreeFingerprint(*bound->root));
  }

  // Parallel pass: every thread parses the whole corpus through the same
  // frontend (and shared interner); all must agree with the serial run.
  constexpr int kThreads = 4;
  std::vector<std::vector<uint64_t>> parallel(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const TestCase& tc : suite.queries) {
        Result<Query> bound = frontend.Parse(tc.sql);
        parallel[t].push_back(bound.ok() ? TreeFingerprint(*bound->root) : 0);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(parallel[t], serial);
}

TEST(SqlRoundTripTest, HandWrittenTpchQueryGoesEndToEndThroughTheService) {
  // The acceptance path: a query written by a person, not the renderer —
  // unaliased columns, mixed joins, aggregation — must parse, bind,
  // optimize and come out clean from a correctness run via the Sql
  // request.
  service::RuleTestService::Config config;
  auto service = service::RuleTestService::Create(std::move(config)).value();

  service::SqlRequest request;
  request.sql =
      "SELECT n_name, COUNT(*) AS supplier_count, "
      "SUM(s_acctbal) AS total_balance "
      "FROM supplier INNER JOIN nation ON s_nationkey = n_nationkey "
      "WHERE s_acctbal > 1000.0 AND NOT EXISTS ("
      "  SELECT 1 FROM customer WHERE c_nationkey = n_nationkey "
      "  AND c_acctbal < 0.0) "
      "GROUP BY n_name";
  request.mode = service::SqlMode::kCorrectness;

  auto response = service->Sql(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->fingerprint, 0u);
  EXPECT_GT(response->operator_count, 0);
  EXPECT_FALSE(response->canonical_sql.empty());
  EXPECT_GT(response->group_count, 0);
  EXPECT_GT(response->plans_executed, 0);
  EXPECT_TRUE(response->violations.empty());

  // The canonical rendering the service reports must itself round-trip to
  // the same fingerprint (parse-only is enough for that check).
  service::SqlRequest again;
  again.sql = response->canonical_sql;
  auto rebound = service->Sql(again);
  ASSERT_TRUE(rebound.ok()) << rebound.status().ToString();
  EXPECT_EQ(rebound->fingerprint, response->fingerprint);
  EXPECT_EQ(rebound->canonical_sql, response->canonical_sql);
}

TEST(SqlRoundTripTest, ParseOnlyModeLeavesOptimizeFieldsZero) {
  service::RuleTestService::Config config;
  auto service = service::RuleTestService::Create(std::move(config)).value();
  service::SqlRequest request;
  request.sql = "SELECT r_name FROM region";
  auto response = service->Sql(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->fingerprint, 0u);
  EXPECT_EQ(response->cost, 0.0);
  EXPECT_EQ(response->group_count, 0);
  EXPECT_TRUE(response->exercised_rules.empty());
  EXPECT_EQ(response->plans_executed, 0);

  auto bad = service->Sql(service::SqlRequest{"SELECT FROM", {}, {}});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace qtf
