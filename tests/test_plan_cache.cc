// Plan-cache keying and reuse (docs/parallelism.md): fingerprint stability
// across equivalent trees, LRU eviction, disabled-rule-set keying, and the
// optimizer consulting the cache so suite generation and compression share
// work.

#include "optimizer/plan_cache.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "testing/framework.h"

namespace qtf {
namespace {

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fw = RuleTestFramework::Create({});
    ASSERT_TRUE(fw.ok());
    fw_ = std::move(fw).value();
  }

  /// Deterministic generation: the same seed re-creates the same logical
  /// tree in a fresh registry (same structure, same column ids).
  Query MakeQuery(uint64_t seed, int extra_ops = 2) {
    GenerationConfig config;
    config.method = GenerationMethod::kPattern;
    config.extra_ops = extra_ops;
    config.seed = seed;
    GenerationOutcome outcome =
        fw_->generator()->Generate({fw_->LogicalRules()[0]}, config).value();
    EXPECT_TRUE(outcome.success);
    return outcome.query;
  }

  OptimizeResult MakeResult(double cost) {
    OptimizeResult result;
    result.cost = cost;
    return result;
  }

  std::unique_ptr<RuleTestFramework> fw_;
};

TEST_F(PlanCacheTest, FingerprintStableAcrossEquivalentTrees) {
  Query a = MakeQuery(5);
  // Regenerating the same seed through the same framework now returns the
  // interner's canonical instance — hash-consing at work.
  Query b = MakeQuery(5);
  EXPECT_EQ(a.root.get(), b.root.get());

  // A second framework (separate interner) rebuilds the tree from scratch:
  // distinct objects, equal structure, and — the cache-keying property —
  // the same fingerprint.
  auto fw2 = RuleTestFramework::Create({}).value();
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 2;
  config.seed = 5;
  Query c =
      fw2->generator()->Generate({fw2->LogicalRules()[0]}, config).value().query;
  ASSERT_NE(a.root.get(), c.root.get());
  ASSERT_TRUE(LogicalTreeEquals(*a.root, *c.root));
  EXPECT_EQ(TreeFingerprint(*a.root), TreeFingerprint(*c.root));

  Query d = MakeQuery(6);
  if (!LogicalTreeEquals(*a.root, *d.root)) {
    EXPECT_NE(TreeFingerprint(*a.root), TreeFingerprint(*d.root));
  }
}

TEST_F(PlanCacheTest, HitRequiresEquivalentTreeNotSameObject) {
  PlanCache cache;
  Query a = MakeQuery(7);
  cache.Insert(a, {}, MakeResult(123.0));
  // An equivalent tree built by a different framework (so not the same
  // canonical object) hits the same entry: keying is structural.
  auto fw2 = RuleTestFramework::Create({}).value();
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 2;
  config.seed = 7;
  Query b =
      fw2->generator()->Generate({fw2->LogicalRules()[0]}, config).value().query;
  ASSERT_NE(a.root.get(), b.root.get());
  auto hit = cache.Lookup(b, {});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cost, 123.0);
  EXPECT_EQ(cache.hits(), 1);
}

TEST_F(PlanCacheTest, DisabledRuleSetIsPartOfTheKey) {
  PlanCache cache;
  Query q = MakeQuery(8);
  cache.Insert(q, {}, MakeResult(1.0));
  cache.Insert(q, {0}, MakeResult(2.0));
  cache.Insert(q, {0, 3}, MakeResult(3.0));
  EXPECT_EQ(cache.size(), 3u);

  EXPECT_EQ(cache.Lookup(q, {})->cost, 1.0);
  EXPECT_EQ(cache.Lookup(q, {0})->cost, 2.0);
  EXPECT_EQ(cache.Lookup(q, {0, 3})->cost, 3.0);
  EXPECT_FALSE(cache.Lookup(q, {3}).has_value());
}

TEST_F(PlanCacheTest, LruEvictionKeepsRecentlyUsedEntries) {
  PlanCache cache(/*capacity=*/2);
  // Three guaranteed-distinct keys: same tree, different disabled sets.
  Query q = MakeQuery(10);
  const RuleIdSet a = {}, b = {0}, c = {1};

  cache.Insert(q, a, MakeResult(1.0));
  cache.Insert(q, b, MakeResult(2.0));
  ASSERT_TRUE(cache.Lookup(q, a).has_value());  // refresh a: b is now LRU
  cache.Insert(q, c, MakeResult(3.0));          // evicts b

  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(q, a).has_value());
  EXPECT_FALSE(cache.Lookup(q, b).has_value());
  EXPECT_TRUE(cache.Lookup(q, c).has_value());
}

TEST_F(PlanCacheTest, ReinsertIsFirstWriteWins) {
  PlanCache cache;
  Query q = MakeQuery(13);
  cache.Insert(q, {}, MakeResult(1.0));
  cache.Insert(q, {}, MakeResult(99.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup(q, {})->cost, 1.0);
}

TEST_F(PlanCacheTest, OptimizerConsultsTheCache) {
  // Generate before attaching the test cache — generation itself optimizes
  // the candidate and would pre-populate it.
  Query q = MakeQuery(14);
  PlanCache cache;
  fw_->optimizer()->set_plan_cache(&cache);

  auto first = fw_->optimizer()->Optimize(q);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);

  auto second = fw_->optimizer()->Optimize(q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(second->cost, first->cost);
  EXPECT_EQ(second->exercised_rules, first->exercised_rules);

  // A hit still counts as an invocation — Figure-14-style accounting must
  // not change when caching is on.
  int64_t before = fw_->optimizer()->invocation_count();
  ASSERT_TRUE(fw_->optimizer()->Optimize(q).ok());
  EXPECT_EQ(fw_->optimizer()->invocation_count(), before + 1);

  fw_->optimizer()->set_plan_cache(fw_->plan_cache());
}

TEST_F(PlanCacheTest, PerInvocationOptionsOverrideTheDefaultCache) {
  PlanCache override_cache;
  Query q = MakeQuery(15);
  OptimizerOptions options;
  options.plan_cache = &override_cache;
  ASSERT_TRUE(fw_->optimizer()->Optimize(q, options).ok());
  ASSERT_TRUE(fw_->optimizer()->Optimize(q, options).ok());
  EXPECT_EQ(override_cache.misses(), 1);
  EXPECT_EQ(override_cache.hits(), 1);
}

TEST_F(PlanCacheTest, CompressionAfterSuiteGenerationReusesWork) {
  // Build a suite, then run the pair-graph edge-cost construction twice
  // with fresh providers — the way experiments re-run across
  // configurations. The second construction must be answered from the
  // shared cache.
  auto targets = fw_->LogicalRuleSingletons(4);
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 2;
  config.seed = 21;
  auto suite = fw_->suite_generator()->Generate(targets, 2, config);
  ASSERT_TRUE(suite.ok());

  PlanCache cache;
  fw_->optimizer()->set_plan_cache(&cache);

  EdgeCostProvider first(fw_->optimizer(), &*suite);
  auto cold = CompressTopKIndependent(&first, 2, true);
  ASSERT_TRUE(cold.ok());
  int64_t hits_after_cold = cache.hits();

  EdgeCostProvider second(fw_->optimizer(), &*suite);
  auto warm = CompressTopKIndependent(&second, 2, true);
  ASSERT_TRUE(warm.ok());

  EXPECT_GT(cache.hits(), hits_after_cold);
  EXPECT_GT(cache.hit_rate(), 0.0);
  // Identical algorithm outputs and identical invocation accounting.
  EXPECT_EQ(warm->assignment, cold->assignment);
  EXPECT_EQ(warm->total_cost, cold->total_cost);
  EXPECT_EQ(warm->optimizer_calls, cold->optimizer_calls);

  fw_->optimizer()->set_plan_cache(fw_->plan_cache());
}

TEST_F(PlanCacheTest, ConcurrentOptimizeSharesOneEntry) {
  Query q = MakeQuery(16);
  PlanCache cache;
  fw_->optimizer()->set_plan_cache(&cache);

  ThreadPool pool(4);
  std::vector<double> costs = ParallelFor(&pool, 16, [&](int) {
    auto result = fw_->optimizer()->Optimize(q);
    QTF_CHECK(result.ok());
    return result->cost;
  });
  for (double cost : costs) EXPECT_EQ(cost, costs[0]);
  // Racing misses may compute a few times, but first-write-wins keeps one
  // entry per key.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.hits(), 0);

  fw_->optimizer()->set_plan_cache(fw_->plan_cache());
}

TEST_F(PlanCacheTest, MetricsMirrorTheAccessors) {
  obs::MetricsRegistry registry;
  PlanCache cache(/*capacity=*/2);
  cache.set_metrics(&registry);

  Query q = MakeQuery(18);
  EXPECT_FALSE(cache.Lookup(q, {}).has_value());      // miss
  cache.Insert(q, {}, MakeResult(1.0));
  EXPECT_TRUE(cache.Lookup(q, {}).has_value());       // hit
  cache.Insert(q, {0}, MakeResult(2.0));
  cache.Insert(q, {1}, MakeResult(3.0));              // evicts the LRU entry

  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("qtf.plan_cache.hits"), cache.hits());
  EXPECT_EQ(snapshot.CounterValue("qtf.plan_cache.misses"), cache.misses());
  EXPECT_EQ(snapshot.CounterValue("qtf.plan_cache.evictions"),
            cache.evictions());
  EXPECT_EQ(snapshot.GaugeValue("qtf.plan_cache.size"),
            static_cast<int64_t>(cache.size()));
  EXPECT_EQ(cache.evictions(), 1);

  // Clear() resets the per-cache accessors and the size gauge, but the
  // cumulative registry counters keep their history.
  cache.Clear();
  obs::MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.GaugeValue("qtf.plan_cache.size"), 0);
  EXPECT_EQ(after.CounterValue("qtf.plan_cache.misses"),
            snapshot.CounterValue("qtf.plan_cache.misses"));
  EXPECT_EQ(cache.misses(), 0);

  // Detaching stops reporting without touching history.
  cache.set_metrics(nullptr);
  EXPECT_FALSE(cache.Lookup(q, {}).has_value());
  EXPECT_EQ(registry.Snapshot().CounterValue("qtf.plan_cache.misses"),
            after.CounterValue("qtf.plan_cache.misses"));
}

TEST_F(PlanCacheTest, ClearResetsEntriesAndStats) {
  PlanCache cache;
  Query q = MakeQuery(17);
  cache.Insert(q, {}, MakeResult(1.0));
  ASSERT_TRUE(cache.Lookup(q, {}).has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
  EXPECT_FALSE(cache.Lookup(q, {}).has_value());
}

}  // namespace
}  // namespace qtf
