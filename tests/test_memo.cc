// Memo structure: insertion, deduplication, group creation, pattern
// binding.

#include <gtest/gtest.h>

#include "optimizer/memo.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

using P = PatternNode;

class MemoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTpchDatabase(TpchConfig{}).value();
    registry_ = std::make_shared<ColumnRegistry>();
    nation_ = GetOp::Create(db_->catalog().GetTable("nation").value(),
                            registry_.get());
    region_ = GetOp::Create(db_->catalog().GetTable("region").value(),
                            registry_.get());
    memo_ = std::make_unique<Memo>(/*rule_count=*/4);
  }

  std::unique_ptr<Database> db_;
  ColumnRegistryPtr registry_;
  std::shared_ptr<const GetOp> nation_, region_;
  std::unique_ptr<Memo> memo_;
};

TEST_F(MemoTest, InsertTreeCreatesGroupPerOperator) {
  auto select = std::make_shared<SelectOp>(
      nation_, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(1)));
  int root = memo_->InsertTree(*select);
  EXPECT_EQ(memo_->group_count(), 2);
  EXPECT_EQ(memo_->expr_count(), 2);
  EXPECT_EQ(memo_->group(root).exprs.size(), 1u);
}

TEST_F(MemoTest, ReinsertingSameTreeDeduplicates) {
  auto select = std::make_shared<SelectOp>(
      nation_, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(1)));
  int a = memo_->InsertTree(*select);
  int b = memo_->InsertTree(*select);
  EXPECT_EQ(a, b);
  EXPECT_EQ(memo_->expr_count(), 2);
}

TEST_F(MemoTest, SharedSubtreesReuseGroups) {
  auto s1 = std::make_shared<SelectOp>(
      nation_, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(1)));
  auto s2 = std::make_shared<SelectOp>(
      nation_, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(2)));
  memo_->InsertTree(*s1);
  memo_->InsertTree(*s2);
  // Get(nation) group shared: 3 groups total (get, select1, select2).
  EXPECT_EQ(memo_->group_count(), 3);
}

TEST_F(MemoTest, InsertIntoTargetGroupAddsEquivalentExpr) {
  auto join = std::make_shared<JoinOp>(
      JoinKind::kInner, nation_, region_,
      Eq(Col(nation_->columns()[2], ValueType::kInt64),
         Col(region_->columns()[0], ValueType::kInt64)));
  int root = memo_->InsertTree(*join);
  ASSERT_EQ(memo_->group(root).exprs.size(), 1u);

  // Manually add the commuted join to the same group.
  const GroupExpr& expr = *memo_->group(root).exprs[0];
  auto commuted = std::make_shared<JoinOp>(
      JoinKind::kInner, expr.op->children()[1], expr.op->children()[0],
      join->predicate());
  auto [group, added] = memo_->Insert(commuted, root);
  EXPECT_EQ(group, root);
  EXPECT_TRUE(added);
  EXPECT_EQ(memo_->group(root).exprs.size(), 2u);

  // Re-adding is a no-op.
  auto [group2, added2] = memo_->Insert(commuted, root);
  EXPECT_EQ(group2, root);
  EXPECT_FALSE(added2);
}

TEST_F(MemoTest, GroupPropsDerivedOnFirstInsert) {
  int g = memo_->InsertTree(*nation_);
  EXPECT_DOUBLE_EQ(memo_->group(g).props.cardinality, 25.0);
}

TEST_F(MemoTest, BindPatternSingleLevel) {
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       nullptr);
  int root = memo_->InsertTree(*join);
  const GroupExpr& expr = *memo_->group(root).exprs[0];
  auto bindings = memo_->BindPattern(
      expr, *P::Join(JoinKind::kInner, P::Any(), P::Any()));
  ASSERT_EQ(bindings.size(), 1u);
  EXPECT_EQ(bindings[0]->kind(), LogicalOpKind::kJoin);
  EXPECT_EQ(bindings[0]->child(0)->kind(), LogicalOpKind::kGroupRef);
}

TEST_F(MemoTest, BindPatternKindMismatchReturnsEmpty) {
  int g = memo_->InsertTree(*nation_);
  const GroupExpr& expr = *memo_->group(g).exprs[0];
  EXPECT_TRUE(
      memo_->BindPattern(expr, *P::Op(LogicalOpKind::kSelect, {P::Any()}))
          .empty());
}

TEST_F(MemoTest, BindPatternTwoLevelEnumeratesChildExprs) {
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       nullptr);
  auto select = std::make_shared<SelectOp>(
      join, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(1)));
  int root = memo_->InsertTree(*select);
  int join_group = memo_->group(root).exprs[0]->child_groups[0];

  // Add a second (commuted) join expression to the join group.
  const GroupExpr& join_expr = *memo_->group(join_group).exprs[0];
  auto commuted = std::make_shared<JoinOp>(JoinKind::kInner,
                                           join_expr.op->children()[1],
                                           join_expr.op->children()[0],
                                           nullptr);
  memo_->Insert(commuted, join_group);

  PatternNodePtr pattern = P::Op(
      LogicalOpKind::kSelect, {P::Join(JoinKind::kInner, P::Any(), P::Any())});
  auto bindings =
      memo_->BindPattern(*memo_->group(root).exprs[0], *pattern);
  // Both join expressions produce a binding.
  EXPECT_EQ(bindings.size(), 2u);
}

TEST_F(MemoTest, GroupRefInsertReturnsItsGroup) {
  int g = memo_->InsertTree(*nation_);
  LogicalOpPtr ref = memo_->MakeGroupRef(g);
  auto [group, added] = memo_->Insert(ref, -1);
  EXPECT_EQ(group, g);
  EXPECT_FALSE(added);
}

}  // namespace
}  // namespace qtf
