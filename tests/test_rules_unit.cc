// Direct unit tests of every exploration rule's Apply(): preconditions
// accept/reject the right trees, and outputs are valid trees preserving the
// output column set. (End-to-end semantic validation by execution lives in
// test_rules_correctness.cc; these tests pin down each rule's *local*
// contract.)

#include <gtest/gtest.h>

#include "logical/validate.h"
#include "rules/exploration_rules.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

class RuleUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTpchDatabase(TpchConfig{}).value();
    registry_ = std::make_shared<ColumnRegistry>();
    nation_ = GetOp::Create(db_->catalog().GetTable("nation").value(),
                            registry_.get());
    region_ = GetOp::Create(db_->catalog().GetTable("region").value(),
                            registry_.get());
    customer_ = GetOp::Create(db_->catalog().GetTable("customer").value(),
                              registry_.get());
    orders_ = GetOp::Create(db_->catalog().GetTable("orders").value(),
                            registry_.get());
  }

  /// Applies `rule` to `bound` and validates every output tree: it must
  /// pass ValidateTree and preserve the output column *set*.
  std::vector<LogicalOpPtr> Apply(const Rule& rule, const LogicalOpPtr& bound) {
    const auto& exploration = static_cast<const ExplorationRule&>(rule);
    std::vector<LogicalOpPtr> out;
    exploration.Apply(*bound, &out);
    ColumnSet expected;
    for (ColumnId id : bound->OutputColumns()) expected.insert(id);
    for (const LogicalOpPtr& output : out) {
      Status status = ValidateTree(*output, *registry_);
      EXPECT_TRUE(status.ok()) << rule.name() << ": " << status.ToString();
      ColumnSet got;
      for (ColumnId id : output->OutputColumns()) got.insert(id);
      EXPECT_EQ(got, expected) << rule.name() << " changed the output set";
    }
    return out;
  }

  ExprPtr NationRegionPred() {
    return Eq(Col(nation_->columns()[2], ValueType::kInt64),
              Col(region_->columns()[0], ValueType::kInt64));
  }
  ExprPtr CustomerNationPred() {
    return Eq(Col(customer_->columns()[2], ValueType::kInt64),
              Col(nation_->columns()[0], ValueType::kInt64));
  }
  ExprPtr OrdersCustomerPred() {
    return Eq(Col(orders_->columns()[1], ValueType::kInt64),
              Col(customer_->columns()[0], ValueType::kInt64));
  }

  std::unique_ptr<Database> db_;
  ColumnRegistryPtr registry_;
  std::shared_ptr<const GetOp> nation_, region_, customer_, orders_;
};

// ---- join rules ----

TEST_F(RuleUnitTest, JoinCommutativitySwapsChildren) {
  auto rule = MakeJoinCommutativity();
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       NationRegionPred());
  auto out = Apply(*rule, join);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->child(0).get(), region_.get());
  EXPECT_EQ(out[0]->child(1).get(), nation_.get());
}

TEST_F(RuleUnitTest, JoinAssociativityLeftRedistributesConjuncts) {
  // (customer join nation) join region, with preds customer-nation and
  // nation-region. Reassociation must put the nation-region conjunct into
  // the new inner join.
  auto rule = MakeJoinAssociativityLeft();
  auto lower = std::make_shared<JoinOp>(JoinKind::kInner, customer_, nation_,
                                        CustomerNationPred());
  auto top = std::make_shared<JoinOp>(JoinKind::kInner, lower, region_,
                                      NationRegionPred());
  auto out = Apply(*rule, top);
  ASSERT_EQ(out.size(), 1u);
  const auto& new_top = static_cast<const JoinOp&>(*out[0]);
  EXPECT_EQ(new_top.child(0).get(), customer_.get());
  const auto& inner = static_cast<const JoinOp&>(*new_top.child(1));
  EXPECT_EQ(inner.kind(), LogicalOpKind::kJoin);
  ASSERT_NE(inner.predicate(), nullptr);
  EXPECT_TRUE(ExprEquals(*inner.predicate(), *NationRegionPred()));
  ASSERT_NE(new_top.predicate(), nullptr);
  EXPECT_TRUE(ExprEquals(*new_top.predicate(), *CustomerNationPred()));
}

TEST_F(RuleUnitTest, JoinAssociativityRightMirrors) {
  auto rule = MakeJoinAssociativityRight();
  auto lower = std::make_shared<JoinOp>(JoinKind::kInner, customer_, nation_,
                                        CustomerNationPred());
  auto top = std::make_shared<JoinOp>(JoinKind::kInner, orders_, lower,
                                      OrdersCustomerPred());
  auto out = Apply(*rule, top);
  ASSERT_EQ(out.size(), 1u);
  const auto& new_top = static_cast<const JoinOp&>(*out[0]);
  const auto& inner = static_cast<const JoinOp&>(*new_top.child(0));
  EXPECT_EQ(inner.child(0).get(), orders_.get());
  EXPECT_EQ(inner.child(1).get(), customer_.get());
  EXPECT_EQ(new_top.child(1).get(), nation_.get());
}

TEST_F(RuleUnitTest, CrossJoinsReassociateWithNullPredicates) {
  auto rule = MakeJoinAssociativityLeft();
  auto lower =
      std::make_shared<JoinOp>(JoinKind::kInner, customer_, nation_, nullptr);
  auto top =
      std::make_shared<JoinOp>(JoinKind::kInner, lower, region_, nullptr);
  auto out = Apply(*rule, top);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(static_cast<const JoinOp&>(*out[0]).predicate(), nullptr);
}

// ---- outer-join rules ----

TEST_F(RuleUnitTest, LojToJoinRequiresNullRejection) {
  auto rule = MakeLojToJoin();
  auto loj = std::make_shared<JoinOp>(JoinKind::kLeftOuter, nation_, region_,
                                      NationRegionPred());
  // Null-rejecting filter on the right side: fires.
  auto good = std::make_shared<SelectOp>(
      loj,
      Eq(Col(region_->columns()[1], ValueType::kString), LitString("ASIA")));
  EXPECT_EQ(Apply(*rule, good).size(), 1u);

  // IS NULL keeps the null-extended rows: must not fire.
  auto bad = std::make_shared<SelectOp>(
      loj, IsNull(Col(region_->columns()[1], ValueType::kString)));
  EXPECT_TRUE(Apply(*rule, bad).empty());

  // Predicate only on the left side: must not fire either.
  auto left_only = std::make_shared<SelectOp>(
      loj, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(3)));
  EXPECT_TRUE(Apply(*rule, left_only).empty());
}

TEST_F(RuleUnitTest, JoinLojAssocLeftRequiresPredOnAB) {
  auto rule = MakeJoinLojAssocLeft();
  auto loj = std::make_shared<JoinOp>(JoinKind::kLeftOuter, nation_, region_,
                                      NationRegionPred());
  // Top predicate customer-nation (A u B only): fires.
  auto good = std::make_shared<JoinOp>(JoinKind::kInner, customer_, loj,
                                       CustomerNationPred());
  auto out = Apply(*rule, good);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(static_cast<const JoinOp&>(*out[0]).join_kind(),
            JoinKind::kLeftOuter);

  // Top predicate touching C (region): must not fire.
  auto bad = std::make_shared<JoinOp>(
      JoinKind::kInner, customer_, loj,
      Eq(Col(customer_->columns()[2], ValueType::kInt64),
         Col(region_->columns()[0], ValueType::kInt64)));
  EXPECT_TRUE(Apply(*rule, bad).empty());
}

TEST_F(RuleUnitTest, LojLojAssocRightNeedsNullRejectingInnerPred) {
  auto rule = MakeLojLojAssocRight();
  auto lower = std::make_shared<JoinOp>(JoinKind::kLeftOuter, customer_,
                                        nation_, CustomerNationPred());
  // Top pred nation-region: references only B u C and rejects NULLs of B.
  auto good = std::make_shared<JoinOp>(JoinKind::kLeftOuter, lower, region_,
                                       NationRegionPred());
  EXPECT_EQ(Apply(*rule, good).size(), 1u);

  // Top pred referencing A (customer): must not fire.
  auto bad = std::make_shared<JoinOp>(
      JoinKind::kLeftOuter, lower, region_,
      Eq(Col(customer_->columns()[2], ValueType::kInt64),
         Col(region_->columns()[0], ValueType::kInt64)));
  EXPECT_TRUE(Apply(*rule, bad).empty());

  // Top pred IS NULL on B: not null-rejecting -> must not fire.
  auto not_rejecting = std::make_shared<JoinOp>(
      JoinKind::kLeftOuter, lower, region_,
      IsNull(Col(nation_->columns()[0], ValueType::kInt64)));
  EXPECT_TRUE(Apply(*rule, not_rejecting).empty());
}

// ---- select rules ----

TEST_F(RuleUnitTest, SelectPushBelowJoinSplitsBySide) {
  ExprPtr left_conjunct =
      Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(3));
  ExprPtr right_conjunct =
      Eq(Col(region_->columns()[1], ValueType::kString), LitString("ASIA"));
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       NationRegionPred());
  auto select = std::make_shared<SelectOp>(
      join, And(left_conjunct, right_conjunct));

  auto left_rule = MakeSelectPushBelowJoinLeft();
  auto left_out = Apply(*left_rule, select);
  ASSERT_EQ(left_out.size(), 1u);
  // Remaining right conjunct stays above: root is still a Select.
  EXPECT_EQ(left_out[0]->kind(), LogicalOpKind::kSelect);
  EXPECT_EQ(left_out[0]->child(0)->kind(), LogicalOpKind::kJoin);
  EXPECT_EQ(left_out[0]->child(0)->child(0)->kind(), LogicalOpKind::kSelect);

  auto right_rule = MakeSelectPushBelowJoinRight();
  auto right_out = Apply(*right_rule, select);
  ASSERT_EQ(right_out.size(), 1u);
  EXPECT_EQ(right_out[0]->child(0)->child(1)->kind(),
            LogicalOpKind::kSelect);
}

TEST_F(RuleUnitTest, SelectPushBelowJoinNoPushableConjunct) {
  // Predicate spans both sides: nothing to push.
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       nullptr);
  auto select = std::make_shared<SelectOp>(join, NationRegionPred());
  EXPECT_TRUE(Apply(*MakeSelectPushBelowJoinLeft(), select).empty());
  EXPECT_TRUE(Apply(*MakeSelectPushBelowJoinRight(), select).empty());
}

TEST_F(RuleUnitTest, SelectPushBelowLojOnlyPreservedSide) {
  auto loj = std::make_shared<JoinOp>(JoinKind::kLeftOuter, nation_, region_,
                                      NationRegionPred());
  auto select = std::make_shared<SelectOp>(
      loj, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(3)));
  auto out = Apply(*MakeSelectPushBelowLojLeft(), select);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->kind(), LogicalOpKind::kJoin);
  EXPECT_EQ(out[0]->child(0)->kind(), LogicalOpKind::kSelect);
}

TEST_F(RuleUnitTest, SelectMergeAndSplitRoundTrip) {
  ExprPtr p = Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(1));
  ExprPtr q = Eq(Col(nation_->columns()[2], ValueType::kInt64), LitInt(2));
  auto inner = std::make_shared<SelectOp>(nation_, p);
  auto outer = std::make_shared<SelectOp>(inner, q);
  auto merged = Apply(*MakeSelectMerge(), outer);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0]->kind(), LogicalOpKind::kSelect);
  EXPECT_EQ(merged[0]->child(0)->kind(), LogicalOpKind::kGet);

  auto split = Apply(*MakeSelectSplit(), merged[0]);
  ASSERT_EQ(split.size(), 1u);
  EXPECT_EQ(split[0]->child(0)->kind(), LogicalOpKind::kSelect);
}

TEST_F(RuleUnitTest, SelectSplitNeedsTwoConjuncts) {
  auto select = std::make_shared<SelectOp>(
      nation_, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(1)));
  EXPECT_TRUE(Apply(*MakeSelectSplit(), select).empty());
}

TEST_F(RuleUnitTest, SelectPushBelowProjectExpandsComputedColumns) {
  ColumnId doubled = registry_->Allocate("doubled", ValueType::kInt64);
  auto project = std::make_shared<ProjectOp>(
      nation_,
      std::vector<ProjectItem>{
          {Col(nation_->columns()[0], ValueType::kInt64),
           nation_->columns()[0]},
          {Arith(ArithOp::kMul, Col(nation_->columns()[0], ValueType::kInt64),
                 LitInt(2)),
           doubled}});
  auto select = std::make_shared<SelectOp>(
      project, Cmp(CompareOp::kGt, Col(doubled, ValueType::kInt64),
                   LitInt(10)));
  auto out = Apply(*MakeSelectPushBelowProject(), select);
  ASSERT_EQ(out.size(), 1u);
  // The pushed predicate must reference the base column, not `doubled`.
  const auto& pushed_select =
      static_cast<const SelectOp&>(*out[0]->child(0));
  EXPECT_FALSE(ReferencesAny(*pushed_select.predicate(), {doubled}));
  EXPECT_TRUE(ReferencesAny(*pushed_select.predicate(),
                            {nation_->columns()[0]}));
}

TEST_F(RuleUnitTest, SelectPushBelowGroupByOnlyGroupColumns) {
  ColumnId cnt = registry_->Allocate("cnt", ValueType::kInt64);
  auto agg = std::make_shared<GroupByAggOp>(
      customer_, std::vector<ColumnId>{customer_->columns()[2]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt}});
  // Group-column conjunct + aggregate conjunct.
  auto select = std::make_shared<SelectOp>(
      agg, And(Eq(Col(customer_->columns()[2], ValueType::kInt64), LitInt(7)),
               Cmp(CompareOp::kGt, Col(cnt, ValueType::kInt64), LitInt(2))));
  auto out = Apply(*MakeSelectPushBelowGroupBy(), select);
  ASSERT_EQ(out.size(), 1u);
  // The aggregate conjunct must remain above.
  ASSERT_EQ(out[0]->kind(), LogicalOpKind::kSelect);
  EXPECT_TRUE(ReferencesAny(
      *static_cast<const SelectOp&>(*out[0]).predicate(), {cnt}));
  // Aggregate-only predicate: nothing to push.
  auto agg_only = std::make_shared<SelectOp>(
      agg, Cmp(CompareOp::kGt, Col(cnt, ValueType::kInt64), LitInt(2)));
  EXPECT_TRUE(Apply(*MakeSelectPushBelowGroupBy(), agg_only).empty());
}

TEST_F(RuleUnitTest, SelectIntoJoinAbsorbsPredicate) {
  auto join =
      std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_, nullptr);
  auto select = std::make_shared<SelectOp>(join, NationRegionPred());
  auto out = Apply(*MakeSelectIntoJoin(), select);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->kind(), LogicalOpKind::kJoin);
  EXPECT_NE(static_cast<const JoinOp&>(*out[0]).predicate(), nullptr);
}

TEST_F(RuleUnitTest, ProjectMergeFlattens) {
  ColumnId doubled = registry_->Allocate("doubled2", ValueType::kInt64);
  auto inner = std::make_shared<ProjectOp>(
      nation_,
      std::vector<ProjectItem>{
          {Arith(ArithOp::kAdd, Col(nation_->columns()[0], ValueType::kInt64),
                 LitInt(1)),
           doubled}});
  auto outer = std::make_shared<ProjectOp>(
      inner, std::vector<ProjectItem>{{Col(doubled, ValueType::kInt64),
                                       doubled}});
  auto out = Apply(*MakeProjectMerge(), outer);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->kind(), LogicalOpKind::kProject);
  EXPECT_EQ(out[0]->child(0)->kind(), LogicalOpKind::kGet);
}

// ---- aggregation rules ----

TEST_F(RuleUnitTest, GroupByPushBelowJoinLeftPreconditions) {
  auto rule = MakeGroupByPushBelowJoinLeft();
  ColumnId cnt = registry_->Allocate("cnt3", ValueType::kInt64);
  // customer join nation on c_nationkey = n_nationkey (nation key: unique).
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, customer_, nation_,
                                       CustomerNationPred());
  // Valid: group on c_nationkey (the left join column), aggregate on left.
  auto good = std::make_shared<GroupByAggOp>(
      join, std::vector<ColumnId>{customer_->columns()[2]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt}});
  auto out = Apply(*rule, good);
  ASSERT_EQ(out.size(), 1u);
  // Output: Project over Join over pushed GroupByAgg(left).
  EXPECT_EQ(out[0]->kind(), LogicalOpKind::kProject);
  EXPECT_EQ(out[0]->child(0)->kind(), LogicalOpKind::kJoin);
  EXPECT_EQ(out[0]->child(0)->child(0)->kind(), LogicalOpKind::kGroupByAgg);

  // Invalid: grouping does not include the left join column.
  ColumnId cnt2 = registry_->Allocate("cnt4", ValueType::kInt64);
  auto missing_join_col = std::make_shared<GroupByAggOp>(
      join, std::vector<ColumnId>{customer_->columns()[4]},  // c_mktsegment
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt2}});
  EXPECT_TRUE(Apply(*rule, missing_join_col).empty());

  // Invalid: aggregate argument from the right side.
  ColumnId sum_right = registry_->Allocate("sr", ValueType::kInt64);
  auto agg_from_right = std::make_shared<GroupByAggOp>(
      join, std::vector<ColumnId>{customer_->columns()[2]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kSum,
                         Col(nation_->columns()[2], ValueType::kInt64)},
           sum_right}});
  EXPECT_TRUE(Apply(*rule, agg_from_right).empty());

  // Invalid: right side not unique on its join column (join customer with
  // orders on c_custkey = o_custkey: o_custkey is not a key of orders).
  auto non_unique_join = std::make_shared<JoinOp>(
      JoinKind::kInner, customer_, orders_,
      Eq(Col(customer_->columns()[0], ValueType::kInt64),
         Col(orders_->columns()[1], ValueType::kInt64)));
  ColumnId cnt5 = registry_->Allocate("cnt5", ValueType::kInt64);
  auto not_unique = std::make_shared<GroupByAggOp>(
      non_unique_join, std::vector<ColumnId>{customer_->columns()[0]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt5}});
  EXPECT_TRUE(Apply(*rule, not_unique).empty());
}

TEST_F(RuleUnitTest, GroupByPullAboveJoinLeftPreconditions) {
  auto rule = MakeGroupByPullAboveJoinLeft();
  ColumnId cnt = registry_->Allocate("cnt6", ValueType::kInt64);
  auto agg = std::make_shared<GroupByAggOp>(
      customer_, std::vector<ColumnId>{customer_->columns()[2]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt}});
  // Valid: join the aggregate with nation on the group column.
  auto good = std::make_shared<JoinOp>(
      JoinKind::kInner, agg, nation_,
      Eq(Col(customer_->columns()[2], ValueType::kInt64),
         Col(nation_->columns()[0], ValueType::kInt64)));
  auto out = Apply(*rule, good);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->kind(), LogicalOpKind::kProject);
  EXPECT_EQ(out[0]->child(0)->kind(), LogicalOpKind::kGroupByAgg);
  EXPECT_EQ(out[0]->child(0)->child(0)->kind(), LogicalOpKind::kJoin);

  // Invalid: join predicate references the aggregate output.
  auto pred_on_agg = std::make_shared<JoinOp>(
      JoinKind::kInner, agg, nation_,
      Eq(Col(cnt, ValueType::kInt64),
         Col(nation_->columns()[0], ValueType::kInt64)));
  EXPECT_TRUE(Apply(*rule, pred_on_agg).empty());
}

TEST_F(RuleUnitTest, GroupByToDistinctOnlyWithoutAggregates) {
  auto rule = MakeGroupByToDistinct();
  auto plain = std::make_shared<GroupByAggOp>(
      nation_, std::vector<ColumnId>{nation_->columns()[2]},
      std::vector<AggregateItem>{});
  auto out = Apply(*rule, plain);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->kind(), LogicalOpKind::kDistinct);
  EXPECT_EQ(out[0]->child(0)->kind(), LogicalOpKind::kProject);

  ColumnId cnt = registry_->Allocate("cnt7", ValueType::kInt64);
  auto with_agg = std::make_shared<GroupByAggOp>(
      nation_, std::vector<ColumnId>{nation_->columns()[2]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt}});
  EXPECT_TRUE(Apply(*rule, with_agg).empty());
}

TEST_F(RuleUnitTest, GroupByToDistinctSkipsProjectionOnFullRow) {
  auto rule = MakeGroupByToDistinct();
  auto full = std::make_shared<GroupByAggOp>(
      nation_, nation_->columns(), std::vector<AggregateItem>{});
  auto out = Apply(*rule, full);
  ASSERT_EQ(out.size(), 1u);
  // No identity projection in between (the anti-ping-pong special case).
  EXPECT_EQ(out[0]->child(0)->kind(), LogicalOpKind::kGet);
}

TEST_F(RuleUnitTest, DistinctToGroupByUsesAllColumns) {
  auto rule = MakeDistinctToGroupBy();
  auto distinct = std::make_shared<DistinctOp>(nation_);
  auto out = Apply(*rule, distinct);
  ASSERT_EQ(out.size(), 1u);
  const auto& agg = static_cast<const GroupByAggOp&>(*out[0]);
  EXPECT_EQ(agg.group_cols(), nation_->columns());
  EXPECT_TRUE(agg.aggregates().empty());
}

TEST_F(RuleUnitTest, GroupByOnKeyEliminationPreconditions) {
  auto rule = MakeGroupByOnKeyElimination();
  ColumnId sum_col = registry_->Allocate("s1", ValueType::kInt64);
  // Grouping on the nation key: each group is one row.
  auto good = std::make_shared<GroupByAggOp>(
      nation_, std::vector<ColumnId>{nation_->columns()[0]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kSum,
                         Col(nation_->columns()[2], ValueType::kInt64)},
           sum_col}});
  auto out = Apply(*rule, good);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->kind(), LogicalOpKind::kProject);

  // Grouping on a non-key: must not fire.
  ColumnId sum2 = registry_->Allocate("s2", ValueType::kInt64);
  auto non_key = std::make_shared<GroupByAggOp>(
      nation_, std::vector<ColumnId>{nation_->columns()[2]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kSum,
                         Col(nation_->columns()[0], ValueType::kInt64)},
           sum2}});
  EXPECT_TRUE(Apply(*rule, non_key).empty());

  // COUNT(expr) is inexpressible per-row: must not fire.
  ColumnId c1 = registry_->Allocate("c1x", ValueType::kInt64);
  auto count_expr = std::make_shared<GroupByAggOp>(
      nation_, std::vector<ColumnId>{nation_->columns()[0]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCount,
                         Col(nation_->columns()[2], ValueType::kInt64)},
           c1}});
  EXPECT_TRUE(Apply(*rule, count_expr).empty());

  // String MIN blocks the arithmetic identity trick: must not fire.
  ColumnId m1 = registry_->Allocate("m1", ValueType::kString);
  auto string_min = std::make_shared<GroupByAggOp>(
      nation_, std::vector<ColumnId>{nation_->columns()[0]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kMin,
                         Col(nation_->columns()[1], ValueType::kString)},
           m1}});
  EXPECT_TRUE(Apply(*rule, string_min).empty());

  // Scalar aggregate (no groups) must keep its one-row-on-empty semantics.
  ColumnId c2 = registry_->Allocate("c2x", ValueType::kInt64);
  auto scalar = std::make_shared<GroupByAggOp>(
      nation_, std::vector<ColumnId>{},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, c2}});
  EXPECT_TRUE(Apply(*rule, scalar).empty());
}

TEST_F(RuleUnitTest, DistinctEliminationRequiresKey) {
  auto rule = MakeDistinctElimination();
  // nation has a key: fires (as an identity projection).
  auto keyed = std::make_shared<DistinctOp>(nation_);
  auto out = Apply(*rule, keyed);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->kind(), LogicalOpKind::kProject);

  // Projection away from the key: must not fire.
  auto no_key = std::make_shared<ProjectOp>(
      nation_, std::vector<ProjectItem>{
                   {Col(nation_->columns()[2], ValueType::kInt64),
                    nation_->columns()[2]}});
  auto unkeyed = std::make_shared<DistinctOp>(no_key);
  EXPECT_TRUE(Apply(*rule, unkeyed).empty());
}

// ---- semi/anti-join rules ----

TEST_F(RuleUnitTest, SemiJoinToJoinDistinctRequiresRightKey) {
  auto rule = MakeSemiJoinToJoinDistinct();
  // nation semijoin region on n_regionkey = r_regionkey (region unique).
  auto good = std::make_shared<JoinOp>(JoinKind::kLeftSemi, nation_, region_,
                                       NationRegionPred());
  auto out = Apply(*rule, good);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->kind(), LogicalOpKind::kProject);
  EXPECT_EQ(static_cast<const JoinOp&>(*out[0]->child(0)).join_kind(),
            JoinKind::kInner);

  // customer semijoin orders on c_custkey = o_custkey: orders not unique.
  auto bad = std::make_shared<JoinOp>(
      JoinKind::kLeftSemi, customer_, orders_,
      Eq(Col(customer_->columns()[0], ValueType::kInt64),
         Col(orders_->columns()[1], ValueType::kInt64)));
  EXPECT_TRUE(Apply(*rule, bad).empty());
}

TEST_F(RuleUnitTest, JoinToSemiJoinRequiresLeftOnlyProjection) {
  auto rule = MakeJoinToSemiJoin();
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_,
                                       NationRegionPred());
  // Pass-through projection of left columns only: fires.
  auto left_only = std::make_shared<ProjectOp>(
      join, std::vector<ProjectItem>{
                {Col(nation_->columns()[0], ValueType::kInt64),
                 nation_->columns()[0]},
                {Col(nation_->columns()[1], ValueType::kString),
                 nation_->columns()[1]}});
  auto out = Apply(*rule, left_only);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(static_cast<const JoinOp&>(*out[0]->child(0)).join_kind(),
            JoinKind::kLeftSemi);

  // Projection touching a right column: must not fire.
  auto with_right = std::make_shared<ProjectOp>(
      join, std::vector<ProjectItem>{
                {Col(region_->columns()[1], ValueType::kString),
                 region_->columns()[1]}});
  EXPECT_TRUE(Apply(*rule, with_right).empty());
}

TEST_F(RuleUnitTest, AntiToLojNullFilterNeedsNonNullableWitness) {
  auto rule = MakeAntiToLojNullFilter();
  auto good = std::make_shared<JoinOp>(JoinKind::kLeftAnti, nation_, region_,
                                       NationRegionPred());
  auto out = Apply(*rule, good);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->kind(), LogicalOpKind::kProject);
  EXPECT_EQ(out[0]->child(0)->kind(), LogicalOpKind::kSelect);
  EXPECT_EQ(static_cast<const JoinOp&>(*out[0]->child(0)->child(0))
                .join_kind(),
            JoinKind::kLeftOuter);

  // Right side with only nullable columns: must not fire. Build one by
  // projecting customer to its nullable c_acctbal.
  auto nullable_only = std::make_shared<ProjectOp>(
      customer_, std::vector<ProjectItem>{
                     {Col(customer_->columns()[3], ValueType::kDouble),
                      customer_->columns()[3]}});
  auto bad = std::make_shared<JoinOp>(
      JoinKind::kLeftAnti, nation_, nullable_only,
      Cmp(CompareOp::kLt, Col(nation_->columns()[0], ValueType::kInt64),
          Col(customer_->columns()[3], ValueType::kDouble)));
  EXPECT_TRUE(Apply(*rule, bad).empty());
}

TEST_F(RuleUnitTest, SemiJoinCommuteSelectAlwaysFires) {
  auto semi = std::make_shared<JoinOp>(JoinKind::kLeftSemi, nation_, region_,
                                       NationRegionPred());
  auto select = std::make_shared<SelectOp>(
      semi, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(5)));
  auto out = Apply(*MakeSemiJoinCommuteSelect(), select);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->kind(), LogicalOpKind::kJoin);
  EXPECT_EQ(out[0]->child(0)->kind(), LogicalOpKind::kSelect);
}

// ---- union rules ----

TEST_F(RuleUnitTest, UnionCommutativityKeepsOutputIds) {
  auto r2 = GetOp::Create(db_->catalog().GetTable("region").value(),
                          registry_.get());
  std::vector<ColumnId> out_ids;
  for (ColumnId id : region_->columns()) {
    out_ids.push_back(registry_->Allocate("u", registry_->TypeOf(id)));
  }
  auto u = std::make_shared<UnionAllOp>(region_, r2, out_ids);
  auto out = Apply(*MakeUnionAllCommutativity(), u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->OutputColumns(), u->OutputColumns());
  EXPECT_EQ(out[0]->child(0).get(), r2.get());
}

TEST_F(RuleUnitTest, UnionAssociativityReusesInnerIds) {
  auto r2 = GetOp::Create(db_->catalog().GetTable("region").value(),
                          registry_.get());
  auto r3 = GetOp::Create(db_->catalog().GetTable("region").value(),
                          registry_.get());
  std::vector<ColumnId> inner_ids, outer_ids;
  for (ColumnId id : region_->columns()) {
    inner_ids.push_back(registry_->Allocate("i", registry_->TypeOf(id)));
  }
  for (ColumnId id : region_->columns()) {
    outer_ids.push_back(registry_->Allocate("o", registry_->TypeOf(id)));
  }
  auto inner = std::make_shared<UnionAllOp>(region_, r2, inner_ids);
  auto outer = std::make_shared<UnionAllOp>(inner, r3, outer_ids);
  auto out = Apply(*MakeUnionAllAssociativity(), outer);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->child(0).get(), region_.get());
  EXPECT_EQ(out[0]->child(1)->kind(), LogicalOpKind::kUnionAll);
}

TEST_F(RuleUnitTest, ProjectPushBelowUnionAllRewritesBothSides) {
  auto r2 = GetOp::Create(db_->catalog().GetTable("region").value(),
                          registry_.get());
  std::vector<ColumnId> out_ids;
  for (ColumnId id : region_->columns()) {
    out_ids.push_back(registry_->Allocate("u2", registry_->TypeOf(id)));
  }
  auto u = std::make_shared<UnionAllOp>(region_, r2, out_ids);
  ColumnId tripled = registry_->Allocate("t", ValueType::kInt64);
  auto project = std::make_shared<ProjectOp>(
      u, std::vector<ProjectItem>{
             {Col(out_ids[0], ValueType::kInt64), out_ids[0]},
             {Arith(ArithOp::kMul, Col(out_ids[0], ValueType::kInt64),
                    LitInt(3)),
              tripled}});
  auto out = Apply(*MakeProjectPushBelowUnionAll(), project);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->kind(), LogicalOpKind::kUnionAll);
  EXPECT_EQ(out[0]->child(0)->kind(), LogicalOpKind::kProject);
  EXPECT_EQ(out[0]->child(1)->kind(), LogicalOpKind::kProject);
}

TEST_F(RuleUnitTest, SelectPushBelowUnionAllSubstitutesIds) {
  auto r2 = GetOp::Create(db_->catalog().GetTable("region").value(),
                          registry_.get());
  std::vector<ColumnId> out_ids;
  for (ColumnId id : region_->columns()) {
    out_ids.push_back(registry_->Allocate("u3", registry_->TypeOf(id)));
  }
  auto u = std::make_shared<UnionAllOp>(region_, r2, out_ids);
  auto select = std::make_shared<SelectOp>(
      u, Eq(Col(out_ids[1], ValueType::kString), LitString("ASIA")));
  auto out = Apply(*MakeSelectPushBelowUnionAll(), select);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0]->kind(), LogicalOpKind::kUnionAll);
  const auto& left_select = static_cast<const SelectOp&>(*out[0]->child(0));
  EXPECT_TRUE(ReferencesAny(*left_select.predicate(),
                            {region_->columns()[1]}));
  EXPECT_FALSE(ReferencesAny(*left_select.predicate(), {out_ids[1]}));
}

}  // namespace
}  // namespace qtf
