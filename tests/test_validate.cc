// Tree validation: the invariants every optimizer input and rule output
// must satisfy.

#include <gtest/gtest.h>

#include "logical/validate.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTpchDatabase(TpchConfig{}).value();
    registry_ = std::make_shared<ColumnRegistry>();
    region_ = GetOp::Create(db_->catalog().GetTable("region").value(),
                            registry_.get());
    nation_ = GetOp::Create(db_->catalog().GetTable("nation").value(),
                            registry_.get());
  }

  std::unique_ptr<Database> db_;
  ColumnRegistryPtr registry_;
  std::shared_ptr<const GetOp> region_, nation_;
};

TEST_F(ValidateTest, ValidSelect) {
  auto select = std::make_shared<SelectOp>(
      region_, Eq(Col(region_->columns()[0], ValueType::kInt64), LitInt(1)));
  EXPECT_TRUE(ValidateTree(*select, *registry_).ok());
}

TEST_F(ValidateTest, SelectReferencingForeignColumnFails) {
  // Predicate uses a nation column over a region input.
  auto select = std::make_shared<SelectOp>(
      region_, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(1)));
  EXPECT_FALSE(ValidateTree(*select, *registry_).ok());
}

TEST_F(ValidateTest, NonBooleanPredicateFails) {
  auto select = std::make_shared<SelectOp>(
      region_, Arith(ArithOp::kAdd,
                     Col(region_->columns()[0], ValueType::kInt64),
                     LitInt(1)));
  EXPECT_FALSE(ValidateTree(*select, *registry_).ok());
}

TEST_F(ValidateTest, ProjectPassThroughMustKeepId) {
  ColumnId key = region_->columns()[0];
  ColumnId wrong = registry_->Allocate("wrong", ValueType::kInt64);
  auto bad = std::make_shared<ProjectOp>(
      region_,
      std::vector<ProjectItem>{{Col(key, ValueType::kInt64), wrong}});
  EXPECT_FALSE(ValidateTree(*bad, *registry_).ok());
  auto good = std::make_shared<ProjectOp>(
      region_, std::vector<ProjectItem>{{Col(key, ValueType::kInt64), key}});
  EXPECT_TRUE(ValidateTree(*good, *registry_).ok());
}

TEST_F(ValidateTest, ComputedProjectItemMustUseFreshId) {
  ColumnId key = region_->columns()[0];
  auto bad = std::make_shared<ProjectOp>(
      region_,
      std::vector<ProjectItem>{
          {Arith(ArithOp::kAdd, Col(key, ValueType::kInt64), LitInt(1)),
           key}});  // reuses the input id
  EXPECT_FALSE(ValidateTree(*bad, *registry_).ok());
}

TEST_F(ValidateTest, GroupingColumnMustComeFromInput) {
  ColumnId foreign = nation_->columns()[0];
  auto bad = std::make_shared<GroupByAggOp>(
      region_, std::vector<ColumnId>{foreign}, std::vector<AggregateItem>{});
  EXPECT_FALSE(ValidateTree(*bad, *registry_).ok());
}

TEST_F(ValidateTest, AggregateWithoutArgMustBeCountStar) {
  ColumnId out = registry_->Allocate("bad_sum", ValueType::kInt64);
  auto bad = std::make_shared<GroupByAggOp>(
      region_, std::vector<ColumnId>{region_->columns()[0]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kSum, nullptr}, out}});
  EXPECT_FALSE(ValidateTree(*bad, *registry_).ok());
}

TEST_F(ValidateTest, UnionAllArityMismatchFails) {
  std::vector<ColumnId> out_ids;
  for (ColumnId id : region_->columns()) {
    out_ids.push_back(registry_->Allocate("u", registry_->TypeOf(id)));
  }
  auto bad = std::make_shared<UnionAllOp>(region_, nation_, out_ids);
  EXPECT_FALSE(ValidateTree(*bad, *registry_).ok());
}

TEST_F(ValidateTest, UnionAllTypeMismatchFails) {
  // region: (int, string); build a 2-column int,int right side.
  auto ints = std::make_shared<ProjectOp>(
      nation_,
      std::vector<ProjectItem>{
          {Col(nation_->columns()[0], ValueType::kInt64),
           nation_->columns()[0]},
          {Col(nation_->columns()[2], ValueType::kInt64),
           nation_->columns()[2]}});
  std::vector<ColumnId> out_ids = {
      registry_->Allocate("u0", ValueType::kInt64),
      registry_->Allocate("u1", ValueType::kString)};
  auto bad = std::make_shared<UnionAllOp>(region_, ints, out_ids);
  EXPECT_FALSE(ValidateTree(*bad, *registry_).ok());
}

TEST_F(ValidateTest, ValidJoinAndDeepTree) {
  auto join = std::make_shared<JoinOp>(
      JoinKind::kInner, nation_, region_,
      Eq(Col(nation_->columns()[2], ValueType::kInt64),
         Col(region_->columns()[0], ValueType::kInt64)));
  auto select = std::make_shared<SelectOp>(
      join, Eq(Col(region_->columns()[1], ValueType::kString),
               LitString("ASIA")));
  auto distinct = std::make_shared<DistinctOp>(select);
  EXPECT_TRUE(ValidateTree(*distinct, *registry_).ok());
}

TEST_F(ValidateTest, ErrorsSurfaceFromDeepInTree) {
  auto bad_select = std::make_shared<SelectOp>(
      region_, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(1)));
  auto distinct = std::make_shared<DistinctOp>(bad_select);
  EXPECT_FALSE(ValidateTree(*distinct, *registry_).ok());
}

}  // namespace
}  // namespace qtf
