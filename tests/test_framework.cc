// The RuleTestFramework facade plus an end-to-end integration test of the
// full pipeline: generate -> compress -> execute -> report.

#include <gtest/gtest.h>

#include "compress/matching.h"
#include "testing/framework.h"

namespace qtf {
namespace {

TEST(FrameworkTest, CreateWiresEverything) {
  auto fw = RuleTestFramework::Create({}).value();
  EXPECT_EQ(fw->catalog().table_count(), 8u);
  EXPECT_EQ(fw->LogicalRules().size(), 30u);
  EXPECT_NE(fw->optimizer(), nullptr);
  EXPECT_NE(fw->generator(), nullptr);
  EXPECT_NE(fw->suite_generator(), nullptr);
  EXPECT_NE(fw->runner(), nullptr);
}

TEST(FrameworkTest, LogicalRuleIdsAreTheLowIds) {
  auto fw = RuleTestFramework::Create({}).value();
  std::vector<RuleId> logical = fw->LogicalRules();
  for (size_t i = 0; i < logical.size(); ++i) {
    EXPECT_EQ(logical[i], static_cast<RuleId>(i));
    EXPECT_EQ(fw->rules().rule(logical[i]).type(), RuleType::kExploration);
  }
  EXPECT_EQ(static_cast<size_t>(kDefaultLogicalRuleCount), logical.size());
}

TEST(FrameworkTest, PairAndSingletonTargetHelpers) {
  auto fw = RuleTestFramework::Create({}).value();
  auto singles = fw->LogicalRuleSingletons(7);
  EXPECT_EQ(singles.size(), 7u);
  for (const RuleTarget& t : singles) EXPECT_EQ(t.rules.size(), 1u);

  auto pairs = fw->LogicalRulePairs(7);
  EXPECT_EQ(pairs.size(), 21u);  // 7C2
  std::set<std::pair<RuleId, RuleId>> seen;
  for (const RuleTarget& t : pairs) {
    ASSERT_EQ(t.rules.size(), 2u);
    EXPECT_LT(t.rules[0], t.rules[1]);
    EXPECT_TRUE(seen.insert({t.rules[0], t.rules[1]}).second);
  }
}

TEST(FrameworkTest, CustomRegistryIsUsed) {
  auto registry = MakeDefaultRuleRegistry();
  int n = registry->size();
  RuleTestFramework::Options options;
  options.rules = std::move(registry);
  auto fw = RuleTestFramework::Create(std::move(options)).value();
  EXPECT_EQ(fw->rules().size(), n);
}

TEST(FrameworkTest, CreateWithOptions) {
  RuleTestFramework::Options options;
  options.threads = 2;
  options.plan_cache_capacity = 64;
  auto fw = RuleTestFramework::Create(std::move(options)).value();
  ASSERT_NE(fw->thread_pool(), nullptr);
  EXPECT_EQ(fw->thread_pool()->num_threads(), 2);
  EXPECT_EQ(fw->plan_cache()->capacity(), 64u);
  EXPECT_NE(fw->metrics(), nullptr);
  // The optimizer reports into the framework's registry.
  EXPECT_EQ(fw->optimizer()->metrics(), fw->metrics());
}

TEST(FrameworkTest, LegacyCreateDelegatesToOptions) {
  auto fw = RuleTestFramework::Create({}).value();
  // Defaults: serial (no pool), default cache capacity, metrics wired.
  EXPECT_EQ(fw->thread_pool(), nullptr);
  EXPECT_EQ(fw->plan_cache()->capacity(), 4096u);
  EXPECT_EQ(fw->optimizer()->metrics(), fw->metrics());
}

TEST(FrameworkTest, OptimizerInvocationsLandInTheRegistry) {
  auto fw = RuleTestFramework::Create({}).value();
  GenerationConfig config;
  config.seed = 77;
  GenerationOutcome outcome = fw->generator()->Generate({0}, config).value();
  ASSERT_TRUE(outcome.success);
  obs::MetricsSnapshot snapshot = fw->metrics()->Snapshot();
  EXPECT_EQ(snapshot.CounterValue("qtf.optimizer.invocations"),
            fw->optimizer()->invocation_count());
  EXPECT_GT(snapshot.CounterValue("qtf.optimizer.invocations"), 0);
  EXPECT_GT(snapshot.CounterValue("qtf.qgen.trials.pattern"), 0);
  EXPECT_EQ(snapshot.CounterValue("qtf.qgen.successes"), 1);
  // The plan cache mirrored its accounting too.
  EXPECT_EQ(snapshot.CounterValue("qtf.plan_cache.hits"),
            fw->plan_cache()->hits());
  EXPECT_EQ(snapshot.CounterValue("qtf.plan_cache.misses"),
            fw->plan_cache()->misses());
  EXPECT_EQ(snapshot.GaugeValue("qtf.plan_cache.size"),
            static_cast<int64_t>(fw->plan_cache()->size()));
}

TEST(FrameworkTest, PlanCacheDetachGuardRestores) {
  auto fw = RuleTestFramework::Create({}).value();
  PlanCache* shared = fw->plan_cache();
  ASSERT_EQ(fw->optimizer()->plan_cache(), shared);
  {
    PlanCacheDetachGuard guard(fw->optimizer());
    EXPECT_EQ(fw->optimizer()->plan_cache(), nullptr);
    EXPECT_EQ(guard.detached(), shared);
    // Nesting: the inner guard detaches "nothing" and restores nothing.
    {
      PlanCacheDetachGuard inner(fw->optimizer());
      EXPECT_EQ(inner.detached(), nullptr);
    }
    EXPECT_EQ(fw->optimizer()->plan_cache(), nullptr);
  }
  EXPECT_EQ(fw->optimizer()->plan_cache(), shared);
}

TEST(FrameworkTest, TraceSinkReceivesSpans) {
  obs::CollectingTraceSink sink;
  RuleTestFramework::Options options;
  options.trace_sink = &sink;
  auto fw = RuleTestFramework::Create(std::move(options)).value();
  GenerationConfig config;
  config.seed = 78;
  GenerationOutcome outcome = fw->generator()->Generate({0}, config).value();
  ASSERT_TRUE(outcome.success);
  bool saw_begin = false, saw_end = false;
  for (const obs::TraceEvent& event : sink.Events()) {
    if (event.phase != "qgen.generate") continue;
    saw_begin = saw_begin || event.kind == obs::TraceEvent::Kind::kBegin;
    saw_end = saw_end || event.kind == obs::TraceEvent::Kind::kEnd;
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
}

TEST(FrameworkTest, TargetToStringNamesRules) {
  auto fw = RuleTestFramework::Create({}).value();
  RuleTarget single{{0}};
  EXPECT_EQ(single.ToString(fw->rules()), "JoinCommutativity");
  RuleTarget pair{{0, 6}};
  EXPECT_EQ(pair.ToString(fw->rules()), "JoinCommutativity+SelectMerge");
}

TEST(FrameworkIntegrationTest, FullPipelineGenerateCompressExecute) {
  auto fw = RuleTestFramework::Create({}).value();
  const int k = 2;
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 2;
  config.seed = 321;
  auto suite =
      fw->suite_generator()->Generate(fw->LogicalRuleSingletons(6), k, config)
          .value();

  EdgeCostProvider provider(fw->optimizer(), &suite);
  auto baseline = CompressBaseline(&provider).value();
  auto smc = CompressSetMultiCover(&provider, k).value();
  auto topk = CompressTopKIndependent(&provider, k, true).value();

  // The two compressed suites beat or match BASELINE.
  EXPECT_LE(smc.total_cost, baseline.total_cost + 1e-9);
  EXPECT_LE(topk.total_cost, baseline.total_cost + 1e-9);

  // Executing each mapping over the correct rule set finds no violations.
  for (const auto& assignment :
       {suite.per_target, smc.assignment, topk.assignment}) {
    auto report = fw->runner()->Run(suite, assignment).value();
    EXPECT_TRUE(report.ok());
    EXPECT_GT(report.plans_executed, 0);
  }

  // The Section-7 matching variant, when feasible, is also violation-free.
  auto matching = CompressNoSharingMatching(&provider, k);
  if (matching.ok()) {
    auto report = fw->runner()->Run(suite, matching->assignment).value();
    EXPECT_TRUE(report.ok());
  }
}

}  // namespace
}  // namespace qtf
