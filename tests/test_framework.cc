// The RuleTestFramework facade plus an end-to-end integration test of the
// full pipeline: generate -> compress -> execute -> report.

#include <gtest/gtest.h>

#include "compress/matching.h"
#include "testing/framework.h"

namespace qtf {
namespace {

TEST(FrameworkTest, CreateWiresEverything) {
  auto fw = RuleTestFramework::Create().value();
  EXPECT_EQ(fw->catalog().table_count(), 8u);
  EXPECT_EQ(fw->LogicalRules().size(), 30u);
  EXPECT_NE(fw->optimizer(), nullptr);
  EXPECT_NE(fw->generator(), nullptr);
  EXPECT_NE(fw->suite_generator(), nullptr);
  EXPECT_NE(fw->runner(), nullptr);
}

TEST(FrameworkTest, LogicalRuleIdsAreTheLowIds) {
  auto fw = RuleTestFramework::Create().value();
  std::vector<RuleId> logical = fw->LogicalRules();
  for (size_t i = 0; i < logical.size(); ++i) {
    EXPECT_EQ(logical[i], static_cast<RuleId>(i));
    EXPECT_EQ(fw->rules().rule(logical[i]).type(), RuleType::kExploration);
  }
  EXPECT_EQ(static_cast<size_t>(kDefaultLogicalRuleCount), logical.size());
}

TEST(FrameworkTest, PairAndSingletonTargetHelpers) {
  auto fw = RuleTestFramework::Create().value();
  auto singles = fw->LogicalRuleSingletons(7);
  EXPECT_EQ(singles.size(), 7u);
  for (const RuleTarget& t : singles) EXPECT_EQ(t.rules.size(), 1u);

  auto pairs = fw->LogicalRulePairs(7);
  EXPECT_EQ(pairs.size(), 21u);  // 7C2
  std::set<std::pair<RuleId, RuleId>> seen;
  for (const RuleTarget& t : pairs) {
    ASSERT_EQ(t.rules.size(), 2u);
    EXPECT_LT(t.rules[0], t.rules[1]);
    EXPECT_TRUE(seen.insert({t.rules[0], t.rules[1]}).second);
  }
}

TEST(FrameworkTest, CustomRegistryIsUsed) {
  auto registry = MakeDefaultRuleRegistry();
  int n = registry->size();
  auto fw =
      RuleTestFramework::Create(TpchConfig{}, std::move(registry)).value();
  EXPECT_EQ(fw->rules().size(), n);
}

TEST(FrameworkTest, TargetToStringNamesRules) {
  auto fw = RuleTestFramework::Create().value();
  RuleTarget single{{0}};
  EXPECT_EQ(single.ToString(fw->rules()), "JoinCommutativity");
  RuleTarget pair{{0, 6}};
  EXPECT_EQ(pair.ToString(fw->rules()), "JoinCommutativity+SelectMerge");
}

TEST(FrameworkIntegrationTest, FullPipelineGenerateCompressExecute) {
  auto fw = RuleTestFramework::Create().value();
  const int k = 2;
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 2;
  config.seed = 321;
  auto suite =
      fw->suite_generator()->Generate(fw->LogicalRuleSingletons(6), k, config)
          .value();

  EdgeCostProvider provider(fw->optimizer(), &suite);
  auto baseline = CompressBaseline(&provider).value();
  auto smc = CompressSetMultiCover(&provider, k).value();
  auto topk = CompressTopKIndependent(&provider, k, true).value();

  // The two compressed suites beat or match BASELINE.
  EXPECT_LE(smc.total_cost, baseline.total_cost + 1e-9);
  EXPECT_LE(topk.total_cost, baseline.total_cost + 1e-9);

  // Executing each mapping over the correct rule set finds no violations.
  for (const auto& assignment :
       {suite.per_target, smc.assignment, topk.assignment}) {
    auto report = fw->runner()->Run(suite, assignment).value();
    EXPECT_TRUE(report.ok());
    EXPECT_GT(report.plans_executed, 0);
  }

  // The Section-7 matching variant, when feasible, is also violation-free.
  auto matching = CompressNoSharingMatching(&provider, k);
  if (matching.ok()) {
    auto report = fw->runner()->Run(suite, matching->assignment).value();
    EXPECT_TRUE(report.ok());
  }
}

}  // namespace
}  // namespace qtf
