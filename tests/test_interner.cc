// NodeInterner: hash-consing canonicalization, pointer-equality fast
// paths, fingerprint caching, GroupRef scoping, epoch semantics (Clear),
// golden fingerprint stability, and end-to-end equivalence of
// correctness-runner results over interned vs freshly-cloned trees under
// fault injection.

#include "logical/interner.h"

#include <gtest/gtest.h>

#include "optimizer/memo.h"
#include "storage/tpch.h"
#include "testing/framework.h"

namespace qtf {
namespace {

class InternerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTpchDatabase(TpchConfig{}).value();
    registry_ = std::make_shared<ColumnRegistry>();
    nation_ = GetOp::Create(db_->catalog().GetTable("nation").value(),
                            registry_.get());
    region_ = GetOp::Create(db_->catalog().GetTable("region").value(),
                            registry_.get());
  }

  /// Select(Get(nation), n_nationkey = `rhs`) built from the shared leaf.
  LogicalOpPtr SelectOnNation(int64_t rhs) {
    return std::make_shared<SelectOp>(
        nation_,
        Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(rhs)));
  }

  std::unique_ptr<Database> db_;
  ColumnRegistryPtr registry_;
  std::shared_ptr<const GetOp> nation_, region_;
  NodeInterner interner_;
};

/// Structurally-identical fresh clone: every node reallocated, nothing
/// shared with (or tagged by) any interner.
LogicalOpPtr DeepClone(const LogicalOpPtr& node) {
  std::vector<LogicalOpPtr> children;
  children.reserve(node->children().size());
  for (const LogicalOpPtr& child : node->children()) {
    children.push_back(DeepClone(child));
  }
  return node->WithNewChildren(std::move(children));
}

TEST_F(InternerTest, ReInterningIdenticalStructureYieldsPointerEqualNodes) {
  LogicalOpPtr a = interner_.Intern(SelectOnNation(1));
  LogicalOpPtr b = interner_.Intern(SelectOnNation(1));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_TRUE(interner_.IsCanonical(a));

  // The second call resolved both nodes (leaf + select) without inserting.
  EXPECT_EQ(interner_.misses(), 2u);
  EXPECT_GE(interner_.hits(), 2u);

  // A structurally different tree gets its own canonical instance.
  LogicalOpPtr c = interner_.Intern(SelectOnNation(2));
  EXPECT_NE(a.get(), c.get());
}

TEST_F(InternerTest, InterningSharesSubtreesAcrossDifferentParents) {
  LogicalOpPtr select = interner_.Intern(SelectOnNation(1));
  auto join = std::make_shared<JoinOp>(
      JoinKind::kInner, DeepClone(nation_), region_,
      Eq(Col(nation_->columns()[2], ValueType::kInt64),
         Col(region_->columns()[0], ValueType::kInt64)));
  LogicalOpPtr canonical_join = interner_.Intern(join);
  // The join's freshly-cloned nation leaf collapsed to the same canonical
  // leaf the select uses.
  EXPECT_EQ(canonical_join->child(0).get(), select->child(0).get());
}

TEST_F(InternerTest, IdempotentOnAlreadyCanonicalTrees) {
  LogicalOpPtr a = interner_.Intern(SelectOnNation(1));
  uint64_t misses_before = interner_.misses();
  // Re-interning the canonical tree itself is a pure fast-path hit.
  EXPECT_EQ(interner_.Intern(a).get(), a.get());
  EXPECT_EQ(interner_.misses(), misses_before);
}

TEST_F(InternerTest, EqualFastPathAndFallback) {
  LogicalOpPtr a = interner_.Intern(SelectOnNation(1));
  LogicalOpPtr b = interner_.Intern(SelectOnNation(2));
  EXPECT_TRUE(interner_.Equal(a, a));
  // Two distinct canonical roots are unequal without a deep walk.
  EXPECT_FALSE(interner_.Equal(a, b));
  // Uninterned equivalent trees still compare equal (deep fallback).
  EXPECT_TRUE(interner_.Equal(a, SelectOnNation(1)));
  EXPECT_FALSE(interner_.Equal(a, SelectOnNation(3)));
}

TEST_F(InternerTest, InternCachesFingerprintAndSubtreeSize) {
  LogicalOpPtr select = SelectOnNation(1);
  EXPECT_EQ(select->cached_fingerprint(), 0u);
  LogicalOpPtr canonical = interner_.Intern(select);
  EXPECT_NE(canonical->cached_fingerprint(), 0u);
  EXPECT_EQ(canonical->cached_fingerprint(), TreeFingerprint(*canonical));
  EXPECT_EQ(canonical->cached_subtree_size(), 2);
  EXPECT_EQ(CountOps(*canonical), 2);
  // The fingerprint of an equivalent uninterned clone agrees.
  EXPECT_EQ(TreeFingerprint(*DeepClone(canonical)),
            canonical->cached_fingerprint());
}

TEST_F(InternerTest, GroupRefTreesPassThroughUntouched) {
  Memo memo(/*rule_count=*/1);
  int g = memo.InsertTree(*nation_);
  LogicalOpPtr ref = memo.MakeGroupRef(g);
  // A bare GroupRef and any tree containing one never enter the table.
  EXPECT_EQ(interner_.Intern(ref).get(), ref.get());
  EXPECT_FALSE(interner_.IsCanonical(ref));
  auto select_over_ref = std::make_shared<SelectOp>(
      ref, Eq(Col(nation_->columns()[0], ValueType::kInt64), LitInt(1)));
  LogicalOpPtr out = interner_.Intern(select_over_ref);
  EXPECT_EQ(out.get(), select_over_ref.get());
  EXPECT_FALSE(interner_.IsCanonical(out));
  EXPECT_EQ(interner_.size(), 0u);
}

TEST_F(InternerTest, ClearStartsANewEpoch) {
  LogicalOpPtr a = interner_.Intern(SelectOnNation(1));
  ASSERT_TRUE(interner_.IsCanonical(a));
  interner_.Clear();
  EXPECT_EQ(interner_.size(), 0u);
  // The node survives but is no longer canonical...
  EXPECT_FALSE(interner_.IsCanonical(a));
  // ...and an equivalent tree interned now founds a new canonical line.
  LogicalOpPtr b = interner_.Intern(SelectOnNation(1));
  EXPECT_TRUE(interner_.IsCanonical(b));
  // Cross-epoch equality still answers correctly via the deep fallback.
  EXPECT_TRUE(interner_.Equal(a, b));
}

TEST_F(InternerTest, ExpiredEntriesDoNotPinOrCorruptTheTable) {
  uint64_t fp;
  {
    LogicalOpPtr temp = interner_.Intern(SelectOnNation(7));
    fp = temp->cached_fingerprint();
  }  // last strong reference dropped; the table holds only a weak_ptr
  // Re-interning the same structure registers a fresh canonical node.
  LogicalOpPtr again = interner_.Intern(SelectOnNation(7));
  EXPECT_TRUE(interner_.IsCanonical(again));
  EXPECT_EQ(again->cached_fingerprint(), fp);
}

// ---------------------------------------------------------------------------
// Fingerprint payload consistency: distinct operator-local payloads that
// LogicalTreeEquals distinguishes must fingerprint differently (cache keys
// must not silently alias distinct trees).

TEST_F(InternerTest, FingerprintCollisionSanity) {
  auto key = Col(nation_->columns()[2], ValueType::kInt64);
  auto rkey = Col(region_->columns()[0], ValueType::kInt64);
  std::vector<LogicalOpPtr> distinct;
  // Join kind is part of the payload...
  distinct.push_back(
      std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_, Eq(key, rkey)));
  distinct.push_back(
      std::make_shared<JoinOp>(JoinKind::kLeftOuter, nation_, region_, Eq(key, rkey)));
  distinct.push_back(
      std::make_shared<JoinOp>(JoinKind::kLeftSemi, nation_, region_, Eq(key, rkey)));
  // ...as is the predicate (including its absence)...
  distinct.push_back(
      std::make_shared<JoinOp>(JoinKind::kInner, nation_, region_, nullptr));
  distinct.push_back(std::make_shared<JoinOp>(
      JoinKind::kInner, nation_, region_,
      Eq(Col(nation_->columns()[0], ValueType::kInt64), rkey)));
  // ...and child order.
  distinct.push_back(
      std::make_shared<JoinOp>(JoinKind::kInner, region_, nation_, Eq(key, rkey)));
  // Select predicates: constant payloads must separate.
  distinct.push_back(SelectOnNation(1));
  distinct.push_back(SelectOnNation(2));
  // Projection lists: different column subsets and different output ids.
  std::vector<ProjectItem> narrow{
      {Col(nation_->columns()[0], ValueType::kInt64),
       registry_->Allocate("p0", ValueType::kInt64)}};
  std::vector<ProjectItem> wide = narrow;
  wide.push_back({Col(nation_->columns()[1], ValueType::kString),
                  registry_->Allocate("p1", ValueType::kString)});
  distinct.push_back(std::make_shared<ProjectOp>(nation_, narrow));
  distinct.push_back(std::make_shared<ProjectOp>(nation_, wide));

  for (size_t i = 0; i < distinct.size(); ++i) {
    for (size_t j = i + 1; j < distinct.size(); ++j) {
      EXPECT_NE(TreeFingerprint(*distinct[i]), TreeFingerprint(*distinct[j]))
          << "fingerprint collision between variants " << i << " and " << j;
    }
  }
}

// Golden stability: fingerprints are explicit-mixing (no std::hash), so
// their exact values are pinned here. A change to these constants is a
// cache-key format change: plan caches and any persisted fingerprints stop
// matching — bump deliberately, never silently (docs/architecture.md).
TEST_F(InternerTest, FingerprintGoldenValues) {
  static_assert(sizeof(size_t) == 8, "goldens assume 64-bit size_t");
  EXPECT_EQ(TreeFingerprint(*nation_), 0xee3e689e156d2846ULL);
  EXPECT_EQ(TreeFingerprint(*SelectOnNation(1)), 0xc694dcf5d6b5b258ULL);
  EXPECT_EQ(TreeFingerprint(*std::make_shared<JoinOp>(
                JoinKind::kInner, nation_, region_,
                Eq(Col(nation_->columns()[2], ValueType::kInt64),
                   Col(region_->columns()[0], ValueType::kInt64)))),
            0x5e0c5f97db73f0d8ULL);
}

// ---------------------------------------------------------------------------
// End-to-end: rule application over interned trees preserves
// correctness-runner results under deterministic fault injection.

std::unique_ptr<RuleTestFramework> ChaosFramework(uint64_t seed) {
  RuleTestFramework::Options options;
  options.fault_injector.seed = seed;
  options.fault_injector.fault_probability = 0.2;
  return RuleTestFramework::Create(std::move(options)).value();
}

Result<TestSuite> CleanSuite(RuleTestFramework* fw) {
  fw->fault_injector()->set_enabled(false);
  GenerationConfig config;
  config.method = GenerationMethod::kPattern;
  config.extra_ops = 1;
  config.seed = 2026;
  auto suite =
      fw->suite_generator()->Generate(fw->LogicalRuleSingletons(6), 2, config);
  fw->fault_injector()->set_enabled(true);
  return suite;
}

TEST(InternerChaosTest, CorrectnessResultsUnchangedByInterningAtFaultSeeds) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    // Framework A: the suite as generated — every root canonical in A's
    // interner, trees pointer-shared across queries.
    auto fa = ChaosFramework(seed);
    auto suite_a = CleanSuite(fa.get());
    ASSERT_TRUE(suite_a.ok()) << suite_a.status().ToString();
    auto report_a = fa->runner()->Run(*suite_a, suite_a->per_target);
    ASSERT_TRUE(report_a.ok()) << report_a.status().ToString();

    // Framework B: same seed, same suite, but every query root replaced by
    // a fresh uninterned deep clone — nothing shared, nothing cached.
    auto fb = ChaosFramework(seed);
    auto suite_b = CleanSuite(fb.get());
    ASSERT_TRUE(suite_b.ok()) << suite_b.status().ToString();
    for (TestCase& tc : suite_b->queries) {
      tc.query.root = DeepClone(tc.query.root);
    }
    auto report_b = fb->runner()->Run(*suite_b, suite_b->per_target);
    ASSERT_TRUE(report_b.ok()) << report_b.status().ToString();

    EXPECT_EQ(report_a->violations.size(), report_b->violations.size());
    EXPECT_EQ(report_a->plans_executed, report_b->plans_executed);
    EXPECT_EQ(report_a->skipped_identical_plans,
              report_b->skipped_identical_plans);
    EXPECT_EQ(report_a->skipped_unavailable, report_b->skipped_unavailable);

    // Interning did real work on both paths, and the facade exposes the
    // optimizer's interner.
    ASSERT_NE(fa->interner(), nullptr);
    EXPECT_GT(fa->metrics()->Snapshot().CounterValue("qtf.interner.hits"), 0);
  }
}

}  // namespace
}  // namespace qtf
