// The qtfd wire protocol (src/net/wire.h): frame round-trips through an
// incrementally-fed decoder, per-message encode/decode round-trips,
// rejection of every class of malformed input, and a seeded fuzz loop —
// truncations, bit flips and pure garbage must come back as clean
// kInvalidArgument results, never a crash, hang or giant allocation.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "net/wire.h"

namespace qtf {
namespace net {
namespace {

service::GenerateRequest SampleGenerateRequest() {
  service::GenerateRequest request;
  request.targets = {3, 7};
  request.method = GenerationMethod::kRandom;
  request.max_trials = 123;
  request.extra_ops = 2;
  request.seed = 0xdeadbeefcafef00dULL;
  request.require_relevant = false;
  request.options.budget.wall_seconds = 1.5;
  request.options.budget.max_memo_groups = 400;
  request.options.budget.max_memo_exprs = 9000;
  request.options.deadline_seconds = 2.25;
  return request;
}

service::CompressSuiteResponse SampleCompressResponse() {
  service::CompressSuiteResponse response;
  response.suite_queries = 6;
  response.assignment = {{0, 2}, {}, {1, 3, 5}};
  response.total_cost = 123.5;
  response.optimizer_calls = 77;
  response.degraded_targets = 1;
  response.estimated_edges = 12;
  return response;
}

service::SqlRequest SampleSqlRequest() {
  service::SqlRequest request;
  request.sql = "SELECT l_orderkey FROM lineitem WHERE l_quantity < 25";
  request.mode = service::SqlMode::kOptimize;
  request.options.deadline_seconds = 3.5;
  return request;
}

TEST(WireTest, FrameRoundTrip) {
  const std::string payload = "hello payload";
  const std::string bytes =
      EncodeFrame(MessageType::kMetricsRequest, 42, payload);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + payload.size());

  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  ASSERT_TRUE(decoder.Next(&frame).value());
  EXPECT_EQ(frame.type, MessageType::kMetricsRequest);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_FALSE(decoder.Next(&frame).value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireTest, DecoderHandlesBytewiseFeedAndBackToBackFrames) {
  const std::string a = EncodeFrame(MessageType::kGenerateRequest, 1, "aa");
  const std::string b = EncodeFrame(MessageType::kOptimizeRequest, 2, "");
  const std::string stream = a + b;

  FrameDecoder decoder;
  int frames = 0;
  Frame frame;
  for (char c : stream) {
    decoder.Feed(std::string_view(&c, 1));
    while (decoder.Next(&frame).value()) {
      ++frames;
      if (frames == 1) {
        EXPECT_EQ(frame.type, MessageType::kGenerateRequest);
        EXPECT_EQ(frame.payload, "aa");
      } else {
        EXPECT_EQ(frame.type, MessageType::kOptimizeRequest);
        EXPECT_EQ(frame.request_id, 2u);
      }
    }
  }
  EXPECT_EQ(frames, 2);
}

TEST(WireTest, DecoderRejectsMalformedHeaders) {
  Frame frame;
  {
    // Wrong magic.
    FrameDecoder decoder;
    decoder.Feed(std::string(kFrameHeaderBytes, '\0'));
    Result<bool> got = decoder.Next(&frame);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Wrong version.
    std::string bytes = EncodeFrame(MessageType::kMetricsRequest, 1, "");
    bytes[4] = 99;
    FrameDecoder decoder;
    decoder.Feed(bytes);
    EXPECT_FALSE(decoder.Next(&frame).ok());
  }
  {
    // Unknown message type.
    std::string bytes = EncodeFrame(MessageType::kMetricsRequest, 1, "");
    bytes[5] = 100;
    FrameDecoder decoder;
    decoder.Feed(bytes);
    EXPECT_FALSE(decoder.Next(&frame).ok());
  }
  {
    // Nonzero reserved bits.
    std::string bytes = EncodeFrame(MessageType::kMetricsRequest, 1, "");
    bytes[6] = 1;
    FrameDecoder decoder;
    decoder.Feed(bytes);
    EXPECT_FALSE(decoder.Next(&frame).ok());
  }
  {
    // Oversized payload length.
    std::string bytes = EncodeFrame(MessageType::kMetricsRequest, 1, "");
    bytes[15] = 0x7f;  // payload_bytes high byte -> ~2 GiB
    FrameDecoder decoder;
    decoder.Feed(bytes);
    EXPECT_FALSE(decoder.Next(&frame).ok());
  }
}

TEST(WireTest, GenerateRequestRoundTrip) {
  const service::GenerateRequest request = SampleGenerateRequest();
  const std::string payload = EncodeGenerateRequest(request);
  auto decoded = DecodeGenerateRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->targets, request.targets);
  EXPECT_EQ(decoded->method, request.method);
  EXPECT_EQ(decoded->max_trials, request.max_trials);
  EXPECT_EQ(decoded->extra_ops, request.extra_ops);
  EXPECT_EQ(decoded->seed, request.seed);
  EXPECT_EQ(decoded->require_relevant, request.require_relevant);
  EXPECT_EQ(decoded->options.budget.wall_seconds,
            request.options.budget.wall_seconds);
  EXPECT_EQ(decoded->options.budget.max_memo_groups,
            request.options.budget.max_memo_groups);
  EXPECT_EQ(decoded->options.budget.max_memo_exprs,
            request.options.budget.max_memo_exprs);
  EXPECT_EQ(decoded->options.deadline_seconds,
            request.options.deadline_seconds);
  // Deterministic: re-encoding the decoded struct reproduces the bytes.
  EXPECT_EQ(EncodeGenerateRequest(*decoded), payload);
}

TEST(WireTest, CompressSuiteResponseRoundTrip) {
  const service::CompressSuiteResponse response = SampleCompressResponse();
  const std::string payload = EncodeCompressSuiteResponse(response);
  auto decoded = DecodeCompressSuiteResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->suite_queries, response.suite_queries);
  EXPECT_EQ(decoded->assignment, response.assignment);
  EXPECT_EQ(decoded->total_cost, response.total_cost);
  EXPECT_EQ(decoded->optimizer_calls, response.optimizer_calls);
  EXPECT_EQ(decoded->degraded_targets, response.degraded_targets);
  EXPECT_EQ(decoded->estimated_edges, response.estimated_edges);
  EXPECT_EQ(EncodeCompressSuiteResponse(*decoded), payload);
}

TEST(WireTest, CorrectnessResponseRoundTrip) {
  service::CorrectnessResponse response;
  response.plans_executed = 9;
  response.skipped_identical_plans = 3;
  response.skipped_unavailable = 1;
  service::ViolationSummary v;
  v.target = 2;
  v.query = 4;
  v.target_name = "R3+R7";
  v.sql = "SELECT *";
  v.base_rows = 100;
  v.restricted_rows = 90;
  response.violations.push_back(v);

  const std::string payload = EncodeCorrectnessResponse(response);
  auto decoded = DecodeCorrectnessResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->violations.size(), 1u);
  EXPECT_EQ(decoded->violations[0].target_name, "R3+R7");
  EXPECT_EQ(decoded->violations[0].base_rows, 100);
  EXPECT_EQ(EncodeCorrectnessResponse(*decoded), payload);
}

TEST(WireTest, SqlRequestRoundTrip) {
  const service::SqlRequest request = SampleSqlRequest();
  const std::string payload = EncodeSqlRequest(request);
  auto decoded = DecodeSqlRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->sql, request.sql);
  EXPECT_EQ(decoded->mode, request.mode);
  EXPECT_EQ(decoded->options.deadline_seconds,
            request.options.deadline_seconds);
  EXPECT_EQ(EncodeSqlRequest(*decoded), payload);
}

TEST(WireTest, SqlRequestRejectsUnknownMode) {
  service::SqlRequest request = SampleSqlRequest();
  std::string payload = EncodeSqlRequest(request);
  // The mode byte sits right after the length-prefixed sql string.
  payload[4 + request.sql.size()] = 9;
  auto decoded = DecodeSqlRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, SqlResponseRoundTrip) {
  service::SqlResponse response;
  response.fingerprint = 0xabcdef0123456789ULL;
  response.canonical_sql = "SELECT l_orderkey AS c1 FROM lineitem";
  response.operator_count = 3;
  response.cost = 17.25;
  response.exercised_rules = {1, 4};
  response.group_count = 8;
  response.expr_count = 21;
  response.budget_exhausted = true;
  response.plans_executed = 2;
  response.skipped_identical_plans = 1;
  service::ViolationSummary v;
  v.target = 0;
  v.query = 0;
  v.target_name = "R4";
  v.sql = "SELECT *";
  v.base_rows = 10;
  v.restricted_rows = 12;
  response.violations.push_back(v);

  const std::string payload = EncodeSqlResponse(response);
  auto decoded = DecodeSqlResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->fingerprint, response.fingerprint);
  EXPECT_EQ(decoded->canonical_sql, response.canonical_sql);
  EXPECT_EQ(decoded->operator_count, response.operator_count);
  EXPECT_EQ(decoded->cost, response.cost);
  EXPECT_EQ(decoded->exercised_rules, response.exercised_rules);
  EXPECT_EQ(decoded->budget_exhausted, response.budget_exhausted);
  ASSERT_EQ(decoded->violations.size(), 1u);
  EXPECT_EQ(decoded->violations[0].target_name, "R4");
  EXPECT_EQ(decoded->violations[0].restricted_rows, 12);
  EXPECT_EQ(EncodeSqlResponse(*decoded), payload);
}

TEST(WireTest, LoadRulesRequestRoundTrip) {
  service::LoadRulesRequest request;
  request.text = "rule R { match s: select(select($X)) rewrite $X }";
  request.dry_run = true;
  request.options.deadline_seconds = 2.5;
  const std::string payload = EncodeLoadRulesRequest(request);
  auto decoded = DecodeLoadRulesRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->text, request.text);
  EXPECT_EQ(decoded->dry_run, request.dry_run);
  EXPECT_EQ(decoded->options.deadline_seconds,
            request.options.deadline_seconds);
  EXPECT_EQ(EncodeLoadRulesRequest(*decoded), payload);
}

TEST(WireTest, LoadRulesResponseRoundTrip) {
  service::LoadRulesResponse response;
  response.ids = {39, 40};
  response.names = {"RuleA", "RuleB"};
  response.compiled = 2;
  const std::string payload = EncodeLoadRulesResponse(response);
  auto decoded = DecodeLoadRulesResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->ids, response.ids);
  EXPECT_EQ(decoded->names, response.names);
  EXPECT_EQ(decoded->compiled, response.compiled);
  EXPECT_EQ(EncodeLoadRulesResponse(*decoded), payload);
}

TEST(WireTest, ListRulesRoundTrip) {
  // The request has no fields; its payload is empty by construction.
  EXPECT_TRUE(EncodeListRulesRequest(service::ListRulesRequest{}).empty());
  ASSERT_TRUE(DecodeListRulesRequest("").ok());

  service::ListRulesResponse response;
  service::RuleInfo builtin;
  builtin.id = 0;
  builtin.name = "JoinCommutativity";
  builtin.type = 0;
  builtin.pattern = "Join[Inner](Any, Any)";
  builtin.origin = 0;
  service::RuleInfo dsl;
  dsl.id = 39;
  dsl.name = "DslProbe";
  dsl.type = 0;
  dsl.pattern = "Select(Select(Any))";
  dsl.origin = 1;
  response.rules = {builtin, dsl};
  const std::string payload = EncodeListRulesResponse(response);
  auto decoded = DecodeListRulesResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->rules.size(), 2u);
  EXPECT_EQ(decoded->rules[0].name, "JoinCommutativity");
  EXPECT_EQ(decoded->rules[0].origin, 0);
  EXPECT_EQ(decoded->rules[1].id, 39);
  EXPECT_EQ(decoded->rules[1].name, "DslProbe");
  EXPECT_EQ(decoded->rules[1].pattern, "Select(Select(Any))");
  EXPECT_EQ(decoded->rules[1].origin, 1);
  EXPECT_EQ(EncodeListRulesResponse(*decoded), payload);
}

TEST(WireTest, LoadAndListRulesRejectMalformedPayloads) {
  service::LoadRulesResponse load;
  load.ids = {1};
  load.names = {"R"};
  load.compiled = 1;
  const std::string load_payload = EncodeLoadRulesResponse(load);
  for (size_t n = 0; n < load_payload.size(); ++n) {
    auto decoded = DecodeLoadRulesResponse(
        std::string_view(load_payload).substr(0, n));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << n << " bytes decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  {
    auto trailing = DecodeLoadRulesResponse(load_payload + "x");
    ASSERT_FALSE(trailing.ok());
    EXPECT_EQ(trailing.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // A garbage name count must be caught by the count-vs-remaining guard,
    // not drive a giant reserve. Layout: empty ids vector, then 0xffffffff
    // as the name count with no bytes behind it.
    std::string huge_count(4, '\0');
    huge_count += std::string(4, '\xff');
    auto decoded = DecodeLoadRulesResponse(huge_count);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }

  service::RuleInfo info;
  info.id = 7;
  info.name = "R";
  info.pattern = "Any";
  service::ListRulesResponse list;
  list.rules = {info};
  const std::string list_payload = EncodeListRulesResponse(list);
  for (size_t n = 0; n < list_payload.size(); ++n) {
    auto decoded = DecodeListRulesResponse(
        std::string_view(list_payload).substr(0, n));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << n << " bytes decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  auto request_trailing = DecodeListRulesRequest("x");
  ASSERT_FALSE(request_trailing.ok());
  EXPECT_EQ(request_trailing.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, ErrorRoundTripUsesFrozenWireCodes) {
  const Status error =
      Status::ResourceExhausted("admission queue full; retry with backoff");
  Status decoded;
  ASSERT_TRUE(DecodeError(EncodeError(error), &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.message(), error.message());
}

TEST(WireTest, VariantDispatchRoundTripsEveryRequestType) {
  const std::vector<service::ServiceRequest> requests = {
      SampleGenerateRequest(), service::OptimizeRequest{},
      service::CompressSuiteRequest{}, service::CorrectnessRequest{},
      SampleSqlRequest(),
      service::LoadRulesRequest{"rule R { match s: select($X) rewrite $X }",
                                true, {}},
      service::ListRulesRequest{}, service::MetricsRequest{true}};
  for (const service::ServiceRequest& request : requests) {
    const MessageType type = RequestType(request);
    EXPECT_TRUE(IsRequestType(type));
    auto decoded = DecodeRequest(type, EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->index(), request.index());
    EXPECT_EQ(EncodeRequest(*decoded), EncodeRequest(request));
  }
}

TEST(WireTest, TruncatedAndOversizedPayloadsAreInvalid) {
  const std::string payload = EncodeGenerateRequest(SampleGenerateRequest());
  // Every strict prefix is truncated; payload + junk has trailing bytes.
  for (size_t n = 0; n < payload.size(); ++n) {
    auto decoded = DecodeGenerateRequest(std::string_view(payload).substr(0, n));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << n << " bytes decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  auto trailing = DecodeGenerateRequest(payload + "x");
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, FuzzedPayloadsNeverCrashDecoders) {
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> length(0, 300);
  const MessageType kDecodable[] = {
      MessageType::kGenerateRequest,    MessageType::kGenerateResponse,
      MessageType::kOptimizeRequest,    MessageType::kOptimizeResponse,
      MessageType::kCompressSuiteRequest,
      MessageType::kCompressSuiteResponse,
      MessageType::kCorrectnessRequest, MessageType::kCorrectnessResponse,
      MessageType::kMetricsRequest,     MessageType::kMetricsResponse,
      MessageType::kSqlRequest,         MessageType::kSqlResponse,
      MessageType::kLoadRulesRequest,   MessageType::kLoadRulesResponse,
      MessageType::kListRulesRequest,   MessageType::kListRulesResponse,
  };
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string junk(static_cast<size_t>(length(rng)), '\0');
    for (char& c : junk) c = static_cast<char>(byte(rng));
    for (MessageType type : kDecodable) {
      if (IsRequestType(type)) {
        (void)DecodeRequest(type, junk);
      } else {
        (void)DecodeResponse(type, junk);
      }
    }
    Status sink;
    (void)DecodeError(junk, &sink);
  }
}

TEST(WireTest, FuzzedFrameStreamsNeverCrashTheDecoder) {
  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> chunk_len(1, 64);
  std::uniform_int_distribution<int> mode(0, 2);

  for (int iteration = 0; iteration < 500; ++iteration) {
    // Build a stream: valid frames, bit-flipped frames, or pure garbage.
    std::string stream;
    const int kind = mode(rng);
    if (kind == 0) {
      stream = EncodeFrame(MessageType::kGenerateRequest, iteration,
                           EncodeGenerateRequest(SampleGenerateRequest()));
    } else if (kind == 1) {
      stream = EncodeFrame(MessageType::kMetricsRequest, iteration, "");
      const size_t flip = rng() % stream.size();
      stream[flip] = static_cast<char>(stream[flip] ^ (1 << (rng() % 8)));
    } else {
      stream.resize(16 + rng() % 128);
      for (char& c : stream) c = static_cast<char>(byte(rng));
    }

    FrameDecoder decoder;
    size_t fed = 0;
    bool dead = false;
    while (fed < stream.size() && !dead) {
      const size_t n =
          std::min(stream.size() - fed, static_cast<size_t>(chunk_len(rng)));
      decoder.Feed(std::string_view(stream).substr(fed, n));
      fed += n;
      for (;;) {
        Frame frame;
        Result<bool> got = decoder.Next(&frame);
        if (!got.ok()) {
          // Malformed header: a real server closes the connection here.
          EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
          dead = true;
          break;
        }
        if (!got.value()) break;
        // Extracted frames route through payload decoding like the server.
        if (IsRequestType(frame.type)) {
          (void)DecodeRequest(frame.type, frame.payload);
        }
      }
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace qtf
