// The SQL frontend's pieces in isolation: lexer tokens and positions,
// parser shapes, precedence and error positions, binder resolution and
// type rules — plus a seeded fuzz loop establishing that arbitrary bytes
// and token-level mutations of valid statements come back as clean
// kInvalidArgument results, never a crash.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "sql/binder.h"
#include "sql/frontend.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "storage/tpch.h"

namespace qtf {
namespace sql {
namespace {

// --- Lexer ----------------------------------------------------------------

TEST(SqlLexerTest, TokenizesKeywordsCaseInsensitively) {
  auto tokens = Tokenize("select FROM Where gRoUp").value();
  ASSERT_EQ(tokens.size(), 5u);  // incl. kEnd
  EXPECT_EQ(tokens[0].kind, TokenKind::kSelect);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFrom);
  EXPECT_EQ(tokens[2].kind, TokenKind::kWhere);
  EXPECT_EQ(tokens[3].kind, TokenKind::kGroup);
  EXPECT_EQ(tokens[4].kind, TokenKind::kEnd);
}

TEST(SqlLexerTest, IdentifiersKeepSpellingAndPosition) {
  auto tokens = Tokenize("SELECT\n  l_OrderKey").value();
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].text, "l_OrderKey");
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].col, 3);
}

TEST(SqlLexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("42 2.5 1e3 'it''s'").value();
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDoubleLit);
  EXPECT_EQ(tokens[1].double_value, 2.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDoubleLit);
  EXPECT_EQ(tokens[2].double_value, 1000.0);
  EXPECT_EQ(tokens[3].kind, TokenKind::kStringLit);
  EXPECT_EQ(tokens[3].text, "it's");
}

TEST(SqlLexerTest, CommentsAreSkipped) {
  auto tokens = Tokenize("SELECT -- line comment\n/* block\n */ 1").value();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kSelect);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIntLit);
}

TEST(SqlLexerTest, ErrorsCarryLineAndColumn) {
  auto bad = Tokenize("SELECT\n  @");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("2:3"), std::string::npos)
      << bad.status().message();

  auto unterminated = Tokenize("'never closed");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_EQ(unterminated.status().code(), StatusCode::kInvalidArgument);
}

// --- Parser ---------------------------------------------------------------

TEST(SqlParserTest, SelectListShapes) {
  auto star = ParseSql("SELECT * FROM region").value();
  ASSERT_EQ(star->branches.size(), 1u);
  ASSERT_EQ(star->branches[0]->items.size(), 1u);
  EXPECT_TRUE(star->branches[0]->items[0].star);

  auto items = ParseSql("SELECT a AS x, b y, c FROM region").value();
  const SelectCore& core = *items->branches[0];
  ASSERT_EQ(core.items.size(), 3u);
  EXPECT_EQ(core.items[0].alias, "x");
  EXPECT_EQ(core.items[1].alias, "y");  // bare alias, no AS
  EXPECT_EQ(core.items[2].alias, "");
}

TEST(SqlParserTest, BooleanPrecedenceOrLowest) {
  auto q = ParseSql("SELECT a FROM t WHERE x OR y AND NOT z").value();
  const SqlExpr& where = *q->branches[0]->where;
  ASSERT_EQ(where.kind, SqlExprKind::kOr);
  EXPECT_EQ(where.children[0]->kind, SqlExprKind::kIdent);
  ASSERT_EQ(where.children[1]->kind, SqlExprKind::kAnd);
  EXPECT_EQ(where.children[1]->children[1]->kind, SqlExprKind::kNot);
}

TEST(SqlParserTest, ArithmeticBindsTighterThanComparison) {
  auto q = ParseSql("SELECT a FROM t WHERE a + b * 2 < c").value();
  const SqlExpr& cmp = *q->branches[0]->where;
  ASSERT_EQ(cmp.kind, SqlExprKind::kCompare);
  EXPECT_EQ(cmp.compare_op, CompareOp::kLt);
  const SqlExpr& add = *cmp.children[0];
  ASSERT_EQ(add.kind, SqlExprKind::kArith);
  EXPECT_EQ(add.arith_op, ArithOp::kAdd);
  const SqlExpr& mul = *add.children[1];
  ASSERT_EQ(mul.kind, SqlExprKind::kArith);
  EXPECT_EQ(mul.arith_op, ArithOp::kMul);
}

TEST(SqlParserTest, JoinsDerivedTablesAndExists) {
  auto join = ParseSql(
      "SELECT * FROM (SELECT * FROM nation) d0 "
      "LEFT OUTER JOIN region ON d0.n_regionkey = r_regionkey").value();
  const TableRef& from = *join->branches[0]->from;
  ASSERT_EQ(from.kind, TableRefKind::kJoin);
  EXPECT_EQ(from.join_kind, JoinKind::kLeftOuter);
  EXPECT_EQ(from.left->kind, TableRefKind::kDerived);
  EXPECT_EQ(from.left->alias, "d0");
  ASSERT_NE(from.on, nullptr);

  auto exists = ParseSql(
      "SELECT * FROM region WHERE NOT EXISTS "
      "(SELECT 1 FROM nation WHERE n_regionkey = r_regionkey)").value();
  const SqlExpr& pred = *exists->branches[0]->where;
  ASSERT_EQ(pred.kind, SqlExprKind::kExists);
  EXPECT_TRUE(pred.negated);
  ASSERT_NE(pred.subquery, nullptr);
}

TEST(SqlParserTest, UnionAllAndGroupBy) {
  auto u = ParseSql("SELECT a FROM t UNION ALL SELECT b FROM s "
                    "UNION ALL SELECT c FROM r").value();
  EXPECT_EQ(u->branches.size(), 3u);

  auto g = ParseSql(
      "SELECT n_regionkey, COUNT(*) AS cnt FROM nation "
      "GROUP BY n_regionkey").value();
  const SelectCore& core = *g->branches[0];
  ASSERT_EQ(core.group_by.size(), 1u);
  ASSERT_EQ(core.items.size(), 2u);
  ASSERT_EQ(core.items[1].expr->kind, SqlExprKind::kFuncCall);
  EXPECT_TRUE(core.items[1].expr->star_arg);
}

TEST(SqlParserTest, ErrorsCarryPositions) {
  auto missing_from = ParseSql("SELECT a FROM");
  ASSERT_FALSE(missing_from.ok());
  EXPECT_EQ(missing_from.status().code(), StatusCode::kInvalidArgument);

  auto bad_token = ParseSql("SELECT a\nFROM t WHERE (a =");
  ASSERT_FALSE(bad_token.ok());
  EXPECT_NE(bad_token.status().message().find("2:"), std::string::npos)
      << bad_token.status().message();

  auto empty = ParseSql("");
  ASSERT_FALSE(empty.ok());
  auto trailing = ParseSql("SELECT a FROM t extra junk");
  ASSERT_FALSE(trailing.ok());
}

TEST(SqlParserTest, DeeplyNestedInputIsRejectedNotACrash) {
  std::string deep = "SELECT a FROM t WHERE ";
  for (int i = 0; i < 5000; ++i) deep += "(";
  deep += "1";
  for (int i = 0; i < 5000; ++i) deep += ")";
  deep += " = 1";
  auto result = ParseSql(deep);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --- Binder ---------------------------------------------------------------

class SqlBinderTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeTpchDatabase(TpchConfig{}).value(); }

  Result<Query> Bind(const std::string& text) {
    auto parsed = ParseSql(text);
    if (!parsed.ok()) return parsed.status();
    return BindSql(**parsed, db_->catalog());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SqlBinderTest, BindsSimpleSelect) {
  Query q = Bind("SELECT r_name FROM region WHERE r_regionkey < 3").value();
  ASSERT_TRUE(q.valid());
  // Project over Select over Get.
  ASSERT_EQ(q.root->kind(), LogicalOpKind::kProject);
  EXPECT_EQ(q.root->children()[0]->kind(), LogicalOpKind::kSelect);
  EXPECT_EQ(q.root->children()[0]->children()[0]->kind(), LogicalOpKind::kGet);
}

TEST_F(SqlBinderTest, SelectStarIsPassThrough) {
  Query q = Bind("SELECT * FROM region WHERE r_regionkey < 3").value();
  EXPECT_EQ(q.root->kind(), LogicalOpKind::kSelect);
}

TEST_F(SqlBinderTest, ResolvesQualifiedAndUnqualifiedNames) {
  EXPECT_TRUE(Bind("SELECT nation.n_name FROM nation").ok());
  EXPECT_TRUE(Bind("SELECT n.n_name FROM nation n").ok());
  EXPECT_TRUE(
      Bind("SELECT n_name, r_name FROM nation INNER JOIN region "
           "ON n_regionkey = r_regionkey").ok());
}

TEST_F(SqlBinderTest, ErrorsNameTheProblem) {
  auto unknown_table = Bind("SELECT x FROM nonsuch");
  ASSERT_FALSE(unknown_table.ok());
  EXPECT_NE(unknown_table.status().message().find("nonsuch"),
            std::string::npos);

  auto unknown_column = Bind("SELECT bogus FROM region");
  ASSERT_FALSE(unknown_column.ok());
  EXPECT_NE(unknown_column.status().message().find("bogus"),
            std::string::npos);

  auto ambiguous =
      Bind("SELECT n_name FROM nation a, nation b");
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_NE(ambiguous.status().message().find("ambiguous"),
            std::string::npos)
      << ambiguous.status().message();
}

TEST_F(SqlBinderTest, TypeErrorsAreInvalidArgument) {
  auto mixed = Bind("SELECT r_name FROM region WHERE r_name = 3");
  ASSERT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.status().code(), StatusCode::kInvalidArgument);

  auto nonbool = Bind("SELECT r_name FROM region WHERE r_regionkey");
  ASSERT_FALSE(nonbool.ok());

  auto sum_string = Bind("SELECT SUM(r_name) FROM region");
  ASSERT_FALSE(sum_string.ok());
}

TEST_F(SqlBinderTest, CanonicalAliasPinsColumnId) {
  // A computed item with a `c<N>` alias defines its column at exactly id N
  // (bare references keep their existing identity instead).
  Query q = Bind("SELECT (r_regionkey + 1) AS c7 FROM region").value();
  ASSERT_EQ(q.root->kind(), LogicalOpKind::kProject);
  const auto& project = static_cast<const ProjectOp&>(*q.root);
  ASSERT_EQ(project.items().size(), 1u);
  EXPECT_EQ(project.items()[0].id, 7);
  EXPECT_EQ(q.registry->NameOf(7), "c7");
}

TEST_F(SqlBinderTest, MismatchedPinOnBareReferenceIsRejected) {
  // r_regionkey already has an identity (the Get allocated it); aliasing
  // it to a *different* canonical id cannot be honored.
  auto repin = Bind("SELECT r_regionkey AS c7 FROM region");
  ASSERT_FALSE(repin.ok());
  EXPECT_EQ(repin.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SqlBinderTest, DuplicatePinnedAliasIsRejected) {
  auto dup = Bind(
      "SELECT (r_regionkey + 1) AS c7, (r_regionkey + 2) AS c7 FROM region");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SqlBinderTest, HugePinnedAliasDoesNotExplodeTheRegistry) {
  // c999999999999 is past the pinning cap: treated as an ordinary alias
  // instead of resizing the registry to a trillion slots.
  auto q = Bind("SELECT r_regionkey AS c999999999999 FROM region");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST_F(SqlBinderTest, ExistsBecomesSemiJoin) {
  Query semi = Bind(
      "SELECT * FROM nation WHERE EXISTS "
      "(SELECT 1 FROM region WHERE r_regionkey = n_regionkey)").value();
  ASSERT_EQ(semi.root->kind(), LogicalOpKind::kJoin);
  EXPECT_EQ(static_cast<const JoinOp&>(*semi.root).join_kind(),
            JoinKind::kLeftSemi);

  Query anti = Bind(
      "SELECT * FROM nation WHERE NOT EXISTS "
      "(SELECT 1 FROM region WHERE r_regionkey = n_regionkey)").value();
  ASSERT_EQ(anti.root->kind(), LogicalOpKind::kJoin);
  EXPECT_EQ(static_cast<const JoinOp&>(*anti.root).join_kind(),
            JoinKind::kLeftAnti);
}

TEST_F(SqlBinderTest, TautologyOnBecomesNullPredicate) {
  Query q = Bind("SELECT * FROM nation INNER JOIN region ON (1 = 1)").value();
  ASSERT_EQ(q.root->kind(), LogicalOpKind::kJoin);
  EXPECT_EQ(static_cast<const JoinOp&>(*q.root).predicate(), nullptr);
}

TEST_F(SqlBinderTest, AggregatesBind) {
  Query q = Bind(
      "SELECT n_regionkey, COUNT(*) AS cnt, SUM(n_nationkey) AS total "
      "FROM nation GROUP BY n_regionkey").value();
  ASSERT_EQ(q.root->kind(), LogicalOpKind::kGroupByAgg);
  const auto& agg = static_cast<const GroupByAggOp&>(*q.root);
  EXPECT_EQ(agg.group_cols().size(), 1u);
  EXPECT_EQ(agg.aggregates().size(), 2u);

  auto ungrouped = Bind("SELECT n_name, COUNT(*) FROM nation");
  ASSERT_FALSE(ungrouped.ok());  // n_name not in GROUP BY
}

TEST_F(SqlBinderTest, UnionAllChecksArityAndTypes) {
  EXPECT_TRUE(Bind("SELECT n_name FROM nation UNION ALL "
                   "SELECT r_name FROM region").ok());
  auto arity = Bind("SELECT n_name, n_nationkey FROM nation UNION ALL "
                    "SELECT r_name FROM region");
  ASSERT_FALSE(arity.ok());
  auto types = Bind("SELECT n_name FROM nation UNION ALL "
                    "SELECT r_regionkey FROM region");
  ASSERT_FALSE(types.ok());
}

TEST_F(SqlBinderTest, GroupRefCommentFormIsAnErrorNotACrash) {
  // GenerateSql renders memo group references as "SELECT /* group N */ *"
  // with no FROM clause — unparseable by design.
  auto q = Bind("SELECT /* group 3 */ *");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

// --- Frontend metrics -----------------------------------------------------

TEST(SqlFrontendTest, CountsParsesAndErrors) {
  auto db = MakeTpchDatabase(TpchConfig{}).value();
  obs::MetricsRegistry metrics;
  SqlFrontendOptions options;
  options.metrics = &metrics;
  SqlFrontend frontend(&db->catalog(), options);

  EXPECT_TRUE(frontend.Parse("SELECT r_name FROM region").ok());
  EXPECT_FALSE(frontend.Parse("SELECT FROM WHERE").ok());
  EXPECT_FALSE(frontend.Parse("SELECT bogus FROM region").ok());

  EXPECT_EQ(metrics.counter("qtf.sql.parsed")->Value(), 1);
  EXPECT_EQ(metrics.counter("qtf.sql.parse_errors")->Value(), 1);
  EXPECT_EQ(metrics.counter("qtf.sql.bind_errors")->Value(), 1);
}

// --- Fuzz -----------------------------------------------------------------

// Valid statements used as mutation seeds; shaped like both renderer
// output (canonical aliases, derived tables) and hand-written SQL.
const char* const kSeedStatements[] = {
    "SELECT r_regionkey AS c0, r_name AS c1, r_comment AS c2 FROM region",
    "SELECT * FROM (SELECT n_nationkey AS c0, n_name AS c1, n_regionkey AS "
    "c2, n_comment AS c3 FROM nation) d0 WHERE (c0 < 10)",
    "SELECT n_name, r_name FROM nation INNER JOIN region ON n_regionkey = "
    "r_regionkey WHERE n_nationkey < 7",
    "SELECT * FROM nation WHERE NOT EXISTS (SELECT 1 FROM region WHERE "
    "r_regionkey = n_regionkey)",
    "SELECT n_regionkey, COUNT(*) AS cnt FROM nation GROUP BY n_regionkey",
    "SELECT n_name FROM nation UNION ALL SELECT r_name FROM region",
    "SELECT DISTINCT * FROM (SELECT * FROM region) d0",
};

TEST(SqlFuzzTest, RandomBytesNeverCrashTheFrontend) {
  auto db = MakeTpchDatabase(TpchConfig{}).value();
  SqlFrontend frontend(&db->catalog());
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> length(0, 200);
  for (int iteration = 0; iteration < 3000; ++iteration) {
    std::string junk(static_cast<size_t>(length(rng)), '\0');
    for (char& c : junk) c = static_cast<char>(byte(rng));
    Result<Query> result = frontend.Parse(junk);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(SqlFuzzTest, TokenLevelMutationsNeverCrashTheFrontend) {
  auto db = MakeTpchDatabase(TpchConfig{}).value();
  SqlFrontend frontend(&db->catalog());
  std::mt19937_64 rng(424242);

  // Token spellings harvested from the seed statements plus a few
  // adversarial extras; mutations splice these into valid statements.
  std::vector<std::string> vocabulary = {
      "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",       "AS",     "UNION",
      "ALL",    "JOIN",  "INNER",  "LEFT",   "OUTER",    "ON",     "EXISTS",
      "NOT",    "AND",   "OR",     "(",      ")",        ",",      "*",
      "=",      "<",     "<=",     "<>",     "+",        "-",      "/",
      "region", "nation", "r_name", "n_name", "c0",      "c1",     "d0",
      "42",     "2.5",   "'x'",    "NULL",   "COUNT",    "SUM",    ".",
  };
  std::uniform_int_distribution<size_t> pick_seed(
      0, std::size(kSeedStatements) - 1);
  std::uniform_int_distribution<size_t> pick_word(0, vocabulary.size() - 1);
  std::uniform_int_distribution<int> mutations(1, 4);

  for (int iteration = 0; iteration < 2000; ++iteration) {
    // Split a seed statement on spaces, then mutate: replace, insert,
    // delete or swap random tokens.
    std::vector<std::string> words;
    {
      std::string seed = kSeedStatements[pick_seed(rng)];
      size_t at = 0;
      while (at < seed.size()) {
        size_t space = seed.find(' ', at);
        if (space == std::string::npos) space = seed.size();
        if (space > at) words.push_back(seed.substr(at, space - at));
        at = space + 1;
      }
    }
    for (int m = mutations(rng); m > 0 && !words.empty(); --m) {
      const size_t at = rng() % words.size();
      switch (rng() % 4) {
        case 0:
          words[at] = vocabulary[pick_word(rng)];
          break;
        case 1:
          words.insert(words.begin() + static_cast<long>(at),
                       vocabulary[pick_word(rng)]);
          break;
        case 2:
          words.erase(words.begin() + static_cast<long>(at));
          break;
        default:
          std::swap(words[at], words[rng() % words.size()]);
          break;
      }
    }
    std::string text;
    for (const std::string& w : words) {
      if (!text.empty()) text += ' ';
      text += w;
    }
    Result<Query> result = frontend.Parse(text);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << text;
    }
  }
}

}  // namespace
}  // namespace sql
}  // namespace qtf
