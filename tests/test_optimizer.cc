// Optimizer behavior: plan quality improvements from specific rules, rule
// tracking, cost monotonicity under rule disabling (the property both TOPK's
// bound and the monotonicity pruning rely on), output-order normalization.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "qgen/generators.h"
#include "rules/default_rules.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTpchDatabase(TpchConfig{}).value();
    registry_ = MakeDefaultRuleRegistry();
    optimizer_ = std::make_unique<Optimizer>(registry_.get());
  }

  std::shared_ptr<const GetOp> Get(const std::string& name,
                                   ColumnRegistry* reg) {
    return GetOp::Create(db_->catalog().GetTable(name).value(), reg);
  }

  RuleId Id(const std::string& name) {
    RuleId id = registry_->FindByName(name);
    EXPECT_GE(id, 0) << name;
    return id;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<RuleRegistry> registry_;
  std::unique_ptr<Optimizer> optimizer_;
};

TEST_F(OptimizerTest, SelectionPushdownLowersCost) {
  // select * from lineitem join orders on l_orderkey = o_orderkey
  // where o_totalprice > X  — pushing the filter below the join pays off.
  auto reg = std::make_shared<ColumnRegistry>();
  auto lineitem = Get("lineitem", reg.get());
  auto orders = Get("orders", reg.get());
  ExprPtr join_pred = Eq(Col(lineitem->columns()[0], ValueType::kInt64),
                         Col(orders->columns()[0], ValueType::kInt64));
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, lineitem, orders,
                                       join_pred);
  auto select = std::make_shared<SelectOp>(
      join, Cmp(CompareOp::kGt,
                Col(orders->columns()[3], ValueType::kDouble),
                LitDouble(400000.0)));
  Query query{select, reg};

  auto base = optimizer_->Optimize(query);
  ASSERT_TRUE(base.ok());
  EXPECT_TRUE(base->exercised_rules.count(Id("SelectPushBelowJoinRight")) >
              0);

  OptimizerOptions no_pushdown;
  no_pushdown.disabled_rules = {Id("SelectPushBelowJoinLeft"),
                                Id("SelectPushBelowJoinRight"),
                                Id("SelectIntoJoin"), Id("SelectSplit")};
  auto restricted = optimizer_->Optimize(query, no_pushdown);
  ASSERT_TRUE(restricted.ok());
  EXPECT_GT(restricted->cost, base->cost);
}

TEST_F(OptimizerTest, HashJoinBeatsNlJoinOnEquiJoin) {
  auto reg = std::make_shared<ColumnRegistry>();
  auto lineitem = Get("lineitem", reg.get());
  auto orders = Get("orders", reg.get());
  auto join = std::make_shared<JoinOp>(
      JoinKind::kInner, lineitem, orders,
      Eq(Col(lineitem->columns()[0], ValueType::kInt64),
         Col(orders->columns()[0], ValueType::kInt64)));
  Query query{join, reg};

  auto base = optimizer_->Optimize(query);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->plan->kind(), PhysicalOpKind::kHashJoin);

  OptimizerOptions no_hash;
  no_hash.disabled_rules.insert(Id("JoinToHashJoin"));
  auto nl_only = optimizer_->Optimize(query, no_hash);
  ASSERT_TRUE(nl_only.ok());
  // The winning join may be the commuted one, wrapped in a (free)
  // output-order Compute.
  const PhysicalOp* node = nl_only->plan.get();
  if (node->kind() == PhysicalOpKind::kCompute) node = node->child(0).get();
  EXPECT_EQ(node->kind(), PhysicalOpKind::kNlJoin);
  EXPECT_GT(nl_only->cost, base->cost);
}

TEST_F(OptimizerTest, JoinOrderMattersAndCommutativityHelps) {
  // lineitem x region cross-ordered badly: with commutativity the optimizer
  // can put the small side on the build side.
  auto reg = std::make_shared<ColumnRegistry>();
  auto lineitem = Get("lineitem", reg.get());
  auto nation = Get("nation", reg.get());
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, lineitem, nation,
                                       nullptr);  // cross join
  Query query{join, reg};
  auto base = optimizer_->Optimize(query);
  ASSERT_TRUE(base.ok());

  OptimizerOptions no_commute;
  no_commute.disabled_rules.insert(Id("JoinCommutativity"));
  auto restricted = optimizer_->Optimize(query, no_commute);
  ASSERT_TRUE(restricted.ok());
  EXPECT_GE(restricted->cost, base->cost);
}

TEST_F(OptimizerTest, OutputOrderNormalizedAfterCommutativity) {
  // Even when the winning plan is the commuted join, the plan's output
  // columns must equal the query's declared output order.
  auto reg = std::make_shared<ColumnRegistry>();
  auto lineitem = Get("lineitem", reg.get());
  auto nation = Get("nation", reg.get());
  auto join = std::make_shared<JoinOp>(JoinKind::kInner, lineitem, nation,
                                       nullptr);
  Query query{join, reg};
  auto result = optimizer_->Optimize(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan->OutputColumns(), join->OutputColumns());
}

TEST_F(OptimizerTest, RuleSetTrackingIncludesImplementationRules) {
  auto reg = std::make_shared<ColumnRegistry>();
  auto region = Get("region", reg.get());
  Query query{region, reg};
  auto result = optimizer_->Optimize(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exercised_rules.count(Id("GetToScan")) > 0);
}

TEST_F(OptimizerTest, CostMonotonicityOverRandomQueries) {
  // Property: for random queries, disabling any subset (singleton) of
  // exercised logical rules never lowers the cost.
  RandomQueryGenerator generator(&db_->catalog(), 77);
  for (int i = 0; i < 25; ++i) {
    Query query = generator.Generate();
    auto base = optimizer_->Optimize(query);
    if (!base.ok()) continue;
    for (RuleId id : base->exercised_rules) {
      if (registry_->rule(id).type() != RuleType::kExploration) continue;
      OptimizerOptions options;
      options.disabled_rules.insert(id);
      auto restricted = optimizer_->Optimize(query, options);
      ASSERT_TRUE(restricted.ok());
      EXPECT_GE(restricted->cost, base->cost - 1e-6)
          << registry_->rule(id).name();
    }
  }
}

TEST_F(OptimizerTest, DisablingPairsIsMonotoneToo) {
  RandomQueryGenerator generator(&db_->catalog(), 99);
  for (int i = 0; i < 10; ++i) {
    Query query = generator.Generate();
    auto base = optimizer_->Optimize(query);
    if (!base.ok()) continue;
    std::vector<RuleId> logical;
    for (RuleId id : base->exercised_rules) {
      if (registry_->rule(id).type() == RuleType::kExploration) {
        logical.push_back(id);
      }
    }
    for (size_t a = 0; a < logical.size(); ++a) {
      for (size_t b = a + 1; b < logical.size() && b < a + 3; ++b) {
        OptimizerOptions options;
        options.disabled_rules = {logical[a], logical[b]};
        auto restricted = optimizer_->Optimize(query, options);
        ASSERT_TRUE(restricted.ok());
        EXPECT_GE(restricted->cost, base->cost - 1e-6);
      }
    }
  }
}

TEST_F(OptimizerTest, InvalidQueryRejected) {
  Query empty;
  EXPECT_FALSE(optimizer_->Optimize(empty).ok());
}

TEST_F(OptimizerTest, DeterministicAcrossInvocations) {
  auto reg = std::make_shared<ColumnRegistry>();
  auto nation = Get("nation", reg.get());
  auto region = Get("region", reg.get());
  auto join = std::make_shared<JoinOp>(
      JoinKind::kInner, nation, region,
      Eq(Col(nation->columns()[2], ValueType::kInt64),
         Col(region->columns()[0], ValueType::kInt64)));
  Query query{join, reg};
  auto a = optimizer_->Optimize(query);
  auto b = optimizer_->Optimize(query);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->cost, b->cost);
  EXPECT_TRUE(PhysicalTreeEquals(*a->plan, *b->plan));
  EXPECT_EQ(a->exercised_rules, b->exercised_rules);
}

TEST_F(OptimizerTest, LojSimplificationFiresWithNullRejectingFilter) {
  auto reg = std::make_shared<ColumnRegistry>();
  auto nation = Get("nation", reg.get());
  auto region = Get("region", reg.get());
  auto loj = std::make_shared<JoinOp>(
      JoinKind::kLeftOuter, nation, region,
      Eq(Col(nation->columns()[2], ValueType::kInt64),
         Col(region->columns()[0], ValueType::kInt64)));
  auto select = std::make_shared<SelectOp>(
      loj, Eq(Col(region->columns()[1], ValueType::kString),
              LitString("ASIA")));
  Query query{select, reg};
  auto result = optimizer_->Optimize(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exercised_rules.count(Id("LojToJoin")) > 0);

  // With an IS NULL filter instead (not null-rejecting), the rule must not
  // fire.
  auto select2 = std::make_shared<SelectOp>(
      loj, IsNull(Col(region->columns()[1], ValueType::kString)));
  Query query2{select2, reg};
  auto result2 = optimizer_->Optimize(query2);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->exercised_rules.count(Id("LojToJoin")), 0u);
}

}  // namespace
}  // namespace qtf
