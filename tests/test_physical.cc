// Physical operator metadata: output columns, descriptions, structural
// equality (the basis for the skip-identical-plans optimization), and the
// cost model's qualitative ordering.

#include <gtest/gtest.h>

#include "exec/physical.h"
#include "optimizer/cost_model.h"
#include "storage/tpch.h"

namespace qtf {
namespace {

class PhysicalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTpchDatabase(TpchConfig{}).value();
    registry_ = std::make_shared<ColumnRegistry>();
    auto nation_def = db_->catalog().GetTable("nation").value();
    auto region_def = db_->catalog().GetTable("region").value();
    for (const ColumnDef& col : nation_def->columns()) {
      nation_cols_.push_back(registry_->Allocate("nation." + col.name,
                                                 col.type));
    }
    for (const ColumnDef& col : region_def->columns()) {
      region_cols_.push_back(registry_->Allocate("region." + col.name,
                                                 col.type));
    }
    nation_scan_ = std::make_shared<TableScanOp>(nation_def, nation_cols_);
    region_scan_ = std::make_shared<TableScanOp>(region_def, region_cols_);
  }

  std::unique_ptr<Database> db_;
  ColumnRegistryPtr registry_;
  std::vector<ColumnId> nation_cols_, region_cols_;
  PhysicalOpPtr nation_scan_, region_scan_;
};

TEST_F(PhysicalTest, OutputColumnsPerOperator) {
  auto filter = std::make_shared<FilterOp>(
      nation_scan_, Eq(Col(nation_cols_[0], ValueType::kInt64), LitInt(1)));
  EXPECT_EQ(filter->OutputColumns(), nation_cols_);

  auto inner = std::make_shared<NlJoinOp>(JoinKind::kInner, nation_scan_,
                                          region_scan_, nullptr);
  EXPECT_EQ(inner->OutputColumns().size(),
            nation_cols_.size() + region_cols_.size());

  auto semi = std::make_shared<NlJoinOp>(JoinKind::kLeftSemi, nation_scan_,
                                         region_scan_, nullptr);
  EXPECT_EQ(semi->OutputColumns(), nation_cols_);

  auto anti = std::make_shared<HashJoinOp>(
      JoinKind::kLeftAnti, nation_scan_, region_scan_,
      std::vector<std::pair<ColumnId, ColumnId>>{
          {nation_cols_[2], region_cols_[0]}},
      nullptr);
  EXPECT_EQ(anti->OutputColumns(), nation_cols_);

  ColumnId cnt = registry_->Allocate("cnt", ValueType::kInt64);
  auto agg = std::make_shared<HashAggregateOp>(
      nation_scan_, std::vector<ColumnId>{nation_cols_[2]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt}});
  EXPECT_EQ(agg->OutputColumns(),
            (std::vector<ColumnId>{nation_cols_[2], cnt}));
}

TEST_F(PhysicalTest, DescribeMentionsTheInterestingArguments) {
  auto resolver = registry_->MakeResolver();
  EXPECT_NE(nation_scan_->Describe(&resolver).find("nation"),
            std::string::npos);
  auto hash = std::make_shared<HashJoinOp>(
      JoinKind::kLeftOuter, nation_scan_, region_scan_,
      std::vector<std::pair<ColumnId, ColumnId>>{
          {nation_cols_[2], region_cols_[0]}},
      nullptr);
  std::string desc = hash->Describe(&resolver);
  EXPECT_NE(desc.find("LeftOuter"), std::string::npos);
  EXPECT_NE(desc.find("n_regionkey"), std::string::npos);

  ColumnId cnt = registry_->Allocate("cnt2", ValueType::kInt64);
  auto stream = std::make_shared<StreamAggregateOp>(
      nation_scan_, std::vector<ColumnId>{nation_cols_[2]},
      std::vector<AggregateItem>{
          {AggregateCall{AggKind::kCountStar, nullptr}, cnt}});
  EXPECT_NE(stream->Describe(&resolver).find("COUNT(*)"), std::string::npos);
}

TEST_F(PhysicalTest, TreeEqualsDistinguishesArguments) {
  auto f1 = std::make_shared<FilterOp>(
      nation_scan_, Eq(Col(nation_cols_[0], ValueType::kInt64), LitInt(1)));
  auto f2 = std::make_shared<FilterOp>(
      nation_scan_, Eq(Col(nation_cols_[0], ValueType::kInt64), LitInt(1)));
  auto f3 = std::make_shared<FilterOp>(
      nation_scan_, Eq(Col(nation_cols_[0], ValueType::kInt64), LitInt(2)));
  EXPECT_TRUE(PhysicalTreeEquals(*f1, *f2));
  EXPECT_FALSE(PhysicalTreeEquals(*f1, *f3));
  EXPECT_FALSE(PhysicalTreeEquals(*f1, *nation_scan_));
}

TEST_F(PhysicalTest, TreeEqualsDistinguishesJoinShape) {
  std::vector<std::pair<ColumnId, ColumnId>> pairs = {
      {nation_cols_[2], region_cols_[0]}};
  auto hash_a = std::make_shared<HashJoinOp>(JoinKind::kInner, nation_scan_,
                                             region_scan_, pairs, nullptr);
  auto hash_b = std::make_shared<HashJoinOp>(JoinKind::kInner, nation_scan_,
                                             region_scan_, pairs, nullptr);
  auto hash_semi = std::make_shared<HashJoinOp>(
      JoinKind::kLeftSemi, nation_scan_, region_scan_, pairs, nullptr);
  auto nl = std::make_shared<NlJoinOp>(JoinKind::kInner, nation_scan_,
                                       region_scan_, nullptr);
  EXPECT_TRUE(PhysicalTreeEquals(*hash_a, *hash_b));
  EXPECT_FALSE(PhysicalTreeEquals(*hash_a, *hash_semi));
  EXPECT_FALSE(PhysicalTreeEquals(*hash_a, *nl));
}

TEST_F(PhysicalTest, TreeEqualsRecursesIntoChildren) {
  auto f1 = std::make_shared<FilterOp>(
      nation_scan_, Eq(Col(nation_cols_[0], ValueType::kInt64), LitInt(1)));
  auto sort_a =
      std::make_shared<SortOp>(f1, std::vector<ColumnId>{nation_cols_[0]});
  auto sort_b = std::make_shared<SortOp>(
      nation_scan_, std::vector<ColumnId>{nation_cols_[0]});
  EXPECT_FALSE(PhysicalTreeEquals(*sort_a, *sort_b));
}

TEST_F(PhysicalTest, PhysicalTreeToStringIndentsChildren) {
  auto filter = std::make_shared<FilterOp>(
      nation_scan_, Eq(Col(nation_cols_[0], ValueType::kInt64), LitInt(1)));
  std::string out = PhysicalTreeToString(*filter, nullptr);
  EXPECT_NE(out.find("Filter"), std::string::npos);
  EXPECT_NE(out.find("\n  TableScan"), std::string::npos);
}

TEST(PhysicalOpKindTest, AllKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(PhysicalOpKind::kHashDistinct); ++k) {
    EXPECT_STRNE(PhysicalOpKindToString(static_cast<PhysicalOpKind>(k)), "?");
  }
}

// ---- cost model qualitative ordering ----

TEST(CostModelTest, HashJoinBeatsNlJoinAtScale) {
  CostModel model;
  EXPECT_LT(model.HashJoin(1000, 1000), model.NlJoin(1000, 1000));
  // But tiny inputs can be cheaper with NL (no build side).
  EXPECT_GT(model.HashJoin(1, 2), 0.0);
}

TEST(CostModelTest, CostsScaleWithInput) {
  CostModel model;
  EXPECT_LT(model.TableScan(10), model.TableScan(1000));
  EXPECT_LT(model.Filter(10), model.Filter(1000));
  EXPECT_LT(model.HashAggregate(10), model.HashAggregate(1000));
  EXPECT_LT(model.Sort(10), model.Sort(1000));
}

TEST(CostModelTest, SortIsSuperlinear) {
  CostModel model;
  EXPECT_GT(model.Sort(10000) / model.Sort(100), 100.0);
}

TEST(CostModelTest, StreamAggregateCheaperThanHashOnSortedInput) {
  // The optimizer charges StreamAgg + Sort vs HashAgg; StreamAgg alone must
  // be cheaper so sorted inputs can win.
  CostModel model;
  EXPECT_LT(model.StreamAggregate(1000), model.HashAggregate(1000));
}

TEST(CostModelTest, NlJoinAsymmetric) {
  // Probing a small inner with a big outer differs from the reverse: the
  // left (outer) side carries the per-row setup term.
  CostModel model;
  EXPECT_NE(model.NlJoin(10, 1000), model.NlJoin(1000, 10));
}

}  // namespace
}  // namespace qtf
