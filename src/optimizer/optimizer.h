#ifndef QTF_OPTIMIZER_OPTIMIZER_H_
#define QTF_OPTIMIZER_OPTIMIZER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/budget.h"
#include "common/fault_injection.h"
#include "common/result.h"
#include "exec/physical.h"
#include "logical/interner.h"
#include "logical/query.h"
#include "obs/metrics.h"
#include "optimizer/cost_model.h"
#include "optimizer/rule.h"

namespace qtf {

class PlanCache;

/// A set of rule ids — RuleSet(q) in the paper's notation.
using RuleIdSet = std::set<RuleId>;

/// Per-invocation optimizer configuration. `disabled_rules` implements the
/// paper's Plan(q, ¬R) extension: the listed rules are never applied, which
/// can only shrink the search space (so Cost(q) <= Cost(q, ¬R) holds by
/// construction — the property both TopKIndependent's approximation bound
/// and the monotonicity pruning rely on).
struct OptimizerOptions {
  RuleIdSet disabled_rules;
  /// When set, overrides the optimizer-level plan cache for this
  /// invocation (see Optimizer::set_plan_cache). Borrowed, not owned.
  PlanCache* plan_cache = nullptr;
  /// Limits on this search. An all-unlimited budget (the default) falls
  /// back to Optimizer::set_default_budget. When a limit trips, the search
  /// keeps the memo it has, still implements and costs it, and returns the
  /// best plan found so far with `budget_exhausted` set; it only errors
  /// (kDeadlineExceeded / kResourceExhausted) when nothing is plannable.
  SearchBudget budget;
  /// Polled at task-loop granularity; a triggered token makes Optimize
  /// return kCancelled promptly (no partial result).
  CancellationToken cancel;
  /// Decorrelates fault-injection decisions across retries of the same
  /// query: callers bump this per attempt so a deterministic injector
  /// re-rolls its per-search decisions (see docs/robustness.md).
  uint64_t fault_salt = 0;
};

/// Result of optimizing one query.
struct OptimizeResult {
  PhysicalOpPtr plan;
  double cost = 0.0;
  /// RuleSet(q): ids of rules whose substitution function was invoked
  /// during this optimization (pattern matched and preconditions held).
  RuleIdSet exercised_rules;
  /// Search statistics.
  int group_count = 0;
  int64_t expr_count = 0;
  bool saturated = false;
  /// True when a SearchBudget limit truncated exploration: `plan` is the
  /// best of the expressions explored in time, so `cost` is an upper bound
  /// on the unbudgeted Cost(q, ¬R). Budget-exhausted results are never
  /// inserted into the plan cache.
  bool budget_exhausted = false;
};

/// The transformation-based query optimizer (paper Section 2.1) with the
/// two testing extensions of Section 2.3: RuleSet tracking and rule
/// disabling.
///
/// Optimize() is thread-safe: each invocation searches its own
/// stack-allocated memo, the registry and cost model are read-only, the
/// invocation counter is atomic and the plan cache locks internally. This
/// is what lets EdgeCostProvider fan independent Cost(q, ¬R) invocations
/// across a ThreadPool (see docs/parallelism.md).
class Optimizer {
 public:
  /// `rules` and `cost_model` must outlive the optimizer. `metrics` is the
  /// registry all search accounting lands in (invocations, rules fired per
  /// RuleId, memo sizes — see docs/observability.md); when null the
  /// optimizer owns a private registry, so accounting behaves identically
  /// with or without the RuleTestFramework facade.
  explicit Optimizer(const RuleRegistry* rules,
                     obs::MetricsRegistry* metrics = nullptr);
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Optimizes `query`, returning the best physical plan, its estimated
  /// cost, and RuleSet(query).
  Result<OptimizeResult> Optimize(const Query& query,
                                  const OptimizerOptions& options);

  /// Convenience overload with default options.
  Result<OptimizeResult> Optimize(const Query& query) {
    return Optimize(query, OptimizerOptions{});
  }

  const RuleRegistry& rules() const { return *rules_; }
  const CostModel& cost_model() const { return cost_model_; }

  /// Appends qtf.optimizer.rule_fired.<name> / rule_apply.<name> counters
  /// for rules registered after construction (runtime-loaded DSL rules).
  /// Existing counters keep their pointers. Callers that grow the registry
  /// (e.g. the service's LoadRules) must not run this concurrently with
  /// Optimize() — the service serializes via its registry lock. Without a
  /// sync, late rules are simply uncounted, never out of bounds.
  void SyncRuleMetrics();

  /// Default plan cache consulted by every Optimize() call whose options
  /// don't carry their own (nullptr disables caching). Borrowed; the cache
  /// must outlive the optimizer's use of it. A cache hit still counts as an
  /// invocation — only the search is skipped — so invocation-count-based
  /// experiments (Figure 14) are unaffected by caching.
  void set_plan_cache(PlanCache* cache) { plan_cache_ = cache; }
  PlanCache* plan_cache() const { return plan_cache_; }

  /// Budget applied to every Optimize() whose options carry an unlimited
  /// budget; default unlimited. Set from RuleTestFramework::Options::
  /// default_budget.
  void set_default_budget(const SearchBudget& budget) {
    default_budget_ = budget;
  }
  const SearchBudget& default_budget() const { return default_budget_; }

  /// Fault injector probed at the optimizer's named sites (plan_cache.get,
  /// optimizer.apply_rule). Borrowed, not owned; nullptr (the default)
  /// removes every probe. Components built around this optimizer
  /// (EdgeCostProvider, CorrectnessRunner) inherit it, the same way they
  /// inherit metrics().
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
  }
  FaultInjector* fault_injector() const { return fault_injector_; }

  /// Retry policy components that hang off this optimizer use for
  /// transient (kUnavailable) errors. The optimizer itself never retries —
  /// a search is all-or-nothing — it only carries the policy, like
  /// metrics(), so the framework has one place to configure it.
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Number of Optimize() calls made so far — a view over the registry's
  /// `qtf.optimizer.invocations` counter. The monotonicity experiment
  /// (paper Section 5.3.1 / Figure 14) counts optimizer invocations saved.
  int64_t invocation_count() const { return invocations_->Value(); }

  /// The registry this optimizer reports into (never null): the
  /// framework-wide registry when one was injected, else the private one.
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Hash-consing interner every Optimize() canonicalizes its input tree
  /// through before cache keying and search (never null; the optimizer
  /// owns a default instance reporting qtf.interner.* into metrics()).
  /// Canonicalization is purely structural, so results are identical with
  /// any interner — sharing one across components just collapses
  /// structurally-equal trees to pointer-shared nodes (see
  /// docs/architecture.md).
  NodeInterner* interner() const { return interner_; }

  /// Replaces the interner used by Optimize(); nullptr restores the owned
  /// default. Borrowed, must outlive the optimizer's use of it.
  void set_interner(NodeInterner* interner) {
    interner_ = interner != nullptr ? interner : owned_interner_.get();
  }

 private:
  const RuleRegistry* rules_;
  CostModel cost_model_;
  PlanCache* plan_cache_ = nullptr;
  SearchBudget default_budget_;
  FaultInjector* fault_injector_ = nullptr;
  RetryPolicy retry_policy_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // when none injected
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<NodeInterner> owned_interner_;
  NodeInterner* interner_ = nullptr;
  obs::Counter* invocations_ = nullptr;
  obs::Counter* searches_ = nullptr;   // invocations that ran a full search
  obs::Counter* saturated_ = nullptr;  // searches that hit the memo limit
  obs::Histogram* memo_groups_ = nullptr;
  obs::Histogram* memo_exprs_ = nullptr;
  obs::Histogram* search_seconds_ = nullptr;
  obs::Counter* budget_exhausted_ = nullptr;  // qtf.robustness.*
  obs::Counter* cancelled_ = nullptr;
  /// Per RuleId: searches in which the rule fired (produced a substitute).
  std::vector<obs::Counter*> rule_fired_;
  /// Per RuleId: applications that produced output (every binding counts,
  /// not once per search) — qtf.optimizer.rule_apply.<name>.
  std::vector<obs::Counter*> rule_apply_;
};

}  // namespace qtf

#endif  // QTF_OPTIMIZER_OPTIMIZER_H_
