#include "optimizer/optimizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <optional>

#include "logical/validate.h"
#include "optimizer/memo.h"
#include "optimizer/plan_cache.h"

namespace qtf {
namespace {

/// Drives exploration, implementation, costing and extraction over one
/// memo. Stack-allocated per Optimize() call.
class SearchEngine {
 public:
  SearchEngine(const RuleRegistry& rules, const CostModel& cost_model,
               const OptimizerOptions& options, const SearchBudget& budget,
               FaultInjector* fault_injector,
               const std::vector<obs::Counter*>* rule_apply)
      : rules_(rules),
        cost_model_(cost_model),
        options_(options),
        budget_(budget),
        deadline_(budget.wall_seconds > 0.0
                      ? Deadline::After(budget.wall_seconds)
                      : Deadline::Never()),
        fault_injector_(fault_injector),
        rule_apply_(rule_apply),
        memo_(rules.size()) {}

  Result<OptimizeResult> Run(const Query& query) {
    int root = memo_.InsertTree(*query.root);
    QTF_RETURN_NOT_OK(Explore());
    if (memo_.saturated() && std::getenv("QTF_DEBUG_MEMO") != nullptr) {
      DumpMemoStats();
    }
    QTF_RETURN_NOT_OK(Implement());
    double cost = BestCost(root);
    if (!std::isfinite(cost)) {
      // With exploration truncated by a budget the failure is the budget's
      // fault, not a planner invariant violation.
      if (deadline_exhausted_) {
        return Status::DeadlineExceeded(
            "search budget expired before any plan was found");
      }
      if (budget_exhausted_) {
        return Status::ResourceExhausted(
            "memo budget exhausted before any plan was found");
      }
      return Status::Internal("no finite-cost plan found for query");
    }
    QTF_ASSIGN_OR_RETURN(PhysicalOpPtr plan, Extract(root));

    // Normalize the root output order to the query's declared order (group
    // expressions agree on the output *set*, not its order). The reorder is
    // pure bookkeeping -- charging for it would make the reported cost
    // depend on *which* equivalent expression won and break the
    // monotonicity guarantee Cost(q) <= Cost(q, not R).
    std::vector<ColumnId> want = query.root->OutputColumns();
    if (plan->OutputColumns() != want) {
      std::vector<ProjectItem> items;
      items.reserve(want.size());
      for (ColumnId id : want) {
        items.push_back(
            ProjectItem{Col(id, query.registry->TypeOf(id)), id});
      }
      plan = std::make_shared<ComputeOp>(std::move(plan), std::move(items));
    }

    OptimizeResult result;
    result.plan = std::move(plan);
    result.cost = cost;
    result.exercised_rules = std::move(exercised_);
    result.group_count = memo_.group_count();
    result.expr_count = memo_.expr_count();
    result.saturated = memo_.saturated();
    result.budget_exhausted = budget_exhausted_ || deadline_exhausted_;
    return result;
  }

 private:
  void DumpMemoStats() {
    std::vector<std::pair<size_t, int>> sizes;
    for (int g = 0; g < memo_.group_count(); ++g) {
      sizes.emplace_back(memo_.group(g).exprs.size(), g);
    }
    std::sort(sizes.rbegin(), sizes.rend());
    std::cerr << "top groups:";
    for (size_t i = 0; i < std::min<size_t>(sizes.size(), 10); ++i) {
      std::cerr << " g" << sizes[i].second << "=" << sizes[i].first;
    }
    std::cerr << "\n";
    for (int g = 0; g < memo_.group_count(); ++g) {
      const Group& grp = memo_.group(g);
      if (static_cast<int>(grp.exprs.size()) <
          (sizes.empty() ? 50 : std::max<int>(50, static_cast<int>(sizes[0].first)))) continue;
      std::cerr << "group " << g << ": " << grp.exprs.size() << " exprs\n";
      for (size_t i = 0; i < std::min<size_t>(grp.exprs.size(), 8); ++i) {
        std::cerr << "  " << grp.exprs[i]->op->Describe(nullptr) << " [";
        for (int c : grp.exprs[i]->child_groups) std::cerr << c << " ";
        std::cerr << "]\n";
      }
    }
  }

  bool IsDisabled(const Rule& rule) const {
    return options_.disabled_rules.count(rule.id()) > 0;
  }

  void CountApplication(RuleId id) const {
    if (rule_apply_ != nullptr &&
        static_cast<size_t>(id) < rule_apply_->size()) {
      (*rule_apply_)[static_cast<size_t>(id)]->Increment();
    }
  }

  /// Budget check at task-loop granularity. The memo dimensions are exact
  /// integer compares (deterministic truncation point); the wall clock is
  /// only consulted every kDeadlineStride checks to keep the probe cheap.
  bool BudgetExhausted() {
    if (budget_exhausted_ || deadline_exhausted_) return true;
    if (budget_.max_memo_exprs > 0 &&
        memo_.expr_count() >= budget_.max_memo_exprs) {
      budget_exhausted_ = true;
      return true;
    }
    if (budget_.max_memo_groups > 0 &&
        memo_.group_count() >= budget_.max_memo_groups) {
      budget_exhausted_ = true;
      return true;
    }
    if (!deadline_.never() &&
        (++deadline_checks_ % kDeadlineStride) == 0 && deadline_.expired()) {
      deadline_exhausted_ = true;
      return true;
    }
    return false;
  }

  /// Applies exploration rules to fixpoint. A rule is (re)applied to an
  /// expression whenever the memo has grown since its last application, so
  /// multi-level patterns eventually see all bindings. Exploration is the
  /// unbounded part of the search, so this is where budgets and
  /// cancellation are enforced: a tripped budget stops adding expressions
  /// (the caller still implements and costs what exists), a cancelled
  /// token aborts with kCancelled.
  Status Explore() {
    bool changed = true;
    while (changed && !memo_.saturated() && !BudgetExhausted()) {
      changed = false;
      for (int g = 0; g < memo_.group_count(); ++g) {
        // Index loop: exprs/groups grow during iteration.
        for (size_t ei = 0; ei < memo_.group(g).exprs.size(); ++ei) {
          if (options_.cancel.cancelled()) {
            return Status::Cancelled("optimization cancelled mid-search");
          }
          if (BudgetExhausted()) return Status::OK();
          for (const auto& rule_ptr : rules_.rules()) {
            if (rule_ptr->type() != RuleType::kExploration) continue;
            const auto& rule =
                static_cast<const ExplorationRule&>(*rule_ptr);
            if (IsDisabled(rule)) continue;
            int64_t version = memo_.expr_count();
            {
              GroupExpr& expr = *memo_.group(g).exprs[ei];
              if (expr.applied_version[static_cast<size_t>(rule.id())] ==
                  version) {
                continue;
              }
              expr.applied_version[static_cast<size_t>(rule.id())] = version;
            }
            // Note: expr references may be invalidated by insertions below;
            // re-fetch through the memo each time.
            std::vector<LogicalOpPtr> bindings =
                memo_.BindPattern(*memo_.group(g).exprs[ei], *rule.pattern());
            if (!bindings.empty() && fault_injector_ != nullptr &&
                fault_injector_->enabled()) {
              // Key: where in the search we are, mixed with the caller's
              // salt so a retried invocation re-rolls the decision.
              uint64_t key = (static_cast<uint64_t>(g) << 40) ^
                             (static_cast<uint64_t>(ei) << 20) ^
                             static_cast<uint64_t>(rule.id()) ^
                             options_.fault_salt * 0x9e3779b97f4a7c15ULL;
              QTF_RETURN_NOT_OK(fault_injector_->Probe(
                  fault_sites::kOptimizerApplyRule, key));
            }
            for (const LogicalOpPtr& bound : bindings) {
              std::vector<LogicalOpPtr> outputs;
              rule.Apply(*bound, &outputs);
              if (!outputs.empty()) {
                exercised_.insert(rule.id());
                CountApplication(rule.id());
              }
              for (const LogicalOpPtr& output : outputs) {
                auto [group_id, added] = memo_.Insert(output, g);
                (void)group_id;
                if (added) changed = true;
              }
            }
          }
        }
      }
    }
    return Status::OK();
  }

  /// Applies implementation rules to every logical expression. Runs even
  /// after a tripped budget — it is bounded by the memo size and is what
  /// turns the truncated search into a usable best-so-far plan — but still
  /// honours cancellation.
  Status Implement() {
    for (int g = 0; g < memo_.group_count(); ++g) {
      if (options_.cancel.cancelled()) {
        return Status::Cancelled("optimization cancelled mid-implementation");
      }
      Group& grp = memo_.group(g);
      for (const auto& expr : grp.exprs) {
        for (const auto& rule_ptr : rules_.rules()) {
          if (rule_ptr->type() != RuleType::kImplementation) continue;
          const auto& rule =
              static_cast<const ImplementationRule&>(*rule_ptr);
          if (IsDisabled(rule)) continue;
          if (!MatchesPattern(*expr->op, *rule.pattern())) continue;
          size_t before = grp.alternatives.size();
          rule.Apply(*expr->op, cost_model_, &grp.alternatives);
          if (grp.alternatives.size() > before) {
            exercised_.insert(rule.id());
            CountApplication(rule.id());
          }
        }
      }
      grp.implemented = true;
    }
    return Status::OK();
  }

  double BestCost(int g) {
    Group& grp = memo_.group(g);
    switch (grp.cost_state) {
      case Group::CostState::kDone:
        return grp.best_cost;
      case Group::CostState::kInProgress:
        // Cycle guard; should not occur (memo is a DAG by construction).
        return std::numeric_limits<double>::infinity();
      case Group::CostState::kUntouched:
        break;
    }
    grp.cost_state = Group::CostState::kInProgress;
    double best = std::numeric_limits<double>::infinity();
    int best_idx = -1;
    for (size_t i = 0; i < grp.alternatives.size(); ++i) {
      const PhysicalAlternative& alt = grp.alternatives[i];
      double cost = alt.local_cost;
      for (int child : alt.child_groups) {
        cost += BestCost(child);
        if (!std::isfinite(cost)) break;
      }
      if (cost < best) {
        best = cost;
        best_idx = static_cast<int>(i);
      }
    }
    grp.best_cost = best;
    grp.best_alternative = best_idx;
    grp.cost_state = Group::CostState::kDone;
    return best;
  }

  Result<PhysicalOpPtr> Extract(int g) {
    Group& grp = memo_.group(g);
    if (grp.best_plan != nullptr) return grp.best_plan;
    if (grp.best_alternative < 0) {
      return Status::Internal("group " + std::to_string(g) +
                              " has no physical alternative");
    }
    const PhysicalAlternative& alt =
        grp.alternatives[static_cast<size_t>(grp.best_alternative)];
    std::vector<PhysicalOpPtr> child_plans;
    child_plans.reserve(alt.child_groups.size());
    for (int child : alt.child_groups) {
      QTF_ASSIGN_OR_RETURN(PhysicalOpPtr child_plan, Extract(child));
      child_plans.push_back(std::move(child_plan));
    }
    grp.best_plan = alt.build(child_plans);
    QTF_CHECK(grp.best_plan != nullptr);
    return grp.best_plan;
  }

  const RuleRegistry& rules_;
  const CostModel& cost_model_;
  const OptimizerOptions& options_;
  const SearchBudget& budget_;
  Deadline deadline_;
  FaultInjector* fault_injector_;
  /// Per RuleId: total applications that produced output (may be null in
  /// contexts without metrics). Indexed defensively — the registry can be
  /// larger than the counter vector if a caller registered rules without
  /// calling Optimizer::SyncRuleMetrics().
  const std::vector<obs::Counter*>* rule_apply_;
  Memo memo_;
  RuleIdSet exercised_;
  bool budget_exhausted_ = false;
  bool deadline_exhausted_ = false;
  /// The wall clock is only read every kDeadlineStride budget checks.
  static constexpr int64_t kDeadlineStride = 64;
  int64_t deadline_checks_ = 0;
};

}  // namespace

Optimizer::Optimizer(const RuleRegistry* rules, obs::MetricsRegistry* metrics)
    : rules_(rules) {
  QTF_CHECK(rules_ != nullptr);
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  invocations_ = metrics_->counter("qtf.optimizer.invocations");
  searches_ = metrics_->counter("qtf.optimizer.searches");
  saturated_ = metrics_->counter("qtf.optimizer.saturated");
  memo_groups_ = metrics_->histogram("qtf.optimizer.memo_groups");
  memo_exprs_ = metrics_->histogram("qtf.optimizer.memo_exprs");
  search_seconds_ = metrics_->histogram("qtf.optimizer.search_seconds");
  budget_exhausted_ = metrics_->counter("qtf.robustness.budget_exhausted");
  cancelled_ = metrics_->counter("qtf.robustness.cancelled");
  owned_interner_ = std::make_unique<NodeInterner>();
  owned_interner_->set_metrics(metrics_);
  interner_ = owned_interner_.get();
  SyncRuleMetrics();
}

void Optimizer::SyncRuleMetrics() {
  rule_fired_.reserve(static_cast<size_t>(rules_->size()));
  rule_apply_.reserve(static_cast<size_t>(rules_->size()));
  for (int id = static_cast<int>(rule_fired_.size()); id < rules_->size();
       ++id) {
    rule_fired_.push_back(metrics_->counter("qtf.optimizer.rule_fired." +
                                            rules_->rule(id).name()));
  }
  for (int id = static_cast<int>(rule_apply_.size()); id < rules_->size();
       ++id) {
    rule_apply_.push_back(metrics_->counter("qtf.optimizer.rule_apply." +
                                            rules_->rule(id).name()));
  }
}

Result<OptimizeResult> Optimizer::Optimize(const Query& query,
                                           const OptimizerOptions& options) {
  if (!query.valid()) {
    return Status::InvalidArgument("query has no root or registry");
  }
  // A cache hit below still counts as an invocation — only the search is
  // skipped — so invocation-count experiments are cache-independent.
  invocations_->Increment();
  if (options.cancel.cancelled()) {
    cancelled_->Increment();
    return Status::Cancelled("optimization cancelled before search");
  }
  QTF_RETURN_NOT_OK(ValidateTree(*query.root, *query.registry));
  // Canonicalize the input through the interner: structurally-equal roots
  // collapse to one shared instance whose fingerprint and subtree size are
  // cached, so the cache keying below and every rehash inside the search
  // are O(1) lookups instead of full-tree walks. The canonical tree is
  // LogicalTreeEquals-identical to the input, so results are unchanged.
  Query canonical = query;
  canonical.root = interner_->Intern(query.root);
  PlanCache* cache =
      options.plan_cache != nullptr ? options.plan_cache : plan_cache_;
  if (cache != nullptr && fault_injector_ != nullptr &&
      fault_injector_->enabled()) {
    // An unavailable cache is degraded around, not fatal: this invocation
    // just searches from scratch (and skips the insert, so a flaky cache
    // never stores anything it could not have served).
    uint64_t key = TreeFingerprint(*canonical.root) ^
                   options.fault_salt * 0x9e3779b97f4a7c15ULL;
    if (!fault_injector_->Probe(fault_sites::kPlanCacheGet, key).ok()) {
      cache = nullptr;
    }
  }
  if (cache != nullptr) {
    std::optional<OptimizeResult> hit =
        cache->Lookup(canonical, options.disabled_rules);
    if (hit.has_value()) return *std::move(hit);
  }
  searches_->Increment();
  const SearchBudget& budget =
      options.budget.unlimited() ? default_budget_ : options.budget;
  SearchEngine engine(*rules_, cost_model_, options, budget, fault_injector_,
                      &rule_apply_);
  const auto search_start = std::chrono::steady_clock::now();
  Result<OptimizeResult> result = engine.Run(canonical);
  search_seconds_->Observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - search_start)
                               .count());
  if (result.ok()) {
    memo_groups_->Observe(static_cast<double>(result->group_count));
    memo_exprs_->Observe(static_cast<double>(result->expr_count));
    if (result->saturated) saturated_->Increment();
    if (result->budget_exhausted) budget_exhausted_->Increment();
    for (RuleId id : result->exercised_rules) {
      // Registry growth without SyncRuleMetrics() leaves late rules
      // uncounted rather than out of bounds.
      if (static_cast<size_t>(id) < rule_fired_.size()) {
        rule_fired_[static_cast<size_t>(id)]->Increment();
      }
    }
  } else if (result.status().code() == StatusCode::kCancelled) {
    cancelled_->Increment();
  }
  // Budget-exhausted results are upper bounds, not Cost(q, not R); caching
  // them would poison later unbudgeted lookups of the same key.
  if (cache != nullptr && result.ok() && !result->budget_exhausted) {
    cache->Insert(canonical, options.disabled_rules, result.value());
  }
  return result;
}

}  // namespace qtf
