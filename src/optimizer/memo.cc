#include "optimizer/memo.h"

namespace qtf {

LogicalOpPtr Memo::MakeGroupRef(int group_id) const {
  const Group& g = group(group_id);
  // One shared leaf per group (memo-local hash-consing): bound trees built
  // during exploration all point at the same GroupRef instance instead of
  // allocating a fresh one per bind. Safe because Group objects (and so
  // their props) are stable behind unique_ptr for the memo's lifetime.
  if (group_ref_cache_.size() < groups_.size()) {
    group_ref_cache_.resize(groups_.size());
  }
  LogicalOpPtr& slot = group_ref_cache_[static_cast<size_t>(group_id)];
  if (slot == nullptr) {
    slot = std::make_shared<GroupRefOp>(group_id, &g.props);
  }
  return slot;
}

int Memo::NewGroup(LogicalProps props) {
  auto g = std::make_unique<Group>();
  g->id = group_count();
  g->props = std::move(props);
  groups_.push_back(std::move(g));
  return groups_.back()->id;
}

int Memo::InsertTree(const LogicalOp& op) {
  if (op.kind() == LogicalOpKind::kGroupRef) {
    return static_cast<const GroupRefOp&>(op).group_id();
  }
  std::vector<int> child_groups;
  child_groups.reserve(op.children().size());
  for (const LogicalOpPtr& child : op.children()) {
    child_groups.push_back(InsertTree(*child));
  }
  return InsertNormalized(op, child_groups, /*bound_hint=*/nullptr,
                          /*target_group=*/-1)
      .first;
}

std::pair<int, bool> Memo::Insert(const LogicalOpPtr& op, int target_group) {
  QTF_CHECK(op != nullptr);
  if (op->kind() == LogicalOpKind::kGroupRef) {
    // Degenerate rule output: the whole expression is an existing group.
    return {static_cast<const GroupRefOp&>(*op).group_id(), false};
  }
  // Normalize children to group ids (recursively inserting new subtrees).
  std::vector<int> child_groups;
  child_groups.reserve(op->children().size());
  bool all_refs = true;
  for (const LogicalOpPtr& child : op->children()) {
    if (child->kind() == LogicalOpKind::kGroupRef) {
      child_groups.push_back(static_cast<const GroupRefOp&>(*child).group_id());
    } else {
      child_groups.push_back(InsertTree(*child));
      all_refs = false;
    }
  }
  // When the expression is already in bound form (every child a GroupRef —
  // the common case for rule outputs built over bound inputs), it can be
  // stored as-is instead of being cloned.
  return InsertNormalized(*op, child_groups, all_refs ? &op : nullptr,
                          target_group);
}

std::pair<int, bool> Memo::InsertNormalized(const LogicalOp& op,
                                            const std::vector<int>& child_groups,
                                            const LogicalOpPtr* bound_hint,
                                            int target_group) {
  // Dedup before materializing: LocalHash/LocalEquals exclude children, so
  // the signature lookup works on `op` directly and duplicate insertions
  // (the overwhelming majority once exploration converges) never pay for a
  // WithNewChildren clone.
  Signature sig{op.LocalHash(), child_groups};
  auto [begin, end] = signature_index_.equal_range(sig);
  for (auto it = begin; it != end; ++it) {
    const auto& [g, idx] = it->second;
    const GroupExpr& existing = *group(g).exprs[static_cast<size_t>(idx)];
    if (existing.op->LocalEquals(op) &&
        existing.child_groups == child_groups) {
      // Known expression. If it already lives in the target group (or no
      // target), nothing to do.
      if (target_group < 0 || g == target_group) return {g, false};
      // Expression known in another group: fall through and also add it to
      // the target group (group merging is intentionally not implemented;
      // see DESIGN.md). Per-group dedup below prevents duplicates.
      break;
    }
  }

  LogicalOpPtr bound;
  if (bound_hint != nullptr) {
    bound = *bound_hint;
  } else {
    std::vector<LogicalOpPtr> ref_children;
    ref_children.reserve(child_groups.size());
    for (int cg : child_groups) ref_children.push_back(MakeGroupRef(cg));
    bound = op.WithNewChildren(std::move(ref_children));
  }

  int g = target_group;
  if (g < 0) {
    // Derive properties for a fresh group from this expression.
    std::vector<const LogicalProps*> child_props;
    child_props.reserve(child_groups.size());
    for (int cg : child_groups) child_props.push_back(&group(cg).props);
    g = NewGroup(DeriveProps(*bound, child_props));
  }

  Group& grp = group(g);
  // Per-group dedup.
  for (const auto& existing : grp.exprs) {
    if (existing->op->LocalEquals(*bound) &&
        existing->child_groups == child_groups) {
      return {g, false};
    }
  }
  if (expr_count_ >= kMaxTotalExprs ||
      static_cast<int>(grp.exprs.size()) >= kMaxGroupExprs) {
    saturated_ = true;
    return {g, false};
  }

  auto expr = std::make_unique<GroupExpr>();
  expr->op = bound;
  expr->child_groups = child_groups;
  expr->applied_version.assign(static_cast<size_t>(rule_count_), -1);
  grp.exprs.push_back(std::move(expr));
  ++expr_count_;
  signature_index_.emplace(
      sig, std::make_pair(g, static_cast<int>(grp.exprs.size()) - 1));
  return {g, true};
}

namespace {

void CrossProduct(
    const std::vector<std::vector<LogicalOpPtr>>& options, size_t index,
    std::vector<LogicalOpPtr>* current,
    const LogicalOpPtr& op, std::vector<LogicalOpPtr>* out, int max_bindings) {
  if (static_cast<int>(out->size()) >= max_bindings) return;
  if (index == options.size()) {
    // When every chosen child is the expression's own stored child (true
    // for any single-level pattern, whose non-root positions are all
    // placeholders), the binding IS the stored expression: share it
    // instead of cloning a structurally-identical copy.
    bool same = current->size() == op->children().size();
    for (size_t i = 0; same && i < current->size(); ++i) {
      same = (*current)[i].get() == op->children()[i].get();
    }
    out->push_back(same ? op : op->WithNewChildren(*current));
    return;
  }
  for (const LogicalOpPtr& option : options[index]) {
    current->push_back(option);
    CrossProduct(options, index + 1, current, op, out, max_bindings);
    current->pop_back();
    if (static_cast<int>(out->size()) >= max_bindings) return;
  }
}

bool RootMatches(const LogicalOp& op, const PatternNode& pattern) {
  if (pattern.type() == PatternNode::Type::kAny) return true;
  if (op.kind() != pattern.op_kind()) return false;
  if (pattern.join_kind().has_value() &&
      static_cast<const JoinOp&>(op).join_kind() != *pattern.join_kind()) {
    return false;
  }
  return op.children().size() == pattern.children().size();
}

}  // namespace

std::vector<LogicalOpPtr> Memo::BindPattern(const GroupExpr& expr,
                                            const PatternNode& pattern) const {
  std::vector<LogicalOpPtr> out;
  if (!RootMatches(*expr.op, pattern)) return out;
  if (pattern.type() == PatternNode::Type::kAny) {
    out.push_back(expr.op);
    return out;
  }
  std::vector<std::vector<LogicalOpPtr>> options(pattern.children().size());
  for (size_t i = 0; i < pattern.children().size(); ++i) {
    const PatternNode& child_pattern = *pattern.children()[i];
    int child_group = expr.child_groups[i];
    if (child_pattern.type() == PatternNode::Type::kAny) {
      // Reuse the stored GroupRef leaf.
      options[i].push_back(expr.op->children()[i]);
    } else {
      const Group& cg = group(child_group);
      for (const auto& child_expr : cg.exprs) {
        std::vector<LogicalOpPtr> sub = BindPattern(*child_expr, child_pattern);
        options[i].insert(options[i].end(), sub.begin(), sub.end());
        if (static_cast<int>(options[i].size()) >= kMaxBindings) break;
      }
    }
    if (options[i].empty()) return {};
  }
  std::vector<LogicalOpPtr> current;
  CrossProduct(options, 0, &current, expr.op, &out, kMaxBindings);
  return out;
}

}  // namespace qtf
