#include "optimizer/plan_cache.h"

#include "common/hash.h"

namespace qtf {

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {
  QTF_CHECK(capacity_ >= 1) << "plan cache capacity must be positive";
}

void PlanCache::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    metric_hits_ = nullptr;
    metric_misses_ = nullptr;
    metric_evictions_ = nullptr;
    metric_size_ = nullptr;
    return;
  }
  metric_hits_ = metrics->counter("qtf.plan_cache.hits");
  metric_misses_ = metrics->counter("qtf.plan_cache.misses");
  metric_evictions_ = metrics->counter("qtf.plan_cache.evictions");
  metric_size_ = metrics->gauge("qtf.plan_cache.size");
  metric_size_->Set(static_cast<int64_t>(lru_.size()));
}

uint64_t PlanCache::KeyHash(const LogicalOp& root,
                            const RuleIdSet& disabled_rules) {
  // TreeFingerprint is memoized on the node, so re-keying an interned (or
  // previously fingerprinted) root is one atomic load, not a tree walk.
  uint64_t h = TreeFingerprint(root);
  // RuleIdSet is ordered, so this fold is canonical for the set.
  for (RuleId id : disabled_rules) {
    h = HashCombine(h, static_cast<uint64_t>(id));
  }
  return h;
}

PlanCache::EntryList::iterator PlanCache::FindLocked(
    uint64_t key_hash, const LogicalOp& root,
    const RuleIdSet& disabled_rules) {
  auto [begin, end] = index_.equal_range(key_hash);
  for (auto it = begin; it != end; ++it) {
    Entry& entry = *it->second;
    if (entry.disabled_rules == disabled_rules &&
        LogicalTreeEquals(*entry.root, root)) {
      return it->second;
    }
  }
  return lru_.end();
}

std::optional<OptimizeResult> PlanCache::Lookup(
    const Query& query, const RuleIdSet& disabled_rules) {
  const uint64_t key_hash = KeyHash(*query.root, disabled_rules);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = FindLocked(key_hash, *query.root, disabled_rules);
  if (it == lru_.end()) {
    ++misses_;
    if (metric_misses_ != nullptr) metric_misses_->Increment();
    return std::nullopt;
  }
  ++hits_;
  if (metric_hits_ != nullptr) metric_hits_->Increment();
  lru_.splice(lru_.begin(), lru_, it);  // refresh recency
  return it->result;
}

void PlanCache::Insert(const Query& query, const RuleIdSet& disabled_rules,
                       const OptimizeResult& result) {
  const uint64_t key_hash = KeyHash(*query.root, disabled_rules);
  std::lock_guard<std::mutex> lock(mu_);
  if (FindLocked(key_hash, *query.root, disabled_rules) != lru_.end()) {
    return;  // concurrent miss/compute of the same key; keep the first
  }
  while (lru_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    auto [begin, end] = index_.equal_range(victim.key_hash);
    for (auto it = begin; it != end; ++it) {
      if (it->second == std::prev(lru_.end())) {
        index_.erase(it);
        break;
      }
    }
    lru_.pop_back();
    ++evictions_;
    if (metric_evictions_ != nullptr) metric_evictions_->Increment();
  }
  lru_.push_front(Entry{key_hash, query.root, disabled_rules, result});
  index_.emplace(key_hash, lru_.begin());
  if (metric_size_ != nullptr) {
    metric_size_->Set(static_cast<int64_t>(lru_.size()));
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  if (metric_size_ != nullptr) metric_size_->Set(0);
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

int64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

double PlanCache::hit_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) /
                                static_cast<double>(total);
}

}  // namespace qtf
