#include "optimizer/cost_model.h"

#include <cmath>

namespace qtf {

double CostModel::Log2(double x) { return std::log2(x); }

}  // namespace qtf
