#ifndef QTF_OPTIMIZER_MEMO_H_
#define QTF_OPTIMIZER_MEMO_H_

#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "logical/ops.h"
#include "logical/props.h"
#include "optimizer/rule.h"
#include "pattern/pattern.h"

namespace qtf {

/// One logical expression inside a memo group: an operator whose children
/// are GroupRefOp leaves pointing at other groups.
struct GroupExpr {
  LogicalOpPtr op;
  std::vector<int> child_groups;
  /// Per-rule memo version (total expression count) at the last application
  /// of that rule to this expression; -1 = never applied. Exploration
  /// re-applies a rule when the memo has grown since, so multi-level
  /// patterns see bindings that materialized later.
  std::vector<int64_t> applied_version;
};

/// An equivalence class of logical expressions plus its physical
/// alternatives and costing state.
struct Group {
  int id = -1;
  LogicalProps props;
  std::vector<std::unique_ptr<GroupExpr>> exprs;

  std::vector<PhysicalAlternative> alternatives;
  bool implemented = false;

  // Costing / extraction state.
  enum class CostState { kUntouched, kInProgress, kDone };
  CostState cost_state = CostState::kUntouched;
  double best_cost = std::numeric_limits<double>::infinity();
  int best_alternative = -1;
  PhysicalOpPtr best_plan;  // memoized extraction
};

/// The Cascades-style memo: groups of equivalent logical expressions with
/// global deduplication on (operator arguments, child group ids).
class Memo {
 public:
  /// `rule_count` sizes the per-expression applied-rule bookkeeping.
  explicit Memo(int rule_count) : rule_count_(rule_count) {}
  Memo(const Memo&) = delete;
  Memo& operator=(const Memo&) = delete;

  /// Recursively copies a plain logical tree into the memo; returns the
  /// root group id. GroupRef leaves are resolved to their groups.
  int InsertTree(const LogicalOp& op);

  /// Inserts an expression produced by a rule. Children may be GroupRefs
  /// (reused groups) or fresh operator subtrees (inserted recursively).
  /// `target_group` is the group the root expression belongs to, or -1 to
  /// place it by global lookup (creating a new group if unseen).
  /// Returns {group id, whether a new expression was added}. Duplicate
  /// insertions are detected from `op` in place (no bound-form clone); an
  /// already-bound `op` (all children GroupRefs) is stored as-is.
  std::pair<int, bool> Insert(const LogicalOpPtr& op, int target_group);

  Group& group(int id) {
    QTF_CHECK(id >= 0 && static_cast<size_t>(id) < groups_.size());
    return *groups_[static_cast<size_t>(id)];
  }
  const Group& group(int id) const {
    QTF_CHECK(id >= 0 && static_cast<size_t>(id) < groups_.size());
    return *groups_[static_cast<size_t>(id)];
  }

  int group_count() const { return static_cast<int>(groups_.size()); }
  int64_t expr_count() const { return expr_count_; }
  bool saturated() const { return saturated_; }

  /// Enumerates the bound trees of `expr` against `pattern` (top-anchored):
  /// placeholder positions become the expression's GroupRef children;
  /// operator-pattern children are expanded against every matching
  /// expression of the child group. At most `kMaxBindings` trees.
  std::vector<LogicalOpPtr> BindPattern(const GroupExpr& expr,
                                        const PatternNode& pattern) const;

  /// Returns the GroupRef leaf for a group (shared, stable props pointer).
  /// Memoized: every call for the same group returns the same instance.
  LogicalOpPtr MakeGroupRef(int group_id) const;

  /// Search-space limits; exploration stops adding expressions beyond them
  /// (saturated() turns true). Well-behaved rule sets stay far below these
  /// (hundreds of expressions for typical test queries); the caps bound the
  /// damage when a *buggy* rule pollutes groups with inequivalent
  /// expressions and exploration stops converging.
  static constexpr int64_t kMaxTotalExprs = 6000;
  static constexpr int kMaxGroupExprs = 160;
  static constexpr int kMaxBindings = 64;

 private:
  struct Signature {
    size_t local_hash;
    std::vector<int> child_groups;
    bool operator==(const Signature& other) const = default;
  };
  struct SignatureHash {
    size_t operator()(const Signature& sig) const {
      size_t h = sig.local_hash;
      for (int g : sig.child_groups) {
        h = h * 1099511628211ULL + static_cast<size_t>(g);
      }
      return h;
    }
  };

  int NewGroup(LogicalProps props);

  /// Shared implementation of InsertTree/Insert once children are resolved
  /// to group ids. `bound_hint`, when non-null, is `op` already in bound
  /// form (children are GroupRef leaves) and is stored directly; otherwise
  /// the bound form is materialized only if the expression is new.
  std::pair<int, bool> InsertNormalized(const LogicalOp& op,
                                        const std::vector<int>& child_groups,
                                        const LogicalOpPtr* bound_hint,
                                        int target_group);

  int rule_count_;
  std::vector<std::unique_ptr<Group>> groups_;
  int64_t expr_count_ = 0;
  bool saturated_ = false;
  /// Global dedup: expression signature -> (group, expr index). Hash
  /// collisions resolved by LocalEquals on the stored op.
  std::unordered_multimap<Signature, std::pair<int, int>, SignatureHash>
      signature_index_;
  /// Lazily-built shared GroupRef leaves, one slot per group (see
  /// MakeGroupRef). Mutable: memoization only, and a memo is confined to
  /// one search thread.
  mutable std::vector<LogicalOpPtr> group_ref_cache_;
};

}  // namespace qtf

#endif  // QTF_OPTIMIZER_MEMO_H_
