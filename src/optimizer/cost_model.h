#ifndef QTF_OPTIMIZER_COST_MODEL_H_
#define QTF_OPTIMIZER_COST_MODEL_H_

namespace qtf {

/// Cost model for physical operators. Costs are in abstract "tuple work"
/// units derived from estimated input/output cardinalities; the paper's
/// compression experiments likewise use the optimizer's estimated cost
/// (Section 6.2.2), so these need to be *relatively* sensible, not
/// calibrated to hardware.
class CostModel {
 public:
  CostModel() = default;

  double TableScan(double rows) const { return rows; }
  double Filter(double input_rows) const { return 0.2 * input_rows; }
  double Compute(double input_rows) const { return 0.2 * input_rows; }
  /// Nested-loops join: quadratic in inputs.
  double NlJoin(double left_rows, double right_rows) const {
    return left_rows + 0.3 * left_rows * right_rows;
  }
  /// Hash join: linear build + probe.
  double HashJoin(double left_rows, double right_rows) const {
    return 1.2 * right_rows + 1.0 * left_rows;
  }
  double HashAggregate(double input_rows) const { return 1.5 * input_rows; }
  double StreamAggregate(double input_rows) const { return 0.6 * input_rows; }
  double Sort(double rows) const { return 0.15 * rows * Log2(rows + 2.0); }
  double Concat(double left_rows, double right_rows) const {
    return 0.1 * (left_rows + right_rows);
  }
  double HashDistinct(double input_rows) const { return 1.3 * input_rows; }

 private:
  static double Log2(double x);
};

}  // namespace qtf

#endif  // QTF_OPTIMIZER_COST_MODEL_H_
