#ifndef QTF_OPTIMIZER_RULE_H_
#define QTF_OPTIMIZER_RULE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/physical.h"
#include "logical/ops.h"
#include "optimizer/cost_model.h"
#include "pattern/pattern.h"

namespace qtf {

/// Identifier of a transformation rule; assigned by the RuleRegistry in
/// registration order and stable for a given registry.
using RuleId = int;

/// Exploration (logical) rules rewrite logical trees into equivalent
/// logical trees; implementation (physical) rules produce physical
/// operators (paper Section 2.1).
enum class RuleType {
  kExploration = 0,
  kImplementation,
};

/// Where a rule came from: compiled into the binary, or loaded at runtime
/// from a declarative .qtr spec (src/ruledsl/). Reported by the service's
/// ListRules introspection so operators can tell the two apart.
enum class RuleOrigin {
  kBuiltin = 0,
  kDsl,
};

/// One physical alternative proposed by an implementation rule for a group
/// expression: the inputs (as memo groups), the operator's own cost, and a
/// deferred constructor that assembles the physical node once the best
/// child plans are chosen.
struct PhysicalAlternative {
  std::vector<int> child_groups;
  double local_cost = 0.0;
  std::function<PhysicalOpPtr(const std::vector<PhysicalOpPtr>&)> build;
};

/// A transformation rule: (name, pattern, substitute) triple as in the
/// Cascades framework [13]. The pattern is exported through the testing API
/// (paper Section 3.1); the substitute is the Apply method of the concrete
/// subclass (ExplorationRule or ImplementationRule).
class Rule {
 public:
  Rule(std::string name, RuleType type, PatternNodePtr pattern)
      : name_(std::move(name)), type_(type), pattern_(std::move(pattern)) {
    QTF_CHECK(pattern_ != nullptr);
  }
  virtual ~Rule() = default;
  Rule(const Rule&) = delete;
  Rule& operator=(const Rule&) = delete;

  const std::string& name() const { return name_; }
  RuleType type() const { return type_; }
  const PatternNodePtr& pattern() const { return pattern_; }

  /// Assigned by the RuleRegistry.
  RuleId id() const { return id_; }
  void set_id(RuleId id) { id_ = id; }

  /// kBuiltin unless tagged otherwise (the DSL compiler tags kDsl).
  RuleOrigin origin() const { return origin_; }
  void set_origin(RuleOrigin origin) { origin_ = origin; }

 private:
  std::string name_;
  RuleType type_;
  PatternNodePtr pattern_;
  RuleId id_ = -1;
  RuleOrigin origin_ = RuleOrigin::kBuiltin;
};

/// Logical-to-logical rule. `bound` is a tree matching the rule's pattern
/// whose placeholder positions are GroupRefOp leaves (carrying group
/// properties for precondition checks). Apply appends zero or more
/// equivalent trees to `out`; output trees may reuse the bound GroupRefs
/// and/or introduce new operator subtrees. Bound trees and their GroupRef
/// leaves are shared instances owned by the memo (Memo::MakeGroupRef
/// memoizes one leaf per group), so rules must treat `bound` as immutable
/// and build outputs by sharing, never by mutating — the same contract the
/// NodeInterner relies on for the fully-logical trees outside the memo.
class ExplorationRule : public Rule {
 public:
  ExplorationRule(std::string name, PatternNodePtr pattern)
      : Rule(std::move(name), RuleType::kExploration, std::move(pattern)) {}

  virtual void Apply(const LogicalOp& bound,
                     std::vector<LogicalOpPtr>* out) const = 0;
};

/// Logical-to-physical rule. `bound` is a single operator over GroupRef
/// children. Apply appends physical alternatives (with their local costs
/// per `cost_model`) to `out`.
class ImplementationRule : public Rule {
 public:
  ImplementationRule(std::string name, PatternNodePtr pattern)
      : Rule(std::move(name), RuleType::kImplementation, std::move(pattern)) {}

  virtual void Apply(const LogicalOp& bound, const CostModel& cost_model,
                     std::vector<PhysicalAlternative>* out) const = 0;
};

/// Owns the full rule set of the optimizer (R = {r1..rn} in the paper) and
/// assigns RuleIds.
class RuleRegistry {
 public:
  RuleRegistry() = default;
  RuleRegistry(const RuleRegistry&) = delete;
  RuleRegistry& operator=(const RuleRegistry&) = delete;

  /// Registers a rule and assigns its id. Returns the id.
  RuleId Register(std::unique_ptr<Rule> rule);

  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  const Rule& rule(RuleId id) const {
    QTF_CHECK(id >= 0 && static_cast<size_t>(id) < rules_.size());
    return *rules_[static_cast<size_t>(id)];
  }
  int size() const { return static_cast<int>(rules_.size()); }

  /// Lookup by name; -1 if absent.
  RuleId FindByName(const std::string& name) const;

  /// Ids of all exploration (logical) rules, in id order. These are the
  /// rules the paper's experiments target.
  std::vector<RuleId> ExplorationRuleIds() const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

}  // namespace qtf

#endif  // QTF_OPTIMIZER_RULE_H_
