#include "optimizer/rule.h"

namespace qtf {

RuleId RuleRegistry::Register(std::unique_ptr<Rule> rule) {
  QTF_CHECK(rule != nullptr);
  RuleId id = static_cast<RuleId>(rules_.size());
  rule->set_id(id);
  rules_.push_back(std::move(rule));
  return id;
}

RuleId RuleRegistry::FindByName(const std::string& name) const {
  for (const auto& rule : rules_) {
    if (rule->name() == name) return rule->id();
  }
  return -1;
}

std::vector<RuleId> RuleRegistry::ExplorationRuleIds() const {
  std::vector<RuleId> ids;
  for (const auto& rule : rules_) {
    if (rule->type() == RuleType::kExploration) ids.push_back(rule->id());
  }
  return ids;
}

}  // namespace qtf
