#ifndef QTF_OPTIMIZER_PLAN_CACHE_H_
#define QTF_OPTIMIZER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "optimizer/optimizer.h"

namespace qtf {

/// Thread-safe LRU cache of OptimizeResults, keyed by (canonical
/// logical-tree fingerprint, disabled-rule set). Suite generation and
/// compression both optimize the same queries — with and without rules
/// disabled — many times across experiments; attaching one cache to the
/// optimizer (Optimizer::set_plan_cache) lets them share that work.
///
/// Keying: the hash key mixes TreeFingerprint(query root) with the ordered
/// disabled-rule ids; hash collisions are resolved by comparing the
/// disabled set and the stored tree with LogicalTreeEquals, so a hit is
/// exact, never probabilistic. Entries keep the keyed tree alive via
/// shared_ptr.
///
/// All operations lock one internal mutex; the cache is safe to share
/// between concurrent Optimize() calls (the parallel edge-cost path).
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 4096);
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached result for (query, disabled_rules) and counts a
  /// hit (refreshing LRU recency), or nullopt and counts a miss.
  std::optional<OptimizeResult> Lookup(const Query& query,
                                       const RuleIdSet& disabled_rules);

  /// Caches `result` under (query, disabled_rules), evicting the least
  /// recently used entry when full. Re-inserting an existing key is a
  /// no-op (first write wins; results are deterministic anyway).
  void Insert(const Query& query, const RuleIdSet& disabled_rules,
              const OptimizeResult& result);

  void Clear();

  size_t capacity() const { return capacity_; }
  size_t size() const;
  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  /// hits / (hits + misses); 0 when never consulted.
  double hit_rate() const;

 private:
  struct Entry {
    uint64_t key_hash = 0;
    LogicalOpPtr root;  // keeps the fingerprinted tree alive
    RuleIdSet disabled_rules;
    OptimizeResult result;
  };
  using EntryList = std::list<Entry>;

  static uint64_t KeyHash(const LogicalOp& root,
                          const RuleIdSet& disabled_rules);

  /// Locates the exact entry for (hash, root, disabled) or lru_.end().
  EntryList::iterator FindLocked(uint64_t key_hash, const LogicalOp& root,
                                 const RuleIdSet& disabled_rules);

  const size_t capacity_;
  mutable std::mutex mu_;
  EntryList lru_;  // front = most recently used
  std::unordered_multimap<uint64_t, EntryList::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace qtf

#endif  // QTF_OPTIMIZER_PLAN_CACHE_H_
