#ifndef QTF_OPTIMIZER_PLAN_CACHE_H_
#define QTF_OPTIMIZER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "obs/metrics.h"
#include "optimizer/optimizer.h"

namespace qtf {

/// Thread-safe LRU cache of OptimizeResults, keyed by (canonical
/// logical-tree fingerprint, disabled-rule set). Suite generation and
/// compression both optimize the same queries — with and without rules
/// disabled — many times across experiments; attaching one cache to the
/// optimizer (Optimizer::set_plan_cache) lets them share that work.
///
/// Keying: the hash key mixes TreeFingerprint(query root) with the ordered
/// disabled-rule ids; hash collisions are resolved by comparing the
/// disabled set and the stored tree with LogicalTreeEquals, so a hit is
/// exact, never probabilistic. Entries keep the keyed tree alive via
/// shared_ptr. Fingerprints are cached on the nodes themselves and the
/// optimizer canonicalizes roots through its NodeInterner before keying,
/// so steady-state lookups hash in O(1) and resolve equality by pointer
/// identity (see docs/architecture.md).
///
/// All operations lock one internal mutex; the cache is safe to share
/// between concurrent Optimize() calls (the parallel edge-cost path).
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 4096);
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached result for (query, disabled_rules) and counts a
  /// hit (refreshing LRU recency), or nullopt and counts a miss.
  std::optional<OptimizeResult> Lookup(const Query& query,
                                       const RuleIdSet& disabled_rules);

  /// Caches `result` under (query, disabled_rules), evicting the least
  /// recently used entry when full. Re-inserting an existing key is a
  /// no-op (first write wins; results are deterministic anyway).
  void Insert(const Query& query, const RuleIdSet& disabled_rules,
              const OptimizeResult& result);

  void Clear();

  /// Mirrors hit/miss/eviction accounting into `metrics` as the
  /// qtf.plan_cache.* counters and the qtf.plan_cache.size gauge, on top of
  /// the per-cache accessors below. Registry counters are cumulative across
  /// the registry's lifetime — Clear() resets the accessors but never the
  /// registry. Borrowed; pass nullptr to stop reporting.
  void set_metrics(obs::MetricsRegistry* metrics);

  size_t capacity() const { return capacity_; }
  size_t size() const;
  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  /// hits / (hits + misses); 0 when never consulted.
  double hit_rate() const;

 private:
  struct Entry {
    uint64_t key_hash = 0;
    LogicalOpPtr root;  // keeps the fingerprinted tree alive
    RuleIdSet disabled_rules;
    OptimizeResult result;
  };
  using EntryList = std::list<Entry>;

  static uint64_t KeyHash(const LogicalOp& root,
                          const RuleIdSet& disabled_rules);

  /// Locates the exact entry for (hash, root, disabled) or lru_.end().
  EntryList::iterator FindLocked(uint64_t key_hash, const LogicalOp& root,
                                 const RuleIdSet& disabled_rules);

  const size_t capacity_;
  mutable std::mutex mu_;
  EntryList lru_;  // front = most recently used
  std::unordered_multimap<uint64_t, EntryList::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
  obs::Gauge* metric_size_ = nullptr;
};

/// RAII replacement for the old `optimizer()->set_plan_cache(nullptr)`
/// detach idiom: detaches the optimizer's plan cache on construction (so
/// every search runs cold) and restores the previous cache on scope exit,
/// even on early returns. Used by cold-search benchmarks
/// (bench_parallel_scaling) and tests.
class PlanCacheDetachGuard {
 public:
  explicit PlanCacheDetachGuard(Optimizer* optimizer)
      : optimizer_(optimizer), detached_(optimizer->plan_cache()) {
    optimizer_->set_plan_cache(nullptr);
  }
  ~PlanCacheDetachGuard() { optimizer_->set_plan_cache(detached_); }
  PlanCacheDetachGuard(const PlanCacheDetachGuard&) = delete;
  PlanCacheDetachGuard& operator=(const PlanCacheDetachGuard&) = delete;

  /// The cache that was detached and will be restored (may be null).
  PlanCache* detached() const { return detached_; }

 private:
  Optimizer* optimizer_;
  PlanCache* detached_;
};

}  // namespace qtf

#endif  // QTF_OPTIMIZER_PLAN_CACHE_H_
