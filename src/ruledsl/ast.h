#ifndef QTF_RULEDSL_AST_H_
#define QTF_RULEDSL_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "logical/ops.h"

namespace qtf {
namespace ruledsl {

/// 1-based source position, carried through compilation so semantic errors
/// point back into the .qtr text.
struct SourceLoc {
  int line = 1;
  int col = 1;
};

/// One node of a `match` clause. Placeholders ($X) bind whole subtrees;
/// labeled operator nodes (l: select(...)) expose their predicate /
/// output-ids to guards and rewrite templates.
struct PatternSpec {
  enum class Kind {
    kPlaceholder,  // $NAME — lowered to PatternNode::Any, binds the subtree
    kAnyOp,        // any   — lowered to PatternNode::Any, binds nothing
    kOp,           // concrete operator with children
  };

  Kind kind = Kind::kAnyOp;
  std::string binding;  // placeholder name (kPlaceholder)
  std::string label;    // optional "l:" label (kOp); empty if unlabeled
  LogicalOpKind op_kind = LogicalOpKind::kGet;  // kOp only
  std::optional<JoinKind> join_kind;            // kOp join only
  std::vector<PatternSpec> children;
  SourceLoc loc;
};

/// Predicate expression: evaluates to a (possibly null) conjunction over
/// predicates captured from labeled match nodes. kPred passes the captured
/// predicate through verbatim; every other form works on its conjunct list
/// (MakeConjunction re-canonicalizes on materialization, so list order is
/// irrelevant).
struct PredSpec {
  enum class Kind {
    kNone,      // none — the null predicate
    kPred,      // pred(label) — predicate of a labeled select/join
    kAnd,       // and(p, p, ...) — pooled conjuncts
    kHead,      // head(p) — first conjunct in syntactic order
    kTail,      // tail(p) — all conjuncts after the first
    kPushable,  // pushable(p, cols(...)) — conjuncts referencing only cols
    kResidual,  // residual(p, cols(...)) — the complement of pushable
  };

  Kind kind = Kind::kNone;
  std::string label;                // kPred
  std::vector<PredSpec> args;       // compound forms
  std::vector<std::string> cols;    // placeholder names (kPushable/kResidual)
  SourceLoc loc;
};

/// One guard term. A `when` line is an OR of terms; multiple `when` lines
/// AND together.
struct GuardTermSpec {
  enum class Kind {
    kRejectsNull,   // rejects_null(p, cols(...)) — p rejects all-NULL rows
    kRefsOnly,      // refs_only(p, cols(...)) — null p passes vacuously
    kIsNull,        // is_null(p)
    kNonNull,       // nonnull(p)
    kHasPushable,   // has_pushable(p, cols(...)) — at least one conjunct
    kMinConjuncts,  // min_conjuncts(p, N)
  };

  Kind kind = Kind::kIsNull;
  PredSpec pred;
  std::vector<std::string> cols;  // placeholder names
  int64_t min_count = 0;          // kMinConjuncts
  SourceLoc loc;
};

using GuardSpec = std::vector<GuardTermSpec>;  // one `when` line (OR of terms)

/// One node of a `rewrite` template. Placeholders splice the bound subtree
/// back in unchanged (share-don't-mutate: bound GroupRef leaves are
/// memo-owned).
struct TemplateSpec {
  enum class Kind {
    kPlaceholder,  // $NAME
    kJoin,         // join(kind, t, t, pexpr)
    kSelect,       // select(t, pexpr) — elided when pexpr is null
    kUnionAll,     // unionall(t, t, ids(label))
    kDistinct,     // distinct(t)
  };

  Kind kind = Kind::kPlaceholder;
  std::string binding;                // kPlaceholder
  std::optional<JoinKind> join_kind;  // kJoin
  std::vector<TemplateSpec> children;
  PredSpec predicate;    // kJoin/kSelect
  std::string ids_label;  // kUnionAll — labeled unionall supplying output ids
  SourceLoc loc;
};

/// One parsed rule: name + match pattern + ANDed when-lines + one or more
/// rewrite templates.
struct RuleSpec {
  std::string name;
  PatternSpec pattern;
  std::vector<GuardSpec> guards;
  std::vector<TemplateSpec> rewrites;
  SourceLoc loc;
};

}  // namespace ruledsl
}  // namespace qtf

#endif  // QTF_RULEDSL_AST_H_
