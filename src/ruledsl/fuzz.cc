#include "ruledsl/fuzz.h"

#include <vector>

namespace qtf {
namespace ruledsl {
namespace {

/// splitmix64: tiny, seed-stable, no global state.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  int Uniform(int bound) { return static_cast<int>(Next() % static_cast<uint64_t>(bound)); }

  bool Chance(int percent) { return Uniform(100) < percent; }

 private:
  uint64_t state_;
};

const char* const kPlaceholders[] = {"A", "B", "C", "D"};
const char* const kLabels[] = {"t", "l", "s", "u"};
const char* const kJoinKinds[] = {"inner", "louter", "lsemi", "lanti"};

struct GenState {
  std::vector<std::string> placeholders;  // bound in the match clause
  std::vector<std::string> pred_labels;   // labels on select/join nodes
  std::vector<std::string> union_labels;  // labels on unionall nodes
  int label_counter = 0;
};

std::string PickPlaceholder(Rng* rng, const GenState& state) {
  if (state.placeholders.empty() || rng->Chance(5)) {
    // Deliberately (possibly) unbound.
    return std::string("$") + kPlaceholders[rng->Uniform(4)] + "x";
  }
  return "$" + state.placeholders[rng->Uniform(
                   static_cast<int>(state.placeholders.size()))];
}

std::string GenPattern(Rng* rng, GenState* state, int depth) {
  if (depth >= 3 || rng->Chance(35 + depth * 20)) {
    if (rng->Chance(15)) return "any";
    if (rng->Chance(10)) return "get";
    std::string name = kPlaceholders[static_cast<int>(
        state->placeholders.size() % 4)];
    if (state->placeholders.size() >= 4) name += std::to_string(depth);
    state->placeholders.push_back(name);
    return "$" + name;
  }
  std::string label;
  if (rng->Chance(70)) {
    label = std::string(kLabels[rng->Uniform(4)]) +
            std::to_string(state->label_counter++);
  }
  std::string prefix = label.empty() ? "" : label + ": ";
  switch (rng->Uniform(5)) {
    case 0: {
      if (!label.empty()) state->pred_labels.push_back(label);
      return prefix + "join(" + kJoinKinds[rng->Uniform(4)] + ", " +
             GenPattern(rng, state, depth + 1) + ", " +
             GenPattern(rng, state, depth + 1) + ")";
    }
    case 1:
      if (!label.empty()) state->pred_labels.push_back(label);
      return prefix + "select(" + GenPattern(rng, state, depth + 1) + ")";
    case 2:
      if (!label.empty()) state->union_labels.push_back(label);
      return prefix + "unionall(" + GenPattern(rng, state, depth + 1) + ", " +
             GenPattern(rng, state, depth + 1) + ")";
    case 3:
      return prefix + "distinct(" + GenPattern(rng, state, depth + 1) + ")";
    default:
      return prefix + "groupby(" + GenPattern(rng, state, depth + 1) + ")";
  }
}

std::string GenColSet(Rng* rng, const GenState& state) {
  std::string out = "cols(" + PickPlaceholder(rng, state);
  if (rng->Chance(40)) out += ", " + PickPlaceholder(rng, state);
  return out + ")";
}

std::string GenPred(Rng* rng, const GenState& state, int depth) {
  if (depth >= 2 || state.pred_labels.empty() || rng->Chance(20)) {
    if (state.pred_labels.empty() || rng->Chance(25)) return "none";
    return "pred(" + state.pred_labels[rng->Uniform(static_cast<int>(
                         state.pred_labels.size()))] +
           ")";
  }
  switch (rng->Uniform(5)) {
    case 0:
      return "and(" + GenPred(rng, state, depth + 1) + ", " +
             GenPred(rng, state, depth + 1) + ")";
    case 1:
      return "head(" + GenPred(rng, state, depth + 1) + ")";
    case 2:
      return "tail(" + GenPred(rng, state, depth + 1) + ")";
    case 3:
      return "pushable(" + GenPred(rng, state, depth + 1) + ", " +
             GenColSet(rng, state) + ")";
    default:
      return "residual(" + GenPred(rng, state, depth + 1) + ", " +
             GenColSet(rng, state) + ")";
  }
}

std::string GenGuardTerm(Rng* rng, const GenState& state) {
  switch (rng->Uniform(6)) {
    case 0:
      return "rejects_null(" + GenPred(rng, state, 1) + ", " +
             GenColSet(rng, state) + ")";
    case 1:
      return "refs_only(" + GenPred(rng, state, 1) + ", " +
             GenColSet(rng, state) + ")";
    case 2:
      return "is_null(" + GenPred(rng, state, 1) + ")";
    case 3:
      return "nonnull(" + GenPred(rng, state, 1) + ")";
    case 4:
      return "has_pushable(" + GenPred(rng, state, 1) + ", " +
             GenColSet(rng, state) + ")";
    default:
      return "min_conjuncts(" + GenPred(rng, state, 1) + ", " +
             std::to_string(1 + rng->Uniform(3)) + ")";
  }
}

std::string GenTemplate(Rng* rng, const GenState& state, int depth) {
  if (depth >= 3 || rng->Chance(30 + depth * 25)) {
    return PickPlaceholder(rng, state);
  }
  switch (rng->Uniform(4)) {
    case 0:
      return "join(" + std::string(kJoinKinds[rng->Uniform(4)]) + ", " +
             GenTemplate(rng, state, depth + 1) + ", " +
             GenTemplate(rng, state, depth + 1) + ", " +
             GenPred(rng, state, 1) + ")";
    case 1:
      return "select(" + GenTemplate(rng, state, depth + 1) + ", " +
             GenPred(rng, state, 1) + ")";
    case 2: {
      std::string ids_label =
          !state.union_labels.empty() && !rng->Chance(10)
              ? state.union_labels[rng->Uniform(
                    static_cast<int>(state.union_labels.size()))]
              : (state.pred_labels.empty()
                     ? "nolabel"
                     : state.pred_labels[rng->Uniform(static_cast<int>(
                           state.pred_labels.size()))]);
      return "unionall(" + GenTemplate(rng, state, depth + 1) + ", " +
             GenTemplate(rng, state, depth + 1) + ", ids(" + ids_label + "))";
    }
    default:
      return "distinct(" + GenTemplate(rng, state, depth + 1) + ")";
  }
}

}  // namespace

std::string GenerateRuleSpec(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  GenState state;
  std::string out = "rule Fuzz" + std::to_string(seed) + " {\n";
  out += "  match " + GenPattern(&rng, &state, 0) + "\n";
  int guards = rng.Uniform(3);
  for (int i = 0; i < guards; ++i) {
    out += "  when " + GenGuardTerm(&rng, state);
    if (rng.Chance(25)) out += " or " + GenGuardTerm(&rng, state);
    out += "\n";
  }
  int rewrites = 1 + rng.Uniform(2);
  for (int i = 0; i < rewrites; ++i) {
    out += "  rewrite " + GenTemplate(&rng, state, 0) + "\n";
  }
  out += "}\n";
  return out;
}

std::string MutateRuleSpec(std::string_view spec, uint64_t seed) {
  Rng rng(seed ^ 0xd1b54a32d192ed03ULL);
  std::string out(spec);
  int edits = 1 + rng.Uniform(3);
  for (int i = 0; i < edits && !out.empty(); ++i) {
    int at = rng.Uniform(static_cast<int>(out.size()));
    switch (rng.Uniform(5)) {
      case 0:  // delete a character
        out.erase(static_cast<size_t>(at), 1);
        break;
      case 1:  // duplicate a character
        out.insert(static_cast<size_t>(at), 1, out[static_cast<size_t>(at)]);
        break;
      case 2:  // flip to a random printable byte
        out[static_cast<size_t>(at)] =
            static_cast<char>(' ' + rng.Uniform(95));
        break;
      case 3:  // truncate
        out.resize(static_cast<size_t>(at));
        break;
      default: {  // splice in a random token
        static const char* const kTokens[] = {"$A",   "pred", ")",     "(",
                                              "when", "}",    "match", "123"};
        out.insert(static_cast<size_t>(at), kTokens[rng.Uniform(8)]);
        break;
      }
    }
  }
  return out;
}

}  // namespace ruledsl
}  // namespace qtf
