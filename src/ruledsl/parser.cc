#include "ruledsl/parser.h"

#include <string>
#include <utility>

#include "ruledsl/lexer.h"

namespace qtf {
namespace ruledsl {
namespace {

// Nesting cap for patterns, templates, and predicate expressions. Deep
// enough for any sensible rule; shallow enough that hostile input cannot
// overflow the stack.
constexpr int kMaxDepth = 32;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<RuleSpec>> Run() {
    std::vector<RuleSpec> rules;
    while (Peek().kind != TokenKind::kEnd) {
      RuleSpec rule;
      QTF_RETURN_NOT_OK(ParseRule(&rule));
      rules.push_back(std::move(rule));
    }
    return rules;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t index = pos_ + ahead;
    if (index >= tokens_.size()) index = tokens_.size() - 1;  // kEnd
    return tokens_[index];
  }

  Token Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  static Status Error(const Token& at, const std::string& message) {
    return Status::InvalidArgument(
        "rule DSL parse error at " + std::to_string(at.line) + ":" +
        std::to_string(at.col) + ": " + message);
  }

  Status Expect(TokenKind kind, Token* out = nullptr) {
    if (Peek().kind != kind) {
      return Error(Peek(), std::string("expected ") + TokenKindToString(kind) +
                               ", got " + TokenKindToString(Peek().kind) +
                               (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
    }
    Token token = Advance();
    if (out != nullptr) *out = std::move(token);
    return Status::OK();
  }

  static SourceLoc Loc(const Token& token) { return {token.line, token.col}; }

  Status ParseRule(RuleSpec* rule) {
    Token keyword;
    QTF_RETURN_NOT_OK(Expect(TokenKind::kRule, &keyword));
    rule->loc = Loc(keyword);
    Token name;
    QTF_RETURN_NOT_OK(Expect(TokenKind::kIdent, &name));
    rule->name = std::move(name.text);
    QTF_RETURN_NOT_OK(Expect(TokenKind::kLBrace));
    QTF_RETURN_NOT_OK(Expect(TokenKind::kMatch));
    QTF_RETURN_NOT_OK(ParsePattern(&rule->pattern, 0));
    while (Peek().kind == TokenKind::kWhen) {
      Advance();
      GuardSpec guard;
      GuardTermSpec term;
      QTF_RETURN_NOT_OK(ParseGuardTerm(&term));
      guard.push_back(std::move(term));
      while (Peek().kind == TokenKind::kOr) {
        Advance();
        GuardTermSpec next;
        QTF_RETURN_NOT_OK(ParseGuardTerm(&next));
        guard.push_back(std::move(next));
      }
      rule->guards.push_back(std::move(guard));
    }
    if (Peek().kind != TokenKind::kRewrite) {
      return Error(Peek(), "rule '" + rule->name +
                               "' needs at least one rewrite clause");
    }
    while (Peek().kind == TokenKind::kRewrite) {
      Advance();
      TemplateSpec rewrite;
      QTF_RETURN_NOT_OK(ParseTemplate(&rewrite, 0));
      rule->rewrites.push_back(std::move(rewrite));
    }
    return Expect(TokenKind::kRBrace);
  }

  Status ParseJoinKind(std::optional<JoinKind>* kind) {
    Token token;
    QTF_RETURN_NOT_OK(Expect(TokenKind::kIdent, &token));
    if (token.text == "inner") {
      *kind = JoinKind::kInner;
    } else if (token.text == "louter") {
      *kind = JoinKind::kLeftOuter;
    } else if (token.text == "lsemi") {
      *kind = JoinKind::kLeftSemi;
    } else if (token.text == "lanti") {
      *kind = JoinKind::kLeftAnti;
    } else {
      return Error(token, "unknown join kind '" + token.text +
                              "' (expected inner|louter|lsemi|lanti)");
    }
    return Status::OK();
  }

  Status ParsePattern(PatternSpec* node, int depth) {
    if (depth >= kMaxDepth) {
      return Error(Peek(), "pattern nesting exceeds depth cap");
    }
    if (Peek().kind == TokenKind::kPlaceholder) {
      Token token = Advance();
      node->kind = PatternSpec::Kind::kPlaceholder;
      node->binding = std::move(token.text);
      node->loc = Loc(token);
      return Status::OK();
    }
    Token head;
    QTF_RETURN_NOT_OK(Expect(TokenKind::kIdent, &head));
    if (Peek().kind == TokenKind::kColon) {
      Advance();
      node->label = std::move(head.text);
      QTF_RETURN_NOT_OK(Expect(TokenKind::kIdent, &head));
    }
    node->loc = Loc(head);
    const std::string& op = head.text;
    if (op == "any") {
      if (!node->label.empty()) {
        return Error(head, "label '" + node->label +
                               "' requires a concrete operator, not 'any'");
      }
      node->kind = PatternSpec::Kind::kAnyOp;
      return Status::OK();
    }
    node->kind = PatternSpec::Kind::kOp;
    if (op == "get") {
      node->op_kind = LogicalOpKind::kGet;
      return Status::OK();
    }
    int arity = 0;
    if (op == "join") {
      node->op_kind = LogicalOpKind::kJoin;
      arity = 2;
    } else if (op == "select") {
      node->op_kind = LogicalOpKind::kSelect;
      arity = 1;
    } else if (op == "project") {
      node->op_kind = LogicalOpKind::kProject;
      arity = 1;
    } else if (op == "groupby") {
      node->op_kind = LogicalOpKind::kGroupByAgg;
      arity = 1;
    } else if (op == "unionall") {
      node->op_kind = LogicalOpKind::kUnionAll;
      arity = 2;
    } else if (op == "distinct") {
      node->op_kind = LogicalOpKind::kDistinct;
      arity = 1;
    } else {
      return Error(head, "unknown pattern operator '" + op + "'");
    }
    QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    if (node->op_kind == LogicalOpKind::kJoin) {
      QTF_RETURN_NOT_OK(ParseJoinKind(&node->join_kind));
      QTF_RETURN_NOT_OK(Expect(TokenKind::kComma));
    }
    for (int i = 0; i < arity; ++i) {
      if (i > 0) QTF_RETURN_NOT_OK(Expect(TokenKind::kComma));
      PatternSpec child;
      QTF_RETURN_NOT_OK(ParsePattern(&child, depth + 1));
      node->children.push_back(std::move(child));
    }
    return Expect(TokenKind::kRParen);
  }

  Status ParseColSet(std::vector<std::string>* cols) {
    Token head;
    QTF_RETURN_NOT_OK(Expect(TokenKind::kIdent, &head));
    if (head.text != "cols") {
      return Error(head, "expected cols(...), got '" + head.text + "'");
    }
    QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    Token placeholder;
    QTF_RETURN_NOT_OK(Expect(TokenKind::kPlaceholder, &placeholder));
    cols->push_back(std::move(placeholder.text));
    while (Peek().kind == TokenKind::kComma) {
      Advance();
      QTF_RETURN_NOT_OK(Expect(TokenKind::kPlaceholder, &placeholder));
      cols->push_back(std::move(placeholder.text));
    }
    return Expect(TokenKind::kRParen);
  }

  Status ParsePred(PredSpec* pred, int depth) {
    if (depth >= kMaxDepth) {
      return Error(Peek(), "predicate nesting exceeds depth cap");
    }
    Token head;
    QTF_RETURN_NOT_OK(Expect(TokenKind::kIdent, &head));
    pred->loc = Loc(head);
    const std::string& op = head.text;
    if (op == "none") {
      pred->kind = PredSpec::Kind::kNone;
      return Status::OK();
    }
    if (op == "pred") {
      pred->kind = PredSpec::Kind::kPred;
      QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      Token label;
      QTF_RETURN_NOT_OK(Expect(TokenKind::kIdent, &label));
      pred->label = std::move(label.text);
      return Expect(TokenKind::kRParen);
    }
    if (op == "and") {
      pred->kind = PredSpec::Kind::kAnd;
      QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      PredSpec arg;
      QTF_RETURN_NOT_OK(ParsePred(&arg, depth + 1));
      pred->args.push_back(std::move(arg));
      while (Peek().kind == TokenKind::kComma) {
        Advance();
        PredSpec next;
        QTF_RETURN_NOT_OK(ParsePred(&next, depth + 1));
        pred->args.push_back(std::move(next));
      }
      return Expect(TokenKind::kRParen);
    }
    if (op == "head" || op == "tail") {
      pred->kind =
          op == "head" ? PredSpec::Kind::kHead : PredSpec::Kind::kTail;
      QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      PredSpec arg;
      QTF_RETURN_NOT_OK(ParsePred(&arg, depth + 1));
      pred->args.push_back(std::move(arg));
      return Expect(TokenKind::kRParen);
    }
    if (op == "pushable" || op == "residual") {
      pred->kind = op == "pushable" ? PredSpec::Kind::kPushable
                                    : PredSpec::Kind::kResidual;
      QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      PredSpec arg;
      QTF_RETURN_NOT_OK(ParsePred(&arg, depth + 1));
      pred->args.push_back(std::move(arg));
      QTF_RETURN_NOT_OK(Expect(TokenKind::kComma));
      QTF_RETURN_NOT_OK(ParseColSet(&pred->cols));
      return Expect(TokenKind::kRParen);
    }
    return Error(head, "unknown predicate operator '" + op + "'");
  }

  Status ParseGuardTerm(GuardTermSpec* term) {
    Token head;
    QTF_RETURN_NOT_OK(Expect(TokenKind::kIdent, &head));
    term->loc = Loc(head);
    const std::string& op = head.text;
    bool wants_cols = false;
    bool wants_count = false;
    if (op == "rejects_null") {
      term->kind = GuardTermSpec::Kind::kRejectsNull;
      wants_cols = true;
    } else if (op == "refs_only") {
      term->kind = GuardTermSpec::Kind::kRefsOnly;
      wants_cols = true;
    } else if (op == "is_null") {
      term->kind = GuardTermSpec::Kind::kIsNull;
    } else if (op == "nonnull") {
      term->kind = GuardTermSpec::Kind::kNonNull;
    } else if (op == "has_pushable") {
      term->kind = GuardTermSpec::Kind::kHasPushable;
      wants_cols = true;
    } else if (op == "min_conjuncts") {
      term->kind = GuardTermSpec::Kind::kMinConjuncts;
      wants_count = true;
    } else {
      return Error(head, "unknown guard '" + op + "'");
    }
    QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    QTF_RETURN_NOT_OK(ParsePred(&term->pred, 0));
    if (wants_cols) {
      QTF_RETURN_NOT_OK(Expect(TokenKind::kComma));
      QTF_RETURN_NOT_OK(ParseColSet(&term->cols));
    }
    if (wants_count) {
      QTF_RETURN_NOT_OK(Expect(TokenKind::kComma));
      Token count;
      QTF_RETURN_NOT_OK(Expect(TokenKind::kIntLit, &count));
      if (count.int_value < 1) {
        return Error(count, "min_conjuncts count must be >= 1");
      }
      term->min_count = count.int_value;
    }
    return Expect(TokenKind::kRParen);
  }

  Status ParseTemplate(TemplateSpec* node, int depth) {
    if (depth >= kMaxDepth) {
      return Error(Peek(), "rewrite nesting exceeds depth cap");
    }
    if (Peek().kind == TokenKind::kPlaceholder) {
      Token token = Advance();
      node->kind = TemplateSpec::Kind::kPlaceholder;
      node->binding = std::move(token.text);
      node->loc = Loc(token);
      return Status::OK();
    }
    Token head;
    QTF_RETURN_NOT_OK(Expect(TokenKind::kIdent, &head));
    node->loc = Loc(head);
    const std::string& op = head.text;
    if (op == "join") {
      node->kind = TemplateSpec::Kind::kJoin;
      QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      QTF_RETURN_NOT_OK(ParseJoinKind(&node->join_kind));
      QTF_RETURN_NOT_OK(Expect(TokenKind::kComma));
      TemplateSpec left;
      QTF_RETURN_NOT_OK(ParseTemplate(&left, depth + 1));
      node->children.push_back(std::move(left));
      QTF_RETURN_NOT_OK(Expect(TokenKind::kComma));
      TemplateSpec right;
      QTF_RETURN_NOT_OK(ParseTemplate(&right, depth + 1));
      node->children.push_back(std::move(right));
      QTF_RETURN_NOT_OK(Expect(TokenKind::kComma));
      QTF_RETURN_NOT_OK(ParsePred(&node->predicate, 0));
      return Expect(TokenKind::kRParen);
    }
    if (op == "select") {
      node->kind = TemplateSpec::Kind::kSelect;
      QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      TemplateSpec child;
      QTF_RETURN_NOT_OK(ParseTemplate(&child, depth + 1));
      node->children.push_back(std::move(child));
      QTF_RETURN_NOT_OK(Expect(TokenKind::kComma));
      QTF_RETURN_NOT_OK(ParsePred(&node->predicate, 0));
      return Expect(TokenKind::kRParen);
    }
    if (op == "unionall") {
      node->kind = TemplateSpec::Kind::kUnionAll;
      QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      TemplateSpec left;
      QTF_RETURN_NOT_OK(ParseTemplate(&left, depth + 1));
      node->children.push_back(std::move(left));
      QTF_RETURN_NOT_OK(Expect(TokenKind::kComma));
      TemplateSpec right;
      QTF_RETURN_NOT_OK(ParseTemplate(&right, depth + 1));
      node->children.push_back(std::move(right));
      QTF_RETURN_NOT_OK(Expect(TokenKind::kComma));
      Token ids;
      QTF_RETURN_NOT_OK(Expect(TokenKind::kIdent, &ids));
      if (ids.text != "ids") {
        return Error(ids, "expected ids(label), got '" + ids.text + "'");
      }
      QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      Token label;
      QTF_RETURN_NOT_OK(Expect(TokenKind::kIdent, &label));
      node->ids_label = std::move(label.text);
      QTF_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return Expect(TokenKind::kRParen);
    }
    if (op == "distinct") {
      node->kind = TemplateSpec::Kind::kDistinct;
      QTF_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      TemplateSpec child;
      QTF_RETURN_NOT_OK(ParseTemplate(&child, depth + 1));
      node->children.push_back(std::move(child));
      return Expect(TokenKind::kRParen);
    }
    return Error(head, "unknown rewrite operator '" + op + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<RuleSpec>> ParseRuleSpecs(std::string_view text) {
  QTF_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexRuleDsl(text));
  return Parser(std::move(tokens)).Run();
}

}  // namespace ruledsl
}  // namespace qtf
