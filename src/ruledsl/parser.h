#ifndef QTF_RULEDSL_PARSER_H_
#define QTF_RULEDSL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "ruledsl/ast.h"

namespace qtf {
namespace ruledsl {

/// Parses .qtr rule DSL text into rule specs. Grammar (docs/RULES.md):
///
///   file     := rule*
///   rule     := 'rule' NAME '{' 'match' pattern when* rewrite+ '}'
///   when     := 'when' gterm ('or' gterm)*
///   rewrite  := 'rewrite' template
///   pattern  := PLACEHOLDER | [LABEL ':'] opnode
///
/// All failures are kInvalidArgument with a 1-based line:col position;
/// nesting depth is capped so hostile input cannot overflow the stack.
/// The parser checks shape (arity, operator names, join kinds); binding
/// resolution (unbound placeholders, pred() on a label without a
/// predicate, ...) is the compiler's job.
Result<std::vector<RuleSpec>> ParseRuleSpecs(std::string_view text);

}  // namespace ruledsl
}  // namespace qtf

#endif  // QTF_RULEDSL_PARSER_H_
