#ifndef QTF_RULEDSL_LEXER_H_
#define QTF_RULEDSL_LEXER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "ruledsl/token.h"

namespace qtf {
namespace ruledsl {

/// Tokenizes .qtr rule DSL text. Never crashes on malformed input: every
/// failure is kInvalidArgument carrying a 1-based "rule DSL error at
/// line:col" position, mirroring the src/sql lexer conventions. `--` line
/// comments and `/* */` block comments are skipped; an unterminated block
/// comment reports the position where it was opened.
Result<std::vector<Token>> LexRuleDsl(std::string_view text);

}  // namespace ruledsl
}  // namespace qtf

#endif  // QTF_RULEDSL_LEXER_H_
