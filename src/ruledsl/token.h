#ifndef QTF_RULEDSL_TOKEN_H_
#define QTF_RULEDSL_TOKEN_H_

#include <cstdint>
#include <string>

namespace qtf {
namespace ruledsl {

/// Tokens of the .qtr rule DSL (docs/RULES.md has the grammar). Structural
/// keywords are their own kinds; operator names (join, select, pred,
/// rejects_null, ...) stay kIdent and are resolved by the parser, so the
/// operator vocabulary can grow without touching the lexer.
enum class TokenKind {
  kEnd = 0,
  kIdent,        // rule names, labels, operator and guard names
  kPlaceholder,  // $NAME — binds a matched subtree
  kIntLit,       // min_conjuncts argument
  // Structural keywords.
  kRule,
  kMatch,
  kWhen,
  kRewrite,
  kOr,
  // Punctuation.
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kComma,
  kColon,
};

const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Identifier / placeholder spelling (placeholders without the '$').
  std::string text;
  int64_t int_value = 0;
  /// 1-based source position of the token's first character.
  int line = 1;
  int col = 1;
};

}  // namespace ruledsl
}  // namespace qtf

#endif  // QTF_RULEDSL_TOKEN_H_
