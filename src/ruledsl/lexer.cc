#include "ruledsl/lexer.h"

#include <cstdint>
#include <string>

namespace qtf {
namespace ruledsl {
namespace {

struct Keyword {
  const char* text;
  TokenKind kind;
};

// Structural keywords only; operator/guard names are plain identifiers
// resolved by the parser.
constexpr Keyword kKeywords[] = {
    {"rule", TokenKind::kRule},       {"match", TokenKind::kMatch},
    {"when", TokenKind::kWhen},       {"rewrite", TokenKind::kRewrite},
    {"or", TokenKind::kOr},
};

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      QTF_RETURN_NOT_OK(SkipSpaceAndComments());
      Token token;
      token.line = line_;
      token.col = col_;
      if (AtEnd()) {
        token.kind = TokenKind::kEnd;
        tokens.push_back(std::move(token));
        return tokens;
      }
      QTF_RETURN_NOT_OK(Next(&token));
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }

  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  static Status Error(int line, int col, const std::string& message) {
    return Status::InvalidArgument("rule DSL error at " +
                                   std::to_string(line) + ":" +
                                   std::to_string(col) + ": " + message);
  }

  Status SkipSpaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        Advance();
      } else if (c == '-' && Peek(1) == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        int open_line = line_;
        int open_col = col_;
        Advance();
        Advance();
        bool closed = false;
        while (!AtEnd()) {
          if (Peek() == '*' && Peek(1) == '/') {
            Advance();
            Advance();
            closed = true;
            break;
          }
          Advance();
        }
        if (!closed) {
          return Error(open_line, open_col, "unterminated block comment");
        }
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Status Next(Token* token) {
    char c = Peek();
    if (IsIdentStart(c)) {
      std::string word;
      while (!AtEnd() && IsIdentChar(Peek())) word.push_back(Advance());
      for (const Keyword& keyword : kKeywords) {
        if (word == keyword.text) {
          token->kind = keyword.kind;
          token->text = std::move(word);
          return Status::OK();
        }
      }
      token->kind = TokenKind::kIdent;
      token->text = std::move(word);
      return Status::OK();
    }
    if (c == '$') {
      Advance();
      if (AtEnd() || !IsIdentStart(Peek())) {
        return Error(token->line, token->col,
                     "expected identifier after '$'");
      }
      std::string word;
      while (!AtEnd() && IsIdentChar(Peek())) word.push_back(Advance());
      token->kind = TokenKind::kPlaceholder;
      token->text = std::move(word);
      return Status::OK();
    }
    if (IsDigit(c)) {
      std::string digits;
      while (!AtEnd() && IsDigit(Peek())) digits.push_back(Advance());
      if (!AtEnd() && IsIdentStart(Peek())) {
        return Error(token->line, token->col,
                     "malformed integer literal '" + digits + "'");
      }
      // Length cap keeps std::stoll in range; the DSL has no use for
      // integers this large anyway.
      if (digits.size() > 18) {
        return Error(token->line, token->col,
                     "integer literal too large '" + digits + "'");
      }
      token->kind = TokenKind::kIntLit;
      token->int_value = std::stoll(digits);
      token->text = std::move(digits);
      return Status::OK();
    }
    switch (c) {
      case '{':
        Advance();
        token->kind = TokenKind::kLBrace;
        return Status::OK();
      case '}':
        Advance();
        token->kind = TokenKind::kRBrace;
        return Status::OK();
      case '(':
        Advance();
        token->kind = TokenKind::kLParen;
        return Status::OK();
      case ')':
        Advance();
        token->kind = TokenKind::kRParen;
        return Status::OK();
      case ',':
        Advance();
        token->kind = TokenKind::kComma;
        return Status::OK();
      case ':':
        Advance();
        token->kind = TokenKind::kColon;
        return Status::OK();
      default:
        return Error(token->line, token->col,
                     std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kPlaceholder:
      return "placeholder";
    case TokenKind::kIntLit:
      return "integer";
    case TokenKind::kRule:
      return "'rule'";
    case TokenKind::kMatch:
      return "'match'";
    case TokenKind::kWhen:
      return "'when'";
    case TokenKind::kRewrite:
      return "'rewrite'";
    case TokenKind::kOr:
      return "'or'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
  }
  return "unknown token";
}

Result<std::vector<Token>> LexRuleDsl(std::string_view text) {
  return Lexer(text).Run();
}

}  // namespace ruledsl
}  // namespace qtf
