#ifndef QTF_RULEDSL_COMPILER_H_
#define QTF_RULEDSL_COMPILER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "optimizer/rule.h"
#include "ruledsl/ast.h"

namespace qtf {
namespace ruledsl {

struct CompileOptions {
  /// When set: compile failures count on qtf.dsl.compile_errors, and
  /// compiled rules drop semantically invalid rewrite instantiations on
  /// qtf.dsl.rejected instead of emitting them.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Compiles parsed rule specs onto the optimizer's pattern machinery: each
/// spec's match clause lowers to a PatternNode tree, and the rule itself
/// becomes an interpreted ExplorationRule whose Apply binds placeholders /
/// labels against the bound tree, evaluates guards, and instantiates the
/// rewrite templates by sharing bound subtrees (never mutating them — the
/// memo owns the GroupRef leaves). Compiled rules are tagged
/// RuleOrigin::kDsl.
///
/// Binding errors (unbound placeholder, pred() on a label without a
/// predicate, ids() on a non-unionall label, duplicate names, ...) are
/// kInvalidArgument with the 1-based line:col of the offending token.
/// Rules that compile but produce semantically invalid trees at Apply time
/// (machine-generated candidates can) have those outputs dropped and
/// counted, never emitted and never a crash.
Result<std::vector<std::unique_ptr<Rule>>> CompileRuleSpecs(
    const std::vector<RuleSpec>& specs, const CompileOptions& options = {});

/// Parse + compile .qtr text in one step.
Result<std::vector<std::unique_ptr<Rule>>> CompileRuleDsl(
    std::string_view text, const CompileOptions& options = {});

}  // namespace ruledsl
}  // namespace qtf

#endif  // QTF_RULEDSL_COMPILER_H_
