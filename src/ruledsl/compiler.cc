#include "ruledsl/compiler.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "expr/analysis.h"
#include "logical/props.h"
#include "ruledsl/parser.h"

namespace qtf {
namespace ruledsl {
namespace {

Status CompileError(SourceLoc loc, const std::string& message) {
  return Status::InvalidArgument(
      "rule DSL compile error at " + std::to_string(loc.line) + ":" +
      std::to_string(loc.col) + ": " + message);
}

/// What a label can supply to guards and templates.
struct LabelInfo {
  LogicalOpKind op_kind = LogicalOpKind::kGet;
  SourceLoc loc;
};

/// Per-rule symbol tables built during semantic analysis.
struct Symbols {
  std::map<std::string, SourceLoc> placeholders;
  std::map<std::string, LabelInfo> labels;
};

Status CollectSymbols(const PatternSpec& node, Symbols* symbols) {
  switch (node.kind) {
    case PatternSpec::Kind::kPlaceholder: {
      auto inserted = symbols->placeholders.emplace(node.binding, node.loc);
      if (!inserted.second) {
        return CompileError(node.loc,
                            "duplicate placeholder '$" + node.binding + "'");
      }
      return Status::OK();
    }
    case PatternSpec::Kind::kAnyOp:
      return Status::OK();
    case PatternSpec::Kind::kOp: {
      if (!node.label.empty()) {
        auto inserted =
            symbols->labels.emplace(node.label, LabelInfo{node.op_kind, node.loc});
        if (!inserted.second) {
          return CompileError(node.loc, "duplicate label '" + node.label + "'");
        }
      }
      for (const PatternSpec& child : node.children) {
        QTF_RETURN_NOT_OK(CollectSymbols(child, symbols));
      }
      return Status::OK();
    }
  }
  return CompileError(node.loc, "corrupt pattern node");
}

Status CheckColSet(const std::vector<std::string>& cols, SourceLoc loc,
                   const Symbols& symbols) {
  for (const std::string& name : cols) {
    if (symbols.placeholders.count(name) == 0) {
      return CompileError(loc, "cols() references unbound placeholder '$" +
                                   name + "'");
    }
  }
  return Status::OK();
}

Status CheckPred(const PredSpec& pred, const Symbols& symbols) {
  switch (pred.kind) {
    case PredSpec::Kind::kNone:
      return Status::OK();
    case PredSpec::Kind::kPred: {
      auto it = symbols.labels.find(pred.label);
      if (it == symbols.labels.end()) {
        return CompileError(pred.loc,
                            "pred() references unbound label '" + pred.label +
                                "'");
      }
      if (it->second.op_kind != LogicalOpKind::kSelect &&
          it->second.op_kind != LogicalOpKind::kJoin) {
        return CompileError(pred.loc, "pred(" + pred.label +
                                          ") needs a select or join label");
      }
      return Status::OK();
    }
    case PredSpec::Kind::kAnd:
    case PredSpec::Kind::kHead:
    case PredSpec::Kind::kTail:
      for (const PredSpec& arg : pred.args) {
        QTF_RETURN_NOT_OK(CheckPred(arg, symbols));
      }
      return Status::OK();
    case PredSpec::Kind::kPushable:
    case PredSpec::Kind::kResidual:
      for (const PredSpec& arg : pred.args) {
        QTF_RETURN_NOT_OK(CheckPred(arg, symbols));
      }
      return CheckColSet(pred.cols, pred.loc, symbols);
  }
  return CompileError(pred.loc, "corrupt predicate node");
}

Status CheckGuardTerm(const GuardTermSpec& term, const Symbols& symbols) {
  QTF_RETURN_NOT_OK(CheckPred(term.pred, symbols));
  return CheckColSet(term.cols, term.loc, symbols);
}

Status CheckTemplate(const TemplateSpec& node, const Symbols& symbols) {
  switch (node.kind) {
    case TemplateSpec::Kind::kPlaceholder:
      if (symbols.placeholders.count(node.binding) == 0) {
        return CompileError(node.loc, "rewrite references unbound placeholder '$" +
                                          node.binding + "'");
      }
      return Status::OK();
    case TemplateSpec::Kind::kJoin:
    case TemplateSpec::Kind::kSelect:
      QTF_RETURN_NOT_OK(CheckPred(node.predicate, symbols));
      break;
    case TemplateSpec::Kind::kUnionAll: {
      auto it = symbols.labels.find(node.ids_label);
      if (it == symbols.labels.end()) {
        return CompileError(node.loc, "ids() references unbound label '" +
                                          node.ids_label + "'");
      }
      if (it->second.op_kind != LogicalOpKind::kUnionAll) {
        return CompileError(node.loc, "ids(" + node.ids_label +
                                          ") needs a unionall label");
      }
      break;
    }
    case TemplateSpec::Kind::kDistinct:
      break;
  }
  for (const TemplateSpec& child : node.children) {
    QTF_RETURN_NOT_OK(CheckTemplate(child, symbols));
  }
  return Status::OK();
}

PatternNodePtr LowerPattern(const PatternSpec& node) {
  switch (node.kind) {
    case PatternSpec::Kind::kPlaceholder:
    case PatternSpec::Kind::kAnyOp:
      return PatternNode::Any();
    case PatternSpec::Kind::kOp:
      break;
  }
  if (node.op_kind == LogicalOpKind::kJoin) {
    return PatternNode::Join(*node.join_kind, LowerPattern(node.children[0]),
                             LowerPattern(node.children[1]));
  }
  std::vector<PatternNodePtr> children;
  children.reserve(node.children.size());
  for (const PatternSpec& child : node.children) {
    children.push_back(LowerPattern(child));
  }
  return PatternNode::Op(node.op_kind, std::move(children));
}

/// Placeholder subtrees and labeled interior nodes captured from one bound
/// tree. Subtrees are shared LogicalOpPtr instances (memo-owned GroupRefs);
/// labels point into the bound tree, which outlives the Apply call.
struct Bindings {
  std::map<std::string, LogicalOpPtr> subtrees;
  std::map<std::string, const LogicalOp*> labels;
};

/// Walks the bound tree in lockstep with the match pattern. Defensive: the
/// memo's BindPattern guarantees shape, but machine-generated rules go
/// through the same code path, so any mismatch bails instead of crashing.
bool CollectBindings(const PatternSpec& spec, const LogicalOpPtr* self,
                     const LogicalOp& op, Bindings* bindings) {
  switch (spec.kind) {
    case PatternSpec::Kind::kPlaceholder:
      if (self == nullptr) return false;
      bindings->subtrees.emplace(spec.binding, *self);
      return true;
    case PatternSpec::Kind::kAnyOp:
      return true;
    case PatternSpec::Kind::kOp: {
      if (op.kind() != spec.op_kind) return false;
      if (op.kind() == LogicalOpKind::kJoin &&
          static_cast<const JoinOp&>(op).join_kind() != *spec.join_kind) {
        return false;
      }
      if (op.children().size() != spec.children.size()) return false;
      if (!spec.label.empty()) bindings->labels.emplace(spec.label, &op);
      for (size_t i = 0; i < spec.children.size(); ++i) {
        if (!CollectBindings(spec.children[i], &op.child(i), *op.child(i),
                             bindings)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

/// A predicate value in one of two modes. Passthrough carries a captured
/// predicate verbatim (so a rule that only moves a predicate reproduces the
/// hand-written rule's expression identity); list mode carries pooled
/// conjuncts that MakeConjunction re-canonicalizes on materialization.
struct PredValue {
  bool passthrough = false;
  ExprPtr expr;
  std::vector<ExprPtr> conjuncts;

  ExprPtr Materialize() const {
    return passthrough ? expr : MakeConjunction(conjuncts);
  }
  std::vector<ExprPtr> List() const {
    return passthrough ? SplitConjuncts(expr) : conjuncts;
  }
};

ExprPtr CapturedPredicate(const LogicalOp& op) {
  if (op.kind() == LogicalOpKind::kSelect) {
    return static_cast<const SelectOp&>(op).predicate();
  }
  if (op.kind() == LogicalOpKind::kJoin) {
    return static_cast<const JoinOp&>(op).predicate();
  }
  return nullptr;
}

bool ColSetOf(const std::vector<std::string>& names, const Bindings& bindings,
              ColumnSet* out) {
  for (const std::string& name : names) {
    auto it = bindings.subtrees.find(name);
    if (it == bindings.subtrees.end()) return false;
    for (ColumnId col : it->second->OutputColumns()) out->insert(col);
  }
  return true;
}

bool EvalPred(const PredSpec& spec, const Bindings& bindings, PredValue* out) {
  switch (spec.kind) {
    case PredSpec::Kind::kNone:
      out->passthrough = true;
      out->expr = nullptr;
      return true;
    case PredSpec::Kind::kPred: {
      auto it = bindings.labels.find(spec.label);
      if (it == bindings.labels.end()) return false;
      out->passthrough = true;
      out->expr = CapturedPredicate(*it->second);
      return true;
    }
    case PredSpec::Kind::kAnd: {
      out->passthrough = false;
      for (const PredSpec& arg : spec.args) {
        PredValue value;
        if (!EvalPred(arg, bindings, &value)) return false;
        std::vector<ExprPtr> conjuncts = value.List();
        out->conjuncts.insert(out->conjuncts.end(), conjuncts.begin(),
                              conjuncts.end());
      }
      return true;
    }
    case PredSpec::Kind::kHead:
    case PredSpec::Kind::kTail: {
      PredValue value;
      if (!EvalPred(spec.args[0], bindings, &value)) return false;
      std::vector<ExprPtr> conjuncts = value.List();
      out->passthrough = false;
      if (spec.kind == PredSpec::Kind::kHead) {
        if (!conjuncts.empty()) out->conjuncts.push_back(conjuncts[0]);
      } else if (conjuncts.size() > 1) {
        out->conjuncts.assign(conjuncts.begin() + 1, conjuncts.end());
      }
      return true;
    }
    case PredSpec::Kind::kPushable:
    case PredSpec::Kind::kResidual: {
      PredValue value;
      if (!EvalPred(spec.args[0], bindings, &value)) return false;
      ColumnSet allowed;
      if (!ColSetOf(spec.cols, bindings, &allowed)) return false;
      out->passthrough = false;
      const bool want_pushable = spec.kind == PredSpec::Kind::kPushable;
      for (const ExprPtr& conjunct : value.List()) {
        if (ReferencesOnly(*conjunct, allowed) == want_pushable) {
          out->conjuncts.push_back(conjunct);
        }
      }
      return true;
    }
  }
  return false;
}

bool EvalGuardTerm(const GuardTermSpec& term, const Bindings& bindings) {
  PredValue value;
  if (!EvalPred(term.pred, bindings, &value)) return false;
  switch (term.kind) {
    case GuardTermSpec::Kind::kRejectsNull: {
      ExprPtr expr = value.Materialize();
      if (expr == nullptr) return false;
      ColumnSet cols;
      if (!ColSetOf(term.cols, bindings, &cols)) return false;
      return RejectsAllNull(*expr, cols);
    }
    case GuardTermSpec::Kind::kRefsOnly: {
      ExprPtr expr = value.Materialize();
      if (expr == nullptr) return true;  // TRUE references nothing
      ColumnSet cols;
      if (!ColSetOf(term.cols, bindings, &cols)) return false;
      return ReferencesOnly(*expr, cols);
    }
    case GuardTermSpec::Kind::kIsNull:
      return value.Materialize() == nullptr;
    case GuardTermSpec::Kind::kNonNull:
      return value.Materialize() != nullptr;
    case GuardTermSpec::Kind::kHasPushable: {
      ColumnSet cols;
      if (!ColSetOf(term.cols, bindings, &cols)) return false;
      for (const ExprPtr& conjunct : value.List()) {
        if (ReferencesOnly(*conjunct, cols)) return true;
      }
      return false;
    }
    case GuardTermSpec::Kind::kMinConjuncts:
      return static_cast<int64_t>(value.List().size()) >= term.min_count;
  }
  return false;
}

ColumnSet OutputSetOf(const LogicalOp& op) {
  std::vector<ColumnId> cols = op.OutputColumns();
  return ColumnSet(cols.begin(), cols.end());
}

/// Instantiates one rewrite template over the bindings. Returns false to
/// drop the output: either a binding hiccup or — for machine-generated
/// rules — a tree that would violate downstream invariants (predicates
/// over columns the children don't produce, overlapping join sides,
/// positionally mismatched unionall branches). Hand-ported rules never
/// trip these checks; their guards already imply them.
bool Instantiate(const TemplateSpec& node, const Bindings& bindings,
                 LogicalOpPtr* out) {
  switch (node.kind) {
    case TemplateSpec::Kind::kPlaceholder: {
      auto it = bindings.subtrees.find(node.binding);
      if (it == bindings.subtrees.end()) return false;
      *out = it->second;
      return true;
    }
    case TemplateSpec::Kind::kDistinct: {
      LogicalOpPtr child;
      if (!Instantiate(node.children[0], bindings, &child)) return false;
      *out = std::make_shared<DistinctOp>(std::move(child));
      return true;
    }
    case TemplateSpec::Kind::kSelect: {
      LogicalOpPtr child;
      if (!Instantiate(node.children[0], bindings, &child)) return false;
      PredValue value;
      if (!EvalPred(node.predicate, bindings, &value)) return false;
      ExprPtr predicate = value.Materialize();
      if (predicate == nullptr) {
        // Empty conjunction: the select is a no-op; splice the child in
        // directly (mirrors the remaining.empty() paths of the hand-written
        // pushdown rules).
        *out = std::move(child);
        return true;
      }
      if (!ReferencesOnly(*predicate, OutputSetOf(*child))) return false;
      *out = std::make_shared<SelectOp>(std::move(child), std::move(predicate));
      return true;
    }
    case TemplateSpec::Kind::kJoin: {
      LogicalOpPtr left;
      LogicalOpPtr right;
      if (!Instantiate(node.children[0], bindings, &left)) return false;
      if (!Instantiate(node.children[1], bindings, &right)) return false;
      ColumnSet left_cols = OutputSetOf(*left);
      ColumnSet right_cols = OutputSetOf(*right);
      for (ColumnId col : right_cols) {
        if (left_cols.count(col) > 0) return false;  // overlapping sides
      }
      PredValue value;
      if (!EvalPred(node.predicate, bindings, &value)) return false;
      ExprPtr predicate = value.Materialize();
      if (predicate != nullptr) {
        ColumnSet visible = left_cols;
        visible.insert(right_cols.begin(), right_cols.end());
        if (!ReferencesOnly(*predicate, visible)) return false;
      }
      *out = std::make_shared<JoinOp>(*node.join_kind, std::move(left),
                                      std::move(right), std::move(predicate));
      return true;
    }
    case TemplateSpec::Kind::kUnionAll: {
      LogicalOpPtr left;
      LogicalOpPtr right;
      if (!Instantiate(node.children[0], bindings, &left)) return false;
      if (!Instantiate(node.children[1], bindings, &right)) return false;
      auto it = bindings.labels.find(node.ids_label);
      if (it == bindings.labels.end()) return false;
      if (it->second->kind() != LogicalOpKind::kUnionAll) return false;
      const auto& ids =
          static_cast<const UnionAllOp&>(*it->second).output_ids();
      std::vector<ColumnId> left_cols = left->OutputColumns();
      std::vector<ColumnId> right_cols = right->OutputColumns();
      if (left_cols.size() != ids.size() || right_cols.size() != ids.size()) {
        return false;
      }
      // Positional type agreement, looked up without LogicalProps::TypeOf
      // (which CHECK-fails on untracked columns).
      LogicalProps left_props = DeriveTreeProps(*left);
      LogicalProps right_props = DeriveTreeProps(*right);
      for (size_t i = 0; i < ids.size(); ++i) {
        auto lt = left_props.col_types.find(left_cols[i]);
        auto rt = right_props.col_types.find(right_cols[i]);
        if (lt == left_props.col_types.end() ||
            rt == right_props.col_types.end() || lt->second != rt->second) {
          return false;
        }
      }
      *out = std::make_shared<UnionAllOp>(std::move(left), std::move(right),
                                          ids);
      return true;
    }
  }
  return false;
}

/// The interpreted rule: spec + lowered pattern. Apply re-binds against
/// each bound tree the memo hands it; outputs share bound subtrees per the
/// memo contract.
class CompiledRule final : public ExplorationRule {
 public:
  CompiledRule(std::string name, PatternNodePtr pattern, RuleSpec spec,
               obs::Counter* rejected)
      : ExplorationRule(std::move(name), std::move(pattern)),
        spec_(std::move(spec)),
        rejected_(rejected) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    Bindings bindings;
    if (!CollectBindings(spec_.pattern, nullptr, bound, &bindings)) return;
    for (const GuardSpec& guard : spec_.guards) {
      bool satisfied = false;
      for (const GuardTermSpec& term : guard) {
        if (EvalGuardTerm(term, bindings)) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) return;
    }
    for (const TemplateSpec& rewrite : spec_.rewrites) {
      LogicalOpPtr result;
      if (!Instantiate(rewrite, bindings, &result)) {
        if (rejected_ != nullptr) rejected_->Increment();
        continue;
      }
      out->push_back(std::move(result));
    }
  }

 private:
  RuleSpec spec_;
  obs::Counter* rejected_;
};

Status CheckRule(const RuleSpec& spec, Symbols* symbols) {
  if (spec.pattern.kind != PatternSpec::Kind::kOp) {
    return CompileError(spec.pattern.loc,
                        "match root must be a concrete operator");
  }
  QTF_RETURN_NOT_OK(CollectSymbols(spec.pattern, symbols));
  for (const GuardSpec& guard : spec.guards) {
    for (const GuardTermSpec& term : guard) {
      QTF_RETURN_NOT_OK(CheckGuardTerm(term, *symbols));
    }
  }
  for (const TemplateSpec& rewrite : spec.rewrites) {
    QTF_RETURN_NOT_OK(CheckTemplate(rewrite, *symbols));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::unique_ptr<Rule>>> CompileRuleSpecs(
    const std::vector<RuleSpec>& specs, const CompileOptions& options) {
  obs::Counter* rejected =
      options.metrics != nullptr ? options.metrics->counter("qtf.dsl.rejected")
                                 : nullptr;
  std::set<std::string> names;
  std::vector<std::unique_ptr<Rule>> rules;
  rules.reserve(specs.size());
  for (const RuleSpec& spec : specs) {
    if (!names.insert(spec.name).second) {
      return CompileError(spec.loc, "duplicate rule name '" + spec.name + "'");
    }
    Symbols symbols;
    QTF_RETURN_NOT_OK(CheckRule(spec, &symbols));
    PatternNodePtr pattern = LowerPattern(spec.pattern);
    auto rule = std::make_unique<CompiledRule>(spec.name, std::move(pattern),
                                               spec, rejected);
    rule->set_origin(RuleOrigin::kDsl);
    rules.push_back(std::move(rule));
  }
  return rules;
}

Result<std::vector<std::unique_ptr<Rule>>> CompileRuleDsl(
    std::string_view text, const CompileOptions& options) {
  Result<std::vector<RuleSpec>> specs = ParseRuleSpecs(text);
  if (!specs.ok()) {
    if (options.metrics != nullptr) {
      options.metrics->counter("qtf.dsl.compile_errors")->Increment();
    }
    return specs.status();
  }
  Result<std::vector<std::unique_ptr<Rule>>> rules =
      CompileRuleSpecs(*specs, options);
  if (!rules.ok() && options.metrics != nullptr) {
    options.metrics->counter("qtf.dsl.compile_errors")->Increment();
  }
  return rules;
}

}  // namespace ruledsl
}  // namespace qtf
