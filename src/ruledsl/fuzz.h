#ifndef QTF_RULEDSL_FUZZ_H_
#define QTF_RULEDSL_FUZZ_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace qtf {
namespace ruledsl {

/// Seed-deterministic generator of machine-made candidate rule specs.
/// Output is mostly grammatical (so a good fraction survives the parser and
/// reaches the compiler/optimizer), with deliberate binding mistakes mixed
/// in (unbound placeholders, pred() on label-less ops, mismatched kinds) to
/// exercise every rejection path. Same seed, same spec.
std::string GenerateRuleSpec(uint64_t seed);

/// Seed-deterministic mutator: applies a few token/character-level edits
/// (delete, duplicate, swap identifiers, drop a paren, truncate, flip a
/// byte) to an existing spec. Used to drive the parser's error paths with
/// near-miss inputs.
std::string MutateRuleSpec(std::string_view spec, uint64_t seed);

}  // namespace ruledsl
}  // namespace qtf

#endif  // QTF_RULEDSL_FUZZ_H_
