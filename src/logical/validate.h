#ifndef QTF_LOGICAL_VALIDATE_H_
#define QTF_LOGICAL_VALIDATE_H_

#include "common/status.h"
#include "logical/ops.h"

namespace qtf {

/// Structural validation of a logical tree:
///   * expressions reference only columns produced by the node's children;
///   * predicates are boolean;
///   * grouping columns come from the input;
///   * UnionAll children agree positionally in arity and type (per
///     `registry` types);
///   * projection pass-through items keep their id, computed items use a
///     fresh id not produced by the child.
///
/// Every tree handed to the optimizer or produced by a transformation rule
/// must validate; the test suite checks this invariant after each rewrite.
Status ValidateTree(const LogicalOp& root, const ColumnRegistry& registry);

}  // namespace qtf

#endif  // QTF_LOGICAL_VALIDATE_H_
