#ifndef QTF_LOGICAL_OPS_H_
#define QTF_LOGICAL_OPS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/aggregate.h"
#include "expr/analysis.h"
#include "expr/expr.h"
#include "logical/column_registry.h"

namespace qtf {

/// Logical relational operators. The optimizer is initialized with a tree of
/// these (paper Section 2.1) and transformation rules rewrite them.
enum class LogicalOpKind {
  kGet = 0,     // base-table access
  kSelect,      // filter
  kProject,     // projection / computed columns
  kJoin,        // inner / left-outer / left-semi / left-anti
  kGroupByAgg,  // grouping + aggregation (empty grouping = scalar agg)
  kUnionAll,
  kDistinct,
  kGroupRef,    // leaf bound to a memo group during rule application
};

const char* LogicalOpKindToString(LogicalOpKind kind);

enum class JoinKind {
  kInner = 0,
  kLeftOuter,
  kLeftSemi,
  kLeftAnti,
};

const char* JoinKindToString(JoinKind kind);

class LogicalOp;
class NodeInterner;
using LogicalOpPtr = std::shared_ptr<const LogicalOp>;

/// Derived logical properties of an operator (sub)tree: output columns,
/// cardinality estimate, candidate keys and per-column distinct counts.
/// Computed by DeriveProps (logical/props.h) and cached per memo group.
struct LogicalProps {
  std::vector<ColumnId> output_cols;
  double cardinality = 1.0;
  /// Candidate keys: each entry is a set of output columns guaranteed
  /// unique. An empty set means "at most one row".
  std::vector<ColumnSet> keys;
  /// Estimated distinct values per output column.
  std::map<ColumnId, double> distinct;
  /// Output columns that may contain NULL (conservative superset). Used by
  /// rules that rely on a provably non-NULL column, e.g. anti-join to
  /// outer-join-plus-IS-NULL.
  ColumnSet nullable;
  /// Value types of output columns (needed by rules that synthesize new
  /// column references without registry access).
  std::map<ColumnId, ValueType> col_types;

  ColumnSet OutputSet() const {
    return ColumnSet(output_cols.begin(), output_cols.end());
  }
  /// True iff some candidate key is a subset of `cols` (i.e. `cols`
  /// functionally determines the whole row).
  bool HasKeyWithin(const ColumnSet& cols) const;
  /// Distinct estimate for a column (falls back to cardinality).
  double DistinctOf(ColumnId id) const;
  /// Type of an output column; CHECK-fails if untracked.
  ValueType TypeOf(ColumnId id) const;
};

/// Immutable logical operator node. Children are shared; rules build new
/// parents over existing subtrees.
class LogicalOp {
 public:
  virtual ~LogicalOp() = default;
  LogicalOp(const LogicalOp&) = delete;
  LogicalOp& operator=(const LogicalOp&) = delete;

  LogicalOpKind kind() const { return kind_; }
  const std::vector<LogicalOpPtr>& children() const { return children_; }
  const LogicalOpPtr& child(size_t i) const {
    QTF_CHECK(i < children_.size());
    return children_[i];
  }

  /// Output column ids, in order. Derived from children and arguments.
  virtual std::vector<ColumnId> OutputColumns() const = 0;

  /// One-line description of this node (without children).
  virtual std::string Describe(const ColumnNameResolver* resolver) const = 0;

  /// Hash of this node's kind and arguments, excluding children. Used with
  /// LocalEquals for memo deduplication where children are compared as
  /// group ids.
  virtual size_t LocalHash() const = 0;

  /// Equality of kind and arguments, excluding children.
  virtual bool LocalEquals(const LogicalOp& other) const = 0;

  /// Copy of this node (same arguments) over different children. Child
  /// count must match; output columns of the new children must be a
  /// superset of what the node's arguments reference (callers — the memo
  /// binder and transformation rules — guarantee this).
  virtual LogicalOpPtr WithNewChildren(
      std::vector<LogicalOpPtr> children) const = 0;

  /// Cached TreeFingerprint of the subtree rooted here, or 0 if not yet
  /// computed. Filled in (idempotently — the fingerprint is a pure
  /// function of the structure) by the first TreeFingerprint() call.
  uint64_t cached_fingerprint() const {
    return fingerprint_.load(std::memory_order_relaxed);
  }

  /// Cached CountOps of the subtree rooted here, or 0 if not yet computed.
  int cached_subtree_size() const {
    return subtree_size_.load(std::memory_order_relaxed);
  }

  /// Identity of the interner epoch that canonicalized this node, or
  /// nullptr. Nodes tagged with the same live epoch are pointer-comparable
  /// (see NodeInterner::Equal). A later interner may retag a node; that
  /// only downgrades the earlier interner's comparisons to deep equality.
  const void* interner_tag() const {
    return interner_tag_.load(std::memory_order_acquire);
  }

 protected:
  LogicalOp(LogicalOpKind kind, std::vector<LogicalOpPtr> children)
      : kind_(kind), children_(std::move(children)) {}

 private:
  friend uint64_t TreeFingerprint(const LogicalOp& root);
  friend int CountOps(const LogicalOp& root);
  friend class NodeInterner;

  LogicalOpKind kind_;
  std::vector<LogicalOpPtr> children_;

  // Lazily-computed caches. Nodes are immutable, so each cache converges
  // to a single value; relaxed stores are safe because every writer
  // derives the identical value from the same immutable structure.
  mutable std::atomic<uint64_t> fingerprint_{0};
  mutable std::atomic<int> subtree_size_{0};
  mutable std::atomic<const void*> interner_tag_{nullptr};
};

/// Base-table access. Allocates (at construction time, via the registry)
/// fresh column ids for every column of the table.
class GetOp final : public LogicalOp {
 public:
  GetOp(std::shared_ptr<const TableDef> table, std::vector<ColumnId> columns)
      : LogicalOp(LogicalOpKind::kGet, {}),
        table_(std::move(table)),
        columns_(std::move(columns)) {
    QTF_CHECK(table_ != nullptr);
    QTF_CHECK(columns_.size() == table_->columns().size());
  }

  /// Creates a Get over `table`, allocating ids in `registry`.
  static std::shared_ptr<const GetOp> Create(
      std::shared_ptr<const TableDef> table, ColumnRegistry* registry);

  const TableDef& table() const { return *table_; }
  const std::shared_ptr<const TableDef>& table_ptr() const { return table_; }
  const std::vector<ColumnId>& columns() const { return columns_; }

  std::vector<ColumnId> OutputColumns() const override { return columns_; }
  std::string Describe(const ColumnNameResolver* resolver) const override;
  size_t LocalHash() const override;
  bool LocalEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithNewChildren(
      std::vector<LogicalOpPtr> children) const override;

 private:
  std::shared_ptr<const TableDef> table_;
  std::vector<ColumnId> columns_;
};

/// Filter: keeps rows where the predicate is TRUE.
class SelectOp final : public LogicalOp {
 public:
  SelectOp(LogicalOpPtr input, ExprPtr predicate)
      : LogicalOp(LogicalOpKind::kSelect, {std::move(input)}),
        predicate_(std::move(predicate)) {
    QTF_CHECK(predicate_ != nullptr);
  }

  const ExprPtr& predicate() const { return predicate_; }

  std::vector<ColumnId> OutputColumns() const override {
    return child(0)->OutputColumns();
  }
  std::string Describe(const ColumnNameResolver* resolver) const override;
  size_t LocalHash() const override;
  bool LocalEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithNewChildren(
      std::vector<LogicalOpPtr> children) const override;

 private:
  ExprPtr predicate_;
};

/// One projection output: an expression and the column id it defines. For a
/// bare column reference the id equals the referenced id (pass-through);
/// computed expressions carry a freshly allocated id.
struct ProjectItem {
  ExprPtr expr;
  ColumnId id = -1;
};

class ProjectOp final : public LogicalOp {
 public:
  ProjectOp(LogicalOpPtr input, std::vector<ProjectItem> items)
      : LogicalOp(LogicalOpKind::kProject, {std::move(input)}),
        items_(std::move(items)) {
    QTF_CHECK(!items_.empty());
  }

  const std::vector<ProjectItem>& items() const { return items_; }

  std::vector<ColumnId> OutputColumns() const override;
  std::string Describe(const ColumnNameResolver* resolver) const override;
  size_t LocalHash() const override;
  bool LocalEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithNewChildren(
      std::vector<LogicalOpPtr> children) const override;

 private:
  std::vector<ProjectItem> items_;
};

/// Join. `predicate` may be nullptr (cross join / TRUE). Semi/anti joins
/// output only the left side's columns; left-outer joins null-extend the
/// right side.
class JoinOp final : public LogicalOp {
 public:
  JoinOp(JoinKind join_kind, LogicalOpPtr left, LogicalOpPtr right,
         ExprPtr predicate)
      : LogicalOp(LogicalOpKind::kJoin, {std::move(left), std::move(right)}),
        join_kind_(join_kind),
        predicate_(std::move(predicate)) {}

  JoinKind join_kind() const { return join_kind_; }
  const ExprPtr& predicate() const { return predicate_; }

  std::vector<ColumnId> OutputColumns() const override;
  std::string Describe(const ColumnNameResolver* resolver) const override;
  size_t LocalHash() const override;
  bool LocalEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithNewChildren(
      std::vector<LogicalOpPtr> children) const override;

 private:
  JoinKind join_kind_;
  ExprPtr predicate_;  // nullptr == TRUE
};

/// One aggregate output of a GroupByAgg.
struct AggregateItem {
  AggregateCall call;
  ColumnId id = -1;
};

/// Grouping + aggregation. Output columns are the grouping columns followed
/// by the aggregate outputs. Empty grouping = scalar aggregate (one row).
class GroupByAggOp final : public LogicalOp {
 public:
  GroupByAggOp(LogicalOpPtr input, std::vector<ColumnId> group_cols,
               std::vector<AggregateItem> aggregates)
      : LogicalOp(LogicalOpKind::kGroupByAgg, {std::move(input)}),
        group_cols_(std::move(group_cols)),
        aggregates_(std::move(aggregates)) {}

  const std::vector<ColumnId>& group_cols() const { return group_cols_; }
  const std::vector<AggregateItem>& aggregates() const { return aggregates_; }

  std::vector<ColumnId> OutputColumns() const override;
  std::string Describe(const ColumnNameResolver* resolver) const override;
  size_t LocalHash() const override;
  bool LocalEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithNewChildren(
      std::vector<LogicalOpPtr> children) const override;

 private:
  std::vector<ColumnId> group_cols_;
  std::vector<AggregateItem> aggregates_;
};

/// Bag union of two inputs with positionally matching types. Allocates its
/// own output column ids (`output_ids`), one per position.
class UnionAllOp final : public LogicalOp {
 public:
  UnionAllOp(LogicalOpPtr left, LogicalOpPtr right,
             std::vector<ColumnId> output_ids)
      : LogicalOp(LogicalOpKind::kUnionAll, {std::move(left), std::move(right)}),
        output_ids_(std::move(output_ids)) {}

  const std::vector<ColumnId>& output_ids() const { return output_ids_; }

  std::vector<ColumnId> OutputColumns() const override { return output_ids_; }
  std::string Describe(const ColumnNameResolver* resolver) const override;
  size_t LocalHash() const override;
  bool LocalEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithNewChildren(
      std::vector<LogicalOpPtr> children) const override;

 private:
  std::vector<ColumnId> output_ids_;
};

/// Duplicate elimination over all output columns.
class DistinctOp final : public LogicalOp {
 public:
  explicit DistinctOp(LogicalOpPtr input)
      : LogicalOp(LogicalOpKind::kDistinct, {std::move(input)}) {}

  std::vector<ColumnId> OutputColumns() const override {
    return child(0)->OutputColumns();
  }
  std::string Describe(const ColumnNameResolver* resolver) const override;
  size_t LocalHash() const override;
  bool LocalEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithNewChildren(
      std::vector<LogicalOpPtr> children) const override;
};

/// Leaf standing for a memo group during rule binding (see
/// optimizer/memo.h). Carries the group's derived properties so rule
/// preconditions can reason about cardinality/keys without touching the
/// memo.
class GroupRefOp final : public LogicalOp {
 public:
  GroupRefOp(int group_id, const LogicalProps* props)
      : LogicalOp(LogicalOpKind::kGroupRef, {}),
        group_id_(group_id),
        props_(props) {
    QTF_CHECK(props_ != nullptr);
  }

  int group_id() const { return group_id_; }
  const LogicalProps& props() const { return *props_; }

  std::vector<ColumnId> OutputColumns() const override {
    return props_->output_cols;
  }
  std::string Describe(const ColumnNameResolver* resolver) const override;
  size_t LocalHash() const override;
  bool LocalEquals(const LogicalOp& other) const override;
  LogicalOpPtr WithNewChildren(
      std::vector<LogicalOpPtr> children) const override;

 private:
  int group_id_;
  const LogicalProps* props_;  // borrowed from the memo; memo outlives rules.
};

/// Multi-line indented rendering of a logical tree.
std::string LogicalTreeToString(const LogicalOp& root,
                                const ColumnNameResolver* resolver);

/// Deep structural equality (LocalEquals at every node, recursively).
/// Fast paths: identical roots compare equal without recursion, and roots
/// whose fingerprints are both cached and differ compare unequal in O(1).
bool LogicalTreeEquals(const LogicalOp& a, const LogicalOp& b);

/// Number of operator nodes in the tree. Memoized per node (see
/// LogicalOp::cached_subtree_size): O(1) after the first call.
int CountOps(const LogicalOp& root);

/// Stable 64-bit structural fingerprint of a logical tree: trees that are
/// LogicalTreeEquals share a fingerprint, and the value depends only on
/// the tree (kind, arguments, child order) — not on allocation addresses —
/// so it is stable across processes and standard-library implementations
/// (all node hashes avoid std::hash). Used as the plan-cache hash key and
/// the NodeInterner bucket key (collisions are resolved by deep equality).
/// Memoized per node (see LogicalOp::cached_fingerprint): O(1) after the
/// first call on any given node, which re-keys PlanCache lookups from a
/// full-tree rehash to a single atomic load.
uint64_t TreeFingerprint(const LogicalOp& root);

}  // namespace qtf

#endif  // QTF_LOGICAL_OPS_H_
