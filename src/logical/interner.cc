#include "logical/interner.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace qtf {

namespace {

/// Epoch tokens are 1-byte allocations that are deliberately never freed:
/// a node may outlive the interner that tagged it, and if the token's
/// address were recycled for a later epoch (possibly of a different
/// interner), the stale tag would masquerade as canonical there. A
/// process-lifetime unique address makes tag comparisons sound forever,
/// at the cost of one leaked byte per epoch.
const void* NewEpochToken() { return new char; }

}  // namespace

struct NodeInterner::Shard {
  std::mutex mu;
  // fingerprint -> weak canonical node. Weak so the table never extends a
  // node's lifetime; expired entries are pruned during bucket scans and by
  // the size-triggered sweep below.
  std::unordered_multimap<uint64_t, std::weak_ptr<const LogicalOp>> table;
  size_t sweep_threshold = 256;
};

NodeInterner::NodeInterner()
    : shards_(new Shard[kShardCount]), epoch_(NewEpochToken()) {}

NodeInterner::~NodeInterner() = default;

LogicalOpPtr NodeInterner::Intern(const LogicalOpPtr& node) {
  if (node == nullptr) return node;
  return InternNode(node);
}

LogicalOpPtr NodeInterner::InternNode(const LogicalOpPtr& node) {
  const void* epoch = epoch_.load(std::memory_order_acquire);
  if (node->interner_tag() == epoch) {
    // Already the canonical instance for this epoch.
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (auto* c = hits_counter_.load(std::memory_order_relaxed)) {
      c->Increment();
    }
    return node;
  }
  // GroupRef leaves borrow memo-scoped state (group ids and a LogicalProps
  // pointer owned by one search's memo); sharing them across searches
  // would alias unrelated groups. Leave such trees untouched and untagged.
  if (node->kind() == LogicalOpKind::kGroupRef) return node;

  std::vector<LogicalOpPtr> canonical_children;
  canonical_children.reserve(node->children().size());
  bool changed = false;
  for (const LogicalOpPtr& child : node->children()) {
    LogicalOpPtr canonical = InternNode(child);
    // A child that stayed untagged contains a GroupRef somewhere below:
    // propagate the pass-through without rebuilding or tagging.
    if (canonical->interner_tag() != epoch) return node;
    changed = changed || canonical.get() != child.get();
    canonical_children.push_back(std::move(canonical));
  }

  LogicalOpPtr candidate =
      changed ? node->WithNewChildren(std::move(canonical_children)) : node;
  // Fill both per-node caches (memoized into the node's atomics) so every
  // later TreeFingerprint/CountOps on a canonical tree is O(1).
  CountOps(*candidate);
  const uint64_t fp = TreeFingerprint(*candidate);
  Shard& shard = shards_[fp % kShardCount];

  std::lock_guard<std::mutex> lock(shard.mu);
  auto range = shard.table.equal_range(fp);
  for (auto it = range.first; it != range.second;) {
    LogicalOpPtr existing = it->second.lock();
    if (existing == nullptr) {
      it = shard.table.erase(it);
      continue;
    }
    // Children on both sides are canonical for this epoch, so structural
    // equality of the whole node reduces to LocalEquals plus child
    // pointer identity.
    bool same = existing->LocalEquals(*candidate) &&
                existing->children().size() == candidate->children().size();
    for (size_t i = 0; same && i < candidate->children().size(); ++i) {
      same = existing->children()[i].get() == candidate->children()[i].get();
    }
    if (same) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (auto* c = hits_counter_.load(std::memory_order_relaxed)) {
        c->Increment();
      }
      return existing;
    }
    ++it;
  }

  shard.table.emplace(fp, candidate);
  candidate->interner_tag_.store(epoch, std::memory_order_release);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (auto* c = misses_counter_.load(std::memory_order_relaxed)) {
    c->Increment();
  }
  if (auto* g = size_gauge_.load(std::memory_order_relaxed)) g->Add(1);

  if (shard.table.size() >= shard.sweep_threshold) {
    size_t removed = 0;
    for (auto it = shard.table.begin(); it != shard.table.end();) {
      if (it->second.expired()) {
        it = shard.table.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    shard.sweep_threshold =
        shard.table.size() * 2 < 256 ? 256 : shard.table.size() * 2;
    if (removed > 0) {
      if (auto* g = size_gauge_.load(std::memory_order_relaxed)) {
        g->Add(-static_cast<int64_t>(removed));
      }
    }
  }
  return candidate;
}

bool NodeInterner::Equal(const LogicalOpPtr& a, const LogicalOpPtr& b) const {
  if (a.get() == b.get()) return true;
  if (a == nullptr || b == nullptr) return false;
  const void* epoch = epoch_.load(std::memory_order_acquire);
  if (a->interner_tag() == epoch && b->interner_tag() == epoch) {
    // Two distinct canonical instances cannot share a structure.
    return false;
  }
  return LogicalTreeEquals(*a, *b);
}

bool NodeInterner::IsCanonical(const LogicalOpPtr& node) const {
  return node != nullptr &&
         node->interner_tag() == epoch_.load(std::memory_order_acquire);
}

void NodeInterner::Clear() {
  for (size_t i = 0; i < kShardCount; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].table.clear();
    shards_[i].sweep_threshold = 256;
  }
  epoch_.store(NewEpochToken(), std::memory_order_release);
  if (auto* g = size_gauge_.load(std::memory_order_relaxed)) g->Set(0);
}

size_t NodeInterner::size() const {
  size_t total = 0;
  for (size_t i = 0; i < kShardCount; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].table.size();
  }
  return total;
}

void NodeInterner::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    hits_counter_.store(nullptr, std::memory_order_relaxed);
    misses_counter_.store(nullptr, std::memory_order_relaxed);
    size_gauge_.store(nullptr, std::memory_order_relaxed);
    return;
  }
  obs::Gauge* gauge = metrics->gauge("qtf.interner.size");
  gauge->Set(static_cast<int64_t>(size()));
  hits_counter_.store(metrics->counter("qtf.interner.hits"),
                      std::memory_order_relaxed);
  misses_counter_.store(metrics->counter("qtf.interner.misses"),
                        std::memory_order_relaxed);
  size_gauge_.store(gauge, std::memory_order_relaxed);
}

}  // namespace qtf
