#ifndef QTF_LOGICAL_COLUMN_REGISTRY_H_
#define QTF_LOGICAL_COLUMN_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "expr/expr.h"
#include "types/value.h"

namespace qtf {

/// Name and type attached to a ColumnId.
struct ColumnInfo {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// Per-query allocator of column identities.
///
/// Every Get operator allocates fresh ids for its base-table columns and
/// every computed/aggregate output allocates a new id, so ids are unique
/// within a query and expressions can reference columns without positional
/// binding (see expr/expr.h). Shared by shared_ptr across the whole query
/// tree, the memo, and the SQL renderer.
class ColumnRegistry {
 public:
  ColumnRegistry() = default;
  ColumnRegistry(const ColumnRegistry&) = delete;
  ColumnRegistry& operator=(const ColumnRegistry&) = delete;

  ColumnId Allocate(std::string name, ValueType type) {
    columns_.push_back(ColumnInfo{std::move(name), type});
    return static_cast<ColumnId>(columns_.size() - 1);
  }

  /// Registers a column under a caller-chosen id, growing the registry with
  /// unnamed placeholder slots as needed. Used by the SQL binder to honor
  /// the canonical `c<id>` aliases GenerateSql emits, so a re-parsed query
  /// reuses the original tree's column identities exactly. The caller is
  /// responsible for not assigning the same id twice (the binder tracks
  /// definitions and reports a bind error instead of calling in again).
  void AllocateAt(ColumnId id, std::string name, ValueType type) {
    QTF_CHECK(id >= 0) << "negative column id " << id;
    if (static_cast<size_t>(id) >= columns_.size()) {
      columns_.resize(static_cast<size_t>(id) + 1);
    }
    columns_[static_cast<size_t>(id)] = ColumnInfo{std::move(name), type};
  }

  const ColumnInfo& Get(ColumnId id) const {
    QTF_CHECK(id >= 0 && static_cast<size_t>(id) < columns_.size())
        << "unknown column id " << id;
    return columns_[static_cast<size_t>(id)];
  }

  ValueType TypeOf(ColumnId id) const { return Get(id).type; }
  const std::string& NameOf(ColumnId id) const { return Get(id).name; }

  size_t size() const { return columns_.size(); }

  /// Resolver for expression rendering. The registry must outlive the
  /// returned functor.
  ColumnNameResolver MakeResolver() const {
    return [this](ColumnId id) { return NameOf(id); };
  }

 private:
  std::vector<ColumnInfo> columns_;
};

using ColumnRegistryPtr = std::shared_ptr<ColumnRegistry>;

}  // namespace qtf

#endif  // QTF_LOGICAL_COLUMN_REGISTRY_H_
