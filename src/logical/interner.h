#ifndef QTF_LOGICAL_INTERNER_H_
#define QTF_LOGICAL_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "logical/ops.h"

namespace qtf {

namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace obs

/// Hash-consing interner for logical operator trees.
///
/// Intern() maps every structurally-distinct subtree to one canonical
/// shared immutable instance, so repeated constructions of the same
/// logical shape — rule outputs re-deriving a parent over shared children,
/// generators emitting near-duplicate queries, the compression layer
/// optimizing thousands of sibling trees — collapse to pointer-shared
/// nodes. Canonical nodes carry their fingerprint and subtree size caches
/// (filled at intern time), and Equal() compares two canonical trees in
/// O(1) by pointer identity.
///
/// Invariants (see docs/architecture.md):
///  - Interned nodes are immutable and always held by shared_ptr; the
///    table stores weak references and never extends a node's lifetime.
///  - Intern() is purely structural: the returned tree is
///    LogicalTreeEquals-identical to its input, so optimizer results are
///    bit-for-bit unchanged whether or not trees are interned first.
///  - GroupRef leaves are memo-scoped (they borrow the memo's LogicalProps
///    and group ids); any tree containing one is returned untouched and
///    never enters the shared table.
///
/// Thread-safe: the table is sharded by fingerprint, each shard behind its
/// own mutex; node-side caches are atomics. Aggregate hit/miss counts are
/// schedule-independent for a fixed multiset of Intern() calls, so serial
/// and parallel runs over the same work agree on results (and tests only
/// pin counter values in serial sections).
class NodeInterner {
 public:
  NodeInterner();
  ~NodeInterner();

  NodeInterner(const NodeInterner&) = delete;
  NodeInterner& operator=(const NodeInterner&) = delete;

  /// Canonicalizes `node` bottom-up. Returns the canonical instance for
  /// its structure — `node` itself if it is first to claim the structure
  /// or already canonical, an existing pointer-shared instance otherwise.
  /// Null and GroupRef-containing trees pass through unchanged.
  LogicalOpPtr Intern(const LogicalOpPtr& node);

  /// O(1)-biased structural equality. Pointer-equal trees are equal; two
  /// distinct roots both canonical in this interner's current epoch are
  /// unequal; anything else falls back to LogicalTreeEquals (which itself
  /// short-circuits on cached fingerprints).
  bool Equal(const LogicalOpPtr& a, const LogicalOpPtr& b) const;

  /// True iff `node` is the canonical instance of its structure in this
  /// interner's current epoch.
  bool IsCanonical(const LogicalOpPtr& node) const;

  /// Drops every table entry and starts a new epoch: previously-interned
  /// nodes stay valid but are no longer treated as canonical.
  void Clear();

  /// Number of nodes whose structure was already interned (fast-path and
  /// table lookups included) / number of nodes newly inserted.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Live canonical entries across all shards (expired entries that have
  /// not been swept yet are counted until the next sweep touches them).
  size_t size() const;

  /// Mirrors hit/miss/size into `qtf.interner.{hits,misses,size}`. Pass
  /// nullptr to detach. Counters are cumulative from attach time.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  struct Shard;

  LogicalOpPtr InternNode(const LogicalOpPtr& node);

  static constexpr size_t kShardCount = 16;
  std::unique_ptr<Shard[]> shards_;

  // Current epoch token; its address is stored in each canonical node's
  // interner_tag. Replaced (never reused — see NewEpochToken) by Clear().
  std::atomic<const void*> epoch_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};

  std::atomic<obs::Counter*> hits_counter_{nullptr};
  std::atomic<obs::Counter*> misses_counter_{nullptr};
  std::atomic<obs::Gauge*> size_gauge_{nullptr};
};

}  // namespace qtf

#endif  // QTF_LOGICAL_INTERNER_H_
