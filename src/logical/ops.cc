#include "logical/ops.h"

#include "common/hash.h"
#include "common/str_util.h"

namespace qtf {

const char* LogicalOpKindToString(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kGet:
      return "Get";
    case LogicalOpKind::kSelect:
      return "Select";
    case LogicalOpKind::kProject:
      return "Project";
    case LogicalOpKind::kJoin:
      return "Join";
    case LogicalOpKind::kGroupByAgg:
      return "GroupByAgg";
    case LogicalOpKind::kUnionAll:
      return "UnionAll";
    case LogicalOpKind::kDistinct:
      return "Distinct";
    case LogicalOpKind::kGroupRef:
      return "GroupRef";
  }
  return "?";
}

const char* JoinKindToString(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
      return "Inner";
    case JoinKind::kLeftOuter:
      return "LeftOuter";
    case JoinKind::kLeftSemi:
      return "LeftSemi";
    case JoinKind::kLeftAnti:
      return "LeftAnti";
  }
  return "?";
}

bool LogicalProps::HasKeyWithin(const ColumnSet& cols) const {
  for (const ColumnSet& key : keys) {
    bool contained = true;
    for (ColumnId id : key) {
      if (cols.count(id) == 0) {
        contained = false;
        break;
      }
    }
    if (contained) return true;
  }
  return false;
}

double LogicalProps::DistinctOf(ColumnId id) const {
  auto it = distinct.find(id);
  if (it != distinct.end()) return it->second;
  return cardinality < 1.0 ? 1.0 : cardinality;
}

ValueType LogicalProps::TypeOf(ColumnId id) const {
  auto it = col_types.find(id);
  QTF_CHECK(it != col_types.end()) << "no type tracked for column c" << id;
  return it->second;
}

// ---- GetOp ----

std::shared_ptr<const GetOp> GetOp::Create(
    std::shared_ptr<const TableDef> table, ColumnRegistry* registry) {
  QTF_CHECK(registry != nullptr);
  std::vector<ColumnId> ids;
  ids.reserve(table->columns().size());
  for (const ColumnDef& col : table->columns()) {
    ids.push_back(registry->Allocate(table->name() + "." + col.name, col.type));
  }
  return std::make_shared<GetOp>(std::move(table), std::move(ids));
}

std::string GetOp::Describe(const ColumnNameResolver*) const {
  return "Get(" + table_->name() + ")";
}

size_t GetOp::LocalHash() const {
  uint64_t h = Fnv1a(table_->name());
  for (ColumnId id : columns_) h = HashCombine(h, static_cast<uint64_t>(id));
  return static_cast<size_t>(h);
}

bool GetOp::LocalEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kGet) return false;
  const auto& o = static_cast<const GetOp&>(other);
  return table_->name() == o.table_->name() && columns_ == o.columns_;
}

// ---- SelectOp ----

std::string SelectOp::Describe(const ColumnNameResolver* resolver) const {
  return "Select(" + predicate_->ToString(resolver) + ")";
}

size_t SelectOp::LocalHash() const {
  return static_cast<size_t>(HashCombine(0x5e1ec7, StableExprHash(*predicate_)));
}

bool SelectOp::LocalEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kSelect) return false;
  return ExprEquals(*predicate_,
                    *static_cast<const SelectOp&>(other).predicate_);
}

// ---- ProjectOp ----

std::vector<ColumnId> ProjectOp::OutputColumns() const {
  std::vector<ColumnId> out;
  out.reserve(items_.size());
  for (const ProjectItem& item : items_) out.push_back(item.id);
  return out;
}

std::string ProjectOp::Describe(const ColumnNameResolver* resolver) const {
  std::vector<std::string> parts;
  for (const ProjectItem& item : items_) {
    parts.push_back(item.expr->ToString(resolver));
  }
  return "Project(" + Join(parts, ", ") + ")";
}

size_t ProjectOp::LocalHash() const {
  // Each item folds both the defining expression and the defined column id,
  // order-sensitively, so reordered or re-aliased projection lists get
  // distinct hashes.
  uint64_t h = 0x9e3779b9;
  for (const ProjectItem& item : items_) {
    h = HashCombine(h, StableExprHash(*item.expr));
    h = HashCombine(h, static_cast<uint64_t>(item.id));
  }
  return static_cast<size_t>(h);
}

bool ProjectOp::LocalEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kProject) return false;
  const auto& o = static_cast<const ProjectOp&>(other);
  if (items_.size() != o.items_.size()) return false;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].id != o.items_[i].id) return false;
    if (!ExprEquals(*items_[i].expr, *o.items_[i].expr)) return false;
  }
  return true;
}

// ---- JoinOp ----

std::vector<ColumnId> JoinOp::OutputColumns() const {
  std::vector<ColumnId> out = child(0)->OutputColumns();
  if (join_kind_ == JoinKind::kInner || join_kind_ == JoinKind::kLeftOuter) {
    std::vector<ColumnId> right = child(1)->OutputColumns();
    out.insert(out.end(), right.begin(), right.end());
  }
  return out;
}

std::string JoinOp::Describe(const ColumnNameResolver* resolver) const {
  std::string pred =
      predicate_ == nullptr ? "TRUE" : predicate_->ToString(resolver);
  return std::string(JoinKindToString(join_kind_)) + "Join(" + pred + ")";
}

size_t JoinOp::LocalHash() const {
  // Mix the join kind through the full word before folding the predicate:
  // the old `kind << 4 ^ pred` form let predicate bits cancel the kind, so
  // e.g. a semi- and an anti-join over related predicates could alias.
  uint64_t h = HashCombine(0x70171, static_cast<uint64_t>(join_kind_));
  h = HashCombine(h, predicate_ == nullptr ? 0x7073u : StableExprHash(*predicate_));
  return static_cast<size_t>(h);
}

bool JoinOp::LocalEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kJoin) return false;
  const auto& o = static_cast<const JoinOp&>(other);
  if (join_kind_ != o.join_kind_) return false;
  if ((predicate_ == nullptr) != (o.predicate_ == nullptr)) return false;
  return predicate_ == nullptr || ExprEquals(*predicate_, *o.predicate_);
}

// ---- GroupByAggOp ----

std::vector<ColumnId> GroupByAggOp::OutputColumns() const {
  std::vector<ColumnId> out = group_cols_;
  for (const AggregateItem& item : aggregates_) out.push_back(item.id);
  return out;
}

std::string GroupByAggOp::Describe(const ColumnNameResolver* resolver) const {
  std::vector<std::string> groups;
  for (ColumnId id : group_cols_) {
    groups.push_back(resolver != nullptr ? (*resolver)(id)
                                         : "c" + std::to_string(id));
  }
  std::vector<std::string> aggs;
  for (const AggregateItem& item : aggregates_) {
    aggs.push_back(item.call.ToString(resolver));
  }
  return "GroupByAgg(groups=[" + Join(groups, ", ") + "], aggs=[" +
         Join(aggs, ", ") + "])";
}

size_t GroupByAggOp::LocalHash() const {
  uint64_t h = 0x6b0a6b;
  for (ColumnId id : group_cols_) h = HashCombine(h, static_cast<uint64_t>(id));
  h = HashCombine(h, group_cols_.size());  // separate groups from aggregates
  for (const AggregateItem& item : aggregates_) {
    h = HashCombine(h, StableAggregateCallHash(item.call));
    h = HashCombine(h, static_cast<uint64_t>(item.id));
  }
  return static_cast<size_t>(h);
}

bool GroupByAggOp::LocalEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kGroupByAgg) return false;
  const auto& o = static_cast<const GroupByAggOp&>(other);
  if (group_cols_ != o.group_cols_) return false;
  if (aggregates_.size() != o.aggregates_.size()) return false;
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (aggregates_[i].id != o.aggregates_[i].id) return false;
    if (!AggregateCallEquals(aggregates_[i].call, o.aggregates_[i].call)) {
      return false;
    }
  }
  return true;
}

// ---- UnionAllOp ----

std::string UnionAllOp::Describe(const ColumnNameResolver*) const {
  return "UnionAll";
}

size_t UnionAllOp::LocalHash() const {
  uint64_t h = 0xa11u;
  for (ColumnId id : output_ids_) h = HashCombine(h, static_cast<uint64_t>(id));
  return static_cast<size_t>(h);
}

bool UnionAllOp::LocalEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kUnionAll) return false;
  return output_ids_ == static_cast<const UnionAllOp&>(other).output_ids_;
}

// ---- DistinctOp ----

std::string DistinctOp::Describe(const ColumnNameResolver*) const {
  return "Distinct";
}

size_t DistinctOp::LocalHash() const { return 0xd157; }

bool DistinctOp::LocalEquals(const LogicalOp& other) const {
  return other.kind() == LogicalOpKind::kDistinct;
}

// ---- GroupRefOp ----

std::string GroupRefOp::Describe(const ColumnNameResolver*) const {
  return "GroupRef(" + std::to_string(group_id_) + ")";
}

size_t GroupRefOp::LocalHash() const {
  return 0x6e0f ^ static_cast<size_t>(group_id_);
}

bool GroupRefOp::LocalEquals(const LogicalOp& other) const {
  if (other.kind() != LogicalOpKind::kGroupRef) return false;
  return group_id_ == static_cast<const GroupRefOp&>(other).group_id_;
}


LogicalOpPtr GetOp::WithNewChildren(std::vector<LogicalOpPtr> children) const {
  QTF_CHECK(children.empty());
  return std::make_shared<GetOp>(table_, columns_);
}


LogicalOpPtr SelectOp::WithNewChildren(
    std::vector<LogicalOpPtr> children) const {
  QTF_CHECK(children.size() == 1);
  return std::make_shared<SelectOp>(std::move(children[0]), predicate_);
}


LogicalOpPtr ProjectOp::WithNewChildren(
    std::vector<LogicalOpPtr> children) const {
  QTF_CHECK(children.size() == 1);
  return std::make_shared<ProjectOp>(std::move(children[0]), items_);
}


LogicalOpPtr JoinOp::WithNewChildren(
    std::vector<LogicalOpPtr> children) const {
  QTF_CHECK(children.size() == 2);
  return std::make_shared<JoinOp>(join_kind_, std::move(children[0]),
                                  std::move(children[1]), predicate_);
}


LogicalOpPtr GroupByAggOp::WithNewChildren(
    std::vector<LogicalOpPtr> children) const {
  QTF_CHECK(children.size() == 1);
  return std::make_shared<GroupByAggOp>(std::move(children[0]), group_cols_,
                                        aggregates_);
}


LogicalOpPtr UnionAllOp::WithNewChildren(
    std::vector<LogicalOpPtr> children) const {
  QTF_CHECK(children.size() == 2);
  return std::make_shared<UnionAllOp>(std::move(children[0]),
                                      std::move(children[1]), output_ids_);
}


LogicalOpPtr DistinctOp::WithNewChildren(
    std::vector<LogicalOpPtr> children) const {
  QTF_CHECK(children.size() == 1);
  return std::make_shared<DistinctOp>(std::move(children[0]));
}


LogicalOpPtr GroupRefOp::WithNewChildren(
    std::vector<LogicalOpPtr> children) const {
  QTF_CHECK(children.empty());
  return std::make_shared<GroupRefOp>(group_id_, props_);
}

// ---- Tree helpers ----

namespace {

void AppendTree(const LogicalOp& op, const ColumnNameResolver* resolver,
                int depth, std::string* out) {
  *out += Indent(depth) + op.Describe(resolver) + "\n";
  for (const LogicalOpPtr& child : op.children()) {
    AppendTree(*child, resolver, depth + 1, out);
  }
}

}  // namespace

std::string LogicalTreeToString(const LogicalOp& root,
                                const ColumnNameResolver* resolver) {
  std::string out;
  AppendTree(root, resolver, 0, &out);
  return out;
}

bool LogicalTreeEquals(const LogicalOp& a, const LogicalOp& b) {
  // Canonicalized (interned) trees compare by identity; distinct cached
  // fingerprints prove inequality without recursing. Both checks are exact:
  // equal trees share a fingerprint by construction.
  if (&a == &b) return true;
  const uint64_t fa = a.cached_fingerprint();
  const uint64_t fb = b.cached_fingerprint();
  if (fa != 0 && fb != 0 && fa != fb) return false;
  if (!a.LocalEquals(b)) return false;
  if (a.children().size() != b.children().size()) return false;
  for (size_t i = 0; i < a.children().size(); ++i) {
    if (!LogicalTreeEquals(*a.children()[i], *b.children()[i])) return false;
  }
  return true;
}

int CountOps(const LogicalOp& root) {
  int count = root.subtree_size_.load(std::memory_order_relaxed);
  if (count != 0) return count;
  count = 1;
  for (const LogicalOpPtr& child : root.children()) {
    count += CountOps(*child);
  }
  root.subtree_size_.store(count, std::memory_order_relaxed);
  return count;
}

uint64_t TreeFingerprint(const LogicalOp& root) {
  uint64_t h = root.fingerprint_.load(std::memory_order_relaxed);
  if (h != 0) return h;
  h = Mix64((static_cast<uint64_t>(root.kind()) << 32) ^
            static_cast<uint64_t>(root.children().size()));
  h = Mix64(h ^ static_cast<uint64_t>(root.LocalHash()));
  for (const LogicalOpPtr& child : root.children()) {
    h = HashCombine(h, TreeFingerprint(*child));
  }
  if (h == 0) h = 1;  // keep 0 as the "not yet computed" sentinel
  root.fingerprint_.store(h, std::memory_order_relaxed);
  return h;
}

}  // namespace qtf
