#include "logical/props.h"

#include <algorithm>

namespace qtf {
namespace {

constexpr double kMinCardinality = 0.1;
constexpr double kDefaultSelectivity = 0.25;
constexpr double kRangeSelectivity = 0.3;
constexpr double kIsNullSelectivity = 0.05;
// Cap on the number of candidate keys tracked per group (avoids key-set
// blowup under deep join trees).
constexpr size_t kMaxKeys = 8;

void AddKey(std::vector<ColumnSet>* keys, ColumnSet key) {
  if (keys->size() >= kMaxKeys) return;
  for (const ColumnSet& existing : *keys) {
    if (existing == key) return;
  }
  keys->push_back(std::move(key));
}

/// Scales all distinct counts down to at most the new cardinality.
void CapDistinct(LogicalProps* props) {
  for (auto& [id, d] : props->distinct) {
    d = std::min(d, std::max(props->cardinality, 1.0));
  }
}

double EqualitySelectivity(const Expr& left, const Expr& right,
                           const LogicalProps& input) {
  bool left_col = left.kind() == ExprKind::kColumnRef;
  bool right_col = right.kind() == ExprKind::kColumnRef;
  if (left_col && right_col) {
    double dl = input.DistinctOf(static_cast<const ColumnRefExpr&>(left).id());
    double dr =
        input.DistinctOf(static_cast<const ColumnRefExpr&>(right).id());
    return 1.0 / std::max({dl, dr, 1.0});
  }
  if (left_col || right_col) {
    const auto& col = static_cast<const ColumnRefExpr&>(left_col ? left : right);
    return 1.0 / std::max(input.DistinctOf(col.id()), 1.0);
  }
  return kDefaultSelectivity;
}

}  // namespace

double EstimateSelectivity(const Expr& predicate, const LogicalProps& input) {
  switch (predicate.kind()) {
    case ExprKind::kAnd:
      return EstimateSelectivity(*predicate.children()[0], input) *
             EstimateSelectivity(*predicate.children()[1], input);
    case ExprKind::kOr: {
      double a = EstimateSelectivity(*predicate.children()[0], input);
      double b = EstimateSelectivity(*predicate.children()[1], input);
      return a + b - a * b;
    }
    case ExprKind::kNot:
      return 1.0 - EstimateSelectivity(*predicate.children()[0], input);
    case ExprKind::kIsNull:
      return kIsNullSelectivity;
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(predicate);
      double eq = EqualitySelectivity(*cmp.left(), *cmp.right(), input);
      switch (cmp.op()) {
        case CompareOp::kEq:
          return eq;
        case CompareOp::kNe:
          return std::max(0.0, 1.0 - eq);
        default:
          return kRangeSelectivity;
      }
    }
    case ExprKind::kConstant: {
      const Value& v = static_cast<const ConstantExpr&>(predicate).value();
      if (!v.is_null() && v.type() == ValueType::kBool) {
        return v.boolean() ? 1.0 : 0.0;
      }
      return kDefaultSelectivity;
    }
    default:
      return kDefaultSelectivity;
  }
}

ColumnSet EquiJoinInfo::LeftColumns() const {
  ColumnSet out;
  for (const auto& [l, r] : pairs) out.insert(l);
  return out;
}

ColumnSet EquiJoinInfo::RightColumns() const {
  ColumnSet out;
  for (const auto& [l, r] : pairs) out.insert(r);
  return out;
}

EquiJoinInfo ExtractEquiJoin(const ExprPtr& predicate, const ColumnSet& left,
                             const ColumnSet& right) {
  EquiJoinInfo info;
  if (predicate == nullptr) return info;
  for (const ExprPtr& conjunct : SplitConjuncts(predicate)) {
    bool handled = false;
    if (conjunct->kind() == ExprKind::kComparison) {
      const auto& cmp = static_cast<const ComparisonExpr&>(*conjunct);
      if (cmp.op() == CompareOp::kEq &&
          cmp.left()->kind() == ExprKind::kColumnRef &&
          cmp.right()->kind() == ExprKind::kColumnRef) {
        ColumnId a = static_cast<const ColumnRefExpr&>(*cmp.left()).id();
        ColumnId b = static_cast<const ColumnRefExpr&>(*cmp.right()).id();
        if (left.count(a) > 0 && right.count(b) > 0) {
          info.pairs.emplace_back(a, b);
          handled = true;
        } else if (left.count(b) > 0 && right.count(a) > 0) {
          info.pairs.emplace_back(b, a);
          handled = true;
        }
      }
    }
    if (!handled) info.residual.push_back(conjunct);
  }
  return info;
}

namespace {

LogicalProps DeriveGet(const GetOp& get) {
  LogicalProps props;
  props.output_cols = get.columns();
  props.cardinality = static_cast<double>(get.table().row_count());
  for (size_t i = 0; i < get.columns().size(); ++i) {
    props.distinct[get.columns()[i]] = std::max(
        1.0, get.table().columns()[i].distinct_count);
    props.col_types[get.columns()[i]] = get.table().columns()[i].type;
  }
  for (size_t i = 0; i < get.columns().size(); ++i) {
    if (get.table().columns()[i].null_fraction > 0.0) {
      props.nullable.insert(get.columns()[i]);
    }
  }
  for (const KeyDef& key : get.table().keys()) {
    ColumnSet key_cols;
    for (int ordinal : key.column_ordinals) {
      QTF_CHECK(ordinal >= 0 &&
                static_cast<size_t>(ordinal) < get.columns().size());
      key_cols.insert(get.columns()[static_cast<size_t>(ordinal)]);
    }
    AddKey(&props.keys, std::move(key_cols));
  }
  return props;
}

LogicalProps DeriveSelect(const SelectOp& select, const LogicalProps& input) {
  LogicalProps props = input;
  double sel = EstimateSelectivity(*select.predicate(), input);
  props.cardinality =
      std::max(kMinCardinality, input.cardinality * std::clamp(sel, 0.0, 1.0));
  CapDistinct(&props);
  return props;
}

LogicalProps DeriveProject(const ProjectOp& project,
                           const LogicalProps& input) {
  LogicalProps props;
  props.output_cols = project.OutputColumns();
  props.cardinality = input.cardinality;
  props.col_types = input.col_types;
  for (const ProjectItem& item : project.items()) {
    props.col_types[item.id] = item.expr->type();
  }
  ColumnSet out_set = props.OutputSet();
  for (const ProjectItem& item : project.items()) {
    if (item.expr->kind() == ExprKind::kColumnRef) {
      ColumnId ref = static_cast<const ColumnRefExpr&>(*item.expr).id();
      props.distinct[item.id] = input.DistinctOf(ref);
      if (input.nullable.count(ref) > 0) props.nullable.insert(item.id);
    } else {
      props.distinct[item.id] = std::max(1.0, input.cardinality);
      // Computed expressions are conservatively considered nullable.
      props.nullable.insert(item.id);
    }
  }
  // Keys survive if all their columns are still projected.
  for (const ColumnSet& key : input.keys) {
    bool survives = true;
    for (ColumnId id : key) {
      if (out_set.count(id) == 0) {
        survives = false;
        break;
      }
    }
    if (survives) AddKey(&props.keys, key);
  }
  return props;
}

LogicalProps DeriveJoin(const JoinOp& join, const LogicalProps& left,
                        const LogicalProps& right) {
  LogicalProps props;
  props.output_cols = join.OutputColumns();

  // Combined properties used for predicate selectivity.
  LogicalProps combined;
  combined.cardinality = std::max(1.0, left.cardinality * right.cardinality);
  combined.distinct = left.distinct;
  combined.distinct.insert(right.distinct.begin(), right.distinct.end());

  double sel = 1.0;
  if (join.predicate() != nullptr) {
    sel = std::clamp(EstimateSelectivity(*join.predicate(), combined), 0.0,
                     1.0);
  }
  double inner_card =
      std::max(kMinCardinality, left.cardinality * right.cardinality * sel);

  EquiJoinInfo equi = ExtractEquiJoin(join.predicate(), left.OutputSet(),
                                      right.OutputSet());
  bool right_unique = right.HasKeyWithin(equi.RightColumns());
  bool left_unique = left.HasKeyWithin(equi.LeftColumns());

  props.col_types = left.col_types;
  props.col_types.insert(right.col_types.begin(), right.col_types.end());

  switch (join.join_kind()) {
    case JoinKind::kInner: {
      props.cardinality = inner_card;
      props.distinct = combined.distinct;
      props.nullable = left.nullable;
      props.nullable.insert(right.nullable.begin(), right.nullable.end());
      if (right_unique) {
        for (const ColumnSet& key : left.keys) AddKey(&props.keys, key);
      }
      if (left_unique) {
        for (const ColumnSet& key : right.keys) AddKey(&props.keys, key);
      }
      // Concatenated keys always hold.
      for (const ColumnSet& kl : left.keys) {
        for (const ColumnSet& kr : right.keys) {
          ColumnSet merged = kl;
          merged.insert(kr.begin(), kr.end());
          AddKey(&props.keys, std::move(merged));
        }
      }
      break;
    }
    case JoinKind::kLeftOuter: {
      props.cardinality = std::max(inner_card, left.cardinality);
      props.distinct = combined.distinct;
      props.nullable = left.nullable;
      // Every right-side column can be NULL-extended.
      for (ColumnId id : right.output_cols) props.nullable.insert(id);
      if (right_unique) {
        for (const ColumnSet& key : left.keys) AddKey(&props.keys, key);
      }
      for (const ColumnSet& kl : left.keys) {
        for (const ColumnSet& kr : right.keys) {
          ColumnSet merged = kl;
          merged.insert(kr.begin(), kr.end());
          AddKey(&props.keys, std::move(merged));
        }
      }
      break;
    }
    case JoinKind::kLeftSemi: {
      double match_fraction =
          std::min(1.0, sel * std::max(1.0, right.cardinality));
      props.cardinality =
          std::max(kMinCardinality, left.cardinality * match_fraction);
      props.distinct = left.distinct;
      props.keys = left.keys;
      props.nullable = left.nullable;
      break;
    }
    case JoinKind::kLeftAnti: {
      double match_fraction =
          std::min(1.0, sel * std::max(1.0, right.cardinality));
      props.cardinality = std::max(
          kMinCardinality, left.cardinality * (1.0 - match_fraction * 0.9));
      props.distinct = left.distinct;
      props.keys = left.keys;
      props.nullable = left.nullable;
      break;
    }
  }
  CapDistinct(&props);
  return props;
}

LogicalProps DeriveGroupBy(const GroupByAggOp& agg,
                           const LogicalProps& input) {
  LogicalProps props;
  props.output_cols = agg.OutputColumns();
  props.col_types = input.col_types;
  for (const AggregateItem& item : agg.aggregates()) {
    props.col_types[item.id] = item.call.ResultType();
  }
  if (agg.group_cols().empty()) {
    props.cardinality = 1.0;
    AddKey(&props.keys, ColumnSet{});
  } else {
    double groups = 1.0;
    for (ColumnId id : agg.group_cols()) {
      groups *= std::max(1.0, input.DistinctOf(id));
      if (groups > input.cardinality) break;
    }
    props.cardinality =
        std::max(1.0, std::min(groups, input.cardinality));
    ColumnSet key(agg.group_cols().begin(), agg.group_cols().end());
    AddKey(&props.keys, std::move(key));
    for (ColumnId id : agg.group_cols()) {
      props.distinct[id] =
          std::min(input.DistinctOf(id), props.cardinality);
    }
  }
  for (ColumnId id : agg.group_cols()) {
    if (input.nullable.count(id) > 0) props.nullable.insert(id);
  }
  for (const AggregateItem& item : agg.aggregates()) {
    props.distinct[item.id] = props.cardinality;
    if (item.call.kind != AggKind::kCountStar &&
        item.call.kind != AggKind::kCount) {
      props.nullable.insert(item.id);
    }
  }
  CapDistinct(&props);
  return props;
}

LogicalProps DeriveUnionAll(const UnionAllOp& u, const LogicalProps& left,
                            const LogicalProps& right) {
  LogicalProps props;
  props.output_cols = u.output_ids();
  props.col_types = left.col_types;
  props.col_types.insert(right.col_types.begin(), right.col_types.end());
  props.cardinality = std::max(kMinCardinality,
                               left.cardinality + right.cardinality);
  const std::vector<ColumnId> lcols = u.child(0)->OutputColumns();
  const std::vector<ColumnId> rcols = u.child(1)->OutputColumns();
  QTF_CHECK(lcols.size() == u.output_ids().size());
  QTF_CHECK(rcols.size() == u.output_ids().size());
  for (size_t i = 0; i < u.output_ids().size(); ++i) {
    props.distinct[u.output_ids()[i]] = std::min(
        props.cardinality,
        left.DistinctOf(lcols[i]) + right.DistinctOf(rcols[i]));
    if (left.nullable.count(lcols[i]) > 0 ||
        right.nullable.count(rcols[i]) > 0) {
      props.nullable.insert(u.output_ids()[i]);
    }
    props.col_types[u.output_ids()[i]] = left.TypeOf(lcols[i]);
  }
  // Bag union preserves no keys.
  return props;
}

LogicalProps DeriveDistinct(const LogicalProps& input) {
  LogicalProps props = input;
  double combos = 1.0;
  for (ColumnId id : input.output_cols) {
    combos *= std::max(1.0, input.DistinctOf(id));
    if (combos > input.cardinality) break;
  }
  props.cardinality = std::max(1.0, std::min(combos, input.cardinality));
  AddKey(&props.keys, props.OutputSet());
  CapDistinct(&props);
  return props;
}

}  // namespace

LogicalProps DeriveProps(const LogicalOp& op,
                         const std::vector<const LogicalProps*>& child_props) {
  switch (op.kind()) {
    case LogicalOpKind::kGet:
      QTF_CHECK(child_props.empty());
      return DeriveGet(static_cast<const GetOp&>(op));
    case LogicalOpKind::kSelect:
      QTF_CHECK(child_props.size() == 1);
      return DeriveSelect(static_cast<const SelectOp&>(op), *child_props[0]);
    case LogicalOpKind::kProject:
      QTF_CHECK(child_props.size() == 1);
      return DeriveProject(static_cast<const ProjectOp&>(op), *child_props[0]);
    case LogicalOpKind::kJoin:
      QTF_CHECK(child_props.size() == 2);
      return DeriveJoin(static_cast<const JoinOp&>(op), *child_props[0],
                        *child_props[1]);
    case LogicalOpKind::kGroupByAgg:
      QTF_CHECK(child_props.size() == 1);
      return DeriveGroupBy(static_cast<const GroupByAggOp&>(op),
                           *child_props[0]);
    case LogicalOpKind::kUnionAll:
      QTF_CHECK(child_props.size() == 2);
      return DeriveUnionAll(static_cast<const UnionAllOp&>(op),
                            *child_props[0], *child_props[1]);
    case LogicalOpKind::kDistinct:
      QTF_CHECK(child_props.size() == 1);
      return DeriveDistinct(*child_props[0]);
    case LogicalOpKind::kGroupRef:
      QTF_CHECK(child_props.empty());
      return static_cast<const GroupRefOp&>(op).props();
  }
  QTF_CHECK(false) << "unknown logical op kind";
  return LogicalProps{};
}

LogicalProps DeriveTreeProps(const LogicalOp& root) {
  std::vector<LogicalProps> owned;
  owned.reserve(root.children().size());
  std::vector<const LogicalProps*> child_ptrs;
  for (const LogicalOpPtr& child : root.children()) {
    owned.push_back(DeriveTreeProps(*child));
  }
  for (const LogicalProps& p : owned) child_ptrs.push_back(&p);
  return DeriveProps(root, child_ptrs);
}

}  // namespace qtf
