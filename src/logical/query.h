#ifndef QTF_LOGICAL_QUERY_H_
#define QTF_LOGICAL_QUERY_H_

#include <memory>
#include <string>

#include "logical/column_registry.h"
#include "logical/ops.h"

namespace qtf {

/// A complete query: the logical tree plus the registry that owns its
/// column identities. This is the unit the optimizer, executor, query
/// generator and test-suite machinery pass around.
struct Query {
  LogicalOpPtr root;
  ColumnRegistryPtr registry;

  bool valid() const { return root != nullptr && registry != nullptr; }
};

}  // namespace qtf

#endif  // QTF_LOGICAL_QUERY_H_
