#ifndef QTF_LOGICAL_PROPS_H_
#define QTF_LOGICAL_PROPS_H_

#include <utility>
#include <vector>

#include "logical/ops.h"

namespace qtf {

/// Derives the logical properties of `op` given the (already derived)
/// properties of its children. Pure function; used by the memo (per group)
/// and by DeriveTreeProps for standalone trees.
LogicalProps DeriveProps(const LogicalOp& op,
                         const std::vector<const LogicalProps*>& child_props);

/// Recursively derives properties for a whole tree (GroupRef leaves use
/// their cached group properties).
LogicalProps DeriveTreeProps(const LogicalOp& root);

/// Estimated fraction of input rows satisfying `predicate`, given the
/// input's properties (uses per-column distinct counts; independence
/// assumed between conjuncts).
double EstimateSelectivity(const Expr& predicate, const LogicalProps& input);

/// Equi-join structure extracted from a join predicate: the column pairs
/// equated across sides and the remaining (non-equi) conjuncts.
struct EquiJoinInfo {
  /// (left column, right column) pairs from conjuncts `l = r`.
  std::vector<std::pair<ColumnId, ColumnId>> pairs;
  /// Conjuncts that are not cross-side column equalities.
  std::vector<ExprPtr> residual;

  ColumnSet LeftColumns() const;
  ColumnSet RightColumns() const;
};

/// Splits `predicate` (may be nullptr) into equi-join pairs and residual,
/// relative to the given left/right output column sets.
EquiJoinInfo ExtractEquiJoin(const ExprPtr& predicate, const ColumnSet& left,
                             const ColumnSet& right);

}  // namespace qtf

#endif  // QTF_LOGICAL_PROPS_H_
