#include "logical/validate.h"

namespace qtf {
namespace {

Status CheckReferences(const Expr& expr, const ColumnSet& available,
                       const char* context) {
  ColumnSet cols = ColumnsOf(expr);
  for (ColumnId id : cols) {
    if (available.count(id) == 0) {
      return Status::Internal(std::string(context) +
                              " references column c" + std::to_string(id) +
                              " not produced by its input");
    }
  }
  return Status::OK();
}

Status ValidateNode(const LogicalOp& op, const ColumnRegistry& registry) {
  // Gather child outputs.
  ColumnSet child_outputs;
  for (const LogicalOpPtr& child : op.children()) {
    for (ColumnId id : child->OutputColumns()) child_outputs.insert(id);
  }

  switch (op.kind()) {
    case LogicalOpKind::kGet:
    case LogicalOpKind::kGroupRef:
      return Status::OK();
    case LogicalOpKind::kSelect: {
      const auto& select = static_cast<const SelectOp&>(op);
      if (select.predicate()->type() != ValueType::kBool) {
        return Status::Internal("Select predicate is not boolean");
      }
      return CheckReferences(*select.predicate(), child_outputs, "Select");
    }
    case LogicalOpKind::kProject: {
      const auto& project = static_cast<const ProjectOp&>(op);
      for (const ProjectItem& item : project.items()) {
        QTF_RETURN_NOT_OK(
            CheckReferences(*item.expr, child_outputs, "Project"));
        if (item.expr->kind() == ExprKind::kColumnRef) {
          ColumnId ref = static_cast<const ColumnRefExpr&>(*item.expr).id();
          if (item.id != ref) {
            return Status::Internal(
                "Project pass-through item must keep its column id");
          }
        } else {
          if (child_outputs.count(item.id) > 0) {
            return Status::Internal(
                "Project computed item reuses an input column id");
          }
        }
      }
      return Status::OK();
    }
    case LogicalOpKind::kJoin: {
      const auto& join = static_cast<const JoinOp&>(op);
      if (join.predicate() == nullptr) return Status::OK();
      if (join.predicate()->type() != ValueType::kBool) {
        return Status::Internal("Join predicate is not boolean");
      }
      return CheckReferences(*join.predicate(), child_outputs, "Join");
    }
    case LogicalOpKind::kGroupByAgg: {
      const auto& agg = static_cast<const GroupByAggOp&>(op);
      for (ColumnId id : agg.group_cols()) {
        if (child_outputs.count(id) == 0) {
          return Status::Internal("grouping column not in input");
        }
      }
      for (const AggregateItem& item : agg.aggregates()) {
        if (item.call.arg != nullptr) {
          QTF_RETURN_NOT_OK(
              CheckReferences(*item.call.arg, child_outputs, "Aggregate"));
        } else if (item.call.kind != AggKind::kCountStar) {
          return Status::Internal("non-COUNT(*) aggregate missing argument");
        }
        if (child_outputs.count(item.id) > 0) {
          return Status::Internal("aggregate output reuses an input id");
        }
      }
      return Status::OK();
    }
    case LogicalOpKind::kUnionAll: {
      const auto& u = static_cast<const UnionAllOp&>(op);
      std::vector<ColumnId> lcols = u.child(0)->OutputColumns();
      std::vector<ColumnId> rcols = u.child(1)->OutputColumns();
      if (lcols.size() != rcols.size() ||
          lcols.size() != u.output_ids().size()) {
        return Status::Internal("UnionAll arity mismatch");
      }
      for (size_t i = 0; i < lcols.size(); ++i) {
        if (registry.TypeOf(lcols[i]) != registry.TypeOf(rcols[i]) ||
            registry.TypeOf(lcols[i]) != registry.TypeOf(u.output_ids()[i])) {
          return Status::Internal("UnionAll type mismatch at position " +
                                  std::to_string(i));
        }
      }
      return Status::OK();
    }
    case LogicalOpKind::kDistinct:
      return Status::OK();
  }
  return Status::Internal("unknown operator kind");
}

}  // namespace

Status ValidateTree(const LogicalOp& root, const ColumnRegistry& registry) {
  for (const LogicalOpPtr& child : root.children()) {
    QTF_RETURN_NOT_OK(ValidateTree(*child, registry));
  }
  return ValidateNode(root, registry);
}

}  // namespace qtf
