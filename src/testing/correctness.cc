#include "testing/correctness.h"

#include <map>
#include <set>

#include "obs/trace.h"

namespace qtf {

Result<CorrectnessReport> CorrectnessRunner::Run(
    const TestSuite& suite,
    const std::vector<std::vector<int>>& assignment) {
  QTF_CHECK(assignment.size() == suite.targets.size());
  obs::PhaseSpan span(optimizer_->metrics(), "correctness.run");
  runs_->Increment();
  CorrectnessReport report;

  // Execute Plan(q) once per distinct query in the assignment.
  std::set<int> used;
  for (const auto& queries : assignment) {
    used.insert(queries.begin(), queries.end());
  }
  std::map<int, OptimizeResult> base_plans;
  std::map<int, ResultSet> base_results;
  for (int q : used) {
    const TestCase& test_case = suite.queries[static_cast<size_t>(q)];
    QTF_ASSIGN_OR_RETURN(OptimizeResult optimized,
                         optimizer_->Optimize(test_case.query));
    Executor executor(db_, test_case.query.registry.get());
    QTF_ASSIGN_OR_RETURN(ResultSet result, executor.Execute(*optimized.plan));
    ++report.plans_executed;
    base_plans.emplace(q, std::move(optimized));
    base_results.emplace(q, std::move(result));
  }

  // Validate every (target, query) edge.
  for (size_t t = 0; t < assignment.size(); ++t) {
    OptimizerOptions options;
    for (RuleId id : suite.targets[t].rules) {
      options.disabled_rules.insert(id);
    }
    for (int q : assignment[t]) {
      const TestCase& test_case = suite.queries[static_cast<size_t>(q)];
      QTF_ASSIGN_OR_RETURN(OptimizeResult restricted,
                           optimizer_->Optimize(test_case.query, options));
      // Identical plans are guaranteed to produce identical results
      // (Section 2.3, footnote 1) — skip the execution.
      if (PhysicalTreeEquals(*restricted.plan, *base_plans.at(q).plan)) {
        ++report.skipped_identical_plans;
        continue;
      }
      Executor executor(db_, test_case.query.registry.get());
      QTF_ASSIGN_OR_RETURN(ResultSet result,
                           executor.Execute(*restricted.plan));
      ++report.plans_executed;
      if (!ResultBagEquals(base_results.at(q), result)) {
        CorrectnessViolation violation;
        violation.target = static_cast<int>(t);
        violation.query = q;
        violation.target_name =
            suite.targets[t].ToString(optimizer_->rules());
        violation.sql = test_case.sql;
        violation.base_rows = base_results.at(q).row_count();
        violation.restricted_rows = result.row_count();
        report.violations.push_back(std::move(violation));
      }
    }
  }
  plans_executed_->Increment(report.plans_executed);
  skipped_identical_->Increment(report.skipped_identical_plans);
  violations_->Increment(static_cast<int64_t>(report.violations.size()));
  return report;
}

Result<bool> IsRuleRelevant(Optimizer* optimizer, const Query& query,
                            RuleId rule) {
  QTF_ASSIGN_OR_RETURN(OptimizeResult base, optimizer->Optimize(query));
  OptimizerOptions options;
  options.disabled_rules.insert(rule);
  QTF_ASSIGN_OR_RETURN(OptimizeResult restricted,
                       optimizer->Optimize(query, options));
  return !PhysicalTreeEquals(*base.plan, *restricted.plan);
}

}  // namespace qtf
