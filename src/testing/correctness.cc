#include "testing/correctness.h"

#include <map>
#include <set>

#include "obs/trace.h"

namespace qtf {

namespace {

/// Decorrelates retry attempts of the same validation step: the salt feeds
/// the deterministic fault injector, so each attempt re-rolls its faults.
uint64_t AttemptSalt(uint64_t base, int attempt) {
  return base * 0x9e3779b97f4a7c15ULL +
         static_cast<uint64_t>(static_cast<uint32_t>(attempt));
}

}  // namespace

Result<OptimizeResult> CorrectnessRunner::OptimizeWithRetry(
    const Query& query, OptimizerOptions options, uint64_t salt_base,
    const CancellationToken& cancel) {
  options.cancel = cancel;
  FaultInjector* injector = optimizer_->fault_injector();
  const RetryPolicy& policy = optimizer_->retry_policy();
  const int max_attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  Result<OptimizeResult> result =
      Status::Internal("optimize retry loop made no attempt");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    options.fault_salt = AttemptSalt(salt_base, attempt);
    result = optimizer_->Optimize(query, options);
    if (result.ok() || !IsTransient(result.status())) return result;
    if (attempt + 1 >= max_attempts) break;
    const double jitter =
        injector != nullptr
            ? injector->JitterFactor(options.fault_salt, attempt,
                                     policy.jitter_fraction)
            : 1.0;
    SleepForBackoff(policy, attempt, jitter);
  }
  return result;
}

Result<ResultSet> CorrectnessRunner::ExecuteWithRetry(
    const Query& query, const PhysicalOp& plan, uint64_t salt_base,
    const CancellationToken& cancel) {
  const FaultInjector* injector = optimizer_->fault_injector();
  const RetryPolicy& policy = optimizer_->retry_policy();
  const int max_attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  Result<ResultSet> result =
      Status::Internal("execute retry loop made no attempt");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (cancel.cancelled()) {
      return Status::Cancelled("correctness run cancelled");
    }
    const uint64_t salt = AttemptSalt(salt_base, attempt);
    Executor executor(db_, query.registry.get());
    executor.set_program_cache(&program_cache_);
    executor.set_metrics(optimizer_->metrics());
    if (injector != nullptr) executor.set_fault_injection(injector, salt);
    result = executor.Execute(plan);
    if (result.ok() || !IsTransient(result.status())) return result;
    if (attempt + 1 >= max_attempts) break;
    const double jitter =
        injector != nullptr
            ? injector->JitterFactor(salt, attempt, policy.jitter_fraction)
            : 1.0;
    SleepForBackoff(policy, attempt, jitter);
  }
  return result;
}

Result<CorrectnessReport> CorrectnessRunner::Run(
    const TestSuite& suite,
    const std::vector<std::vector<int>>& assignment,
    CancellationToken cancel) {
  QTF_CHECK(assignment.size() == suite.targets.size());
  obs::PhaseSpan span(optimizer_->metrics(), "correctness.run");
  runs_->Increment();
  CorrectnessReport report;

  // Execute Plan(q) once per distinct query in the assignment. A query
  // whose base plan stays kUnavailable after retries degrades every edge
  // that references it into a skipped validation (there is nothing to
  // compare against); any other failure aborts the run.
  std::set<int> used;
  for (const auto& queries : assignment) {
    used.insert(queries.begin(), queries.end());
  }
  std::map<int, OptimizeResult> base_plans;
  std::map<int, ResultSet> base_results;
  std::set<int> base_unavailable;
  for (int q : used) {
    if (cancel.cancelled()) {
      return Status::Cancelled("correctness run cancelled");
    }
    const TestCase& test_case = suite.queries[static_cast<size_t>(q)];
    const uint64_t salt_base =
        FaultInjector::EdgeKey(/*target=*/-1, q, /*attempt=*/0);
    Result<OptimizeResult> optimized =
        OptimizeWithRetry(test_case.query, OptimizerOptions{}, salt_base,
                          cancel);
    if (!optimized.ok()) {
      if (IsTransient(optimized.status())) {
        base_unavailable.insert(q);
        continue;
      }
      return optimized.status();
    }
    Result<ResultSet> result =
        ExecuteWithRetry(test_case.query, *optimized->plan, salt_base,
                         cancel);
    if (!result.ok()) {
      if (IsTransient(result.status())) {
        base_unavailable.insert(q);
        continue;
      }
      return result.status();
    }
    ++report.plans_executed;
    base_plans.emplace(q, *std::move(optimized));
    base_results.emplace(q, *std::move(result));
  }

  // Validate every (target, query) edge.
  for (size_t t = 0; t < assignment.size(); ++t) {
    OptimizerOptions options;
    for (RuleId id : suite.targets[t].rules) {
      options.disabled_rules.insert(id);
    }
    for (int q : assignment[t]) {
      if (cancel.cancelled()) {
        return Status::Cancelled("correctness run cancelled");
      }
      if (base_unavailable.count(q) > 0) {
        ++report.skipped_unavailable;
        continue;
      }
      const TestCase& test_case = suite.queries[static_cast<size_t>(q)];
      const uint64_t salt_base =
          FaultInjector::EdgeKey(static_cast<int>(t), q, /*attempt=*/0);
      Result<OptimizeResult> restricted =
          OptimizeWithRetry(test_case.query, options, salt_base, cancel);
      if (!restricted.ok()) {
        if (IsTransient(restricted.status())) {
          ++report.skipped_unavailable;
          continue;
        }
        return restricted.status();
      }
      // Identical plans are guaranteed to produce identical results
      // (Section 2.3, footnote 1) — skip the execution.
      if (PhysicalTreeEquals(*restricted->plan, *base_plans.at(q).plan)) {
        ++report.skipped_identical_plans;
        continue;
      }
      Result<ResultSet> result =
          ExecuteWithRetry(test_case.query, *restricted->plan, salt_base,
                           cancel);
      if (!result.ok()) {
        if (IsTransient(result.status())) {
          ++report.skipped_unavailable;
          continue;
        }
        return result.status();
      }
      ++report.plans_executed;
      if (!ResultBagEquals(base_results.at(q), *result)) {
        CorrectnessViolation violation;
        violation.target = static_cast<int>(t);
        violation.query = q;
        violation.target_name =
            suite.targets[t].ToString(optimizer_->rules());
        violation.sql = test_case.sql;
        violation.base_rows = base_results.at(q).row_count();
        violation.restricted_rows = result->row_count();
        report.violations.push_back(std::move(violation));
      }
    }
  }
  plans_executed_->Increment(report.plans_executed);
  skipped_identical_->Increment(report.skipped_identical_plans);
  skipped_unavailable_->Increment(report.skipped_unavailable);
  violations_->Increment(static_cast<int64_t>(report.violations.size()));
  return report;
}

Result<bool> IsRuleRelevant(Optimizer* optimizer, const Query& query,
                            RuleId rule) {
  QTF_ASSIGN_OR_RETURN(OptimizeResult base, optimizer->Optimize(query));
  OptimizerOptions options;
  options.disabled_rules.insert(rule);
  QTF_ASSIGN_OR_RETURN(OptimizeResult restricted,
                       optimizer->Optimize(query, options));
  return !PhysicalTreeEquals(*base.plan, *restricted.plan);
}

}  // namespace qtf
