#ifndef QTF_TESTING_CORRECTNESS_H_
#define QTF_TESTING_CORRECTNESS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "qgen/test_suite.h"

namespace qtf {

/// A correctness bug found by the harness: executing Plan(q) and
/// Plan(q, ¬target) returned different results, implicating the target's
/// rule(s) (paper Section 2.3).
struct CorrectnessViolation {
  int target = -1;
  int query = -1;
  std::string target_name;
  std::string sql;
  int64_t base_rows = 0;
  int64_t restricted_rows = 0;
};

/// Outcome of executing a (possibly compressed) test suite.
struct CorrectnessReport {
  /// Plans actually executed (base plans once per distinct query, plus one
  /// per validated edge whose plan differed).
  int plans_executed = 0;
  /// Edge validations skipped because Plan(q) and Plan(q, ¬target) were
  /// structurally identical (paper Section 2.3, footnote 1).
  int skipped_identical_plans = 0;
  /// Validations skipped because optimization or execution stayed
  /// kUnavailable after retries (graceful degradation under fault
  /// injection; also counted in `qtf.robustness.skipped_validations`).
  /// A skipped validation is NOT a pass — rerun with a fresh fault seed to
  /// recover the coverage.
  int skipped_unavailable = 0;
  std::vector<CorrectnessViolation> violations;

  bool ok() const { return violations.empty(); }
};

/// The Test Suite Execution module of Figure 2: for each query of the
/// suite's assignment, execute Plan(q) once; for each (target, query) edge,
/// execute Plan(q, ¬target) and compare result bags.
class CorrectnessRunner {
 public:
  CorrectnessRunner(const Database* db, Optimizer* optimizer)
      : db_(db), optimizer_(optimizer) {
    QTF_CHECK(db_ != nullptr && optimizer_ != nullptr);
    obs::MetricsRegistry* metrics = optimizer_->metrics();
    runs_ = metrics->counter("qtf.correctness.runs");
    plans_executed_ = metrics->counter("qtf.correctness.plans_executed");
    skipped_identical_ =
        metrics->counter("qtf.correctness.skipped_identical_plans");
    violations_ = metrics->counter("qtf.correctness.violations");
    skipped_unavailable_ =
        metrics->counter("qtf.robustness.skipped_validations");
    program_cache_.set_metrics(metrics->counter("qtf.exec.eval_cache_hits"),
                               metrics->counter("qtf.exec.eval_cache_misses"));
  }

  /// Cancellation token checked between validations and passed into every
  /// optimization; a triggered token makes Run return kCancelled. This is
  /// the instance-wide default — concurrent callers that each need their
  /// own token (one runner serving many requests, see docs/serving.md)
  /// should pass it to the three-argument Run instead of racing on this
  /// setter.
  void set_cancellation(CancellationToken cancel) {
    cancel_ = std::move(cancel);
  }

  /// Validates `assignment` (per target: query indices into the suite).
  /// Pass a CompressionSolution's assignment, or suite.per_target for the
  /// BASELINE mapping.
  ///
  /// Robustness: transient (kUnavailable) optimization/execution failures
  /// are retried per the optimizer's RetryPolicy with attempt-salted fault
  /// decisions; a validation that stays unavailable is skipped and counted
  /// (CorrectnessReport::skipped_unavailable) rather than failing the run.
  Result<CorrectnessReport> Run(
      const TestSuite& suite,
      const std::vector<std::vector<int>>& assignment) {
    return Run(suite, assignment, cancel_);
  }

  /// As above with an explicit per-call cancellation token. Re-entrant:
  /// all mutable state is per-call (the shared EvalProgramCache and the
  /// metrics counters are thread-safe), so one resident runner can serve
  /// concurrent requests, each cancellable independently.
  Result<CorrectnessReport> Run(
      const TestSuite& suite,
      const std::vector<std::vector<int>>& assignment,
      CancellationToken cancel);

 private:
  /// Optimize with transient-failure retries; `salt_base` keys the fault
  /// decisions of each attempt.
  Result<OptimizeResult> OptimizeWithRetry(const Query& query,
                                           OptimizerOptions options,
                                           uint64_t salt_base,
                                           const CancellationToken& cancel);
  /// Execute with transient-failure retries (fresh Executor per attempt so
  /// the node-sequence keys restart from zero each time).
  Result<ResultSet> ExecuteWithRetry(const Query& query,
                                     const PhysicalOp& plan,
                                     uint64_t salt_base,
                                     const CancellationToken& cancel);

  const Database* db_;
  Optimizer* optimizer_;
  CancellationToken cancel_;
  /// Shared across every per-attempt Executor (serial and parallel runs):
  /// Plan(q) and Plan(q, ¬target) overwhelmingly reuse the same predicate
  /// and projection expressions, so compiled EvalPrograms are built once.
  /// Thread-safe; hit/miss counters land in qtf.exec.eval_cache_*.
  EvalProgramCache program_cache_;
  obs::Counter* runs_ = nullptr;
  obs::Counter* plans_executed_ = nullptr;
  obs::Counter* skipped_identical_ = nullptr;
  obs::Counter* violations_ = nullptr;
  obs::Counter* skipped_unavailable_ = nullptr;
};

/// Section-7 query-generation variant support: a rule is *relevant* for a
/// query if disabling it changes the optimizer's chosen plan.
Result<bool> IsRuleRelevant(Optimizer* optimizer, const Query& query,
                            RuleId rule);

}  // namespace qtf

#endif  // QTF_TESTING_CORRECTNESS_H_
