#ifndef QTF_TESTING_FRAMEWORK_H_
#define QTF_TESTING_FRAMEWORK_H_

#include <memory>

#include "common/limits.h"
#include "common/thread_pool.h"
#include "compress/compression.h"
#include "compress/matching.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/plan_cache.h"
#include "qgen/generation.h"
#include "qgen/test_suite.h"
#include "rules/default_rules.h"
#include "storage/tpch.h"
#include "testing/correctness.h"

namespace qtf {

/// One-stop assembly of the rule-testing framework of Figure 2: the fixed
/// test database, the rule-based optimizer with its testing extensions,
/// query generation, test-suite generation/compression, correctness
/// execution, and the observability registry they all report into.
/// Examples, tests and benchmarks build on this facade.
class RuleTestFramework {
 public:
  /// Everything configurable about a framework instance, in one place.
  /// Replaces the old positional Create() arguments and the
  /// QTF_BENCH_THREADS environment variable.
  ///
  /// The resource-governance fields (default_budget, retry_policy, plus the
  /// serving layer's deadline and admission knobs) live in the ServiceLimits
  /// base so RuleTestService reuses them verbatim for per-request admission
  /// control; inheriting keeps the historical member names
  /// (`options.default_budget = ...`) valid. Extract the slice with
  /// `ServiceLimits limits = options;`.
  struct Options : ServiceLimits {
    /// Scale of the TPC-H-style test database.
    TpchConfig tpch;
    /// Rule registry; null means MakeDefaultRuleRegistry() (pass a custom
    /// one to inject rules, e.g. buggy variants for harness demos).
    std::unique_ptr<RuleRegistry> rules;
    /// Worker threads for the parallel edge-cost / compression paths.
    /// 1 (the default) means no pool — everything runs serial.
    int threads = 1;
    /// Capacity of the shared plan cache.
    size_t plan_cache_capacity = 4096;
    /// Optional receiver for PhaseSpan begin/end events. Borrowed, must be
    /// thread-safe and outlive the framework; null disables tracing.
    obs::TraceSink* trace_sink = nullptr;
    /// Deterministic fault injection (docs/robustness.md). seed == 0 (the
    /// default) builds no injector at all; a nonzero seed wires an injector
    /// owned by the framework into the optimizer, edge-cost provider paths,
    /// and correctness execution, reporting into qtf.robustness.* metrics.
    FaultInjector::Config fault_injector;
    /// Declarative rules (docs/RULES.md): each entry is the text of one or
    /// more .qtr rule specs, compiled by src/ruledsl/ and registered after
    /// the builtin registry at Create time (tagged RuleOrigin::kDsl, ids
    /// following the builtins in entry order). Compile failures surface as
    /// kInvalidArgument with the spec's line:col diagnostics.
    std::vector<std::string> dsl_rules;
    /// Same, but each entry is a path to a .qtr file read at Create time;
    /// unreadable paths are kInvalidArgument naming the file.
    std::vector<std::string> dsl_rule_files;
  };

  /// Builds the framework as configured, after validating the options:
  /// nonsensical values (non-positive `threads`, zero
  /// `plan_cache_capacity`, zero `max_queue_depth`, a negative deadline or
  /// an out-of-range fault probability) return kInvalidArgument naming the
  /// offending field instead of being accepted silently. (The legacy
  /// positional Create(TpchConfig, registry) overload was removed after its
  /// PR-3 deprecation window; populate Options instead.)
  static Result<std::unique_ptr<RuleTestFramework>> Create(Options options);

  /// The ServiceLimits slice this framework was created with (what the
  /// serving layer enforces per request; see docs/serving.md).
  const ServiceLimits& limits() const { return limits_; }

  const Database& db() const { return *db_; }
  const Catalog& catalog() const { return db_->catalog(); }
  const RuleRegistry& rules() const { return *registry_; }
  /// Mutable registry access for runtime rule loading (the service's
  /// LoadRules path). Callers must serialize registration against
  /// concurrent Optimize() calls and call optimizer()->SyncRuleMetrics()
  /// after growing the registry.
  RuleRegistry* mutable_rules() { return registry_.get(); }
  Optimizer* optimizer() { return optimizer_.get(); }
  /// Process-wide plan cache shared by suite generation, compression and
  /// correctness runs (attached to the optimizer at Create time). Use
  /// PlanCacheDetachGuard to benchmark cold searches.
  PlanCache* plan_cache() { return plan_cache_.get(); }
  /// Hash-consing interner canonicalizing every logical tree this framework
  /// optimizes or generates (owned by the optimizer; see
  /// docs/architecture.md). Exposed for tests and tools that build trees
  /// outside the framework and want them in the same canonical space.
  NodeInterner* interner() { return optimizer_->interner(); }
  TargetedQueryGenerator* generator() { return generator_.get(); }
  TestSuiteGenerator* suite_generator() { return suite_generator_.get(); }
  CorrectnessRunner* runner() { return runner_.get(); }

  /// Registry every component of this framework reports into; snapshot it
  /// for experiment accounting (see docs/observability.md).
  obs::MetricsRegistry* metrics() { return &metrics_; }

  /// Worker pool sized by Options::threads; null when threads <= 1. Attach
  /// to an EdgeCostProvider (set_thread_pool) to parallelize compression.
  ThreadPool* thread_pool() { return pool_.get(); }

  /// The fault injector built from Options::fault_injector; null when the
  /// configured seed was 0. Use set_enabled(false) to run a clean phase
  /// (e.g. suite generation) before a chaos phase.
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  /// Ids of the logical (exploration) rules — the rule set R the paper's
  /// experiments target.
  std::vector<RuleId> LogicalRules() const {
    return registry_->ExplorationRuleIds();
  }

  /// All unordered pairs over the first `n` logical rules (nC2 targets).
  std::vector<RuleTarget> LogicalRulePairs(int n) const;

  /// Singleton targets over the first `n` logical rules.
  std::vector<RuleTarget> LogicalRuleSingletons(int n) const;

 private:
  RuleTestFramework() = default;

  // metrics_ is declared first (destroyed last): every component below
  // holds pointers into it.
  obs::MetricsRegistry metrics_;
  ServiceLimits limits_;
  // fault_injector_ before optimizer_: the optimizer (and everything built
  // on it) borrows the injector.
  std::unique_ptr<FaultInjector> fault_injector_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<RuleRegistry> registry_;
  std::unique_ptr<PlanCache> plan_cache_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<TargetedQueryGenerator> generator_;
  std::unique_ptr<TestSuiteGenerator> suite_generator_;
  std::unique_ptr<CorrectnessRunner> runner_;
  // pool_ last: workers must drain before anything they touch dies.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace qtf

#endif  // QTF_TESTING_FRAMEWORK_H_
