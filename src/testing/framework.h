#ifndef QTF_TESTING_FRAMEWORK_H_
#define QTF_TESTING_FRAMEWORK_H_

#include <memory>

#include "compress/compression.h"
#include "compress/matching.h"
#include "optimizer/plan_cache.h"
#include "qgen/generation.h"
#include "qgen/test_suite.h"
#include "rules/default_rules.h"
#include "storage/tpch.h"
#include "testing/correctness.h"

namespace qtf {

/// One-stop assembly of the rule-testing framework of Figure 2: the fixed
/// test database, the rule-based optimizer with its testing extensions,
/// query generation, test-suite generation/compression and correctness
/// execution. Examples, tests and benchmarks build on this facade.
class RuleTestFramework {
 public:
  /// Builds the framework over a fresh TPC-H-style database with the
  /// default rule registry (pass a custom registry to inject rules, e.g.
  /// buggy variants for harness demos).
  static Result<std::unique_ptr<RuleTestFramework>> Create(
      const TpchConfig& config = TpchConfig{},
      std::unique_ptr<RuleRegistry> registry = nullptr);

  const Database& db() const { return *db_; }
  const Catalog& catalog() const { return db_->catalog(); }
  const RuleRegistry& rules() const { return *registry_; }
  Optimizer* optimizer() { return optimizer_.get(); }
  /// Process-wide plan cache shared by suite generation, compression and
  /// correctness runs (attached to the optimizer at Create time). Detach
  /// with optimizer()->set_plan_cache(nullptr) to benchmark cold searches.
  PlanCache* plan_cache() { return plan_cache_.get(); }
  TargetedQueryGenerator* generator() { return generator_.get(); }
  TestSuiteGenerator* suite_generator() { return suite_generator_.get(); }
  CorrectnessRunner* runner() { return runner_.get(); }

  /// Ids of the logical (exploration) rules — the rule set R the paper's
  /// experiments target.
  std::vector<RuleId> LogicalRules() const {
    return registry_->ExplorationRuleIds();
  }

  /// All unordered pairs over the first `n` logical rules (nC2 targets).
  std::vector<RuleTarget> LogicalRulePairs(int n) const;

  /// Singleton targets over the first `n` logical rules.
  std::vector<RuleTarget> LogicalRuleSingletons(int n) const;

 private:
  RuleTestFramework() = default;

  std::unique_ptr<Database> db_;
  std::unique_ptr<RuleRegistry> registry_;
  std::unique_ptr<PlanCache> plan_cache_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<TargetedQueryGenerator> generator_;
  std::unique_ptr<TestSuiteGenerator> suite_generator_;
  std::unique_ptr<CorrectnessRunner> runner_;
};

}  // namespace qtf

#endif  // QTF_TESTING_FRAMEWORK_H_
