#include "testing/framework.h"

namespace qtf {

Result<std::unique_ptr<RuleTestFramework>> RuleTestFramework::Create(
    const TpchConfig& config, std::unique_ptr<RuleRegistry> registry) {
  auto framework =
      std::unique_ptr<RuleTestFramework>(new RuleTestFramework());
  QTF_ASSIGN_OR_RETURN(framework->db_, MakeTpchDatabase(config));
  framework->registry_ =
      registry != nullptr ? std::move(registry) : MakeDefaultRuleRegistry();
  framework->optimizer_ =
      std::make_unique<Optimizer>(framework->registry_.get());
  framework->plan_cache_ = std::make_unique<PlanCache>();
  framework->optimizer_->set_plan_cache(framework->plan_cache_.get());
  framework->generator_ = std::make_unique<TargetedQueryGenerator>(
      &framework->db_->catalog(), framework->optimizer_.get());
  framework->suite_generator_ = std::make_unique<TestSuiteGenerator>(
      &framework->db_->catalog(), framework->optimizer_.get());
  framework->runner_ = std::make_unique<CorrectnessRunner>(
      framework->db_.get(), framework->optimizer_.get());
  return framework;
}

std::vector<RuleTarget> RuleTestFramework::LogicalRulePairs(int n) const {
  std::vector<RuleId> logical = registry_->ExplorationRuleIds();
  QTF_CHECK(n <= static_cast<int>(logical.size()));
  std::vector<RuleTarget> pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      pairs.push_back(RuleTarget{{logical[static_cast<size_t>(i)],
                                  logical[static_cast<size_t>(j)]}});
    }
  }
  return pairs;
}

std::vector<RuleTarget> RuleTestFramework::LogicalRuleSingletons(int n) const {
  std::vector<RuleId> logical = registry_->ExplorationRuleIds();
  QTF_CHECK(n <= static_cast<int>(logical.size()));
  std::vector<RuleTarget> singletons;
  for (int i = 0; i < n; ++i) {
    singletons.push_back(RuleTarget{{logical[static_cast<size_t>(i)]}});
  }
  return singletons;
}

}  // namespace qtf
