#include "testing/framework.h"

namespace qtf {

Result<std::unique_ptr<RuleTestFramework>> RuleTestFramework::Create(
    Options options) {
  QTF_CHECK(options.threads >= 1) << "Options::threads must be positive";
  auto framework =
      std::unique_ptr<RuleTestFramework>(new RuleTestFramework());
  framework->metrics_.set_trace_sink(options.trace_sink);
  if (options.fault_injector.seed != 0) {
    framework->fault_injector_ =
        std::make_unique<FaultInjector>(options.fault_injector);
    framework->fault_injector_->set_metrics(&framework->metrics_);
  }
  QTF_ASSIGN_OR_RETURN(framework->db_, MakeTpchDatabase(options.tpch));
  framework->registry_ = options.rules != nullptr
                             ? std::move(options.rules)
                             : MakeDefaultRuleRegistry();
  framework->optimizer_ = std::make_unique<Optimizer>(
      framework->registry_.get(), &framework->metrics_);
  framework->optimizer_->set_default_budget(options.default_budget);
  framework->optimizer_->set_retry_policy(options.retry_policy);
  framework->optimizer_->set_fault_injector(framework->fault_injector_.get());
  framework->plan_cache_ =
      std::make_unique<PlanCache>(options.plan_cache_capacity);
  framework->plan_cache_->set_metrics(&framework->metrics_);
  framework->optimizer_->set_plan_cache(framework->plan_cache_.get());
  framework->generator_ = std::make_unique<TargetedQueryGenerator>(
      &framework->db_->catalog(), framework->optimizer_.get());
  framework->suite_generator_ = std::make_unique<TestSuiteGenerator>(
      &framework->db_->catalog(), framework->optimizer_.get());
  framework->runner_ = std::make_unique<CorrectnessRunner>(
      framework->db_.get(), framework->optimizer_.get());
  if (options.threads > 1) {
    framework->pool_ = std::make_unique<ThreadPool>(options.threads);
  }
  return framework;
}

std::vector<RuleTarget> RuleTestFramework::LogicalRulePairs(int n) const {
  std::vector<RuleId> logical = registry_->ExplorationRuleIds();
  QTF_CHECK(n <= static_cast<int>(logical.size()));
  std::vector<RuleTarget> pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      pairs.push_back(RuleTarget{{logical[static_cast<size_t>(i)],
                                  logical[static_cast<size_t>(j)]}});
    }
  }
  return pairs;
}

std::vector<RuleTarget> RuleTestFramework::LogicalRuleSingletons(int n) const {
  std::vector<RuleId> logical = registry_->ExplorationRuleIds();
  QTF_CHECK(n <= static_cast<int>(logical.size()));
  std::vector<RuleTarget> singletons;
  for (int i = 0; i < n; ++i) {
    singletons.push_back(RuleTarget{{logical[static_cast<size_t>(i)]}});
  }
  return singletons;
}

}  // namespace qtf
