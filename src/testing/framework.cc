#include "testing/framework.h"

#include <fstream>
#include <sstream>

#include "ruledsl/compiler.h"

namespace qtf {

namespace {

/// Rejects option values that would otherwise be accepted silently and
/// misbehave later (a 0-capacity cache that caches nothing, a negative
/// thread count that underflows the pool). Messages name the field so a
/// remote caller can fix their request without reading source.
Status ValidateOptions(const RuleTestFramework::Options& options) {
  if (options.threads < 1) {
    return Status::InvalidArgument(
        "Options::threads must be >= 1, got " +
        std::to_string(options.threads));
  }
  if (options.plan_cache_capacity == 0) {
    return Status::InvalidArgument(
        "Options::plan_cache_capacity must be > 0 (a zero-capacity cache "
        "caches nothing; omit the field for the default)");
  }
  if (options.max_queue_depth == 0) {
    return Status::InvalidArgument(
        "Options::max_queue_depth must be > 0 (a zero-depth admission "
        "queue would shed every request)");
  }
  if (options.default_deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        "Options::default_deadline_seconds must be >= 0, got " +
        std::to_string(options.default_deadline_seconds));
  }
  if (options.default_budget.wall_seconds < 0.0 ||
      options.default_budget.max_memo_groups < 0 ||
      options.default_budget.max_memo_exprs < 0) {
    return Status::InvalidArgument(
        "Options::default_budget dimensions must be >= 0 (0 = unlimited)");
  }
  if (options.retry_policy.max_attempts < 1) {
    return Status::InvalidArgument(
        "Options::retry_policy.max_attempts must be >= 1, got " +
        std::to_string(options.retry_policy.max_attempts));
  }
  if (options.fault_injector.fault_probability < 0.0 ||
      options.fault_injector.fault_probability > 1.0) {
    return Status::InvalidArgument(
        "Options::fault_injector.fault_probability must be in [0, 1], got " +
        std::to_string(options.fault_injector.fault_probability));
  }
  if (options.tpch.scale < 1) {
    return Status::InvalidArgument(
        "Options::tpch.scale must be >= 1, got " +
        std::to_string(options.tpch.scale));
  }
  return Status::OK();
}

/// Compiles Options::dsl_rules / dsl_rule_files and registers the results
/// after the builtin registry, counting qtf.dsl.loaded. Runs before the
/// Optimizer is constructed, so per-rule counters cover DSL rules without
/// a SyncRuleMetrics() round.
Status RegisterDslRules(const RuleTestFramework::Options& options,
                        RuleTestFramework* framework) {
  std::vector<std::string> texts = options.dsl_rules;
  for (const std::string& path : options.dsl_rule_files) {
    std::ifstream in(path);
    if (!in) {
      return Status::InvalidArgument(
          "Options::dsl_rule_files: cannot read '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    texts.push_back(std::move(text).str());
  }
  ruledsl::CompileOptions compile_options;
  compile_options.metrics = framework->metrics();
  obs::Counter* loaded = framework->metrics()->counter("qtf.dsl.loaded");
  RuleRegistry* registry = framework->mutable_rules();
  for (const std::string& text : texts) {
    QTF_ASSIGN_OR_RETURN(std::vector<std::unique_ptr<Rule>> rules,
                         ruledsl::CompileRuleDsl(text, compile_options));
    for (std::unique_ptr<Rule>& rule : rules) {
      if (registry->FindByName(rule->name()) != -1) {
        return Status::InvalidArgument(
            "Options::dsl_rules: rule name '" + rule->name() +
            "' collides with an already-registered rule");
      }
      registry->Register(std::move(rule));
      loaded->Increment();
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<RuleTestFramework>> RuleTestFramework::Create(
    Options options) {
  QTF_RETURN_NOT_OK(ValidateOptions(options));
  auto framework =
      std::unique_ptr<RuleTestFramework>(new RuleTestFramework());
  framework->limits_ = options;
  framework->metrics_.set_trace_sink(options.trace_sink);
  if (options.fault_injector.seed != 0) {
    framework->fault_injector_ =
        std::make_unique<FaultInjector>(options.fault_injector);
    framework->fault_injector_->set_metrics(&framework->metrics_);
  }
  QTF_ASSIGN_OR_RETURN(framework->db_, MakeTpchDatabase(options.tpch));
  framework->registry_ = options.rules != nullptr
                             ? std::move(options.rules)
                             : MakeDefaultRuleRegistry();
  QTF_RETURN_NOT_OK(RegisterDslRules(options, framework.get()));
  framework->optimizer_ = std::make_unique<Optimizer>(
      framework->registry_.get(), &framework->metrics_);
  framework->optimizer_->set_default_budget(options.default_budget);
  framework->optimizer_->set_retry_policy(options.retry_policy);
  framework->optimizer_->set_fault_injector(framework->fault_injector_.get());
  framework->plan_cache_ =
      std::make_unique<PlanCache>(options.plan_cache_capacity);
  framework->plan_cache_->set_metrics(&framework->metrics_);
  framework->optimizer_->set_plan_cache(framework->plan_cache_.get());
  framework->generator_ = std::make_unique<TargetedQueryGenerator>(
      &framework->db_->catalog(), framework->optimizer_.get());
  framework->suite_generator_ = std::make_unique<TestSuiteGenerator>(
      &framework->db_->catalog(), framework->optimizer_.get());
  framework->runner_ = std::make_unique<CorrectnessRunner>(
      framework->db_.get(), framework->optimizer_.get());
  if (options.threads > 1) {
    framework->pool_ = std::make_unique<ThreadPool>(options.threads);
  }
  return framework;
}

std::vector<RuleTarget> RuleTestFramework::LogicalRulePairs(int n) const {
  std::vector<RuleId> logical = registry_->ExplorationRuleIds();
  QTF_CHECK(n <= static_cast<int>(logical.size()));
  std::vector<RuleTarget> pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      pairs.push_back(RuleTarget{{logical[static_cast<size_t>(i)],
                                  logical[static_cast<size_t>(j)]}});
    }
  }
  return pairs;
}

std::vector<RuleTarget> RuleTestFramework::LogicalRuleSingletons(int n) const {
  std::vector<RuleId> logical = registry_->ExplorationRuleIds();
  QTF_CHECK(n <= static_cast<int>(logical.size()));
  std::vector<RuleTarget> singletons;
  for (int i = 0; i < n; ++i) {
    singletons.push_back(RuleTarget{{logical[static_cast<size_t>(i)]}});
  }
  return singletons;
}

}  // namespace qtf
