#include "rules/exploration_rules.h"
#include "rules/rule_util.h"

namespace qtf {
namespace {

using P = PatternNode;

/// A semijoin[p] B -> project[A-cols](A join[p] B) when B is duplicate-free
/// on its equi-join columns (each A row matches at most one B row, so the
/// inner join does not multiply A's rows).
class SemiJoinToJoinDistinct final : public ExplorationRule {
 public:
  SemiJoinToJoinDistinct()
      : ExplorationRule("SemiJoinToJoinDistinct",
                        P::Join(JoinKind::kLeftSemi, P::Any(), P::Any())) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& semi = static_cast<const JoinOp&>(bound);
    if (semi.predicate() == nullptr) return;
    ColumnSet left_cols, right_cols;
    for (ColumnId id : semi.child(0)->OutputColumns()) left_cols.insert(id);
    for (ColumnId id : semi.child(1)->OutputColumns()) right_cols.insert(id);
    EquiJoinInfo equi =
        ExtractEquiJoin(semi.predicate(), left_cols, right_cols);
    if (equi.pairs.empty()) return;
    LogicalProps right_props = BoundProps(*semi.child(1));
    if (!right_props.HasKeyWithin(equi.RightColumns())) return;

    LogicalOpPtr join = std::make_shared<JoinOp>(
        JoinKind::kInner, semi.child(0), semi.child(1), semi.predicate());
    LogicalProps left_props = BoundProps(*semi.child(0));
    out->push_back(ProjectTo(std::move(join),
                             semi.child(0)->OutputColumns(), left_props));
  }
};

/// project[A-cols](A join[p] B) -> project[items](A semijoin[p] B) when the
/// projection keeps only (pass-through) columns of A and B is duplicate-free
/// on its equi-join columns.
class JoinToSemiJoin final : public ExplorationRule {
 public:
  JoinToSemiJoin()
      : ExplorationRule(
            "JoinToSemiJoin",
            P::Op(LogicalOpKind::kProject,
                  {P::Join(JoinKind::kInner, P::Any(), P::Any())})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& project = static_cast<const ProjectOp&>(bound);
    const auto& join = static_cast<const JoinOp&>(*project.child(0));
    if (join.predicate() == nullptr) return;
    ColumnSet left_cols, right_cols;
    for (ColumnId id : join.child(0)->OutputColumns()) left_cols.insert(id);
    for (ColumnId id : join.child(1)->OutputColumns()) right_cols.insert(id);
    // All projection items must be pass-through references to A's columns.
    for (const ProjectItem& item : project.items()) {
      if (item.expr->kind() != ExprKind::kColumnRef) return;
      if (left_cols.count(item.id) == 0) return;
    }
    EquiJoinInfo equi =
        ExtractEquiJoin(join.predicate(), left_cols, right_cols);
    if (equi.pairs.empty()) return;
    LogicalProps right_props = BoundProps(*join.child(1));
    if (!right_props.HasKeyWithin(equi.RightColumns())) return;

    LogicalOpPtr semi = std::make_shared<JoinOp>(
        JoinKind::kLeftSemi, join.child(0), join.child(1), join.predicate());
    out->push_back(
        std::make_shared<ProjectOp>(std::move(semi), project.items()));
  }
};

/// A antijoin[p] B -> project[A-cols](select[IS NULL(b)](A loj[p] B)) where
/// b is a provably non-NULL column of B: matched rows carry a non-NULL b,
/// null-extended (unmatched) rows carry NULL.
class AntiToLojNullFilter final : public ExplorationRule {
 public:
  AntiToLojNullFilter()
      : ExplorationRule("AntiToLojNullFilter",
                        P::Join(JoinKind::kLeftAnti, P::Any(), P::Any())) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& anti = static_cast<const JoinOp&>(bound);
    LogicalProps right_props = BoundProps(*anti.child(1));
    // Find a non-nullable right column (prefer a key column).
    ColumnId witness = -1;
    for (const ColumnSet& key : right_props.keys) {
      for (ColumnId id : key) {
        if (right_props.nullable.count(id) == 0) {
          witness = id;
          break;
        }
      }
      if (witness >= 0) break;
    }
    if (witness < 0) {
      for (ColumnId id : right_props.output_cols) {
        if (right_props.nullable.count(id) == 0) {
          witness = id;
          break;
        }
      }
    }
    if (witness < 0) return;

    LogicalOpPtr loj = std::make_shared<JoinOp>(
        JoinKind::kLeftOuter, anti.child(0), anti.child(1), anti.predicate());
    LogicalOpPtr filtered = std::make_shared<SelectOp>(
        std::move(loj), IsNull(Col(witness, right_props.TypeOf(witness))));
    LogicalProps left_props = BoundProps(*anti.child(0));
    out->push_back(ProjectTo(std::move(filtered),
                             anti.child(0)->OutputColumns(), left_props));
  }
};

/// select[p](A semijoin B) -> select[p](A) semijoin B. The semi-join's
/// output is exactly A's columns, so p always applies to A.
class SemiJoinCommuteSelect final : public ExplorationRule {
 public:
  SemiJoinCommuteSelect()
      : ExplorationRule(
            "SemiJoinCommuteSelect",
            P::Op(LogicalOpKind::kSelect,
                  {P::Join(JoinKind::kLeftSemi, P::Any(), P::Any())})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& select = static_cast<const SelectOp&>(bound);
    const auto& semi = static_cast<const JoinOp&>(*select.child(0));
    LogicalOpPtr filtered =
        std::make_shared<SelectOp>(semi.child(0), select.predicate());
    out->push_back(std::make_shared<JoinOp>(
        JoinKind::kLeftSemi, std::move(filtered), semi.child(1),
        semi.predicate()));
  }
};

}  // namespace

std::unique_ptr<Rule> MakeSemiJoinToJoinDistinct() {
  return std::make_unique<SemiJoinToJoinDistinct>();
}
std::unique_ptr<Rule> MakeJoinToSemiJoin() {
  return std::make_unique<JoinToSemiJoin>();
}
std::unique_ptr<Rule> MakeAntiToLojNullFilter() {
  return std::make_unique<AntiToLojNullFilter>();
}
std::unique_ptr<Rule> MakeSemiJoinCommuteSelect() {
  return std::make_unique<SemiJoinCommuteSelect>();
}

}  // namespace qtf
