#include "rules/buggy_rules.h"

#include "rules/rule_util.h"

namespace qtf {
namespace {

using P = PatternNode;

class BuggyLojToJoin final : public ExplorationRule {
 public:
  BuggyLojToJoin()
      : ExplorationRule("BuggyLojToJoin",
                        P::Join(JoinKind::kLeftOuter, P::Any(), P::Any())) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& loj = static_cast<const JoinOp&>(bound);
    // BUG: an outer join is not an inner join — null-extended rows vanish.
    out->push_back(std::make_shared<JoinOp>(JoinKind::kInner, loj.child(0),
                                            loj.child(1), loj.predicate()));
  }
};

class BuggySelectPushBelowGroupBy final : public ExplorationRule {
 public:
  BuggySelectPushBelowGroupBy()
      : ExplorationRule(
            "BuggySelectPushBelowGroupBy",
            P::Op(LogicalOpKind::kSelect,
                  {P::Op(LogicalOpKind::kGroupByAgg, {P::Any()})})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& select = static_cast<const SelectOp&>(bound);
    const auto& agg = static_cast<const GroupByAggOp&>(*select.child(0));
    // BUG: pushes only the conjuncts over grouping columns (correct so far)
    // but *drops the remaining conjuncts* instead of keeping them above.
    ColumnSet group_cols(agg.group_cols().begin(), agg.group_cols().end());
    std::vector<ExprPtr> pushable, remaining;
    SplitPushable(select.predicate(), group_cols, &pushable, &remaining);
    if (pushable.empty() || remaining.empty()) return;
    LogicalOpPtr filtered =
        std::make_shared<SelectOp>(agg.child(0), MakeConjunction(pushable));
    out->push_back(std::make_shared<GroupByAggOp>(
        std::move(filtered), agg.group_cols(), agg.aggregates()));
  }
};

class BuggyLojCommutativity final : public ExplorationRule {
 public:
  BuggyLojCommutativity()
      : ExplorationRule("BuggyLojCommutativity",
                        P::Join(JoinKind::kLeftOuter, P::Any(), P::Any())) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& join = static_cast<const JoinOp&>(bound);
    // BUG: outer joins do not commute — this swaps the preserved side.
    out->push_back(std::make_shared<JoinOp>(
        JoinKind::kLeftOuter, join.child(1), join.child(0),
        join.predicate()));
  }
};

}  // namespace

std::unique_ptr<Rule> MakeBuggyLojToJoin() {
  return std::make_unique<BuggyLojToJoin>();
}
std::unique_ptr<Rule> MakeBuggySelectPushBelowGroupBy() {
  return std::make_unique<BuggySelectPushBelowGroupBy>();
}
std::unique_ptr<Rule> MakeBuggyLojCommutativity() {
  return std::make_unique<BuggyLojCommutativity>();
}

}  // namespace qtf
