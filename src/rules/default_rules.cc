#include "rules/default_rules.h"

#include "rules/exploration_rules.h"
#include "rules/implementation_rules.h"

namespace qtf {

std::unique_ptr<RuleRegistry> MakeDefaultRuleRegistry() {
  auto registry = std::make_unique<RuleRegistry>();

  // --- 30 logical transformation rules (ids 0..29) ---
  registry->Register(MakeJoinCommutativity());           // 0
  registry->Register(MakeJoinAssociativityLeft());       // 1
  registry->Register(MakeJoinAssociativityRight());      // 2
  registry->Register(MakeSelectPushBelowJoinLeft());     // 3
  registry->Register(MakeSelectPushBelowJoinRight());    // 4
  registry->Register(MakeSelectPushBelowLojLeft());      // 5
  registry->Register(MakeSelectMerge());                 // 6
  registry->Register(MakeSelectSplit());                 // 7
  registry->Register(MakeSelectPushBelowProject());      // 8
  registry->Register(MakeSelectPushBelowGroupBy());      // 9
  registry->Register(MakeSelectPushBelowUnionAll());     // 10
  registry->Register(MakeProjectMerge());                // 11
  registry->Register(MakeGroupByPushBelowJoinLeft());    // 12
  registry->Register(MakeGroupByPullAboveJoinLeft());    // 13
  registry->Register(MakeLojToJoin());                   // 14
  registry->Register(MakeJoinLojAssocLeft());            // 15
  registry->Register(MakeLojLojAssocRight());            // 16
  registry->Register(MakeSemiJoinToJoinDistinct());      // 17
  registry->Register(MakeJoinToSemiJoin());              // 18
  registry->Register(MakeAntiToLojNullFilter());         // 19
  registry->Register(MakeUnionAllCommutativity());       // 20
  registry->Register(MakeUnionAllAssociativity());       // 21
  registry->Register(MakeDistinctElimination());         // 22
  registry->Register(MakeGroupByToDistinct());           // 23
  registry->Register(MakeDistinctToGroupBy());           // 24
  registry->Register(MakeGroupByOnKeyElimination());     // 25
  registry->Register(MakeSelectPushBelowDistinct());     // 26
  registry->Register(MakeProjectPushBelowUnionAll());    // 27
  registry->Register(MakeSemiJoinCommuteSelect());       // 28
  registry->Register(MakeSelectIntoJoin());              // 29

  // --- implementation rules ---
  registry->Register(MakeGetToScan());
  registry->Register(MakeSelectToFilter());
  registry->Register(MakeProjectToCompute());
  registry->Register(MakeJoinToNlJoin());
  registry->Register(MakeJoinToHashJoin());
  registry->Register(MakeGroupByToHashAggregate());
  registry->Register(MakeGroupByToStreamAggregate());
  registry->Register(MakeUnionAllToConcat());
  registry->Register(MakeDistinctToHashDistinct());

  return registry;
}

}  // namespace qtf
