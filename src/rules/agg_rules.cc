#include <algorithm>

#include "rules/exploration_rules.h"
#include "rules/rule_util.h"

namespace qtf {
namespace {

using P = PatternNode;

/// groupby[G,A](L join[l=r] R) -> project[G,A-ids](groupby[G_L,A](L) join R)
/// — "eager aggregation" below the join. Valid when (paper Section 1's
/// motivating example: the grouping must include the joining columns, plus
/// functional-dependency conditions):
///   * every predicate column on the L side is a grouping column (so the
///     left equi-join columns are all in G),
///   * R is duplicate-free on its equi-join columns (a key of R), so the
///     join neither multiplies nor splits groups,
///   * aggregate arguments reference only L's columns.
class GroupByPushBelowJoinLeft final : public ExplorationRule {
 public:
  GroupByPushBelowJoinLeft()
      : ExplorationRule(
            "GroupByPushBelowJoinLeft",
            P::Op(LogicalOpKind::kGroupByAgg,
                  {P::Join(JoinKind::kInner, P::Any(), P::Any())})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& agg = static_cast<const GroupByAggOp&>(bound);
    const auto& join = static_cast<const JoinOp&>(*agg.child(0));
    if (join.predicate() == nullptr) return;
    const LogicalOpPtr& left = join.child(0);
    const LogicalOpPtr& right = join.child(1);
    ColumnSet left_cols, right_cols;
    for (ColumnId id : left->OutputColumns()) left_cols.insert(id);
    for (ColumnId id : right->OutputColumns()) right_cols.insert(id);
    ColumnSet group_set(agg.group_cols().begin(), agg.group_cols().end());

    EquiJoinInfo equi =
        ExtractEquiJoin(join.predicate(), left_cols, right_cols);
    if (equi.pairs.empty()) return;
    // All predicate references to L must be grouping columns.
    ColumnSet pred_cols = ColumnsOf(*join.predicate());
    for (ColumnId id : pred_cols) {
      if (left_cols.count(id) > 0 && group_set.count(id) == 0) return;
    }
    // R must be unique on its equi-join columns.
    LogicalProps right_props = BoundProps(*right);
    if (!right_props.HasKeyWithin(equi.RightColumns())) return;
    // Aggregate arguments must come from L.
    for (const AggregateItem& item : agg.aggregates()) {
      if (item.call.arg != nullptr &&
          !ReferencesOnly(*item.call.arg, left_cols)) {
        return;
      }
    }

    std::vector<ColumnId> left_groups;
    for (ColumnId id : agg.group_cols()) {
      if (left_cols.count(id) > 0) left_groups.push_back(id);
    }
    LogicalOpPtr pushed = std::make_shared<GroupByAggOp>(
        left, std::move(left_groups), agg.aggregates());
    LogicalOpPtr new_join = std::make_shared<JoinOp>(
        JoinKind::kInner, std::move(pushed), right, join.predicate());
    LogicalProps props = BoundProps(bound);
    out->push_back(ProjectTo(std::move(new_join), agg.OutputColumns(), props));
  }
};

/// groupby[G,A](X) join[l=r] R ->
///   project[orig](groupby[G u R-cols, A](X join[l=r] R))
/// — "lazy aggregation" above the join (inverse of the previous rule, same
/// validity conditions).
class GroupByPullAboveJoinLeft final : public ExplorationRule {
 public:
  GroupByPullAboveJoinLeft()
      : ExplorationRule(
            "GroupByPullAboveJoinLeft",
            P::Join(JoinKind::kInner,
                    P::Op(LogicalOpKind::kGroupByAgg, {P::Any()}), P::Any())) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& join = static_cast<const JoinOp&>(bound);
    const auto& agg = static_cast<const GroupByAggOp&>(*join.child(0));
    const LogicalOpPtr& x = agg.child(0);
    const LogicalOpPtr& right = join.child(1);
    if (join.predicate() == nullptr) return;
    ColumnSet agg_ids;
    for (const AggregateItem& item : agg.aggregates()) {
      agg_ids.insert(item.id);
    }
    // The join predicate must not touch the aggregate outputs (paper
    // Section 3.1's example precondition).
    if (ReferencesAny(*join.predicate(), agg_ids)) return;
    ColumnSet left_cols, right_cols;
    for (ColumnId id : agg.OutputColumns()) left_cols.insert(id);
    for (ColumnId id : right->OutputColumns()) right_cols.insert(id);
    EquiJoinInfo equi =
        ExtractEquiJoin(join.predicate(), left_cols, right_cols);
    if (equi.pairs.empty()) return;
    LogicalProps right_props = BoundProps(*right);
    if (!right_props.HasKeyWithin(equi.RightColumns())) return;

    std::vector<ColumnId> new_groups = agg.group_cols();
    for (ColumnId id : right->OutputColumns()) new_groups.push_back(id);
    LogicalOpPtr lower_join =
        std::make_shared<JoinOp>(JoinKind::kInner, x, right, join.predicate());
    LogicalOpPtr pulled = std::make_shared<GroupByAggOp>(
        std::move(lower_join), std::move(new_groups), agg.aggregates());
    LogicalProps props = BoundProps(bound);
    out->push_back(ProjectTo(std::move(pulled), join.OutputColumns(), props));
  }
};

/// groupby[G, no aggregates](X) -> distinct(project[G](X)).
class GroupByToDistinct final : public ExplorationRule {
 public:
  GroupByToDistinct()
      : ExplorationRule("GroupByToDistinct",
                        P::Op(LogicalOpKind::kGroupByAgg, {P::Any()})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& agg = static_cast<const GroupByAggOp&>(bound);
    if (!agg.aggregates().empty() || agg.group_cols().empty()) return;
    std::vector<ColumnId> child_cols = agg.child(0)->OutputColumns();
    ColumnSet group_set(agg.group_cols().begin(), agg.group_cols().end());
    if (group_set == ColumnSet(child_cols.begin(), child_cols.end())) {
      // Grouping on the whole row: no projection needed. (Emitting one
      // anyway would let DistinctToGroupBy regenerate this rule's input
      // over the projection, growing an unbounded chain of identity
      // projections.)
      out->push_back(std::make_shared<DistinctOp>(agg.child(0)));
      return;
    }
    LogicalProps props = BoundProps(*agg.child(0));
    LogicalOpPtr projected =
        ProjectTo(agg.child(0), agg.group_cols(), props);
    out->push_back(std::make_shared<DistinctOp>(std::move(projected)));
  }
};

/// distinct(X) -> groupby[all columns, no aggregates](X).
class DistinctToGroupBy final : public ExplorationRule {
 public:
  DistinctToGroupBy()
      : ExplorationRule("DistinctToGroupBy",
                        P::Op(LogicalOpKind::kDistinct, {P::Any()})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& distinct = static_cast<const DistinctOp&>(bound);
    out->push_back(std::make_shared<GroupByAggOp>(
        distinct.child(0), distinct.child(0)->OutputColumns(),
        std::vector<AggregateItem>{}));
  }
};

/// groupby[G,A](X) -> project[G, per-row aggregates](X) when G contains a
/// key of X — every group has exactly one row, so aggregates degenerate to
/// scalar expressions (COUNT(*) -> 1, SUM/MIN/MAX(e) -> e, AVG(e) -> e as
/// double). COUNT(e) is inexpressible without a conditional, so its
/// presence blocks the rule; string-typed MIN/MAX args block the arithmetic
/// identity trick.
class GroupByOnKeyElimination final : public ExplorationRule {
 public:
  GroupByOnKeyElimination()
      : ExplorationRule("GroupByOnKeyElimination",
                        P::Op(LogicalOpKind::kGroupByAgg, {P::Any()})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& agg = static_cast<const GroupByAggOp&>(bound);
    if (agg.group_cols().empty()) return;  // scalar agg must keep 1-row shape
    LogicalProps input_props = BoundProps(*agg.child(0));
    ColumnSet group_set(agg.group_cols().begin(), agg.group_cols().end());
    if (!input_props.HasKeyWithin(group_set)) return;

    std::vector<ProjectItem> items;
    for (ColumnId id : agg.group_cols()) {
      items.push_back(ProjectItem{Col(id, input_props.TypeOf(id)), id});
    }
    for (const AggregateItem& item : agg.aggregates()) {
      ExprPtr expr;
      switch (item.call.kind) {
        case AggKind::kCountStar:
          expr = LitInt(1);
          break;
        case AggKind::kCount:
          return;  // needs a conditional; not expressible
        case AggKind::kSum:
        case AggKind::kMin:
        case AggKind::kMax:
          if (item.call.arg->type() == ValueType::kString ||
              item.call.arg->type() == ValueType::kBool) {
            return;
          }
          // e + 0 preserves the value (and NULL) while making the item a
          // computed expression rather than an (id-mismatched) pass-through.
          expr = Arith(ArithOp::kAdd, item.call.arg, LitInt(0));
          break;
        case AggKind::kAvg:
          if (item.call.arg->type() == ValueType::kString ||
              item.call.arg->type() == ValueType::kBool) {
            return;
          }
          expr = Arith(ArithOp::kAdd, item.call.arg, LitDouble(0.0));
          break;
      }
      items.push_back(ProjectItem{std::move(expr), item.id});
    }
    out->push_back(
        std::make_shared<ProjectOp>(agg.child(0), std::move(items)));
  }
};

/// distinct(X) -> identity-project(X) when X is already duplicate-free
/// (some key of X is contained in its output).
class DistinctElimination final : public ExplorationRule {
 public:
  DistinctElimination()
      : ExplorationRule("DistinctElimination",
                        P::Op(LogicalOpKind::kDistinct, {P::Any()})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& distinct = static_cast<const DistinctOp&>(bound);
    LogicalProps props = BoundProps(*distinct.child(0));
    if (!props.HasKeyWithin(props.OutputSet())) return;
    // The memo has no group merging (see DESIGN.md), so emit an identity
    // projection instead of the bare child group.
    out->push_back(ProjectTo(distinct.child(0),
                             distinct.child(0)->OutputColumns(), props));
  }
};

}  // namespace

std::unique_ptr<Rule> MakeGroupByPushBelowJoinLeft() {
  return std::make_unique<GroupByPushBelowJoinLeft>();
}
std::unique_ptr<Rule> MakeGroupByPullAboveJoinLeft() {
  return std::make_unique<GroupByPullAboveJoinLeft>();
}
std::unique_ptr<Rule> MakeGroupByToDistinct() {
  return std::make_unique<GroupByToDistinct>();
}
std::unique_ptr<Rule> MakeDistinctToGroupBy() {
  return std::make_unique<DistinctToGroupBy>();
}
std::unique_ptr<Rule> MakeGroupByOnKeyElimination() {
  return std::make_unique<GroupByOnKeyElimination>();
}
std::unique_ptr<Rule> MakeDistinctElimination() {
  return std::make_unique<DistinctElimination>();
}

}  // namespace qtf
