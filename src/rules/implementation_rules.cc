#include "rules/implementation_rules.h"

#include "logical/props.h"
#include "rules/rule_util.h"

namespace qtf {
namespace {

using P = PatternNode;

/// Child groups (in order) of a bound single-level expression.
std::vector<int> ChildGroups(const LogicalOp& bound) {
  std::vector<int> out;
  out.reserve(bound.children().size());
  for (const LogicalOpPtr& child : bound.children()) {
    QTF_CHECK(child->kind() == LogicalOpKind::kGroupRef);
    out.push_back(static_cast<const GroupRefOp&>(*child).group_id());
  }
  return out;
}

class GetToScan final : public ImplementationRule {
 public:
  GetToScan()
      : ImplementationRule("GetToScan", P::Op(LogicalOpKind::kGet, {})) {}

  void Apply(const LogicalOp& bound, const CostModel& cost_model,
             std::vector<PhysicalAlternative>* out) const override {
    const auto& get = static_cast<const GetOp&>(bound);
    PhysicalAlternative alt;
    alt.child_groups = {};
    alt.local_cost =
        cost_model.TableScan(static_cast<double>(get.table().row_count()));
    std::vector<ColumnId> columns = get.columns();
    std::shared_ptr<const TableDef> table_def = get.table_ptr();
    alt.build = [table_def, columns](const std::vector<PhysicalOpPtr>&) {
      return std::make_shared<TableScanOp>(table_def, columns);
    };
    out->push_back(std::move(alt));
  }
};

class SelectToFilter final : public ImplementationRule {
 public:
  SelectToFilter()
      : ImplementationRule("SelectToFilter",
                           P::Op(LogicalOpKind::kSelect, {P::Any()})) {}

  void Apply(const LogicalOp& bound, const CostModel& cost_model,
             std::vector<PhysicalAlternative>* out) const override {
    const auto& select = static_cast<const SelectOp&>(bound);
    const auto& input = static_cast<const GroupRefOp&>(*select.child(0));
    PhysicalAlternative alt;
    alt.child_groups = ChildGroups(bound);
    alt.local_cost = cost_model.Filter(input.props().cardinality);
    ExprPtr predicate = select.predicate();
    alt.build = [predicate](const std::vector<PhysicalOpPtr>& children) {
      return std::make_shared<FilterOp>(children[0], predicate);
    };
    out->push_back(std::move(alt));
  }
};

class ProjectToCompute final : public ImplementationRule {
 public:
  ProjectToCompute()
      : ImplementationRule("ProjectToCompute",
                           P::Op(LogicalOpKind::kProject, {P::Any()})) {}

  void Apply(const LogicalOp& bound, const CostModel& cost_model,
             std::vector<PhysicalAlternative>* out) const override {
    const auto& project = static_cast<const ProjectOp&>(bound);
    const auto& input = static_cast<const GroupRefOp&>(*project.child(0));
    PhysicalAlternative alt;
    alt.child_groups = ChildGroups(bound);
    alt.local_cost = cost_model.Compute(input.props().cardinality);
    std::vector<ProjectItem> items = project.items();
    alt.build = [items](const std::vector<PhysicalOpPtr>& children) {
      return std::make_shared<ComputeOp>(children[0], items);
    };
    out->push_back(std::move(alt));
  }
};

class JoinToNlJoin final : public ImplementationRule {
 public:
  JoinToNlJoin()
      : ImplementationRule("JoinToNlJoin",
                           P::Op(LogicalOpKind::kJoin, {P::Any(), P::Any()})) {}

  void Apply(const LogicalOp& bound, const CostModel& cost_model,
             std::vector<PhysicalAlternative>* out) const override {
    const auto& join = static_cast<const JoinOp&>(bound);
    const auto& left = static_cast<const GroupRefOp&>(*join.child(0));
    const auto& right = static_cast<const GroupRefOp&>(*join.child(1));
    PhysicalAlternative alt;
    alt.child_groups = ChildGroups(bound);
    alt.local_cost = cost_model.NlJoin(left.props().cardinality,
                                       right.props().cardinality);
    JoinKind kind = join.join_kind();
    ExprPtr predicate = join.predicate();
    alt.build = [kind, predicate](const std::vector<PhysicalOpPtr>& children) {
      return std::make_shared<NlJoinOp>(kind, children[0], children[1],
                                        predicate);
    };
    out->push_back(std::move(alt));
  }
};

class JoinToHashJoin final : public ImplementationRule {
 public:
  JoinToHashJoin()
      : ImplementationRule("JoinToHashJoin",
                           P::Op(LogicalOpKind::kJoin, {P::Any(), P::Any()})) {}

  void Apply(const LogicalOp& bound, const CostModel& cost_model,
             std::vector<PhysicalAlternative>* out) const override {
    const auto& join = static_cast<const JoinOp&>(bound);
    const auto& left = static_cast<const GroupRefOp&>(*join.child(0));
    const auto& right = static_cast<const GroupRefOp&>(*join.child(1));
    EquiJoinInfo equi = ExtractEquiJoin(join.predicate(),
                                        left.props().OutputSet(),
                                        right.props().OutputSet());
    if (equi.pairs.empty()) return;
    PhysicalAlternative alt;
    alt.child_groups = ChildGroups(bound);
    alt.local_cost = cost_model.HashJoin(left.props().cardinality,
                                         right.props().cardinality);
    JoinKind kind = join.join_kind();
    auto pairs = equi.pairs;
    ExprPtr residual = MakeConjunction(equi.residual);
    alt.build = [kind, pairs,
                 residual](const std::vector<PhysicalOpPtr>& children) {
      return std::make_shared<HashJoinOp>(kind, children[0], children[1],
                                          pairs, residual);
    };
    out->push_back(std::move(alt));
  }
};

class GroupByToHashAggregate final : public ImplementationRule {
 public:
  GroupByToHashAggregate()
      : ImplementationRule("GroupByToHashAggregate",
                           P::Op(LogicalOpKind::kGroupByAgg, {P::Any()})) {}

  void Apply(const LogicalOp& bound, const CostModel& cost_model,
             std::vector<PhysicalAlternative>* out) const override {
    const auto& agg = static_cast<const GroupByAggOp&>(bound);
    const auto& input = static_cast<const GroupRefOp&>(*agg.child(0));
    PhysicalAlternative alt;
    alt.child_groups = ChildGroups(bound);
    alt.local_cost = cost_model.HashAggregate(input.props().cardinality);
    std::vector<ColumnId> groups = agg.group_cols();
    std::vector<AggregateItem> aggregates = agg.aggregates();
    alt.build = [groups,
                 aggregates](const std::vector<PhysicalOpPtr>& children) {
      return std::make_shared<HashAggregateOp>(children[0], groups,
                                               aggregates);
    };
    out->push_back(std::move(alt));
  }
};

class GroupByToStreamAggregate final : public ImplementationRule {
 public:
  GroupByToStreamAggregate()
      : ImplementationRule("GroupByToStreamAggregate",
                           P::Op(LogicalOpKind::kGroupByAgg, {P::Any()})) {}

  void Apply(const LogicalOp& bound, const CostModel& cost_model,
             std::vector<PhysicalAlternative>* out) const override {
    const auto& agg = static_cast<const GroupByAggOp&>(bound);
    const auto& input = static_cast<const GroupRefOp&>(*agg.child(0));
    PhysicalAlternative alt;
    alt.child_groups = ChildGroups(bound);
    double rows = input.props().cardinality;
    // The Sort enforcer below the stream aggregate is part of this
    // alternative's local cost.
    alt.local_cost = cost_model.Sort(rows) + cost_model.StreamAggregate(rows);
    std::vector<ColumnId> groups = agg.group_cols();
    std::vector<AggregateItem> aggregates = agg.aggregates();
    alt.build = [groups,
                 aggregates](const std::vector<PhysicalOpPtr>& children) {
      PhysicalOpPtr sorted = std::make_shared<SortOp>(children[0], groups);
      return std::make_shared<StreamAggregateOp>(std::move(sorted), groups,
                                                 aggregates);
    };
    out->push_back(std::move(alt));
  }
};

class UnionAllToConcat final : public ImplementationRule {
 public:
  UnionAllToConcat()
      : ImplementationRule(
            "UnionAllToConcat",
            P::Op(LogicalOpKind::kUnionAll, {P::Any(), P::Any()})) {}

  void Apply(const LogicalOp& bound, const CostModel& cost_model,
             std::vector<PhysicalAlternative>* out) const override {
    const auto& u = static_cast<const UnionAllOp&>(bound);
    const auto& left = static_cast<const GroupRefOp&>(*u.child(0));
    const auto& right = static_cast<const GroupRefOp&>(*u.child(1));
    PhysicalAlternative alt;
    alt.child_groups = ChildGroups(bound);
    alt.local_cost = cost_model.Concat(left.props().cardinality,
                                       right.props().cardinality);
    std::vector<ColumnId> output_ids = u.output_ids();
    // The chosen physical child may emit the branch columns in a different
    // order than the logical branch (join commutativity etc.), so record
    // which branch column feeds each output position; executors remap by id.
    std::vector<ColumnId> left_cols = u.child(0)->OutputColumns();
    std::vector<ColumnId> right_cols = u.child(1)->OutputColumns();
    alt.build = [output_ids, left_cols,
                 right_cols](const std::vector<PhysicalOpPtr>& children) {
      return std::make_shared<ConcatOp>(children[0], children[1], output_ids,
                                        left_cols, right_cols);
    };
    out->push_back(std::move(alt));
  }
};

class DistinctToHashDistinct final : public ImplementationRule {
 public:
  DistinctToHashDistinct()
      : ImplementationRule("DistinctToHashDistinct",
                           P::Op(LogicalOpKind::kDistinct, {P::Any()})) {}

  void Apply(const LogicalOp& bound, const CostModel& cost_model,
             std::vector<PhysicalAlternative>* out) const override {
    const auto& input = static_cast<const GroupRefOp&>(*bound.child(0));
    PhysicalAlternative alt;
    alt.child_groups = ChildGroups(bound);
    alt.local_cost = cost_model.HashDistinct(input.props().cardinality);
    alt.build = [](const std::vector<PhysicalOpPtr>& children) {
      return std::make_shared<HashDistinctOp>(children[0]);
    };
    out->push_back(std::move(alt));
  }
};

}  // namespace

std::unique_ptr<Rule> MakeGetToScan() { return std::make_unique<GetToScan>(); }
std::unique_ptr<Rule> MakeSelectToFilter() {
  return std::make_unique<SelectToFilter>();
}
std::unique_ptr<Rule> MakeProjectToCompute() {
  return std::make_unique<ProjectToCompute>();
}
std::unique_ptr<Rule> MakeJoinToNlJoin() {
  return std::make_unique<JoinToNlJoin>();
}
std::unique_ptr<Rule> MakeJoinToHashJoin() {
  return std::make_unique<JoinToHashJoin>();
}
std::unique_ptr<Rule> MakeGroupByToHashAggregate() {
  return std::make_unique<GroupByToHashAggregate>();
}
std::unique_ptr<Rule> MakeGroupByToStreamAggregate() {
  return std::make_unique<GroupByToStreamAggregate>();
}
std::unique_ptr<Rule> MakeUnionAllToConcat() {
  return std::make_unique<UnionAllToConcat>();
}
std::unique_ptr<Rule> MakeDistinctToHashDistinct() {
  return std::make_unique<DistinctToHashDistinct>();
}

}  // namespace qtf
