#include "rules/rule_util.h"

namespace qtf {

LogicalProps BoundProps(const LogicalOp& op) { return DeriveTreeProps(op); }

LogicalOpPtr ProjectTo(LogicalOpPtr input, const std::vector<ColumnId>& cols,
                       const LogicalProps& props) {
  std::vector<ProjectItem> items;
  items.reserve(cols.size());
  for (ColumnId id : cols) {
    items.push_back(ProjectItem{Col(id, props.TypeOf(id)), id});
  }
  return std::make_shared<ProjectOp>(std::move(input), std::move(items));
}

void SplitPushable(const ExprPtr& predicate, const ColumnSet& allowed,
                   std::vector<ExprPtr>* pushable,
                   std::vector<ExprPtr>* remaining) {
  for (const ExprPtr& conjunct : SplitConjuncts(predicate)) {
    if (ReferencesOnly(*conjunct, allowed)) {
      pushable->push_back(conjunct);
    } else {
      remaining->push_back(conjunct);
    }
  }
}

std::map<ColumnId, ExprPtr> ComputedItemMap(const ProjectOp& project) {
  std::map<ColumnId, ExprPtr> out;
  for (const ProjectItem& item : project.items()) {
    if (item.expr->kind() != ExprKind::kColumnRef) {
      out[item.id] = item.expr;
    }
  }
  return out;
}

}  // namespace qtf
