#include "rules/exploration_rules.h"
#include "rules/rule_util.h"

namespace qtf {
namespace {

using P = PatternNode;

/// A join B -> B join A. The predicate is untouched: expressions reference
/// column ids, not positions, so no rebinding is needed.
class JoinCommutativity final : public ExplorationRule {
 public:
  JoinCommutativity()
      : ExplorationRule("JoinCommutativity",
                        P::Join(JoinKind::kInner, P::Any(), P::Any())) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& join = static_cast<const JoinOp&>(bound);
    out->push_back(std::make_shared<JoinOp>(JoinKind::kInner, join.child(1),
                                            join.child(0), join.predicate()));
  }
};

/// Pools the conjuncts of both predicates and redistributes them across the
/// re-associated join pair (inner joins with conjunctive predicates are
/// freely reorderable).
LogicalOpPtr Reassociate(const LogicalOpPtr& a, const LogicalOpPtr& b,
                         const LogicalOpPtr& c,
                         const std::vector<ExprPtr>& conjuncts) {
  // Builds A join (B join C); conjuncts over B u C go inside.
  ColumnSet bc;
  for (ColumnId id : b->OutputColumns()) bc.insert(id);
  for (ColumnId id : c->OutputColumns()) bc.insert(id);
  std::vector<ExprPtr> inner_conjuncts, outer_conjuncts;
  for (const ExprPtr& conjunct : conjuncts) {
    if (ReferencesOnly(*conjunct, bc)) {
      inner_conjuncts.push_back(conjunct);
    } else {
      outer_conjuncts.push_back(conjunct);
    }
  }
  LogicalOpPtr inner = std::make_shared<JoinOp>(
      JoinKind::kInner, b, c, MakeConjunction(inner_conjuncts));
  return std::make_shared<JoinOp>(JoinKind::kInner, a, std::move(inner),
                                  MakeConjunction(outer_conjuncts));
}

/// (A join B) join C -> A join (B join C).
class JoinAssociativityLeft final : public ExplorationRule {
 public:
  JoinAssociativityLeft()
      : ExplorationRule(
            "JoinAssociativityLeft",
            P::Join(JoinKind::kInner,
                    P::Join(JoinKind::kInner, P::Any(), P::Any()), P::Any())) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& top = static_cast<const JoinOp&>(bound);
    const auto& lower = static_cast<const JoinOp&>(*top.child(0));
    std::vector<ExprPtr> conjuncts = SplitConjuncts(lower.predicate());
    std::vector<ExprPtr> top_conjuncts = SplitConjuncts(top.predicate());
    conjuncts.insert(conjuncts.end(), top_conjuncts.begin(),
                     top_conjuncts.end());
    out->push_back(Reassociate(lower.child(0), lower.child(1), top.child(1),
                               conjuncts));
  }
};

/// A join (B join C) -> (A join B) join C.
class JoinAssociativityRight final : public ExplorationRule {
 public:
  JoinAssociativityRight()
      : ExplorationRule(
            "JoinAssociativityRight",
            P::Join(JoinKind::kInner, P::Any(),
                    P::Join(JoinKind::kInner, P::Any(), P::Any()))) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& top = static_cast<const JoinOp&>(bound);
    const auto& lower = static_cast<const JoinOp&>(*top.child(1));
    std::vector<ExprPtr> conjuncts = SplitConjuncts(top.predicate());
    std::vector<ExprPtr> lower_conjuncts = SplitConjuncts(lower.predicate());
    conjuncts.insert(conjuncts.end(), lower_conjuncts.begin(),
                     lower_conjuncts.end());
    const LogicalOpPtr& a = top.child(0);
    const LogicalOpPtr& b = lower.child(0);
    const LogicalOpPtr& c = lower.child(1);
    // Build (A join B) join C: conjuncts over A u B go inside.
    ColumnSet ab;
    for (ColumnId id : a->OutputColumns()) ab.insert(id);
    for (ColumnId id : b->OutputColumns()) ab.insert(id);
    std::vector<ExprPtr> inner_conjuncts, outer_conjuncts;
    for (const ExprPtr& conjunct : conjuncts) {
      if (ReferencesOnly(*conjunct, ab)) {
        inner_conjuncts.push_back(conjunct);
      } else {
        outer_conjuncts.push_back(conjunct);
      }
    }
    LogicalOpPtr inner = std::make_shared<JoinOp>(
        JoinKind::kInner, a, b, MakeConjunction(inner_conjuncts));
    out->push_back(std::make_shared<JoinOp>(JoinKind::kInner, std::move(inner),
                                            c,
                                            MakeConjunction(outer_conjuncts)));
  }
};

/// select[p](A loj[q] B) -> select[p](A join[q] B) when p rejects the
/// null-extended rows (p is NULL-rejecting on B's columns).
class LojToJoin final : public ExplorationRule {
 public:
  LojToJoin()
      : ExplorationRule(
            "LojToJoin",
            P::Op(LogicalOpKind::kSelect,
                  {P::Join(JoinKind::kLeftOuter, P::Any(), P::Any())})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& select = static_cast<const SelectOp&>(bound);
    const auto& loj = static_cast<const JoinOp&>(*select.child(0));
    ColumnSet right_cols;
    for (ColumnId id : loj.child(1)->OutputColumns()) right_cols.insert(id);
    if (!RejectsAllNull(*select.predicate(), right_cols)) return;
    LogicalOpPtr inner = std::make_shared<JoinOp>(
        JoinKind::kInner, loj.child(0), loj.child(1), loj.predicate());
    out->push_back(
        std::make_shared<SelectOp>(std::move(inner), select.predicate()));
  }
};

/// A join[p] (B loj[q] C) -> (A join[p] B) loj[q] C when p references only
/// A u B (the paper's Section 3 example of join/outer-join associativity).
class JoinLojAssocLeft final : public ExplorationRule {
 public:
  JoinLojAssocLeft()
      : ExplorationRule(
            "JoinLojAssocLeft",
            P::Join(JoinKind::kInner, P::Any(),
                    P::Join(JoinKind::kLeftOuter, P::Any(), P::Any()))) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& top = static_cast<const JoinOp&>(bound);
    const auto& loj = static_cast<const JoinOp&>(*top.child(1));
    const LogicalOpPtr& a = top.child(0);
    const LogicalOpPtr& b = loj.child(0);
    const LogicalOpPtr& c = loj.child(1);
    ColumnSet ab;
    for (ColumnId id : a->OutputColumns()) ab.insert(id);
    for (ColumnId id : b->OutputColumns()) ab.insert(id);
    if (top.predicate() != nullptr &&
        !ReferencesOnly(*top.predicate(), ab)) {
      return;
    }
    LogicalOpPtr inner =
        std::make_shared<JoinOp>(JoinKind::kInner, a, b, top.predicate());
    out->push_back(std::make_shared<JoinOp>(
        JoinKind::kLeftOuter, std::move(inner), c, loj.predicate()));
  }
};

/// (A loj[p] B) loj[q] C -> A loj[p] (B loj[q] C) when q references only
/// B u C and is NULL-rejecting on B (Galindo-Legaria associativity
/// condition).
class LojLojAssocRight final : public ExplorationRule {
 public:
  LojLojAssocRight()
      : ExplorationRule(
            "LojLojAssocRight",
            P::Join(JoinKind::kLeftOuter,
                    P::Join(JoinKind::kLeftOuter, P::Any(), P::Any()),
                    P::Any())) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& top = static_cast<const JoinOp&>(bound);
    const auto& lower = static_cast<const JoinOp&>(*top.child(0));
    const LogicalOpPtr& a = lower.child(0);
    const LogicalOpPtr& b = lower.child(1);
    const LogicalOpPtr& c = top.child(1);
    if (top.predicate() == nullptr) return;
    ColumnSet b_cols, bc;
    for (ColumnId id : b->OutputColumns()) {
      b_cols.insert(id);
      bc.insert(id);
    }
    for (ColumnId id : c->OutputColumns()) bc.insert(id);
    if (!ReferencesOnly(*top.predicate(), bc)) return;
    if (!RejectsAllNull(*top.predicate(), b_cols)) return;
    LogicalOpPtr inner = std::make_shared<JoinOp>(JoinKind::kLeftOuter, b, c,
                                                  top.predicate());
    out->push_back(std::make_shared<JoinOp>(
        JoinKind::kLeftOuter, a, std::move(inner), lower.predicate()));
  }
};

}  // namespace

std::unique_ptr<Rule> MakeJoinCommutativity() {
  return std::make_unique<JoinCommutativity>();
}
std::unique_ptr<Rule> MakeJoinAssociativityLeft() {
  return std::make_unique<JoinAssociativityLeft>();
}
std::unique_ptr<Rule> MakeJoinAssociativityRight() {
  return std::make_unique<JoinAssociativityRight>();
}
std::unique_ptr<Rule> MakeLojToJoin() { return std::make_unique<LojToJoin>(); }
std::unique_ptr<Rule> MakeJoinLojAssocLeft() {
  return std::make_unique<JoinLojAssocLeft>();
}
std::unique_ptr<Rule> MakeLojLojAssocRight() {
  return std::make_unique<LojLojAssocRight>();
}

}  // namespace qtf
