#ifndef QTF_RULES_RULE_UTIL_H_
#define QTF_RULES_RULE_UTIL_H_

#include <vector>

#include "logical/ops.h"
#include "logical/props.h"

namespace qtf {

/// Logical properties of a node inside a bound tree: GroupRef leaves carry
/// their group's cached properties; interior pattern operators are derived
/// on the fly (bound trees are shallow, so this is cheap).
LogicalProps BoundProps(const LogicalOp& op);

/// Pass-through projection of `input` to `cols` (in order). `props` must
/// describe an output superset of `cols` and supplies their types.
LogicalOpPtr ProjectTo(LogicalOpPtr input, const std::vector<ColumnId>& cols,
                       const LogicalProps& props);

/// Splits the conjuncts of `predicate` into those referencing only columns
/// in `allowed` and the rest.
void SplitPushable(const ExprPtr& predicate, const ColumnSet& allowed,
                   std::vector<ExprPtr>* pushable,
                   std::vector<ExprPtr>* remaining);

/// Map from computed project-item ids to their defining expressions
/// (pass-through items are omitted — they are identity).
std::map<ColumnId, ExprPtr> ComputedItemMap(const ProjectOp& project);

}  // namespace qtf

#endif  // QTF_RULES_RULE_UTIL_H_
