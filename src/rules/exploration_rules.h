#ifndef QTF_RULES_EXPLORATION_RULES_H_
#define QTF_RULES_EXPLORATION_RULES_H_

#include <memory>

#include "optimizer/rule.h"

namespace qtf {

// The ~30 logical transformation rules of the optimizer (see DESIGN.md for
// the semantics and preconditions of each). Factories return fresh rule
// instances for registration with a RuleRegistry.

// Inner-join reordering (join_rules.cc).
std::unique_ptr<Rule> MakeJoinCommutativity();
std::unique_ptr<Rule> MakeJoinAssociativityLeft();
std::unique_ptr<Rule> MakeJoinAssociativityRight();

// Outer-join rules (join_rules.cc).
std::unique_ptr<Rule> MakeLojToJoin();
std::unique_ptr<Rule> MakeJoinLojAssocLeft();
std::unique_ptr<Rule> MakeLojLojAssocRight();

// Select placement (select_rules.cc).
std::unique_ptr<Rule> MakeSelectPushBelowJoinLeft();
std::unique_ptr<Rule> MakeSelectPushBelowJoinRight();
std::unique_ptr<Rule> MakeSelectPushBelowLojLeft();
std::unique_ptr<Rule> MakeSelectMerge();
std::unique_ptr<Rule> MakeSelectSplit();
std::unique_ptr<Rule> MakeSelectPushBelowProject();
std::unique_ptr<Rule> MakeSelectPushBelowGroupBy();
std::unique_ptr<Rule> MakeSelectPushBelowUnionAll();
std::unique_ptr<Rule> MakeSelectPushBelowDistinct();
std::unique_ptr<Rule> MakeSelectIntoJoin();
std::unique_ptr<Rule> MakeProjectMerge();

// Aggregation / distinct rules (agg_rules.cc).
std::unique_ptr<Rule> MakeGroupByPushBelowJoinLeft();
std::unique_ptr<Rule> MakeGroupByPullAboveJoinLeft();
std::unique_ptr<Rule> MakeGroupByToDistinct();
std::unique_ptr<Rule> MakeDistinctToGroupBy();
std::unique_ptr<Rule> MakeGroupByOnKeyElimination();
std::unique_ptr<Rule> MakeDistinctElimination();

// Semi/anti-join rules (semijoin_rules.cc).
std::unique_ptr<Rule> MakeSemiJoinToJoinDistinct();
std::unique_ptr<Rule> MakeJoinToSemiJoin();
std::unique_ptr<Rule> MakeAntiToLojNullFilter();
std::unique_ptr<Rule> MakeSemiJoinCommuteSelect();

// Union rules (union_rules.cc).
std::unique_ptr<Rule> MakeUnionAllCommutativity();
std::unique_ptr<Rule> MakeUnionAllAssociativity();
std::unique_ptr<Rule> MakeProjectPushBelowUnionAll();

}  // namespace qtf

#endif  // QTF_RULES_EXPLORATION_RULES_H_
