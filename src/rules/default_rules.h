#ifndef QTF_RULES_DEFAULT_RULES_H_
#define QTF_RULES_DEFAULT_RULES_H_

#include <memory>

#include "optimizer/rule.h"

namespace qtf {

/// Builds the optimizer's default rule registry: 30 logical (exploration)
/// transformation rules — the rule set R targeted by the paper's
/// experiments — followed by the implementation rules. Exploration rules
/// occupy the low ids (0..29) in the canonical order listed in DESIGN.md.
std::unique_ptr<RuleRegistry> MakeDefaultRuleRegistry();

/// Number of logical rules registered first by MakeDefaultRuleRegistry.
constexpr int kDefaultLogicalRuleCount = 30;

}  // namespace qtf

#endif  // QTF_RULES_DEFAULT_RULES_H_
