#ifndef QTF_RULES_BUGGY_RULES_H_
#define QTF_RULES_BUGGY_RULES_H_

#include <memory>

#include "optimizer/rule.h"

namespace qtf {

// Deliberately incorrect rule variants used to demonstrate and test the
// correctness-validation harness (paper Section 2.3): each miscompiles in a
// way a real optimizer bug would, so executing Plan(q) vs Plan(q, not r)
// yields different results for some query.

/// LojToJoin without the NULL-rejection precondition: silently drops the
/// null-extended rows of the outer join.
std::unique_ptr<Rule> MakeBuggyLojToJoin();

/// Select-below-GroupBy pushdown that pushes predicates over aggregate
/// outputs/non-grouping columns by rewriting them onto grouping columns
/// incorrectly (filters rows instead of groups).
std::unique_ptr<Rule> MakeBuggySelectPushBelowGroupBy();

/// Commutativity applied to LEFT OUTER joins as if they were inner joins
/// (swaps the preserved side). Unlike a dropped-predicate bug — whose cross
/// join is so expensive the optimizer never picks it — the swapped outer
/// join frequently wins on cost, so the harness can catch it in Plan(q).
std::unique_ptr<Rule> MakeBuggyLojCommutativity();

}  // namespace qtf

#endif  // QTF_RULES_BUGGY_RULES_H_
