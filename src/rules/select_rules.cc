#include "rules/exploration_rules.h"
#include "rules/rule_util.h"

namespace qtf {
namespace {

using P = PatternNode;

/// Shared core of the select-below-join pushdown rules: pushes the
/// conjuncts that reference only `side`'s columns below that side of the
/// join.
void PushSelectBelowJoin(const LogicalOp& bound, int side, JoinKind join_kind,
                         std::vector<LogicalOpPtr>* out) {
  const auto& select = static_cast<const SelectOp&>(bound);
  const auto& join = static_cast<const JoinOp&>(*select.child(0));
  const LogicalOpPtr& target = join.child(static_cast<size_t>(side));
  ColumnSet target_cols;
  for (ColumnId id : target->OutputColumns()) target_cols.insert(id);
  std::vector<ExprPtr> pushable, remaining;
  SplitPushable(select.predicate(), target_cols, &pushable, &remaining);
  if (pushable.empty()) return;
  LogicalOpPtr filtered =
      std::make_shared<SelectOp>(target, MakeConjunction(pushable));
  LogicalOpPtr new_join =
      side == 0 ? std::make_shared<JoinOp>(join_kind, std::move(filtered),
                                           join.child(1), join.predicate())
                : std::make_shared<JoinOp>(join_kind, join.child(0),
                                           std::move(filtered),
                                           join.predicate());
  if (remaining.empty()) {
    out->push_back(std::move(new_join));
  } else {
    out->push_back(std::make_shared<SelectOp>(std::move(new_join),
                                              MakeConjunction(remaining)));
  }
}

/// select[p](A join B) -> select[rest](select[pA](A) join B).
class SelectPushBelowJoinLeft final : public ExplorationRule {
 public:
  SelectPushBelowJoinLeft()
      : ExplorationRule(
            "SelectPushBelowJoinLeft",
            P::Op(LogicalOpKind::kSelect,
                  {P::Join(JoinKind::kInner, P::Any(), P::Any())})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    PushSelectBelowJoin(bound, /*side=*/0, JoinKind::kInner, out);
  }
};

/// select[p](A join B) -> select[rest](A join select[pB](B)).
class SelectPushBelowJoinRight final : public ExplorationRule {
 public:
  SelectPushBelowJoinRight()
      : ExplorationRule(
            "SelectPushBelowJoinRight",
            P::Op(LogicalOpKind::kSelect,
                  {P::Join(JoinKind::kInner, P::Any(), P::Any())})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    PushSelectBelowJoin(bound, /*side=*/1, JoinKind::kInner, out);
  }
};

/// select[p](A loj B) -> select[rest](select[pA](A) loj B). Only the
/// preserved (left) side admits pushdown through an outer join.
class SelectPushBelowLojLeft final : public ExplorationRule {
 public:
  SelectPushBelowLojLeft()
      : ExplorationRule(
            "SelectPushBelowLojLeft",
            P::Op(LogicalOpKind::kSelect,
                  {P::Join(JoinKind::kLeftOuter, P::Any(), P::Any())})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    PushSelectBelowJoin(bound, /*side=*/0, JoinKind::kLeftOuter, out);
  }
};

/// select[p](select[q](A)) -> select[p AND q](A).
class SelectMerge final : public ExplorationRule {
 public:
  SelectMerge()
      : ExplorationRule("SelectMerge",
                        P::Op(LogicalOpKind::kSelect,
                              {P::Op(LogicalOpKind::kSelect, {P::Any()})})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& outer = static_cast<const SelectOp&>(bound);
    const auto& inner = static_cast<const SelectOp&>(*outer.child(0));
    std::vector<ExprPtr> conjuncts = SplitConjuncts(outer.predicate());
    std::vector<ExprPtr> inner_conjuncts = SplitConjuncts(inner.predicate());
    conjuncts.insert(conjuncts.end(), inner_conjuncts.begin(),
                     inner_conjuncts.end());
    out->push_back(std::make_shared<SelectOp>(inner.child(0),
                                              MakeConjunction(conjuncts)));
  }
};

/// select[c1 AND rest](A) -> select[c1](select[rest](A)).
class SelectSplit final : public ExplorationRule {
 public:
  SelectSplit()
      : ExplorationRule("SelectSplit",
                        P::Op(LogicalOpKind::kSelect, {P::Any()})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& select = static_cast<const SelectOp&>(bound);
    std::vector<ExprPtr> conjuncts = SplitConjuncts(select.predicate());
    if (conjuncts.size() < 2) return;
    std::vector<ExprPtr> rest(conjuncts.begin() + 1, conjuncts.end());
    LogicalOpPtr inner =
        std::make_shared<SelectOp>(select.child(0), MakeConjunction(rest));
    out->push_back(
        std::make_shared<SelectOp>(std::move(inner), conjuncts[0]));
  }
};

/// select[p](project(A)) -> project(select[p'](A)), with computed columns
/// expanded inside p.
class SelectPushBelowProject final : public ExplorationRule {
 public:
  SelectPushBelowProject()
      : ExplorationRule("SelectPushBelowProject",
                        P::Op(LogicalOpKind::kSelect,
                              {P::Op(LogicalOpKind::kProject, {P::Any()})})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& select = static_cast<const SelectOp&>(bound);
    const auto& project = static_cast<const ProjectOp&>(*select.child(0));
    std::map<ColumnId, ExprPtr> computed = ComputedItemMap(project);
    ExprPtr pushed = SubstituteColumns(select.predicate(), computed);
    LogicalOpPtr filtered =
        std::make_shared<SelectOp>(project.child(0), std::move(pushed));
    out->push_back(
        std::make_shared<ProjectOp>(std::move(filtered), project.items()));
  }
};

/// select[p](groupby[G,A](X)) -> groupby[G,A](select[p'](X)) for conjuncts
/// over grouping columns only (whole groups pass or fail together).
class SelectPushBelowGroupBy final : public ExplorationRule {
 public:
  SelectPushBelowGroupBy()
      : ExplorationRule(
            "SelectPushBelowGroupBy",
            P::Op(LogicalOpKind::kSelect,
                  {P::Op(LogicalOpKind::kGroupByAgg, {P::Any()})})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& select = static_cast<const SelectOp&>(bound);
    const auto& agg = static_cast<const GroupByAggOp&>(*select.child(0));
    ColumnSet group_cols(agg.group_cols().begin(), agg.group_cols().end());
    std::vector<ExprPtr> pushable, remaining;
    SplitPushable(select.predicate(), group_cols, &pushable, &remaining);
    if (pushable.empty()) return;
    LogicalOpPtr filtered =
        std::make_shared<SelectOp>(agg.child(0), MakeConjunction(pushable));
    LogicalOpPtr new_agg = std::make_shared<GroupByAggOp>(
        std::move(filtered), agg.group_cols(), agg.aggregates());
    if (remaining.empty()) {
      out->push_back(std::move(new_agg));
    } else {
      out->push_back(std::make_shared<SelectOp>(std::move(new_agg),
                                                MakeConjunction(remaining)));
    }
  }
};

/// select[p](X unionall Y) -> select[pX](X) unionall select[pY](Y), with the
/// union's output ids substituted by each side's input ids.
class SelectPushBelowUnionAll final : public ExplorationRule {
 public:
  SelectPushBelowUnionAll()
      : ExplorationRule("SelectPushBelowUnionAll",
                        P::Op(LogicalOpKind::kSelect,
                              {P::Op(LogicalOpKind::kUnionAll,
                                     {P::Any(), P::Any()})})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& select = static_cast<const SelectOp&>(bound);
    const auto& u = static_cast<const UnionAllOp&>(*select.child(0));
    std::vector<ColumnId> lcols = u.child(0)->OutputColumns();
    std::vector<ColumnId> rcols = u.child(1)->OutputColumns();
    LogicalProps lprops = BoundProps(*u.child(0));
    LogicalProps rprops = BoundProps(*u.child(1));
    std::map<ColumnId, ExprPtr> to_left, to_right;
    for (size_t i = 0; i < u.output_ids().size(); ++i) {
      to_left[u.output_ids()[i]] = Col(lcols[i], lprops.TypeOf(lcols[i]));
      to_right[u.output_ids()[i]] = Col(rcols[i], rprops.TypeOf(rcols[i]));
    }
    LogicalOpPtr left = std::make_shared<SelectOp>(
        u.child(0), SubstituteColumns(select.predicate(), to_left));
    LogicalOpPtr right = std::make_shared<SelectOp>(
        u.child(1), SubstituteColumns(select.predicate(), to_right));
    out->push_back(std::make_shared<UnionAllOp>(std::move(left),
                                                std::move(right),
                                                u.output_ids()));
  }
};

/// select[p](distinct(X)) -> distinct(select[p](X)).
class SelectPushBelowDistinct final : public ExplorationRule {
 public:
  SelectPushBelowDistinct()
      : ExplorationRule("SelectPushBelowDistinct",
                        P::Op(LogicalOpKind::kSelect,
                              {P::Op(LogicalOpKind::kDistinct, {P::Any()})})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& select = static_cast<const SelectOp&>(bound);
    const auto& distinct = static_cast<const DistinctOp&>(*select.child(0));
    LogicalOpPtr filtered =
        std::make_shared<SelectOp>(distinct.child(0), select.predicate());
    out->push_back(std::make_shared<DistinctOp>(std::move(filtered)));
  }
};

/// select[p](A join[q] B) -> A join[p AND q] B (predicate absorption into
/// an inner join; also turns select-over-cross-join into a real join).
class SelectIntoJoin final : public ExplorationRule {
 public:
  SelectIntoJoin()
      : ExplorationRule(
            "SelectIntoJoin",
            P::Op(LogicalOpKind::kSelect,
                  {P::Join(JoinKind::kInner, P::Any(), P::Any())})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& select = static_cast<const SelectOp&>(bound);
    const auto& join = static_cast<const JoinOp&>(*select.child(0));
    std::vector<ExprPtr> conjuncts = SplitConjuncts(select.predicate());
    std::vector<ExprPtr> join_conjuncts = SplitConjuncts(join.predicate());
    conjuncts.insert(conjuncts.end(), join_conjuncts.begin(),
                     join_conjuncts.end());
    ExprPtr merged = MakeConjunction(conjuncts);
    out->push_back(std::make_shared<JoinOp>(JoinKind::kInner, join.child(0),
                                            join.child(1), std::move(merged)));
  }
};

/// project(project(X)) -> project(X) with inner computed columns expanded.
class ProjectMerge final : public ExplorationRule {
 public:
  ProjectMerge()
      : ExplorationRule("ProjectMerge",
                        P::Op(LogicalOpKind::kProject,
                              {P::Op(LogicalOpKind::kProject, {P::Any()})})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& outer = static_cast<const ProjectOp&>(bound);
    const auto& inner = static_cast<const ProjectOp&>(*outer.child(0));
    std::map<ColumnId, ExprPtr> computed = ComputedItemMap(inner);
    std::vector<ProjectItem> items;
    items.reserve(outer.items().size());
    for (const ProjectItem& item : outer.items()) {
      items.push_back(
          ProjectItem{SubstituteColumns(item.expr, computed), item.id});
    }
    out->push_back(
        std::make_shared<ProjectOp>(inner.child(0), std::move(items)));
  }
};

}  // namespace

std::unique_ptr<Rule> MakeSelectPushBelowJoinLeft() {
  return std::make_unique<SelectPushBelowJoinLeft>();
}
std::unique_ptr<Rule> MakeSelectPushBelowJoinRight() {
  return std::make_unique<SelectPushBelowJoinRight>();
}
std::unique_ptr<Rule> MakeSelectPushBelowLojLeft() {
  return std::make_unique<SelectPushBelowLojLeft>();
}
std::unique_ptr<Rule> MakeSelectMerge() {
  return std::make_unique<SelectMerge>();
}
std::unique_ptr<Rule> MakeSelectSplit() {
  return std::make_unique<SelectSplit>();
}
std::unique_ptr<Rule> MakeSelectPushBelowProject() {
  return std::make_unique<SelectPushBelowProject>();
}
std::unique_ptr<Rule> MakeSelectPushBelowGroupBy() {
  return std::make_unique<SelectPushBelowGroupBy>();
}
std::unique_ptr<Rule> MakeSelectPushBelowUnionAll() {
  return std::make_unique<SelectPushBelowUnionAll>();
}
std::unique_ptr<Rule> MakeSelectPushBelowDistinct() {
  return std::make_unique<SelectPushBelowDistinct>();
}
std::unique_ptr<Rule> MakeSelectIntoJoin() {
  return std::make_unique<SelectIntoJoin>();
}
std::unique_ptr<Rule> MakeProjectMerge() {
  return std::make_unique<ProjectMerge>();
}

}  // namespace qtf
