#include "rules/exploration_rules.h"
#include "rules/rule_util.h"

namespace qtf {
namespace {

using P = PatternNode;

/// A unionall B -> B unionall A (bag union commutes; the output ids are
/// positional, and both sides agree on types per position).
class UnionAllCommutativity final : public ExplorationRule {
 public:
  UnionAllCommutativity()
      : ExplorationRule("UnionAllCommutativity",
                        P::Op(LogicalOpKind::kUnionAll, {P::Any(), P::Any()})) {
  }

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& u = static_cast<const UnionAllOp&>(bound);
    out->push_back(std::make_shared<UnionAllOp>(u.child(1), u.child(0),
                                                u.output_ids()));
  }
};

/// (A unionall B) unionall C -> A unionall (B unionall C). The inner
/// union's output ids are reused for the new (B unionall C) node — types
/// match positionally by construction.
class UnionAllAssociativity final : public ExplorationRule {
 public:
  UnionAllAssociativity()
      : ExplorationRule(
            "UnionAllAssociativity",
            P::Op(LogicalOpKind::kUnionAll,
                  {P::Op(LogicalOpKind::kUnionAll, {P::Any(), P::Any()}),
                   P::Any()})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& top = static_cast<const UnionAllOp&>(bound);
    const auto& lower = static_cast<const UnionAllOp&>(*top.child(0));
    LogicalOpPtr inner = std::make_shared<UnionAllOp>(
        lower.child(1), top.child(1), lower.output_ids());
    out->push_back(std::make_shared<UnionAllOp>(
        lower.child(0), std::move(inner), top.output_ids()));
  }
};

/// project(X unionall Y) -> project_l(X) unionall project_r(Y), rewriting
/// item expressions in terms of each side's columns. Computed item ids are
/// reused in both branches (each branch is a separate scope) and become the
/// new union's output ids.
class ProjectPushBelowUnionAll final : public ExplorationRule {
 public:
  ProjectPushBelowUnionAll()
      : ExplorationRule("ProjectPushBelowUnionAll",
                        P::Op(LogicalOpKind::kProject,
                              {P::Op(LogicalOpKind::kUnionAll,
                                     {P::Any(), P::Any()})})) {}

  void Apply(const LogicalOp& bound,
             std::vector<LogicalOpPtr>* out) const override {
    const auto& project = static_cast<const ProjectOp&>(bound);
    const auto& u = static_cast<const UnionAllOp&>(*project.child(0));
    std::vector<ColumnId> lcols = u.child(0)->OutputColumns();
    std::vector<ColumnId> rcols = u.child(1)->OutputColumns();
    LogicalProps lprops = BoundProps(*u.child(0));
    LogicalProps rprops = BoundProps(*u.child(1));
    std::map<ColumnId, ExprPtr> to_left, to_right;
    for (size_t i = 0; i < u.output_ids().size(); ++i) {
      to_left[u.output_ids()[i]] = Col(lcols[i], lprops.TypeOf(lcols[i]));
      to_right[u.output_ids()[i]] = Col(rcols[i], rprops.TypeOf(rcols[i]));
    }

    std::vector<ProjectItem> left_items, right_items;
    std::vector<ColumnId> new_output_ids;
    for (const ProjectItem& item : project.items()) {
      ExprPtr le = SubstituteColumns(item.expr, to_left);
      ExprPtr re = SubstituteColumns(item.expr, to_right);
      ColumnId lid = le->kind() == ExprKind::kColumnRef
                         ? static_cast<const ColumnRefExpr&>(*le).id()
                         : item.id;
      ColumnId rid = re->kind() == ExprKind::kColumnRef
                         ? static_cast<const ColumnRefExpr&>(*re).id()
                         : item.id;
      left_items.push_back(ProjectItem{std::move(le), lid});
      right_items.push_back(ProjectItem{std::move(re), rid});
      new_output_ids.push_back(item.id);
    }
    LogicalOpPtr left =
        std::make_shared<ProjectOp>(u.child(0), std::move(left_items));
    LogicalOpPtr right =
        std::make_shared<ProjectOp>(u.child(1), std::move(right_items));
    out->push_back(std::make_shared<UnionAllOp>(
        std::move(left), std::move(right), std::move(new_output_ids)));
  }
};

}  // namespace

std::unique_ptr<Rule> MakeUnionAllCommutativity() {
  return std::make_unique<UnionAllCommutativity>();
}
std::unique_ptr<Rule> MakeUnionAllAssociativity() {
  return std::make_unique<UnionAllAssociativity>();
}
std::unique_ptr<Rule> MakeProjectPushBelowUnionAll() {
  return std::make_unique<ProjectPushBelowUnionAll>();
}

}  // namespace qtf
