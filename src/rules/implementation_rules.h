#ifndef QTF_RULES_IMPLEMENTATION_RULES_H_
#define QTF_RULES_IMPLEMENTATION_RULES_H_

#include <memory>

#include "optimizer/rule.h"

namespace qtf {

// Implementation (physical) rules: logical operator -> physical operator
// alternatives with local costs.

std::unique_ptr<Rule> MakeGetToScan();
std::unique_ptr<Rule> MakeSelectToFilter();
std::unique_ptr<Rule> MakeProjectToCompute();
/// Nested-loops join for every join kind and predicate shape.
std::unique_ptr<Rule> MakeJoinToNlJoin();
/// Hash join for every join kind when the predicate has equi-join columns.
std::unique_ptr<Rule> MakeJoinToHashJoin();
std::unique_ptr<Rule> MakeGroupByToHashAggregate();
/// Stream aggregate with a Sort enforcer below.
std::unique_ptr<Rule> MakeGroupByToStreamAggregate();
std::unique_ptr<Rule> MakeUnionAllToConcat();
std::unique_ptr<Rule> MakeDistinctToHashDistinct();

}  // namespace qtf

#endif  // QTF_RULES_IMPLEMENTATION_RULES_H_
