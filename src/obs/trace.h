#ifndef QTF_OBS_TRACE_H_
#define QTF_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace qtf {
namespace obs {

/// One phase-tracing event. Begin events carry seconds == 0; end events
/// carry the span's elapsed wall-clock seconds. thread_hash identifies the
/// emitting thread (stable within a process run, not across runs).
struct TraceEvent {
  enum class Kind { kBegin, kEnd };

  Kind kind = Kind::kBegin;
  std::string phase;
  double seconds = 0.0;
  uint64_t thread_hash = 0;
};

/// Receiver for trace events. Implementations MUST be thread-safe: spans
/// are emitted from ThreadPool workers (parallel generation, prefetch
/// waves) as well as the coordinating thread.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

/// Buffers events in memory (mutex-protected). The test/bench sink.
class CollectingTraceSink : public TraceSink {
 public:
  void OnEvent(const TraceEvent& event) override;

  std::vector<TraceEvent> Events() const;
  /// Drains and returns the buffer.
  std::vector<TraceEvent> TakeEvents();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Writes one line per event to a FILE* (default stderr). Handy for
/// eyeballing where a long bench run spends its time.
class StreamTraceSink : public TraceSink {
 public:
  explicit StreamTraceSink(std::FILE* stream = stderr) : stream_(stream) {}
  void OnEvent(const TraceEvent& event) override;

 private:
  std::mutex mu_;
  std::FILE* stream_;
};

/// RAII phase span: emits a begin event on construction and an end event
/// (with elapsed seconds) on destruction, through the registry's pluggable
/// sink. With a null registry or no sink attached the span is inert — no
/// clock reads, no allocation — so instrumented code paths cost one branch
/// when tracing is off.
class PhaseSpan {
 public:
  PhaseSpan(MetricsRegistry* registry, const char* phase)
      : PhaseSpan(registry != nullptr ? registry->trace_sink() : nullptr,
                  phase) {}
  PhaseSpan(TraceSink* sink, const char* phase);
  ~PhaseSpan();
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  TraceSink* sink_;
  const char* phase_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII timer recording elapsed wall-clock seconds into a histogram (and
/// optionally a double) on destruction. Null-safe: with both outputs null
/// the timer is inert.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, double* out = nullptr);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  double* out_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace qtf

#endif  // QTF_OBS_TRACE_H_
