#include "obs/trace.h"

#include <functional>
#include <thread>

namespace qtf {
namespace obs {

namespace {

uint64_t ThisThreadHash() {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

void CollectingTraceSink::OnEvent(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

std::vector<TraceEvent> CollectingTraceSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<TraceEvent> CollectingTraceSink::TakeEvents() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

void StreamTraceSink::OnEvent(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (event.kind == TraceEvent::Kind::kBegin) {
    std::fprintf(stream_, "[trace] begin %s\n", event.phase.c_str());
  } else {
    std::fprintf(stream_, "[trace] end   %s (%.6fs)\n", event.phase.c_str(),
                 event.seconds);
  }
}

PhaseSpan::PhaseSpan(TraceSink* sink, const char* phase)
    : sink_(sink), phase_(phase) {
  if (sink_ == nullptr) return;
  start_ = std::chrono::steady_clock::now();
  TraceEvent event;
  event.kind = TraceEvent::Kind::kBegin;
  event.phase = phase_;
  event.thread_hash = ThisThreadHash();
  sink_->OnEvent(event);
}

PhaseSpan::~PhaseSpan() {
  if (sink_ == nullptr) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kEnd;
  event.phase = phase_;
  event.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  event.thread_hash = ThisThreadHash();
  sink_->OnEvent(event);
}

ScopedTimer::ScopedTimer(Histogram* histogram, double* out)
    : histogram_(histogram), out_(out) {
  if (histogram_ == nullptr && out_ == nullptr) return;
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr && out_ == nullptr) return;
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  if (histogram_ != nullptr) histogram_->Observe(seconds);
  if (out_ != nullptr) *out_ = seconds;
}

}  // namespace obs
}  // namespace qtf
