#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace qtf {
namespace obs {

namespace {

/// fetch_add for atomic<double> via CAS: portable across standard-library
/// versions that predate P0020's native floating-point fetch_add.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

/// Smallest e with value <= 2^e (value > 0, finite).
int CeilLog2(double value) {
  int e = std::ilogb(value);  // floor(log2(value))
  if (std::ldexp(1.0, e) < value) ++e;
  return e;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

}  // namespace

void Histogram::Observe(double value) {
  int idx;
  if (!(value > 0.0)) {  // <= 0 and NaN both land in the first bucket
    idx = 0;
  } else if (std::isinf(value)) {
    idx = kBucketCount - 1;
  } else {
    idx = std::clamp(CeilLog2(value) + kBucketShift, 0, kBucketCount - 1);
  }
  buckets_[static_cast<size_t>(idx)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
}

double Histogram::BucketUpperBound(int i) {
  if (i >= kBucketCount - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, i - kBucketShift);
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.count = histogram->Count();
    value.sum = histogram->Sum();
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      int64_t count = histogram->BucketCount(i);
      if (count > 0) {
        value.buckets.emplace_back(Histogram::BucketUpperBound(i), count);
      }
    }
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

namespace {

int64_t SortedLookup(const std::vector<std::pair<std::string, int64_t>>& values,
                     const std::string& name, int64_t fallback) {
  auto it = std::lower_bound(
      values.begin(), values.end(), name,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it == values.end() || it->first != name) return fallback;
  return it->second;
}

}  // namespace

int64_t MetricsSnapshot::CounterValue(const std::string& name,
                                      int64_t fallback) const {
  return SortedLookup(counters, name, fallback);
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name,
                                    int64_t fallback) const {
  return SortedLookup(gauges, name, fallback);
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramValue& value : histograms) {
    if (value.name == name) return &value;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, counters[i].first);
    out.push_back(':');
    out.append(std::to_string(counters[i].second));
  }
  out.append("},\"gauges\":{");
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, gauges[i].first);
    out.push_back(':');
    out.append(std::to_string(gauges[i].second));
  }
  out.append("},\"histograms\":{");
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, h.name);
    out.append(":{\"count\":");
    out.append(std::to_string(h.count));
    out.append(",\"sum\":");
    AppendDouble(&out, h.sum);
    out.append(",\"buckets\":[");
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out.push_back(',');
      out.append("{\"le\":");
      if (std::isinf(h.buckets[b].first)) {
        out.append("null");  // JSON has no infinity; null marks +inf
      } else {
        AppendDouble(&out, h.buckets[b].first);
      }
      out.append(",\"count\":");
      out.append(std::to_string(h.buckets[b].second));
      out.push_back('}');
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[160];
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "counter   %-44s %ld\n", name.c_str(),
                  static_cast<long>(value));
    out.append(buf);
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "gauge     %-44s %ld\n", name.c_str(),
                  static_cast<long>(value));
    out.append(buf);
  }
  for (const HistogramValue& h : histograms) {
    double mean = h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "histogram %-44s count=%ld sum=%.6g mean=%.6g\n",
                  h.name.c_str(), static_cast<long>(h.count), h.sum, mean);
    out.append(buf);
  }
  return out;
}

}  // namespace obs
}  // namespace qtf
