#ifndef QTF_OBS_METRICS_H_
#define QTF_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace qtf {
namespace obs {

class TraceSink;

/// Monotonically increasing counter. All operations are lock-free relaxed
/// atomics: increments from concurrent optimizer invocations, prefetch
/// workers and generation tasks never serialize on a metric. Usable either
/// standalone (a member of the object it instruments, e.g. the per-provider
/// optimizer_calls view) or owned by a MetricsRegistry.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. plan-cache size).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Distribution with fixed log-scale (power-of-two) buckets: bucket i
/// covers values <= 2^(i - kBucketShift), the last bucket catches
/// everything larger. One layout serves every unit the framework observes
/// — seconds (1e-9 .. hours), memo sizes, trial counts — without
/// per-histogram configuration, so merging and exporting stay trivial.
/// Observe() is two relaxed atomic adds; no locks.
class Histogram {
 public:
  static constexpr int kBucketCount = 64;
  static constexpr int kBucketShift = 30;  // bucket 0 ends at 2^-30 (~1e-9)

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket i; +infinity for the last bucket.
  static double BucketUpperBound(int i);

 private:
  std::array<std::atomic<int64_t>, kBucketCount> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of a registry's metrics, sorted by name, so two
/// snapshots of identical state compare equal and exports are
/// deterministic. This is what benches diff (before/after a phase) and
/// what the JSON/text exporters serialize.
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    int64_t count = 0;
    double sum = 0.0;
    /// (inclusive upper bound, count) for every non-empty bucket; the
    /// +infinity bucket's bound is represented as infinity here and as
    /// null in JSON.
    std::vector<std::pair<double, int64_t>> buckets;
  };

  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of a counter, or `fallback` when absent.
  int64_t CounterValue(const std::string& name, int64_t fallback = 0) const;
  /// Value of a gauge, or `fallback` when absent.
  int64_t GaugeValue(const std::string& name, int64_t fallback = 0) const;
  /// The histogram entry for `name`, or nullptr.
  const HistogramValue* FindHistogram(const std::string& name) const;

  /// Machine-readable export: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"count":..,"sum":..,"buckets":[{"le":..,"count":..}]}}}.
  std::string ToJson() const;
  /// Human-readable export: one aligned line per metric.
  std::string ToText() const;
};

/// Thread-safe, name-keyed home for the framework's metrics plus the
/// pluggable trace sink (see obs/trace.h). counter()/gauge()/histogram()
/// get-or-create under a mutex and return stable pointers — instrumented
/// components resolve their metrics once at construction and touch only
/// lock-free atomics afterwards. Counters, gauges and histograms live in
/// separate namespaces.
///
/// Each RuleTestFramework owns one registry shared by all its components;
/// a bare Optimizer owns a private one, so invocation accounting works
/// identically with or without the facade.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Deterministic point-in-time copy (sorted by name). Concurrent writers
  /// may land between individual metric reads; after all writers join, two
  /// snapshots of the same registry are identical.
  MetricsSnapshot Snapshot() const;

  /// Sink receiving PhaseSpan begin/end events. Borrowed, not owned; must
  /// be thread-safe (spans are emitted from worker threads too). nullptr
  /// (the default) disables tracing at the cost of one branch.
  void set_trace_sink(TraceSink* sink) {
    sink_.store(sink, std::memory_order_release);
  }
  TraceSink* trace_sink() const {
    return sink_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mu_;  // guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::atomic<TraceSink*> sink_{nullptr};
};

}  // namespace obs
}  // namespace qtf

#endif  // QTF_OBS_METRICS_H_
