#include "types/value.h"

#include <cstring>
#include <functional>

#include "common/hash.h"
#include "common/str_util.h"

namespace qtf {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBool:
      return "BOOL";
  }
  return "UNKNOWN";
}

double Value::AsDouble() const {
  QTF_CHECK(!is_null_);
  if (type_ == ValueType::kInt64) return static_cast<double>(int64());
  QTF_CHECK(type_ == ValueType::kDouble)
      << "AsDouble on " << ValueTypeToString(type_);
  return dbl();
}

int Value::Compare(const Value& other) const {
  QTF_CHECK(type_ == other.type_)
      << "comparing " << ValueTypeToString(type_) << " with "
      << ValueTypeToString(other.type_);
  if (is_null_ && other.is_null_) return 0;
  if (is_null_) return -1;
  if (other.is_null_) return 1;
  switch (type_) {
    case ValueType::kInt64: {
      int64_t a = int64(), b = other.int64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kDouble: {
      double a = dbl(), b = other.dbl();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString:
      return str().compare(other.str()) < 0
                 ? -1
                 : (str() == other.str() ? 0 : 1);
    case ValueType::kBool: {
      int a = boolean() ? 1 : 0, b = other.boolean() ? 1 : 0;
      return a - b;
    }
  }
  return 0;
}

std::string Value::ToSqlLiteral() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case ValueType::kInt64:
      return std::to_string(int64());
    case ValueType::kDouble: {
      // Integral doubles format as bare digits ("2"); append ".0" so the
      // literal re-parses as a double, not an integer.
      std::string text = FormatDouble(dbl());
      if (text.find_first_not_of("-0123456789") == std::string::npos) {
        text += ".0";
      }
      return text;
    }
    case ValueType::kString:
      return SqlQuote(str());
    case ValueType::kBool:
      return boolean() ? "TRUE" : "FALSE";
  }
  return "NULL";
}

size_t Value::Hash() const {
  if (is_null_) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case ValueType::kInt64:
      return std::hash<int64_t>()(int64());
    case ValueType::kDouble:
      return std::hash<double>()(dbl());
    case ValueType::kString:
      return std::hash<std::string>()(str());
    case ValueType::kBool:
      return std::hash<bool>()(boolean());
  }
  return 0;
}

// Explicit mixing rather than std::hash so the value (and everything built
// on it: StableExprHash, LocalHash, TreeFingerprint, plan-cache keys,
// fault-injection keys) is identical across standard-library
// implementations — the property the golden fingerprint tests pin down.
// Hash() stays std::hash-based because MakeConjunction's canonical conjunct
// order is defined by ExprHash values and must not shift under it.
uint64_t Value::StableHash() const {
  if (is_null_) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(int64()));
    case ValueType::kDouble: {
      // Hash the bit pattern, but keep the guarantee that values comparing
      // equal hash equal: -0.0 == 0.0, so normalize the sign.
      double d = dbl();
      if (d == 0.0) d = 0.0;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits);
    }
    case ValueType::kString:
      return Fnv1a(str());
    case ValueType::kBool:
      return boolean() ? 0x27d4eb2f165667c5ULL : 0x165667b19e3779f9ULL;
  }
  return 0;
}

size_t HashRow(const Row& row) {
  size_t h = 14695981039346656037ULL;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

}  // namespace qtf
