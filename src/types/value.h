#ifndef QTF_TYPES_VALUE_H_
#define QTF_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/check.h"

namespace qtf {

/// Column data types supported by the engine. Dates are stored as int64
/// days-since-epoch at the storage layer, so kInt64 covers them; the enum
/// keeps the SQL-facing distinction for rendering.
enum class ValueType {
  kInt64 = 0,
  kDouble,
  kString,
  kBool,
};

const char* ValueTypeToString(ValueType type);

/// A single (possibly NULL) SQL value. Values are small, copyable and
/// totally ordered (NULL sorts first, cross-type never happens in well-typed
/// plans and is checked).
class Value {
 public:
  /// NULL of the given type.
  static Value Null(ValueType type) { return Value(type); }
  static Value Int64(int64_t v) { return Value(ValueType::kInt64, v); }
  static Value Double(double v) { return Value(ValueType::kDouble, v); }
  static Value String(std::string v) {
    return Value(ValueType::kString, std::move(v));
  }
  static Value Bool(bool v) { return Value(ValueType::kBool, v); }

  Value() : type_(ValueType::kInt64), is_null_(true) {}
  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  ValueType type() const { return type_; }
  bool is_null() const { return is_null_; }

  int64_t int64() const {
    QTF_CHECK(!is_null_ && type_ == ValueType::kInt64);
    return std::get<int64_t>(data_);
  }
  double dbl() const {
    QTF_CHECK(!is_null_ && type_ == ValueType::kDouble);
    return std::get<double>(data_);
  }
  const std::string& str() const {
    QTF_CHECK(!is_null_ && type_ == ValueType::kString);
    return std::get<std::string>(data_);
  }
  bool boolean() const {
    QTF_CHECK(!is_null_ && type_ == ValueType::kBool);
    return std::get<bool>(data_);
  }

  /// Numeric view: int64 or double as double. Used by arithmetic and
  /// aggregate evaluation.
  double AsDouble() const;

  /// Total-order comparison for sorting and result canonicalization:
  /// NULL < any non-NULL; same-type values compare naturally.
  /// Requires both values to have the same type.
  int Compare(const Value& other) const;

  /// SQL literal rendering ("42", "3.5", "'abc'", "NULL", "TRUE").
  std::string ToSqlLiteral() const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash compatible with Compare()==0 equality. Built on std::hash, so
  /// values may differ across standard libraries; in-process use only
  /// (hash tables, ExprHash and the conjunct canonical order it defines).
  size_t Hash() const;

  /// Platform-stable hash compatible with Compare()==0 equality: explicit
  /// mixing, no std::hash. Feeds everything used as a persistent or golden
  /// key — StableExprHash, LogicalOp::LocalHash, TreeFingerprint, the plan
  /// cache — so those values can be pinned in tests (docs/architecture.md).
  uint64_t StableHash() const;

 private:
  explicit Value(ValueType type) : type_(type), is_null_(true) {}
  template <typename T>
  Value(ValueType type, T v)
      : type_(type), is_null_(false), data_(std::move(v)) {}

  ValueType type_;
  bool is_null_;
  std::variant<int64_t, double, std::string, bool> data_;
};

/// A tuple of values; the unit of data flow in the executor.
using Row = std::vector<Value>;

/// Hashes a full row (order-sensitive).
size_t HashRow(const Row& row);

/// Lexicographic row comparison (used to canonicalize result bags).
int CompareRows(const Row& a, const Row& b);

}  // namespace qtf

#endif  // QTF_TYPES_VALUE_H_
