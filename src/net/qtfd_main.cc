// qtfd — the rule-testing framework as a daemon.
//
// One resident RuleTestFramework (warm plan cache, interner, metrics)
// served over the wire.h TCP protocol to any number of concurrent clients.
// SIGTERM/SIGINT trigger a graceful drain: stop accepting, finish every
// admitted request, answer it, exit 0.
//
// Usage:
//   qtfd [--host 127.0.0.1] [--port 7433] [--workers 4] [--threads N]
//        [--queue-depth 128] [--plan-cache 4096] [--tpch-scale 1]
//        [--fault-seed 0] [--default-deadline SECONDS]

#include <csignal>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/server.h"
#include "service/service.h"

namespace {

volatile sig_atomic_t g_stop = 0;

void HandleStopSignal(int /*signum*/) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host IP] [--port N] [--workers N] [--threads N]\n"
      "          [--queue-depth N] [--plan-cache N] [--tpch-scale N]\n"
      "          [--fault-seed N] [--default-deadline SECONDS]\n",
      argv0);
}

bool ParseLong(const char* s, long* out) {
  char* end = nullptr;
  *out = std::strtol(s, &end, 10);
  return end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  qtf::net::ServerConfig server_config;
  server_config.port = 7433;
  qtf::service::RuleTestService::Config service_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = (i + 1 < argc) ? argv[i + 1] : nullptr;
    long n = 0;
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    }
    if (value == nullptr || (arg != "--host" && !ParseLong(value, &n))) {
      std::fprintf(stderr, "qtfd: bad or missing value for %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
    ++i;
    if (arg == "--host") {
      server_config.host = value;
    } else if (arg == "--port") {
      server_config.port = static_cast<uint16_t>(n);
    } else if (arg == "--workers") {
      server_config.workers = static_cast<int>(n);
    } else if (arg == "--threads") {
      service_config.framework.threads = static_cast<int>(n);
    } else if (arg == "--queue-depth") {
      service_config.framework.max_queue_depth = static_cast<size_t>(n);
    } else if (arg == "--plan-cache") {
      service_config.framework.plan_cache_capacity = static_cast<size_t>(n);
    } else if (arg == "--tpch-scale") {
      service_config.framework.tpch.scale = static_cast<int>(n);
    } else if (arg == "--fault-seed") {
      service_config.framework.fault_injector.seed =
          static_cast<uint64_t>(n);
      service_config.framework.fault_injector.fault_probability = 0.05;
    } else if (arg == "--default-deadline") {
      service_config.framework.default_deadline_seconds =
          static_cast<double>(n);
    } else {
      std::fprintf(stderr, "qtfd: unknown flag %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  // A client vanishing mid-write must not kill the daemon (send also
  // passes MSG_NOSIGNAL, but belt and braces).
  std::signal(SIGPIPE, SIG_IGN);

  auto service_or =
      qtf::service::RuleTestService::Create(std::move(service_config));
  if (!service_or.ok()) {
    std::fprintf(stderr, "qtfd: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<qtf::service::RuleTestService> service =
      std::move(service_or).value();

  auto server_or =
      qtf::net::ServiceServer::Start(service.get(), server_config);
  if (!server_or.ok()) {
    std::fprintf(stderr, "qtfd: %s\n", server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<qtf::net::ServiceServer> server =
      std::move(server_or).value();

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);

  // The CI smoke test and scripts wait for this line before connecting;
  // keep its shape stable and flushed.
  std::printf("qtfd listening on %s:%u\n", server_config.host.c_str(),
              static_cast<unsigned>(server->port()));
  std::fflush(stdout);

  while (g_stop == 0) {
    // Sleep in short slices so a stop signal is honored promptly even if
    // it lands between the check and the sleep.
    ::usleep(50 * 1000);
  }

  std::fprintf(stderr, "qtfd: draining...\n");
  server->Shutdown();

  // Optional shutdown metrics dump for CI artifacts.
  if (const char* path = std::getenv("QTF_METRICS_JSON")) {
    if (std::FILE* f = std::fopen(path, "w")) {
      const std::string json = service->metrics()->Snapshot().ToJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
  }
  std::fprintf(stderr, "qtfd: drained, exiting\n");
  return 0;
}
