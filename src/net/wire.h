#ifndef QTF_NET_WIRE_H_
#define QTF_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "service/api.h"

namespace qtf {
namespace net {

/// The qtfd wire protocol: length-prefixed binary frames over a byte
/// stream (docs/serving.md has the full layout). Everything here is pure
/// serialization — no sockets — so the whole protocol is unit- and
/// fuzz-testable in-process (tests/test_wire.cc).
///
/// Frame header, 16 bytes, little-endian:
///
///   offset 0  u32  magic         0x51544657 ("QTFW")
///   offset 4  u8   version       kWireVersion
///   offset 5  u8   type          MessageType
///   offset 6  u16  reserved      must be 0
///   offset 8  u32  request_id    echoed verbatim in the response frame
///   offset 12 u32  payload_bytes length of the payload that follows
///
/// The request id exists for out-of-order completion: a server executing
/// requests on a worker pool writes each response frame as it finishes,
/// tagged with the id of the request it answers, so one connection can
/// have many requests in flight.
inline constexpr uint32_t kFrameMagic = 0x51544657;  // "QTFW"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
/// Upper bound on a frame payload. Anything larger is a protocol error
/// (the connection is closed), which also caps what a hostile peer can
/// make the server buffer.
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;

enum class MessageType : uint8_t {
  /// Error response: payload is {i32 wire status code, string message}.
  kError = 0,
  kGenerateRequest = 1,
  kGenerateResponse = 2,
  kOptimizeRequest = 3,
  kOptimizeResponse = 4,
  kCompressSuiteRequest = 5,
  kCompressSuiteResponse = 6,
  kCorrectnessRequest = 7,
  kCorrectnessResponse = 8,
  kMetricsRequest = 9,
  kMetricsResponse = 10,
  kSqlRequest = 11,
  kSqlResponse = 12,
  kLoadRulesRequest = 13,
  kLoadRulesResponse = 14,
  kListRulesRequest = 15,
  kListRulesResponse = 16,
};
inline constexpr uint8_t kMaxMessageType =
    static_cast<uint8_t>(MessageType::kListRulesResponse);

const char* MessageTypeToString(MessageType type);
bool IsRequestType(MessageType type);
/// The response type answering a given request type (kError aside).
MessageType ResponseTypeFor(MessageType request_type);

/// One complete decoded frame.
struct Frame {
  MessageType type = MessageType::kError;
  uint32_t request_id = 0;
  std::string payload;
};

/// Serializes a complete frame (header + payload).
std::string EncodeFrame(MessageType type, uint32_t request_id,
                        std::string_view payload);

/// Incremental frame extractor for a byte stream. Feed() whatever arrived;
/// Next() yields complete frames. Any malformed header — wrong magic,
/// unknown version or type, nonzero reserved bits, oversized payload —
/// returns kInvalidArgument, after which the stream is unsynchronized and
/// the connection must be closed. Truncation is not an error, just "need
/// more bytes".
class FrameDecoder {
 public:
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// True + *frame filled when a complete frame was extracted; false when
  /// more bytes are needed; kInvalidArgument on a malformed header.
  Result<bool> Next(Frame* frame);

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Append-only payload builder. All integers little-endian; doubles as
/// their IEEE-754 bit pattern; strings and vectors length-prefixed with
/// u32 counts.
class PayloadWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Str(std::string_view v);
  void RuleIds(const std::vector<RuleId>& ids);

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked payload consumer. Reads past the end set the failed
/// flag and return zero values; every Decode* function finishes with
/// Finish(), which demands ok() and full consumption, so truncated,
/// oversized and garbage payloads all surface as kInvalidArgument instead
/// of crashes or silent misparses.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  bool Bool() { return U8() != 0; }
  uint32_t U32();
  uint64_t U64();
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  std::string Str();
  std::vector<RuleId> RuleIds();

  bool ok() const { return !failed_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  /// kInvalidArgument naming `what` unless the payload parsed cleanly and
  /// completely.
  Status Finish(const char* what) const;

 private:
  bool Take(size_t n, const char** out);

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// --- Per-message serialization -------------------------------------------
//
// Encode* are deterministic (same struct -> same bytes); Decode* accept
// exactly what Encode* produce and reject everything else with
// kInvalidArgument. This is what makes "byte-identical across transports"
// testable: the in-process response, encoded, must equal the wire payload.

std::string EncodeGenerateRequest(const service::GenerateRequest& request);
Result<service::GenerateRequest> DecodeGenerateRequest(
    std::string_view payload);
std::string EncodeGenerateResponse(const service::GenerateResponse& response);
Result<service::GenerateResponse> DecodeGenerateResponse(
    std::string_view payload);

std::string EncodeOptimizeRequest(const service::OptimizeRequest& request);
Result<service::OptimizeRequest> DecodeOptimizeRequest(
    std::string_view payload);
std::string EncodeOptimizeResponse(const service::OptimizeResponse& response);
Result<service::OptimizeResponse> DecodeOptimizeResponse(
    std::string_view payload);

std::string EncodeCompressSuiteRequest(
    const service::CompressSuiteRequest& request);
Result<service::CompressSuiteRequest> DecodeCompressSuiteRequest(
    std::string_view payload);
std::string EncodeCompressSuiteResponse(
    const service::CompressSuiteResponse& response);
Result<service::CompressSuiteResponse> DecodeCompressSuiteResponse(
    std::string_view payload);

std::string EncodeCorrectnessRequest(
    const service::CorrectnessRequest& request);
Result<service::CorrectnessRequest> DecodeCorrectnessRequest(
    std::string_view payload);
std::string EncodeCorrectnessResponse(
    const service::CorrectnessResponse& response);
Result<service::CorrectnessResponse> DecodeCorrectnessResponse(
    std::string_view payload);

std::string EncodeSqlRequest(const service::SqlRequest& request);
Result<service::SqlRequest> DecodeSqlRequest(std::string_view payload);
std::string EncodeSqlResponse(const service::SqlResponse& response);
Result<service::SqlResponse> DecodeSqlResponse(std::string_view payload);

std::string EncodeLoadRulesRequest(const service::LoadRulesRequest& request);
Result<service::LoadRulesRequest> DecodeLoadRulesRequest(
    std::string_view payload);
std::string EncodeLoadRulesResponse(
    const service::LoadRulesResponse& response);
Result<service::LoadRulesResponse> DecodeLoadRulesResponse(
    std::string_view payload);

std::string EncodeListRulesRequest(const service::ListRulesRequest& request);
Result<service::ListRulesRequest> DecodeListRulesRequest(
    std::string_view payload);
std::string EncodeListRulesResponse(
    const service::ListRulesResponse& response);
Result<service::ListRulesResponse> DecodeListRulesResponse(
    std::string_view payload);

std::string EncodeMetricsRequest(const service::MetricsRequest& request);
Result<service::MetricsRequest> DecodeMetricsRequest(
    std::string_view payload);
std::string EncodeMetricsResponse(const service::MetricsResponse& response);
Result<service::MetricsResponse> DecodeMetricsResponse(
    std::string_view payload);

/// kError payload: the Status a request failed with, via the frozen
/// StatusCodeToWire numbering (common/status.h).
std::string EncodeError(const Status& status);
/// Reconstructs the error Status carried by a kError payload into *error;
/// the return value is the decode outcome (Result<Status> would be
/// ambiguous — both alternatives are a Status).
Status DecodeError(std::string_view payload, Status* error);

// --- Variant-level dispatch ----------------------------------------------

/// Message type a given request/response variant travels as.
MessageType RequestType(const service::ServiceRequest& request);
MessageType ResponseType(const service::ServiceResponse& response);

std::string EncodeRequest(const service::ServiceRequest& request);
/// Decodes a request payload of the given type; kInvalidArgument for
/// non-request types or malformed payloads.
Result<service::ServiceRequest> DecodeRequest(MessageType type,
                                              std::string_view payload);
std::string EncodeResponse(const service::ServiceResponse& response);
Result<service::ServiceResponse> DecodeResponse(MessageType type,
                                                std::string_view payload);

}  // namespace net
}  // namespace qtf

#endif  // QTF_NET_WIRE_H_
