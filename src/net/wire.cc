#include "net/wire.h"

#include <cstring>

#include "common/check.h"
#include "common/status.h"

namespace qtf {
namespace net {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

uint32_t ReadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24);
}

}  // namespace

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kError:
      return "error";
    case MessageType::kGenerateRequest:
      return "generate_request";
    case MessageType::kGenerateResponse:
      return "generate_response";
    case MessageType::kOptimizeRequest:
      return "optimize_request";
    case MessageType::kOptimizeResponse:
      return "optimize_response";
    case MessageType::kCompressSuiteRequest:
      return "compress_suite_request";
    case MessageType::kCompressSuiteResponse:
      return "compress_suite_response";
    case MessageType::kCorrectnessRequest:
      return "correctness_request";
    case MessageType::kCorrectnessResponse:
      return "correctness_response";
    case MessageType::kMetricsRequest:
      return "metrics_request";
    case MessageType::kMetricsResponse:
      return "metrics_response";
    case MessageType::kSqlRequest:
      return "sql_request";
    case MessageType::kSqlResponse:
      return "sql_response";
    case MessageType::kLoadRulesRequest:
      return "load_rules_request";
    case MessageType::kLoadRulesResponse:
      return "load_rules_response";
    case MessageType::kListRulesRequest:
      return "list_rules_request";
    case MessageType::kListRulesResponse:
      return "list_rules_response";
  }
  return "unknown";
}

bool IsRequestType(MessageType type) {
  switch (type) {
    case MessageType::kGenerateRequest:
    case MessageType::kOptimizeRequest:
    case MessageType::kCompressSuiteRequest:
    case MessageType::kCorrectnessRequest:
    case MessageType::kMetricsRequest:
    case MessageType::kSqlRequest:
    case MessageType::kLoadRulesRequest:
    case MessageType::kListRulesRequest:
      return true;
    default:
      return false;
  }
}

MessageType ResponseTypeFor(MessageType request_type) {
  // Request/response pairs are adjacent in the numbering: response = req + 1.
  QTF_CHECK(IsRequestType(request_type));
  return static_cast<MessageType>(static_cast<uint8_t>(request_type) + 1);
}

std::string EncodeFrame(MessageType type, uint32_t request_id,
                        std::string_view payload) {
  QTF_CHECK(payload.size() <= kMaxPayloadBytes);
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendU32(&out, kFrameMagic);
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  out.push_back(0);  // reserved
  out.push_back(0);
  AppendU32(&out, request_id);
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

Result<bool> FrameDecoder::Next(Frame* frame) {
  if (buffer_.size() < kFrameHeaderBytes) return false;
  const char* p = buffer_.data();
  const uint32_t magic = ReadU32(p);
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("wire: bad frame magic");
  }
  const uint8_t version = static_cast<uint8_t>(p[4]);
  if (version != kWireVersion) {
    return Status::InvalidArgument("wire: unsupported protocol version " +
                                   std::to_string(version));
  }
  const uint8_t type = static_cast<uint8_t>(p[5]);
  if (type > kMaxMessageType) {
    return Status::InvalidArgument("wire: unknown message type " +
                                   std::to_string(type));
  }
  if (p[6] != 0 || p[7] != 0) {
    return Status::InvalidArgument("wire: nonzero reserved header bits");
  }
  const uint32_t payload_bytes = ReadU32(p + 12);
  if (payload_bytes > kMaxPayloadBytes) {
    return Status::InvalidArgument("wire: payload of " +
                                   std::to_string(payload_bytes) +
                                   " bytes exceeds frame limit");
  }
  if (buffer_.size() < kFrameHeaderBytes + payload_bytes) return false;
  frame->type = static_cast<MessageType>(type);
  frame->request_id = ReadU32(p + 8);
  frame->payload.assign(buffer_, kFrameHeaderBytes, payload_bytes);
  buffer_.erase(0, kFrameHeaderBytes + payload_bytes);
  return true;
}

// --- PayloadWriter / PayloadReader ---------------------------------------

void PayloadWriter::U32(uint32_t v) { AppendU32(&out_, v); }

void PayloadWriter::U64(uint64_t v) {
  U32(static_cast<uint32_t>(v & 0xffffffffu));
  U32(static_cast<uint32_t>(v >> 32));
}

void PayloadWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void PayloadWriter::Str(std::string_view v) {
  U32(static_cast<uint32_t>(v.size()));
  out_.append(v);
}

void PayloadWriter::RuleIds(const std::vector<RuleId>& ids) {
  U32(static_cast<uint32_t>(ids.size()));
  for (RuleId id : ids) I32(static_cast<int32_t>(id));
}

bool PayloadReader::Take(size_t n, const char** out) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

uint8_t PayloadReader::U8() {
  const char* p;
  if (!Take(1, &p)) return 0;
  return static_cast<uint8_t>(*p);
}

uint32_t PayloadReader::U32() {
  const char* p;
  if (!Take(4, &p)) return 0;
  return ReadU32(p);
}

uint64_t PayloadReader::U64() {
  const uint64_t lo = U32();
  const uint64_t hi = U32();
  return lo | (hi << 32);
}

double PayloadReader::F64() {
  const uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string PayloadReader::Str() {
  const uint32_t n = U32();
  // Length validated against the bytes actually present: a garbage count
  // fails the read instead of triggering a giant allocation.
  const char* p;
  if (!Take(n, &p)) return std::string();
  return std::string(p, n);
}

std::vector<RuleId> PayloadReader::RuleIds() {
  const uint32_t n = U32();
  if (failed_ || remaining() / 4 < n) {
    failed_ = true;
    return {};
  }
  std::vector<RuleId> ids;
  ids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) ids.push_back(static_cast<RuleId>(I32()));
  return ids;
}

Status PayloadReader::Finish(const char* what) const {
  if (!failed_ && AtEnd()) return Status::OK();
  return Status::InvalidArgument(
      std::string("wire: malformed ") + what + " payload" +
      (failed_ ? " (truncated)" : " (trailing bytes)"));
}

// --- Request options ------------------------------------------------------

namespace {

void WriteOptions(PayloadWriter* w, const service::RequestOptions& options) {
  // `cancel` deliberately does not travel: remote cancellation is closing
  // the connection.
  w->F64(options.budget.wall_seconds);
  w->I32(options.budget.max_memo_groups);
  w->I64(options.budget.max_memo_exprs);
  w->F64(options.deadline_seconds);
}

void ReadOptions(PayloadReader* r, service::RequestOptions* options) {
  options->budget.wall_seconds = r->F64();
  options->budget.max_memo_groups = r->I32();
  options->budget.max_memo_exprs = r->I64();
  options->deadline_seconds = r->F64();
}

void WriteSuiteSpec(PayloadWriter* w, const service::SuiteSpec& spec) {
  w->I32(spec.n_rules);
  w->Bool(spec.pairs);
  w->I32(spec.k);
  w->U8(static_cast<uint8_t>(spec.method));
  w->I32(spec.max_trials);
  w->I32(spec.extra_ops);
  w->U64(spec.seed);
}

Status ReadSuiteSpec(PayloadReader* r, service::SuiteSpec* spec) {
  spec->n_rules = r->I32();
  spec->pairs = r->Bool();
  spec->k = r->I32();
  const uint8_t method = r->U8();
  if (r->ok() && method > static_cast<uint8_t>(GenerationMethod::kPattern)) {
    return Status::InvalidArgument("wire: unknown generation method " +
                                   std::to_string(method));
  }
  spec->method = static_cast<GenerationMethod>(method);
  spec->max_trials = r->I32();
  spec->extra_ops = r->I32();
  spec->seed = r->U64();
  return Status::OK();
}

Result<service::CompressionAlgorithm> ReadAlgorithm(PayloadReader* r) {
  const uint8_t algorithm = r->U8();
  if (r->ok() &&
      algorithm >
          static_cast<uint8_t>(
              service::CompressionAlgorithm::kNoSharingMatching)) {
    return Status::InvalidArgument("wire: unknown compression algorithm " +
                                   std::to_string(algorithm));
  }
  return static_cast<service::CompressionAlgorithm>(algorithm);
}

}  // namespace

// --- Generate -------------------------------------------------------------

std::string EncodeGenerateRequest(const service::GenerateRequest& request) {
  PayloadWriter w;
  w.RuleIds(request.targets);
  w.U8(static_cast<uint8_t>(request.method));
  w.I32(request.max_trials);
  w.I32(request.extra_ops);
  w.U64(request.seed);
  w.Bool(request.require_relevant);
  WriteOptions(&w, request.options);
  return w.Take();
}

Result<service::GenerateRequest> DecodeGenerateRequest(
    std::string_view payload) {
  PayloadReader r(payload);
  service::GenerateRequest request;
  request.targets = r.RuleIds();
  const uint8_t method = r.U8();
  if (r.ok() && method > static_cast<uint8_t>(GenerationMethod::kPattern)) {
    return Status::InvalidArgument("wire: unknown generation method " +
                                   std::to_string(method));
  }
  request.method = static_cast<GenerationMethod>(method);
  request.max_trials = r.I32();
  request.extra_ops = r.I32();
  request.seed = r.U64();
  request.require_relevant = r.Bool();
  ReadOptions(&r, &request.options);
  QTF_RETURN_NOT_OK(r.Finish("generate request"));
  return request;
}

std::string EncodeGenerateResponse(const service::GenerateResponse& response) {
  PayloadWriter w;
  w.Bool(response.success);
  w.Str(response.sql);
  w.RuleIds(response.rule_set);
  w.F64(response.cost);
  w.I32(response.operator_count);
  w.I32(response.trials);
  return w.Take();
}

Result<service::GenerateResponse> DecodeGenerateResponse(
    std::string_view payload) {
  PayloadReader r(payload);
  service::GenerateResponse response;
  response.success = r.Bool();
  response.sql = r.Str();
  response.rule_set = r.RuleIds();
  response.cost = r.F64();
  response.operator_count = r.I32();
  response.trials = r.I32();
  QTF_RETURN_NOT_OK(r.Finish("generate response"));
  return response;
}

// --- Optimize -------------------------------------------------------------

std::string EncodeOptimizeRequest(const service::OptimizeRequest& request) {
  PayloadWriter w;
  w.U64(request.seed);
  w.I32(request.min_ops);
  w.I32(request.max_ops);
  w.RuleIds(request.disabled_rules);
  WriteOptions(&w, request.options);
  return w.Take();
}

Result<service::OptimizeRequest> DecodeOptimizeRequest(
    std::string_view payload) {
  PayloadReader r(payload);
  service::OptimizeRequest request;
  request.seed = r.U64();
  request.min_ops = r.I32();
  request.max_ops = r.I32();
  request.disabled_rules = r.RuleIds();
  ReadOptions(&r, &request.options);
  QTF_RETURN_NOT_OK(r.Finish("optimize request"));
  return request;
}

std::string EncodeOptimizeResponse(const service::OptimizeResponse& response) {
  PayloadWriter w;
  w.Str(response.sql);
  w.F64(response.cost);
  w.RuleIds(response.exercised_rules);
  w.I32(response.group_count);
  w.I64(response.expr_count);
  w.Bool(response.budget_exhausted);
  return w.Take();
}

Result<service::OptimizeResponse> DecodeOptimizeResponse(
    std::string_view payload) {
  PayloadReader r(payload);
  service::OptimizeResponse response;
  response.sql = r.Str();
  response.cost = r.F64();
  response.exercised_rules = r.RuleIds();
  response.group_count = r.I32();
  response.expr_count = r.I64();
  response.budget_exhausted = r.Bool();
  QTF_RETURN_NOT_OK(r.Finish("optimize response"));
  return response;
}

// --- CompressSuite --------------------------------------------------------

std::string EncodeCompressSuiteRequest(
    const service::CompressSuiteRequest& request) {
  PayloadWriter w;
  WriteSuiteSpec(&w, request.suite);
  w.U8(static_cast<uint8_t>(request.algorithm));
  w.Bool(request.exploit_monotonicity);
  WriteOptions(&w, request.options);
  return w.Take();
}

Result<service::CompressSuiteRequest> DecodeCompressSuiteRequest(
    std::string_view payload) {
  PayloadReader r(payload);
  service::CompressSuiteRequest request;
  QTF_RETURN_NOT_OK(ReadSuiteSpec(&r, &request.suite));
  QTF_ASSIGN_OR_RETURN(request.algorithm, ReadAlgorithm(&r));
  request.exploit_monotonicity = r.Bool();
  ReadOptions(&r, &request.options);
  QTF_RETURN_NOT_OK(r.Finish("compress suite request"));
  return request;
}

std::string EncodeCompressSuiteResponse(
    const service::CompressSuiteResponse& response) {
  PayloadWriter w;
  w.I32(response.suite_queries);
  w.U32(static_cast<uint32_t>(response.assignment.size()));
  for (const std::vector<int32_t>& queries : response.assignment) {
    w.U32(static_cast<uint32_t>(queries.size()));
    for (int32_t q : queries) w.I32(q);
  }
  w.F64(response.total_cost);
  w.I64(response.optimizer_calls);
  w.I32(response.degraded_targets);
  w.I32(response.estimated_edges);
  return w.Take();
}

Result<service::CompressSuiteResponse> DecodeCompressSuiteResponse(
    std::string_view payload) {
  PayloadReader r(payload);
  service::CompressSuiteResponse response;
  response.suite_queries = r.I32();
  const uint32_t targets = r.U32();
  // Each target costs at least a 4-byte count; cap against remaining bytes
  // so a garbage count cannot drive a huge reserve/loop.
  if (!r.ok() || r.remaining() / 4 < targets) {
    return Status::InvalidArgument(
        "wire: malformed compress suite response payload (truncated)");
  }
  response.assignment.reserve(targets);
  for (uint32_t t = 0; t < targets; ++t) {
    const uint32_t count = r.U32();
    if (!r.ok() || r.remaining() / 4 < count) {
      return Status::InvalidArgument(
          "wire: malformed compress suite response payload (truncated)");
    }
    std::vector<int32_t> queries;
    queries.reserve(count);
    for (uint32_t i = 0; i < count; ++i) queries.push_back(r.I32());
    response.assignment.push_back(std::move(queries));
  }
  response.total_cost = r.F64();
  response.optimizer_calls = r.I64();
  response.degraded_targets = r.I32();
  response.estimated_edges = r.I32();
  QTF_RETURN_NOT_OK(r.Finish("compress suite response"));
  return response;
}

// --- Correctness ----------------------------------------------------------

std::string EncodeCorrectnessRequest(
    const service::CorrectnessRequest& request) {
  PayloadWriter w;
  WriteSuiteSpec(&w, request.suite);
  w.U8(static_cast<uint8_t>(request.algorithm));
  w.Bool(request.exploit_monotonicity);
  WriteOptions(&w, request.options);
  return w.Take();
}

Result<service::CorrectnessRequest> DecodeCorrectnessRequest(
    std::string_view payload) {
  PayloadReader r(payload);
  service::CorrectnessRequest request;
  QTF_RETURN_NOT_OK(ReadSuiteSpec(&r, &request.suite));
  QTF_ASSIGN_OR_RETURN(request.algorithm, ReadAlgorithm(&r));
  request.exploit_monotonicity = r.Bool();
  ReadOptions(&r, &request.options);
  QTF_RETURN_NOT_OK(r.Finish("correctness request"));
  return request;
}

std::string EncodeCorrectnessResponse(
    const service::CorrectnessResponse& response) {
  PayloadWriter w;
  w.I32(response.plans_executed);
  w.I32(response.skipped_identical_plans);
  w.I32(response.skipped_unavailable);
  w.U32(static_cast<uint32_t>(response.violations.size()));
  for (const service::ViolationSummary& v : response.violations) {
    w.I32(v.target);
    w.I32(v.query);
    w.Str(v.target_name);
    w.Str(v.sql);
    w.I64(v.base_rows);
    w.I64(v.restricted_rows);
  }
  return w.Take();
}

Result<service::CorrectnessResponse> DecodeCorrectnessResponse(
    std::string_view payload) {
  PayloadReader r(payload);
  service::CorrectnessResponse response;
  response.plans_executed = r.I32();
  response.skipped_identical_plans = r.I32();
  response.skipped_unavailable = r.I32();
  const uint32_t violations = r.U32();
  // A violation is at least 32 bytes on the wire; bound the count by that.
  if (!r.ok() || r.remaining() / 32 < violations) {
    return Status::InvalidArgument(
        "wire: malformed correctness response payload (truncated)");
  }
  response.violations.reserve(violations);
  for (uint32_t i = 0; i < violations; ++i) {
    service::ViolationSummary v;
    v.target = r.I32();
    v.query = r.I32();
    v.target_name = r.Str();
    v.sql = r.Str();
    v.base_rows = r.I64();
    v.restricted_rows = r.I64();
    response.violations.push_back(std::move(v));
  }
  QTF_RETURN_NOT_OK(r.Finish("correctness response"));
  return response;
}

// --- Sql ------------------------------------------------------------------

std::string EncodeSqlRequest(const service::SqlRequest& request) {
  PayloadWriter w;
  w.Str(request.sql);
  w.U8(static_cast<uint8_t>(request.mode));
  WriteOptions(&w, request.options);
  return w.Take();
}

Result<service::SqlRequest> DecodeSqlRequest(std::string_view payload) {
  PayloadReader r(payload);
  service::SqlRequest request;
  request.sql = r.Str();
  const uint8_t mode = r.U8();
  if (r.ok() && mode > static_cast<uint8_t>(service::SqlMode::kCorrectness)) {
    return Status::InvalidArgument("wire: unknown sql mode " +
                                   std::to_string(mode));
  }
  request.mode = static_cast<service::SqlMode>(mode);
  ReadOptions(&r, &request.options);
  QTF_RETURN_NOT_OK(r.Finish("sql request"));
  return request;
}

std::string EncodeSqlResponse(const service::SqlResponse& response) {
  PayloadWriter w;
  w.U64(response.fingerprint);
  w.Str(response.canonical_sql);
  w.I32(response.operator_count);
  w.F64(response.cost);
  w.RuleIds(response.exercised_rules);
  w.I32(response.group_count);
  w.I64(response.expr_count);
  w.Bool(response.budget_exhausted);
  w.I32(response.plans_executed);
  w.I32(response.skipped_identical_plans);
  w.I32(response.skipped_unavailable);
  w.U32(static_cast<uint32_t>(response.violations.size()));
  for (const service::ViolationSummary& v : response.violations) {
    w.I32(v.target);
    w.I32(v.query);
    w.Str(v.target_name);
    w.Str(v.sql);
    w.I64(v.base_rows);
    w.I64(v.restricted_rows);
  }
  return w.Take();
}

Result<service::SqlResponse> DecodeSqlResponse(std::string_view payload) {
  PayloadReader r(payload);
  service::SqlResponse response;
  response.fingerprint = r.U64();
  response.canonical_sql = r.Str();
  response.operator_count = r.I32();
  response.cost = r.F64();
  response.exercised_rules = r.RuleIds();
  response.group_count = r.I32();
  response.expr_count = r.I64();
  response.budget_exhausted = r.Bool();
  response.plans_executed = r.I32();
  response.skipped_identical_plans = r.I32();
  response.skipped_unavailable = r.I32();
  const uint32_t violations = r.U32();
  // A violation is at least 32 bytes on the wire; bound the count by that.
  if (!r.ok() || r.remaining() / 32 < violations) {
    return Status::InvalidArgument(
        "wire: malformed sql response payload (truncated)");
  }
  response.violations.reserve(violations);
  for (uint32_t i = 0; i < violations; ++i) {
    service::ViolationSummary v;
    v.target = r.I32();
    v.query = r.I32();
    v.target_name = r.Str();
    v.sql = r.Str();
    v.base_rows = r.I64();
    v.restricted_rows = r.I64();
    response.violations.push_back(std::move(v));
  }
  QTF_RETURN_NOT_OK(r.Finish("sql response"));
  return response;
}

// --- LoadRules / ListRules ------------------------------------------------

std::string EncodeLoadRulesRequest(const service::LoadRulesRequest& request) {
  PayloadWriter w;
  w.Str(request.text);
  w.Bool(request.dry_run);
  WriteOptions(&w, request.options);
  return w.Take();
}

Result<service::LoadRulesRequest> DecodeLoadRulesRequest(
    std::string_view payload) {
  PayloadReader r(payload);
  service::LoadRulesRequest request;
  request.text = r.Str();
  request.dry_run = r.Bool();
  ReadOptions(&r, &request.options);
  QTF_RETURN_NOT_OK(r.Finish("load rules request"));
  return request;
}

std::string EncodeLoadRulesResponse(
    const service::LoadRulesResponse& response) {
  PayloadWriter w;
  w.RuleIds(response.ids);
  w.U32(static_cast<uint32_t>(response.names.size()));
  for (const std::string& name : response.names) w.Str(name);
  w.I32(response.compiled);
  return w.Take();
}

Result<service::LoadRulesResponse> DecodeLoadRulesResponse(
    std::string_view payload) {
  PayloadReader r(payload);
  service::LoadRulesResponse response;
  response.ids = r.RuleIds();
  const uint32_t names = r.U32();
  // Each name costs at least its 4-byte length prefix; cap the count by
  // the bytes actually present.
  if (!r.ok() || r.remaining() / 4 < names) {
    return Status::InvalidArgument(
        "wire: malformed load rules response payload (truncated)");
  }
  response.names.reserve(names);
  for (uint32_t i = 0; i < names; ++i) response.names.push_back(r.Str());
  response.compiled = r.I32();
  QTF_RETURN_NOT_OK(r.Finish("load rules response"));
  return response;
}

std::string EncodeListRulesRequest(const service::ListRulesRequest& request) {
  (void)request;
  return std::string();
}

Result<service::ListRulesRequest> DecodeListRulesRequest(
    std::string_view payload) {
  PayloadReader r(payload);
  service::ListRulesRequest request;
  QTF_RETURN_NOT_OK(r.Finish("list rules request"));
  return request;
}

std::string EncodeListRulesResponse(
    const service::ListRulesResponse& response) {
  PayloadWriter w;
  w.U32(static_cast<uint32_t>(response.rules.size()));
  for (const service::RuleInfo& rule : response.rules) {
    w.I32(rule.id);
    w.Str(rule.name);
    w.U8(rule.type);
    w.Str(rule.pattern);
    w.U8(rule.origin);
  }
  return w.Take();
}

Result<service::ListRulesResponse> DecodeListRulesResponse(
    std::string_view payload) {
  PayloadReader r(payload);
  service::ListRulesResponse response;
  const uint32_t count = r.U32();
  // A rule row is at least 14 bytes (id + two length prefixes + two
  // bytes); bound the count so garbage cannot drive a huge reserve.
  if (!r.ok() || r.remaining() / 14 < count) {
    return Status::InvalidArgument(
        "wire: malformed list rules response payload (truncated)");
  }
  response.rules.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    service::RuleInfo rule;
    rule.id = static_cast<RuleId>(r.I32());
    rule.name = r.Str();
    rule.type = r.U8();
    rule.pattern = r.Str();
    rule.origin = r.U8();
    response.rules.push_back(std::move(rule));
  }
  QTF_RETURN_NOT_OK(r.Finish("list rules response"));
  return response;
}

// --- Metrics --------------------------------------------------------------

std::string EncodeMetricsRequest(const service::MetricsRequest& request) {
  PayloadWriter w;
  w.Bool(request.text);
  return w.Take();
}

Result<service::MetricsRequest> DecodeMetricsRequest(
    std::string_view payload) {
  PayloadReader r(payload);
  service::MetricsRequest request;
  request.text = r.Bool();
  QTF_RETURN_NOT_OK(r.Finish("metrics request"));
  return request;
}

std::string EncodeMetricsResponse(const service::MetricsResponse& response) {
  PayloadWriter w;
  w.Str(response.body);
  return w.Take();
}

Result<service::MetricsResponse> DecodeMetricsResponse(
    std::string_view payload) {
  PayloadReader r(payload);
  service::MetricsResponse response;
  response.body = r.Str();
  QTF_RETURN_NOT_OK(r.Finish("metrics response"));
  return response;
}

// --- Error ----------------------------------------------------------------

std::string EncodeError(const Status& status) {
  PayloadWriter w;
  w.I32(StatusCodeToWire(status.code()));
  w.Str(status.message());
  return w.Take();
}

Status DecodeError(std::string_view payload, Status* error) {
  PayloadReader r(payload);
  const StatusCode code = StatusCodeFromWire(r.I32());
  std::string message = r.Str();
  QTF_RETURN_NOT_OK(r.Finish("error"));
  *error = Status(code, std::move(message));
  return Status::OK();
}

// --- Variant-level dispatch ----------------------------------------------

MessageType RequestType(const service::ServiceRequest& request) {
  struct Visitor {
    MessageType operator()(const service::GenerateRequest&) const {
      return MessageType::kGenerateRequest;
    }
    MessageType operator()(const service::OptimizeRequest&) const {
      return MessageType::kOptimizeRequest;
    }
    MessageType operator()(const service::CompressSuiteRequest&) const {
      return MessageType::kCompressSuiteRequest;
    }
    MessageType operator()(const service::CorrectnessRequest&) const {
      return MessageType::kCorrectnessRequest;
    }
    MessageType operator()(const service::SqlRequest&) const {
      return MessageType::kSqlRequest;
    }
    MessageType operator()(const service::LoadRulesRequest&) const {
      return MessageType::kLoadRulesRequest;
    }
    MessageType operator()(const service::ListRulesRequest&) const {
      return MessageType::kListRulesRequest;
    }
    MessageType operator()(const service::MetricsRequest&) const {
      return MessageType::kMetricsRequest;
    }
  };
  return std::visit(Visitor{}, request);
}

MessageType ResponseType(const service::ServiceResponse& response) {
  struct Visitor {
    MessageType operator()(const service::GenerateResponse&) const {
      return MessageType::kGenerateResponse;
    }
    MessageType operator()(const service::OptimizeResponse&) const {
      return MessageType::kOptimizeResponse;
    }
    MessageType operator()(const service::CompressSuiteResponse&) const {
      return MessageType::kCompressSuiteResponse;
    }
    MessageType operator()(const service::CorrectnessResponse&) const {
      return MessageType::kCorrectnessResponse;
    }
    MessageType operator()(const service::SqlResponse&) const {
      return MessageType::kSqlResponse;
    }
    MessageType operator()(const service::LoadRulesResponse&) const {
      return MessageType::kLoadRulesResponse;
    }
    MessageType operator()(const service::ListRulesResponse&) const {
      return MessageType::kListRulesResponse;
    }
    MessageType operator()(const service::MetricsResponse&) const {
      return MessageType::kMetricsResponse;
    }
  };
  return std::visit(Visitor{}, response);
}

std::string EncodeRequest(const service::ServiceRequest& request) {
  struct Visitor {
    std::string operator()(const service::GenerateRequest& r) const {
      return EncodeGenerateRequest(r);
    }
    std::string operator()(const service::OptimizeRequest& r) const {
      return EncodeOptimizeRequest(r);
    }
    std::string operator()(const service::CompressSuiteRequest& r) const {
      return EncodeCompressSuiteRequest(r);
    }
    std::string operator()(const service::CorrectnessRequest& r) const {
      return EncodeCorrectnessRequest(r);
    }
    std::string operator()(const service::SqlRequest& r) const {
      return EncodeSqlRequest(r);
    }
    std::string operator()(const service::LoadRulesRequest& r) const {
      return EncodeLoadRulesRequest(r);
    }
    std::string operator()(const service::ListRulesRequest& r) const {
      return EncodeListRulesRequest(r);
    }
    std::string operator()(const service::MetricsRequest& r) const {
      return EncodeMetricsRequest(r);
    }
  };
  return std::visit(Visitor{}, request);
}

Result<service::ServiceRequest> DecodeRequest(MessageType type,
                                              std::string_view payload) {
  switch (type) {
    case MessageType::kGenerateRequest: {
      QTF_ASSIGN_OR_RETURN(service::GenerateRequest r,
                           DecodeGenerateRequest(payload));
      return service::ServiceRequest(std::move(r));
    }
    case MessageType::kOptimizeRequest: {
      QTF_ASSIGN_OR_RETURN(service::OptimizeRequest r,
                           DecodeOptimizeRequest(payload));
      return service::ServiceRequest(std::move(r));
    }
    case MessageType::kCompressSuiteRequest: {
      QTF_ASSIGN_OR_RETURN(service::CompressSuiteRequest r,
                           DecodeCompressSuiteRequest(payload));
      return service::ServiceRequest(std::move(r));
    }
    case MessageType::kCorrectnessRequest: {
      QTF_ASSIGN_OR_RETURN(service::CorrectnessRequest r,
                           DecodeCorrectnessRequest(payload));
      return service::ServiceRequest(std::move(r));
    }
    case MessageType::kSqlRequest: {
      QTF_ASSIGN_OR_RETURN(service::SqlRequest r, DecodeSqlRequest(payload));
      return service::ServiceRequest(std::move(r));
    }
    case MessageType::kLoadRulesRequest: {
      QTF_ASSIGN_OR_RETURN(service::LoadRulesRequest r,
                           DecodeLoadRulesRequest(payload));
      return service::ServiceRequest(std::move(r));
    }
    case MessageType::kListRulesRequest: {
      QTF_ASSIGN_OR_RETURN(service::ListRulesRequest r,
                           DecodeListRulesRequest(payload));
      return service::ServiceRequest(std::move(r));
    }
    case MessageType::kMetricsRequest: {
      QTF_ASSIGN_OR_RETURN(service::MetricsRequest r,
                           DecodeMetricsRequest(payload));
      return service::ServiceRequest(std::move(r));
    }
    default:
      return Status::InvalidArgument(
          std::string("wire: not a request message type: ") +
          MessageTypeToString(type));
  }
}

std::string EncodeResponse(const service::ServiceResponse& response) {
  struct Visitor {
    std::string operator()(const service::GenerateResponse& r) const {
      return EncodeGenerateResponse(r);
    }
    std::string operator()(const service::OptimizeResponse& r) const {
      return EncodeOptimizeResponse(r);
    }
    std::string operator()(const service::CompressSuiteResponse& r) const {
      return EncodeCompressSuiteResponse(r);
    }
    std::string operator()(const service::CorrectnessResponse& r) const {
      return EncodeCorrectnessResponse(r);
    }
    std::string operator()(const service::SqlResponse& r) const {
      return EncodeSqlResponse(r);
    }
    std::string operator()(const service::LoadRulesResponse& r) const {
      return EncodeLoadRulesResponse(r);
    }
    std::string operator()(const service::ListRulesResponse& r) const {
      return EncodeListRulesResponse(r);
    }
    std::string operator()(const service::MetricsResponse& r) const {
      return EncodeMetricsResponse(r);
    }
  };
  return std::visit(Visitor{}, response);
}

Result<service::ServiceResponse> DecodeResponse(MessageType type,
                                                std::string_view payload) {
  switch (type) {
    case MessageType::kGenerateResponse: {
      QTF_ASSIGN_OR_RETURN(service::GenerateResponse r,
                           DecodeGenerateResponse(payload));
      return service::ServiceResponse(std::move(r));
    }
    case MessageType::kOptimizeResponse: {
      QTF_ASSIGN_OR_RETURN(service::OptimizeResponse r,
                           DecodeOptimizeResponse(payload));
      return service::ServiceResponse(std::move(r));
    }
    case MessageType::kCompressSuiteResponse: {
      QTF_ASSIGN_OR_RETURN(service::CompressSuiteResponse r,
                           DecodeCompressSuiteResponse(payload));
      return service::ServiceResponse(std::move(r));
    }
    case MessageType::kCorrectnessResponse: {
      QTF_ASSIGN_OR_RETURN(service::CorrectnessResponse r,
                           DecodeCorrectnessResponse(payload));
      return service::ServiceResponse(std::move(r));
    }
    case MessageType::kSqlResponse: {
      QTF_ASSIGN_OR_RETURN(service::SqlResponse r, DecodeSqlResponse(payload));
      return service::ServiceResponse(std::move(r));
    }
    case MessageType::kLoadRulesResponse: {
      QTF_ASSIGN_OR_RETURN(service::LoadRulesResponse r,
                           DecodeLoadRulesResponse(payload));
      return service::ServiceResponse(std::move(r));
    }
    case MessageType::kListRulesResponse: {
      QTF_ASSIGN_OR_RETURN(service::ListRulesResponse r,
                           DecodeListRulesResponse(payload));
      return service::ServiceResponse(std::move(r));
    }
    case MessageType::kMetricsResponse: {
      QTF_ASSIGN_OR_RETURN(service::MetricsResponse r,
                           DecodeMetricsResponse(payload));
      return service::ServiceResponse(std::move(r));
    }
    default:
      return Status::InvalidArgument(
          std::string("wire: not a response message type: ") +
          MessageTypeToString(type));
  }
}

}  // namespace net
}  // namespace qtf
