#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace qtf {
namespace net {

namespace {

// Linux always has MSG_NOSIGNAL; the fallback keeps the file portable to
// platforms that suppress SIGPIPE differently (qtfd_main ignores SIGPIPE
// process-wide as well).
#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<ServiceServer>> ServiceServer::Start(
    service::RuleTestService* service, ServerConfig config) {
  QTF_CHECK(service != nullptr);
  if (config.workers < 1) {
    return Status::InvalidArgument("ServerConfig::workers must be >= 1, got " +
                                   std::to_string(config.workers));
  }
  std::unique_ptr<ServiceServer> server(
      new ServiceServer(service, std::move(config)));
  QTF_RETURN_NOT_OK(server->Bind());
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

ServiceServer::ServiceServer(service::RuleTestService* service,
                             ServerConfig config)
    : service_(service), config_(std::move(config)) {
  // Queue sized so every admitted request fits without Submit() ever
  // blocking a session reader: the admission gate bounds in-flight
  // requests at max_queue_depth before anything is enqueued.
  const size_t queue_capacity = service_->limits().max_queue_depth +
                                static_cast<size_t>(config_.workers) + 8;
  pool_ = std::make_unique<ThreadPool>(config_.workers, queue_capacity);
  obs::MetricsRegistry* metrics = service_->metrics();
  active_sessions_ = metrics->gauge("qtf.service.active_sessions");
  sessions_total_ = metrics->counter("qtf.service.sessions_total");
  bad_frames_ = metrics->counter("qtf.service.bad_frames");
  bytes_in_ = metrics->counter("qtf.service.bytes_in");
  bytes_out_ = metrics->counter("qtf.service.bytes_out");
}

ServiceServer::~ServiceServer() { Shutdown(); }

Status ServiceServer::Bind() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  listen_fd_.store(fd);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket(): ") +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("ServerConfig::host must be a numeric "
                                   "IPv4 address, got \"" +
                                   config_.host + "\"");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Status::Unavailable("bind(" + config_.host + ":" +
                               std::to_string(config_.port) +
                               "): " + std::strerror(errno));
  }
  if (::listen(fd, 64) < 0) {
    return Status::Unavailable(std::string("listen(): ") +
                               std::strerror(errno));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) <
      0) {
    return Status::Unavailable(std::string("getsockname(): ") +
                               std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void ServiceServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Shutdown() closed the listening socket (or it genuinely broke);
      // either way the accept loop is done.
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto session = std::make_shared<Session>();
    session->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      sessions_.push_back(session);
      sessions_total_->Increment();
      active_sessions_->Add(1);
      session_threads_.emplace_back(
          [this, session] { ServeConnection(session); });
    }
  }
}

void ServiceServer::ServeConnection(std::shared_ptr<Session> session) {
  FrameDecoder decoder;
  char buf[64 * 1024];
  bool protocol_error = false;

  while (!protocol_error) {
    const ssize_t n = ::recv(session->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, connection error, or SHUT_RD drain
    bytes_in_->Increment(n);
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));

    for (;;) {
      Frame frame;
      Result<bool> got = decoder.Next(&frame);
      if (!got.ok()) {
        // Unsynchronized stream: count it and drop the connection. Frames
        // already extracted were already dispatched.
        bad_frames_->Increment();
        protocol_error = true;
        break;
      }
      if (!got.value()) break;
      if (!IsRequestType(frame.type)) {
        bad_frames_->Increment();
        protocol_error = true;
        break;
      }

      if (frame.type == MessageType::kMetricsRequest) {
        // Inline on the reader, no admission: metrics must stay readable
        // exactly when the gate is shedding everything else.
        HandleFrame(session, std::move(frame));
        continue;
      }

      service::AdmissionGate::Ticket ticket =
          service_->admission()->TryEnter();
      if (!ticket) {
        WriteFrame(session, MessageType::kError, frame.request_id,
                   EncodeError(Status::ResourceExhausted(
                       "admission queue full (" +
                       std::to_string(service_->admission()->max_depth()) +
                       " requests in flight); retry with backoff")));
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(session->write_mu);
        ++session->pending;
      }
      pool_->Submit([this, session, frame = std::move(frame),
                     ticket = std::move(ticket)]() mutable {
        HandleFrame(session, std::move(frame));
        ticket.Release();
        {
          std::lock_guard<std::mutex> lock(session->write_mu);
          --session->pending;
        }
        session->drained.notify_all();
      });
    }
  }

  // Let in-flight workers finish writing their responses, then close
  // (under write_mu: Shutdown pokes session->fd from another thread).
  {
    std::unique_lock<std::mutex> lock(session->write_mu);
    session->drained.wait(lock, [&] { return session->pending == 0; });
    ::close(session->fd);
    session->fd = -1;
  }
  active_sessions_->Add(-1);
}

void ServiceServer::HandleFrame(const std::shared_ptr<Session>& session,
                                Frame frame) {
  Result<service::ServiceRequest> request =
      DecodeRequest(frame.type, frame.payload);
  if (!request.ok()) {
    // Malformed payload in a well-formed frame: the stream is still
    // synchronized, so answer the error and keep the connection.
    WriteFrame(session, MessageType::kError, frame.request_id,
               EncodeError(request.status()));
    return;
  }
  Result<service::ServiceResponse> response =
      service_->ExecuteAdmitted(request.value());
  if (!response.ok()) {
    WriteFrame(session, MessageType::kError, frame.request_id,
               EncodeError(response.status()));
    return;
  }
  WriteFrame(session, ResponseTypeFor(frame.type), frame.request_id,
             EncodeResponse(response.value()));
}

void ServiceServer::WriteFrame(const std::shared_ptr<Session>& session,
                               MessageType type, uint32_t request_id,
                               std::string_view payload) {
  const std::string frame = EncodeFrame(type, request_id, payload);
  std::lock_guard<std::mutex> lock(session->write_mu);
  if (session->fd < 0) return;
  if (SendAll(session->fd, frame.data(), frame.size())) {
    bytes_out_->Increment(static_cast<int64_t>(frame.size()));
  }
  // A failed send is not fatal here: the reader notices the dead
  // connection on its next recv and tears the session down.
}

void ServiceServer::Shutdown() {
  // One caller at a time; a second concurrent Shutdown blocks here until
  // the first finishes its joins, then finds everything already torn down.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);

  std::vector<std::shared_ptr<Session>> sessions;
  std::vector<std::thread> session_threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    sessions.swap(sessions_);
    session_threads.swap(session_threads_);
  }

  // Stop accepting: closing the listening socket makes accept() fail and
  // the accept loop return.
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Drain: wake each reader (recv returns 0 after SHUT_RD), let it wait
  // out its in-flight requests, write their responses, and close.
  for (const auto& session : sessions) {
    std::lock_guard<std::mutex> lock(session->write_mu);
    if (session->fd >= 0) ::shutdown(session->fd, SHUT_RD);
  }
  for (std::thread& t : session_threads) {
    if (t.joinable()) t.join();
  }

  // All readers gone, all their tasks done; now the pool can go.
  if (pool_ != nullptr) pool_->Shutdown();
}

}  // namespace net
}  // namespace qtf
