#ifndef QTF_NET_SERVER_H_
#define QTF_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "net/wire.h"
#include "service/service.h"

namespace qtf {
namespace net {

struct ServerConfig {
  /// Numeric IP to bind ("127.0.0.1" or "0.0.0.0"); no name resolution.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; the bound port is reported by port().
  uint16_t port = 0;
  /// Worker threads executing decoded requests. Session reader threads only
  /// parse frames and shed; all service work happens here.
  int workers = 4;
};

/// TCP front end for a RuleTestService: one accept loop, one reader thread
/// per connection, a shared worker pool executing requests. Frames are the
/// wire.h protocol; each request frame is answered by exactly one response
/// frame carrying its request id (responses may interleave out of request
/// order — the pool completes them as it pleases).
///
/// Admission: the reader thread sheds at frame-receipt time through the
/// service's AdmissionGate, answering kResourceExhausted immediately when
/// max_queue_depth requests are in flight — the worker queue therefore
/// never holds more than max_queue_depth admitted requests and Submit
/// never blocks the reader. Metrics requests bypass the gate and run
/// inline on the reader so the registry stays observable under overload.
///
/// Errors: a malformed payload answers kError(kInvalidArgument) and the
/// connection survives; a malformed frame header (bad magic/version/
/// reserved bits/oversized payload) counts qtf.service.bad_frames and
/// closes the connection, because the stream is unsynchronized.
///
/// Shutdown() (also from the destructor) is a graceful drain: stop
/// accepting, wake every session reader, finish every admitted request,
/// write its response, then join — SIGTERM handling in qtfd_main is just a
/// call to this.
class ServiceServer {
 public:
  /// Binds, listens, and starts the accept loop. The service must outlive
  /// the returned server.
  static Result<std::unique_ptr<ServiceServer>> Start(
      service::RuleTestService* service, ServerConfig config);

  ~ServiceServer();
  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// The port actually bound (useful with config.port = 0).
  uint16_t port() const { return port_; }

  /// Graceful drain; idempotent and safe from signal-notified threads
  /// (but not from handlers themselves — it locks and joins).
  void Shutdown();

 private:
  /// Per-connection state shared between the reader thread and worker
  /// tasks still writing responses after the reader moved on.
  struct Session {
    int fd = -1;
    /// Serializes response frames (a frame write must not interleave with
    /// another response to the same connection) and guards `pending`.
    std::mutex write_mu;
    std::condition_variable drained;
    /// Worker tasks not yet finished for this connection; the reader waits
    /// for zero before closing the fd.
    int pending = 0;
  };

  ServiceServer(service::RuleTestService* service, ServerConfig config);

  Status Bind();
  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Session> session);
  /// Decodes and executes one request frame; writes the response or error
  /// frame. Runs on the reader (metrics, decode errors) or a worker
  /// (admitted requests).
  void HandleFrame(const std::shared_ptr<Session>& session, Frame frame);
  void WriteFrame(const std::shared_ptr<Session>& session, MessageType type,
                  uint32_t request_id, std::string_view payload);

  service::RuleTestService* service_;
  const ServerConfig config_;
  uint16_t port_ = 0;
  /// Atomic because Shutdown() closes it while the accept loop reads it.
  std::atomic<int> listen_fd_{-1};

  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::mutex shutdown_mu_;  // serializes Shutdown() callers
  std::mutex mu_;           // guards sessions_ / session_threads_ / stopping_
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> session_threads_;
  bool stopping_ = false;

  obs::Gauge* active_sessions_ = nullptr;   // qtf.service.active_sessions
  obs::Counter* sessions_total_ = nullptr;  // qtf.service.sessions_total
  obs::Counter* bad_frames_ = nullptr;      // qtf.service.bad_frames
  obs::Counter* bytes_in_ = nullptr;        // qtf.service.bytes_in
  obs::Counter* bytes_out_ = nullptr;       // qtf.service.bytes_out
};

}  // namespace net
}  // namespace qtf

#endif  // QTF_NET_SERVER_H_
