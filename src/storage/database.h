#ifndef QTF_STORAGE_DATABASE_H_
#define QTF_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "types/value.h"

namespace qtf {

/// Materialized contents of one base table (row-major). Immutable once
/// registered with a Database; shared by reference during execution.
class TableData {
 public:
  explicit TableData(std::vector<Row> rows) : rows_(std::move(rows)) {}

  const std::vector<Row>& rows() const { return rows_; }
  int64_t row_count() const { return static_cast<int64_t>(rows_.size()); }

 private:
  std::vector<Row> rows_;
};

/// The fixed test database the framework runs against: schema (Catalog) plus
/// in-memory table contents. The paper's techniques take such a database as
/// a given input (Section 2.3).
class Database {
 public:
  Database() : catalog_(std::make_shared<Catalog>()) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* mutable_catalog() { return catalog_.get(); }
  const Catalog& catalog() const { return *catalog_; }

  /// Registers data for a table already present in the catalog. Row width
  /// must match the table's column count.
  Status AddTableData(const std::string& table_name,
                      std::shared_ptr<TableData> data);

  Result<std::shared_ptr<const TableData>> GetTableData(
      const std::string& table_name) const;

 private:
  std::shared_ptr<Catalog> catalog_;
  std::map<std::string, std::shared_ptr<TableData>> data_;
};

}  // namespace qtf

#endif  // QTF_STORAGE_DATABASE_H_
