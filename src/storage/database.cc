#include "storage/database.h"

namespace qtf {

Status Database::AddTableData(const std::string& table_name,
                              std::shared_ptr<TableData> data) {
  QTF_CHECK(data != nullptr);
  QTF_ASSIGN_OR_RETURN(std::shared_ptr<const TableDef> def,
                       catalog_->GetTable(table_name));
  for (const Row& row : data->rows()) {
    if (row.size() != def->columns().size()) {
      return Status::InvalidArgument(
          "row width mismatch for table " + table_name);
    }
  }
  if (data_.count(table_name) > 0) {
    return Status::AlreadyExists("data already loaded for " + table_name);
  }
  data_[table_name] = std::move(data);
  return Status::OK();
}

Result<std::shared_ptr<const TableData>> Database::GetTableData(
    const std::string& table_name) const {
  auto it = data_.find(table_name);
  if (it == data_.end()) {
    return Status::NotFound("no data for table: " + table_name);
  }
  return std::shared_ptr<const TableData>(it->second);
}

}  // namespace qtf
