#ifndef QTF_STORAGE_TPCH_H_
#define QTF_STORAGE_TPCH_H_

#include <memory>

#include "common/result.h"
#include "storage/database.h"

namespace qtf {

/// Configuration for the synthetic TPC-H-style database.
///
/// The paper evaluates against the TPC-H database [21]; the official dbgen
/// tool and a SQL Server instance are not available here, so this module
/// generates an equivalent 8-table schema (region, nation, supplier,
/// customer, part, partsupp, orders, lineitem) with primary keys, foreign
/// keys and deterministic data. Logical-rule firing is largely independent
/// of data size (paper Section 6.1), so the default scale is small enough
/// for fast correctness runs while preserving the cost spread the
/// compression experiments rely on.
struct TpchConfig {
  /// Row-count multiplier. scale=1 yields ~1.1k total rows; row counts grow
  /// linearly (lineitem ~4x orders, etc.).
  int scale = 1;
  /// Seed for the deterministic generator.
  uint64_t seed = 42;
};

/// Builds catalog + data for the TPC-H-style test database.
Result<std::unique_ptr<Database>> MakeTpchDatabase(const TpchConfig& config);

}  // namespace qtf

#endif  // QTF_STORAGE_TPCH_H_
