#include "storage/tpch.h"

#include <string>
#include <vector>

#include "common/rng.h"

namespace qtf {
namespace {

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};
const char* kNationNames[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",  "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",   "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",  "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",   "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kBrands[] = {"Brand#11", "Brand#12", "Brand#21", "Brand#22",
                         "Brand#31", "Brand#32", "Brand#41", "Brand#42"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kStatuses[] = {"F", "O", "P"};
const char* kReturnFlags[] = {"A", "N", "R"};

ColumnDef IntCol(const std::string& name, int64_t min_v, int64_t max_v,
                 double distinct, double null_fraction = 0.0) {
  ColumnDef c;
  c.name = name;
  c.type = ValueType::kInt64;
  c.min_value = min_v;
  c.max_value = max_v;
  c.distinct_count = distinct;
  c.null_fraction = null_fraction;
  return c;
}

ColumnDef DoubleCol(const std::string& name, double distinct,
                    double null_fraction = 0.0) {
  ColumnDef c;
  c.name = name;
  c.type = ValueType::kDouble;
  c.distinct_count = distinct;
  c.null_fraction = null_fraction;
  return c;
}

ColumnDef StringCol(const std::string& name, double distinct) {
  ColumnDef c;
  c.name = name;
  c.type = ValueType::kString;
  c.distinct_count = distinct;
  return c;
}

/// Applies the column's null fraction; otherwise returns the value.
Value MaybeNull(Rng* rng, const ColumnDef& col, Value v) {
  if (col.null_fraction > 0.0 && rng->Bernoulli(col.null_fraction)) {
    return Value::Null(col.type);
  }
  return v;
}

}  // namespace

Result<std::unique_ptr<Database>> MakeTpchDatabase(const TpchConfig& config) {
  QTF_CHECK(config.scale >= 1);
  const int64_t s = config.scale;
  const int64_t n_region = 5;
  const int64_t n_nation = 25;
  const int64_t n_supplier = 10 * s;
  const int64_t n_customer = 60 * s;
  const int64_t n_part = 80 * s;
  const int64_t n_partsupp = 2 * n_part;
  const int64_t n_orders = 300 * s;
  // lineitem rows: 1..4 per order, expected ~2.5x.
  Rng rng(config.seed);

  auto db = std::make_unique<Database>();
  Catalog* catalog = db->mutable_catalog();

  // ---- region ----
  {
    std::vector<ColumnDef> cols = {
        IntCol("r_regionkey", 1, n_region, static_cast<double>(n_region)),
        StringCol("r_name", static_cast<double>(n_region))};
    auto def = std::make_shared<TableDef>("region", cols, n_region);
    def->AddKey(KeyDef{{0}});
    QTF_RETURN_NOT_OK(catalog->AddTable(def));
    std::vector<Row> rows;
    for (int64_t i = 1; i <= n_region; ++i) {
      rows.push_back({Value::Int64(i), Value::String(kRegionNames[i - 1])});
    }
    QTF_RETURN_NOT_OK(
        db->AddTableData("region", std::make_shared<TableData>(rows)));
  }

  // ---- nation ----
  {
    std::vector<ColumnDef> cols = {
        IntCol("n_nationkey", 1, n_nation, static_cast<double>(n_nation)),
        StringCol("n_name", static_cast<double>(n_nation)),
        IntCol("n_regionkey", 1, n_region, static_cast<double>(n_region))};
    auto def = std::make_shared<TableDef>("nation", cols, n_nation);
    def->AddKey(KeyDef{{0}});
    def->AddForeignKey(ForeignKeyDef{2, "region", 0});
    QTF_RETURN_NOT_OK(catalog->AddTable(def));
    std::vector<Row> rows;
    for (int64_t i = 1; i <= n_nation; ++i) {
      rows.push_back({Value::Int64(i), Value::String(kNationNames[i - 1]),
                      Value::Int64((i - 1) % n_region + 1)});
    }
    QTF_RETURN_NOT_OK(
        db->AddTableData("nation", std::make_shared<TableData>(rows)));
  }

  // ---- supplier ----
  {
    std::vector<ColumnDef> cols = {
        IntCol("s_suppkey", 1, n_supplier, static_cast<double>(n_supplier)),
        StringCol("s_name", static_cast<double>(n_supplier)),
        IntCol("s_nationkey", 1, n_nation, static_cast<double>(n_nation)),
        DoubleCol("s_acctbal", static_cast<double>(n_supplier), 0.05)};
    auto def = std::make_shared<TableDef>("supplier", cols, n_supplier);
    def->AddKey(KeyDef{{0}});
    def->AddForeignKey(ForeignKeyDef{2, "nation", 0});
    QTF_RETURN_NOT_OK(catalog->AddTable(def));
    std::vector<Row> rows;
    for (int64_t i = 1; i <= n_supplier; ++i) {
      rows.push_back(
          {Value::Int64(i),
           Value::String("Supplier#" + std::to_string(i)),
           Value::Int64(rng.UniformInt(1, n_nation)),
           MaybeNull(&rng, cols[3],
                     Value::Double(rng.UniformDouble(-999.0, 9999.0)))});
    }
    QTF_RETURN_NOT_OK(
        db->AddTableData("supplier", std::make_shared<TableData>(rows)));
  }

  // ---- customer ----
  {
    std::vector<ColumnDef> cols = {
        IntCol("c_custkey", 1, n_customer, static_cast<double>(n_customer)),
        StringCol("c_name", static_cast<double>(n_customer)),
        IntCol("c_nationkey", 1, n_nation, static_cast<double>(n_nation)),
        DoubleCol("c_acctbal", static_cast<double>(n_customer), 0.05),
        StringCol("c_mktsegment", 5.0)};
    auto def = std::make_shared<TableDef>("customer", cols, n_customer);
    def->AddKey(KeyDef{{0}});
    def->AddForeignKey(ForeignKeyDef{2, "nation", 0});
    QTF_RETURN_NOT_OK(catalog->AddTable(def));
    std::vector<Row> rows;
    for (int64_t i = 1; i <= n_customer; ++i) {
      rows.push_back(
          {Value::Int64(i),
           Value::String("Customer#" + std::to_string(i)),
           Value::Int64(rng.UniformInt(1, n_nation)),
           MaybeNull(&rng, cols[3],
                     Value::Double(rng.UniformDouble(-999.0, 9999.0))),
           Value::String(kSegments[rng.PickIndex(5)])});
    }
    QTF_RETURN_NOT_OK(
        db->AddTableData("customer", std::make_shared<TableData>(rows)));
  }

  // ---- part ----
  {
    std::vector<ColumnDef> cols = {
        IntCol("p_partkey", 1, n_part, static_cast<double>(n_part)),
        StringCol("p_name", static_cast<double>(n_part)),
        StringCol("p_brand", 8.0),
        IntCol("p_size", 1, 50, 50.0, 0.02),
        DoubleCol("p_retailprice", static_cast<double>(n_part))};
    auto def = std::make_shared<TableDef>("part", cols, n_part);
    def->AddKey(KeyDef{{0}});
    QTF_RETURN_NOT_OK(catalog->AddTable(def));
    std::vector<Row> rows;
    for (int64_t i = 1; i <= n_part; ++i) {
      rows.push_back(
          {Value::Int64(i), Value::String("Part#" + std::to_string(i)),
           Value::String(kBrands[rng.PickIndex(8)]),
           MaybeNull(&rng, cols[3], Value::Int64(rng.UniformInt(1, 50))),
           Value::Double(900.0 + static_cast<double>(i % 200))});
    }
    QTF_RETURN_NOT_OK(
        db->AddTableData("part", std::make_shared<TableData>(rows)));
  }

  // ---- partsupp ----
  {
    std::vector<ColumnDef> cols = {
        IntCol("ps_partkey", 1, n_part, static_cast<double>(n_part)),
        IntCol("ps_suppkey", 1, n_supplier, static_cast<double>(n_supplier)),
        IntCol("ps_availqty", 1, 9999, 5000.0),
        DoubleCol("ps_supplycost", 1000.0)};
    auto def = std::make_shared<TableDef>("partsupp", cols, n_partsupp);
    def->AddKey(KeyDef{{0, 1}});
    def->AddForeignKey(ForeignKeyDef{0, "part", 0});
    def->AddForeignKey(ForeignKeyDef{1, "supplier", 0});
    QTF_RETURN_NOT_OK(catalog->AddTable(def));
    std::vector<Row> rows;
    // Two suppliers per part, distinct, so (ps_partkey, ps_suppkey) is a key.
    for (int64_t p = 1; p <= n_part; ++p) {
      int64_t s1 = rng.UniformInt(1, n_supplier);
      int64_t s2 = s1 % n_supplier + 1;
      for (int64_t sk : {s1, s2}) {
        rows.push_back({Value::Int64(p), Value::Int64(sk),
                        Value::Int64(rng.UniformInt(1, 9999)),
                        Value::Double(rng.UniformDouble(1.0, 1000.0))});
      }
    }
    QTF_RETURN_NOT_OK(
        db->AddTableData("partsupp", std::make_shared<TableData>(rows)));
  }

  // ---- orders ----
  {
    std::vector<ColumnDef> cols = {
        IntCol("o_orderkey", 1, n_orders, static_cast<double>(n_orders)),
        IntCol("o_custkey", 1, n_customer, static_cast<double>(n_customer)),
        StringCol("o_orderstatus", 3.0),
        DoubleCol("o_totalprice", static_cast<double>(n_orders)),
        IntCol("o_orderdate", 19920101, 19981231, 2000.0),
        StringCol("o_orderpriority", 5.0)};
    auto def = std::make_shared<TableDef>("orders", cols, n_orders);
    def->AddKey(KeyDef{{0}});
    def->AddForeignKey(ForeignKeyDef{1, "customer", 0});
    QTF_RETURN_NOT_OK(catalog->AddTable(def));
    std::vector<Row> rows;
    for (int64_t i = 1; i <= n_orders; ++i) {
      int64_t year = rng.UniformInt(1992, 1998);
      int64_t month = rng.UniformInt(1, 12);
      int64_t day = rng.UniformInt(1, 28);
      rows.push_back({Value::Int64(i),
                      Value::Int64(rng.UniformInt(1, n_customer)),
                      Value::String(kStatuses[rng.PickIndex(3)]),
                      Value::Double(rng.UniformDouble(900.0, 500000.0)),
                      Value::Int64(year * 10000 + month * 100 + day),
                      Value::String(kPriorities[rng.PickIndex(5)])});
    }
    QTF_RETURN_NOT_OK(
        db->AddTableData("orders", std::make_shared<TableData>(rows)));
  }

  // ---- lineitem ----
  {
    std::vector<Row> rows;
    for (int64_t o = 1; o <= n_orders; ++o) {
      int64_t n_lines = rng.UniformInt(1, 4);
      for (int64_t l = 1; l <= n_lines; ++l) {
        rows.push_back({Value::Int64(o), Value::Int64(l),
                        Value::Int64(rng.UniformInt(1, n_part)),
                        Value::Int64(rng.UniformInt(1, n_supplier)),
                        Value::Double(static_cast<double>(
                            rng.UniformInt(1, 50))),
                        Value::Double(rng.UniformDouble(900.0, 100000.0)),
                        Value::Double(rng.UniformInt(0, 10) / 100.0),
                        Value::String(kReturnFlags[rng.PickIndex(3)]),
                        Value::Int64(19920101 +
                                     rng.UniformInt(0, 60000))});
      }
    }
    const int64_t n_lineitem = static_cast<int64_t>(rows.size());
    std::vector<ColumnDef> cols = {
        IntCol("l_orderkey", 1, n_orders, static_cast<double>(n_orders)),
        IntCol("l_linenumber", 1, 4, 4.0),
        IntCol("l_partkey", 1, n_part, static_cast<double>(n_part)),
        IntCol("l_suppkey", 1, n_supplier, static_cast<double>(n_supplier)),
        DoubleCol("l_quantity", 50.0),
        DoubleCol("l_extendedprice", static_cast<double>(n_lineitem)),
        DoubleCol("l_discount", 11.0),
        StringCol("l_returnflag", 3.0),
        IntCol("l_shipdate", 19920101, 19981231, 2000.0)};
    auto def = std::make_shared<TableDef>("lineitem", cols, n_lineitem);
    def->AddKey(KeyDef{{0, 1}});
    def->AddForeignKey(ForeignKeyDef{0, "orders", 0});
    def->AddForeignKey(ForeignKeyDef{2, "part", 0});
    def->AddForeignKey(ForeignKeyDef{3, "supplier", 0});
    QTF_RETURN_NOT_OK(catalog->AddTable(def));
    QTF_RETURN_NOT_OK(
        db->AddTableData("lineitem", std::make_shared<TableData>(rows)));
  }

  return db;
}

}  // namespace qtf
