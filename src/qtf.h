#ifndef QTF_QTF_H_
#define QTF_QTF_H_

/// Umbrella header: the framework's public API in one include. Examples
/// and downstream consumers include this; the library's own code keeps
/// including the specific headers it needs.
///
///   #include "qtf.h"
///   auto fw = qtf::RuleTestFramework::Create({}).value();

#include "compress/compression.h"
#include "compress/matching.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/plan_cache.h"
#include "qgen/generation.h"
#include "rules/buggy_rules.h"
#include "sql/frontend.h"
#include "sql/render.h"
#include "service/service.h"
#include "testing/framework.h"

#endif  // QTF_QTF_H_
