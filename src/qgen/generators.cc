#include "qgen/generators.h"

#include "qgen/tree_builder.h"

namespace qtf {

Query RandomQueryGenerator::Generate() {
  TreeBuilder builder(catalog_, &rng_, builder_options_);
  int target_ops = static_cast<int>(
      rng_.UniformInt(config_.min_ops, config_.max_ops));
  LogicalOpPtr tree = builder.RandomGet();
  while (CountOps(*tree) < target_ops) {
    tree = builder.ApplyRandomOperator(std::move(tree));
  }
  return Query{std::move(tree), builder.registry()};
}

namespace {

LogicalOpPtr InstantiateNode(const PatternNode& pattern, TreeBuilder* builder,
                             Rng* rng) {
  if (pattern.type() == PatternNode::Type::kAny) {
    return builder->RandomGet();
  }
  switch (pattern.op_kind()) {
    case LogicalOpKind::kGet:
      return builder->RandomGet();
    case LogicalOpKind::kSelect: {
      LogicalOpPtr child =
          InstantiateNode(*pattern.children()[0], builder, rng);
      return builder->RandomSelect(std::move(child));
    }
    case LogicalOpKind::kProject: {
      LogicalOpPtr child =
          InstantiateNode(*pattern.children()[0], builder, rng);
      return builder->RandomProject(std::move(child));
    }
    case LogicalOpKind::kJoin: {
      LogicalOpPtr left = InstantiateNode(*pattern.children()[0], builder, rng);
      LogicalOpPtr right =
          InstantiateNode(*pattern.children()[1], builder, rng);
      JoinKind kind = pattern.join_kind().value_or(JoinKind::kInner);
      return builder->RandomJoin(kind, std::move(left), std::move(right));
    }
    case LogicalOpKind::kGroupByAgg: {
      LogicalOpPtr child =
          InstantiateNode(*pattern.children()[0], builder, rng);
      return builder->RandomGroupBy(std::move(child));
    }
    case LogicalOpKind::kUnionAll: {
      LogicalOpPtr left = InstantiateNode(*pattern.children()[0], builder, rng);
      LogicalOpPtr right =
          InstantiateNode(*pattern.children()[1], builder, rng);
      return builder->RandomUnionAll(std::move(left), std::move(right));
    }
    case LogicalOpKind::kDistinct: {
      LogicalOpPtr child =
          InstantiateNode(*pattern.children()[0], builder, rng);
      // Direct construction (RandomDistinct would narrow with a project);
      // still canonicalize so pattern-instantiated trees are fully interned.
      return builder->Canonical(
          std::make_shared<DistinctOp>(std::move(child)));
    }
    case LogicalOpKind::kGroupRef:
      QTF_CHECK(false) << "GroupRef cannot appear in an exported pattern";
      return nullptr;
  }
  QTF_CHECK(false) << "unknown pattern operator";
  return nullptr;
}

}  // namespace

Query PatternInstantiator::Instantiate(const PatternNode& pattern,
                                       int extra_ops) {
  TreeBuilder builder(catalog_, &rng_, options_);
  LogicalOpPtr tree = InstantiateNode(pattern, &builder, &rng_);
  for (int i = 0; i < extra_ops; ++i) {
    tree = builder.ApplyRandomOperator(std::move(tree));
  }
  return Query{std::move(tree), builder.registry()};
}

}  // namespace qtf
