#ifndef QTF_QGEN_GENERATION_H_
#define QTF_QGEN_GENERATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "logical/query.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "qgen/generators.h"

namespace qtf {

/// How to search for a query exercising the target rules.
enum class GenerationMethod {
  kRandom = 0,  // stochastic trial-and-error ([1][17]); the paper's baseline
  kPattern,     // rule-pattern instantiation (paper Section 3)
};

const char* GenerationMethodToString(GenerationMethod method);

struct GenerationConfig {
  GenerationMethod method = GenerationMethod::kPattern;
  /// Give up after this many optimize() trials.
  int max_trials = 2000;
  /// Up to this many extra random operators are appended to each candidate
  /// (Section 2.3's knob; used to produce larger correctness-test queries
  /// with varied costs).
  int extra_ops = 0;
  /// PATTERN only: instantiation biases towards rule-precondition shapes
  /// (see TreeBuilderOptions). Disabled by the ablation benchmark.
  TreeBuilderOptions builder_options;
  uint64_t seed = 1;
  /// Checked between trials and passed into every candidate optimization;
  /// a triggered token makes Generate return kCancelled.
  CancellationToken cancel;
  /// Per-trial search budget (unlimited by default). A candidate whose
  /// search trips the budget is costed from its truncated memo like any
  /// other trial; one that exhausts it with no plan is just a miss.
  SearchBudget budget;
};

/// Result of one targeted generation run.
struct GenerationOutcome {
  bool success = false;
  Query query;
  std::string sql;
  RuleIdSet rule_set;  // RuleSet(query)
  double cost = 0.0;   // Cost(query)
  int operator_count = 0;
  /// Trials (optimizer invocations on candidate queries) until success —
  /// the efficiency metric of Figures 8-9.
  int trials = 0;
  /// Wall-clock generation time — the metric of Figure 10.
  double seconds = 0.0;
};

/// Generates queries that exercise a given rule or rule pair, by either
/// method (the Query Generation component of Figure 2).
class TargetedQueryGenerator {
 public:
  /// `optimizer` is used to optimize candidates and read RuleSet(q);
  /// the catalog defines the fixed test database's schema. Generation
  /// accounting (trials per method, successes, relevance probes — see
  /// docs/observability.md) lands in the optimizer's metrics registry.
  TargetedQueryGenerator(const Catalog* catalog, Optimizer* optimizer)
      : catalog_(catalog), optimizer_(optimizer) {
    QTF_CHECK(catalog_ != nullptr && optimizer_ != nullptr);
    obs::MetricsRegistry* metrics = optimizer_->metrics();
    trials_random_ = metrics->counter("qtf.qgen.trials.random");
    trials_pattern_ = metrics->counter("qtf.qgen.trials.pattern");
    successes_ = metrics->counter("qtf.qgen.successes");
    failures_ = metrics->counter("qtf.qgen.failures");
    relevance_probes_ = metrics->counter("qtf.qgen.relevance_probes");
    trials_to_success_ = metrics->histogram("qtf.qgen.trials_to_success");
    generation_seconds_ = metrics->histogram("qtf.qgen.generation_seconds");
  }

  /// Searches for a query q with targets ⊆ RuleSet(q). `targets` holds one
  /// rule id (singleton) or two (rule pair; PATTERN uses pattern
  /// composition, Section 3.2).
  ///
  /// Running out of trials is NOT an error — that returns an outcome with
  /// `success == false` (the miss rate is itself an experimental result,
  /// Figure 8). The error arm is reserved for the run being interrupted:
  /// kCancelled when config.cancel fires mid-generation.
  Result<GenerationOutcome> Generate(const std::vector<RuleId>& targets,
                                     const GenerationConfig& config);

  /// Section 7 variant: additionally requires the rule to be *relevant* —
  /// disabling it changes the chosen plan. Only meaningful for singleton
  /// targets.
  Result<GenerationOutcome> GenerateRelevant(RuleId target,
                                             const GenerationConfig& config);

 private:
  Result<GenerationOutcome> RunTrials(
      const std::vector<RuleId>& targets, const GenerationConfig& config,
      const std::vector<PatternNodePtr>& patterns, bool require_relevant);

  const Catalog* catalog_;
  Optimizer* optimizer_;
  obs::Counter* trials_random_ = nullptr;
  obs::Counter* trials_pattern_ = nullptr;
  obs::Counter* successes_ = nullptr;
  obs::Counter* failures_ = nullptr;
  obs::Counter* relevance_probes_ = nullptr;
  obs::Histogram* trials_to_success_ = nullptr;
  obs::Histogram* generation_seconds_ = nullptr;
};

}  // namespace qtf

#endif  // QTF_QGEN_GENERATION_H_
