#ifndef QTF_QGEN_GENERATORS_H_
#define QTF_QGEN_GENERATORS_H_

#include <memory>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "logical/query.h"
#include "pattern/pattern.h"
#include "qgen/tree_builder.h"

namespace qtf {

/// Configuration of the RANDOM stochastic query generator.
struct RandomGeneratorConfig {
  /// Number of logical operators per generated query, uniform in
  /// [min_ops, max_ops].
  int min_ops = 2;
  int max_ops = 9;
};

/// RANDOM: the state-of-the-art stochastic approach ([1][17]-style) — grow
/// a random valid logical tree and hope it exercises the target rule. The
/// framework's baseline for query generation.
class RandomQueryGenerator {
 public:
  /// `builder_options` configures the per-query TreeBuilder (biases and
  /// the optional NodeInterner generated trees are canonicalized through).
  RandomQueryGenerator(const Catalog* catalog, uint64_t seed,
                       RandomGeneratorConfig config = {},
                       TreeBuilderOptions builder_options = {})
      : catalog_(catalog),
        rng_(seed),
        config_(config),
        builder_options_(builder_options) {}

  /// Generates a fresh random query (new registry each call).
  Query Generate();

 private:
  const Catalog* catalog_;
  Rng rng_;
  RandomGeneratorConfig config_;
  TreeBuilderOptions builder_options_;
};

/// PATTERN: instantiates a rule pattern into a logical query tree — the
/// paper's contribution (Section 3.1). Concrete operators replace the
/// pattern's nodes, placeholders become base-table accesses, and arguments
/// (predicates, grouping columns, aggregates) are chosen randomly with
/// biases towards the functional-dependency shapes rule preconditions need.
class PatternInstantiator {
 public:
  PatternInstantiator(const Catalog* catalog, uint64_t seed,
                      TreeBuilderOptions options = {})
      : catalog_(catalog), rng_(seed), options_(options) {}

  /// Instantiates `pattern`, then grows the tree with `extra_ops` random
  /// operators (Section 2.3's knob for larger correctness-test queries).
  Query Instantiate(const PatternNode& pattern, int extra_ops = 0);

 private:
  const Catalog* catalog_;
  Rng rng_;
  TreeBuilderOptions options_;
};

}  // namespace qtf

#endif  // QTF_QGEN_GENERATORS_H_
