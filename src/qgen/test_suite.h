#ifndef QTF_QGEN_TEST_SUITE_H_
#define QTF_QGEN_TEST_SUITE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "qgen/generation.h"

namespace qtf {

/// A test target: one rule (singleton) or two (rule pair).
struct RuleTarget {
  std::vector<RuleId> rules;

  std::string ToString(const RuleRegistry& registry) const;
};

/// One generated test query with its observed optimization facts.
struct TestCase {
  Query query;
  std::string sql;
  RuleIdSet rule_set;  // RuleSet(query)
  double cost = 0.0;   // Cost(query), optimizer-estimated
  int trials = 0;
};

/// The overall test suite TS = union of per-target suites TSi (paper
/// Section 2.3): `queries` is the pooled TS; `per_target[i]` lists the k
/// indices generated for target i (the BASELINE mapping).
struct TestSuite {
  std::vector<RuleTarget> targets;
  std::vector<TestCase> queries;
  std::vector<std::vector<int>> per_target;

  /// Query indices whose RuleSet covers target `t` (the bipartite-graph
  /// edges of Section 4.1 before costing).
  std::vector<int> CandidatesFor(int t) const;
};

/// The Test Suite Generation module of Figure 2: k queries per target via
/// the TargetedQueryGenerator.
class TestSuiteGenerator {
 public:
  TestSuiteGenerator(const Catalog* catalog, Optimizer* optimizer)
      : catalog_(catalog), optimizer_(optimizer) {}

  /// Generates k distinct queries for every target. Fails if some target
  /// cannot be covered within the configured trial budget; returns
  /// kCancelled when config.cancel fires mid-suite.
  Result<TestSuite> Generate(const std::vector<RuleTarget>& targets, int k,
                             const GenerationConfig& config);

 private:
  const Catalog* catalog_;
  Optimizer* optimizer_;
};

}  // namespace qtf

#endif  // QTF_QGEN_TEST_SUITE_H_
