#ifndef QTF_QGEN_SQLGEN_H_
#define QTF_QGEN_SQLGEN_H_

// The SQL renderer moved to sql/render.h when the parser/binder frontend
// landed, so rendering and parsing live side by side. This forwarding shim
// keeps old include paths building for one release; include sql/render.h
// directly in new code.
#include "sql/render.h"  // IWYU pragma: export

#endif  // QTF_QGEN_SQLGEN_H_
