#ifndef QTF_QGEN_SQLGEN_H_
#define QTF_QGEN_SQLGEN_H_

#include <string>

#include "logical/query.h"

namespace qtf {

/// Renders a logical query tree as a SQL statement — the "Generate SQL"
/// component of the framework (paper Figure 2), functionally similar to the
/// interface of Elhemali & Giakoumakis [9].
///
/// Columns are aliased "c<id>" at every level so references are
/// unambiguous; every operator becomes a derived table; semi/anti joins
/// render as EXISTS/NOT EXISTS. Our optimizer consumes logical trees
/// directly (see DESIGN.md), so the text is used for reports, examples and
/// failure repros rather than re-parsing.
std::string GenerateSql(const Query& query);

}  // namespace qtf

#endif  // QTF_QGEN_SQLGEN_H_
