#ifndef QTF_QGEN_TREE_BUILDER_H_
#define QTF_QGEN_TREE_BUILDER_H_

#include <map>
#include <memory>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "logical/interner.h"
#include "logical/ops.h"
#include "logical/props.h"

namespace qtf {

/// Toggles for the generator's precondition-aware biases. All default on;
/// the ablation benchmark (bench_ablation_pattern_bias) turns them off to
/// quantify how much of PATTERN's efficiency comes from biasing the
/// instantiated arguments towards the functional-dependency shapes rule
/// preconditions need (key-shaped joins, join columns in the grouping,
/// left-only projections over joins).
struct TreeBuilderOptions {
  /// Prefer equi-join pairs whose right column is a key of the right input.
  bool bias_key_joins = true;
  /// Include the join's left equi-columns in GROUP BY column sets.
  bool bias_groupby_join_cols = true;
  /// Sometimes group on a key of the input.
  bool bias_groupby_keys = true;
  /// Over a join, sometimes project only the left side's columns.
  bool bias_project_left_only = true;
  /// When set (borrowed, not owned), every constructed node is
  /// canonicalized through this interner, so structurally-equal subtrees
  /// across generated queries share one instance and arrive at the
  /// optimizer pre-fingerprinted. Generation is interning-agnostic: the
  /// same seed yields structurally identical queries either way.
  NodeInterner* interner = nullptr;
};

/// Random building blocks for valid logical query trees, shared by the
/// RANDOM stochastic generator and the PATTERN-based generator (paper
/// Section 3). One TreeBuilder is created per query; it owns the query's
/// ColumnRegistry and tracks base-table column statistics so predicates use
/// constants from real column domains.
class TreeBuilder {
 public:
  TreeBuilder(const Catalog* catalog, Rng* rng,
              TreeBuilderOptions options = {});
  TreeBuilder(const TreeBuilder&) = delete;
  TreeBuilder& operator=(const TreeBuilder&) = delete;

  const ColumnRegistryPtr& registry() const { return registry_; }

  /// Leaf: Get over a uniformly chosen base table.
  LogicalOpPtr RandomGet();

  /// Filter with a 1-2 conjunct random predicate over the input's columns.
  LogicalOpPtr RandomSelect(LogicalOpPtr input);

  /// Pass-through projection to a random non-empty column subset; when the
  /// input is a join, biased towards keeping only left-side columns (which
  /// makes join-to-semi-join rewrites reachable).
  LogicalOpPtr RandomProject(LogicalOpPtr input);

  /// Grouping over 1-3 columns with 1-2 aggregates; biased to include join
  /// equi-columns / a key column of the input when present (the
  /// functional-dependency conditions several Group-By rules need).
  LogicalOpPtr RandomGroupBy(LogicalOpPtr input);

  /// Join of the given kind with a random (mostly equi) predicate; biased
  /// towards pairs whose right column is a key of the right input.
  LogicalOpPtr RandomJoin(JoinKind kind, LogicalOpPtr left,
                          LogicalOpPtr right);

  /// Bag union; the right side is coerced to the left side's positional
  /// type signature with a projection (padding with typed constants when a
  /// matching column is missing).
  LogicalOpPtr RandomUnionAll(LogicalOpPtr left, LogicalOpPtr right);

  LogicalOpPtr RandomDistinct(LogicalOpPtr input);

  /// Grows the tree by one random operator (used for the "add N random
  /// operators" knob of Section 2.3 and by the RANDOM generator).
  LogicalOpPtr ApplyRandomOperator(LogicalOpPtr input);

  /// Random predicate over the columns of `input`.
  ExprPtr RandomPredicate(const LogicalOp& input);

  /// Canonicalizes `node` through the configured interner (identity when
  /// none is configured). Applied to every node the builder constructs;
  /// also used by callers (PatternInstantiator) that assemble nodes
  /// directly.
  LogicalOpPtr Canonical(LogicalOpPtr node) const;

 private:
  /// Constant literal drawn from the column's domain when known.
  ExprPtr RandomConstantFor(ColumnId id);
  ExprPtr RandomConjunct(const std::vector<ColumnId>& cols);

  const Catalog* catalog_;
  Rng* rng_;
  TreeBuilderOptions options_;
  ColumnRegistryPtr registry_;
  /// Domain info for base-table columns (by the ids this query allocated).
  std::map<ColumnId, ColumnDef> base_defs_;
  int agg_counter_ = 0;
};

}  // namespace qtf

#endif  // QTF_QGEN_TREE_BUILDER_H_
