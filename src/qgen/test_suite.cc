#include "qgen/test_suite.h"

#include "obs/trace.h"

namespace qtf {

std::string RuleTarget::ToString(const RuleRegistry& registry) const {
  std::string out;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out += "+";
    out += registry.rule(rules[i]).name();
  }
  return out;
}

std::vector<int> TestSuite::CandidatesFor(int t) const {
  std::vector<int> out;
  const RuleTarget& target = targets[static_cast<size_t>(t)];
  for (size_t q = 0; q < queries.size(); ++q) {
    bool covers = true;
    for (RuleId id : target.rules) {
      if (queries[q].rule_set.count(id) == 0) {
        covers = false;
        break;
      }
    }
    if (covers) out.push_back(static_cast<int>(q));
  }
  return out;
}

Result<TestSuite> TestSuiteGenerator::Generate(
    const std::vector<RuleTarget>& targets, int k,
    const GenerationConfig& config) {
  QTF_CHECK(k >= 1);
  obs::PhaseSpan span(optimizer_->metrics(), "qgen.suite_generate");
  TestSuite suite;
  suite.targets = targets;
  TargetedQueryGenerator generator(catalog_, optimizer_);

  uint64_t seed = config.seed;
  for (size_t t = 0; t < targets.size(); ++t) {
    if (config.cancel.cancelled()) {
      return Status::Cancelled("test suite generation cancelled");
    }
    std::vector<int> indices;
    for (int i = 0; i < k; ++i) {
      GenerationConfig per_query = config;
      per_query.seed = seed++ * 0x9e3779b97f4a7c15ULL + 12345 + i;
      QTF_ASSIGN_OR_RETURN(GenerationOutcome outcome,
                           generator.Generate(targets[t].rules, per_query));
      if (!outcome.success) {
        return Status::Internal(
            "could not generate query " + std::to_string(i) + " for target " +
            targets[t].ToString(optimizer_->rules()) + " within " +
            std::to_string(config.max_trials) + " trials");
      }
      TestCase test_case;
      test_case.query = outcome.query;
      test_case.sql = outcome.sql;
      test_case.rule_set = outcome.rule_set;
      test_case.cost = outcome.cost;
      test_case.trials = outcome.trials;
      suite.queries.push_back(std::move(test_case));
      indices.push_back(static_cast<int>(suite.queries.size()) - 1);
    }
    suite.per_target.push_back(std::move(indices));
  }
  optimizer_->metrics()->counter("qtf.qgen.suites_generated")->Increment();
  return suite;
}

}  // namespace qtf
