#include "qgen/tree_builder.h"

#include <algorithm>

namespace qtf {
namespace {

/// String literals that occur in the generated TPC-H-style data, so string
/// predicates are sometimes selective rather than always empty/full.
const char* kStringVocab[] = {
    "ASIA",       "EUROPE",   "AFRICA",    "AUTOMOBILE", "BUILDING",
    "FURNITURE",  "Brand#11", "Brand#32",  "1-URGENT",   "5-LOW",
    "F",          "O",        "A",         "N",          "R"};

}  // namespace

TreeBuilder::TreeBuilder(const Catalog* catalog, Rng* rng,
                         TreeBuilderOptions options)
    : catalog_(catalog),
      rng_(rng),
      options_(options),
      registry_(std::make_shared<ColumnRegistry>()) {
  QTF_CHECK(catalog_ != nullptr && rng_ != nullptr);
  QTF_CHECK(catalog_->table_count() > 0);
}

LogicalOpPtr TreeBuilder::RandomGet() {
  std::vector<std::string> names = catalog_->TableNames();
  const std::string& name = rng_->PickOne(names);
  auto table = catalog_->GetTable(name).value();
  auto get = GetOp::Create(table, registry_.get());
  for (size_t i = 0; i < get->columns().size(); ++i) {
    base_defs_[get->columns()[i]] = table->columns()[i];
  }
  return Canonical(get);
}

ExprPtr TreeBuilder::RandomConstantFor(ColumnId id) {
  ValueType type = registry_->TypeOf(id);
  auto it = base_defs_.find(id);
  switch (type) {
    case ValueType::kInt64: {
      if (it != base_defs_.end() && it->second.max_value > it->second.min_value) {
        return LitInt(rng_->UniformInt(it->second.min_value,
                                       it->second.max_value));
      }
      return LitInt(rng_->UniformInt(0, 100));
    }
    case ValueType::kDouble:
      return LitDouble(rng_->UniformDouble(0.0, 10000.0));
    case ValueType::kString:
      return LitString(kStringVocab[rng_->PickIndex(
          sizeof(kStringVocab) / sizeof(kStringVocab[0]))]);
    case ValueType::kBool:
      return Lit(Value::Bool(rng_->Bernoulli(0.5)));
  }
  return LitInt(0);
}

ExprPtr TreeBuilder::RandomConjunct(const std::vector<ColumnId>& cols) {
  ColumnId col = rng_->PickOne(cols);
  ValueType type = registry_->TypeOf(col);

  // Occasionally test NULL handling explicitly.
  if (rng_->Bernoulli(0.08)) {
    ExprPtr is_null = IsNull(Col(col, type));
    return rng_->Bernoulli(0.5) ? is_null : Not(is_null);
  }
  // Column-to-column comparison when a same-typed partner exists.
  if (rng_->Bernoulli(0.2)) {
    std::vector<ColumnId> partners;
    for (ColumnId other : cols) {
      if (other != col && registry_->TypeOf(other) == type) {
        partners.push_back(other);
      }
    }
    if (!partners.empty()) {
      ColumnId other = rng_->PickOne(partners);
      return Cmp(rng_->Bernoulli(0.7) ? CompareOp::kEq : CompareOp::kLe,
                 Col(col, type), Col(other, type));
    }
  }
  static constexpr CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                       CompareOp::kLt, CompareOp::kLe,
                                       CompareOp::kGt, CompareOp::kGe};
  CompareOp op = kOps[rng_->PickIndex(6)];
  if (type == ValueType::kString && rng_->Bernoulli(0.6)) {
    op = CompareOp::kEq;  // string ranges are rarely interesting
  }
  return Cmp(op, Col(col, type), RandomConstantFor(col));
}

ExprPtr TreeBuilder::RandomPredicate(const LogicalOp& input) {
  std::vector<ColumnId> cols = input.OutputColumns();
  QTF_CHECK(!cols.empty());
  ExprPtr pred = RandomConjunct(cols);
  if (rng_->Bernoulli(0.3)) {
    ExprPtr second = RandomConjunct(cols);
    pred = rng_->Bernoulli(0.8) ? And(pred, second) : Or(pred, second);
  }
  return pred;
}

LogicalOpPtr TreeBuilder::RandomSelect(LogicalOpPtr input) {
  ExprPtr pred = RandomPredicate(*input);
  return Canonical(
      std::make_shared<SelectOp>(std::move(input), std::move(pred)));
}

LogicalOpPtr TreeBuilder::RandomProject(LogicalOpPtr input) {
  std::vector<ColumnId> cols = input->OutputColumns();
  std::vector<ColumnId> kept;

  // Bias: over a join, keeping only the left side enables join-to-semi-join.
  if (options_.bias_project_left_only &&
      input->kind() == LogicalOpKind::kJoin && rng_->Bernoulli(0.5)) {
    kept = input->child(0)->OutputColumns();
  } else {
    for (ColumnId id : cols) {
      if (rng_->Bernoulli(0.6)) kept.push_back(id);
    }
    if (kept.empty()) kept.push_back(rng_->PickOne(cols));
  }

  std::vector<ProjectItem> items;
  for (ColumnId id : kept) {
    items.push_back(ProjectItem{Col(id, registry_->TypeOf(id)), id});
  }
  // Occasionally add a computed arithmetic column over a numeric input.
  if (rng_->Bernoulli(0.25)) {
    std::vector<ColumnId> numeric;
    for (ColumnId id : cols) {
      ValueType t = registry_->TypeOf(id);
      if (t == ValueType::kInt64 || t == ValueType::kDouble) {
        numeric.push_back(id);
      }
    }
    if (!numeric.empty()) {
      ColumnId base = rng_->PickOne(numeric);
      ExprPtr expr = Arith(rng_->Bernoulli(0.5) ? ArithOp::kAdd : ArithOp::kMul,
                           Col(base, registry_->TypeOf(base)),
                           LitInt(rng_->UniformInt(1, 9)));
      ColumnId id = registry_->Allocate(
          "expr" + std::to_string(agg_counter_++), expr->type());
      items.push_back(ProjectItem{std::move(expr), id});
    }
  }
  return Canonical(
      std::make_shared<ProjectOp>(std::move(input), std::move(items)));
}

LogicalOpPtr TreeBuilder::RandomGroupBy(LogicalOpPtr input) {
  std::vector<ColumnId> cols = input->OutputColumns();
  LogicalProps props = DeriveTreeProps(*input);
  ColumnSet group_set;

  // Bias 1: over a join, include the left equi-join columns (needed by the
  // Group-By push-below-join rule).
  if (options_.bias_groupby_join_cols &&
      input->kind() == LogicalOpKind::kJoin && rng_->Bernoulli(0.7)) {
    const auto& join = static_cast<const JoinOp&>(*input);
    if (join.predicate() != nullptr &&
        (join.join_kind() == JoinKind::kInner ||
         join.join_kind() == JoinKind::kLeftOuter)) {
      ColumnSet left_cols, right_cols;
      for (ColumnId id : join.child(0)->OutputColumns()) left_cols.insert(id);
      for (ColumnId id : join.child(1)->OutputColumns()) right_cols.insert(id);
      EquiJoinInfo equi =
          ExtractEquiJoin(join.predicate(), left_cols, right_cols);
      for (const auto& [l, r] : equi.pairs) group_set.insert(l);
    }
  }
  // Bias 2: sometimes group on a key (enables group-by-on-key elimination).
  if (options_.bias_groupby_keys && rng_->Bernoulli(0.25)) {
    for (const ColumnSet& key : props.keys) {
      if (!key.empty() && key.size() <= 2) {
        group_set.insert(key.begin(), key.end());
        break;
      }
    }
  }
  int extra = static_cast<int>(rng_->UniformInt(group_set.empty() ? 1 : 0, 2));
  for (int i = 0; i < extra; ++i) group_set.insert(rng_->PickOne(cols));

  // Aggregates: 0-2, over numeric columns; COUNT(*) always available.
  std::vector<ColumnId> numeric;
  for (ColumnId id : cols) {
    if (group_set.count(id) > 0) continue;
    ValueType t = registry_->TypeOf(id);
    if (t == ValueType::kInt64 || t == ValueType::kDouble) {
      numeric.push_back(id);
    }
  }
  std::vector<AggregateItem> aggs;
  int n_aggs = static_cast<int>(rng_->UniformInt(0, 2));
  for (int i = 0; i < n_aggs; ++i) {
    AggregateCall call;
    if (numeric.empty() || rng_->Bernoulli(0.3)) {
      call.kind = AggKind::kCountStar;
    } else {
      static constexpr AggKind kKinds[] = {AggKind::kSum, AggKind::kMin,
                                           AggKind::kMax, AggKind::kAvg,
                                           AggKind::kCount};
      call.kind = kKinds[rng_->PickIndex(5)];
      ColumnId arg = rng_->PickOne(numeric);
      call.arg = Col(arg, registry_->TypeOf(arg));
    }
    ColumnId id = registry_->Allocate("agg" + std::to_string(agg_counter_++),
                                      call.ResultType());
    aggs.push_back(AggregateItem{std::move(call), id});
  }
  std::vector<ColumnId> group_cols(group_set.begin(), group_set.end());
  if (group_cols.empty() && aggs.empty()) {
    // Degenerate; group on one column to keep the operator meaningful.
    group_cols.push_back(rng_->PickOne(cols));
  }
  return Canonical(std::make_shared<GroupByAggOp>(
      std::move(input), std::move(group_cols), std::move(aggs)));
}

LogicalOpPtr TreeBuilder::RandomJoin(JoinKind kind, LogicalOpPtr left,
                                     LogicalOpPtr right) {
  std::vector<ColumnId> lcols = left->OutputColumns();
  std::vector<ColumnId> rcols = right->OutputColumns();
  LogicalProps rprops = DeriveTreeProps(*right);

  // Candidate equi pairs, preferring a right column that is a key of the
  // right input (PK-FK-shaped joins enable the duplicate-sensitive rules).
  std::vector<std::pair<ColumnId, ColumnId>> key_pairs, other_pairs;
  for (ColumnId r : rcols) {
    ValueType rt = registry_->TypeOf(r);
    if (rt == ValueType::kBool) continue;
    bool is_key = rprops.HasKeyWithin({r});
    for (ColumnId l : lcols) {
      if (registry_->TypeOf(l) != rt) continue;
      if (is_key) {
        key_pairs.emplace_back(l, r);
      } else {
        other_pairs.emplace_back(l, r);
      }
    }
  }
  ExprPtr pred;
  const auto* pool = &key_pairs;
  if (!options_.bias_key_joins) {
    // Unbiased: pool all candidate pairs together.
    key_pairs.insert(key_pairs.end(), other_pairs.begin(), other_pairs.end());
  } else if (key_pairs.empty() ||
             (!other_pairs.empty() && rng_->Bernoulli(0.3))) {
    pool = &other_pairs;
  }
  if (pool->empty()) pool = &other_pairs;
  if (!pool->empty()) {
    auto [l, r] = rng_->PickOne(*pool);
    pred = Eq(Col(l, registry_->TypeOf(l)), Col(r, registry_->TypeOf(r)));
    // Occasionally add a residual range conjunct.
    if (rng_->Bernoulli(0.15)) {
      std::vector<ColumnId> all = lcols;
      all.insert(all.end(), rcols.begin(), rcols.end());
      pred = And(pred, RandomConjunct(all));
    }
  }
  // pred may stay nullptr (cross join) when no compatible pair exists.
  return Canonical(std::make_shared<JoinOp>(kind, std::move(left),
                                            std::move(right),
                                            std::move(pred)));
}

LogicalOpPtr TreeBuilder::RandomUnionAll(LogicalOpPtr left,
                                         LogicalOpPtr right) {
  std::vector<ColumnId> lcols = left->OutputColumns();
  std::vector<ColumnId> rcols = right->OutputColumns();

  // Coerce the right side to the left side's positional type signature.
  std::vector<ProjectItem> right_items;
  std::vector<bool> used(rcols.size(), false);
  bool right_is_identity = lcols.size() == rcols.size();
  for (size_t i = 0; i < lcols.size(); ++i) {
    ValueType want = registry_->TypeOf(lcols[i]);
    int found = -1;
    for (size_t j = 0; j < rcols.size(); ++j) {
      if (!used[j] && registry_->TypeOf(rcols[j]) == want) {
        found = static_cast<int>(j);
        break;
      }
    }
    if (found >= 0) {
      used[static_cast<size_t>(found)] = true;
      right_items.push_back(
          ProjectItem{Col(rcols[static_cast<size_t>(found)], want),
                      rcols[static_cast<size_t>(found)]});
      if (static_cast<size_t>(found) != i) right_is_identity = false;
    } else {
      ExprPtr filler;
      switch (want) {
        case ValueType::kInt64:
          filler = LitInt(rng_->UniformInt(0, 9));
          break;
        case ValueType::kDouble:
          filler = LitDouble(0.0);
          break;
        case ValueType::kString:
          filler = LitString("filler");
          break;
        case ValueType::kBool:
          filler = Lit(Value::Bool(false));
          break;
      }
      ColumnId id = registry_->Allocate(
          "u_fill" + std::to_string(agg_counter_++), want);
      right_items.push_back(ProjectItem{std::move(filler), id});
      right_is_identity = false;
    }
  }
  LogicalOpPtr coerced =
      right_is_identity
          ? std::move(right)
          : std::make_shared<ProjectOp>(std::move(right),
                                        std::move(right_items));

  std::vector<ColumnId> output_ids;
  for (ColumnId id : lcols) {
    output_ids.push_back(registry_->Allocate(
        "u" + std::to_string(agg_counter_++), registry_->TypeOf(id)));
  }
  return Canonical(std::make_shared<UnionAllOp>(
      std::move(left), std::move(coerced), std::move(output_ids)));
}

LogicalOpPtr TreeBuilder::RandomDistinct(LogicalOpPtr input) {
  // Distinct over a narrow projection is more interesting (and more likely
  // to actually deduplicate) than over all columns.
  if (input->OutputColumns().size() > 3 && rng_->Bernoulli(0.6)) {
    input = RandomProject(std::move(input));
  }
  return Canonical(std::make_shared<DistinctOp>(std::move(input)));
}

LogicalOpPtr TreeBuilder::Canonical(LogicalOpPtr node) const {
  if (options_.interner == nullptr) return node;
  return options_.interner->Intern(node);
}

LogicalOpPtr TreeBuilder::ApplyRandomOperator(LogicalOpPtr input) {
  double roll = rng_->UniformDouble(0.0, 1.0);
  if (roll < 0.30) return RandomSelect(std::move(input));
  if (roll < 0.42) return RandomProject(std::move(input));
  if (roll < 0.67) {
    static constexpr JoinKind kKinds[] = {
        JoinKind::kInner, JoinKind::kInner, JoinKind::kInner,
        JoinKind::kLeftOuter, JoinKind::kLeftOuter, JoinKind::kLeftSemi,
        JoinKind::kLeftAnti};
    JoinKind kind = kKinds[rng_->PickIndex(7)];
    LogicalOpPtr other = RandomGet();
    if (rng_->Bernoulli(0.5)) {
      return RandomJoin(kind, std::move(input), std::move(other));
    }
    if (kind == JoinKind::kLeftSemi || kind == JoinKind::kLeftAnti) {
      kind = JoinKind::kInner;  // keep the grown tree's columns visible
    }
    return RandomJoin(kind, std::move(other), std::move(input));
  }
  if (roll < 0.82) return RandomGroupBy(std::move(input));
  if (roll < 0.90) {
    LogicalOpPtr other = RandomGet();
    if (rng_->Bernoulli(0.5)) other = RandomSelect(std::move(other));
    return RandomUnionAll(std::move(input), std::move(other));
  }
  return RandomDistinct(std::move(input));
}

}  // namespace qtf
