#include "qgen/generation.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"
#include "sql/render.h"

namespace qtf {

const char* GenerationMethodToString(GenerationMethod method) {
  switch (method) {
    case GenerationMethod::kRandom:
      return "RANDOM";
    case GenerationMethod::kPattern:
      return "PATTERN";
  }
  return "?";
}

namespace {

bool ContainsAll(const RuleIdSet& rule_set, const std::vector<RuleId>& targets) {
  for (RuleId id : targets) {
    if (rule_set.count(id) == 0) return false;
  }
  return true;
}

}  // namespace

Result<GenerationOutcome> TargetedQueryGenerator::Generate(
    const std::vector<RuleId>& targets, const GenerationConfig& config) {
  std::vector<PatternNodePtr> patterns;
  if (config.method == GenerationMethod::kPattern) {
    QTF_CHECK(targets.size() == 1 || targets.size() == 2)
        << "PATTERN generation supports singleton rules and rule pairs";
    if (targets.size() == 1) {
      patterns.push_back(optimizer_->rules().rule(targets[0]).pattern());
    } else {
      // Rule pairs: compose the two patterns (Section 3.2) and try the
      // composites smallest-first, approximating "pick the query with the
      // least number of operators".
      patterns = ComposePatterns(optimizer_->rules().rule(targets[0]).pattern(),
                                 optimizer_->rules().rule(targets[1]).pattern());
      std::stable_sort(patterns.begin(), patterns.end(),
                       [](const PatternNodePtr& a, const PatternNodePtr& b) {
                         return a->Size() < b->Size();
                       });
    }
  }
  return RunTrials(targets, config, patterns, /*require_relevant=*/false);
}

Result<GenerationOutcome> TargetedQueryGenerator::GenerateRelevant(
    RuleId target, const GenerationConfig& config) {
  std::vector<PatternNodePtr> patterns;
  if (config.method == GenerationMethod::kPattern) {
    patterns.push_back(optimizer_->rules().rule(target).pattern());
  }
  return RunTrials({target}, config, patterns, /*require_relevant=*/true);
}

Result<GenerationOutcome> TargetedQueryGenerator::RunTrials(
    const std::vector<RuleId>& targets, const GenerationConfig& config,
    const std::vector<PatternNodePtr>& patterns, bool require_relevant) {
  GenerationOutcome outcome;
  obs::PhaseSpan span(optimizer_->metrics(), "qgen.generate");
  obs::Counter* trial_counter = config.method == GenerationMethod::kRandom
                                    ? trials_random_
                                    : trials_pattern_;
  auto start = std::chrono::steady_clock::now();

  // Trial queries are canonicalized through the optimizer's interner as
  // they are built: candidates re-generated across trials (and the many
  // shared Get/Select subtrees among them) collapse to pointer-shared,
  // pre-fingerprinted nodes before Optimize() ever sees them.
  TreeBuilderOptions builder_options = config.builder_options;
  builder_options.interner = optimizer_->interner();
  RandomQueryGenerator random_gen(catalog_, config.seed, {}, builder_options);
  PatternInstantiator instantiator(catalog_, config.seed ^ 0x9e3779b9,
                                   builder_options);
  Rng knob_rng(config.seed ^ 0x51237);

  OptimizerOptions trial_options;
  trial_options.cancel = config.cancel;
  trial_options.budget = config.budget;

  for (int trial = 0; trial < config.max_trials; ++trial) {
    if (config.cancel.cancelled()) {
      return Status::Cancelled("query generation cancelled");
    }
    Query candidate;
    if (config.method == GenerationMethod::kRandom) {
      candidate = random_gen.Generate();
    } else {
      const PatternNodePtr& pattern =
          patterns[static_cast<size_t>(trial) % patterns.size()];
      int extra = config.extra_ops > 0
                      ? static_cast<int>(
                            knob_rng.UniformInt(0, config.extra_ops))
                      : 0;
      candidate = instantiator.Instantiate(*pattern, extra);
    }
    ++outcome.trials;
    trial_counter->Increment();
    auto result = optimizer_->Optimize(candidate, trial_options);
    if (!result.ok()) {
      // Unplannable (or budget-starved, or faulted) candidates are just
      // misses; only cancellation interrupts the run.
      if (result.status().code() == StatusCode::kCancelled) {
        return result.status();
      }
      continue;
    }
    if (!ContainsAll(result->exercised_rules, targets)) continue;

    if (require_relevant) {
      // The rule is relevant iff turning it off changes the plan.
      relevance_probes_->Increment();
      OptimizerOptions options = trial_options;
      options.disabled_rules.insert(targets[0]);
      auto restricted = optimizer_->Optimize(candidate, options);
      if (!restricted.ok()) {
        if (restricted.status().code() == StatusCode::kCancelled) {
          return restricted.status();
        }
        continue;
      }
      if (PhysicalTreeEquals(*result->plan, *restricted->plan)) continue;
    }

    outcome.success = true;
    outcome.query = candidate;
    outcome.sql = GenerateSql(candidate);
    outcome.rule_set = result->exercised_rules;
    outcome.cost = result->cost;
    outcome.operator_count = CountOps(*candidate.root);
    break;
  }

  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (outcome.success) {
    successes_->Increment();
    trials_to_success_->Observe(static_cast<double>(outcome.trials));
  } else {
    failures_->Increment();
  }
  generation_seconds_->Observe(outcome.seconds);
  return outcome;
}

}  // namespace qtf
