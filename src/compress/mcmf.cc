#include "compress/mcmf.h"

#include <deque>
#include <limits>

#include "common/check.h"

namespace qtf {

MinCostMaxFlow::MinCostMaxFlow(int node_count)
    : node_count_(node_count),
      graph_(static_cast<size_t>(node_count)) {}

int MinCostMaxFlow::AddEdge(int from, int to, double capacity, double cost) {
  QTF_CHECK(from >= 0 && from < node_count_ && to >= 0 && to < node_count_);
  Edge forward{to, capacity, cost,
               static_cast<int>(graph_[static_cast<size_t>(to)].size())};
  Edge backward{from, 0.0, -cost,
                static_cast<int>(graph_[static_cast<size_t>(from)].size())};
  graph_[static_cast<size_t>(from)].push_back(forward);
  graph_[static_cast<size_t>(to)].push_back(backward);
  edge_refs_.emplace_back(from,
                          static_cast<int>(graph_[static_cast<size_t>(from)]
                                               .size()) -
                              1);
  return static_cast<int>(edge_refs_.size()) - 1;
}

MinCostMaxFlow::FlowResult MinCostMaxFlow::Solve(int source, int sink) {
  FlowResult result;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kEps = 1e-12;

  while (true) {
    // SPFA shortest path by cost on the residual graph.
    std::vector<double> dist(static_cast<size_t>(node_count_), kInf);
    std::vector<int> prev_node(static_cast<size_t>(node_count_), -1);
    std::vector<int> prev_edge(static_cast<size_t>(node_count_), -1);
    std::vector<bool> in_queue(static_cast<size_t>(node_count_), false);
    std::deque<int> queue;
    dist[static_cast<size_t>(source)] = 0.0;
    queue.push_back(source);
    in_queue[static_cast<size_t>(source)] = true;

    while (!queue.empty()) {
      int u = queue.front();
      queue.pop_front();
      in_queue[static_cast<size_t>(u)] = false;
      for (size_t i = 0; i < graph_[static_cast<size_t>(u)].size(); ++i) {
        const Edge& edge = graph_[static_cast<size_t>(u)][i];
        if (edge.capacity <= kEps) continue;
        double candidate = dist[static_cast<size_t>(u)] + edge.cost;
        if (candidate + kEps < dist[static_cast<size_t>(edge.to)]) {
          dist[static_cast<size_t>(edge.to)] = candidate;
          prev_node[static_cast<size_t>(edge.to)] = u;
          prev_edge[static_cast<size_t>(edge.to)] = static_cast<int>(i);
          if (!in_queue[static_cast<size_t>(edge.to)]) {
            queue.push_back(edge.to);
            in_queue[static_cast<size_t>(edge.to)] = true;
          }
        }
      }
    }
    if (dist[static_cast<size_t>(sink)] == kInf) break;

    // Bottleneck along the path.
    double bottleneck = kInf;
    for (int v = sink; v != source;
         v = prev_node[static_cast<size_t>(v)]) {
      const Edge& edge =
          graph_[static_cast<size_t>(prev_node[static_cast<size_t>(v)])]
                [static_cast<size_t>(prev_edge[static_cast<size_t>(v)])];
      bottleneck = std::min(bottleneck, edge.capacity);
    }
    // Augment.
    for (int v = sink; v != source;
         v = prev_node[static_cast<size_t>(v)]) {
      Edge& edge =
          graph_[static_cast<size_t>(prev_node[static_cast<size_t>(v)])]
                [static_cast<size_t>(prev_edge[static_cast<size_t>(v)])];
      edge.capacity -= bottleneck;
      graph_[static_cast<size_t>(edge.to)][static_cast<size_t>(edge.reverse)]
          .capacity += bottleneck;
    }
    result.max_flow += bottleneck;
    result.total_cost += bottleneck * dist[static_cast<size_t>(sink)];
  }
  return result;
}

double MinCostMaxFlow::flow_on(int edge_id) const {
  QTF_CHECK(edge_id >= 0 &&
            static_cast<size_t>(edge_id) < edge_refs_.size());
  const auto& [node, index] = edge_refs_[static_cast<size_t>(edge_id)];
  const Edge& forward =
      graph_[static_cast<size_t>(node)][static_cast<size_t>(index)];
  // Flow = reverse edge's residual capacity.
  return graph_[static_cast<size_t>(forward.to)]
               [static_cast<size_t>(forward.reverse)]
                   .capacity;
}

}  // namespace qtf
