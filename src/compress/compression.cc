#include "compress/compression.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "obs/trace.h"

namespace qtf {

namespace {

/// Flattens an assignment into its (target, query) edge list, the frontier
/// a cost computation is about to consume.
std::vector<std::pair<int, int>> AssignmentEdges(
    const std::vector<std::vector<int>>& assignment) {
  std::vector<std::pair<int, int>> edges;
  for (size_t t = 0; t < assignment.size(); ++t) {
    for (int q : assignment[t]) {
      edges.emplace_back(static_cast<int>(t), q);
    }
  }
  return edges;
}

/// Registry counter for `name`, or nullptr when the provider is a test
/// fake without an optimizer (compression must keep working uninstrumented).
obs::Counter* RunCounter(EdgeCostProvider* provider, const char* name) {
  obs::MetricsRegistry* metrics = provider->metrics();
  return metrics != nullptr ? metrics->counter(name) : nullptr;
}

/// EdgeCost with the degradation step applied: kUnavailable (a fault that
/// survived its retries) becomes the NodeCost(q) lower-bound estimate and
/// is counted; every other error propagates.
Result<double> EdgeCostOrEstimate(EdgeCostProvider* provider, int t, int q,
                                  obs::Counter* estimated_metric,
                                  int* estimated_edges) {
  Result<double> edge = provider->EdgeCost(t, q);
  if (edge.ok() || edge.status().code() != StatusCode::kUnavailable) {
    return edge;
  }
  if (estimated_metric != nullptr) estimated_metric->Increment();
  if (estimated_edges != nullptr) ++*estimated_edges;
  return provider->NodeCost(q);
}

}  // namespace

Result<double> SolutionCost(EdgeCostProvider* provider,
                            const std::vector<std::vector<int>>& assignment,
                            int* estimated_edges) {
  // Warm the cache in parallel (no-op without a pool); the serial loop
  // below then only sums, in a thread-count-independent order.
  QTF_RETURN_NOT_OK(provider->Prefetch(AssignmentEdges(assignment)));
  obs::Counter* estimated =
      RunCounter(provider, "qtf.robustness.estimated_edges");
  std::set<int> used_queries;
  double total = 0.0;
  for (size_t t = 0; t < assignment.size(); ++t) {
    for (int q : assignment[t]) {
      used_queries.insert(q);
      QTF_ASSIGN_OR_RETURN(
          double edge, EdgeCostOrEstimate(provider, static_cast<int>(t), q,
                                          estimated, estimated_edges));
      total += edge;
    }
  }
  for (int q : used_queries) total += provider->NodeCost(q);
  return total;
}

Result<CompressionSolution> CompressBaseline(EdgeCostProvider* provider) {
  obs::PhaseSpan span(provider->metrics(), "compress.baseline");
  if (obs::Counter* runs = RunCounter(provider, "qtf.compress.baseline_runs")) {
    runs->Increment();
  }
  const TestSuite& suite = provider->suite();
  CompressionSolution solution;
  solution.assignment = suite.per_target;
  int64_t calls_before = provider->optimizer_calls();
  QTF_RETURN_NOT_OK(provider->Prefetch(AssignmentEdges(suite.per_target)));
  obs::Counter* estimated =
      RunCounter(provider, "qtf.robustness.estimated_edges");
  // BASELINE pays every query's Plan(q) per target (no sharing).
  double total = 0.0;
  for (size_t t = 0; t < suite.per_target.size(); ++t) {
    for (int q : suite.per_target[t]) {
      QTF_ASSIGN_OR_RETURN(
          double edge, EdgeCostOrEstimate(provider, static_cast<int>(t), q,
                                          estimated,
                                          &solution.estimated_edges));
      total += provider->NodeCost(q) + edge;
    }
  }
  solution.total_cost = total;
  solution.optimizer_calls = provider->optimizer_calls() - calls_before;
  return solution;
}

Result<CompressionSolution> CompressSetMultiCover(EdgeCostProvider* provider,
                                                  int k) {
  obs::PhaseSpan span(provider->metrics(), "compress.smc");
  if (obs::Counter* runs = RunCounter(provider, "qtf.compress.smc_runs")) {
    runs->Increment();
  }
  const TestSuite& suite = provider->suite();
  int64_t calls_before = provider->optimizer_calls();
  const int n_targets = static_cast<int>(suite.targets.size());
  const int n_queries = static_cast<int>(suite.queries.size());

  // coverage[t] = queries already assigned to target t.
  std::vector<std::vector<int>> assignment(
      static_cast<size_t>(n_targets));
  // Per query, the targets it can still help (membership recomputed from
  // rule sets once).
  std::vector<std::vector<int>> covers(static_cast<size_t>(n_queries));
  for (int t = 0; t < n_targets; ++t) {
    for (int q : suite.CandidatesFor(t)) {
      covers[static_cast<size_t>(q)].push_back(t);
    }
  }
  std::vector<bool> picked(static_cast<size_t>(n_queries), false);

  auto remaining_targets_covered = [&](int q) {
    int count = 0;
    for (int t : covers[static_cast<size_t>(q)]) {
      if (static_cast<int>(assignment[static_cast<size_t>(t)].size()) < k) {
        ++count;
      }
    }
    return count;
  };
  auto done = [&]() {
    for (int t = 0; t < n_targets; ++t) {
      if (static_cast<int>(assignment[static_cast<size_t>(t)].size()) < k) {
        return false;
      }
    }
    return true;
  };

  while (!done()) {
    int best_query = -1;
    double best_benefit = -1.0;
    for (int q = 0; q < n_queries; ++q) {
      if (picked[static_cast<size_t>(q)]) continue;
      int covered = remaining_targets_covered(q);
      if (covered == 0) continue;
      double benefit = static_cast<double>(covered) /
                       std::max(provider->NodeCost(q), 1e-9);
      if (benefit > best_benefit) {
        best_benefit = benefit;
        best_query = q;
      }
    }
    if (best_query < 0) {
      return Status::Internal(
          "SetMultiCover: no query can cover a remaining target");
    }
    picked[static_cast<size_t>(best_query)] = true;
    for (int t : covers[static_cast<size_t>(best_query)]) {
      auto& assigned = assignment[static_cast<size_t>(t)];
      if (static_cast<int>(assigned.size()) < k) {
        assigned.push_back(best_query);
      }
    }
  }

  CompressionSolution solution;
  solution.assignment = std::move(assignment);
  QTF_ASSIGN_OR_RETURN(solution.total_cost,
                       SolutionCost(provider, solution.assignment,
                                    &solution.estimated_edges));
  solution.optimizer_calls = provider->optimizer_calls() - calls_before;
  return solution;
}

Result<CompressionSolution> CompressTopKIndependent(
    EdgeCostProvider* provider, int k, bool exploit_monotonicity) {
  obs::PhaseSpan span(provider->metrics(), "compress.topk");
  if (obs::Counter* runs = RunCounter(provider, "qtf.compress.topk_runs")) {
    runs->Increment();
  }
  obs::Counter* pruned =
      exploit_monotonicity
          ? RunCounter(provider, "qtf.compress.monotonicity_pruned")
          : nullptr;
  const TestSuite& suite = provider->suite();
  int64_t calls_before = provider->optimizer_calls();
  const int n_targets = static_cast<int>(suite.targets.size());

  CompressionSolution solution;
  solution.assignment.resize(static_cast<size_t>(n_targets));

  // Candidate lists (sorted up front so the prefetch wave below sees the
  // same scan order the per-target loop consumes).
  std::vector<std::vector<int>> candidates(static_cast<size_t>(n_targets));
  for (int t = 0; t < n_targets; ++t) {
    std::vector<int>& cands = candidates[static_cast<size_t>(t)];
    cands = suite.CandidatesFor(t);
    if (static_cast<int>(cands.size()) < k) {
      return Status::Internal("target " + std::to_string(t) +
                              " has fewer than k candidate queries");
    }
    if (exploit_monotonicity) {
      // Increasing node-cost order; since Cost(q) <= Cost(q, ¬target),
      // once the k-th best edge cost is below the next node cost no later
      // candidate can improve the set.
      std::sort(cands.begin(), cands.end(), [&](int a, int b) {
        return provider->NodeCost(a) < provider->NodeCost(b);
      });
    }
  }

  // Prefetch the frontier every scan is guaranteed to consume: the full
  // candidate edge set for the exhaustive scan, and only the first k edges
  // per target under monotonicity — the pruned scan always pays those
  // (the heap must fill before the stopping rule can fire) and anything
  // beyond them might be skipped, so prefetching more would break the
  // "identical optimizer_calls()" guarantee.
  {
    std::vector<std::pair<int, int>> wave;
    for (int t = 0; t < n_targets; ++t) {
      const std::vector<int>& cands = candidates[static_cast<size_t>(t)];
      const size_t prefix =
          exploit_monotonicity ? static_cast<size_t>(k) : cands.size();
      for (size_t i = 0; i < prefix && i < cands.size(); ++i) {
        wave.emplace_back(t, cands[i]);
      }
    }
    QTF_RETURN_NOT_OK(provider->Prefetch(wave));
  }

  obs::Counter* degraded_metric =
      RunCounter(provider, "qtf.robustness.degraded_targets");
  // Per-target degradation flags, each written only by its own scan task.
  std::vector<char> degraded(static_cast<size_t>(n_targets), 0);

  // Each target's scan is an independent task; within one target the scan
  // stays sequential because the pruning decision for candidate i+1 needs
  // the edge cost of candidate i.
  auto scan_target = [&](int t) -> Result<std::vector<int>> {
    // (edge cost, query) max-heap of the current k best edges.
    std::priority_queue<std::pair<double, int>> best;
    const std::vector<int>& cands = candidates[static_cast<size_t>(t)];
    // Candidates whose edge cost stayed kUnavailable after retries: the
    // scan skips them and, if the heap comes up short, falls back to them
    // in node-cost order (an SMC-style assignment — still a valid k-subset,
    // its edge costs estimated later by SolutionCost).
    std::vector<int> unavailable;
    for (size_t i = 0; i < cands.size(); ++i) {
      const int q = cands[i];
      if (exploit_monotonicity && static_cast<int>(best.size()) == k &&
          provider->NodeCost(q) >= best.top().first) {
        // Every remaining candidate is an edge cost the pruning saved.
        if (pruned != nullptr) {
          pruned->Increment(static_cast<int64_t>(cands.size() - i));
        }
        break;
      }
      Result<double> edge = provider->EdgeCost(t, q);
      if (!edge.ok()) {
        if (edge.status().code() == StatusCode::kUnavailable) {
          unavailable.push_back(q);
          continue;
        }
        return edge.status();
      }
      best.emplace(*edge, q);
      if (static_cast<int>(best.size()) > k) best.pop();
    }
    std::vector<int> assigned;
    assigned.reserve(static_cast<size_t>(k));
    while (!best.empty()) {
      assigned.push_back(best.top().second);
      best.pop();
    }
    if (!unavailable.empty()) {
      degraded[static_cast<size_t>(t)] = 1;
      if (degraded_metric != nullptr) degraded_metric->Increment();
    }
    if (static_cast<int>(assigned.size()) < k) {
      // Too few scorable edges: degrade to node-cost order over the
      // skipped candidates until the target has its k queries back.
      std::sort(unavailable.begin(), unavailable.end(), [&](int a, int b) {
        return provider->NodeCost(a) < provider->NodeCost(b);
      });
      for (int q : unavailable) {
        if (static_cast<int>(assigned.size()) >= k) break;
        assigned.push_back(q);
      }
    }
    if (static_cast<int>(assigned.size()) < k) {
      return Status::Internal("target " + std::to_string(t) +
                              " could not be assigned k queries");
    }
    std::sort(assigned.begin(), assigned.end());
    return assigned;
  };

  std::vector<Result<std::vector<int>>> per_target =
      ParallelFor(provider->thread_pool(), n_targets, scan_target);
  for (int t = 0; t < n_targets; ++t) {
    QTF_ASSIGN_OR_RETURN(solution.assignment[static_cast<size_t>(t)],
                         std::move(per_target[static_cast<size_t>(t)]));
    if (degraded[static_cast<size_t>(t)] != 0) ++solution.degraded_targets;
  }

  QTF_ASSIGN_OR_RETURN(solution.total_cost,
                       SolutionCost(provider, solution.assignment,
                                    &solution.estimated_edges));
  solution.optimizer_calls = provider->optimizer_calls() - calls_before;
  return solution;
}

namespace {

/// DFS over per-target k-subsets of candidates, sharing node costs through
/// the running set of used queries.
class ExactSearch {
 public:
  ExactSearch(EdgeCostProvider* provider, int k, int64_t max_states)
      : provider_(provider), k_(k), max_states_(max_states) {}

  Result<CompressionSolution> Run() {
    const TestSuite& suite = provider_->suite();
    const int n_targets = static_cast<int>(suite.targets.size());
    candidates_.resize(static_cast<size_t>(n_targets));
    for (int t = 0; t < n_targets; ++t) {
      candidates_[static_cast<size_t>(t)] = suite.CandidatesFor(t);
    }
    current_.assign(static_cast<size_t>(n_targets), {});
    QTF_RETURN_NOT_OK(Dfs(0, 0.0));
    if (states_ >= max_states_) {
      return Status::Unimplemented("exact solver exceeded its state budget");
    }
    if (best_.assignment.empty()) {
      return Status::Internal("exact solver found no feasible solution");
    }
    return best_;
  }

 private:
  Status Dfs(int t, double edge_cost_so_far) {
    if (++states_ >= max_states_) return Status::OK();
    const int n_targets = static_cast<int>(candidates_.size());
    if (t == n_targets) {
      double total = edge_cost_so_far;
      std::set<int> used;
      for (const auto& per_target : current_) {
        used.insert(per_target.begin(), per_target.end());
      }
      for (int q : used) total += provider_->NodeCost(q);
      if (best_.assignment.empty() || total < best_.total_cost) {
        best_.assignment = current_;
        best_.total_cost = total;
      }
      return Status::OK();
    }
    // Choose k-subsets of candidates_[t] via combination enumeration.
    const std::vector<int>& cands = candidates_[static_cast<size_t>(t)];
    std::vector<int> combo;
    return EnumerateCombos(t, cands, 0, &combo, edge_cost_so_far);
  }

  Status EnumerateCombos(int t, const std::vector<int>& cands, size_t start,
                         std::vector<int>* combo, double edge_cost_so_far) {
    if (states_ >= max_states_) return Status::OK();
    if (static_cast<int>(combo->size()) == k_) {
      double added = 0.0;
      for (int q : *combo) {
        QTF_ASSIGN_OR_RETURN(double edge, provider_->EdgeCost(t, q));
        added += edge;
      }
      current_[static_cast<size_t>(t)] = *combo;
      QTF_RETURN_NOT_OK(Dfs(t + 1, edge_cost_so_far + added));
      current_[static_cast<size_t>(t)].clear();
      return Status::OK();
    }
    if (start >= cands.size()) return Status::OK();
    if (cands.size() - start <
        static_cast<size_t>(k_) - combo->size()) {
      return Status::OK();
    }
    combo->push_back(cands[start]);
    QTF_RETURN_NOT_OK(
        EnumerateCombos(t, cands, start + 1, combo, edge_cost_so_far));
    combo->pop_back();
    return EnumerateCombos(t, cands, start + 1, combo, edge_cost_so_far);
  }

  EdgeCostProvider* provider_;
  int k_;
  int64_t max_states_;
  int64_t states_ = 0;
  std::vector<std::vector<int>> candidates_;
  std::vector<std::vector<int>> current_;
  CompressionSolution best_;
};

}  // namespace

Result<CompressionSolution> CompressExact(EdgeCostProvider* provider, int k,
                                          int64_t max_states) {
  obs::PhaseSpan span(provider->metrics(), "compress.exact");
  if (obs::Counter* runs = RunCounter(provider, "qtf.compress.exact_runs")) {
    runs->Increment();
  }
  int64_t calls_before = provider->optimizer_calls();
  ExactSearch search(provider, k, max_states);
  QTF_ASSIGN_OR_RETURN(CompressionSolution solution, search.Run());
  solution.optimizer_calls = provider->optimizer_calls() - calls_before;
  return solution;
}

}  // namespace qtf
