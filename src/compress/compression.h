#ifndef QTF_COMPRESS_COMPRESSION_H_
#define QTF_COMPRESS_COMPRESSION_H_

#include <vector>

#include "compress/edge_costs.h"

namespace qtf {

/// A test-suite compression solution: for every target, the (exactly k)
/// queries mapped to it, plus the execution cost of the whole suite.
///
/// Cost accounting follows Section 4.1: each distinct query's Plan(q) is
/// executed once (node cost counted once across all targets sharing it) and
/// every (target, query) edge pays Cost(q, ¬target).
struct CompressionSolution {
  std::vector<std::vector<int>> assignment;  // per target: query indices
  double total_cost = 0.0;
  /// Optimizer invocations this algorithm spent on edge costs.
  int64_t optimizer_calls = 0;
  /// Graceful degradation accounting (docs/robustness.md): targets whose
  /// scan saw edge costs that stayed kUnavailable after retries (their
  /// assignment fell back to node-cost order), and edges whose cost in
  /// `total_cost` is the NodeCost lower-bound estimate rather than a
  /// computed Cost(q, ¬target). Both zero on a fault-free run.
  int degraded_targets = 0;
  int estimated_edges = 0;
};

/// Recomputes a solution's total cost from its assignment (shared node
/// costs + edge costs). Used internally and by tests.
///
/// Edges whose cost is kUnavailable (a transient fault that survived its
/// retries) are estimated by NodeCost(q) — a lower bound, since
/// Cost(q) <= Cost(q, ¬target) — instead of failing the whole solution;
/// each estimate increments `qtf.robustness.estimated_edges` and
/// `*estimated_edges` when non-null. All other errors propagate.
Result<double> SolutionCost(EdgeCostProvider* provider,
                            const std::vector<std::vector<int>>& assignment,
                            int* estimated_edges = nullptr);

/// BASELINE (Section 2.3): each target executes its own k generated queries
/// independently — no sharing of Plan(q) across targets, per the paper's
/// TotalCost formula.
Result<CompressionSolution> CompressBaseline(EdgeCostProvider* provider);

/// SetMultiCover greedy (Section 5.1, Figure 5): repeatedly picks the query
/// with the highest (remaining targets covered / Cost(q)) benefit. Ignores
/// edge costs when deciding — its known weakness on rule pairs (Figure 12).
Result<CompressionSolution> CompressSetMultiCover(EdgeCostProvider* provider,
                                                  int k);

/// TopKIndependent (Section 5.2, Figure 6): per target, the k queries with
/// the lowest Cost(q, ¬target). Factor-2 approximation of the optimum.
/// With `exploit_monotonicity` (Section 5.3.1), candidates are scanned in
/// increasing Cost(q) order and the scan stops once Cost(q) can no longer
/// beat the current k-th best edge (Cost(q) <= Cost(q, ¬target)), saving
/// optimizer invocations without changing the result.
Result<CompressionSolution> CompressTopKIndependent(EdgeCostProvider* provider,
                                                    int k,
                                                    bool exploit_monotonicity);

/// Exact exponential solver for small instances (used by tests to validate
/// the TopKIndependent approximation bound and measure greedy gaps).
/// `max_states` bounds the search; returns Unimplemented when exceeded.
Result<CompressionSolution> CompressExact(EdgeCostProvider* provider, int k,
                                          int64_t max_states = 2000000);

}  // namespace qtf

#endif  // QTF_COMPRESS_COMPRESSION_H_
