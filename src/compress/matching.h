#ifndef QTF_COMPRESS_MATCHING_H_
#define QTF_COMPRESS_MATCHING_H_

#include "compress/compression.h"

namespace qtf {

/// The Section-7 variant of test-suite compression: queries are NOT shared
/// across targets — each query is mapped to at most one target and every
/// target still receives exactly k distinct queries. As the paper notes,
/// this version reduces to (b-)matching and is solvable in polynomial time;
/// we solve it as a min-cost max-flow problem.
///
/// Each (target, query) assignment pays Cost(q) + Cost(q, ¬target) since no
/// Plan(q) execution can be shared. Returns InvalidArgument if the suite
/// cannot supply k disjoint queries per target.
Result<CompressionSolution> CompressNoSharingMatching(
    EdgeCostProvider* provider, int k);

}  // namespace qtf

#endif  // QTF_COMPRESS_MATCHING_H_
