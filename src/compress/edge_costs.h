#ifndef QTF_COMPRESS_EDGE_COSTS_H_
#define QTF_COMPRESS_EDGE_COSTS_H_

#include <map>
#include <utility>

#include "common/result.h"
#include "optimizer/optimizer.h"
#include "qgen/test_suite.h"

namespace qtf {

/// Lazily computes and caches the bipartite graph's costs (paper Section
/// 4.1): node costs Cost(q) and edge costs Cost(q, ¬target). Every cache
/// miss is one optimizer invocation — the quantity the monotonicity
/// optimization (Section 5.3.1, Figure 14) saves.
class EdgeCostProvider {
 public:
  EdgeCostProvider(Optimizer* optimizer, const TestSuite* suite)
      : optimizer_(optimizer), suite_(suite) {
    QTF_CHECK(optimizer_ != nullptr && suite_ != nullptr);
  }
  virtual ~EdgeCostProvider() = default;
  EdgeCostProvider(const EdgeCostProvider&) = delete;
  EdgeCostProvider& operator=(const EdgeCostProvider&) = delete;

  /// Cost(q) with all rules enabled. Taken from the suite's recorded
  /// optimization (no extra optimizer call). Virtual so tests can fake the
  /// cost structure (e.g. the paper's Example 1).
  virtual double NodeCost(int q) const {
    return suite_->queries[static_cast<size_t>(q)].cost;
  }

  /// Cost(q, ¬target): optimizes q with the target's rules disabled.
  /// Cached per (target, query).
  virtual Result<double> EdgeCost(int target, int q);

  /// Optimizer invocations spent on edge costs so far.
  int64_t optimizer_calls() const { return optimizer_calls_; }

  const TestSuite& suite() const { return *suite_; }

 protected:
  /// For test fakes that override the cost surface.
  explicit EdgeCostProvider(const TestSuite* suite)
      : optimizer_(nullptr), suite_(suite) {
    QTF_CHECK(suite_ != nullptr);
  }

 private:
  Optimizer* optimizer_;
  const TestSuite* suite_;
  std::map<std::pair<int, int>, double> cache_;
  int64_t optimizer_calls_ = 0;
};

}  // namespace qtf

#endif  // QTF_COMPRESS_EDGE_COSTS_H_
