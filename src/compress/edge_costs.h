#ifndef QTF_COMPRESS_EDGE_COSTS_H_
#define QTF_COMPRESS_EDGE_COSTS_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "qgen/test_suite.h"

namespace qtf {

/// Hash for (target, query) edge keys: packs both 32-bit ints into one
/// word and applies the splitmix64 finalizer, so neighbouring indices
/// spread across buckets.
struct EdgeKeyHash {
  size_t operator()(const std::pair<int, int>& key) const {
    uint64_t x =
        (static_cast<uint64_t>(static_cast<uint32_t>(key.first)) << 32) |
        static_cast<uint64_t>(static_cast<uint32_t>(key.second));
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

/// Lazily computes and caches the bipartite graph's costs (paper Section
/// 4.1): node costs Cost(q) and edge costs Cost(q, ¬target). Every cache
/// miss is one optimizer invocation — the quantity the monotonicity
/// optimization (Section 5.3.1, Figure 14) saves.
///
/// Concurrency: attach a ThreadPool (set_thread_pool) and the compression
/// algorithms fan independent edge computations across it — Prefetch()
/// batches a frontier of edges, and CompressTopKIndependent runs whole
/// per-target scans as tasks. The cache is mutex-protected and the
/// invocation counter atomic, so results and optimizer_calls() are
/// identical to the serial path (concurrent in-tree callers always request
/// distinct keys; see docs/parallelism.md).
class EdgeCostProvider {
 public:
  EdgeCostProvider(Optimizer* optimizer, const TestSuite* suite)
      : optimizer_(optimizer), suite_(suite) {
    QTF_CHECK(optimizer_ != nullptr && suite_ != nullptr);
    obs::MetricsRegistry* metrics = optimizer_->metrics();
    metric_calls_ = metrics->counter("qtf.edge_cost.optimizer_calls");
    metric_cache_hits_ = metrics->counter("qtf.edge_cost.cache_hits");
    metric_prefetch_waves_ = metrics->counter("qtf.edge_cost.prefetch_waves");
    metric_prefetch_edges_ = metrics->counter("qtf.edge_cost.prefetch_edges");
    metric_retries_ = metrics->counter("qtf.robustness.retries");
    metric_retry_exhausted_ = metrics->counter("qtf.robustness.retry_exhausted");
  }
  virtual ~EdgeCostProvider() = default;
  EdgeCostProvider(const EdgeCostProvider&) = delete;
  EdgeCostProvider& operator=(const EdgeCostProvider&) = delete;

  /// Optional worker pool for Prefetch() and the parallel compression
  /// paths. Borrowed, not owned; nullptr (the default) keeps everything
  /// serial.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Cost(q) with all rules enabled. Taken from the suite's recorded
  /// optimization (no extra optimizer call). Virtual so tests can fake the
  /// cost structure (e.g. the paper's Example 1).
  virtual double NodeCost(int q) const {
    return suite_->queries[static_cast<size_t>(q)].cost;
  }

  /// Cancellation token checked before each edge computation and passed
  /// into every optimizer invocation. kCancelled results are never cached.
  void set_cancellation(CancellationToken cancel) {
    cancel_ = std::move(cancel);
  }
  const CancellationToken& cancellation() const { return cancel_; }

  /// Cost(q, ¬target): optimizes q with the target's rules disabled.
  /// Cached per (target, query). Thread-safe for distinct keys; concurrent
  /// calls for the same uncached key would both count an optimizer
  /// invocation (use Prefetch, which dedupes, for batches).
  ///
  /// Robustness: transient (kUnavailable) failures — injected at the
  /// `prefetch.task` site or surfaced by the optimizer — are retried with
  /// the optimizer's RetryPolicy (bounded exponential backoff, seeded
  /// jitter). The final outcome, success or failure, is memoized, so
  /// serial and parallel scans of the same edges observe identical
  /// optimizer_calls(); only kCancelled is never memoized.
  virtual Result<double> EdgeCost(int target, int q);

  /// Batch API: computes and caches every listed (target, query) edge,
  /// fanning the misses across the thread pool. Duplicates and
  /// already-cached edges are skipped, so optimizer_calls() advances
  /// exactly as a serial scan of the same edges would. Without a pool this
  /// is a no-op (the caller's serial loop computes lazily as before).
  /// Implemented on top of the virtual EdgeCost, so fakes stay consistent.
  ///
  /// Edges whose computation failed with kUnavailable (after retries) are
  /// tolerated — the failure is memoized and the caller's lazy path decides
  /// how to degrade (see CompressTopKIndependent). kCancelled and every
  /// other error are propagated.
  Status Prefetch(const std::vector<std::pair<int, int>>& edges);

  /// Optimizer invocations spent on edge costs so far, by this provider.
  /// The same events also land in the registry's cumulative
  /// `qtf.edge_cost.optimizer_calls` counter; this per-instance view exists
  /// because experiments create a fresh provider per run and compare deltas.
  int64_t optimizer_calls() const { return calls_.Value(); }

  const TestSuite& suite() const { return *suite_; }

  /// Registry the provider reports into (the optimizer's); null for test
  /// fakes built without an optimizer. Compression algorithms use this for
  /// their phase spans and run counters.
  obs::MetricsRegistry* metrics() const {
    return optimizer_ != nullptr ? optimizer_->metrics() : nullptr;
  }

 protected:
  /// For test fakes that override the cost surface.
  explicit EdgeCostProvider(const TestSuite* suite)
      : optimizer_(nullptr), suite_(suite) {
    QTF_CHECK(suite_ != nullptr);
  }

 private:
  Optimizer* optimizer_;
  const TestSuite* suite_;
  ThreadPool* pool_ = nullptr;
  CancellationToken cancel_;
  mutable std::mutex mu_;  // guards cache_
  /// Failure memoization: the cached value is the whole Result, so a
  /// permanently-unavailable edge costs the same number of optimizer calls
  /// whether it is hit by Prefetch, a lazy scan, or both.
  std::unordered_map<std::pair<int, int>, Result<double>, EdgeKeyHash> cache_;
  obs::Counter calls_;  // per-instance; see optimizer_calls()
  obs::Counter* metric_calls_ = nullptr;  // registry mirrors (null in fakes)
  obs::Counter* metric_cache_hits_ = nullptr;
  obs::Counter* metric_prefetch_waves_ = nullptr;
  obs::Counter* metric_prefetch_edges_ = nullptr;
  obs::Counter* metric_retries_ = nullptr;  // qtf.robustness.retries
  obs::Counter* metric_retry_exhausted_ = nullptr;
};

}  // namespace qtf

#endif  // QTF_COMPRESS_EDGE_COSTS_H_
