#include "compress/matching.h"

#include <cmath>
#include <map>

#include "compress/mcmf.h"
#include "obs/trace.h"

namespace qtf {

Result<CompressionSolution> CompressNoSharingMatching(
    EdgeCostProvider* provider, int k) {
  obs::PhaseSpan span(provider->metrics(), "compress.matching");
  if (obs::MetricsRegistry* metrics = provider->metrics()) {
    metrics->counter("qtf.compress.matching_runs")->Increment();
  }
  const TestSuite& suite = provider->suite();
  int64_t calls_before = provider->optimizer_calls();
  const int n_targets = static_cast<int>(suite.targets.size());
  const int n_queries = static_cast<int>(suite.queries.size());

  // Nodes: 0 = source, 1..n_targets = targets,
  // n_targets+1..n_targets+n_queries = queries, last = sink.
  const int source = 0;
  const int sink = n_targets + n_queries + 1;
  MinCostMaxFlow flow(sink + 1);

  for (int t = 0; t < n_targets; ++t) {
    flow.AddEdge(source, 1 + t, static_cast<double>(k), 0.0);
  }
  std::map<int, std::pair<int, int>> edge_to_pair;  // flow edge -> (t, q)
  for (int t = 0; t < n_targets; ++t) {
    for (int q : suite.CandidatesFor(t)) {
      QTF_ASSIGN_OR_RETURN(double edge_cost, provider->EdgeCost(t, q));
      int id = flow.AddEdge(1 + t, 1 + n_targets + q, 1.0,
                            provider->NodeCost(q) + edge_cost);
      edge_to_pair[id] = {t, q};
    }
  }
  for (int q = 0; q < n_queries; ++q) {
    flow.AddEdge(1 + n_targets + q, sink, 1.0, 0.0);
  }

  MinCostMaxFlow::FlowResult result = flow.Solve(source, sink);
  double needed = static_cast<double>(n_targets) * k;
  if (std::abs(result.max_flow - needed) > 1e-6) {
    return Status::InvalidArgument(
        "test suite cannot supply k disjoint queries per target "
        "(matched " +
        std::to_string(result.max_flow) + " of " + std::to_string(needed) +
        ")");
  }

  CompressionSolution solution;
  solution.assignment.resize(static_cast<size_t>(n_targets));
  for (const auto& [edge_id, pair] : edge_to_pair) {
    if (flow.flow_on(edge_id) > 0.5) {
      solution.assignment[static_cast<size_t>(pair.first)].push_back(
          pair.second);
    }
  }
  solution.total_cost = result.total_cost;
  solution.optimizer_calls = provider->optimizer_calls() - calls_before;
  return solution;
}

}  // namespace qtf
