#ifndef QTF_COMPRESS_MCMF_H_
#define QTF_COMPRESS_MCMF_H_

#include <vector>

#include "common/result.h"

namespace qtf {

/// Minimum-cost maximum-flow on a directed graph (successive shortest
/// augmenting paths with SPFA potentials; suitable for the small assignment
/// graphs of the Section-7 test-suite variant). Costs may be any finite
/// doubles as long as no negative cycle exists.
class MinCostMaxFlow {
 public:
  explicit MinCostMaxFlow(int node_count);

  /// Adds a directed edge and returns its id (usable with flow_on()).
  int AddEdge(int from, int to, double capacity, double cost);

  struct FlowResult {
    double max_flow = 0.0;
    double total_cost = 0.0;
  };

  /// Computes min-cost max-flow from `source` to `sink`.
  FlowResult Solve(int source, int sink);

  /// Flow routed through edge `edge_id` after Solve().
  double flow_on(int edge_id) const;

 private:
  struct Edge {
    int to;
    double capacity;
    double cost;
    int reverse;  // index of the reverse edge in graph_[to]
  };

  int node_count_;
  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<int, int>> edge_refs_;  // id -> (node, index)
};

}  // namespace qtf

#endif  // QTF_COMPRESS_MCMF_H_
