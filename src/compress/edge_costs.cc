#include "compress/edge_costs.h"

#include <unordered_set>

namespace qtf {

Result<double> EdgeCostProvider::EdgeCost(int target, int q) {
  const auto key = std::make_pair(target, q);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (metric_cache_hits_ != nullptr) metric_cache_hits_->Increment();
      return it->second;
    }
  }

  OptimizerOptions options;
  for (RuleId id : suite_->targets[static_cast<size_t>(target)].rules) {
    options.disabled_rules.insert(id);
  }
  calls_.Increment();
  if (metric_calls_ != nullptr) metric_calls_->Increment();
  QTF_ASSIGN_OR_RETURN(
      OptimizeResult result,
      optimizer_->Optimize(suite_->queries[static_cast<size_t>(q)].query,
                           options));

  std::lock_guard<std::mutex> lock(mu_);
  cache_.emplace(key, result.cost);
  return result.cost;
}

Status EdgeCostProvider::Prefetch(
    const std::vector<std::pair<int, int>>& edges) {
  if (pool_ == nullptr || pool_->num_threads() <= 1) return Status::OK();

  // Dedupe and drop already-cached edges so every submitted task is
  // exactly one optimizer invocation the serial path would also make.
  std::vector<std::pair<int, int>> todo;
  todo.reserve(edges.size());
  {
    std::unordered_set<std::pair<int, int>, EdgeKeyHash> seen;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& edge : edges) {
      if (cache_.count(edge) > 0) continue;
      if (!seen.insert(edge).second) continue;
      todo.push_back(edge);
    }
  }
  if (todo.empty()) return Status::OK();
  if (metric_prefetch_waves_ != nullptr) {
    metric_prefetch_waves_->Increment();
    metric_prefetch_edges_->Increment(static_cast<int64_t>(todo.size()));
  }

  std::vector<Status> statuses = ParallelFor(
      pool_, static_cast<int>(todo.size()), [this, &todo](int i) {
        const auto& edge = todo[static_cast<size_t>(i)];
        return this->EdgeCost(edge.first, edge.second).status();
      });
  for (const Status& status : statuses) {
    QTF_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

}  // namespace qtf
