#include "compress/edge_costs.h"

#include <unordered_set>

namespace qtf {

Result<double> EdgeCostProvider::EdgeCost(int target, int q) {
  const auto key = std::make_pair(target, q);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (metric_cache_hits_ != nullptr) metric_cache_hits_->Increment();
      return it->second;
    }
  }
  if (cancel_.cancelled()) {
    return Status::Cancelled("edge cost computation cancelled");
  }

  OptimizerOptions options;
  options.cancel = cancel_;
  for (RuleId id : suite_->targets[static_cast<size_t>(target)].rules) {
    options.disabled_rules.insert(id);
  }

  FaultInjector* injector = optimizer_->fault_injector();
  const RetryPolicy& policy = optimizer_->retry_policy();
  const int max_attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  Result<double> outcome =
      Status::Internal("edge cost retry loop made no attempt");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // The salt decorrelates deterministic fault decisions per edge and per
    // attempt: without it a rule-site fault would reproduce identically on
    // every retry and retrying would be pointless.
    const uint64_t salt = FaultInjector::EdgeKey(target, q, attempt);
    options.fault_salt = salt;

    Status attempt_status = Status::OK();
    if (injector != nullptr && injector->enabled()) {
      // The task infrastructure itself can fail before the search starts.
      attempt_status = injector->Probe(fault_sites::kPrefetchTask, salt);
    }
    if (attempt_status.ok()) {
      calls_.Increment();
      if (metric_calls_ != nullptr) metric_calls_->Increment();
      Result<OptimizeResult> result = optimizer_->Optimize(
          suite_->queries[static_cast<size_t>(q)].query, options);
      if (result.ok()) {
        outcome = result->cost;
        break;
      }
      attempt_status = result.status();
    }
    if (attempt_status.code() == StatusCode::kCancelled) {
      // Cancellation is caller intent, not edge state: never memoized.
      return attempt_status;
    }
    outcome = attempt_status;
    if (!IsTransient(attempt_status)) break;
    if (attempt + 1 >= max_attempts) {
      if (metric_retry_exhausted_ != nullptr) {
        metric_retry_exhausted_->Increment();
      }
      break;
    }
    if (metric_retries_ != nullptr) metric_retries_->Increment();
    const double jitter =
        injector != nullptr
            ? injector->JitterFactor(salt, attempt, policy.jitter_fraction)
            : 1.0;
    SleepForBackoff(policy, attempt, jitter);
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(key, outcome);
  (void)inserted;
  return it->second;
}

Status EdgeCostProvider::Prefetch(
    const std::vector<std::pair<int, int>>& edges) {
  if (pool_ == nullptr || pool_->num_threads() <= 1) return Status::OK();
  if (cancel_.cancelled()) {
    return Status::Cancelled("edge prefetch cancelled");
  }

  // Dedupe and drop already-cached edges so every submitted task is
  // exactly one optimizer invocation the serial path would also make.
  std::vector<std::pair<int, int>> todo;
  todo.reserve(edges.size());
  {
    std::unordered_set<std::pair<int, int>, EdgeKeyHash> seen;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& edge : edges) {
      if (cache_.count(edge) > 0) continue;
      if (!seen.insert(edge).second) continue;
      todo.push_back(edge);
    }
  }
  if (todo.empty()) return Status::OK();
  if (metric_prefetch_waves_ != nullptr) {
    metric_prefetch_waves_->Increment();
    metric_prefetch_edges_->Increment(static_cast<int64_t>(todo.size()));
  }

  std::vector<Status> statuses = ParallelFor(
      pool_, static_cast<int>(todo.size()), [this, &todo](int i) {
        const auto& edge = todo[static_cast<size_t>(i)];
        return this->EdgeCost(edge.first, edge.second).status();
      });
  // Unavailable edges are memoized failures the lazy path degrades around
  // (see CompressTopKIndependent); everything else aborts the batch, with
  // cancellation reported first so callers see intent over incident.
  for (const Status& status : statuses) {
    if (status.code() == StatusCode::kCancelled) return status;
  }
  for (const Status& status : statuses) {
    if (!status.ok() && status.code() != StatusCode::kUnavailable) {
      return status;
    }
  }
  return Status::OK();
}

}  // namespace qtf
