#include "compress/edge_costs.h"

namespace qtf {

Result<double> EdgeCostProvider::EdgeCost(int target, int q) {
  auto key = std::make_pair(target, q);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  OptimizerOptions options;
  for (RuleId id : suite_->targets[static_cast<size_t>(target)].rules) {
    options.disabled_rules.insert(id);
  }
  ++optimizer_calls_;
  QTF_ASSIGN_OR_RETURN(
      OptimizeResult result,
      optimizer_->Optimize(suite_->queries[static_cast<size_t>(q)].query,
                           options));
  cache_[key] = result.cost;
  return result.cost;
}

}  // namespace qtf
