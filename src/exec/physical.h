#ifndef QTF_EXEC_PHYSICAL_H_
#define QTF_EXEC_PHYSICAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "expr/aggregate.h"
#include "expr/expr.h"
#include "logical/ops.h"

namespace qtf {

/// Physical (executable) operators, produced by the optimizer's
/// implementation rules and consumed by the executor.
enum class PhysicalOpKind {
  kTableScan = 0,
  kFilter,
  kCompute,        // projection / computed columns
  kNlJoin,         // nested-loops join, any join kind, any predicate
  kHashJoin,       // hash join on equi-columns + residual predicate
  kHashAggregate,
  kStreamAggregate,  // requires input sorted on group columns
  kSort,
  kConcat,         // UNION ALL
  kHashDistinct,
};

const char* PhysicalOpKindToString(PhysicalOpKind kind);

class PhysicalOp;
using PhysicalOpPtr = std::shared_ptr<const PhysicalOp>;

/// Immutable physical operator node.
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;
  PhysicalOp(const PhysicalOp&) = delete;
  PhysicalOp& operator=(const PhysicalOp&) = delete;

  PhysicalOpKind kind() const { return kind_; }
  const std::vector<PhysicalOpPtr>& children() const { return children_; }
  const PhysicalOpPtr& child(size_t i) const {
    QTF_CHECK(i < children_.size());
    return children_[i];
  }

  /// Output column ids in row order.
  virtual std::vector<ColumnId> OutputColumns() const = 0;

  virtual std::string Describe(const ColumnNameResolver* resolver) const = 0;

  /// Node-local structural identity (kind + arguments, not children).
  virtual bool LocalEquals(const PhysicalOp& other) const = 0;

 protected:
  PhysicalOp(PhysicalOpKind kind, std::vector<PhysicalOpPtr> children)
      : kind_(kind), children_(std::move(children)) {}

 private:
  PhysicalOpKind kind_;
  std::vector<PhysicalOpPtr> children_;
};

class TableScanOp final : public PhysicalOp {
 public:
  TableScanOp(std::shared_ptr<const TableDef> table,
              std::vector<ColumnId> columns)
      : PhysicalOp(PhysicalOpKind::kTableScan, {}),
        table_(std::move(table)),
        columns_(std::move(columns)) {}

  const TableDef& table() const { return *table_; }
  std::vector<ColumnId> OutputColumns() const override { return columns_; }
  std::string Describe(const ColumnNameResolver* resolver) const override;
  bool LocalEquals(const PhysicalOp& other) const override;

 private:
  std::shared_ptr<const TableDef> table_;
  std::vector<ColumnId> columns_;
};

class FilterOp final : public PhysicalOp {
 public:
  FilterOp(PhysicalOpPtr input, ExprPtr predicate)
      : PhysicalOp(PhysicalOpKind::kFilter, {std::move(input)}),
        predicate_(std::move(predicate)) {}

  const ExprPtr& predicate() const { return predicate_; }
  std::vector<ColumnId> OutputColumns() const override {
    return child(0)->OutputColumns();
  }
  std::string Describe(const ColumnNameResolver* resolver) const override;
  bool LocalEquals(const PhysicalOp& other) const override;

 private:
  ExprPtr predicate_;
};

class ComputeOp final : public PhysicalOp {
 public:
  ComputeOp(PhysicalOpPtr input, std::vector<ProjectItem> items)
      : PhysicalOp(PhysicalOpKind::kCompute, {std::move(input)}),
        items_(std::move(items)) {}

  const std::vector<ProjectItem>& items() const { return items_; }
  std::vector<ColumnId> OutputColumns() const override;
  std::string Describe(const ColumnNameResolver* resolver) const override;
  bool LocalEquals(const PhysicalOp& other) const override;

 private:
  std::vector<ProjectItem> items_;
};

class NlJoinOp final : public PhysicalOp {
 public:
  NlJoinOp(JoinKind join_kind, PhysicalOpPtr left, PhysicalOpPtr right,
           ExprPtr predicate)
      : PhysicalOp(PhysicalOpKind::kNlJoin,
                   {std::move(left), std::move(right)}),
        join_kind_(join_kind),
        predicate_(std::move(predicate)) {}

  JoinKind join_kind() const { return join_kind_; }
  const ExprPtr& predicate() const { return predicate_; }
  std::vector<ColumnId> OutputColumns() const override;
  std::string Describe(const ColumnNameResolver* resolver) const override;
  bool LocalEquals(const PhysicalOp& other) const override;

 private:
  JoinKind join_kind_;
  ExprPtr predicate_;  // nullptr == TRUE
};

class HashJoinOp final : public PhysicalOp {
 public:
  HashJoinOp(JoinKind join_kind, PhysicalOpPtr left, PhysicalOpPtr right,
             std::vector<std::pair<ColumnId, ColumnId>> equi_pairs,
             ExprPtr residual)
      : PhysicalOp(PhysicalOpKind::kHashJoin,
                   {std::move(left), std::move(right)}),
        join_kind_(join_kind),
        equi_pairs_(std::move(equi_pairs)),
        residual_(std::move(residual)) {
    QTF_CHECK(!equi_pairs_.empty()) << "hash join requires equi-columns";
  }

  JoinKind join_kind() const { return join_kind_; }
  const std::vector<std::pair<ColumnId, ColumnId>>& equi_pairs() const {
    return equi_pairs_;
  }
  const ExprPtr& residual() const { return residual_; }
  std::vector<ColumnId> OutputColumns() const override;
  std::string Describe(const ColumnNameResolver* resolver) const override;
  bool LocalEquals(const PhysicalOp& other) const override;

 private:
  JoinKind join_kind_;
  std::vector<std::pair<ColumnId, ColumnId>> equi_pairs_;
  ExprPtr residual_;  // nullptr == TRUE
};

class HashAggregateOp final : public PhysicalOp {
 public:
  HashAggregateOp(PhysicalOpPtr input, std::vector<ColumnId> group_cols,
                  std::vector<AggregateItem> aggregates)
      : PhysicalOp(PhysicalOpKind::kHashAggregate, {std::move(input)}),
        group_cols_(std::move(group_cols)),
        aggregates_(std::move(aggregates)) {}

  const std::vector<ColumnId>& group_cols() const { return group_cols_; }
  const std::vector<AggregateItem>& aggregates() const { return aggregates_; }
  std::vector<ColumnId> OutputColumns() const override;
  std::string Describe(const ColumnNameResolver* resolver) const override;
  bool LocalEquals(const PhysicalOp& other) const override;

 private:
  std::vector<ColumnId> group_cols_;
  std::vector<AggregateItem> aggregates_;
};

/// Aggregation over input sorted on the group columns (the optimizer
/// inserts the required Sort below).
class StreamAggregateOp final : public PhysicalOp {
 public:
  StreamAggregateOp(PhysicalOpPtr input, std::vector<ColumnId> group_cols,
                    std::vector<AggregateItem> aggregates)
      : PhysicalOp(PhysicalOpKind::kStreamAggregate, {std::move(input)}),
        group_cols_(std::move(group_cols)),
        aggregates_(std::move(aggregates)) {}

  const std::vector<ColumnId>& group_cols() const { return group_cols_; }
  const std::vector<AggregateItem>& aggregates() const { return aggregates_; }
  std::vector<ColumnId> OutputColumns() const override;
  std::string Describe(const ColumnNameResolver* resolver) const override;
  bool LocalEquals(const PhysicalOp& other) const override;

 private:
  std::vector<ColumnId> group_cols_;
  std::vector<AggregateItem> aggregates_;
};

class SortOp final : public PhysicalOp {
 public:
  SortOp(PhysicalOpPtr input, std::vector<ColumnId> sort_cols)
      : PhysicalOp(PhysicalOpKind::kSort, {std::move(input)}),
        sort_cols_(std::move(sort_cols)) {}

  const std::vector<ColumnId>& sort_cols() const { return sort_cols_; }
  std::vector<ColumnId> OutputColumns() const override {
    return child(0)->OutputColumns();
  }
  std::string Describe(const ColumnNameResolver* resolver) const override;
  bool LocalEquals(const PhysicalOp& other) const override;

 private:
  std::vector<ColumnId> sort_cols_;
};

class ConcatOp final : public PhysicalOp {
 public:
  /// `left_cols` / `right_cols` give the branch column that feeds each
  /// output position: output_ids[k] is fed by left_cols[k] / right_cols[k].
  /// The optimizer may hand us physical children whose column ORDER differs
  /// from the logical union branches (e.g. after join commutativity), so
  /// executors remap each child's columns by id through these lists rather
  /// than concatenating positionally.
  ConcatOp(PhysicalOpPtr left, PhysicalOpPtr right,
           std::vector<ColumnId> output_ids, std::vector<ColumnId> left_cols,
           std::vector<ColumnId> right_cols)
      : PhysicalOp(PhysicalOpKind::kConcat, {std::move(left), std::move(right)}),
        output_ids_(std::move(output_ids)),
        left_cols_(std::move(left_cols)),
        right_cols_(std::move(right_cols)) {}

  /// Positional convenience: each child already emits output position k as
  /// its own column k (direct construction in tests and examples).
  ConcatOp(PhysicalOpPtr left, PhysicalOpPtr right,
           std::vector<ColumnId> output_ids)
      : PhysicalOp(PhysicalOpKind::kConcat, {std::move(left), std::move(right)}),
        output_ids_(std::move(output_ids)),
        left_cols_(child(0)->OutputColumns()),
        right_cols_(child(1)->OutputColumns()) {}

  const std::vector<ColumnId>& left_cols() const { return left_cols_; }
  const std::vector<ColumnId>& right_cols() const { return right_cols_; }

  std::vector<ColumnId> OutputColumns() const override { return output_ids_; }
  std::string Describe(const ColumnNameResolver* resolver) const override;
  bool LocalEquals(const PhysicalOp& other) const override;

 private:
  std::vector<ColumnId> output_ids_;
  std::vector<ColumnId> left_cols_;
  std::vector<ColumnId> right_cols_;
};

class HashDistinctOp final : public PhysicalOp {
 public:
  explicit HashDistinctOp(PhysicalOpPtr input)
      : PhysicalOp(PhysicalOpKind::kHashDistinct, {std::move(input)}) {}

  std::vector<ColumnId> OutputColumns() const override {
    return child(0)->OutputColumns();
  }
  std::string Describe(const ColumnNameResolver* resolver) const override;
  bool LocalEquals(const PhysicalOp& other) const override;
};

/// Multi-line indented rendering of a physical plan.
std::string PhysicalTreeToString(const PhysicalOp& root,
                                 const ColumnNameResolver* resolver);

/// Deep structural equality. Used to skip execution when Plan(q) and
/// Plan(q, ¬R) are identical (paper Section 2.3, footnote 1).
bool PhysicalTreeEquals(const PhysicalOp& a, const PhysicalOp& b);

}  // namespace qtf

#endif  // QTF_EXEC_PHYSICAL_H_
