#include "exec/physical.h"

#include "common/str_util.h"
#include "expr/analysis.h"

namespace qtf {

const char* PhysicalOpKindToString(PhysicalOpKind kind) {
  switch (kind) {
    case PhysicalOpKind::kTableScan:
      return "TableScan";
    case PhysicalOpKind::kFilter:
      return "Filter";
    case PhysicalOpKind::kCompute:
      return "Compute";
    case PhysicalOpKind::kNlJoin:
      return "NlJoin";
    case PhysicalOpKind::kHashJoin:
      return "HashJoin";
    case PhysicalOpKind::kHashAggregate:
      return "HashAggregate";
    case PhysicalOpKind::kStreamAggregate:
      return "StreamAggregate";
    case PhysicalOpKind::kSort:
      return "Sort";
    case PhysicalOpKind::kConcat:
      return "Concat";
    case PhysicalOpKind::kHashDistinct:
      return "HashDistinct";
  }
  return "?";
}

namespace {

std::string ColumnList(const std::vector<ColumnId>& cols,
                       const ColumnNameResolver* resolver) {
  std::vector<std::string> names;
  for (ColumnId id : cols) {
    names.push_back(resolver != nullptr ? (*resolver)(id)
                                        : "c" + std::to_string(id));
  }
  return Join(names, ", ");
}

}  // namespace

std::string TableScanOp::Describe(const ColumnNameResolver*) const {
  return "TableScan(" + table_->name() + ")";
}

bool TableScanOp::LocalEquals(const PhysicalOp& other) const {
  if (other.kind() != PhysicalOpKind::kTableScan) return false;
  const auto& o = static_cast<const TableScanOp&>(other);
  return table_->name() == o.table_->name() && columns_ == o.columns_;
}

std::string FilterOp::Describe(const ColumnNameResolver* resolver) const {
  return "Filter(" + predicate_->ToString(resolver) + ")";
}

bool FilterOp::LocalEquals(const PhysicalOp& other) const {
  if (other.kind() != PhysicalOpKind::kFilter) return false;
  return ExprEquals(*predicate_,
                    *static_cast<const FilterOp&>(other).predicate_);
}

std::vector<ColumnId> ComputeOp::OutputColumns() const {
  std::vector<ColumnId> out;
  for (const ProjectItem& item : items_) out.push_back(item.id);
  return out;
}

std::string ComputeOp::Describe(const ColumnNameResolver* resolver) const {
  std::vector<std::string> parts;
  for (const ProjectItem& item : items_) {
    parts.push_back(item.expr->ToString(resolver));
  }
  return "Compute(" + Join(parts, ", ") + ")";
}

bool ComputeOp::LocalEquals(const PhysicalOp& other) const {
  if (other.kind() != PhysicalOpKind::kCompute) return false;
  const auto& o = static_cast<const ComputeOp&>(other);
  if (items_.size() != o.items_.size()) return false;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].id != o.items_[i].id ||
        !ExprEquals(*items_[i].expr, *o.items_[i].expr)) {
      return false;
    }
  }
  return true;
}

std::vector<ColumnId> NlJoinOp::OutputColumns() const {
  std::vector<ColumnId> out = child(0)->OutputColumns();
  if (join_kind_ == JoinKind::kInner || join_kind_ == JoinKind::kLeftOuter) {
    std::vector<ColumnId> right = child(1)->OutputColumns();
    out.insert(out.end(), right.begin(), right.end());
  }
  return out;
}

std::string NlJoinOp::Describe(const ColumnNameResolver* resolver) const {
  std::string pred =
      predicate_ == nullptr ? "TRUE" : predicate_->ToString(resolver);
  return std::string("NlJoin[") + JoinKindToString(join_kind_) + "](" + pred +
         ")";
}

bool NlJoinOp::LocalEquals(const PhysicalOp& other) const {
  if (other.kind() != PhysicalOpKind::kNlJoin) return false;
  const auto& o = static_cast<const NlJoinOp&>(other);
  if (join_kind_ != o.join_kind_) return false;
  if ((predicate_ == nullptr) != (o.predicate_ == nullptr)) return false;
  return predicate_ == nullptr || ExprEquals(*predicate_, *o.predicate_);
}

std::vector<ColumnId> HashJoinOp::OutputColumns() const {
  std::vector<ColumnId> out = child(0)->OutputColumns();
  if (join_kind_ == JoinKind::kInner || join_kind_ == JoinKind::kLeftOuter) {
    std::vector<ColumnId> right = child(1)->OutputColumns();
    out.insert(out.end(), right.begin(), right.end());
  }
  return out;
}

std::string HashJoinOp::Describe(const ColumnNameResolver* resolver) const {
  std::vector<std::string> keys;
  for (const auto& [l, r] : equi_pairs_) {
    std::string ln = resolver != nullptr ? (*resolver)(l) : "c" + std::to_string(l);
    std::string rn = resolver != nullptr ? (*resolver)(r) : "c" + std::to_string(r);
    keys.push_back(ln + "=" + rn);
  }
  std::string out = std::string("HashJoin[") + JoinKindToString(join_kind_) +
                    "](" + Join(keys, ", ");
  if (residual_ != nullptr) out += "; " + residual_->ToString(resolver);
  out += ")";
  return out;
}

bool HashJoinOp::LocalEquals(const PhysicalOp& other) const {
  if (other.kind() != PhysicalOpKind::kHashJoin) return false;
  const auto& o = static_cast<const HashJoinOp&>(other);
  if (join_kind_ != o.join_kind_ || equi_pairs_ != o.equi_pairs_) return false;
  if ((residual_ == nullptr) != (o.residual_ == nullptr)) return false;
  return residual_ == nullptr || ExprEquals(*residual_, *o.residual_);
}

namespace {

bool AggregatesEqual(const std::vector<AggregateItem>& a,
                     const std::vector<AggregateItem>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || !AggregateCallEquals(a[i].call, b[i].call)) {
      return false;
    }
  }
  return true;
}

std::string DescribeAgg(const char* name,
                        const std::vector<ColumnId>& group_cols,
                        const std::vector<AggregateItem>& aggregates,
                        const ColumnNameResolver* resolver) {
  std::vector<std::string> aggs;
  for (const AggregateItem& item : aggregates) {
    aggs.push_back(item.call.ToString(resolver));
  }
  return std::string(name) + "(groups=[" + ColumnList(group_cols, resolver) +
         "], aggs=[" + Join(aggs, ", ") + "])";
}

}  // namespace

std::vector<ColumnId> HashAggregateOp::OutputColumns() const {
  std::vector<ColumnId> out = group_cols_;
  for (const AggregateItem& item : aggregates_) out.push_back(item.id);
  return out;
}

std::string HashAggregateOp::Describe(
    const ColumnNameResolver* resolver) const {
  return DescribeAgg("HashAggregate", group_cols_, aggregates_, resolver);
}

bool HashAggregateOp::LocalEquals(const PhysicalOp& other) const {
  if (other.kind() != PhysicalOpKind::kHashAggregate) return false;
  const auto& o = static_cast<const HashAggregateOp&>(other);
  return group_cols_ == o.group_cols_ &&
         AggregatesEqual(aggregates_, o.aggregates_);
}

std::vector<ColumnId> StreamAggregateOp::OutputColumns() const {
  std::vector<ColumnId> out = group_cols_;
  for (const AggregateItem& item : aggregates_) out.push_back(item.id);
  return out;
}

std::string StreamAggregateOp::Describe(
    const ColumnNameResolver* resolver) const {
  return DescribeAgg("StreamAggregate", group_cols_, aggregates_, resolver);
}

bool StreamAggregateOp::LocalEquals(const PhysicalOp& other) const {
  if (other.kind() != PhysicalOpKind::kStreamAggregate) return false;
  const auto& o = static_cast<const StreamAggregateOp&>(other);
  return group_cols_ == o.group_cols_ &&
         AggregatesEqual(aggregates_, o.aggregates_);
}

std::string SortOp::Describe(const ColumnNameResolver* resolver) const {
  return "Sort(" + ColumnList(sort_cols_, resolver) + ")";
}

bool SortOp::LocalEquals(const PhysicalOp& other) const {
  if (other.kind() != PhysicalOpKind::kSort) return false;
  return sort_cols_ == static_cast<const SortOp&>(other).sort_cols_;
}

std::string ConcatOp::Describe(const ColumnNameResolver*) const {
  return "Concat";
}

bool ConcatOp::LocalEquals(const PhysicalOp& other) const {
  if (other.kind() != PhysicalOpKind::kConcat) return false;
  const auto& o = static_cast<const ConcatOp&>(other);
  return output_ids_ == o.output_ids_ && left_cols_ == o.left_cols_ &&
         right_cols_ == o.right_cols_;
}

std::string HashDistinctOp::Describe(const ColumnNameResolver*) const {
  return "HashDistinct";
}

bool HashDistinctOp::LocalEquals(const PhysicalOp& other) const {
  return other.kind() == PhysicalOpKind::kHashDistinct;
}

namespace {

void AppendPhysicalTree(const PhysicalOp& op,
                        const ColumnNameResolver* resolver, int depth,
                        std::string* out) {
  *out += Indent(depth) + op.Describe(resolver) + "\n";
  for (const PhysicalOpPtr& child : op.children()) {
    AppendPhysicalTree(*child, resolver, depth + 1, out);
  }
}

}  // namespace

std::string PhysicalTreeToString(const PhysicalOp& root,
                                 const ColumnNameResolver* resolver) {
  std::string out;
  AppendPhysicalTree(root, resolver, 0, &out);
  return out;
}

bool PhysicalTreeEquals(const PhysicalOp& a, const PhysicalOp& b) {
  if (!a.LocalEquals(b)) return false;
  if (a.children().size() != b.children().size()) return false;
  for (size_t i = 0; i < a.children().size(); ++i) {
    if (!PhysicalTreeEquals(*a.children()[i], *b.children()[i])) return false;
  }
  return true;
}

}  // namespace qtf
