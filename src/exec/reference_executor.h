#ifndef QTF_EXEC_REFERENCE_EXECUTOR_H_
#define QTF_EXEC_REFERENCE_EXECUTOR_H_

#include <cstdint>

#include "common/fault_injection.h"
#include "common/result.h"
#include "exec/physical.h"
#include "exec/result_set.h"
#include "logical/column_registry.h"
#include "storage/database.h"

namespace qtf {

/// Row-at-a-time, fully materializing executor: each operator produces its
/// complete output before the parent runs, and expressions are evaluated by
/// the recursive interpreter in expr/eval.h.
///
/// This was the engine's only executor before the batched columnar
/// Executor (exec/executor.h) replaced it on the hot path. It is kept as
/// the differential-testing oracle (tests/test_exec_batch.cc executes every
/// corpus plan on both engines and compares result bags) and as the
/// baseline that bench_exec_throughput measures speedups against.
class ReferenceExecutor {
 public:
  /// `db` and `registry` must outlive the executor. The registry supplies
  /// column types for NULL-extension in outer joins.
  ReferenceExecutor(const Database* db, const ColumnRegistry* registry)
      : db_(db), registry_(registry) {
    QTF_CHECK(db_ != nullptr && registry_ != nullptr);
  }

  /// Runs the plan and returns its result set.
  Result<ResultSet> Execute(const PhysicalOp& plan);

  /// Attaches a fault injector probed at the `executor.next_batch` site
  /// once per operator materialization (this engine's "batch" is a whole
  /// operator output), keyed by `salt` and the node's visit order within
  /// one Execute call. Node numbering restarts at zero on every Execute, so
  /// a given (salt, plan) faults identically no matter how many plans ran
  /// through this executor before — callers that retry bump `salt` per
  /// attempt to re-roll the decisions (see the salt contract in
  /// testing/correctness.cc).
  void set_fault_injection(const FaultInjector* injector, uint64_t salt) {
    fault_injector_ = injector;
    fault_salt_ = salt;
  }

  /// Total rows produced by all operators across all Execute calls
  /// (monotonic counter for benchmarking).
  int64_t rows_produced() const { return rows_produced_; }

 private:
  Result<std::vector<Row>> ExecuteNode(const PhysicalOp& op);

  const Database* db_;
  const ColumnRegistry* registry_;
  const FaultInjector* fault_injector_ = nullptr;
  uint64_t fault_salt_ = 0;
  int64_t rows_produced_ = 0;
  uint64_t node_seq_ = 0;  // keys executor.next_batch probes; reset per Execute
};

}  // namespace qtf

#endif  // QTF_EXEC_REFERENCE_EXECUTOR_H_
