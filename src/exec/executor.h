#ifndef QTF_EXEC_EXECUTOR_H_
#define QTF_EXEC_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/arena.h"
#include "common/fault_injection.h"
#include "common/result.h"
#include "exec/physical.h"
#include "exec/result_set.h"
#include "expr/program.h"
#include "logical/column_registry.h"
#include "obs/metrics.h"
#include "storage/database.h"

namespace qtf {

namespace exec_internal {
/// One base table columnized for scanning; lanes live in the executor's
/// cache arena, string cells borrow the pinned TableData's rows.
struct ColumnarTable {
  std::shared_ptr<const TableData> pin;
  std::vector<ColumnVector> cols;
  int64_t rows = 0;
};
}  // namespace exec_internal

/// Pull-based batched columnar executor.
///
/// A physical plan is translated into a tree of operator nodes exposing
/// `Init()` / `Next(Batch*)`; data flows between them as fixed-capacity
/// Batches of column vectors (see expr/column_vector.h) instead of one Row
/// at a time. Predicates, projections and aggregate inputs are compiled
/// once per operator into flat EvalPrograms (expr/program.h) executed over
/// whole columns with a selection vector for filters; base tables are
/// columnized once per executor and cached, so scans are lane memcpys.
///
/// All per-query physical state — batch buffers, hash-table chains, build
/// sides, sort runs, aggregation state — is allocated from one Arena
/// (common/arena.h) and freed in a single shot when the next Execute call
/// resets it. `ResultSet` stays the boundary type, so correctness and
/// compression callers are unchanged.
///
/// Fault injection: the `executor.next_batch` site is probed genuinely per
/// batch — once per Next() call on every node — keyed by
/// `salt ^ HashCombine(node_seq, batch_index)`. Node numbering is assigned
/// in plan pre-order and restarts at zero on every Execute, so fault
/// decisions are a pure function of (seed, salt, plan shape, batch index):
/// a reused executor stays deterministic per plan. Callers that retry
/// execution bump `salt` per attempt to re-roll the decisions (the salt
/// contract documented at testing/correctness.cc's AttemptSalt).
///
/// Not thread-safe: use one Executor per thread. A shared, thread-safe
/// EvalProgramCache may be plugged in with set_program_cache so concurrent
/// executors reuse each other's compiled expressions.
class Executor {
 public:
  /// `db` and `registry` must outlive the executor. The registry supplies
  /// column types for every batch layout and for NULL-extension in outer
  /// joins.
  Executor(const Database* db, const ColumnRegistry* registry)
      : db_(db), registry_(registry) {
    QTF_CHECK(db_ != nullptr && registry_ != nullptr);
  }

  /// Runs the plan and returns its result set. Resets the query arena
  /// (releasing the previous call's physical state) before building the
  /// new operator tree.
  Result<ResultSet> Execute(const PhysicalOp& plan);

  /// Attaches a fault injector probed per batch at executor.next_batch;
  /// see the class comment for the key scheme. Borrowed, not owned.
  void set_fault_injection(const FaultInjector* injector, uint64_t salt) {
    fault_injector_ = injector;
    fault_salt_ = salt;
  }

  /// Reports executor work to `metrics` as qtf.exec.* counters:
  /// rows_produced, batches, arena_bytes, eval_cache_{hits,misses} (the
  /// last two only while the executor still owns its program cache).
  /// Borrowed, not owned; pass nullptr to stop reporting.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Replaces the executor-private program cache with a shared one (e.g.
  /// one cache per CorrectnessRunner so Plan(q) and Plan(q, ¬R) share
  /// compiled predicates). Borrowed; must outlive the executor. The caller
  /// owns the shared cache's metrics wiring.
  void set_program_cache(EvalProgramCache* cache) {
    QTF_CHECK(cache != nullptr);
    programs_ = cache;
  }

  /// Rows per batch (default Batch::kDefaultCapacity = 1024). Exposed for
  /// benchmarks and differential tests; must be >= 1.
  void set_batch_capacity(int capacity) {
    QTF_CHECK(capacity >= 1);
    batch_capacity_ = capacity;
  }
  int batch_capacity() const { return batch_capacity_; }

  /// Total rows produced by all operators across all Execute calls
  /// (monotonic; also exported as qtf.exec.rows_produced when a metrics
  /// registry is attached).
  int64_t rows_produced() const { return rows_produced_; }

  /// Bytes handed out by the query arena during the most recent Execute.
  int64_t last_arena_bytes() const { return last_arena_bytes_; }

 private:
  Result<const exec_internal::ColumnarTable*> GetColumnarTable(
      const TableDef& table);

  const Database* db_;
  const ColumnRegistry* registry_;
  const FaultInjector* fault_injector_ = nullptr;
  uint64_t fault_salt_ = 0;
  int batch_capacity_ = Batch::kDefaultCapacity;

  Arena arena_;        // per-query state; reset at the top of every Execute
  Arena cache_arena_;  // executor-lifetime columnar table cache
  std::map<std::string, std::unique_ptr<exec_internal::ColumnarTable>>
      table_cache_;

  EvalProgramCache owned_programs_;
  EvalProgramCache* programs_ = &owned_programs_;

  int64_t rows_produced_ = 0;
  int64_t last_arena_bytes_ = 0;
  obs::Counter* m_rows_ = nullptr;
  obs::Counter* m_batches_ = nullptr;
  obs::Counter* m_arena_bytes_ = nullptr;
};

}  // namespace qtf

#endif  // QTF_EXEC_EXECUTOR_H_
