#ifndef QTF_EXEC_EXECUTOR_H_
#define QTF_EXEC_EXECUTOR_H_

#include <cstdint>

#include "common/fault_injection.h"
#include "common/result.h"
#include "exec/physical.h"
#include "exec/result_set.h"
#include "logical/column_registry.h"
#include "storage/database.h"

namespace qtf {

/// Executes physical plans against an in-memory Database. Operators are
/// materialized (each produces its full output before the parent runs),
/// which is simple and sufficient for correctness testing at test-database
/// scale.
class Executor {
 public:
  /// `db` and `registry` must outlive the executor. The registry supplies
  /// column types for NULL-extension in outer joins.
  Executor(const Database* db, const ColumnRegistry* registry)
      : db_(db), registry_(registry) {
    QTF_CHECK(db_ != nullptr && registry_ != nullptr);
  }

  /// Runs the plan and returns its result set.
  Result<ResultSet> Execute(const PhysicalOp& plan) const;

  /// Attaches a fault injector probed at the `executor.next_batch` site
  /// once per operator materialization, keyed by `salt` and the node's
  /// sequence number within this executor — so a given (salt, plan shape)
  /// faults identically on every run. Borrowed, not owned; callers that
  /// retry execution bump `salt` per attempt to re-roll the decisions.
  void set_fault_injection(const FaultInjector* injector, uint64_t salt) {
    fault_injector_ = injector;
    fault_salt_ = salt;
  }

  /// Total rows produced by all operators across all Execute calls
  /// (monotonic counter for benchmarking).
  int64_t rows_produced() const { return rows_produced_; }

 private:
  Result<std::vector<Row>> ExecuteNode(const PhysicalOp& op) const;

  const Database* db_;
  const ColumnRegistry* registry_;
  const FaultInjector* fault_injector_ = nullptr;
  uint64_t fault_salt_ = 0;
  mutable int64_t rows_produced_ = 0;
  mutable uint64_t node_seq_ = 0;  // keys executor.next_batch probes
};

}  // namespace qtf

#endif  // QTF_EXEC_EXECUTOR_H_
