#include "exec/executor.h"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "expr/eval.h"

namespace qtf {
namespace {

using exec_internal::ColumnarTable;

/// Per-Execute services and accounting shared by all nodes of one plan.
struct ExecContext {
  const ColumnRegistry* registry = nullptr;
  Arena* arena = nullptr;
  EvalProgramCache* programs = nullptr;
  const FaultInjector* injector = nullptr;
  uint64_t salt = 0;
  int capacity = Batch::kDefaultCapacity;
  std::function<Result<const ColumnarTable*>(const TableDef&)> tables;
  int64_t rows = 0;     // rows produced by all operators
  int64_t batches = 0;  // non-empty batches emitted by all operators
};

/// Hash of one row's cells across `keys` columns; pairs with KeysEqual.
uint64_t KeyHash(const std::vector<const ColumnVector*>& keys, int i) {
  uint64_t h = 0x84222325cbf29ce4ULL;
  for (const ColumnVector* c : keys) h = HashCombine(h, c->CellHash(i));
  return h;
}

bool KeysEqual(const std::vector<const ColumnVector*>& a, int i,
               const std::vector<const ColumnVector*>& b, int j) {
  for (size_t k = 0; k < a.size(); ++k) {
    if (!a[k]->CellEquals(i, *b[k], j)) return false;
  }
  return true;
}

/// Open-chaining hash index over row indices 0..N-1, arena-backed. Entries
/// are appended in row order; `linked=false` records a row without making
/// it reachable (hash-join build rows with NULL keys). Grows by doubling
/// the bucket array and relinking, so it serves both the two-phase join
/// build and the incremental group-by/distinct tables.
class HashChains {
 public:
  explicit HashChains(Arena* arena)
      : heads_(MakeArenaVector<int32_t>(arena)),
        next_(MakeArenaVector<int32_t>(arena)),
        hashes_(MakeArenaVector<uint64_t>(arena)),
        linked_(MakeArenaVector<uint8_t>(arena)) {}

  void Reset(int64_t expected_rows) {
    size_t buckets = 16;
    while (static_cast<int64_t>(buckets) < 2 * expected_rows) buckets *= 2;
    heads_.assign(buckets, -1);
    mask_ = buckets - 1;
    next_.clear();
    hashes_.clear();
    linked_.clear();
  }

  int32_t size() const { return static_cast<int32_t>(next_.size()); }

  /// First candidate entry for hash h (walk with NextEntry; callers check
  /// hash_of() and cell equality themselves to visit all matches).
  int32_t First(uint64_t h) const {
    return heads_[static_cast<size_t>(h) & mask_];
  }
  int32_t NextEntry(int32_t j) const {
    return next_[static_cast<size_t>(j)];
  }
  uint64_t hash_of(int32_t j) const { return hashes_[static_cast<size_t>(j)]; }

  /// Appends the entry for the next row index.
  void Append(uint64_t h, bool linked) {
    if (linked && next_.size() + 1 > (mask_ + 1) * 3 / 4) Grow();
    int32_t idx = size();
    hashes_.push_back(h);
    linked_.push_back(linked ? 1 : 0);
    if (linked) {
      size_t b = static_cast<size_t>(h) & mask_;
      next_.push_back(heads_[b]);
      heads_[b] = idx;
    } else {
      next_.push_back(-1);
    }
  }

 private:
  void Grow() {
    size_t buckets = (mask_ + 1) * 2;
    heads_.assign(buckets, -1);
    mask_ = buckets - 1;
    for (int32_t j = 0; j < size(); ++j) {
      if (linked_[static_cast<size_t>(j)] == 0) continue;
      size_t b = static_cast<size_t>(hashes_[static_cast<size_t>(j)]) & mask_;
      next_[static_cast<size_t>(j)] = heads_[b];
      heads_[b] = j;
    }
  }

  ArenaVector<int32_t> heads_;
  ArenaVector<int32_t> next_;
  ArenaVector<uint64_t> hashes_;
  ArenaVector<uint8_t> linked_;
  size_t mask_ = 0;
};

/// Growable columnar row store (build sides, sort buffers, group keys).
struct ColumnSet {
  std::vector<ColumnVector> cols;
  int64_t rows = 0;

  void Configure(const std::vector<ValueType>& types, Arena* arena) {
    cols.clear();
    cols.reserve(types.size());
    for (ValueType t : types) cols.emplace_back(t, arena);
    rows = 0;
  }

  void AppendBatch(const Batch& b) {
    for (size_t c = 0; c < cols.size(); ++c) {
      cols[c].AppendRange(b.col(static_cast<int>(c)), 0, b.num_rows());
    }
    rows += b.num_rows();
  }

  std::vector<const ColumnVector*> ColsAt(const std::vector<int>& pos) const {
    std::vector<const ColumnVector*> out;
    out.reserve(pos.size());
    for (int p : pos) out.push_back(&cols[static_cast<size_t>(p)]);
    return out;
  }
};

std::vector<const ColumnVector*> BatchColsAt(const Batch& b,
                                             const std::vector<int>& pos) {
  std::vector<const ColumnVector*> out;
  out.reserve(pos.size());
  for (int p : pos) out.push_back(&b.col(p));
  return out;
}

/// Base operator node: Init() prepares programs/buffers recursively,
/// Next(Batch*) fills a caller-owned batch configured to this node's
/// schema and returns false at end-of-stream. A true return always carries
/// at least one row.
///
/// Every Next call probes the executor.next_batch fault site with key
/// salt ^ HashCombine(node_seq, batch_index): faults land per batch, and
/// the key stream for a plan depends only on its shape (node numbering is
/// pre-order and restarts every Execute).
class ExecNode {
 public:
  ExecNode(ExecContext* ctx, std::vector<ColumnId> ids, int seq)
      : ctx_(ctx), ids_(std::move(ids)), seq_(seq) {
    types_.reserve(ids_.size());
    for (ColumnId id : ids_) types_.push_back(ctx_->registry->TypeOf(id));
  }
  virtual ~ExecNode() = default;
  ExecNode(const ExecNode&) = delete;
  ExecNode& operator=(const ExecNode&) = delete;

  const std::vector<ColumnId>& ids() const { return ids_; }
  const std::vector<ValueType>& types() const { return types_; }

  virtual Status Init() = 0;

  Result<bool> Next(Batch* out) {
    if (ctx_->injector != nullptr && ctx_->injector->enabled()) {
      QTF_RETURN_NOT_OK(ctx_->injector->Probe(
          fault_sites::kExecutorNextBatch,
          ctx_->salt ^ HashCombine(static_cast<uint64_t>(seq_),
                                   batch_index_)));
    }
    ++batch_index_;
    out->Clear();
    QTF_ASSIGN_OR_RETURN(bool more, DoNext(out));
    if (more) {
      ctx_->rows += out->num_rows();
      ++ctx_->batches;
    }
    return more;
  }

 protected:
  virtual Result<bool> DoNext(Batch* out) = 0;

  Result<std::shared_ptr<const EvalProgram>> CompileOver(
      const ExprPtr& expr, const std::vector<ColumnId>& layout) {
    ColumnBindings bindings(layout);
    return ctx_->programs->GetOrCompile(expr, bindings,
                                        LayoutFingerprint(layout));
  }

  ExecContext* ctx_;
  std::vector<ColumnId> ids_;
  std::vector<ValueType> types_;
  int seq_;
  uint64_t batch_index_ = 0;
};

/// Builds the passing-row selection vector from a predicate result column.
void SelectTrue(const ColumnVector& v, int n, ArenaVector<int32_t>* sel) {
  sel->clear();
  const uint8_t* nulls = v.nulls();
  const int64_t* vals = v.ints();
  for (int i = 0; i < n; ++i) {
    if (nulls[i] == 0 && vals[i] != 0) sel->push_back(i);
  }
}

// ---- scan -----------------------------------------------------------------

class ScanNode final : public ExecNode {
 public:
  ScanNode(ExecContext* ctx, std::vector<ColumnId> ids, int seq,
           const ColumnarTable* table)
      : ExecNode(ctx, std::move(ids), seq), table_(table) {
    QTF_CHECK(table_->cols.size() == ids_.size());
  }

  Status Init() override { return Status::OK(); }

  Result<bool> DoNext(Batch* out) override {
    if (pos_ >= table_->rows) return false;
    int n = static_cast<int>(
        std::min<int64_t>(ctx_->capacity, table_->rows - pos_));
    for (int c = 0; c < out->num_cols(); ++c) {
      out->col(c).AppendRange(table_->cols[static_cast<size_t>(c)], pos_, n);
    }
    out->set_num_rows(n);
    pos_ += n;
    return true;
  }

 private:
  const ColumnarTable* table_;
  int64_t pos_ = 0;
};

// ---- filter ---------------------------------------------------------------

class FilterNode final : public ExecNode {
 public:
  FilterNode(ExecContext* ctx, std::vector<ColumnId> ids, int seq,
             ExecNode* child, ExprPtr predicate)
      : ExecNode(ctx, std::move(ids), seq),
        child_(child),
        predicate_(std::move(predicate)),
        in_(ctx->arena),
        sel_(MakeArenaVector<int32_t>(ctx->arena)),
        scratch_(ctx->arena) {}

  Status Init() override {
    QTF_RETURN_NOT_OK(child_->Init());
    in_.Configure(child_->ids(), child_->types());
    QTF_ASSIGN_OR_RETURN(program_, CompileOver(predicate_, child_->ids()));
    scratch_.Prepare(*program_);
    return Status::OK();
  }

  Result<bool> DoNext(Batch* out) override {
    for (;;) {
      QTF_ASSIGN_OR_RETURN(bool more, child_->Next(&in_));
      if (!more) return false;
      QTF_ASSIGN_OR_RETURN(const ColumnVector* v,
                           program_->Run(in_, &scratch_));
      SelectTrue(*v, in_.num_rows(), &sel_);
      if (sel_.empty()) continue;
      int n = static_cast<int>(sel_.size());
      for (int c = 0; c < out->num_cols(); ++c) {
        out->col(c).AppendGather(in_.col(c), sel_.data(), n);
      }
      out->set_num_rows(n);
      return true;
    }
  }

 private:
  ExecNode* child_;
  ExprPtr predicate_;
  Batch in_;
  ArenaVector<int32_t> sel_;
  EvalScratch scratch_;
  std::shared_ptr<const EvalProgram> program_;
};

// ---- compute (projection) -------------------------------------------------

class ComputeNode final : public ExecNode {
 public:
  ComputeNode(ExecContext* ctx, std::vector<ColumnId> ids, int seq,
              ExecNode* child, const std::vector<ProjectItem>& items)
      : ExecNode(ctx, std::move(ids), seq),
        child_(child),
        items_(&items),
        in_(ctx->arena) {}

  Status Init() override {
    QTF_RETURN_NOT_OK(child_->Init());
    in_.Configure(child_->ids(), child_->types());
    programs_.reserve(items_->size());
    scratches_.reserve(items_->size());
    for (const ProjectItem& item : *items_) {
      QTF_ASSIGN_OR_RETURN(auto program,
                           CompileOver(item.expr, child_->ids()));
      programs_.push_back(std::move(program));
      scratches_.emplace_back(ctx_->arena);
      scratches_.back().Prepare(*programs_.back());
    }
    return Status::OK();
  }

  Result<bool> DoNext(Batch* out) override {
    QTF_ASSIGN_OR_RETURN(bool more, child_->Next(&in_));
    if (!more) return false;
    int n = in_.num_rows();
    for (size_t c = 0; c < programs_.size(); ++c) {
      QTF_ASSIGN_OR_RETURN(const ColumnVector* v,
                           programs_[c]->Run(in_, &scratches_[c]));
      out->col(static_cast<int>(c)).AppendRange(*v, 0, n);
    }
    out->set_num_rows(n);
    return true;
  }

 private:
  ExecNode* child_;
  const std::vector<ProjectItem>* items_;
  Batch in_;
  std::vector<std::shared_ptr<const EvalProgram>> programs_;
  std::vector<EvalScratch> scratches_;
};

// ---- joins ----------------------------------------------------------------

/// State and emission logic shared by the two join nodes: candidate pair
/// lists, the combined (left ++ right) batch the residual/predicate runs
/// over, and the per-kind output assembly.
class JoinNodeBase : public ExecNode {
 public:
  JoinNodeBase(ExecContext* ctx, std::vector<ColumnId> ids, int seq,
               JoinKind kind, ExecNode* left, ExecNode* right, ExprPtr pred)
      : ExecNode(ctx, std::move(ids), seq),
        kind_(kind),
        left_(left),
        right_(right),
        pred_(std::move(pred)),
        in_(ctx->arena),
        rtmp_(ctx->arena),
        combined_(ctx->arena),
        cand_l_(MakeArenaVector<int32_t>(ctx->arena)),
        cand_r_(MakeArenaVector<int32_t>(ctx->arena)),
        sel_(MakeArenaVector<int32_t>(ctx->arena)),
        matched_(MakeArenaVector<uint8_t>(ctx->arena)),
        scratch_(ctx->arena) {}

  Status Init() override {
    QTF_RETURN_NOT_OK(left_->Init());
    QTF_RETURN_NOT_OK(right_->Init());
    in_.Configure(left_->ids(), left_->types());
    rtmp_.Configure(right_->ids(), right_->types());
    combined_ids_ = left_->ids();
    combined_ids_.insert(combined_ids_.end(), right_->ids().begin(),
                         right_->ids().end());
    std::vector<ValueType> combined_types = left_->types();
    combined_types.insert(combined_types.end(), right_->types().begin(),
                          right_->types().end());
    combined_.Configure(combined_ids_, combined_types);
    if (pred_ != nullptr) {
      QTF_ASSIGN_OR_RETURN(program_, CompileOver(pred_, combined_ids_));
      scratch_.Prepare(*program_);
    }
    build_.Configure(right_->types(), ctx_->arena);
    return Status::OK();
  }

 protected:
  /// Drains the right child into build_.
  Status DrainBuildSide() {
    for (;;) {
      QTF_ASSIGN_OR_RETURN(bool more, right_->Next(&rtmp_));
      if (!more) return Status::OK();
      build_.AppendBatch(rtmp_);
    }
  }

  /// Filters cand_l_/cand_r_ in place through the join predicate (no-op
  /// when there is none): gathers the candidate pairs into combined_, runs
  /// the program, keeps passing pairs.
  Status ApplyPredicate() {
    if (program_ == nullptr || cand_l_.empty()) return Status::OK();
    int n = static_cast<int>(cand_l_.size());
    combined_.Clear();
    int lw = static_cast<int>(left_->ids().size());
    for (int c = 0; c < lw; ++c) {
      combined_.col(c).AppendGather(in_.col(c), cand_l_.data(), n);
    }
    for (size_t c = 0; c < build_.cols.size(); ++c) {
      combined_.col(lw + static_cast<int>(c))
          .AppendGather(build_.cols[c], cand_r_.data(), n);
    }
    combined_.set_num_rows(n);
    QTF_ASSIGN_OR_RETURN(const ColumnVector* v,
                         program_->Run(combined_, &scratch_));
    const uint8_t* nulls = v->nulls();
    const int64_t* vals = v->ints();
    int kept = 0;
    for (int p = 0; p < n; ++p) {
      if (nulls[p] == 0 && vals[p] != 0) {
        cand_l_[static_cast<size_t>(kept)] = cand_l_[static_cast<size_t>(p)];
        cand_r_[static_cast<size_t>(kept)] = cand_r_[static_cast<size_t>(p)];
        ++kept;
      }
    }
    cand_l_.resize(static_cast<size_t>(kept));
    cand_r_.resize(static_cast<size_t>(kept));
    return Status::OK();
  }

  /// Assembles this node's output for the current left batch from the
  /// passing pairs in cand_l_/cand_r_ and the matched_ flags. Returns the
  /// number of rows appended to `out`.
  int EmitForLeftBatch(Batch* out) {
    int n = in_.num_rows();
    int lw = static_cast<int>(left_->ids().size());
    int produced = 0;
    switch (kind_) {
      case JoinKind::kInner: {
        int m = static_cast<int>(cand_l_.size());
        if (m == 0) break;
        for (int c = 0; c < lw; ++c) {
          out->col(c).AppendGather(in_.col(c), cand_l_.data(), m);
        }
        for (size_t c = 0; c < build_.cols.size(); ++c) {
          out->col(lw + static_cast<int>(c))
              .AppendGather(build_.cols[c], cand_r_.data(), m);
        }
        produced = m;
        break;
      }
      case JoinKind::kLeftOuter: {
        int m = static_cast<int>(cand_l_.size());
        for (int c = 0; c < lw; ++c) {
          out->col(c).AppendGather(in_.col(c), cand_l_.data(), m);
        }
        for (size_t c = 0; c < build_.cols.size(); ++c) {
          out->col(lw + static_cast<int>(c))
              .AppendGather(build_.cols[c], cand_r_.data(), m);
        }
        produced = m;
        for (int i = 0; i < n; ++i) {
          if (matched_[static_cast<size_t>(i)] != 0) continue;
          for (int c = 0; c < lw; ++c) out->col(c).AppendFrom(in_.col(c), i);
          for (size_t c = 0; c < build_.cols.size(); ++c) {
            out->col(lw + static_cast<int>(c)).AppendNull();
          }
          ++produced;
        }
        break;
      }
      case JoinKind::kLeftSemi:
      case JoinKind::kLeftAnti: {
        uint8_t want = kind_ == JoinKind::kLeftSemi ? 1 : 0;
        sel_.clear();
        for (int i = 0; i < n; ++i) {
          if (matched_[static_cast<size_t>(i)] == want) sel_.push_back(i);
        }
        int m = static_cast<int>(sel_.size());
        if (m == 0) break;
        for (int c = 0; c < out->num_cols(); ++c) {
          out->col(c).AppendGather(in_.col(c), sel_.data(), m);
        }
        produced = m;
        break;
      }
    }
    out->set_num_rows(produced);
    return produced;
  }

  JoinKind kind_;
  ExecNode* left_;
  ExecNode* right_;
  ExprPtr pred_;  // hash join: residual; NL join: whole predicate
  Batch in_;
  Batch rtmp_;
  Batch combined_;
  std::vector<ColumnId> combined_ids_;
  ColumnSet build_;  // the whole right input, columnar
  ArenaVector<int32_t> cand_l_;
  ArenaVector<int32_t> cand_r_;
  ArenaVector<int32_t> sel_;
  ArenaVector<uint8_t> matched_;
  EvalScratch scratch_;
  std::shared_ptr<const EvalProgram> program_;
};

class HashJoinNode final : public JoinNodeBase {
 public:
  HashJoinNode(ExecContext* ctx, std::vector<ColumnId> ids, int seq,
               const HashJoinOp& op, ExecNode* left, ExecNode* right)
      : JoinNodeBase(ctx, std::move(ids), seq, op.join_kind(), left, right,
                     op.residual()),
        op_(&op),
        chains_(ctx->arena) {}

  Status Init() override {
    QTF_RETURN_NOT_OK(JoinNodeBase::Init());
    ColumnBindings lbind(left_->ids());
    ColumnBindings rbind(right_->ids());
    for (const auto& [lcol, rcol] : op_->equi_pairs()) {
      lkey_pos_.push_back(lbind.PositionOf(lcol));
      rkey_pos_.push_back(rbind.PositionOf(rcol));
    }
    return Status::OK();
  }

  Result<bool> DoNext(Batch* out) override {
    if (!built_) {
      QTF_RETURN_NOT_OK(DrainBuildSide());
      BuildIndex();
      built_ = true;
    }
    const std::vector<const ColumnVector*> bkeys = build_.ColsAt(rkey_pos_);
    for (;;) {
      QTF_ASSIGN_OR_RETURN(bool more, left_->Next(&in_));
      if (!more) return false;
      int n = in_.num_rows();
      const std::vector<const ColumnVector*> lkeys =
          BatchColsAt(in_, lkey_pos_);
      cand_l_.clear();
      cand_r_.clear();
      for (int i = 0; i < n; ++i) {
        // Rows with any NULL key never match (SQL equality).
        bool has_null = false;
        for (const ColumnVector* c : lkeys) {
          if (c->IsNull(i)) {
            has_null = true;
            break;
          }
        }
        if (has_null) continue;
        uint64_t h = KeyHash(lkeys, i);
        for (int32_t j = chains_.First(h); j >= 0; j = chains_.NextEntry(j)) {
          if (chains_.hash_of(j) != h) continue;
          if (!KeysEqual(lkeys, i, bkeys, j)) continue;
          cand_l_.push_back(i);
          cand_r_.push_back(j);
        }
      }
      QTF_RETURN_NOT_OK(ApplyPredicate());
      matched_.assign(static_cast<size_t>(n), 0);
      for (int32_t l : cand_l_) matched_[static_cast<size_t>(l)] = 1;
      if (EmitForLeftBatch(out) > 0) return true;
    }
  }

 private:
  void BuildIndex() {
    chains_.Reset(build_.rows);
    const std::vector<const ColumnVector*> bkeys = build_.ColsAt(rkey_pos_);
    for (int32_t j = 0; j < static_cast<int32_t>(build_.rows); ++j) {
      bool has_null = false;
      for (const ColumnVector* c : bkeys) {
        if (c->IsNull(j)) {
          has_null = true;
          break;
        }
      }
      chains_.Append(has_null ? 0 : KeyHash(bkeys, j), !has_null);
    }
  }

  const HashJoinOp* op_;
  HashChains chains_;
  std::vector<int> lkey_pos_;
  std::vector<int> rkey_pos_;
  bool built_ = false;
};

class NlJoinNode final : public JoinNodeBase {
 public:
  NlJoinNode(ExecContext* ctx, std::vector<ColumnId> ids, int seq,
             const NlJoinOp& op, ExecNode* left, ExecNode* right)
      : JoinNodeBase(ctx, std::move(ids), seq, op.join_kind(), left, right,
                     op.predicate()) {}

  Result<bool> DoNext(Batch* out) override {
    if (!built_) {
      QTF_RETURN_NOT_OK(DrainBuildSide());
      built_ = true;
    }
    for (;;) {
      QTF_ASSIGN_OR_RETURN(bool more, left_->Next(&in_));
      if (!more) return false;
      int n = in_.num_rows();
      matched_.assign(static_cast<size_t>(n), 0);
      int64_t rrows = build_.rows;
      // One whole left batch is handled per Next (so fault-probe counts
      // track batches, not cross-product chunks), but candidate pairs are
      // materialized in chunks of ~capacity left rows at a time to bound
      // the intermediate to max(capacity, |right|) pairs.
      int chunk = rrows > 0
                      ? static_cast<int>(std::max<int64_t>(
                            1, ctx_->capacity / rrows))
                      : n;
      ArenaVector<int32_t> pass_l = MakeArenaVector<int32_t>(ctx_->arena);
      ArenaVector<int32_t> pass_r = MakeArenaVector<int32_t>(ctx_->arena);
      for (int base = 0; base < n && rrows > 0; base += chunk) {
        int m = std::min(chunk, n - base);
        cand_l_.clear();
        cand_r_.clear();
        for (int i = base; i < base + m; ++i) {
          for (int32_t j = 0; j < static_cast<int32_t>(rrows); ++j) {
            cand_l_.push_back(i);
            cand_r_.push_back(j);
          }
        }
        QTF_RETURN_NOT_OK(ApplyPredicate());
        for (int32_t l : cand_l_) matched_[static_cast<size_t>(l)] = 1;
        pass_l.insert(pass_l.end(), cand_l_.begin(), cand_l_.end());
        pass_r.insert(pass_r.end(), cand_r_.begin(), cand_r_.end());
      }
      cand_l_.assign(pass_l.begin(), pass_l.end());
      cand_r_.assign(pass_r.begin(), pass_r.end());
      if (EmitForLeftBatch(out) > 0) return true;
    }
  }

 private:
  bool built_ = false;
};

// ---- aggregation ----------------------------------------------------------

/// Accumulation state for one aggregate over one group; Finish mirrors the
/// reference executor's AggAccumulator semantics exactly (NULL-skipping,
/// empty-SUM -> NULL, AVG -> DOUBLE).
struct AggState {
  int64_t count = 0;
  int64_t sum_int = 0;
  double sum_double = 0.0;
  bool has_extreme = false;
  Value extreme;
};

/// Folds cell `i` of the evaluated argument column into `state`.
/// `arg` is nullptr for COUNT(*).
void AccumulateCell(const AggregateCall& call, const ColumnVector* arg, int i,
                    AggState* state) {
  if (call.kind == AggKind::kCountStar) {
    ++state->count;
    return;
  }
  if (arg->IsNull(i)) return;  // aggregates skip NULLs
  ++state->count;
  switch (call.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      if (arg->type() == ValueType::kInt64) {
        state->sum_int += arg->ints()[i];
      } else {
        state->sum_double += arg->AsDouble(i);
      }
      break;
    case AggKind::kMin:
    case AggKind::kMax: {
      Value v = arg->ToValue(i);
      int sign = call.kind == AggKind::kMin ? -1 : 1;
      if (!state->has_extreme || v.Compare(state->extreme) * sign > 0) {
        state->extreme = std::move(v);
      }
      state->has_extreme = true;
      break;
    }
  }
}

Value FinishAgg(const AggregateCall& call, const AggState& s) {
  ValueType result_type = call.ResultType();
  switch (call.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value::Int64(s.count);
    case AggKind::kSum:
      if (s.count == 0) return Value::Null(result_type);
      if (result_type == ValueType::kInt64) return Value::Int64(s.sum_int);
      return Value::Double(s.sum_double + static_cast<double>(s.sum_int));
    case AggKind::kAvg: {
      if (s.count == 0) return Value::Null(ValueType::kDouble);
      double total = s.sum_double + static_cast<double>(s.sum_int);
      return Value::Double(total / static_cast<double>(s.count));
    }
    case AggKind::kMin:
    case AggKind::kMax:
      if (!s.has_extreme) return Value::Null(result_type);
      return s.extreme;
  }
  return Value::Null(result_type);
}

/// Shared plumbing for the two aggregate nodes: argument programs and
/// chunked emission of finished groups.
class AggNodeBase : public ExecNode {
 public:
  AggNodeBase(ExecContext* ctx, std::vector<ColumnId> ids, int seq,
              ExecNode* child, const std::vector<ColumnId>& group_cols,
              const std::vector<AggregateItem>& aggregates)
      : ExecNode(ctx, std::move(ids), seq),
        child_(child),
        group_cols_(&group_cols),
        aggregates_(&aggregates),
        in_(ctx->arena) {}

  Status Init() override {
    QTF_RETURN_NOT_OK(child_->Init());
    in_.Configure(child_->ids(), child_->types());
    ColumnBindings bind(child_->ids());
    for (ColumnId id : *group_cols_) gpos_.push_back(bind.PositionOf(id));
    for (const AggregateItem& item : *aggregates_) {
      if (item.call.arg == nullptr) {
        programs_.push_back(nullptr);
        scratches_.emplace_back(ctx_->arena);
      } else {
        QTF_ASSIGN_OR_RETURN(auto program,
                             CompileOver(item.call.arg, child_->ids()));
        programs_.push_back(std::move(program));
        scratches_.emplace_back(ctx_->arena);
        scratches_.back().Prepare(*programs_.back());
      }
    }
    return Status::OK();
  }

 protected:
  /// Evaluates every aggregate argument over in_; results into argcols_
  /// (nullptr for COUNT(*)).
  Status EvalArgs() {
    argcols_.clear();
    for (size_t a = 0; a < programs_.size(); ++a) {
      if (programs_[a] == nullptr) {
        argcols_.push_back(nullptr);
      } else {
        QTF_ASSIGN_OR_RETURN(const ColumnVector* v,
                             programs_[a]->Run(in_, &scratches_[a]));
        argcols_.push_back(v);
      }
    }
    return Status::OK();
  }

  size_t num_aggs() const { return aggregates_->size(); }

  ExecNode* child_;
  const std::vector<ColumnId>* group_cols_;
  const std::vector<AggregateItem>* aggregates_;
  Batch in_;
  std::vector<int> gpos_;
  std::vector<std::shared_ptr<const EvalProgram>> programs_;
  std::vector<EvalScratch> scratches_;
  std::vector<const ColumnVector*> argcols_;
};

class HashAggNode final : public AggNodeBase {
 public:
  HashAggNode(ExecContext* ctx, std::vector<ColumnId> ids, int seq,
              ExecNode* child, const HashAggregateOp& op)
      : AggNodeBase(ctx, std::move(ids), seq, child, op.group_cols(),
                    op.aggregates()),
        chains_(ctx->arena),
        states_(MakeArenaVector<AggState>(ctx->arena)) {}

  Status Init() override {
    QTF_RETURN_NOT_OK(AggNodeBase::Init());
    std::vector<ValueType> key_types;
    for (ColumnId id : *group_cols_) {
      key_types.push_back(ctx_->registry->TypeOf(id));
    }
    keys_.Configure(key_types, ctx_->arena);
    chains_.Reset(0);
    for (size_t k = 0; k < gpos_.size(); ++k) {
      key_all_.push_back(static_cast<int>(k));
    }
    return Status::OK();
  }

  Result<bool> DoNext(Batch* out) override {
    if (!accumulated_) {
      QTF_RETURN_NOT_OK(Accumulate());
      accumulated_ = true;
    }
    // Emit finished groups in first-seen order (same deterministic order as
    // the reference executor), one capacity-sized batch at a time.
    if (emit_pos_ >= keys_.rows) return false;
    size_t naggs = num_aggs();
    int nk = static_cast<int>(gpos_.size());
    int m = static_cast<int>(
        std::min<int64_t>(ctx_->capacity, keys_.rows - emit_pos_));
    for (int g = 0; g < m; ++g) {
      int32_t group = static_cast<int32_t>(emit_pos_) + g;
      for (int k = 0; k < nk; ++k) {
        out->col(k).AppendFrom(keys_.cols[static_cast<size_t>(k)], group);
      }
      for (size_t a = 0; a < naggs; ++a) {
        out->col(nk + static_cast<int>(a))
            .AppendValueCopy(
                FinishAgg((*aggregates_)[a].call,
                          states_[static_cast<size_t>(group) * naggs + a]),
                ctx_->arena);
      }
    }
    out->set_num_rows(m);
    emit_pos_ += m;
    return true;
  }

 private:
  Status Accumulate() {
    size_t naggs = num_aggs();
    for (;;) {
      QTF_ASSIGN_OR_RETURN(bool more, child_->Next(&in_));
      if (!more) break;
      QTF_RETURN_NOT_OK(EvalArgs());
      int n = in_.num_rows();
      const std::vector<const ColumnVector*> gkeys = BatchColsAt(in_, gpos_);
      const std::vector<const ColumnVector*> skeys = keys_.ColsAt(key_all_);
      for (int i = 0; i < n; ++i) {
        // SQL GROUP BY: NULLs of a grouping column form one group
        // (CellHash/CellEquals treat NULL == NULL).
        uint64_t h = KeyHash(gkeys, i);
        int32_t group = -1;
        for (int32_t j = chains_.First(h); j >= 0; j = chains_.NextEntry(j)) {
          if (chains_.hash_of(j) == h && KeysEqual(gkeys, i, skeys, j)) {
            group = j;
            break;
          }
        }
        if (group < 0) {
          group = chains_.size();
          chains_.Append(h, true);
          for (size_t k = 0; k < gpos_.size(); ++k) {
            keys_.cols[k].AppendFrom(in_.col(gpos_[k]), i);
          }
          keys_.rows += 1;
          for (size_t a = 0; a < naggs; ++a) states_.emplace_back();
        }
        for (size_t a = 0; a < naggs; ++a) {
          AccumulateCell((*aggregates_)[a].call, argcols_[a], i,
                         &states_[static_cast<size_t>(group) * naggs + a]);
        }
      }
    }
    // Scalar aggregate over an empty input still produces one row.
    if (gpos_.empty() && keys_.rows == 0) {
      keys_.rows = 1;
      for (size_t a = 0; a < naggs; ++a) states_.emplace_back();
    }
    return Status::OK();
  }

  // Positions 0..nk-1 within keys_ (identity mapping), cached for ColsAt.
  std::vector<int> key_all_;
  ColumnSet keys_;
  HashChains chains_;
  ArenaVector<AggState> states_;
  bool accumulated_ = false;
  int64_t emit_pos_ = 0;
};

class StreamAggNode final : public AggNodeBase {
 public:
  StreamAggNode(ExecContext* ctx, std::vector<ColumnId> ids, int seq,
                ExecNode* child, const StreamAggregateOp& op)
      : AggNodeBase(ctx, std::move(ids), seq, child, op.group_cols(),
                    op.aggregates()) {}

  Status Init() override {
    QTF_RETURN_NOT_OK(AggNodeBase::Init());
    out_buf_.Configure(types_, ctx_->arena);
    return Status::OK();
  }

  Result<bool> DoNext(Batch* out) override {
    if (!accumulated_) {
      QTF_RETURN_NOT_OK(Accumulate());
      accumulated_ = true;
    }
    if (emit_pos_ >= out_buf_.rows) return false;
    int m = static_cast<int>(
        std::min<int64_t>(ctx_->capacity, out_buf_.rows - emit_pos_));
    for (size_t c = 0; c < out_buf_.cols.size(); ++c) {
      out->col(static_cast<int>(c))
          .AppendRange(out_buf_.cols[c], emit_pos_, m);
    }
    out->set_num_rows(m);
    emit_pos_ += m;
    return true;
  }

 private:
  Status Accumulate() {
    size_t naggs = num_aggs();
    for (;;) {
      QTF_ASSIGN_OR_RETURN(bool more, child_->Next(&in_));
      if (!more) break;
      QTF_RETURN_NOT_OK(EvalArgs());
      int n = in_.num_rows();
      for (int i = 0; i < n; ++i) {
        // Adjacent-equal grouping only: the optimizer guarantees input
        // sorted on the group columns. Value::Compare treats NULL == NULL,
        // matching the reference executor's CompareRows key test.
        std::vector<Value> key;
        key.reserve(gpos_.size());
        for (int p : gpos_) key.push_back(in_.col(p).ToValue(i));
        bool boundary = !have_group_;
        if (have_group_) {
          for (size_t k = 0; k < key.size(); ++k) {
            if (key[k].Compare(cur_key_[k]) != 0) {
              boundary = true;
              break;
            }
          }
          if (boundary) FlushGroup();
        }
        if (boundary) {
          cur_key_ = std::move(key);
          cur_states_.assign(naggs, AggState{});
          have_group_ = true;
        }
        for (size_t a = 0; a < naggs; ++a) {
          AccumulateCell((*aggregates_)[a].call, argcols_[a], i,
                         &cur_states_[a]);
        }
      }
    }
    if (have_group_) FlushGroup();
    // Scalar aggregate over an empty input still produces one row.
    if (gpos_.empty() && out_buf_.rows == 0) {
      cur_key_.clear();
      cur_states_.assign(naggs, AggState{});
      FlushGroup();
    }
    return Status::OK();
  }

  void FlushGroup() {
    size_t nk = cur_key_.size();
    for (size_t k = 0; k < nk; ++k) {
      out_buf_.cols[k].AppendValueCopy(cur_key_[k], ctx_->arena);
    }
    for (size_t a = 0; a < cur_states_.size(); ++a) {
      out_buf_.cols[nk + a].AppendValueCopy(
          FinishAgg((*aggregates_)[a].call, cur_states_[a]), ctx_->arena);
    }
    out_buf_.rows += 1;
  }

  ColumnSet out_buf_;
  std::vector<Value> cur_key_;
  std::vector<AggState> cur_states_;
  bool have_group_ = false;
  bool accumulated_ = false;
  int64_t emit_pos_ = 0;
};

// ---- sort -----------------------------------------------------------------

class SortNode final : public ExecNode {
 public:
  SortNode(ExecContext* ctx, std::vector<ColumnId> ids, int seq,
           ExecNode* child, const SortOp& op)
      : ExecNode(ctx, std::move(ids), seq),
        child_(child),
        op_(&op),
        in_(ctx->arena),
        idx_(MakeArenaVector<int32_t>(ctx->arena)) {}

  Status Init() override {
    QTF_RETURN_NOT_OK(child_->Init());
    in_.Configure(child_->ids(), child_->types());
    ColumnBindings bind(child_->ids());
    for (ColumnId id : op_->sort_cols()) {
      sort_pos_.push_back(bind.PositionOf(id));
    }
    buf_.Configure(child_->types(), ctx_->arena);
    return Status::OK();
  }

  Result<bool> DoNext(Batch* out) override {
    if (!sorted_) {
      for (;;) {
        QTF_ASSIGN_OR_RETURN(bool more, child_->Next(&in_));
        if (!more) break;
        buf_.AppendBatch(in_);
      }
      idx_.resize(static_cast<size_t>(buf_.rows));
      for (int32_t i = 0; i < static_cast<int32_t>(buf_.rows); ++i) {
        idx_[static_cast<size_t>(i)] = i;
      }
      const std::vector<const ColumnVector*> keys = buf_.ColsAt(sort_pos_);
      // Stable, NULL-first ascending — the reference executor's order.
      std::stable_sort(idx_.begin(), idx_.end(),
                       [&keys](int32_t a, int32_t b) {
                         for (const ColumnVector* c : keys) {
                           int cmp = c->CellCompare(a, *c, b);
                           if (cmp != 0) return cmp < 0;
                         }
                         return false;
                       });
      sorted_ = true;
    }
    if (emit_pos_ >= buf_.rows) return false;
    int m = static_cast<int>(
        std::min<int64_t>(ctx_->capacity, buf_.rows - emit_pos_));
    for (size_t c = 0; c < buf_.cols.size(); ++c) {
      out->col(static_cast<int>(c))
          .AppendGather(buf_.cols[c], idx_.data() + emit_pos_, m);
    }
    out->set_num_rows(m);
    emit_pos_ += m;
    return true;
  }

 private:
  ExecNode* child_;
  const SortOp* op_;
  Batch in_;
  ColumnSet buf_;
  ArenaVector<int32_t> idx_;
  std::vector<int> sort_pos_;
  bool sorted_ = false;
  int64_t emit_pos_ = 0;
};

// ---- concat / distinct ----------------------------------------------------

class ConcatNode final : public ExecNode {
 public:
  ConcatNode(ExecContext* ctx, std::vector<ColumnId> ids, int seq,
             const ConcatOp& op, ExecNode* left, ExecNode* right)
      : ExecNode(ctx, std::move(ids), seq),
        op_(&op),
        left_(left),
        right_(right),
        lin_(ctx->arena),
        rin_(ctx->arena) {}

  Status Init() override {
    QTF_RETURN_NOT_OK(left_->Init());
    QTF_RETURN_NOT_OK(right_->Init());
    // Each child may emit its columns in a different order than the union
    // branch it implements (e.g. after join commutativity); output position
    // k reads the child column carrying id left_cols[k] / right_cols[k].
    ColumnBindings lbind(left_->ids());
    ColumnBindings rbind(right_->ids());
    for (size_t k = 0; k < ids_.size(); ++k) {
      lpos_.push_back(lbind.PositionOf(op_->left_cols()[k]));
      rpos_.push_back(rbind.PositionOf(op_->right_cols()[k]));
      QTF_CHECK(left_->types()[static_cast<size_t>(lpos_[k])] == types_[k] &&
                right_->types()[static_cast<size_t>(rpos_[k])] == types_[k])
          << "UNION ALL branches must agree on column types";
    }
    lin_.Configure(left_->ids(), left_->types());
    rin_.Configure(right_->ids(), right_->types());
    return Status::OK();
  }

  Result<bool> DoNext(Batch* out) override {
    while (!left_done_) {
      QTF_ASSIGN_OR_RETURN(bool more, left_->Next(&lin_));
      if (!more) {
        left_done_ = true;
        break;
      }
      PassThrough(lin_, lpos_, out);
      return true;
    }
    QTF_ASSIGN_OR_RETURN(bool more, right_->Next(&rin_));
    if (!more) return false;
    PassThrough(rin_, rpos_, out);
    return true;
  }

 private:
  static void PassThrough(const Batch& in, const std::vector<int>& pos,
                          Batch* out) {
    for (int c = 0; c < out->num_cols(); ++c) {
      out->col(c).AppendRange(in.col(pos[static_cast<size_t>(c)]), 0,
                              in.num_rows());
    }
    out->set_num_rows(in.num_rows());
  }

  const ConcatOp* op_;
  ExecNode* left_;
  ExecNode* right_;
  Batch lin_;
  Batch rin_;
  std::vector<int> lpos_;
  std::vector<int> rpos_;
  bool left_done_ = false;
};

class DistinctNode final : public ExecNode {
 public:
  DistinctNode(ExecContext* ctx, std::vector<ColumnId> ids, int seq,
               ExecNode* child)
      : ExecNode(ctx, std::move(ids), seq),
        child_(child),
        in_(ctx->arena),
        chains_(ctx->arena),
        sel_(MakeArenaVector<int32_t>(ctx->arena)) {}

  Status Init() override {
    QTF_RETURN_NOT_OK(child_->Init());
    in_.Configure(child_->ids(), child_->types());
    seen_.Configure(child_->types(), ctx_->arena);
    chains_.Reset(0);
    for (size_t c = 0; c < types_.size(); ++c) {
      all_pos_.push_back(static_cast<int>(c));
    }
    return Status::OK();
  }

  Result<bool> DoNext(Batch* out) override {
    for (;;) {
      QTF_ASSIGN_OR_RETURN(bool more, child_->Next(&in_));
      if (!more) return false;
      int n = in_.num_rows();
      const std::vector<const ColumnVector*> rowkeys =
          BatchColsAt(in_, all_pos_);
      const std::vector<const ColumnVector*> seenkeys = seen_.ColsAt(all_pos_);
      sel_.clear();
      for (int i = 0; i < n; ++i) {
        // Distinct-ness uses grouping equality (NULL == NULL), matching
        // the reference executor's Row-level hash set.
        uint64_t h = KeyHash(rowkeys, i);
        bool dup = false;
        for (int32_t j = chains_.First(h); j >= 0;
             j = chains_.NextEntry(j)) {
          if (chains_.hash_of(j) == h && KeysEqual(rowkeys, i, seenkeys, j)) {
            dup = true;
            break;
          }
        }
        if (dup) continue;
        chains_.Append(h, true);
        for (size_t c = 0; c < seen_.cols.size(); ++c) {
          seen_.cols[c].AppendFrom(in_.col(static_cast<int>(c)), i);
        }
        seen_.rows += 1;
        sel_.push_back(i);
      }
      if (sel_.empty()) continue;
      int m = static_cast<int>(sel_.size());
      for (int c = 0; c < out->num_cols(); ++c) {
        out->col(c).AppendGather(in_.col(c), sel_.data(), m);
      }
      out->set_num_rows(m);
      return true;
    }
  }

 private:
  ExecNode* child_;
  Batch in_;
  ColumnSet seen_;
  HashChains chains_;
  ArenaVector<int32_t> sel_;
  std::vector<int> all_pos_;
};

// ---- plan translation -----------------------------------------------------

/// Translates a physical plan into an arena-allocated node tree, numbering
/// nodes in pre-order (the fault-key node sequence).
Result<ExecNode*> BuildNode(const PhysicalOp& op, ExecContext* ctx,
                            int* seq) {
  int myseq = (*seq)++;
  switch (op.kind()) {
    case PhysicalOpKind::kTableScan: {
      const auto& scan = static_cast<const TableScanOp&>(op);
      QTF_ASSIGN_OR_RETURN(const ColumnarTable* table,
                           ctx->tables(scan.table()));
      return static_cast<ExecNode*>(ctx->arena->New<ScanNode>(
          ctx, scan.OutputColumns(), myseq, table));
    }
    case PhysicalOpKind::kFilter: {
      const auto& filter = static_cast<const FilterOp&>(op);
      QTF_ASSIGN_OR_RETURN(ExecNode* child,
                           BuildNode(*op.child(0), ctx, seq));
      return static_cast<ExecNode*>(ctx->arena->New<FilterNode>(
          ctx, op.OutputColumns(), myseq, child, filter.predicate()));
    }
    case PhysicalOpKind::kCompute: {
      const auto& compute = static_cast<const ComputeOp&>(op);
      QTF_ASSIGN_OR_RETURN(ExecNode* child,
                           BuildNode(*op.child(0), ctx, seq));
      return static_cast<ExecNode*>(ctx->arena->New<ComputeNode>(
          ctx, op.OutputColumns(), myseq, child, compute.items()));
    }
    case PhysicalOpKind::kNlJoin: {
      const auto& join = static_cast<const NlJoinOp&>(op);
      QTF_ASSIGN_OR_RETURN(ExecNode* left, BuildNode(*op.child(0), ctx, seq));
      QTF_ASSIGN_OR_RETURN(ExecNode* right,
                           BuildNode(*op.child(1), ctx, seq));
      return static_cast<ExecNode*>(ctx->arena->New<NlJoinNode>(
          ctx, op.OutputColumns(), myseq, join, left, right));
    }
    case PhysicalOpKind::kHashJoin: {
      const auto& join = static_cast<const HashJoinOp&>(op);
      QTF_ASSIGN_OR_RETURN(ExecNode* left, BuildNode(*op.child(0), ctx, seq));
      QTF_ASSIGN_OR_RETURN(ExecNode* right,
                           BuildNode(*op.child(1), ctx, seq));
      return static_cast<ExecNode*>(ctx->arena->New<HashJoinNode>(
          ctx, op.OutputColumns(), myseq, join, left, right));
    }
    case PhysicalOpKind::kHashAggregate: {
      const auto& agg = static_cast<const HashAggregateOp&>(op);
      QTF_ASSIGN_OR_RETURN(ExecNode* child,
                           BuildNode(*op.child(0), ctx, seq));
      return static_cast<ExecNode*>(ctx->arena->New<HashAggNode>(
          ctx, op.OutputColumns(), myseq, child, agg));
    }
    case PhysicalOpKind::kStreamAggregate: {
      const auto& agg = static_cast<const StreamAggregateOp&>(op);
      QTF_ASSIGN_OR_RETURN(ExecNode* child,
                           BuildNode(*op.child(0), ctx, seq));
      return static_cast<ExecNode*>(ctx->arena->New<StreamAggNode>(
          ctx, op.OutputColumns(), myseq, child, agg));
    }
    case PhysicalOpKind::kSort: {
      const auto& sort = static_cast<const SortOp&>(op);
      QTF_ASSIGN_OR_RETURN(ExecNode* child,
                           BuildNode(*op.child(0), ctx, seq));
      return static_cast<ExecNode*>(ctx->arena->New<SortNode>(
          ctx, op.OutputColumns(), myseq, child, sort));
    }
    case PhysicalOpKind::kConcat: {
      const auto& concat = static_cast<const ConcatOp&>(op);
      QTF_ASSIGN_OR_RETURN(ExecNode* left, BuildNode(*op.child(0), ctx, seq));
      QTF_ASSIGN_OR_RETURN(ExecNode* right,
                           BuildNode(*op.child(1), ctx, seq));
      return static_cast<ExecNode*>(ctx->arena->New<ConcatNode>(
          ctx, op.OutputColumns(), myseq, concat, left, right));
    }
    case PhysicalOpKind::kHashDistinct: {
      QTF_ASSIGN_OR_RETURN(ExecNode* child,
                           BuildNode(*op.child(0), ctx, seq));
      return static_cast<ExecNode*>(ctx->arena->New<DistinctNode>(
          ctx, op.OutputColumns(), myseq, child));
    }
  }
  return Status::Internal("unknown physical operator");
}

}  // namespace

// ---- Executor -------------------------------------------------------------

void Executor::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_rows_ = m_batches_ = m_arena_bytes_ = nullptr;
    owned_programs_.set_metrics(nullptr, nullptr);
    return;
  }
  m_rows_ = metrics->counter("qtf.exec.rows_produced");
  m_batches_ = metrics->counter("qtf.exec.batches");
  m_arena_bytes_ = metrics->counter("qtf.exec.arena_bytes");
  // Hit/miss wiring covers the private cache only; a shared cache's owner
  // wires its own counters (set_program_cache doc).
  owned_programs_.set_metrics(metrics->counter("qtf.exec.eval_cache_hits"),
                              metrics->counter("qtf.exec.eval_cache_misses"));
}

Result<const exec_internal::ColumnarTable*> Executor::GetColumnarTable(
    const TableDef& table) {
  auto it = table_cache_.find(table.name());
  if (it != table_cache_.end()) return it->second.get();
  QTF_ASSIGN_OR_RETURN(std::shared_ptr<const TableData> data,
                       db_->GetTableData(table.name()));
  auto columnar = std::make_unique<exec_internal::ColumnarTable>();
  columnar->pin = data;
  columnar->rows = data->row_count();
  const std::vector<ColumnDef>& defs = table.columns();
  columnar->cols.reserve(defs.size());
  for (const ColumnDef& def : defs) {
    ColumnVector cv(def.type, &cache_arena_);
    cv.Reserve(static_cast<int>(columnar->rows));
    columnar->cols.push_back(std::move(cv));
  }
  for (const Row& row : data->rows()) {
    QTF_CHECK(row.size() == defs.size());
    for (size_t c = 0; c < defs.size(); ++c) {
      // Borrowed string cells point into the pinned TableData.
      columnar->cols[c].AppendValue(row[c]);
    }
  }
  const exec_internal::ColumnarTable* result = columnar.get();
  table_cache_.emplace(table.name(), std::move(columnar));
  return result;
}

Result<ResultSet> Executor::Execute(const PhysicalOp& plan) {
  // One-shot release of the previous query's physical state.
  arena_.Reset();

  ExecContext ctx;
  ctx.registry = registry_;
  ctx.arena = &arena_;
  ctx.programs = programs_;
  ctx.injector = fault_injector_;
  ctx.salt = fault_salt_;
  ctx.capacity = batch_capacity_;
  ctx.tables = [this](const TableDef& table) {
    return GetColumnarTable(table);
  };

  int seq = 0;
  QTF_ASSIGN_OR_RETURN(ExecNode* root, BuildNode(plan, &ctx, &seq));
  QTF_RETURN_NOT_OK(root->Init());

  Batch out(&arena_);
  out.Configure(root->ids(), root->types());
  ResultSet result;
  result.columns = plan.OutputColumns();
  for (;;) {
    QTF_ASSIGN_OR_RETURN(bool more, root->Next(&out));
    if (!more) break;
    int n = out.num_rows();
    for (int i = 0; i < n; ++i) result.rows.push_back(out.RowAt(i));
  }

  rows_produced_ += ctx.rows;
  last_arena_bytes_ = static_cast<int64_t>(arena_.bytes_allocated());
  if (m_rows_ != nullptr) m_rows_->Increment(ctx.rows);
  if (m_batches_ != nullptr) m_batches_->Increment(ctx.batches);
  if (m_arena_bytes_ != nullptr) m_arena_bytes_->Increment(last_arena_bytes_);
  return result;
}

}  // namespace qtf
