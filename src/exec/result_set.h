#ifndef QTF_EXEC_RESULT_SET_H_
#define QTF_EXEC_RESULT_SET_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "types/value.h"

namespace qtf {

/// Materialized query result: output column ids plus rows (bag semantics).
struct ResultSet {
  std::vector<ColumnId> columns;
  std::vector<Row> rows;

  int64_t row_count() const { return static_cast<int64_t>(rows.size()); }
};

/// Bag (multiset) equality of two results, used for rule-correctness
/// validation: both plans derive from the same query, so column ids and
/// order must match; row order is ignored.
///
/// Doubles are compared with a small relative tolerance because different
/// (equally correct) plans may sum floating-point values in different
/// orders. NULLs compare equal to NULLs only.
bool ResultBagEquals(const ResultSet& a, const ResultSet& b);

/// Human-readable table rendering (for examples and failure reports);
/// at most `max_rows` rows.
std::string ResultSetToString(const ResultSet& result, int max_rows);

}  // namespace qtf

#endif  // QTF_EXEC_RESULT_SET_H_
